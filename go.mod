module ndpipe

go 1.22
