GO ?= go

.PHONY: all build test vet race bench fmt-check ci

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench BenchmarkTelemetryOverhead -benchmem -run '^$$' ./internal/telemetry/

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

ci: build vet fmt-check race bench
