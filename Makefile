GO ?= go

.PHONY: all build test vet race bench bench-smoke chaos crash serve-smoke obs-smoke quant-smoke failover-smoke durability-smoke fmt-check ci

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench BenchmarkTelemetryOverhead -benchmem -run '^$$' ./internal/telemetry/

# One racy iteration of every kernel benchmark (the n=1024 grid points are
# skipped: a single 1024³ product under -race takes minutes, not seconds).
bench-smoke:
	$(GO) test -race -benchtime 1x -benchmem -run '^$$' \
		-bench 'BenchmarkTensorMatMul256|BenchmarkTensorMatMulGrid/n=(64|256)|BenchmarkNNTrainBatch' .

# Deterministic chaos suite: seeded fault injection, quorum rounds, store
# eviction/rejoin, and the kill/restart soak — all under the race detector.
chaos:
	$(GO) test -race -v -run 'TestQuorum|TestEvicted|TestRoundTimeout|TestStaleEpoch|TestChaosSoak' ./internal/tuner/
	$(GO) test -race -run 'TestServeAnswersPing|TestDialRetry' ./internal/pipestore/
	$(GO) test -race ./internal/faultinject/

# Crash-injection suite: WAL torn at every byte offset, seeded disk faults
# (short writes, crash-before/after-rename), tuner and store kill/restart
# recovery, compaction crash points — all under the race detector.
crash:
	$(GO) test -race ./internal/durable/
	$(GO) test -race -v -run 'TestCrash' ./internal/tuner/ ./internal/pipestore/

# Serving-gateway smoke: closed-loop load through the gateway with shed and
# tenant-throttle rejections in play, checking request conservation (every
# outcome client-visible AND counted in /metrics) plus the concurrent
# upload/delta hammer and bitwise batched-vs-sequential identity — all under
# the race detector.
serve-smoke:
	$(GO) test -race -v -run 'TestServeSmoke|TestServeHammer|TestServeBitwiseAcrossParallelism|TestServeMemoVersionGate' ./internal/serve/

# Observability smoke: a real tuner + store fleet over loopback, scraped
# through the daemon HTTP surface — /fleet exact shipped rollups, the
# straggler gauge after an injected slow store, /healthz, /readyz and
# /flightrec — plus the fleet merge/dedup suite, flight-dump crash paths
# (panic and SIGQUIT) and the metrics lint, all under the race detector.
obs-smoke:
	$(GO) test -race -v -run 'TestObsSmoke' ./internal/tuner/
	$(GO) test -race ./internal/telemetry/ ./internal/flightdump/

# Quantized-path smoke: int8 kernel correctness and determinism across
# worker counts, the quantized-replica determinism and accuracy-agreement
# tests, the compressed-delta codec (error feedback, hostile inputs, the
# ≥4x byte-reduction gate) and the mixed-encoding fleet round-trip — all
# under the race detector — plus one racy iteration of the int8 kernel grid
# (n=1024 skipped, as in bench-smoke).
quant-smoke:
	$(GO) test -race -run 'TestQuant|TestQMatMul' ./internal/tensor/ ./internal/nn/
	$(GO) test -race ./internal/delta/
	$(GO) test -race -run 'TestQuantized|TestApplyDeltaCompressed' ./internal/pipestore/
	$(GO) test -race -v -run 'TestMixedFleetCompressedDeltas|TestCompressedLateJoinerRebases' ./internal/tuner/
	$(GO) test -race -run 'TestCacheKeyIncludesPrecisionMode' ./internal/serve/
	$(GO) test -race -benchtime 1x -benchmem -run '^$$' \
		-bench 'BenchmarkQMatMulGridLocal/n=(64|256)' ./internal/tensor/

# Failover chaos suite: a WAL-tailing hot standby under a live leader,
# the leader killed mid-round / between journal and broadcast / during a
# store catch-up, takeover-before-bootstrap refusal, and the dedicated
# split-brain test (fenced stale leader cannot commit or advance a
# store) — all under the race detector — plus the epoch-fence and
# multi-address dial tests on the store side.
failover-smoke:
	$(GO) test -race -v ./internal/ha/
	$(GO) test -race -run 'TestFence|TestDialRetry|TestDialBackoff' ./internal/pipestore/

# Durability chaos suite: replicated placement math, at-rest corruption
# (CRC frames, quarantine, seeded bitflip/truncate injection), the
# zero-ImagesLost degraded round at R=2, over-the-wire scrub/repair of an
# injected bit-flip, quarantine-never-served, and the store-loss rebuild —
# all under the race detector.
durability-smoke:
	$(GO) test -race ./internal/placement/ ./internal/photostore/
	$(GO) test -race -run 'TestObject|TestParseFaults' ./internal/durable/
	$(GO) test -race -run 'TestScrub|TestIngestReplica' ./internal/pipestore/
	$(GO) test -race -run 'Replicat' ./internal/inferserver/
	$(GO) test -race -v -run 'TestDurability|TestScrubRepairs|TestQuarantinedObject|TestRebuildRestores' ./internal/tuner/

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

ci: build vet fmt-check race bench chaos crash serve-smoke obs-smoke quant-smoke failover-smoke durability-smoke
