// Package ndpipe is a pure-Go reproduction of "NDPipe: Exploiting Near-data
// Processing for Scalable Inference and Continuous Training in Photo
// Storage" (ASPLOS 2024).
//
// The library lives under internal/ (see DESIGN.md for the full inventory):
// a neural-network engine and drifting photo workload drive the paper's
// accuracy experiments for real, while a calibrated discrete-event cluster
// simulator reproduces the throughput/energy/cost evaluation. A runnable
// distributed prototype (Tuner + PipeStores over TCP) mirrors the paper's
// artifact.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; cmd/ndpipe-bench prints them at full size.
package ndpipe
