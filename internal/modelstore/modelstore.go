// Package modelstore is the Tuner's version archive: an append-only chain
// of Check-N-Run deltas over a base snapshot. It reconstructs any model
// version on demand — which is how a PipeStore that joined late (or missed
// broadcasts) catches up without ever shipping a full model — and supports
// pruning old history by re-basing.
//
// Check-N-Run [29] is, at heart, a checkpointing system; this package is
// that system for the NDPipe classifier.
package modelstore

import (
	"fmt"
	"sync"

	"ndpipe/internal/delta"
	"ndpipe/internal/nn"
)

// Store archives model versions as a delta chain.
type Store struct {
	mu     sync.RWMutex
	baseV  int            // version of the base snapshot
	base   nn.Snapshot    // full snapshot at baseV
	deltas []*delta.Delta // deltas[i] transforms version baseV+i → baseV+i+1
	blobs  [][]byte       // encoded form of each delta (what went on the wire)
}

// New creates a store rooted at version 0 with the given initial snapshot.
func New(initial nn.Snapshot) *Store {
	cp := make(nn.Snapshot, len(initial))
	for k, m := range initial {
		cp[k] = m.Clone()
	}
	return &Store{base: cp}
}

// NewAt creates a store whose base snapshot carries an arbitrary version
// number — the recovery path: a tuner restarting from a compacted WAL roots
// the chain at the persisted base version, not 0.
func NewAt(baseV int, snap nn.Snapshot) *Store {
	s := New(snap)
	s.baseV = baseV
	return s
}

// Latest returns the newest archived version number.
func (s *Store) Latest() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.baseV + len(s.deltas)
}

// Oldest returns the oldest reconstructible version (the re-base floor).
func (s *Store) Oldest() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.baseV
}

// Append archives the next version from its full snapshot, returning the
// encoded delta blob that represents it on the wire.
func (s *Store) Append(next nn.Snapshot) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := s.reconstructLocked(s.baseV + len(s.deltas))
	if err != nil {
		return nil, err
	}
	d, err := delta.Diff(cur, next, 0)
	if err != nil {
		return nil, err
	}
	blob, err := d.Encode()
	if err != nil {
		return nil, err
	}
	s.deltas = append(s.deltas, d)
	s.blobs = append(s.blobs, blob)
	return blob, nil
}

// AppendBlob archives the next version from its already-encoded delta blob
// — the WAL replay path. The blob is decoded and validated by applying it
// to the current latest snapshot before it joins the chain, so a corrupt
// (but checksum-passing) record cannot poison the archive silently.
// Returns the new latest version.
func (s *Store) AppendBlob(blob []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := delta.Decode(blob)
	if err != nil {
		return 0, fmt.Errorf("modelstore: decode replayed delta: %w", err)
	}
	cur, err := s.reconstructLocked(s.baseV + len(s.deltas))
	if err != nil {
		return 0, err
	}
	if _, err := d.Apply(cur); err != nil {
		return 0, fmt.Errorf("modelstore: replayed delta does not apply: %w", err)
	}
	s.deltas = append(s.deltas, d)
	s.blobs = append(s.blobs, append([]byte(nil), blob...))
	return s.baseV + len(s.deltas), nil
}

// Blobs returns copies of every archived delta blob in chain order —
// what a WAL compaction rewrites.
func (s *Store) Blobs() [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]byte, len(s.blobs))
	for i, b := range s.blobs {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// Base returns the chain's root: its version and a copy of the snapshot.
func (s *Store) Base() (int, nn.Snapshot) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp := make(nn.Snapshot, len(s.base))
	for k, m := range s.base {
		cp[k] = m.Clone()
	}
	return s.baseV, cp
}

// Snapshot reconstructs the full snapshot at the given version.
func (s *Store) Snapshot(version int) (nn.Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reconstructLocked(version)
}

func (s *Store) reconstructLocked(version int) (nn.Snapshot, error) {
	if version < s.baseV || version > s.baseV+len(s.deltas) {
		return nil, fmt.Errorf("modelstore: version %d outside [%d,%d]", version, s.baseV, s.baseV+len(s.deltas))
	}
	cur := make(nn.Snapshot, len(s.base))
	for k, m := range s.base {
		cur[k] = m.Clone()
	}
	for i := 0; i < version-s.baseV; i++ {
		next, err := s.deltas[i].Apply(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// CatchUp returns one composite delta blob that upgrades a replica from
// `from` directly to the latest version — the late-joiner path. It is
// usually far smaller than replaying every intermediate blob because
// repeatedly-updated weights collapse to their final value.
func (s *Store) CatchUp(from int) (blob []byte, to int, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	latest := s.baseV + len(s.deltas)
	if from == latest {
		return nil, latest, nil
	}
	start, err := s.reconstructLocked(from)
	if err != nil {
		return nil, 0, err
	}
	end, err := s.reconstructLocked(latest)
	if err != nil {
		return nil, 0, err
	}
	d, err := delta.Diff(start, end, 0)
	if err != nil {
		return nil, 0, err
	}
	blob, err = d.Encode()
	if err != nil {
		return nil, 0, err
	}
	return blob, latest, nil
}

// Blob returns the original wire blob for the transition version-1→version.
func (s *Store) Blob(version int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := version - s.baseV - 1
	if i < 0 || i >= len(s.blobs) {
		return nil, fmt.Errorf("modelstore: no blob for version %d", version)
	}
	return s.blobs[i], nil
}

// Prune re-bases the chain at the given version, discarding older history.
// Versions below it become unreconstructible.
func (s *Store) Prune(keepFrom int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keepFrom < s.baseV || keepFrom > s.baseV+len(s.deltas) {
		return fmt.Errorf("modelstore: cannot prune to %d (have [%d,%d])", keepFrom, s.baseV, s.baseV+len(s.deltas))
	}
	snap, err := s.reconstructLocked(keepFrom)
	if err != nil {
		return err
	}
	drop := keepFrom - s.baseV
	s.base = snap
	s.baseV = keepFrom
	s.deltas = append([]*delta.Delta(nil), s.deltas[drop:]...)
	s.blobs = append([][]byte(nil), s.blobs[drop:]...)
	return nil
}

// HistoryBytes returns the total size of the archived delta blobs.
func (s *Store) HistoryBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(len(b))
	}
	return n
}
