package modelstore

import (
	"math/rand"
	"testing"

	"ndpipe/internal/delta"
	"ndpipe/internal/nn"
)

// evolve produces a sequence of snapshots where a "fine-tune" perturbs a
// fraction of the head weights each step.
func evolve(t *testing.T, steps int) (*Store, []nn.Snapshot) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP("clf", []int{16, 32, 8}, rng)
	snaps := []nn.Snapshot{net.TakeSnapshot()}
	st := New(snaps[0])
	for i := 0; i < steps; i++ {
		for _, p := range net.Params() {
			for j := range p.W.Data {
				if rng.Float64() < 0.2 {
					p.W.Data[j] += rng.NormFloat64() * 0.1
				}
			}
		}
		snap := net.TakeSnapshot()
		if _, err := st.Append(snap); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
	return st, snaps
}

func TestReconstructEveryVersion(t *testing.T) {
	st, snaps := evolve(t, 5)
	if st.Latest() != 5 || st.Oldest() != 0 {
		t.Fatalf("range [%d,%d]", st.Oldest(), st.Latest())
	}
	for v, want := range snaps {
		got, err := st.Snapshot(v)
		if err != nil {
			t.Fatal(err)
		}
		if !delta.SnapshotsEqual(got, want, 0) {
			t.Fatalf("version %d does not reconstruct", v)
		}
	}
	if _, err := st.Snapshot(6); err == nil {
		t.Fatal("future version must error")
	}
	if _, err := st.Snapshot(-1); err == nil {
		t.Fatal("negative version must error")
	}
}

func TestBlobsReplayTheChain(t *testing.T) {
	st, snaps := evolve(t, 4)
	cur := snaps[0]
	for v := 1; v <= 4; v++ {
		blob, err := st.Blob(v)
		if err != nil {
			t.Fatal(err)
		}
		d, err := delta.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		cur, err = d.Apply(cur)
		if err != nil {
			t.Fatal(err)
		}
		if !delta.SnapshotsEqual(cur, snaps[v], 0) {
			t.Fatalf("blob replay diverges at v%d", v)
		}
	}
	if _, err := st.Blob(0); err == nil {
		t.Fatal("version 0 has no blob")
	}
}

func TestCatchUpJumpsToLatest(t *testing.T) {
	st, snaps := evolve(t, 6)
	blob, to, err := st.CatchUp(2)
	if err != nil {
		t.Fatal(err)
	}
	if to != 6 {
		t.Fatalf("catch-up target %d", to)
	}
	d, err := delta.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(snaps[2])
	if err != nil {
		t.Fatal(err)
	}
	if !delta.SnapshotsEqual(got, snaps[6], 0) {
		t.Fatal("catch-up delta does not land on latest")
	}
	// Composite catch-up ≤ sum of individual blobs (weights collapse).
	var individual int64
	for v := 3; v <= 6; v++ {
		b, _ := st.Blob(v)
		individual += int64(len(b))
	}
	if int64(len(blob)) > individual {
		t.Fatalf("composite %d B > replay %d B", len(blob), individual)
	}
	// Already current → nil blob.
	none, to, err := st.CatchUp(6)
	if err != nil || none != nil || to != 6 {
		t.Fatalf("no-op catch-up: %v %v %v", none, to, err)
	}
}

func TestPruneRebases(t *testing.T) {
	st, snaps := evolve(t, 5)
	before := st.HistoryBytes()
	if before <= 0 {
		t.Fatal("history should have bytes")
	}
	if err := st.Prune(3); err != nil {
		t.Fatal(err)
	}
	if st.Oldest() != 3 || st.Latest() != 5 {
		t.Fatalf("range after prune [%d,%d]", st.Oldest(), st.Latest())
	}
	if st.HistoryBytes() >= before {
		t.Fatal("prune must shrink history")
	}
	// Newer versions still reconstruct exactly.
	for v := 3; v <= 5; v++ {
		got, err := st.Snapshot(v)
		if err != nil {
			t.Fatal(err)
		}
		if !delta.SnapshotsEqual(got, snaps[v], 0) {
			t.Fatalf("v%d broken after prune", v)
		}
	}
	// Pruned versions are gone.
	if _, err := st.Snapshot(1); err == nil {
		t.Fatal("pruned version must be unreconstructible")
	}
	if err := st.Prune(1); err == nil {
		t.Fatal("pruning below the floor must error")
	}
}

func TestBaseSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewMLP("m", []int{4, 3}, rng)
	snap := net.TakeSnapshot()
	st := New(snap)
	// Mutating the caller's snapshot must not corrupt the archive.
	for _, m := range snap {
		m.Data[0] = 999
	}
	got, err := st.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		if m.Data[0] == 999 {
			t.Fatal("store shares storage with the caller")
		}
	}
}
