// Package service assembles the complete photo system of Fig 3 into one
// deployable unit: an online inference server handling uploads and search,
// N PipeStores holding the photos, a Tuner orchestrating continuous
// fine-tuning over TCP, and a shared label database — plus the retraining
// policy that closes the loop (fine-tune after every K uploads, then
// refresh outdated labels with near-data offline inference).
//
// It is the "downstream user" API: everything else in this repository is a
// substrate underneath it.
package service

import (
	"fmt"
	"log/slog"
	"net"
	"path/filepath"
	"sync"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/drift"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/inferserver"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/serve"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tuner"
)

// Policy controls continuous training.
type Policy struct {
	// RetrainEveryUploads triggers a fine-tune + relabel cycle after this
	// many uploads (0 disables automatic retraining).
	RetrainEveryUploads int
	// RetrainOnDrift additionally watches online-inference confidence with
	// a drift detector (§2.2's detection-based trigger) and retrains the
	// moment it fires. Zero value disables it.
	RetrainOnDrift bool
	// Drift configures the detector when RetrainOnDrift is set.
	Drift drift.Config
	// Nrun is the FT-DMP pipeline depth per fine-tune.
	Nrun int
	// Batch is the feature-extraction batch size.
	Batch int
	// Train configures the Tuner's gradient descent.
	Train ftdmp.TrainOptions
	// Rounds is the fleet fault-tolerance policy (quorum, per-store and
	// per-phase timeouts, retry/backoff). Zero fields take the tuner
	// defaults; see tuner.DefaultRoundOptions.
	Rounds tuner.RoundOptions
	// StateDir, when set, makes the deployment crash-consistent: the tuner
	// opens its WAL under <StateDir>/tuner and each store persists its model
	// under <StateDir>/<storeID>. A service restarted on the same directory
	// recovers the last committed model version, epoch, and labels.
	StateDir string
	// Serve routes uploads through the serving gateway — dynamic batching,
	// admission control, and the content-hash embedding cache — instead of
	// calling the inference server one photo at a time.
	Serve bool
	// ServeOptions tunes the gateway when Serve is set; zero fields take
	// serve.DefaultOptions.
	ServeOptions serve.Options
	// Quantize runs every frozen-backbone forward — online uploads, feature
	// extraction, offline inference — through the calibrated int8 replica
	// (core.ModelConfig.NewQuantBackbone). Training and the classifier stay
	// f64; the serving cache keys embeddings by precision mode.
	Quantize bool
	// DeltaEncoding selects the Check-N-Run delta wire codec the stores
	// negotiate with the Tuner: "dense" (default, exact legacy f64), "topk"
	// (top-k sparse with error feedback), or "int8" (quantized residual with
	// error feedback). See delta.ParseEncoding.
	DeltaEncoding string
}

// DefaultPolicy retrains every 1,000 uploads with the paper's defaults.
func DefaultPolicy() Policy {
	return Policy{
		RetrainEveryUploads: 1000,
		Nrun:                3,
		Batch:               128,
		Train:               ftdmp.DefaultTrainOptions(),
	}
}

// Service is a running photo system.
type Service struct {
	cfg    core.ModelConfig
	policy Policy

	stores []*pipestore.Node
	tn     *tuner.Node
	infer  *inferserver.Server
	gw     *serve.Gateway // nil unless Policy.Serve
	ln     net.Listener

	mu            sync.Mutex
	sinceRetrain  int
	retrainRounds int
	detector      *drift.Detector // nil unless the policy enables it
	driftFires    int
	degraded      bool // last retrain cycle failed; serving the old model

	met serviceMetrics
	log *slog.Logger
}

// serviceMetrics holds the continuous-training-loop instruments, registered
// once in Start.
type serviceMetrics struct {
	retrains      *telemetry.Counter
	retrainFails  *telemetry.Counter // cycles that failed (service kept serving)
	driftChecks   *telemetry.Counter // drift-trigger decisions taken
	driftFires    *telemetry.Counter // ... of which fired a retrain
	uploadSeconds *telemetry.Histogram
	retrainSecs   *telemetry.Histogram
	sinceRetrain  *telemetry.Gauge
}

func newServiceMetrics() serviceMetrics {
	reg := telemetry.Default
	return serviceMetrics{
		retrains:      reg.Counter("service_retrain_total"),
		retrainFails:  reg.Counter("service_retrain_failures_total"),
		driftChecks:   reg.Counter("service_drift_checks_total"),
		driftFires:    reg.Counter("service_drift_fires_total"),
		uploadSeconds: reg.Histogram("service_upload_seconds"),
		retrainSecs:   reg.Histogram("service_retrain_seconds"),
		sinceRetrain:  reg.Gauge("service_uploads_since_retrain"),
	}
}

// Start wires up a service with n PipeStores over loopback TCP.
func Start(cfg core.ModelConfig, n int, policy Policy) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("service: need at least one PipeStore")
	}
	if policy.Nrun < 1 {
		policy.Nrun = 1
	}
	if policy.Batch < 1 {
		policy.Batch = 128
	}
	tn, err := tuner.New(cfg)
	if err != nil {
		return nil, err
	}
	tn.SetRoundOptions(policy.Rounds)
	if policy.StateDir != "" {
		// Recover before any store registers: a Hello must be answered from
		// fully recovered state, never a half-replayed one.
		rec, err := tn.OpenState(filepath.Join(policy.StateDir, "tuner"))
		if err != nil {
			return nil, err
		}
		telemetry.ComponentLogger("service").Info("tuner state recovered",
			slog.Int("version", rec.Version),
			slog.Int("epoch", rec.Epoch),
			slog.Int("wal_records", rec.Records))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, n) }()

	s := &Service{
		cfg: cfg, policy: policy, tn: tn, ln: ln,
		met: newServiceMetrics(),
		log: telemetry.ComponentLogger("service"),
	}
	enc, err := delta.ParseEncoding(policy.DeltaEncoding)
	if err != nil {
		ln.Close()
		return nil, err
	}
	for i := 0; i < n; i++ {
		ps, err := pipestore.New(fmt.Sprintf("ps-%d", i), cfg)
		if err != nil {
			ln.Close()
			return nil, err
		}
		if policy.Quantize {
			if err := ps.SetQuantize(); err != nil {
				ln.Close()
				return nil, err
			}
		}
		if err := ps.SetDeltaEncoding(enc); err != nil {
			ln.Close()
			return nil, err
		}
		if policy.StateDir != "" {
			if _, err := ps.OpenState(filepath.Join(policy.StateDir, ps.ID)); err != nil {
				ln.Close()
				return nil, err
			}
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			ln.Close()
			return nil, err
		}
		go func(ps *pipestore.Node, conn net.Conn) { _ = ps.Serve(conn) }(ps, conn)
		s.stores = append(s.stores, ps)
	}
	if err := <-accepted; err != nil {
		ln.Close()
		return nil, err
	}
	// The online inference server routes uploads into the same stores and
	// shares the Tuner's label database so search sees every label source.
	inf, err := inferserver.New(cfg, s.stores, tn.DB())
	if err != nil {
		ln.Close()
		return nil, err
	}
	if policy.Quantize {
		if err := inf.SetQuantize(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	s.infer = inf
	if policy.Serve {
		gw, err := serve.New(inf, policy.ServeOptions)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.gw = gw
		// Readiness: the deployment is serving only while the gateway admits.
		telemetry.Default.Health().RegisterCheck("gateway", func() error {
			if !gw.Accepting() {
				return fmt.Errorf("gateway closed")
			}
			return nil
		})
	}
	if policy.RetrainOnDrift {
		dcfg := policy.Drift
		if dcfg.RefWindow == 0 {
			dcfg = drift.DefaultConfig()
		}
		det, err := drift.New(dcfg)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.detector = det
	}
	return s, nil
}

// DriftDetections returns how many times the drift trigger has fired.
func (s *Service) DriftDetections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.driftFires
}

// Close tears the deployment down. The gateway drains first so no admitted
// upload is abandoned.
func (s *Service) Close() {
	if s.gw != nil {
		s.gw.Close()
	}
	s.tn.Close()
	_ = s.ln.Close()
}

// Gateway exposes the serving gateway, or nil when Policy.Serve is off.
func (s *Service) Gateway() *serve.Gateway { return s.gw }

// Fleet exposes the tuner's fleet aggregator (the /fleet rollup source).
func (s *Service) Fleet() *telemetry.FleetAggregator { return s.tn.Fleet() }

// Stores exposes the PipeStore fleet (read-only use).
func (s *Service) Stores() []*pipestore.Node { return s.stores }

// DB exposes the label database.
func (s *Service) DB() *labeldb.DB { return s.tn.DB() }

// ModelVersion returns the live model version.
func (s *Service) ModelVersion() int { return s.tn.ModelVersion() }

// RetrainRounds returns how many automatic fine-tune cycles have run.
func (s *Service) RetrainRounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retrainRounds
}

// Upload runs the online path for one photo and, per policy, triggers a
// continuous-training cycle. It returns the assigned label.
func (s *Service) Upload(img dataset.Image) (inferserver.UploadResult, error) {
	defer func(t0 time.Time) { s.met.uploadSeconds.Observe(time.Since(t0).Seconds()) }(time.Now())
	var (
		res inferserver.UploadResult
		err error
	)
	if s.gw != nil {
		res, err = s.gw.UploadImage(img)
	} else {
		res, err = s.infer.Upload(img)
	}
	if err != nil {
		return res, err
	}
	s.mu.Lock()
	s.sinceRetrain++
	due := s.policy.RetrainEveryUploads > 0 && s.sinceRetrain >= s.policy.RetrainEveryUploads
	if s.detector != nil {
		s.met.driftChecks.Inc()
		if s.detector.Observe(res.Confidence) {
			s.driftFires++
			s.met.driftFires.Inc()
			due = true
			s.log.Info("drift detected, retraining",
				slog.Int("fires", s.driftFires),
				slog.Float64("confidence", res.Confidence))
		}
	}
	if due {
		s.sinceRetrain = 0
	}
	s.met.sinceRetrain.Set(float64(s.sinceRetrain))
	s.mu.Unlock()
	if due {
		if _, err := s.Retrain(); err != nil {
			// The upload itself succeeded — the photo is stored and labeled
			// by the last committed model. A retrain failure (tuner down,
			// failover in progress) degrades freshness, not availability:
			// surface it and keep serving.
			s.log.Error("automatic retrain failed; serving last committed model",
				slog.Int("model_version", s.ModelVersion()), slog.Any("err", err))
		}
	}
	return res, nil
}

// Degraded reports whether the last retrain cycle failed — the service is
// up and serving, but from a model older than the policy wants.
func (s *Service) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// setDegraded tracks retrain-loop health across the service and, when the
// serving gateway is present, mirrors it there (serve_degraded gauge plus
// a flight-recorder event).
func (s *Service) setDegraded(on bool, reason string) {
	s.mu.Lock()
	changed := s.degraded != on
	s.degraded = on
	s.mu.Unlock()
	if s.gw != nil {
		s.gw.SetDegraded(on, reason)
	} else if changed && on {
		telemetry.Default.Flight().Record(telemetry.FlightDegraded, "service", reason, 0, 0)
	}
}

// UploadBatch ingests many photos through the online path.
func (s *Service) UploadBatch(imgs []dataset.Image) error {
	for _, img := range imgs {
		if _, err := s.Upload(img); err != nil {
			return err
		}
	}
	return nil
}

// Retrain runs one full continuous-training cycle: pipelined FT-DMP
// fine-tuning across the PipeStores, Check-N-Run delta distribution (to the
// stores *and* the online inference server), and a near-data offline
// inference pass that refreshes every outdated label. The whole cycle runs
// under one distributed trace — the Tuner's spans and every PipeStore's
// shipped extraction/apply/infer spans nest under the retrain root, so
// /traces shows the complete upload-to-delta-broadcast story per round.
func (s *Service) Retrain() (tuner.Report, error) {
	span := telemetry.Default.Spans().StartTrace("service.retrain")
	tc := span.Context()
	logger := s.log.With(telemetry.TraceAttrs(tc)...)
	defer func() {
		s.met.retrainSecs.Observe(span.End().Seconds())
	}()
	rep, err := s.tn.FineTuneTraced(tc, s.policy.Nrun, s.policy.Batch, s.policy.Train)
	if err != nil {
		logger.Error("retrain failed during fine-tune", slog.Any("err", err))
		s.met.retrainFails.Inc()
		s.setDegraded(true, "fine-tune failed")
		return rep, err
	}
	if rep.Degraded {
		// The round committed without the full fleet: the service keeps
		// running (evicted stores rejoin and their labels refresh in a later
		// pass), but the gap is an operator-visible event.
		logger.Warn("retrain round committed degraded",
			slog.Any("failed_stores", rep.FailedStores),
			slog.Int("images_lost", rep.ImagesLost),
			slog.Int("participants", rep.Participants))
	}
	ad := telemetry.Default.Spans().StartSpanIn(tc, "service.apply-delta")
	err = s.infer.ApplyDelta(rep.DeltaBlob, rep.ModelVersion)
	ad.End()
	if err != nil {
		logger.Error("retrain failed applying delta to inference server", slog.Any("err", err))
		s.met.retrainFails.Inc()
		s.setDegraded(true, "delta apply failed")
		return rep, err
	}
	_, err = s.tn.OfflineInferenceTraced(tc, s.policy.Batch)
	if err != nil {
		logger.Error("retrain failed during offline inference", slog.Any("err", err))
		s.met.retrainFails.Inc()
		s.setDegraded(true, "offline inference failed")
		return rep, err
	}
	s.setDegraded(false, "retrain committed")
	s.mu.Lock()
	s.retrainRounds++
	rounds := s.retrainRounds
	s.met.retrains.Inc()
	if s.detector != nil {
		// The fleet just deployed a fresh model: restart the health baseline.
		s.detector.Rebase()
	}
	s.mu.Unlock()
	logger.Info("retrain cycle complete",
		slog.Int("round", rounds),
		slog.Int("model_version", rep.ModelVersion),
		slog.Int("images", rep.Images))
	return rep, nil
}

// Search returns the photos currently carrying the label.
func (s *Service) Search(label int) []uint64 { return s.infer.Search(label) }

// Evaluate measures the live model on a test batch.
func (s *Service) Evaluate(test *dataset.Batch, k int) (top1, topK float64) {
	return s.tn.Evaluate(test, k)
}
