package service

import (
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/drift"
)

// TestDriftTriggeredRetraining: with periodic retraining disabled, only the
// confidence-based drift detector drives the continuous-training loop. An
// initial model is trained on day-0 data; then heavily drifted uploads push
// online-inference confidence down until the detector fires and the service
// retrains itself.
func TestDriftTriggeredRetraining(t *testing.T) {
	wcfg := dataset.DefaultConfig(71)
	wcfg.InitialImages = 3000
	wcfg.DriftStep = 0.08 // aggressive drift so the signal is unmistakable
	world := dataset.NewWorld(wcfg)

	policy := quickPolicy(0) // no periodic trigger
	policy.RetrainOnDrift = true
	policy.Drift = drift.Config{RefWindow: 300, RecentWindow: 150, Delta: 0.05, MinDrop: 0.01}

	svc, err := Start(core.DefaultModelConfig(), 2, policy)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Bootstrap: ingest most of the day-0 population and train an initial
	// model, then upload the healthy remainder so the detector's reference
	// window captures post-deployment confidence.
	if err := svc.UploadBatch(world.Images()[:2300]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	if err := svc.UploadBatch(world.Images()[2300:]); err != nil {
		t.Fatal(err)
	}
	baseRounds := svc.RetrainRounds()
	if svc.DriftDetections() != 0 {
		t.Fatalf("detector fired during bootstrap (%d)", svc.DriftDetections())
	}

	// The world drifts hard; fresh uploads confuse the stale model.
	for d := 0; d < 30; d++ {
		world.AdvanceDay()
	}
	before := world.NumImages()
	for d := 0; d < 10 && svc.DriftDetections() == 0; d++ {
		world.AdvanceDay()
		newImgs := world.Images()[before:]
		before = world.NumImages()
		if err := svc.UploadBatch(newImgs); err != nil {
			t.Fatal(err)
		}
	}
	if svc.DriftDetections() == 0 {
		t.Fatal("drift detector never fired on heavily drifted uploads")
	}
	if svc.RetrainRounds() <= baseRounds {
		t.Fatal("drift detection must trigger retraining")
	}
}
