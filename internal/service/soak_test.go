package service

import (
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/trace"
)

// TestTraceDrivenSoak replays a generated workload trace — interleaved
// uploads and searches with Poisson arrivals — through the full service and
// checks the system invariants at the end: every upload stored and indexed,
// model versions consistent across all nodes, searches answered from the
// index, and the live model genuinely trained.
func TestTraceDrivenSoak(t *testing.T) {
	wcfg := dataset.DefaultConfig(61)
	wcfg.InitialImages = 3000
	world := dataset.NewWorld(wcfg)

	policy := quickPolicy(1400)
	svc, err := Start(core.DefaultModelConfig(), 3, policy)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	tcfg := trace.DefaultConfig(61)
	tcfg.Classes = world.MaxClasses()
	tcfg.Diurnal = true
	tcfg.Period = 60
	tcfg.Duration = 3000 / tcfg.UploadsPerSec * 1.5 // enough to drain the arrivals
	events, err := trace.Generate(tcfg, world.Images())
	if err != nil {
		t.Fatal(err)
	}
	stats := trace.Summarize(events)
	if stats.Uploads < 2800 {
		t.Fatalf("trace has %d uploads, want ≈3000", stats.Uploads)
	}
	uploads := stats.Uploads
	if stats.Searches == 0 {
		t.Fatal("trace has no searches")
	}

	var searched int
	err = trace.Replay(events,
		func(img dataset.Image) error {
			_, err := svc.Upload(img)
			return err
		},
		func(label int) error {
			searched += len(svc.Search(label))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	// Invariants.
	if svc.DB().Len() != uploads {
		t.Fatalf("index holds %d of %d uploads", svc.DB().Len(), uploads)
	}
	if want := uploads / 1400; svc.RetrainRounds() != want {
		t.Fatalf("retrain rounds = %d, want %d", svc.RetrainRounds(), want)
	}
	v := svc.RetrainRounds()
	if svc.ModelVersion() != v {
		t.Fatalf("model version = %d, want %d", svc.ModelVersion(), v)
	}
	for _, ps := range svc.Stores() {
		if ps.ModelVersion() != v {
			t.Fatalf("store %s at v%d", ps.ID, ps.ModelVersion())
		}
	}
	// The shards must cover all uploads without duplication.
	total := 0
	for _, ps := range svc.Stores() {
		total += ps.NumImages()
	}
	if total != uploads {
		t.Fatalf("stores hold %d photos", total)
	}
	// The trained model beats chance comfortably.
	test := world.FreshTestSet(600)
	top1, _ := svc.Evaluate(test, 5)
	if top1 < 0.5 {
		t.Fatalf("soaked model top-1 %.2f", top1)
	}
	if searched == 0 {
		t.Fatal("searches returned nothing despite a populated index")
	}
}
