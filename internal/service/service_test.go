package service

import (
	"sync"
	"testing"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/serve"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tuner"
)

func startService(t *testing.T, stores int, policy Policy) (*Service, *dataset.World) {
	t.Helper()
	wcfg := dataset.DefaultConfig(51)
	wcfg.InitialImages = 2400
	world := dataset.NewWorld(wcfg)
	s, err := Start(core.DefaultModelConfig(), stores, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, world
}

func quickPolicy(every int) Policy {
	p := DefaultPolicy()
	p.RetrainEveryUploads = every
	p.Train.MaxEpochs = 20
	return p
}

// TestDayInTheLife drives the full Fig 3 loop: uploads through the online
// path, an automatic continuous-training cycle, delta propagation to both
// the stores and the inference server, label refresh, and search.
func TestDayInTheLife(t *testing.T) {
	s, world := startService(t, 3, quickPolicy(2000))
	imgs := world.Images()

	// Phase 1: uploads labeled by the untrained v0 model.
	if err := s.UploadBatch(imgs[:1800]); err != nil {
		t.Fatal(err)
	}
	if s.RetrainRounds() != 0 {
		t.Fatal("policy should not have fired yet")
	}
	if s.DB().Len() != 1800 {
		t.Fatalf("db has %d entries", s.DB().Len())
	}

	// Phase 2: crossing the policy threshold triggers retraining.
	if err := s.UploadBatch(imgs[1800:2400]); err != nil {
		t.Fatal(err)
	}
	if s.RetrainRounds() != 1 {
		t.Fatalf("retrain rounds = %d, want 1", s.RetrainRounds())
	}
	if s.ModelVersion() != 1 {
		t.Fatalf("model version = %d, want 1", s.ModelVersion())
	}
	// Every store and the inference server must be on v1.
	for _, ps := range s.Stores() {
		if ps.ModelVersion() != 1 {
			t.Fatalf("store %s stuck at v%d", ps.ID, ps.ModelVersion())
		}
	}
	// Labels were refreshed: nothing predates v1 and accuracy is real.
	if n := s.DB().OutdatedCount(1); n != 0 {
		t.Fatalf("%d outdated labels after refresh", n)
	}
	correct, total := 0, 0
	for _, img := range imgs[:2400] {
		e, err := s.DB().Get(img.ID)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if e.Label == img.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.5 {
		t.Fatalf("post-retrain label accuracy %.2f too low", acc)
	}

	// Phase 3: search returns indexed photos with valid locations.
	found := 0
	for label := 0; label < world.MaxClasses(); label++ {
		found += len(s.Search(label))
	}
	if found != 2400 {
		t.Fatalf("search covers %d photos, want 2400", found)
	}

	// Phase 4: the live model beats the untrained baseline on fresh data.
	test := world.FreshTestSet(600)
	top1, _ := s.Evaluate(test, 5)
	if top1 < 0.5 {
		t.Fatalf("live model top-1 %.2f too low", top1)
	}
}

func TestManualRetrainAndVersionChain(t *testing.T) {
	s, world := startService(t, 2, quickPolicy(0)) // no auto retrain
	if err := s.UploadBatch(world.Images()[:1000]); err != nil {
		t.Fatal(err)
	}
	if s.RetrainRounds() != 0 {
		t.Fatal("auto retrain disabled")
	}
	for v := 1; v <= 2; v++ {
		rep, err := s.Retrain()
		if err != nil {
			t.Fatal(err)
		}
		if rep.ModelVersion != v {
			t.Fatalf("round %d produced version %d", v, rep.ModelVersion)
		}
	}
	if s.ModelVersion() != 2 {
		t.Fatalf("final version %d", s.ModelVersion())
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(core.DefaultModelConfig(), 0, DefaultPolicy()); err == nil {
		t.Fatal("zero stores must error")
	}
	bad := core.DefaultModelConfig()
	bad.FeatureDim = 0
	if _, err := Start(bad, 1, DefaultPolicy()); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestRetrainWithoutDataFails(t *testing.T) {
	s, _ := startService(t, 2, quickPolicy(0))
	if _, err := s.Retrain(); err == nil {
		t.Fatal("retraining with empty stores must fail")
	}
}

// The policy's fault-tolerance knobs reach the Tuner, with zero fields
// defaulted.
func TestPolicyRoundOptionsPropagate(t *testing.T) {
	pol := DefaultPolicy()
	pol.RetrainEveryUploads = 0
	pol.Rounds.Quorum = 2
	pol.Rounds.StoreTimeout = 7 * time.Second
	s, _ := startService(t, 2, pol)
	got := s.tn.RoundOptionsInEffect()
	if got.Quorum != 2 || got.StoreTimeout != 7*time.Second {
		t.Fatalf("round options not applied: %+v", got)
	}
	def := tuner.DefaultRoundOptions()
	if got.RoundTimeout != def.RoundTimeout || got.MaxRetries != def.MaxRetries {
		t.Fatalf("zero fields must take defaults: %+v", got)
	}
}

// With Policy.Serve the upload path runs through the serving gateway:
// concurrent uploads coalesce into batches, every one is accounted for, and
// the label database sees them all.
func TestServePolicyRoutesThroughGateway(t *testing.T) {
	pol := quickPolicy(0)
	pol.Serve = true
	pol.ServeOptions = serve.Options{
		MaxBatch:     8,
		MaxWait:      500 * time.Microsecond,
		CacheEntries: 128,
		Registry:     telemetry.NewRegistry(),
	}
	s, world := startService(t, 2, pol)
	if s.Gateway() == nil {
		t.Fatal("gateway must be running")
	}

	const n = 120
	imgs := world.Images()[:n]
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Upload(imgs[i]); err != nil {
				t.Errorf("upload %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if s.DB().Len() != n {
		t.Fatalf("db has %d entries, want %d", s.DB().Len(), n)
	}
	st := s.Gateway().Stats()
	if st.Admitted != n || st.Completed != n || st.Rejected() != 0 || st.Errors != 0 {
		t.Fatalf("gateway stats = %+v", st)
	}
	if st.Batches >= n {
		t.Fatalf("no coalescing: %d batches for %d uploads", st.Batches, n)
	}
}

// TestUploadSurvivesRetrainFailure: when the training backend dies, uploads
// keep landing — labeled by the last committed model — and the service
// reports itself degraded instead of bouncing the client's request.
func TestUploadSurvivesRetrainFailure(t *testing.T) {
	p := quickPolicy(2)
	p.Serve = true
	p.ServeOptions = serve.Options{MaxBatch: 4, MaxWait: time.Millisecond}
	s, world := startService(t, 2, p)
	imgs := world.Images()

	// Kill the tuner's store sessions: the next policy-due retrain fails.
	s.tn.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Upload(imgs[i]); err != nil {
			t.Fatalf("upload %d failed: %v (must survive a dead training loop)", i, err)
		}
	}
	if !s.Degraded() {
		t.Fatal("service must report degraded after a failed retrain cycle")
	}
	if !s.Gateway().Degraded() {
		t.Fatal("gateway must mirror degraded mode")
	}
	// Serving continues: more uploads, search still answers.
	if _, err := s.Upload(imgs[2]); err != nil {
		t.Fatalf("upload while degraded: %v", err)
	}
	if s.DB().Len() != 3 {
		t.Fatalf("db has %d entries, want 3", s.DB().Len())
	}
}
