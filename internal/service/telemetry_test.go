package service

import (
	"strings"
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/telemetry"
)

// After a fine-tune + offline-inference round through the real TCP wiring,
// the default registry must show wire traffic, per-stage NPE latency, tuner
// round counters and upload-path latency — the acceptance check for the
// telemetry subsystem, exercised end to end.
func TestServiceTelemetryEndToEnd(t *testing.T) {
	counter := func(name string) int64 { return telemetry.Default.Counter(name).Value() }
	sentBefore := counter("wire_sent_bytes_total")
	roundsBefore := counter("tuner_train_rounds_total")
	retrainsBefore := counter("service_retrain_total")

	cfg := core.DefaultModelConfig()
	policy := DefaultPolicy()
	policy.RetrainEveryUploads = 0
	svc, err := Start(cfg, 2, policy)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	world := dataset.NewWorld(dataset.DefaultConfig(7))
	if err := svc.UploadBatch(world.Images()[:400]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}

	if d := counter("wire_sent_bytes_total") - sentBefore; d <= 0 {
		t.Fatalf("wire bytes advanced by %d, want > 0", d)
	}
	if d := counter("tuner_train_rounds_total") - roundsBefore; d != 1 {
		t.Fatalf("tuner rounds advanced by %d, want 1", d)
	}
	if d := counter("service_retrain_total") - retrainsBefore; d != 1 {
		t.Fatalf("service retrains advanced by %d, want 1", d)
	}

	// Per-stage NPE latency histograms (the Fig 6 phase breakdown) must have
	// fine-tune and offline-inference observations, and the upload path must
	// be timed.
	for _, name := range []string{
		`npe_stage_seconds{task="finetune",stage="read"}`,
		`npe_stage_seconds{task="finetune",stage="fecl"}`,
		`npe_stage_seconds{task="offline-inference",stage="read"}`,
		"inferserver_upload_seconds",
		"tuner_finetune_seconds",
	} {
		h := telemetry.Default.Histogram(name)
		if h.Count() == 0 {
			t.Fatalf("histogram %s has no observations", name)
		}
		if p99 := h.Quantile(0.99); p99 <= 0 {
			t.Fatalf("histogram %s p99 = %v, want > 0", name, p99)
		}
	}

	// The retrain left a span tree in the ring buffer: service.retrain with
	// the tuner's finetune / offline-inference rounds and the delta apply
	// as direct children (one shared trace).
	recs := telemetry.Default.Spans().Recent()
	var rootID telemetry.SpanID
	names := map[string]bool{}
	for _, r := range recs {
		if r.Name == "service.retrain" {
			rootID = r.ID
		}
	}
	if rootID == 0 {
		t.Fatal("no service.retrain span recorded")
	}
	for _, r := range recs {
		if r.Parent == rootID {
			names[r.Name] = true
		}
	}
	for _, want := range []string{"tuner.finetune", "service.apply-delta", "tuner.offline-inference"} {
		if !names[want] {
			t.Fatalf("span %s missing under service.retrain (have %v)", want, names)
		}
	}

	// And the whole thing is visible through the text exposition.
	var sb strings.Builder
	telemetry.WriteMetricsText(&sb, telemetry.Default.Snapshot())
	body := sb.String()
	for _, want := range []string{
		`wire_send_total{type="features"}`,
		`npe_stage_seconds_bucket{task="finetune",stage="read",le=`,
		"tuner_train_rounds_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics text missing %q", want)
		}
	}
}
