package cost

import (
	"math"
	"testing"

	"ndpipe/internal/cluster"
)

func TestUSDBasics(t *testing.T) {
	ps := cluster.PipeStore(10)
	got, err := USD([]Item{{Server: ps, Count: 2, Duration: 3600}})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * ps.HourlyUSD
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("USD = %v, want %v", got, want)
	}
}

func TestUSDValidation(t *testing.T) {
	if _, err := USD([]Item{{Server: nil, Duration: 1}}); err == nil {
		t.Fatal("nil server must error")
	}
	if _, err := USD([]Item{{Server: cluster.Tuner(10), Duration: -1}}); err == nil {
		t.Fatal("negative duration must error")
	}
}

func TestFineTuneCostShrinksWithMoreStores(t *testing.T) {
	// Fig 21(a): with few PipeStores the job runs long and costs more; more
	// stores shorten it faster than they add hourly cost (until saturation).
	store := cluster.PipeStore(10)
	tuner := cluster.Tuner(10)
	// Job duration ∝ 1/min(stores, 8) in the scaling region.
	dur := func(stores int) float64 {
		eff := stores
		if eff > 8 {
			eff = 8
		}
		return 4000 / float64(eff)
	}
	c2, err := FineTuneNDPipe(store, tuner, 2, dur(2))
	if err != nil {
		t.Fatal(err)
	}
	c8, err := FineTuneNDPipe(store, tuner, 8, dur(8))
	if err != nil {
		t.Fatal(err)
	}
	c20, err := FineTuneNDPipe(store, tuner, 20, dur(20))
	if err != nil {
		t.Fatal(err)
	}
	if c8 >= c2 {
		t.Fatalf("8 stores should be cheaper than 2: %v vs %v", c8, c2)
	}
	if c20 <= c8 {
		t.Fatalf("idle stores beyond saturation must raise cost: %v vs %v", c20, c8)
	}
}

func TestFineTuneSRV(t *testing.T) {
	host := cluster.SRVHost(10)
	storage := cluster.StorageServer(10)
	got, err := FineTuneSRV(host, storage, 4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	want := host.HourlyUSD + 4*storage.HourlyUSD
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SRV cost = %v, want %v", got, want)
	}
}
