// Package cost estimates operational cost in the style of the paper's AWS
// pricing analysis (§7.2, Fig 21): instance-hours × on-demand price for
// every server involved in a job.
package cost

import (
	"fmt"

	"ndpipe/internal/cluster"
)

// Item is one billed server group.
type Item struct {
	Server   *cluster.Server
	Count    int
	Duration float64 // seconds
}

// USD returns the total cost of the items.
func USD(items []Item) (float64, error) {
	var total float64
	for _, it := range items {
		if it.Server == nil {
			return 0, fmt.Errorf("cost: nil server")
		}
		if it.Duration < 0 {
			return 0, fmt.Errorf("cost: negative duration")
		}
		n := it.Count
		if n <= 0 {
			n = 1
		}
		total += it.Server.HourlyUSD * (it.Duration / 3600) * float64(n)
	}
	return total, nil
}

// FineTuneNDPipe prices an NDPipe fine-tuning job: N PipeStores + one Tuner
// for its duration.
func FineTuneNDPipe(store, tuner *cluster.Server, stores int, duration float64) (float64, error) {
	return USD([]Item{
		{Server: store, Count: stores, Duration: duration},
		{Server: tuner, Count: 1, Duration: duration},
	})
}

// FineTuneSRV prices the centralized baseline: the host plus its four
// storage servers for the job duration.
func FineTuneSRV(host, storage *cluster.Server, storageServers int, duration float64) (float64, error) {
	return USD([]Item{
		{Server: host, Count: 1, Duration: duration},
		{Server: storage, Count: storageServers, Duration: duration},
	})
}
