package delta

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

func TestParseEncoding(t *testing.T) {
	cases := []struct {
		in   string
		want Encoding
	}{
		{"", EncodingDense}, {"dense", EncodingDense},
		{"topk", EncodingTopK}, {"int8", EncodingInt8},
	}
	for _, c := range cases {
		got, err := ParseEncoding(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseEncoding(%q) = %v, %v", c.in, got, err)
		}
		if !got.Valid() {
			t.Fatalf("%v must be Valid", got)
		}
	}
	if _, err := ParseEncoding("zstd"); err == nil {
		t.Fatal("unknown encoding must error")
	}
	if Encoding(3).Valid() || Encoding(255).Valid() {
		t.Fatal("future encodings must not be Valid")
	}
	if EncodingDense.String() != "dense" || EncodingTopK.String() != "topk" || EncodingInt8.String() != "int8" {
		t.Fatal("String must match the flag/metric-label names")
	}
}

func TestNewCompressorRejectsDense(t *testing.T) {
	base, _ := twoSnapshots(10, 0)
	if _, err := NewCompressor(EncodingDense, base); err == nil {
		t.Fatal("dense compressor must be rejected (dense has no error feedback)")
	}
	if _, err := NewCompressor(Encoding(7), base); err == nil {
		t.Fatal("invalid encoding must be rejected")
	}
}

// receiver replays blobs the way a PipeStore does: decode, then apply
// additively onto its reconstructed state.
type receiver struct {
	t     *testing.T
	state nn.Snapshot
}

func newReceiver(t *testing.T, base nn.Snapshot) *receiver {
	st := make(nn.Snapshot, len(base))
	for k, m := range base {
		st[k] = m.Clone()
	}
	return &receiver{t: t, state: st}
}

func (r *receiver) apply(blob []byte, wantEnc Encoding) {
	r.t.Helper()
	cd, err := DecodeCompressed(blob)
	if err != nil {
		r.t.Fatal(err)
	}
	if cd.Enc != wantEnc {
		r.t.Fatalf("blob self-describes as %v, want %v", cd.Enc, wantEnc)
	}
	next, err := cd.ApplyAdd(r.state)
	if err != nil {
		r.t.Fatal(err)
	}
	r.state = next
}

// maxErr returns the largest per-element |a-b| across two same-shaped
// snapshots.
func maxErr(t *testing.T, a, b nn.Snapshot) float64 {
	t.Helper()
	var worst float64
	for k, ma := range a {
		mb, ok := b[k]
		if !ok || len(ma.Data) != len(mb.Data) {
			t.Fatalf("snapshot shape mismatch on %q", k)
		}
		for i := range ma.Data {
			if d := math.Abs(ma.Data[i] - mb.Data[i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestCompressedRoundTrip checks the core contract for both lossy codecs:
// what the receiver reconstructs is bitwise what the compressor believes it
// shipped. That identity is what makes error feedback sound — the next
// residual is computed against the peer's true state.
func TestCompressedRoundTrip(t *testing.T) {
	for _, enc := range []Encoding{EncodingTopK, EncodingInt8} {
		t.Run(enc.String(), func(t *testing.T) {
			old, target := twoSnapshots(11, 0.5)
			comp, err := NewCompressor(enc, old)
			if err != nil {
				t.Fatal(err)
			}
			rx := newReceiver(t, old)
			blob, err := comp.Compress(target)
			if err != nil {
				t.Fatal(err)
			}
			rx.apply(blob, enc)
			if !SnapshotsEqual(rx.state, comp.Shipped(), 0) {
				t.Fatal("receiver state must bitwise-equal the compressor's shipped snapshot")
			}
			// Old base must be untouched by both sides.
			base, _ := twoSnapshots(11, 0.5)
			if !SnapshotsEqual(old, base, 0) {
				t.Fatal("Compress/ApplyAdd must not mutate the base snapshot")
			}
		})
	}
}

// TestErrorFeedbackInt8 drives repeated int8 rounds toward a fixed target:
// the per-round error must shrink geometrically (each round's scale is
// maxResid/127, and the residual after a round is ≤ scale/2), and the
// shipped/receiver identity must hold every round.
func TestErrorFeedbackInt8(t *testing.T) {
	old, target := twoSnapshots(12, 1.0)
	comp, err := NewCompressor(EncodingInt8, old)
	if err != nil {
		t.Fatal(err)
	}
	rx := newReceiver(t, old)
	prev := maxErr(t, old, target)
	for round := 0; round < 4; round++ {
		blob, err := comp.Compress(target)
		if err != nil {
			t.Fatal(err)
		}
		rx.apply(blob, EncodingInt8)
		if !SnapshotsEqual(rx.state, comp.Shipped(), 0) {
			t.Fatalf("round %d: receiver diverged from shipped state", round)
		}
		cur := maxErr(t, rx.state, target)
		// Quantizing the residual at scale = maxResid/127 bounds the new
		// residual by scale/2, i.e. ≥254× smaller; 100× leaves slack for
		// per-parameter scales.
		if cur > prev/100 {
			t.Fatalf("round %d: error %g did not shrink ≥100× from %g", round, cur, prev)
		}
		prev = cur
		if prev == 0 {
			break
		}
	}
	if prev > 1e-9 {
		t.Fatalf("after 4 rounds of error feedback, residual %g still above 1e-9", prev)
	}
}

// TestErrorFeedbackTopK: each round ships the ⌈n/8⌉ largest residual entries
// exactly, so toward a fixed target the stream must converge bitwise within
// topKDenom+1 rounds.
func TestErrorFeedbackTopK(t *testing.T) {
	old, target := twoSnapshots(13, 1.0)
	comp, err := NewCompressor(EncodingTopK, old)
	if err != nil {
		t.Fatal(err)
	}
	rx := newReceiver(t, old)
	converged := -1
	for round := 0; round < topKDenom+1; round++ {
		blob, err := comp.Compress(target)
		if err != nil {
			t.Fatal(err)
		}
		rx.apply(blob, EncodingTopK)
		if !SnapshotsEqual(rx.state, comp.Shipped(), 0) {
			t.Fatalf("round %d: receiver diverged from shipped state", round)
		}
		if SnapshotsEqual(rx.state, target, 0) {
			converged = round
			break
		}
	}
	if converged < 0 {
		t.Fatalf("top-k did not converge bitwise within %d rounds (max err %g)",
			topKDenom+1, maxErr(t, rx.state, target))
	}
}

// TestMovingTargetTracking is the realistic fine-tune shape: the target
// moves a little every round (momentum SGD), and both codecs must track it
// with bounded error instead of accumulating drift.
func TestMovingTargetTracking(t *testing.T) {
	for _, enc := range []Encoding{EncodingTopK, EncodingInt8} {
		t.Run(enc.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(14))
			old, target := twoSnapshots(14, 1.0)
			comp, err := NewCompressor(enc, old)
			if err != nil {
				t.Fatal(err)
			}
			rx := newReceiver(t, old)
			var errs []float64
			for round := 0; round < 2*topKDenom; round++ {
				for _, m := range target {
					for i := range m.Data {
						m.Data[i] += rng.NormFloat64() * 0.01
					}
				}
				blob, err := comp.Compress(target)
				if err != nil {
					t.Fatal(err)
				}
				rx.apply(blob, enc)
				if !SnapshotsEqual(rx.state, comp.Shipped(), 0) {
					t.Fatalf("round %d: receiver diverged from shipped state", round)
				}
				errs = append(errs, maxErr(t, rx.state, target))
			}
			// Error feedback means steady-state error is bounded by the
			// per-round step, not by accumulated drops. Top-k needs
			// ~topKDenom rounds to drain the initial offset first (it ships
			// 1/topKDenom of the entries per round), so only the tail of the
			// run is in steady state.
			for i, e := range errs[len(errs)-4:] {
				if e > 0.2 {
					t.Fatalf("round %d: tracking error %g grew unbounded",
						len(errs)-4+i, e)
				}
			}
		})
	}
}

// TestByteReduction is the wire gate: on a classifier-shaped model where a
// round of momentum SGD touched every weight, both compressed encodings
// must ship ≥4× fewer bytes than the legacy dense codec.
func TestByteReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := nn.NewMLP("clf", []int{32, 128, 26}, rng) // service classifier shape
	old := net.TakeSnapshot()
	target := net.TakeSnapshot()
	for _, m := range target {
		for i := range m.Data {
			m.Data[i] += rng.NormFloat64() * 0.01 // SGD: every weight moves
		}
	}
	d, err := Diff(old, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, enc := range []Encoding{EncodingTopK, EncodingInt8} {
		comp, err := NewCompressor(enc, old)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := comp.Compress(target)
		if err != nil {
			t.Fatal(err)
		}
		red := float64(len(dense)) / float64(len(blob))
		t.Logf("%s: dense %dB → %dB (%.1f×)", enc, len(dense), len(blob), red)
		if red < 4 {
			t.Fatalf("%s reduction %.1f×, want ≥4×", enc, red)
		}
	}
}

func TestCompressShapeAndNameChecks(t *testing.T) {
	old, _ := twoSnapshots(16, 0)
	comp, err := NewCompressor(EncodingInt8, old)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Compress(nn.Snapshot{"ghost": tensor.New(2, 2)}); err == nil {
		t.Fatal("unknown parameter must error")
	}
	bad := nn.Snapshot{}
	for k := range old {
		bad[k] = tensor.New(1, 1)
	}
	if _, err := comp.Compress(bad); err == nil {
		t.Fatal("shape change must error")
	}
}

func TestApplyAddGuards(t *testing.T) {
	c := &Compressed{Enc: EncodingInt8,
		Entries: map[string][]Update{"ghost": {{Index: 0, Value: 1}}}}
	if _, err := c.ApplyAdd(nn.Snapshot{}); err == nil {
		t.Fatal("missing base parameter must error")
	}
	c = &Compressed{Enc: EncodingInt8,
		Entries: map[string][]Update{"w": {{Index: 99, Value: 1}}}}
	if _, err := c.ApplyAdd(nn.Snapshot{"w": tensor.New(2, 2)}); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

// deflateBlob wraps a raw payload the way Compress does: encoding header
// byte + deflate stream. Used to hand-craft hostile inputs.
func deflateBlob(t *testing.T, enc Encoding, raw []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	out.WriteByte(byte(enc))
	zw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestDecodeCompressedHostileInputs(t *testing.T) {
	le := binary.LittleEndian
	u32 := func(v uint32) []byte { b := make([]byte, 4); le.PutUint32(b, v); return b }
	f64 := func(v float64) []byte {
		b := make([]byte, 8)
		le.PutUint64(b, math.Float64bits(v))
		return b
	}
	cat := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }
	param := func(name string, body []byte) []byte {
		return cat(u32(uint32(len(name))), []byte(name), body)
	}

	cases := []struct {
		name string
		blob []byte
	}{
		{"empty", nil},
		{"dense header", []byte{0}},
		{"future encoding header", []byte{9, 1, 2, 3}},
		{"not deflate", []byte{byte(EncodingInt8), 0xff, 0xff, 0xff}},
		{"truncated stream", deflateBlob(t, EncodingInt8, u32(1))[:3]},
		{"absurd param count", deflateBlob(t, EncodingInt8, u32(1<<24))},
		{"absurd name length", deflateBlob(t, EncodingInt8,
			cat(u32(1), u32(1<<20)))},
		{"topk count exceeds payload", deflateBlob(t, EncodingTopK,
			cat(u32(1), param("w", u32(1000))))},
		{"topk absurd count", deflateBlob(t, EncodingTopK,
			cat(u32(1), param("w", u32(maxCompressedElems+1))))},
		{"int8 NaN scale", deflateBlob(t, EncodingInt8,
			cat(u32(1), param("w", cat(u32(4), f64(math.NaN()), []byte{1, 2, 3, 4}))))},
		{"int8 negative scale", deflateBlob(t, EncodingInt8,
			cat(u32(1), param("w", cat(u32(4), f64(-1), []byte{1, 2, 3, 4}))))},
		{"int8 count exceeds payload", deflateBlob(t, EncodingInt8,
			cat(u32(1), param("w", cat(u32(1000), f64(0.5)))))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeCompressed(c.blob); err == nil {
				t.Fatalf("hostile blob %q must not decode", c.name)
			}
		})
	}
}

// TestInt8EmptyResidual: compressing an already-converged target must
// produce a decodable blob with zero updates, not an error.
func TestInt8EmptyResidual(t *testing.T) {
	old, _ := twoSnapshots(17, 0)
	comp, err := NewCompressor(EncodingInt8, old)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := comp.Compress(old)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := DecodeCompressed(blob)
	if err != nil {
		t.Fatal(err)
	}
	if cd.NumUpdates() != 0 {
		t.Fatalf("zero residual shipped %d updates", cd.NumUpdates())
	}
}
