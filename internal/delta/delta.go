// Package delta implements Check-N-Run-style model distribution (§5,
// citing [29]): instead of shipping whole models to every PipeStore after
// each fine-tune, the Tuner ships the compressed *difference* between the
// new and previous model. Fine-tuning only changes the last few layers, so
// the delta is a tiny fraction of the model — the paper reports up to a
// 427.4× traffic reduction.
//
// The codec is real: it diffs two nn.Snapshots, sparse-encodes the changed
// weights (index, value) and deflate-compresses the result. Unchanged
// parameters cost nothing.
package delta

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"ndpipe/internal/model"
	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

// Delta is a sparse model update from one snapshot to the next.
type Delta struct {
	// Entries maps parameter name → sparse updates for that matrix.
	Entries map[string][]Update
}

// Update sets one scalar weight.
type Update struct {
	Index int
	Value float64
}

// Diff computes the sparse delta that transforms old into new. Weights
// whose absolute change is ≤ tol are treated as unchanged (tol 0 means
// exact). Parameters present in new but not old are encoded densely.
func Diff(old, new nn.Snapshot, tol float64) (*Delta, error) {
	d := &Delta{Entries: make(map[string][]Update)}
	for name, nw := range new {
		ow, ok := old[name]
		if !ok {
			ups := make([]Update, 0, len(nw.Data))
			for i, v := range nw.Data {
				ups = append(ups, Update{Index: i, Value: v})
			}
			d.Entries[name] = ups
			continue
		}
		if ow.Rows != nw.Rows || ow.Cols != nw.Cols {
			return nil, fmt.Errorf("delta: parameter %q changed shape %dx%d→%dx%d",
				name, ow.Rows, ow.Cols, nw.Rows, nw.Cols)
		}
		var ups []Update
		for i, v := range nw.Data {
			if math.Abs(v-ow.Data[i]) > tol {
				ups = append(ups, Update{Index: i, Value: v})
			}
		}
		if len(ups) > 0 {
			d.Entries[name] = ups
		}
	}
	return d, nil
}

// Apply produces the new snapshot by applying d to base. Base matrices are
// cloned, never mutated.
func (d *Delta) Apply(base nn.Snapshot) (nn.Snapshot, error) {
	out := make(nn.Snapshot, len(base))
	for name, m := range base {
		out[name] = m.Clone()
	}
	for name, ups := range d.Entries {
		m, ok := out[name]
		if !ok {
			return nil, fmt.Errorf("delta: base snapshot missing parameter %q", name)
		}
		for _, u := range ups {
			if u.Index < 0 || u.Index >= len(m.Data) {
				return nil, fmt.Errorf("delta: index %d out of range for %q", u.Index, name)
			}
			m.Data[u.Index] = u.Value
		}
	}
	return out, nil
}

// NumUpdates returns the total number of changed scalars.
func (d *Delta) NumUpdates() int {
	n := 0
	for _, ups := range d.Entries {
		n += len(ups)
	}
	return n
}

// Encode serializes and deflate-compresses the delta.
func (d *Delta) Encode() ([]byte, error) {
	var raw bytes.Buffer
	names := make([]string, 0, len(d.Entries))
	for n := range d.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := binary.Write(&raw, binary.LittleEndian, uint32(len(names))); err != nil {
		return nil, err
	}
	for _, name := range names {
		ups := d.Entries[name]
		if err := binary.Write(&raw, binary.LittleEndian, uint32(len(name))); err != nil {
			return nil, err
		}
		raw.WriteString(name)
		if err := binary.Write(&raw, binary.LittleEndian, uint32(len(ups))); err != nil {
			return nil, err
		}
		// Delta-encode indices (they are sorted ascending by construction)
		// so deflate sees small integers.
		prev := 0
		for _, u := range ups {
			if err := binary.Write(&raw, binary.LittleEndian, uint32(u.Index-prev)); err != nil {
				return nil, err
			}
			prev = u.Index
			if err := binary.Write(&raw, binary.LittleEndian, math.Float64bits(u.Value)); err != nil {
				return nil, err
			}
		}
	}
	var out bytes.Buffer
	zw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decode reverses Encode.
func Decode(data []byte) (*Delta, error) {
	zr := flate.NewReader(bytes.NewReader(data))
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("delta: inflate: %w", err)
	}
	r := bytes.NewReader(raw)
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	d := &Delta{Entries: make(map[string][]Update, count)}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("delta: absurd name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, err
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if uint64(n) > 1<<28 {
			return nil, fmt.Errorf("delta: absurd update count %d", n)
		}
		ups := make([]Update, n)
		prev := 0
		for j := range ups {
			var gap uint32
			if err := binary.Read(r, binary.LittleEndian, &gap); err != nil {
				return nil, err
			}
			var bits uint64
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return nil, err
			}
			prev += int(gap)
			ups[j] = Update{Index: prev, Value: math.Float64frombits(bits)}
		}
		d.Entries[string(nameBuf)] = ups
	}
	return d, nil
}

// SnapshotsEqual reports whether two snapshots match within tol.
func SnapshotsEqual(a, b nn.Snapshot, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for name, m := range a {
		o, ok := b[name]
		if !ok || !tensor.Equal(m, o, tol) {
			return false
		}
	}
	return true
}

// DistributionBytes estimates the on-the-wire size of one model update for
// the simulator's traffic accounting: the trainable tail's weights, sparse
// plus deflate shrink them by ≈12× (measured on this codec), which against
// the full model reproduces the paper's two-orders-of-magnitude reduction
// (ResNet50: 102 MB model → ≈0.7 MB delta ≈ 150×; paper reports "up to
// 427.4×" for its most favourable model).
func DistributionBytes(m *model.Spec) int64 {
	const codecShrink = 12
	return m.TrainableParamBytes() / codecShrink
}
