package delta

import (
	"math/rand"
	"testing"
)

// FuzzDecode hammers the delta codec with arbitrary bytes: it must either
// error or produce a structurally valid delta, never panic.
func FuzzDecode(f *testing.F) {
	// Seed with a real encoded delta and some corruptions of it.
	old, cur := twoSnapshots(1, 0.2)
	d, err := Diff(old, cur, 0)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := d.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{0x78, 0x9c})
	corrupt := append([]byte(nil), blob...)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 16 && i < len(corrupt); i++ {
		corrupt[rng.Intn(len(corrupt))] ^= 0xFF
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must be internally consistent.
		if d.NumUpdates() < 0 {
			t.Fatal("negative update count")
		}
		for name, ups := range d.Entries {
			if name == "" {
				t.Fatal("empty parameter name")
			}
			prev := -1
			for _, u := range ups {
				if u.Index < prev {
					t.Fatal("indices not ascending")
				}
				prev = u.Index
			}
		}
	})
}
