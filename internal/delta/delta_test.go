package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ndpipe/internal/model"
	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

func twoSnapshots(seed int64, changeFrac float64) (old, new nn.Snapshot) {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP("m", []int{16, 32, 8}, rng)
	old = net.TakeSnapshot()
	new = net.TakeSnapshot()
	for _, m := range new {
		for i := range m.Data {
			if rng.Float64() < changeFrac {
				m.Data[i] += rng.NormFloat64()
			}
		}
	}
	return old, new
}

func TestDiffApplyRoundTrip(t *testing.T) {
	old, new := twoSnapshots(1, 0.1)
	d, err := Diff(old, new, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	if !SnapshotsEqual(got, new, 0) {
		t.Fatal("Apply(Diff) must reproduce the new snapshot exactly")
	}
	// Old must be untouched.
	if SnapshotsEqual(old, new, 0) {
		t.Fatal("test setup: snapshots should differ")
	}
}

func TestDiffEmptyForIdenticalSnapshots(t *testing.T) {
	old, _ := twoSnapshots(2, 0)
	d, err := Diff(old, old, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUpdates() != 0 {
		t.Fatalf("identical snapshots produced %d updates", d.NumUpdates())
	}
}

func TestDiffSparsityMatchesChanges(t *testing.T) {
	old, new := twoSnapshots(3, 0.05)
	d, _ := Diff(old, new, 0)
	total := 0
	for _, m := range old {
		total += len(m.Data)
	}
	frac := float64(d.NumUpdates()) / float64(total)
	if frac < 0.02 || frac > 0.10 {
		t.Fatalf("update fraction %.3f, expected ≈0.05", frac)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	old, new := twoSnapshots(4, 0.2)
	d, _ := Diff(old, new, 0)
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	if !SnapshotsEqual(got, new, 0) {
		t.Fatal("decoded delta must reproduce the new snapshot")
	}
}

// TestTrafficReduction is the Check-N-Run headline: shipping a fine-tune
// delta must be far smaller than shipping the whole model.
func TestTrafficReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A "model" with a big frozen backbone and small trainable head: only
	// the head changes during fine-tuning.
	net := nn.NewMLP("bb", []int{256, 256, 64}, rng)
	head := nn.NewMLP("head", []int{64, 10}, rng)
	full := nn.Stack(net, head)
	old := full.TakeSnapshot()
	// Fine-tune: only head weights move.
	for name, m := range old {
		_ = name
		_ = m
	}
	new := full.TakeSnapshot()
	for name, m := range new {
		if len(name) >= 4 && name[:4] == "head" {
			for i := range m.Data {
				m.Data[i] += rng.NormFloat64() * 0.01
			}
		}
	}
	d, _ := Diff(old, new, 0)
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := new.Bytes()
	reduction := float64(fullBytes) / float64(len(blob))
	if reduction < 20 {
		t.Fatalf("delta reduction only %.1f×, want ≫20× (Check-N-Run reports up to 427×)", reduction)
	}
}

func TestToleranceDropsTinyChanges(t *testing.T) {
	old, _ := twoSnapshots(6, 0)
	new := nn.Snapshot{}
	for k, m := range old {
		c := m.Clone()
		c.Data[0] += 1e-9
		new[k] = c
	}
	d, _ := Diff(old, new, 1e-6)
	if d.NumUpdates() != 0 {
		t.Fatalf("sub-tolerance changes should be dropped, got %d", d.NumUpdates())
	}
}

func TestDiffShapeMismatch(t *testing.T) {
	old := nn.Snapshot{"w": tensor.New(2, 2)}
	new := nn.Snapshot{"w": tensor.New(3, 3)}
	if _, err := Diff(old, new, 0); err == nil {
		t.Fatal("shape change must error")
	}
}

func TestApplyMissingParam(t *testing.T) {
	d := &Delta{Entries: map[string][]Update{"ghost": {{Index: 0, Value: 1}}}}
	if _, err := d.Apply(nn.Snapshot{}); err == nil {
		t.Fatal("missing base parameter must error")
	}
}

func TestApplyIndexOutOfRange(t *testing.T) {
	d := &Delta{Entries: map[string][]Update{"w": {{Index: 99, Value: 1}}}}
	if _, err := d.Apply(nn.Snapshot{"w": tensor.New(2, 2)}); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Fatal("garbage must not decode")
	}
}

// Property: for random sparse changes, Diff→Encode→Decode→Apply is identity.
func TestCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		old, new := twoSnapshots(seed, 0.15)
		d, err := Diff(old, new, 0)
		if err != nil {
			return false
		}
		blob, err := d.Encode()
		if err != nil {
			return false
		}
		d2, err := Decode(blob)
		if err != nil {
			return false
		}
		got, err := d2.Apply(old)
		if err != nil {
			return false
		}
		return SnapshotsEqual(got, new, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionBytes(t *testing.T) {
	m := model.ResNet50()
	db := DistributionBytes(m)
	if db <= 0 || db >= m.TrainableParamBytes() {
		t.Fatalf("DistributionBytes = %d, want within (0, %d)", db, m.TrainableParamBytes())
	}
	// Reduction vs shipping the full model must be ≫100× (paper: up to 427×).
	if red := float64(m.ParamBytes()) / float64(db); red < 100 {
		t.Fatalf("distribution reduction %.0f×, want >100×", red)
	}
}
