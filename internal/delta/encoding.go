package delta

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

// Compressed delta encodings. The legacy codec (Delta) ships every changed
// weight as a full float64 — after a round of momentum SGD that is every
// weight, so broadcast bytes scale with parameter count, not information.
// The two compressed encodings below ship an *additive* correction toward
// the target model instead, and pair with a per-store Compressor that
// tracks exactly what the store has reconstructed so far: anything an
// encoding drops (truncated indices, quantization error) stays in the next
// round's residual — error feedback — so lossy rounds never accumulate
// drift.
//
// Wire semantics differ from the legacy codec: legacy deltas *assign*
// weights, compressed deltas *add* to them. A compressed blob therefore
// only makes sense against the precise state the Compressor believes the
// peer holds; stores negotiate the encoding at Hello and the Tuner rebases
// any store whose state it cannot account for.

// Encoding identifies a delta wire codec. The zero value is the legacy
// dense codec, which keeps old peers interoperable: a peer that never
// heard of encodings sends and expects 0.
type Encoding uint8

const (
	// EncodingDense is the legacy codec: sparse-assign full-precision
	// weights (Delta.Encode). Exact.
	EncodingDense Encoding = 0
	// EncodingTopK ships only the k largest-magnitude residual entries per
	// parameter as exact f64 additions; the rest ride the error feedback.
	EncodingTopK Encoding = 1
	// EncodingInt8 ships the whole residual as int8 codes under a
	// per-parameter scale (≈8× smaller than f64 before compression);
	// quantization error rides the error feedback.
	EncodingInt8 Encoding = 2
)

// String returns the metric-label name of the encoding.
func (e Encoding) String() string {
	switch e {
	case EncodingDense:
		return "dense"
	case EncodingTopK:
		return "topk"
	case EncodingInt8:
		return "int8"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(e))
	}
}

// Valid reports whether e names a codec this build understands.
func (e Encoding) Valid() bool { return e <= EncodingInt8 }

// ParseEncoding maps flag values ("dense", "topk", "int8") to an Encoding.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "dense", "":
		return EncodingDense, nil
	case "topk":
		return EncodingTopK, nil
	case "int8":
		return EncodingInt8, nil
	default:
		return 0, fmt.Errorf("delta: unknown encoding %q (want dense|topk|int8)", s)
	}
}

// topKDenom sets the top-k truncation ratio: each parameter ships its
// len/topKDenom largest residual entries per round (at least one).
const topKDenom = 8

// Compressed is a decoded compressed delta: per-parameter additive updates.
type Compressed struct {
	Enc     Encoding
	Entries map[string][]Update // Value is an *addition*, not an assignment
}

// ApplyAdd produces the updated snapshot by adding the compressed updates
// to base. Base matrices are cloned, never mutated.
func (c *Compressed) ApplyAdd(base nn.Snapshot) (nn.Snapshot, error) {
	out := make(nn.Snapshot, len(base))
	for name, m := range base {
		out[name] = m.Clone()
	}
	for name, ups := range c.Entries {
		m, ok := out[name]
		if !ok {
			return nil, fmt.Errorf("delta: base snapshot missing parameter %q", name)
		}
		for _, u := range ups {
			if u.Index < 0 || u.Index >= len(m.Data) {
				return nil, fmt.Errorf("delta: index %d out of range for %q", u.Index, name)
			}
			m.Data[u.Index] += u.Value
		}
	}
	return out, nil
}

// NumUpdates returns the total number of shipped scalar corrections.
func (c *Compressed) NumUpdates() int {
	n := 0
	for _, ups := range c.Entries {
		n += len(ups)
	}
	return n
}

// Compressor encodes one store's stream of model updates under a lossy
// encoding with error feedback. It tracks `shipped` — the snapshot the
// store has reconstructed from everything sent so far — and each Compress
// call encodes (target − shipped), then advances shipped by exactly what
// the encoding could represent. Residual the encoding dropped is thus still
// present in the next round's difference; quantization error never
// accumulates across rounds.
//
// A Compressor is bound to one peer: blobs only apply against the state it
// tracks. It is not safe for concurrent use.
type Compressor struct {
	enc     Encoding
	shipped nn.Snapshot
}

// NewCompressor creates a compressor for a peer whose current exact state
// is base (cloned). base is typically the deterministic initial classifier
// for a fresh store, or the catch-up target for a rebased one.
func NewCompressor(enc Encoding, base nn.Snapshot) (*Compressor, error) {
	if !enc.Valid() || enc == EncodingDense {
		return nil, fmt.Errorf("delta: compressor needs a compressed encoding, got %v", enc)
	}
	shipped := make(nn.Snapshot, len(base))
	for name, m := range base {
		shipped[name] = m.Clone()
	}
	return &Compressor{enc: enc, shipped: shipped}, nil
}

// Encoding returns the codec this compressor emits.
func (c *Compressor) Encoding() Encoding { return c.enc }

// Shipped returns the snapshot the peer is known to hold (shared storage;
// callers must not mutate).
func (c *Compressor) Shipped() nn.Snapshot { return c.shipped }

// Compress encodes the correction that moves the peer from its shipped
// state toward target and advances the shipped state by the represented
// part. The returned blob decodes with DecodeCompressed and applies
// additively.
func (c *Compressor) Compress(target nn.Snapshot) ([]byte, error) {
	names := make([]string, 0, len(target))
	for name := range target {
		names = append(names, name)
	}
	sort.Strings(names)

	var raw bytes.Buffer
	if err := binary.Write(&raw, binary.LittleEndian, uint32(len(names))); err != nil {
		return nil, err
	}
	for _, name := range names {
		tm := target[name]
		sm, ok := c.shipped[name]
		if !ok {
			return nil, fmt.Errorf("delta: compressor has no shipped state for parameter %q", name)
		}
		if sm.Rows != tm.Rows || sm.Cols != tm.Cols {
			return nil, fmt.Errorf("delta: parameter %q changed shape %dx%d→%dx%d",
				name, sm.Rows, sm.Cols, tm.Rows, tm.Cols)
		}
		if err := binary.Write(&raw, binary.LittleEndian, uint32(len(name))); err != nil {
			return nil, err
		}
		raw.WriteString(name)
		switch c.enc {
		case EncodingTopK:
			if err := compressTopK(&raw, sm, tm); err != nil {
				return nil, err
			}
		case EncodingInt8:
			if err := compressInt8(&raw, sm, tm); err != nil {
				return nil, err
			}
		}
	}
	var out bytes.Buffer
	out.WriteByte(byte(c.enc))
	zw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// compressTopK writes the k = ⌈len/topKDenom⌉ largest-magnitude residual
// entries of one parameter as exact (gap, f64) pairs and adds them to the
// shipped state.
func compressTopK(raw *bytes.Buffer, shipped, target *tensor.Matrix) error {
	n := len(target.Data)
	k := (n + topKDenom - 1) / topKDenom
	// Select the k largest |residual| indices with a bounded min-heap, then
	// re-sort ascending so indices gap-encode small.
	type cand struct {
		idx int
		val float64 // residual
	}
	heap := make([]cand, 0, k)
	less := func(a, b cand) bool {
		aa, ab := math.Abs(a.val), math.Abs(b.val)
		return aa < ab || (aa == ab && a.idx > b.idx)
	}
	siftDown := func(root int) {
		for {
			child := 2*root + 1
			if child >= len(heap) {
				return
			}
			if child+1 < len(heap) && less(heap[child+1], heap[child]) {
				child++
			}
			if !less(heap[child], heap[root]) {
				return
			}
			heap[root], heap[child] = heap[child], heap[root]
			root = child
		}
	}
	for i, v := range target.Data {
		r := v - shipped.Data[i]
		if r == 0 {
			continue
		}
		cd := cand{idx: i, val: r}
		if len(heap) < k {
			heap = append(heap, cd)
			if len(heap) == k {
				for t := k/2 - 1; t >= 0; t-- {
					siftDown(t)
				}
			}
			continue
		}
		if less(heap[0], cd) {
			heap[0] = cd
			siftDown(0)
		}
	}
	sort.Slice(heap, func(a, b int) bool { return heap[a].idx < heap[b].idx })
	if err := binary.Write(raw, binary.LittleEndian, uint32(len(heap))); err != nil {
		return err
	}
	prev := 0
	for _, cd := range heap {
		if err := binary.Write(raw, binary.LittleEndian, uint32(cd.idx-prev)); err != nil {
			return err
		}
		prev = cd.idx
		if err := binary.Write(raw, binary.LittleEndian, math.Float64bits(cd.val)); err != nil {
			return err
		}
		shipped.Data[cd.idx] += cd.val // exact: these entries carry no error
	}
	return nil
}

// compressInt8 writes one parameter's full residual as int8 codes under a
// per-parameter symmetric scale and adds the *dequantized* values to the
// shipped state, leaving the quantization error in the next residual.
func compressInt8(raw *bytes.Buffer, shipped, target *tensor.Matrix) error {
	n := len(target.Data)
	var maxAbs float64
	for i, v := range target.Data {
		if a := math.Abs(v - shipped.Data[i]); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		// Nothing (finite) to ship: an empty parameter block.
		if err := binary.Write(raw, binary.LittleEndian, uint32(0)); err != nil {
			return err
		}
		return binary.Write(raw, binary.LittleEndian, float64(0))
	}
	if err := binary.Write(raw, binary.LittleEndian, uint32(n)); err != nil {
		return err
	}
	if err := binary.Write(raw, binary.LittleEndian, scale); err != nil {
		return err
	}
	codes := make([]byte, n)
	for i, v := range target.Data {
		q := math.Round((v - shipped.Data[i]) / scale)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		codes[i] = byte(int8(q))
		shipped.Data[i] += q * scale
	}
	_, err := raw.Write(codes)
	return err
}

// maxCompressedElems bounds a decoded parameter block; matches the legacy
// decoder's hardening posture (length prefixes are hostile until proven).
const maxCompressedElems = 1 << 28

// DecodeCompressed reverses Compressor.Compress. The blob is
// self-describing (a 1-byte encoding header ahead of the deflate stream),
// so flight recorders and tests can classify blobs without wire context.
func DecodeCompressed(data []byte) (*Compressed, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("delta: empty compressed blob")
	}
	enc := Encoding(data[0])
	if !enc.Valid() || enc == EncodingDense {
		return nil, fmt.Errorf("delta: blob header names invalid compressed encoding %d", data[0])
	}
	zr := flate.NewReader(bytes.NewReader(data[1:]))
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("delta: inflate: %w", err)
	}
	r := bytes.NewReader(raw)
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("delta: absurd parameter count %d", count)
	}
	c := &Compressed{Enc: enc, Entries: make(map[string][]Update, count)}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("delta: absurd name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, err
		}
		var ups []Update
		switch enc {
		case EncodingTopK:
			ups, err = decodeTopKParam(r)
		case EncodingInt8:
			ups, err = decodeInt8Param(r)
		}
		if err != nil {
			return nil, fmt.Errorf("delta: parameter %q: %w", nameBuf, err)
		}
		if len(ups) > 0 {
			c.Entries[string(nameBuf)] = ups
		}
	}
	return c, nil
}

func decodeTopKParam(r *bytes.Reader) ([]Update, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxCompressedElems {
		return nil, fmt.Errorf("absurd update count %d", n)
	}
	if uint64(r.Len()) < 12*uint64(n) {
		return nil, fmt.Errorf("update count %d exceeds remaining payload: %w", n, io.ErrUnexpectedEOF)
	}
	ups := make([]Update, n)
	prev := 0
	for j := range ups {
		var gap uint32
		if err := binary.Read(r, binary.LittleEndian, &gap); err != nil {
			return nil, err
		}
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, err
		}
		prev += int(gap)
		ups[j] = Update{Index: prev, Value: math.Float64frombits(bits)}
	}
	return ups, nil
}

func decodeInt8Param(r *bytes.Reader) ([]Update, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxCompressedElems {
		return nil, fmt.Errorf("absurd element count %d", n)
	}
	var scale float64
	if err := binary.Read(r, binary.LittleEndian, &scale); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
		return nil, fmt.Errorf("invalid scale %v", scale)
	}
	if uint64(r.Len()) < uint64(n) {
		return nil, fmt.Errorf("element count %d exceeds remaining payload: %w", n, io.ErrUnexpectedEOF)
	}
	codes := make([]byte, n)
	if _, err := io.ReadFull(r, codes); err != nil {
		return nil, err
	}
	ups := make([]Update, 0, n/4)
	for i, b := range codes {
		q := int8(b)
		if q == 0 {
			continue
		}
		ups = append(ups, Update{Index: i, Value: float64(q) * scale})
	}
	return ups, nil
}
