package drift

import (
	"math/rand"
	"testing"
)

func feed(t *testing.T, d *Detector, rng *rand.Rand, mean float64, n int) int {
	t.Helper()
	fires := 0
	for i := 0; i < n; i++ {
		v := mean + rng.NormFloat64()*0.05
		if d.Observe(v) {
			fires++
		}
	}
	return fires
}

func TestNoDriftNoFalseAlarms(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if fires := feed(t, d, rng, 0.8, 10_000); fires != 0 {
		t.Fatalf("%d false alarms on a stationary stream", fires)
	}
	if !d.Ready() {
		t.Fatal("detector should be warmed up")
	}
}

func TestDetectsClearDrop(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	feed(t, d, rng, 0.8, 1000)
	if fires := feed(t, d, rng, 0.6, 1000); fires == 0 {
		t.Fatal("a 20-point confidence drop must be detected")
	}
	if d.Detections() == 0 {
		t.Fatal("detections counter")
	}
}

func TestIgnoresTinyDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinDrop = 0.05
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	feed(t, d, rng, 0.80, 1000)
	if fires := feed(t, d, rng, 0.785, 3000); fires != 0 {
		t.Fatalf("sub-MinDrop change fired %d times", fires)
	}
}

func TestRefiresOnFurtherDegradation(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	feed(t, d, rng, 0.9, 1000)
	first := feed(t, d, rng, 0.7, 1500)
	if first == 0 {
		t.Fatal("first drop missed")
	}
	second := feed(t, d, rng, 0.5, 1500)
	if second == 0 {
		t.Fatal("second drop missed: detector must re-arm after reset")
	}
}

func TestRebaseClearsState(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	feed(t, d, rng, 0.9, 800)
	d.Rebase()
	if d.Ready() || d.RefMean() != 0 {
		t.Fatal("rebase must clear the windows")
	}
	// After rebase, the lower level becomes the new normal — no alarm.
	if fires := feed(t, d, rng, 0.6, 3000); fires != 0 {
		t.Fatalf("rebased detector fired %d times on its own baseline", fires)
	}
}

func TestObservationClamping(t *testing.T) {
	d, err := New(Config{RefWindow: 4, RecentWindow: 2, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-5, 7, 0.5, 0.5} {
		d.Observe(v)
	}
	if m := d.RefMean(); m < 0 || m > 1 {
		t.Fatalf("reference mean %v escaped [0,1]", m)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{RefWindow: 0, RecentWindow: 1, Delta: 0.1},
		{RefWindow: 1, RecentWindow: 0, Delta: 0.1},
		{RefWindow: 1, RecentWindow: 1, Delta: 0},
		{RefWindow: 1, RecentWindow: 1, Delta: 1},
		{RefWindow: 1, RecentWindow: 1, Delta: 0.1, MinDrop: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d must be rejected", i)
		}
	}
}
