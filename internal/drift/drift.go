// Package drift implements detection-based retraining triggers (§2.2): the
// alternative to NDPipe's regular fine-tuning is to watch a quality signal
// and retrain when it degrades. The paper notes detection is hard ("hidden
// factors") and reacts late; this package lets the service combine both —
// periodic fine-tuning plus a detector as a safety net.
//
// The detector is a two-window mean test: a reference window captures the
// model's health right after deployment, a sliding recent window tracks the
// live signal (online-inference confidence, or labeled accuracy when
// feedback exists), and drift is declared when the recent mean falls below
// the reference mean by more than a variance-adaptive (Welch) confidence
// radius — distribution-free Hoeffding radii (the bound behind Lemma 5.2)
// are far too conservative for low-variance confidence streams.
package drift

import (
	"fmt"
	"math"
)

// Config tunes a Detector.
type Config struct {
	// RefWindow / RecentWindow are the two window sizes (observations).
	RefWindow    int
	RecentWindow int
	// Delta is the false-positive probability of the Hoeffding test.
	Delta float64
	// MinDrop is an additional absolute drop required before signalling
	// (guards against statistically-significant-but-tiny changes).
	MinDrop float64
}

// DefaultConfig is tuned for per-upload confidence streams.
func DefaultConfig() Config {
	return Config{RefWindow: 400, RecentWindow: 200, Delta: 0.01, MinDrop: 0.02}
}

// Detector watches a bounded signal in [0,1].
type Detector struct {
	cfg Config

	refSum   float64
	refSumSq float64
	refN     int
	recent   []float64
	recentI  int
	recentN  int
	detected int // total drift signals
}

// New creates a detector. The first RefWindow observations form the
// reference; detection starts once the recent window is also full.
func New(cfg Config) (*Detector, error) {
	if cfg.RefWindow <= 0 || cfg.RecentWindow <= 0 {
		return nil, fmt.Errorf("drift: windows must be positive")
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("drift: delta must be in (0,1)")
	}
	if cfg.MinDrop < 0 {
		return nil, fmt.Errorf("drift: MinDrop must be non-negative")
	}
	return &Detector{cfg: cfg, recent: make([]float64, cfg.RecentWindow)}, nil
}

// Observe feeds one observation (clamped to [0,1]) and reports whether
// drift is declared at this point. On detection the detector resets, using
// the recent window as the seed of the next reference.
func (d *Detector) Observe(v float64) bool {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	if d.refN < d.cfg.RefWindow {
		d.refSum += v
		d.refSumSq += v * v
		d.refN++
		return false
	}
	d.recent[d.recentI] = v
	d.recentI = (d.recentI + 1) % d.cfg.RecentWindow
	if d.recentN < d.cfg.RecentWindow {
		d.recentN++
		return false
	}
	nr, nc := float64(d.refN), float64(d.recentN)
	refMean := d.refSum / nr
	refVar := d.refSumSq/nr - refMean*refMean
	if refVar < 0 {
		refVar = 0
	}
	var recentSum, recentSumSq float64
	for _, x := range d.recent {
		recentSum += x
		recentSumSq += x * x
	}
	recentMean := recentSum / nc
	recentVar := recentSumSq/nc - recentMean*recentMean
	if recentVar < 0 {
		recentVar = 0
	}

	// Welch radius: z_(1−δ) · sqrt(s_r²/n_r + s_c²/n_c), floored by a small
	// absolute term so zero-variance streams still need a real gap.
	z := math.Sqrt2 * math.Erfinv(1-2*d.cfg.Delta)
	eps := z*math.Sqrt(refVar/nr+recentVar/nc) + 1e-3
	if refMean-recentMean > eps+d.cfg.MinDrop {
		d.detected++
		d.reset(recentMean)
		return true
	}
	return false
}

// reset re-seeds the reference from the post-drift level so the detector
// can fire again on further degradation.
func (d *Detector) reset(seedMean float64) {
	d.refSum = seedMean * float64(d.cfg.RefWindow)
	// Seed the variance with the clamp-scale floor; it re-adapts as the
	// reference is consumed on the next cycle.
	d.refSumSq = d.refSum * seedMean
	d.refN = d.cfg.RefWindow
	d.recentN = 0
	d.recentI = 0
}

// Rebase clears all state (call after retraining deploys a fresh model).
func (d *Detector) Rebase() {
	d.refSum = 0
	d.refSumSq = 0
	d.refN = 0
	d.recentN = 0
	d.recentI = 0
}

// Detections returns how many drift signals have fired.
func (d *Detector) Detections() int { return d.detected }

// RefMean returns the reference mean (0 until the reference fills).
func (d *Detector) RefMean() float64 {
	if d.refN == 0 {
		return 0
	}
	return d.refSum / float64(d.refN)
}

// Ready reports whether both windows are full (detection active).
func (d *Detector) Ready() bool {
	return d.refN >= d.cfg.RefWindow && d.recentN >= d.cfg.RecentWindow
}
