// Package placement maps photo IDs onto the PipeStore fleet with a
// consistent-hash ring, the data-placement primitive behind replicated
// ingest, read repair and zero-loss degraded rounds.
//
// The ring hashes every member onto `vnodes` points of a 64-bit circle;
// a photo lands on the first R distinct members found walking clockwise
// from its own hash. Two properties carry the durability story:
//
//   - Determinism: Replicas(id) depends only on the sorted member list and
//     R, so the tuner, every store and the ingest front end compute the
//     same placement independently — no placement service, no gossip.
//   - Minimal movement: removing a member only reassigns photos that member
//     carried; every other photo keeps its replica set. Rebuild after a
//     store loss therefore copies exactly the dead store's objects.
//
// Ownership for extraction is a view over the same ring: the owner of a
// photo is its first replica that is currently live, so when a store dies
// mid-round each of its photos falls to the next live replica and the
// round loses nothing (R ≥ 2).
package placement

import (
	"fmt"
	"sort"
)

// vnodesPerMember spreads each member over the circle. 64 points keeps the
// per-member load imbalance in the few-percent range for small fleets
// while the full ring (members × 64 points) stays tiny.
const vnodesPerMember = 64

type point struct {
	hash   uint64
	member int32 // index into members
}

// Ring is an immutable consistent-hash ring over a store fleet.
type Ring struct {
	members []string // sorted, unique
	r       int      // replication factor, capped at len(members)
	points  []point  // sorted by hash
}

// New builds a ring over members with replication factor r. The member
// list is copied, deduplicated and sorted, so callers on different
// machines converge on the same ring regardless of argument order. r is
// clamped to [1, len(members)].
func New(members []string, r int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("placement: empty member list")
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("placement: empty member ID")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	if r < 1 {
		r = 1
	}
	if r > len(uniq) {
		r = len(uniq)
	}
	g := &Ring{members: uniq, r: r}
	g.points = make([]point, 0, len(uniq)*vnodesPerMember)
	for i, m := range uniq {
		h := fnv64(m)
		for v := 0; v < vnodesPerMember; v++ {
			// Derive each vnode point from the member hash with a strong
			// mix, so members' points interleave instead of clustering.
			g.points = append(g.points, point{splitmix64(h + uint64(v)), int32(i)})
		}
	}
	sort.Slice(g.points, func(a, b int) bool {
		if g.points[a].hash != g.points[b].hash {
			return g.points[a].hash < g.points[b].hash
		}
		return g.points[a].member < g.points[b].member
	})
	return g, nil
}

// Members returns the sorted member list (shared slice; do not mutate).
func (g *Ring) Members() []string { return g.members }

// Replication returns the effective replication factor.
func (g *Ring) Replication() int { return g.r }

// Replicas returns the R distinct members holding photo id, in ring walk
// order (the first entry is the photo's primary). The result is freshly
// allocated.
func (g *Ring) Replicas(id uint64) []string {
	reps := make([]string, 0, g.r)
	g.walk(id, func(m string) bool {
		reps = append(reps, m)
		return len(reps) < g.r
	})
	return reps
}

// Owner returns the first replica of id that live reports as alive. When
// every replica is dead it returns ("", false): the photo is unreachable
// this round.
func (g *Ring) Owner(id uint64, live func(string) bool) (string, bool) {
	var owner string
	n := 0
	g.walk(id, func(m string) bool {
		n++
		if owner == "" && live(m) {
			owner = m
		}
		return owner == "" && n < g.r
	})
	return owner, owner != ""
}

// walk visits the distinct members clockwise from id's point until fn
// returns false or all members were seen.
func (g *Ring) walk(id uint64, fn func(string) bool) {
	h := splitmix64(id)
	i := sort.Search(len(g.points), func(k int) bool { return g.points[k].hash >= h })
	seen := make([]bool, len(g.members))
	found := 0
	for k := 0; k < len(g.points) && found < len(g.members); k++ {
		p := g.points[(i+k)%len(g.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		found++
		if !fn(g.members[p.member]) {
			return
		}
	}
}

// LiveSet adapts a member slice into the predicate Owner takes.
func LiveSet(live []string) func(string) bool {
	set := make(map[string]bool, len(live))
	for _, m := range live {
		set[m] = true
	}
	return func(m string) bool { return set[m] }
}

// Without returns the member list minus dead, for building the
// post-rebuild ring. The input is not modified.
func Without(members []string, dead string) []string {
	out := make([]string, 0, len(members))
	for _, m := range members {
		if m != dead {
			out = append(out, m)
		}
	}
	return out
}

// fnv64 is FNV-1a, seeding each member's point sequence from its name.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the finalizer of the splitmix64 generator — a cheap,
// well-mixed 64-bit permutation used both to place photo IDs (which are
// sequential integers, far from uniform) and to spread vnode points.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
