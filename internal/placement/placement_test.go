package placement

import (
	"testing"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "ps-" + string(rune('0'+i))
	}
	return out
}

func TestReplicasDeterministicAndOrderIndependent(t *testing.T) {
	a, err := New([]string{"ps-2", "ps-0", "ps-1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"ps-0", "ps-1", "ps-2", "ps-1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 5000; id++ {
		ra, rb := a.Replicas(id), b.Replicas(id)
		if len(ra) != 2 || len(rb) != 2 {
			t.Fatalf("id %d: want 2 replicas, got %v / %v", id, ra, rb)
		}
		if ra[0] != rb[0] || ra[1] != rb[1] {
			t.Fatalf("id %d: rings disagree: %v vs %v", id, ra, rb)
		}
		if ra[0] == ra[1] {
			t.Fatalf("id %d: duplicate replica %v", id, ra)
		}
	}
}

func TestReplicationClamped(t *testing.T) {
	g, err := New([]string{"a", "b"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Replication() != 2 {
		t.Fatalf("replication = %d, want clamp to 2", g.Replication())
	}
	if _, err := New(nil, 2); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := New([]string{"a", ""}, 1); err == nil {
		t.Fatal("empty member ID accepted")
	}
}

func TestBalance(t *testing.T) {
	g, err := New(members(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	load := map[string]int{}
	for id := uint64(0); id < n; id++ {
		for _, m := range g.Replicas(id) {
			load[m]++
		}
	}
	mean := float64(2*n) / 5
	for m, c := range load {
		if f := float64(c) / mean; f < 0.7 || f > 1.3 {
			t.Errorf("member %s holds %.2fx the mean load (%d)", m, f, c)
		}
	}
}

// Removing a member must only reassign photos that member carried: the
// rebuild pass relies on every other photo keeping its replica set.
func TestMinimalMovementOnRemoval(t *testing.T) {
	all := members(5)
	before, err := New(all, 2)
	if err != nil {
		t.Fatal(err)
	}
	const dead = "ps-2"
	after, err := New(Without(all, dead), 2)
	if err != nil {
		t.Fatal(err)
	}
	moved, carried := 0, 0
	for id := uint64(0); id < 20000; id++ {
		b, a := before.Replicas(id), after.Replicas(id)
		had := false
		for _, m := range b {
			if m == dead {
				had = true
			}
		}
		if had {
			carried++
			continue
		}
		if b[0] != a[0] || b[1] != a[1] {
			moved++
			t.Fatalf("id %d moved %v -> %v without involving %s", id, b, a, dead)
		}
	}
	if carried == 0 {
		t.Fatal("dead member carried nothing — test is vacuous")
	}
}

// The owner of a photo is its first live replica; killing a store hands
// exactly its owned photos to their surviving replicas.
func TestOwnerFallsToSurvivingReplica(t *testing.T) {
	g, err := New(members(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	allLive := LiveSet(members(3))
	const dead = "ps-1"
	degraded := LiveSet(Without(members(3), dead))
	reassigned := 0
	for id := uint64(0); id < 5000; id++ {
		was, ok := g.Owner(id, allLive)
		if !ok {
			t.Fatalf("id %d: no owner with all live", id)
		}
		now, ok := g.Owner(id, degraded)
		if !ok {
			t.Fatalf("id %d: no owner after one death at R=2", id)
		}
		if was != dead {
			if now != was {
				t.Fatalf("id %d: owner moved %s -> %s though %s was not the owner", id, was, now, dead)
			}
			continue
		}
		reassigned++
		reps := g.Replicas(id)
		if now != reps[0] && now != reps[1] {
			t.Fatalf("id %d: new owner %s is not a replica %v", id, now, reps)
		}
		if now == dead {
			t.Fatalf("id %d: dead store still owns", id)
		}
	}
	if reassigned == 0 {
		t.Fatal("dead store owned nothing — test is vacuous")
	}
}

func TestOwnerNoneWhenAllReplicasDead(t *testing.T) {
	g, err := New(members(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	nobody := func(string) bool { return false }
	if _, ok := g.Owner(7, nobody); ok {
		t.Fatal("owner found with nobody live")
	}
}
