package dataset

import (
	"encoding/binary"
)

// BlobSpec controls the synthetic raw-image generator. The paper's offline
// inference path reads typical 2.7 MB JPEG files; its fine-tuning path reads
// 0.59 MB preprocessed binaries (§3.4). Real photo bytes are unavailable
// here, so we generate deterministic pseudo-random blobs whose deflate
// compressibility is tunable: a Redundancy of r means roughly an r-fraction
// of the bytes are drawn from a tiny repeating alphabet, which deflate
// collapses, emulating the ~17.5 % storage overhead / compression-savings
// numbers in §5.4.
type BlobSpec struct {
	Size       int     // bytes per blob
	Redundancy float64 // 0 = incompressible, 1 = maximally repetitive
}

// DefaultJPEGSpec approximates a stored photo (scaled down from 2.7 MB so
// tests stay fast; the ratio to the preprocessed binary is preserved).
func DefaultJPEGSpec() BlobSpec { return BlobSpec{Size: 27 << 10, Redundancy: 0.15} }

// DefaultPreprocSpec approximates the preprocessed training binary
// (0.59 MB in the paper; same ~4.6× scale-down as DefaultJPEGSpec).
func DefaultPreprocSpec() BlobSpec { return BlobSpec{Size: 6 << 10, Redundancy: 0.55} }

// Blob deterministically generates the raw bytes of image id under spec.
// The same (id, spec) always yields identical bytes, so any node can
// regenerate a photo's content without shipping it.
//
// Synthesis sits on the upload hot path (every Ingest regenerates the raw
// photo), so the generator is a counter-based splitmix64 producing 8 output
// bytes per step — two word draws per 8 bytes instead of two rand calls per
// byte — which keeps blob creation in the microseconds at 27 KB.
func Blob(id uint64, spec BlobSpec) []byte {
	out := make([]byte, spec.Size)
	// Header marks the blob with its ID (like EXIF) for integrity checks.
	if spec.Size >= 8 {
		binary.LittleEndian.PutUint64(out, id)
	}
	state := id*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	thr := uint64(spec.Redundancy * 256) // per-byte redundancy decision threshold
	for i := 8; i < len(out); i += 8 {
		content := splitmix64(&state)
		decide := splitmix64(&state)
		n := len(out) - i
		if n > 8 {
			n = 8
		}
		for j := 0; j < n; j++ {
			b := byte(content >> (8 * j))
			if (decide>>(8*j))&0xff < thr {
				b %= 4 // tiny alphabet: highly compressible
			}
			out[i+j] = b
		}
	}
	return out
}

// splitmix64 advances the counter state and returns the next output word.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// BlobID extracts the image ID stamped into a blob by Blob.
func BlobID(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
