package dataset

import (
	"bytes"
	"compress/flate"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ndpipe/internal/nn"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.InitialImages = 500
	return cfg
}

func TestWorldInitialPopulation(t *testing.T) {
	w := NewWorld(smallConfig(1))
	if w.NumImages() != 500 {
		t.Fatalf("initial population %d, want 500", w.NumImages())
	}
	if w.Day() != 0 {
		t.Fatalf("day = %d, want 0", w.Day())
	}
	if w.ActiveClasses() != 20 {
		t.Fatalf("active classes %d, want 20", w.ActiveClasses())
	}
	for _, img := range w.Images() {
		if img.Class < 0 || img.Class >= 20 {
			t.Fatalf("image class %d outside initial range", img.Class)
		}
		if len(img.Feat) != w.InputDim() {
			t.Fatalf("feature dim %d, want %d", len(img.Feat), w.InputDim())
		}
	}
}

func TestAdvanceDayGrowsPopulation(t *testing.T) {
	w := NewWorld(smallConfig(2))
	before := w.NumImages()
	w.AdvanceDay()
	grew := w.NumImages() - before
	want := int(math.Round(float64(before) * 0.0178))
	if grew != want {
		t.Fatalf("grew %d images, want %d", grew, want)
	}
	if w.Day() != 1 {
		t.Fatalf("day = %d", w.Day())
	}
}

func TestNewClassesAppearOverTime(t *testing.T) {
	cfg := smallConfig(3)
	cfg.InitialImages = 2000
	w := NewWorld(cfg)
	for d := 0; d < 30; d++ {
		w.AdvanceDay()
	}
	if w.ActiveClasses() <= cfg.InitialClasses {
		t.Fatalf("no new classes after 30 days (active=%d)", w.ActiveClasses())
	}
	if w.ActiveClasses() > cfg.MaxClasses {
		t.Fatalf("active %d exceeds max %d", w.ActiveClasses(), cfg.MaxClasses)
	}
}

func TestDeterminismAcrossWorlds(t *testing.T) {
	a := NewWorld(smallConfig(7))
	b := NewWorld(smallConfig(7))
	for d := 0; d < 5; d++ {
		a.AdvanceDay()
		b.AdvanceDay()
	}
	if a.NumImages() != b.NumImages() {
		t.Fatalf("population diverged: %d vs %d", a.NumImages(), b.NumImages())
	}
	ia, ib := a.Images(), b.Images()
	for i := range ia {
		if ia[i].Class != ib[i].Class || ia[i].Day != ib[i].Day {
			t.Fatalf("image %d diverged", i)
		}
		for j := range ia[i].Feat {
			if ia[i].Feat[j] != ib[i].Feat[j] {
				t.Fatalf("image %d feature %d diverged", i, j)
			}
		}
	}
}

func TestSampleRecentOnlyReturnsRecentImages(t *testing.T) {
	w := NewWorld(smallConfig(4))
	for d := 0; d < 10; d++ {
		w.AdvanceDay()
	}
	b := w.SampleRecent(100, 2)
	byID := map[uint64]Image{}
	for _, img := range w.Images() {
		byID[img.ID] = img
	}
	for i, id := range b.IDs {
		img := byID[id]
		if img.Day < w.Day()-2 {
			t.Fatalf("sample %d from day %d, want >= %d", i, img.Day, w.Day()-2)
		}
	}
}

func TestShardRoundRobinCoversAll(t *testing.T) {
	w := NewWorld(smallConfig(5))
	shards := w.Shard(7)
	total := 0
	seen := map[uint64]bool{}
	for _, s := range shards {
		total += len(s)
		for _, img := range s {
			if seen[img.ID] {
				t.Fatalf("image %d in two shards", img.ID)
			}
			seen[img.ID] = true
		}
	}
	if total != w.NumImages() {
		t.Fatalf("shards cover %d, want %d", total, w.NumImages())
	}
	// Round-robin balance: sizes differ by at most 1.
	min, max := len(shards[0]), len(shards[0])
	for _, s := range shards {
		if len(s) < min {
			min = len(s)
		}
		if len(s) > max {
			max = len(s)
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced shards: min %d max %d", min, max)
	}
}

func TestBatchSlice(t *testing.T) {
	w := NewWorld(smallConfig(6))
	b := w.SampleStored(10)
	sub := b.Slice(2, 5)
	if sub.Len() != 3 {
		t.Fatalf("slice len %d, want 3", sub.Len())
	}
	for i := 0; i < 3; i++ {
		if sub.Labels[i] != b.Labels[2+i] || sub.IDs[i] != b.IDs[2+i] {
			t.Fatal("slice metadata mismatch")
		}
		for j := 0; j < b.X.Cols; j++ {
			if sub.X.At(i, j) != b.X.At(2+i, j) {
				t.Fatal("slice data mismatch")
			}
		}
	}
}

// TestDriftDegradesAccuracy is the core behavioural check for the outdated
// model problem: a classifier trained on day-0 data must lose accuracy on
// day-14 test data, and fine-tuning on recent data must recover most of it.
func TestDriftDegradesAccuracyAndFineTuneRecovers(t *testing.T) {
	cfg := smallConfig(8)
	cfg.InitialImages = 3000
	w := NewWorld(cfg)

	rng := rand.New(rand.NewSource(9))
	train := func(b *Batch, epochs int) *nn.Network {
		net := nn.NewMLP("clf", []int{cfg.InputDim, 48, cfg.MaxClasses}, rng)
		opt := nn.NewSGD(0.2, 0.9)
		for e := 0; e < epochs; e++ {
			nn.TrainBatch(net, opt, b.X, b.Labels)
		}
		return net
	}
	base := train(w.SampleStored(2000), 60)
	day0 := w.FreshTestSet(800)
	acc0, _ := nn.Accuracy(base, day0.X, day0.Labels, 5)

	for d := 0; d < 14; d++ {
		w.AdvanceDay()
	}
	day14 := w.FreshTestSet(800)
	accStale, _ := nn.Accuracy(base, day14.X, day14.Labels, 5)
	if accStale >= acc0-0.01 {
		t.Fatalf("drift did not degrade accuracy: day0 %.3f day14 %.3f", acc0, accStale)
	}

	// Fine-tune the same net on recent data.
	recent := w.SampleRecent(1000, 14)
	opt := nn.NewSGD(0.1, 0.9)
	for e := 0; e < 40; e++ {
		nn.TrainBatch(base, opt, recent.X, recent.Labels)
	}
	accTuned, _ := nn.Accuracy(base, day14.X, day14.Labels, 5)
	if accTuned <= accStale {
		t.Fatalf("fine-tuning did not help: stale %.3f tuned %.3f", accStale, accTuned)
	}
}

func TestBlobDeterministicAndStamped(t *testing.T) {
	spec := DefaultJPEGSpec()
	a := Blob(1234, spec)
	b := Blob(1234, spec)
	if !bytes.Equal(a, b) {
		t.Fatal("blob not deterministic")
	}
	if BlobID(a) != 1234 {
		t.Fatalf("BlobID = %d, want 1234", BlobID(a))
	}
	if len(a) != spec.Size {
		t.Fatalf("blob size %d, want %d", len(a), spec.Size)
	}
	c := Blob(1235, spec)
	if bytes.Equal(a, c) {
		t.Fatal("distinct IDs must differ")
	}
}

func TestBlobCompressibilityOrdering(t *testing.T) {
	ratio := func(spec BlobSpec) float64 {
		raw := Blob(99, spec)
		var buf bytes.Buffer
		zw, _ := flate.NewWriter(&buf, flate.DefaultCompression)
		_, _ = zw.Write(raw)
		_ = zw.Close()
		return float64(buf.Len()) / float64(len(raw))
	}
	jpeg := ratio(DefaultJPEGSpec())
	pre := ratio(DefaultPreprocSpec())
	if pre >= jpeg {
		t.Fatalf("preprocessed binaries must compress better: jpeg %.3f pre %.3f", jpeg, pre)
	}
	if jpeg >= 1.05 {
		t.Fatalf("jpeg blob expands too much under deflate: %.3f", jpeg)
	}
}

func TestBlobRoundTripThroughDeflate(t *testing.T) {
	raw := Blob(7, DefaultPreprocSpec())
	var buf bytes.Buffer
	zw, _ := flate.NewWriter(&buf, flate.BestSpeed)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	zr := flate.NewReader(bytes.NewReader(buf.Bytes()))
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, got) {
		t.Fatal("deflate round trip corrupted blob")
	}
}

// Property: FreshTestSet is deterministic for a given (seed, day) and labels
// are always within the active range.
func TestFreshTestSetProperty(t *testing.T) {
	f := func(seed int64, days uint8) bool {
		d := int(days % 10)
		cfg := smallConfig(seed)
		cfg.InitialImages = 200
		w := NewWorld(cfg)
		for i := 0; i < d; i++ {
			w.AdvanceDay()
		}
		a := w.FreshTestSet(50)
		b := w.FreshTestSet(50)
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				return false
			}
			if a.Labels[i] < 0 || a.Labels[i] >= w.ActiveClasses() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchOfImages(t *testing.T) {
	w := NewWorld(smallConfig(10))
	imgs := w.Images()[:5]
	b := BatchOfImages(imgs, w.InputDim())
	if b.Len() != 5 {
		t.Fatalf("len = %d", b.Len())
	}
	for i, img := range imgs {
		if b.Labels[i] != img.Class || b.IDs[i] != img.ID {
			t.Fatal("metadata mismatch")
		}
	}
}
