// Package dataset synthesizes the photo-storage workload that NDPipe's
// accuracy experiments need: a labelled population of "photos" whose class
// distribution drifts day by day and gains brand-new categories over time.
//
// The paper's empirical setup (§3.2) grows the stored population by 1.78 %
// per day, sends 5.3 % of new uploads to new categories, and observes model
// accuracy decaying as the input distribution drifts. We reproduce exactly
// that process synthetically:
//
//   - every class is a Gaussian cluster around a prototype vector on the
//     unit sphere;
//   - each simulated day the prototypes take a small random-walk step
//     (concept drift) and the population grows;
//   - some of the growth lands in previously unseen classes (outdated-label
//     pressure).
//
// Image feature vectors are materialized at upload time from the prototype
// of that day, so old photos keep their original appearance while the world
// moves on — which is what makes models go stale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ndpipe/internal/tensor"
)

// Config parameterizes a synthetic photo world.
type Config struct {
	Seed           int64
	InputDim       int     // raw feature dimensionality of an image
	InitialClasses int     // classes present on day 0
	MaxClasses     int     // total classes that may ever appear
	InitialImages  int     // population size on day 0
	ClusterStd     float64 // intra-class noise (higher = harder problem)
	DriftStep      float64 // per-day prototype random-walk step length
	DailyGrowth    float64 // fraction of population added each day (paper: 0.0178)
	NewClassShare  float64 // share of new uploads in new categories (paper: 0.053)
}

// DefaultConfig mirrors the paper's growth parameters at laptop scale.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		InputDim:       24,
		InitialClasses: 20,
		MaxClasses:     26,
		InitialImages:  6000,
		ClusterStd:     0.24,
		DriftStep:      0.02,
		DailyGrowth:    0.0178,
		NewClassShare:  0.053,
	}
}

// Image is one stored photo: its identity, true class, upload day and the
// feature vector it had when it was taken.
type Image struct {
	ID    uint64
	Class int
	Day   int
	Feat  []float64
	// Raw optionally carries the photo's raw bytes, as a client upload
	// would. When nil, storage nodes regenerate the content from the ID via
	// Blob — correct but wasteful on the serving hot path, so load
	// generators pre-attach payloads (see AttachRaw). Once uploaded, Raw is
	// immutable: the store keeps the slice without copying.
	Raw []byte
}

// AttachRaw materializes every image's raw payload under spec, like a load
// generator preparing upload bodies before the timed run. Images that
// already carry Raw are left alone.
func AttachRaw(imgs []Image, spec BlobSpec) {
	for i := range imgs {
		if imgs[i].Raw == nil {
			imgs[i].Raw = Blob(imgs[i].ID, spec)
		}
	}
}

// Batch is a design-matrix view of a set of images.
type Batch struct {
	X      *tensor.Matrix
	Labels []int
	IDs    []uint64
}

// Len returns the number of samples in the batch.
func (b *Batch) Len() int { return len(b.Labels) }

// Slice returns the half-open sub-batch [lo, hi).
func (b *Batch) Slice(lo, hi int) *Batch {
	sub := &Batch{
		X:      tensor.FromSlice(hi-lo, b.X.Cols, b.X.Data[lo*b.X.Cols:hi*b.X.Cols]),
		Labels: b.Labels[lo:hi],
	}
	if b.IDs != nil {
		sub.IDs = b.IDs[lo:hi]
	}
	return sub
}

// World is an evolving photo population.
type World struct {
	cfg    Config
	rng    *rand.Rand
	protos [][]float64 // MaxClasses prototypes (unit vectors), drifting
	active int         // classes currently receiving uploads
	images []Image
	day    int
	nextID uint64
}

// NewWorld creates a world at day 0 with the initial population uploaded.
func NewWorld(cfg Config) *World {
	if cfg.InitialClasses > cfg.MaxClasses {
		panic(fmt.Sprintf("dataset: initial classes %d > max %d", cfg.InitialClasses, cfg.MaxClasses))
	}
	w := &World{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		active: cfg.InitialClasses,
	}
	w.protos = make([][]float64, cfg.MaxClasses)
	for c := range w.protos {
		w.protos[c] = randUnit(w.rng, cfg.InputDim)
	}
	for i := 0; i < cfg.InitialImages; i++ {
		w.upload(w.rng.Intn(w.active))
	}
	return w
}

// Day returns the current simulated day.
func (w *World) Day() int { return w.day }

// NumImages returns the current population size.
func (w *World) NumImages() int { return len(w.images) }

// ActiveClasses returns the number of classes that have appeared so far.
func (w *World) ActiveClasses() int { return w.active }

// MaxClasses returns the total class capacity (classifier output width).
func (w *World) MaxClasses() int { return w.cfg.MaxClasses }

// InputDim returns the image feature dimensionality.
func (w *World) InputDim() int { return w.cfg.InputDim }

// Images returns the full stored population (shared slice; do not mutate).
func (w *World) Images() []Image { return w.images }

// upload materializes one new image of class c from today's prototype.
func (w *World) upload(c int) Image {
	feat := make([]float64, w.cfg.InputDim)
	p := w.protos[c]
	for j := range feat {
		feat[j] = p[j] + w.rng.NormFloat64()*w.cfg.ClusterStd
	}
	img := Image{ID: w.nextID, Class: c, Day: w.day, Feat: feat}
	w.nextID++
	w.images = append(w.images, img)
	return img
}

// AdvanceDay moves the world forward one day: prototypes drift, the
// population grows by DailyGrowth, and NewClassShare of the new uploads go
// to not-yet-active classes (activating them on demand).
//
// Drift is modeled as a slow rotation of the whole class constellation
// (random Givens rotations of angle DriftStep) plus a small per-class
// jitter. The rotation preserves pairwise class distances, so — exactly as
// in the paper — a freshly trained model recovers the original accuracy
// while a stale model decays.
func (w *World) AdvanceDay() {
	w.day++
	for r := 0; r < 3; r++ {
		i := w.rng.Intn(w.cfg.InputDim)
		j := w.rng.Intn(w.cfg.InputDim - 1)
		if j >= i {
			j++
		}
		theta := w.cfg.DriftStep * (0.5 + w.rng.Float64())
		cos, sin := math.Cos(theta), math.Sin(theta)
		for c := range w.protos {
			p := w.protos[c]
			p[i], p[j] = cos*p[i]-sin*p[j], sin*p[i]+cos*p[j]
		}
	}
	jitter := w.cfg.DriftStep / 6
	for c := range w.protos {
		p := w.protos[c]
		for j := range p {
			p[j] += w.rng.NormFloat64() * jitter
		}
		normalize(p)
	}
	grow := int(math.Round(float64(len(w.images)) * w.cfg.DailyGrowth))
	for i := 0; i < grow; i++ {
		if w.active < w.cfg.MaxClasses && w.rng.Float64() < w.cfg.NewClassShare {
			// New-category pressure: occasionally open a fresh class.
			if w.rng.Float64() < 0.25 {
				w.active++
			}
			w.upload(w.active - 1)
			continue
		}
		w.upload(w.rng.Intn(w.active))
	}
}

// SampleStored draws n images uniformly from the whole stored population
// (what full training and fine-tuning read from the storage servers).
func (w *World) SampleStored(n int) *Batch {
	return w.batchOf(w.sampleIdx(n, 0))
}

// SampleRecent draws n images uniformly from photos uploaded in the last
// `days` days (the fresh data fine-tuning wants).
func (w *World) SampleRecent(n, days int) *Batch {
	lo := 0
	for i := len(w.images) - 1; i >= 0; i-- {
		if w.images[i].Day < w.day-days {
			lo = i + 1
			break
		}
	}
	idx := make([]int, n)
	span := len(w.images) - lo
	if span <= 0 {
		span = len(w.images)
		lo = 0
	}
	for i := range idx {
		idx[i] = lo + w.rng.Intn(span)
	}
	return w.batchOf(idx)
}

// FreshTestSet generates n brand-new photos from *today's* distribution.
// This is the held-out "new test dataset reflecting changes in the stored
// images" the paper evaluates stale models against (§3.2). Classes are
// drawn with probability proportional to their share of the stored
// population, so newly opened categories carry realistic (small) weight.
func (w *World) FreshTestSet(n int) *Batch {
	rng := rand.New(rand.NewSource(w.cfg.Seed ^ int64(0x9E3779B9) ^ int64(w.day)))
	counts := make([]int, w.active)
	for _, img := range w.images {
		counts[img.Class]++
	}
	x := tensor.New(n, w.cfg.InputDim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := sampleWeighted(rng, counts, len(w.images))
		labels[i] = c
		p := w.protos[c]
		row := x.Row(i)
		for j := range row {
			row[j] = p[j] + rng.NormFloat64()*w.cfg.ClusterStd
		}
	}
	return &Batch{X: x, Labels: labels}
}

func (w *World) sampleIdx(n, lo int) []int {
	idx := make([]int, n)
	span := len(w.images) - lo
	for i := range idx {
		idx[i] = lo + w.rng.Intn(span)
	}
	return idx
}

func (w *World) batchOf(idx []int) *Batch {
	b := &Batch{
		X:      tensor.New(len(idx), w.cfg.InputDim),
		Labels: make([]int, len(idx)),
		IDs:    make([]uint64, len(idx)),
	}
	for i, k := range idx {
		img := w.images[k]
		copy(b.X.Row(i), img.Feat)
		b.Labels[i] = img.Class
		b.IDs[i] = img.ID
	}
	return b
}

// BatchOfImages materializes a batch from explicit images (used by the
// PipeStore nodes, which hold shards of the population).
func BatchOfImages(images []Image, dim int) *Batch {
	b := &Batch{
		X:      tensor.New(len(images), dim),
		Labels: make([]int, len(images)),
		IDs:    make([]uint64, len(images)),
	}
	for i, img := range images {
		copy(b.X.Row(i), img.Feat)
		b.Labels[i] = img.Class
		b.IDs[i] = img.ID
	}
	return b
}

// Shard splits the stored population round-robin across n shards, the way
// photos are spread over n storage servers.
func (w *World) Shard(n int) [][]Image {
	shards := make([][]Image, n)
	for i, img := range w.images {
		shards[i%n] = append(shards[i%n], img)
	}
	return shards
}

// sampleWeighted draws an index with probability counts[i]/total.
func sampleWeighted(rng *rand.Rand, counts []int, total int) int {
	r := rng.Intn(total)
	for c, k := range counts {
		r -= k
		if r < 0 {
			return c
		}
	}
	return len(counts) - 1
}

func randUnit(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	normalize(v)
	return v
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	s = math.Sqrt(s)
	if s == 0 {
		v[0] = 1
		return
	}
	for j := range v {
		v[j] /= s
	}
}
