package trace

import (
	"fmt"
	"math"
	"testing"

	"ndpipe/internal/dataset"
)

func arrivals(n int) []dataset.Image {
	imgs := make([]dataset.Image, n)
	for i := range imgs {
		imgs[i] = dataset.Image{ID: uint64(i), Class: i % 5, Feat: []float64{1}}
	}
	return imgs
}

func TestGenerateRates(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Duration = 200
	evs, err := Generate(cfg, arrivals(100_000))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(evs)
	if math.Abs(s.UploadRate-cfg.UploadsPerSec)/cfg.UploadsPerSec > 0.15 {
		t.Fatalf("upload rate %.1f, want ≈%.1f", s.UploadRate, cfg.UploadsPerSec)
	}
	if math.Abs(s.SearchRate-cfg.SearchPerSec)/cfg.SearchPerSec > 0.25 {
		t.Fatalf("search rate %.1f, want ≈%.1f", s.SearchRate, cfg.SearchPerSec)
	}
}

func TestGenerateSortedAndDeterministic(t *testing.T) {
	cfg := DefaultConfig(7)
	a, err := Generate(cfg, arrivals(5000))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(cfg, arrivals(5000))
	if len(a) != len(b) {
		t.Fatalf("nondeterministic length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Kind != b[i].Kind {
			t.Fatalf("event %d differs", i)
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatal("events not sorted")
		}
	}
}

func TestUploadsConsumeArrivalsInOrder(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.SearchPerSec = 0
	evs, err := Generate(cfg, arrivals(50))
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0)
	for _, e := range evs {
		if e.Kind != Upload {
			t.Fatal("searches disabled")
		}
		if e.Image.ID != next {
			t.Fatalf("uploads out of order: %d", e.Image.ID)
		}
		next++
	}
	if next == 0 {
		t.Fatal("no uploads generated")
	}
}

func TestTraceEndsWhenArrivalsRunOut(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.SearchPerSec = 0
	cfg.Duration = 1e6
	evs, err := Generate(cfg, arrivals(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 10 {
		t.Fatalf("generated %d uploads for 10 arrivals", len(evs))
	}
}

func TestDiurnalModulation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Diurnal = true
	cfg.Period = 100
	cfg.Duration = 100
	cfg.SearchPerSec = 0
	cfg.UploadsPerSec = 100
	evs, err := Generate(cfg, arrivals(100_000))
	if err != nil {
		t.Fatal(err)
	}
	// First half-period (rising sine) must carry far more traffic than the
	// second (sine below 1 turns rates toward zero).
	var firstHalf, secondHalf int
	for _, e := range evs {
		if e.At < 50 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if firstHalf < secondHalf*2 {
		t.Fatalf("diurnal pattern absent: %d vs %d", firstHalf, secondHalf)
	}
}

func TestSearchLabelsWithinRange(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.UploadsPerSec = 0
	cfg.Classes = 7
	evs, err := Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	popular := 0
	for _, e := range evs {
		if e.Label < 0 || e.Label >= 7 {
			t.Fatalf("label %d out of range", e.Label)
		}
		if e.Label == 0 {
			popular++
		}
	}
	if len(evs) == 0 || popular*2 < len(evs)/2 {
		t.Fatalf("Zipf popularity should concentrate on label 0: %d of %d", popular, len(evs))
	}
}

func TestReplayDispatchAndErrors(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Duration = 5
	evs, err := Generate(cfg, arrivals(1000))
	if err != nil {
		t.Fatal(err)
	}
	var ups, searches int
	err = Replay(evs,
		func(dataset.Image) error { ups++; return nil },
		func(int) error { searches++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(evs)
	if ups != s.Uploads || searches != s.Searches {
		t.Fatalf("replayed %d/%d, want %d/%d", ups, searches, s.Uploads, s.Searches)
	}
	boom := fmt.Errorf("boom")
	err = Replay(evs, func(dataset.Image) error { return boom }, nil)
	if err == nil {
		t.Fatal("handler error must propagate")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Duration = 0
	if _, err := Generate(cfg, nil); err == nil {
		t.Fatal("zero duration must error")
	}
	cfg = DefaultConfig(1)
	cfg.UploadsPerSec = -1
	if _, err := Generate(cfg, nil); err == nil {
		t.Fatal("negative rate must error")
	}
}
