// Package trace generates and replays photo-service workloads: timestamped
// upload and search events with Poisson arrivals and an optional diurnal
// rate pattern. Production photo traces are proprietary (the paper cites
// Facebook/Google aggregate statistics), so this is the synthetic-trace
// substitution: arrival statistics are controllable and deterministic.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ndpipe/internal/dataset"
)

// Kind discriminates trace events.
type Kind int

const (
	// Upload delivers a new photo to the service.
	Upload Kind = iota
	// Search queries the label index.
	Search
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Upload {
		return "upload"
	}
	return "search"
}

// Event is one timestamped operation.
type Event struct {
	At    float64 // seconds from trace start
	Kind  Kind
	Image dataset.Image // Upload only
	Label int           // Search only
}

// Config shapes a trace.
type Config struct {
	Seed          int64
	UploadsPerSec float64 // mean upload arrival rate
	SearchPerSec  float64 // mean search arrival rate
	Duration      float64 // seconds
	// Diurnal modulates rates sinusoidally (peak 2×, trough ~0) over Period
	// seconds; zero Period disables it.
	Diurnal bool
	Period  float64
	// Classes bounds the search labels (Zipf-ish popularity).
	Classes int
}

// DefaultConfig produces a small steady trace.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		UploadsPerSec: 20,
		SearchPerSec:  5,
		Duration:      60,
		Classes:       20,
	}
}

// MaxEvents bounds a generated trace; Generate rejects configurations whose
// expected volume exceeds it (guarding against runaway durations).
const MaxEvents = 5_000_000

// Generate builds a trace. Upload events consume photos from `arrivals` in
// order; the trace ends at cfg.Duration or when arrivals run out, whichever
// is first. Events are sorted by timestamp and the result is deterministic
// in (cfg, arrivals).
func Generate(cfg Config, arrivals []dataset.Image) ([]Event, error) {
	if cfg.UploadsPerSec < 0 || cfg.SearchPerSec < 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("trace: invalid rates/duration")
	}
	expUploads := cfg.UploadsPerSec * cfg.Duration
	if cap := float64(len(arrivals)); expUploads > cap {
		expUploads = cap // uploads are bounded by the arrival stream
	}
	if expected := cfg.SearchPerSec*cfg.Duration + expUploads; expected > MaxEvents {
		return nil, fmt.Errorf("trace: configuration implies ≈%.0f events (cap %d)", expected, MaxEvents)
	}
	if cfg.Classes <= 0 {
		cfg.Classes = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []Event

	rate := func(base, at float64) float64 {
		if !cfg.Diurnal || cfg.Period <= 0 {
			return base
		}
		// Peak 2·base at midday, ~0 at night.
		return base * (1 + math.Sin(2*math.Pi*at/cfg.Period))
	}

	// Uploads: thinned Poisson process against the peak rate.
	if cfg.UploadsPerSec > 0 {
		peak := cfg.UploadsPerSec * 2
		t, used := 0.0, 0
		for used < len(arrivals) {
			t += rng.ExpFloat64() / peak
			if t >= cfg.Duration {
				break
			}
			if rng.Float64()*peak <= rate(cfg.UploadsPerSec, t) {
				events = append(events, Event{At: t, Kind: Upload, Image: arrivals[used]})
				used++
			}
		}
	}
	// Searches: independent process with Zipf-like label popularity.
	if cfg.SearchPerSec > 0 {
		zipf := rand.NewZipf(rng, 1.3, 1, uint64(cfg.Classes-1))
		peak := cfg.SearchPerSec * 2
		t := 0.0
		for {
			t += rng.ExpFloat64() / peak
			if t >= cfg.Duration {
				break
			}
			if rng.Float64()*peak <= rate(cfg.SearchPerSec, t) {
				events = append(events, Event{At: t, Kind: Search, Label: int(zipf.Uint64())})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// Stats summarizes a trace.
type Stats struct {
	Uploads, Searches int
	Duration          float64
	UploadRate        float64
	SearchRate        float64
}

// Summarize computes trace statistics.
func Summarize(events []Event) Stats {
	var s Stats
	for _, e := range events {
		switch e.Kind {
		case Upload:
			s.Uploads++
		case Search:
			s.Searches++
		}
		if e.At > s.Duration {
			s.Duration = e.At
		}
	}
	if s.Duration > 0 {
		s.UploadRate = float64(s.Uploads) / s.Duration
		s.SearchRate = float64(s.Searches) / s.Duration
	}
	return s
}

// Replay drives the handlers through the trace in timestamp order (logical
// time — no sleeping). It stops at the first handler error.
func Replay(events []Event, onUpload func(dataset.Image) error, onSearch func(label int) error) error {
	for i, e := range events {
		switch e.Kind {
		case Upload:
			if onUpload != nil {
				if err := onUpload(e.Image); err != nil {
					return fmt.Errorf("trace: event %d (upload t=%.2f): %w", i, e.At, err)
				}
			}
		case Search:
			if onSearch != nil {
				if err := onSearch(e.Label); err != nil {
					return fmt.Errorf("trace: event %d (search t=%.2f): %w", i, e.At, err)
				}
			}
		}
	}
	return nil
}
