package baseline

import (
	"fmt"

	"ndpipe/internal/cluster"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
	"ndpipe/internal/npe"
)

// FineTunePhases is the Fig 6(a) per-image breakdown: reading images,
// transferring them, feature extraction + classifier training, and weight
// synchronization. Times are aggregate per-image seconds.
type FineTunePhases struct {
	Read       float64
	DataTrans  float64
	FECT       float64
	WeightSync float64
}

// Total returns the serial per-image time.
func (p FineTunePhases) Total() float64 { return p.Read + p.DataTrans + p.FECT + p.WeightSync }

// InferencePhases is the Fig 6(b) per-image breakdown.
type InferencePhases struct {
	Read      float64
	DataTrans float64
	Preproc   float64
	FECl      float64
}

// Total returns the serial per-image time.
func (p InferencePhases) Total() float64 { return p.Read + p.DataTrans + p.Preproc + p.FECl }

// TypicalFineTunePhases breaks down the §3.4 Typical fine-tuning loop
// (stores is the NaiveNDP store count used for the NDP comparison column).
func TypicalFineTunePhases(m *model.Spec, gbps float64) FineTunePhases {
	host := cluster.SRVHost(gbps)
	storage := cluster.StorageServer(gbps)
	readAgg := float64(StorageServers) * storage.Disk.ReadBps
	gpuPlain := host.TrainIPS(m, m.TotalGFLOPs()+3*m.TrainableGFLOPs())
	// Local two-GPU sync over PCIe per iteration, amortized over the batch.
	const pcieBps, batch = 12e9, 512
	return FineTunePhases{
		Read:       float64(m.PreprocBytes()) / readAgg,
		DataTrans:  float64(m.PreprocBytes())/host.Net.Bps + FetchRTT,
		FECT:       1 / gpuPlain,
		WeightSync: 2 * float64(m.TrainableParamBytes()) / pcieBps / batch,
	}
}

// NaiveNDPFineTunePhases breaks down fine-tuning on the naive NDP setup:
// local reads, no transfer, FE&CT on the stores' accelerators, and
// cross-store weight synchronization every iteration (§4.1).
func NaiveNDPFineTunePhases(m *model.Spec, gbps float64, stores, batchPerStore int) (FineTunePhases, error) {
	if stores <= 0 {
		return FineTunePhases{}, fmt.Errorf("baseline: need stores")
	}
	if batchPerStore <= 0 {
		batchPerStore = 512
	}
	ps := cluster.PipeStore(gbps)
	perStore := 1 / ps.TrainIPS(m, m.TotalGFLOPs()+3*m.TrainableGFLOPs())
	sync := (2*float64(m.TrainableParamBytes())*float64(stores)/(ps.Net.Bps*ftdmp.SyncGoodputFrac) +
		ftdmp.SyncBarrierS) / float64(batchPerStore)
	return FineTunePhases{
		Read:       float64(m.PreprocBytes()) / ps.Disk.ReadBps / float64(stores),
		DataTrans:  0,
		FECT:       perStore / float64(stores),
		WeightSync: sync / float64(stores),
	}, nil
}

// TypicalInferencePhases breaks down the §3.4 Typical offline-inference
// path (per aggregate image).
func TypicalInferencePhases(m *model.Spec, gbps float64) InferencePhases {
	host := cluster.SRVHost(gbps)
	storage := cluster.StorageServer(gbps)
	readAgg := float64(StorageServers) * storage.Disk.ReadBps
	return InferencePhases{
		Read:      float64(m.RawBytes) / readAgg,
		DataTrans: float64(m.RawBytes) / host.Net.Bps,
		Preproc:   1 / (float64(PreprocPoolCores) * host.CPU.PreprocIPS),
		FECl:      1 / (host.InferIPS(m, m.TotalGFLOPs()) * npeBatchEff()),
	}
}

// NaiveNDPInferencePhases breaks down naive-NDP offline inference per
// aggregate image across `stores` stores (single preprocessing core each,
// §4.2).
func NaiveNDPInferencePhases(m *model.Spec, gbps float64, stores int) (InferencePhases, error) {
	if stores <= 0 {
		return InferencePhases{}, fmt.Errorf("baseline: need stores")
	}
	ps := cluster.PipeStore(gbps)
	st, err := npe.StageTimes(ps, m, m.TotalGFLOPs(), npe.OfflineInference, npe.Naive())
	if err != nil {
		return InferencePhases{}, err
	}
	n := float64(stores)
	return InferencePhases{
		Read:      st.Read / n,
		DataTrans: 0,
		Preproc:   st.Preproc / n,
		FECl:      st.FE / n,
	}, nil
}
