package baseline

import (
	"math"
	"testing"

	"ndpipe/internal/model"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Fatalf("%s = %.1f, want ≈%.1f (±%.0f%%)", name, got, want, tol*100)
	}
}

// TestFig5OfflineInferenceAnchors: Typical ≈94 IPS, Ideal ≈123 IPS (§3.4).
func TestFig5OfflineInferenceAnchors(t *testing.T) {
	m := model.ResNet50()
	typ, err := InferenceIPS(Typical, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := InferenceIPS(Ideal, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Typical", typ, 94, 0.10)
	approx(t, "Ideal", ideal, 123, 0.05)
	if typ >= ideal {
		t.Fatal("Typical must trail Ideal")
	}
}

// TestFig5FineTuneGap: the Typical system trains ≈3.7× slower than Ideal.
func TestFig5FineTuneGap(t *testing.T) {
	m := model.ResNet50()
	typ, err := FineTuneIPS(Typical, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := FineTuneIPS(Ideal, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Ideal/Typical", ideal/typ, 3.7, 0.15)
}

// TestFig13CrossingPoints: a PipeStore delivers 2,129 IPS for ResNet50, so
// SRV-P/SRV-C/SRV-I must sit at ≈1 / ≈4 / ≈5.5 PipeStore-equivalents (the
// paper's P1/P2/P3 bands of 1–7 / 4–7 / 5–7 stores).
func TestFig13CrossingPoints(t *testing.T) {
	m := model.ResNet50()
	const psIPS = 2129.0
	p, _ := InferenceIPS(SRVP, m, 10)
	c, _ := InferenceIPS(SRVC, m, 10)
	i, _ := InferenceIPS(SRVI, m, 10)
	if x := p / psIPS; x < 0.7 || x > 2 {
		t.Fatalf("P1 at %.1f stores, want ≈1", x)
	}
	if x := c / psIPS; x < 3 || x > 7 {
		t.Fatalf("P2 at %.1f stores, want 4–7", x)
	}
	if x := i / psIPS; x < 5 || x > 7 {
		t.Fatalf("P3 at %.1f stores, want 5–7", x)
	}
	if !(p < c && c < i) {
		t.Fatalf("ordering must be SRV-P < SRV-C < SRV-I: %v %v %v", p, c, i)
	}
}

// TestResNeXtGPUBound: for the big models, SRV-I/C/P converge because two
// V100s are the bottleneck (§6.2: "SRV-I, SRV-C, and SRV-P show similar
// throughputs" for ResNeXt101 and ViT).
func TestResNeXtGPUBound(t *testing.T) {
	m := model.ResNeXt101()
	p, _ := InferenceIPS(SRVP, m, 10)
	c, _ := InferenceIPS(SRVC, m, 10)
	i, _ := InferenceIPS(SRVI, m, 10)
	if i/p > 1.5 {
		t.Fatalf("ResNeXt101 SRV systems should be similar (GPU-bound): P=%.0f C=%.0f I=%.0f", p, c, i)
	}
	if i/c > 1.2 {
		t.Fatalf("SRV-C ≈ SRV-I for ResNeXt101: %v vs %v", c, i)
	}
}

// TestFig18SRVCBandwidthSweep: SRV-C scales 1→10→20 Gbps then flattens
// (decompression-bound beyond 20 Gbps).
func TestFig18SRVCBandwidthSweep(t *testing.T) {
	m := model.ResNet50()
	var ips []float64
	for _, g := range []float64{1, 10, 20, 40} {
		v, err := InferenceIPS(SRVC, m, g)
		if err != nil {
			t.Fatal(err)
		}
		ips = append(ips, v)
	}
	if !(ips[0] < ips[1] && ips[1] < ips[2]) {
		t.Fatalf("SRV-C should improve up to 20 Gbps: %v", ips)
	}
	if ips[3] > ips[2]*1.01 {
		t.Fatalf("SRV-C must flatten beyond 20 Gbps: %v", ips)
	}
	// And it must be decompression-bound there, below the GPU ceiling.
	i, _ := InferenceIPS(SRVI, m, 40)
	if ips[3] >= i {
		t.Fatalf("flat region should sit under the GPU bound: %v vs %v", ips[3], i)
	}
}

// TestFig6FineTunePhases: naive NDP eliminates transfer, pays ≈1.3–1.4× in
// FE&CT on low-end GPUs, and suffers a weight-sync blow-up of tens of ×.
func TestFig6FineTunePhases(t *testing.T) {
	m := model.ResNet50()
	typ := TypicalFineTunePhases(m, 10)
	ndp, err := NaiveNDPFineTunePhases(m, 10, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	if ndp.DataTrans != 0 {
		t.Fatal("NDP must not transfer data")
	}
	ratio := ndp.FECT / typ.FECT
	if ratio < 1.1 || ratio > 1.7 {
		t.Fatalf("NDP FE&CT ratio %.2f, want ≈1.36", ratio)
	}
	syncRatio := ndp.WeightSync / typ.WeightSync
	if syncRatio < 30 {
		t.Fatalf("NDP weight sync should blow up ≫ Typical: ratio %.0f", syncRatio)
	}
	if typ.Total() <= 0 || ndp.Total() <= 0 {
		t.Fatal("totals must be positive")
	}
}

// TestFig6InferencePhases: naive NDP kills the transfer but preprocessing
// with one core per store becomes the new bottleneck.
func TestFig6InferencePhases(t *testing.T) {
	m := model.ResNet50()
	typ := TypicalInferencePhases(m, 10)
	ndp, err := NaiveNDPInferencePhases(m, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ndp.DataTrans != 0 {
		t.Fatal("NDP must not transfer data")
	}
	if ndp.Preproc <= typ.Preproc {
		t.Fatalf("NDP preprocessing must be worse: %.4f vs %.4f", ndp.Preproc, typ.Preproc)
	}
	if ndp.Preproc < ndp.Read || ndp.Preproc < ndp.FECl {
		t.Fatal("NDP bottleneck must be preprocessing")
	}
}

// TestWeightSyncLinearInStores (§4.1: sync costs grow linearly with stores).
func TestWeightSyncLinearInStores(t *testing.T) {
	m := model.ResNet50()
	var per []float64
	for _, n := range []int{2, 4, 8} {
		ips, err := NaiveNDPFineTune(m, 10, n, 512)
		if err != nil {
			t.Fatal(err)
		}
		per = append(per, ips/float64(n))
	}
	if !(per[0] > per[1] && per[1] > per[2]) {
		t.Fatalf("per-store efficiency must fall as sync grows: %v", per)
	}
}

func TestNaiveNDPFineTuneScalesSublinearly(t *testing.T) {
	m := model.ResNet50()
	i4, _ := NaiveNDPFineTune(m, 10, 4, 512)
	i16, _ := NaiveNDPFineTune(m, 10, 16, 512)
	if i16/i4 >= 3.9 {
		t.Fatalf("4→16 stores speedup %.2f should be clearly sublinear", i16/i4)
	}
	if i16 <= i4 {
		t.Fatal("more stores should still help somewhat")
	}
}

func TestInvalidSystems(t *testing.T) {
	m := model.ResNet50()
	if _, err := InferenceIPS(NaiveNDP, m, 10); err == nil {
		t.Fatal("NaiveNDP is not a centralized inference system")
	}
	if _, err := FineTuneIPS(SRVI, m, 10); err == nil {
		t.Fatal("SRV-I is not a fine-tuning baseline")
	}
	if _, err := NaiveNDPFineTune(m, 10, 0, 0); err == nil {
		t.Fatal("zero stores must error")
	}
	if _, err := NaiveNDPInferencePhases(m, 10, 0); err == nil {
		t.Fatal("zero stores must error")
	}
	if _, err := NaiveNDPFineTunePhases(m, 10, 0, 0); err == nil {
		t.Fatal("zero stores must error")
	}
}

func TestSystemString(t *testing.T) {
	names := map[System]string{
		SRVI: "SRV-I", SRVP: "SRV-P", SRVC: "SRV-C",
		Typical: "Typical", Ideal: "Ideal", NaiveNDP: "NDP",
	}
	for sys, want := range names {
		if sys.String() != want {
			t.Fatalf("%d.String() = %q, want %q", sys, sys.String(), want)
		}
	}
	if System(99).String() == "" {
		t.Fatal("unknown system should still render")
	}
}
