package baseline

import (
	"testing"
	"testing/quick"

	"ndpipe/internal/model"
)

// Property: for every model, inference throughput of the network-fed
// systems is non-decreasing in bandwidth, and SRV-I never loses to SRV-P
// or SRV-C (it has strictly fewer constraints).
func TestBandwidthAndOrderingProperty(t *testing.T) {
	zoo := model.Zoo()
	f := func(modelIdx uint8) bool {
		m := zoo[int(modelIdx)%len(zoo)]
		var prevP, prevC float64
		for _, g := range []float64{1, 5, 10, 20, 40} {
			p, err := InferenceIPS(SRVP, m, g)
			if err != nil {
				return false
			}
			c, err := InferenceIPS(SRVC, m, g)
			if err != nil {
				return false
			}
			i, err := InferenceIPS(SRVI, m, g)
			if err != nil {
				return false
			}
			if p < prevP-1e-9 || c < prevC-1e-9 {
				return false // bandwidth hurt
			}
			prevP, prevC = p, c
			if i+1e-9 < p || i+1e-9 < c {
				return false // the ideal system lost
			}
			if c+1e-9 < p {
				return false // compression hurt at equal bandwidth
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: naive NDP fine-tuning throughput is increasing in store count
// but per-store efficiency strictly decreases (the §4.1 scaling limit).
func TestNaiveNDPScalingProperty(t *testing.T) {
	f := func(modelIdx uint8) bool {
		m := model.Zoo()[int(modelIdx)%len(model.Zoo())]
		var prevTotal, prevPer float64
		for _, n := range []int{1, 2, 4, 8, 16} {
			ips, err := NaiveNDPFineTune(m, 10, n, 512)
			if err != nil {
				return false
			}
			per := ips / float64(n)
			if ips < prevTotal {
				return false
			}
			if prevPer > 0 && per >= prevPer {
				return false
			}
			prevTotal, prevPer = ips, per
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: phase breakdowns are internally consistent — all components
// non-negative and the serial total equals their sum.
func TestPhaseConsistencyProperty(t *testing.T) {
	f := func(modelIdx, storesRaw uint8) bool {
		m := model.Zoo()[int(modelIdx)%len(model.Zoo())]
		stores := 1 + int(storesRaw)%15
		ft := TypicalFineTunePhases(m, 10)
		if ft.Read < 0 || ft.DataTrans < 0 || ft.FECT < 0 || ft.WeightSync < 0 {
			return false
		}
		if diff := ft.Total() - (ft.Read + ft.DataTrans + ft.FECT + ft.WeightSync); diff > 1e-12 || diff < -1e-12 {
			return false
		}
		np, err := NaiveNDPFineTunePhases(m, 10, stores, 512)
		if err != nil {
			return false
		}
		ip, err := NaiveNDPInferencePhases(m, 10, stores)
		if err != nil {
			return false
		}
		return np.DataTrans == 0 && ip.DataTrans == 0 && np.Total() > 0 && ip.Total() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
