// Package baseline implements the comparison systems of the paper's
// evaluation: the centralized host-server architectures (§3.4, §6.1) and
// the naive NDP configuration (§4).
//
//   - SRV-I ("ideal"): keeps preprocessed binaries on host-local NVMe; no
//     network. Upper bound for a centralized system.
//   - SRV-P: streams preprocessed binaries from storage servers over the
//     network.
//   - SRV-C: like SRV-P but deflate-compressed, decompressed by 8 dedicated
//     host cores.
//   - Typical / Ideal: the *unoptimized* setups of the §3.4 bottleneck
//     analysis (no NPE optimizations; the training data loader is a
//     synchronous read → transfer → train loop).
//   - NaiveNDP: GPUs enabled in the storage servers but none of NDPipe's
//     techniques (§4): full fine-tuning with cross-store weight sync, and
//     offline inference with single-core on-store preprocessing.
//
// All throughputs are aggregate images/second; phase breakdowns are
// per-image seconds (aggregated across servers) so Fig 5/6 can be printed
// directly.
package baseline

import (
	"fmt"

	"ndpipe/internal/cluster"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
	"ndpipe/internal/npe"
)

// StorageServers is the number of storage servers behind the host in every
// centralized configuration (§3.4).
const StorageServers = 4

// DecompCores is the host-core budget dedicated to decompression in SRV-C.
const DecompCores = 8

// PreprocPoolCores is the host-core pool that preprocessing shares with
// network-receive handling in the unoptimized Typical system — the
// contention that pins it at ≈94 IPS vs Ideal's ≈123 (Fig 5b).
const PreprocPoolCores = 8

// FetchRTT is the per-object request round-trip of the unoptimized
// synchronous fetch path used by the §3.4 Typical fine-tuning loader.
const FetchRTT = 1.2e-3

// System identifies a baseline configuration.
type System int

const (
	SRVI System = iota
	SRVP
	SRVC
	Typical
	Ideal
	NaiveNDP
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case SRVI:
		return "SRV-I"
	case SRVP:
		return "SRV-P"
	case SRVC:
		return "SRV-C"
	case Typical:
		return "Typical"
	case Ideal:
		return "Ideal"
	case NaiveNDP:
		return "NDP"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// InferenceIPS returns the offline-inference throughput of a centralized
// baseline at the given network line rate. (NaiveNDP inference is per-store;
// see NaiveNDPInferenceIPS.)
func InferenceIPS(sys System, m *model.Spec, gbps float64) (float64, error) {
	host := cluster.SRVHost(gbps)
	storage := cluster.StorageServer(gbps)
	gpu := host.InferIPS(m, m.TotalGFLOPs()) * npeBatchEff()
	readAgg := float64(StorageServers) * storage.Disk.ReadBps

	switch sys {
	case SRVI:
		local := host.Disk.ReadBps / float64(m.PreprocBytes())
		return minf(gpu, local), nil
	case SRVP:
		net := host.Net.Bps / float64(m.PreprocBytes())
		read := readAgg / float64(m.PreprocBytes())
		return minf(gpu, net, read), nil
	case SRVC:
		comp := float64(m.PreprocBytes()) * npe.PreprocCompressRatio
		net := host.Net.Bps / comp
		read := readAgg / comp
		decomp := float64(DecompCores) * host.CPU.DecompBps / float64(m.PreprocBytes())
		return minf(gpu, net, read, decomp), nil
	case Typical:
		// Raw JPEGs stream to the host; preprocessing shares its 8-core
		// pool with receive handling (fixed point of the core budget).
		perImageCore := float64(m.RawBytes)/host.CPU.FeedBps + 1/host.CPU.PreprocIPS
		pool := float64(PreprocPoolCores) / perImageCore
		net := host.Net.Bps / float64(m.RawBytes)
		read := readAgg / float64(m.RawBytes)
		return minf(gpu, net, read, pool), nil
	case Ideal:
		pool := float64(PreprocPoolCores) * host.CPU.PreprocIPS
		return minf(gpu, pool), nil
	}
	return 0, fmt.Errorf("baseline: %v is not a centralized inference system", sys)
}

// NaiveNDPInferenceIPS returns the per-store offline-inference rate of the
// naive NDP configuration (raw reads, single-core preprocessing, §4.2).
func NaiveNDPInferenceIPS(m *model.Spec, gbps float64) (float64, error) {
	ps := cluster.PipeStore(gbps)
	st, err := npe.StageTimes(ps, m, m.TotalGFLOPs(), npe.OfflineInference, npe.Naive())
	if err != nil {
		return 0, err
	}
	return npe.Throughput(st, true), nil
}

// FineTuneIPS returns aggregate fine-tuning throughput. SRV-C (the §6.3
// baseline) runs the NPE-optimized engine: frozen-layer forward passes on
// the inference engine, classifier updates on the training engine, fed by
// compressed binaries. Typical/Ideal are the unoptimized §3.4 systems with
// a synchronous loader.
func FineTuneIPS(sys System, m *model.Spec, gbps float64) (float64, error) {
	host := cluster.SRVHost(gbps)
	storage := cluster.StorageServer(gbps)
	readAgg := float64(StorageServers) * storage.Disk.ReadBps

	// Per-image GPU time on the optimized engine: inference-engine forward
	// for the frozen stages plus training-engine fwd+bwd+update (≈3×) for
	// the trainable tail.
	frozen := m.TotalGFLOPs() - m.TrainableGFLOPs()
	gpuOpt := 1 / (1/(host.InferIPS(m, frozen)*npeBatchEff()) + 1/host.TrainIPS(m, 3*m.TrainableGFLOPs()))
	// Unoptimized engine: the whole forward runs on the fp32 training path.
	gpuPlain := host.TrainIPS(m, m.TotalGFLOPs()+3*m.TrainableGFLOPs())

	switch sys {
	case SRVC:
		comp := float64(m.PreprocBytes()) * npe.PreprocCompressRatio
		net := host.Net.Bps / comp
		read := readAgg / comp
		decomp := float64(DecompCores) * host.CPU.DecompBps / float64(m.PreprocBytes())
		return minf(gpuOpt, net, read, decomp), nil
	case Typical:
		// Synchronous loader: read → transfer (+object-fetch RTT) → train.
		per := float64(m.PreprocBytes())/readAgg +
			float64(m.PreprocBytes())/host.Net.Bps + FetchRTT +
			1/gpuPlain
		return 1 / per, nil
	case Ideal:
		per := float64(m.PreprocBytes())/host.Disk.ReadBps + 1/gpuPlain
		return 1 / per, nil
	}
	return 0, fmt.Errorf("baseline: %v is not a fine-tuning baseline", sys)
}

// NaiveNDPFineTune returns the naive NDP fine-tuning throughput: stores
// train the full model locally (training engine) and synchronize trainable
// weights across stores every iteration (§4.1).
func NaiveNDPFineTune(m *model.Spec, gbps float64, stores, batchPerStore int) (float64, error) {
	if stores <= 0 {
		return 0, fmt.Errorf("baseline: need stores")
	}
	if batchPerStore <= 0 {
		batchPerStore = 512
	}
	ps := cluster.PipeStore(gbps)
	// Naive NDP runs the stock training framework on the stores (no NPE):
	// the whole forward plus the trainable tail's backward on the fp32 path.
	// That is why §4.1 sees only a 36 % FE&CT slowdown on the low-end GPUs
	// rather than a win.
	per := 1 / ps.TrainIPS(m, m.TotalGFLOPs()+3*m.TrainableGFLOPs())
	// Reading compressed preprocessed binaries locally.
	read := float64(m.PreprocBytes()) * npe.PreprocCompressRatio / ps.Disk.ReadBps
	perImage := maxf2(per, read)
	// All-reduce of the trainable weights every iteration.
	sync := (2*float64(m.TrainableParamBytes())*float64(stores)/(ps.Net.Bps*ftdmp.SyncGoodputFrac) +
		ftdmp.SyncBarrierS) / float64(batchPerStore)
	return float64(stores) / (perImage + sync), nil
}

// npeBatchEff is the batch-128 efficiency all optimized engines run at.
func npeBatchEff() float64 { return npe.BatchEff(128) }

func minf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxf2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
