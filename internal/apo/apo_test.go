package apo

import (
	"testing"

	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
)

func cfgFor(m *model.Spec) Config {
	return Config{
		Base:      ftdmp.Config{Model: m, Images: 120_000, Nrun: 3},
		MaxStores: 20,
	}
}

// TestAlgorithm1PicksEightForResNet50 reproduces the §5.3 example: APO
// chooses 8 PipeStores for ResNet50 on this hardware.
func TestAlgorithm1PicksEightForResNet50(t *testing.T) {
	rec, err := BestOrganization(cfgFor(model.ResNet50()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.BestStores < 7 || rec.BestStores > 10 {
		t.Fatalf("APO picked %d stores, want ≈8", rec.BestStores)
	}
	if len(rec.Options) != 20 {
		t.Fatalf("expected 20 options, got %d", len(rec.Options))
	}
}

// TestFindBestPointPicksFeatureCut: with the trainable tail pinned to the
// Tuner, the best cut for ResNet50 is +Conv5 (Fig 9).
func TestFindBestPointPicksFeatureCut(t *testing.T) {
	m := model.ResNet50()
	opt, err := FindBestPoint(cfgFor(m), 4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cut != m.LastFrozen() {
		t.Fatalf("best cut %s, want +Conv5", opt.CutName)
	}
	if opt.CutName != "+Conv5" {
		t.Fatalf("cut name %q", opt.CutName)
	}
}

// TestFindBestPointNeverPicksSyncCutEvenWhenAllowed: even with AllowSync,
// the +FC cut should lose to +Conv5 under pipelined training.
func TestFindBestPointNeverPicksSyncCutEvenWhenAllowed(t *testing.T) {
	m := model.ResNet50()
	cfg := cfgFor(m)
	cfg.Base.Nrun = 3
	cfg.AllowSync = true
	opt, err := FindBestPoint(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.SyncedParamBytes(opt.Cut) != 0 {
		t.Fatalf("APO picked a sync-requiring cut %s", opt.CutName)
	}
}

// TestTDiffShrinksTowardBalance: T_diff at the chosen store count must be
// the sweep minimum, and training time must flatten beyond it (Fig 11).
func TestTDiffShrinksTowardBalance(t *testing.T) {
	rec, err := BestOrganization(cfgFor(model.ResNet50()))
	if err != nil {
		t.Fatal(err)
	}
	best := rec.Options[rec.BestStores-1]
	for _, o := range rec.Options {
		if o.TDiff < best.TDiff {
			t.Fatalf("store count %d has smaller TDiff than the pick", o.Stores)
		}
	}
	last := rec.Options[len(rec.Options)-1]
	if best.TotalSec/last.TotalSec > 1.3 {
		t.Fatalf("time beyond the balance point should be ≈flat: %v vs %v",
			best.TotalSec, last.TotalSec)
	}
}

// TestBigModelsWantMoreOrEqualStores: per Fig 15, compute-heavy models keep
// scaling longer, so APO should not pick fewer stores for ResNeXt101 than
// for ResNet50.
func TestBigModelsWantMoreOrEqualStores(t *testing.T) {
	r50, err := BestOrganization(cfgFor(model.ResNet50()))
	if err != nil {
		t.Fatal(err)
	}
	rx, err := BestOrganization(cfgFor(model.ResNeXt101()))
	if err != nil {
		t.Fatal(err)
	}
	if rx.BestStores < r50.BestStores {
		t.Fatalf("ResNeXt101 picked %d < ResNet50's %d", rx.BestStores, r50.BestStores)
	}
}

func TestDefaultsAndErrors(t *testing.T) {
	if _, err := BestOrganization(Config{}); err == nil {
		t.Fatal("nil model must error")
	}
	cfg := cfgFor(model.ViT())
	cfg.MaxStores = 0 // defaults to 20
	rec, err := BestOrganization(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Options) != 20 {
		t.Fatalf("default MaxStores should be 20, got %d options", len(rec.Options))
	}
}
