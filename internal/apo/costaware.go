package apo

import (
	"fmt"

	"ndpipe/internal/cluster"
	"ndpipe/internal/cost"
	"ndpipe/internal/ftdmp"
)

// CostOption extends an APO option with its dollar cost.
type CostOption struct {
	Option
	USD float64
}

// CheapestMeetingDeadline extends Algorithm 1 with the §7.2 cost lens: it
// sweeps fleet sizes (and optionally accelerator types) and returns the
// cheapest configuration whose predicted training time meets the deadline.
// Idle over-provisioned stores cost money, so the answer is usually *not*
// the fastest configuration.
func CheapestMeetingDeadline(cfg Config, deadlineSec float64, hardware []*cluster.Server) (CostOption, error) {
	if deadlineSec <= 0 {
		return CostOption{}, fmt.Errorf("apo: deadline must be positive")
	}
	if cfg.MaxStores <= 0 {
		cfg.MaxStores = 20
	}
	if len(hardware) == 0 {
		hardware = []*cluster.Server{cluster.PipeStore(10), cluster.PipeStoreInf1(10)}
	}
	tuner := cfg.Base.Tuner
	if tuner == nil {
		tuner = cluster.Tuner(10)
	}
	best := CostOption{USD: -1}
	for _, hw := range hardware {
		for n := 1; n <= cfg.MaxStores; n++ {
			c := cfg
			c.Base.Store = hw
			opt, err := FindBestPoint(c, n)
			if err != nil {
				return CostOption{}, err
			}
			if opt.TotalSec > deadlineSec {
				continue
			}
			usd, err := cost.FineTuneNDPipe(hw, tuner, n, opt.TotalSec)
			if err != nil {
				return CostOption{}, err
			}
			if best.USD < 0 || usd < best.USD {
				best = CostOption{Option: opt, USD: usd}
				best.CutName = hw.Name + " " + opt.CutName
			}
		}
	}
	if best.USD < 0 {
		return CostOption{}, fmt.Errorf("apo: no configuration (≤%d stores) meets a %.0fs deadline", cfg.MaxStores, deadlineSec)
	}
	return best, nil
}

// DeadlineCurve evaluates the cheapest feasible cost across a range of
// deadlines — the planning view of the Fig 21 cost/performance trade.
func DeadlineCurve(cfg Config, deadlines []float64, hardware []*cluster.Server) ([]CostOption, error) {
	out := make([]CostOption, 0, len(deadlines))
	for _, d := range deadlines {
		opt, err := CheapestMeetingDeadline(cfg, d, hardware)
		if err != nil {
			// Infeasible deadlines yield a zero-valued marker.
			out = append(out, CostOption{})
			continue
		}
		out = append(out, opt)
	}
	return out, nil
}

var _ = ftdmp.Config{} // keep the ftdmp dependency explicit for godoc
