package apo

import (
	"strings"
	"testing"

	"ndpipe/internal/cluster"
	"ndpipe/internal/model"
)

func TestCheapestMeetingDeadlineBasics(t *testing.T) {
	cfg := cfgFor(model.ResNet50())
	// A generous deadline: something feasible and cheap must come back.
	opt, err := CheapestMeetingDeadline(cfg, 600, nil)
	if err != nil {
		t.Fatal(err)
	}
	if opt.USD <= 0 || opt.TotalSec > 600 {
		t.Fatalf("bad option: %+v", opt)
	}
	// A tighter deadline costs at least as much.
	tight, err := CheapestMeetingDeadline(cfg, 120, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tight.TotalSec > 120 {
		t.Fatalf("deadline violated: %v", tight.TotalSec)
	}
	if tight.USD+1e-9 < opt.USD {
		t.Fatalf("tighter deadline cheaper: %.3f vs %.3f", tight.USD, opt.USD)
	}
}

func TestImpossibleDeadline(t *testing.T) {
	cfg := cfgFor(model.ViT())
	if _, err := CheapestMeetingDeadline(cfg, 1, nil); err == nil {
		t.Fatal("1-second deadline must be infeasible")
	}
	if _, err := CheapestMeetingDeadline(cfg, -5, nil); err == nil {
		t.Fatal("negative deadline must error")
	}
}

func TestInferentiaWinsRelaxedDeadlines(t *testing.T) {
	// With a loose deadline the cheaper Inferentia stores should win; the
	// T4 fleet only earns its price under pressure.
	cfg := cfgFor(model.ResNet50())
	relaxed, err := CheapestMeetingDeadline(cfg, 3600, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(relaxed.CutName, "Inf1") {
		t.Fatalf("relaxed deadline should pick Inferentia, got %q ($%.3f)", relaxed.CutName, relaxed.USD)
	}
}

func TestDeadlineCurveMonotone(t *testing.T) {
	cfg := cfgFor(model.ResNet50())
	curve, err := DeadlineCurve(cfg, []float64{60, 120, 300, 900}, []*cluster.Server{cluster.PipeStore(10)})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for i, opt := range curve {
		if opt.USD == 0 {
			continue // infeasible marker
		}
		if prev > 0 && opt.USD > prev+1e-9 {
			t.Fatalf("cost must not rise with looser deadlines: point %d %.3f > %.3f", i, opt.USD, prev)
		}
		prev = opt.USD
	}
	if prev < 0 {
		t.Fatal("no feasible point on the curve")
	}
}
