// Package apo implements the Automated model Partitioning and Organization
// tool (§5.3, Algorithm 1). Given a DNN architecture, the hardware of the
// PipeStores and Tuner, and the network bandwidth, APO picks
//
//  1. the best partition point for each candidate store count
//     (FindBestPoint: the cut minimizing predicted training time, with the
//     trainable tail pinned to the Tuner so no weight sync is needed), and
//  2. the number of PipeStores whose Store-/Tuner-stage times balance
//     (minimum |T_ps − T_tuner|), which maximizes throughput-per-joule by
//     avoiding pipeline bubbles and idle stores.
package apo

import (
	"fmt"

	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
)

// Option is APO's evaluation of one PipeStore count.
type Option struct {
	Stores        int
	Cut           model.Cut
	CutName       string
	StoreStageSec float64 // T_ps
	TunerStageSec float64 // T_tuner
	TDiff         float64
	TotalSec      float64
}

// Recommendation is Algorithm 1's output plus the full sweep for reporting.
type Recommendation struct {
	BestStores int
	BestCut    model.Cut
	Options    []Option // one per store count 1..MaxStores
}

// Config parameterizes the search; zero fields default as in ftdmp.Config.
type Config struct {
	Base      ftdmp.Config // Model, Gbps, hardware, Images, Nrun, batch
	MaxStores int          // N^max_ps (Algorithm 1 input)
	// AllowSync permits cuts that offload trainable layers (disabled by
	// default: FindBestPoint pins the trainable tail to the Tuner, §5.3).
	AllowSync bool
}

// FindBestPoint returns the partition point minimizing predicted training
// time for nStores PipeStores, together with the stage times at that point.
func FindBestPoint(cfg Config, nStores int) (Option, error) {
	if cfg.Base.Model == nil {
		return Option{}, fmt.Errorf("apo: nil model")
	}
	m := cfg.Base.Model
	maxCut := m.LastFrozen()
	if cfg.AllowSync {
		maxCut = model.Cut(len(m.Stages))
	}
	best := Option{TotalSec: -1}
	for c := model.Cut(0); c <= maxCut; c++ {
		fc := cfg.Base
		fc.Cut = c
		fc.Stores = nStores
		res, err := ftdmp.Estimate(fc)
		if err != nil {
			return Option{}, err
		}
		if best.TotalSec < 0 || res.TotalSec < best.TotalSec {
			best = Option{
				Stores:        nStores,
				Cut:           c,
				CutName:       m.CutName(c),
				StoreStageSec: res.StoreStageSec,
				TunerStageSec: res.TunerStageSec,
				TDiff:         res.TDiff,
				TotalSec:      res.TotalSec,
			}
		}
	}
	return best, nil
}

// BestOrganization runs Algorithm 1: it sweeps N_ps from 1 to MaxStores,
// calls FindBestPoint for each, and returns the store count with minimal
// |T_ps − T_tuner|.
func BestOrganization(cfg Config) (Recommendation, error) {
	if cfg.MaxStores <= 0 {
		cfg.MaxStores = 20
	}
	rec := Recommendation{}
	tMin := -1.0
	for n := 1; n <= cfg.MaxStores; n++ {
		opt, err := FindBestPoint(cfg, n)
		if err != nil {
			return Recommendation{}, err
		}
		rec.Options = append(rec.Options, opt)
		if tMin < 0 || opt.TDiff < tMin {
			tMin = opt.TDiff
			rec.BestStores = n
			rec.BestCut = opt.Cut
		}
	}
	return rec, nil
}
