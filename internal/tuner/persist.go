// Tuner crash consistency (S31). The training state that must survive a
// restart is exactly what a round commits: the delta chain (one blob per
// released version), the round epoch, and the label database. It lives
// under -state-dir as
//
//	base.snap   checksummed: chain root (base version + epoch + full snapshot)
//	tuner.wal   CRC32C record log: one record per committed round / label pass
//	labels.snap checksummed: gob labeldb snapshot (rewritten per label pass)
//
// Write ordering makes every point crash-safe:
//
//   - A round journals its WAL record (fsynced) BEFORE the delta broadcast,
//     so no store can ever hold a version the restarted tuner cannot
//     reconstruct.
//   - Compaction writes the new base.snap FIRST (atomic replace), then
//     rewrites the WAL. Replay skips records at or below the base version,
//     so a crash between the two steps replays the old records harmlessly.
//   - labels.snap is a whole-file atomic replace; a torn write leaves the
//     previous snapshot, and a corrupt one degrades to a cold label DB
//     (labels are reconstructible by the next offline-inference pass).
package tuner

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"ndpipe/internal/durable"
	"ndpipe/internal/modelstore"
	"ndpipe/internal/nn"
	"ndpipe/internal/telemetry"
)

// WAL record kinds.
const (
	walRound  = 1 // a committed fine-tuning round (carries the delta blob)
	walLabels = 2 // a committed offline-inference pass (labels.snap ref)
	walLeader = 3 // a leadership assertion (Leader is the new epoch)
)

// walRecord is one WAL entry, gob-encoded inside a durable.Log frame.
// Leader is the leadership epoch in force when the record was written
// (zero on pre-HA logs, which gob-decodes compatibly).
type walRecord struct {
	Kind    int
	Version int
	Epoch   int
	Leader  uint64
	Delta   []byte // walRound only: the round's encoded delta blob
}

// baseSnap is the checksummed payload of base.snap: the delta chain's root.
type baseSnap struct {
	Version int
	Epoch   int
	Leader  uint64 // leadership epoch at the root (0 on pre-HA snapshots)
	Model   []byte // nn.EncodeSnapshot of the classifier at Version
}

// nodeState is the tuner's open persistence handles.
type nodeState struct {
	dir    string
	wal    *durable.Log
	faults *durable.Faults
}

func (s *nodeState) basePath() string   { return filepath.Join(s.dir, "base.snap") }
func (s *nodeState) walPath() string    { return filepath.Join(s.dir, "tuner.wal") }
func (s *nodeState) labelsPath() string { return filepath.Join(s.dir, "labels.snap") }

// RecoveryReport describes what OpenState reconstructed.
type RecoveryReport struct {
	Version     int           // recovered model version
	Epoch       int           // recovered round epoch
	LeaderEpoch uint64        // highest leadership epoch found in the log
	Records     int           // WAL records replayed
	TornBytes   int64         // bytes truncated from the WAL's torn tail
	Labels      int           // label entries restored
	Elapsed     time.Duration // wall time of the whole recovery
}

// OpenState attaches the tuner to a state directory, replaying any existing
// WAL to recover the exact model version, epoch, and version archive of the
// last durably committed round. It must run before rounds start and before
// AcceptStores (a store must never register against half-recovered state).
// From then on every committed round is journaled before its broadcast.
func (t *Node) OpenState(dir string) (RecoveryReport, error) {
	return t.OpenStateFaults(dir, nil)
}

// OpenStateFaults is OpenState with a disk-fault schedule (crash tests).
func (t *Node) OpenStateFaults(dir string, faults *durable.Faults) (RecoveryReport, error) {
	start := time.Now()
	span := telemetry.Default.Spans().StartTrace("tuner.recover")
	defer span.End()
	var rep RecoveryReport
	if t.state != nil {
		return rep, fmt.Errorf("tuner: state already open at %s", t.state.dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return rep, fmt.Errorf("tuner: state dir: %w", err)
	}
	st := &nodeState{dir: dir, faults: faults}

	// Root the chain. A missing base.snap is a fresh state dir: persist the
	// deterministic initial classifier as the root so every later recovery
	// is self-contained. A corrupt one is a hard error — after compaction
	// the root is the only copy of pruned history's endpoint.
	base := baseSnap{Model: mustEncode(t.cfg.NewClassifier().TakeSnapshot())}
	payload, err := durable.ReadFileChecksummed(st.basePath())
	switch {
	case err == nil:
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&base); err != nil {
			return rep, fmt.Errorf("tuner: base.snap undecodable: %w", err)
		}
	case errors.Is(err, os.ErrNotExist):
		if err := writeBase(st, base); err != nil {
			return rep, err
		}
	default:
		return rep, fmt.Errorf("tuner: base.snap unreadable: %w", err)
	}
	rootSnap, err := nn.DecodeSnapshot(bytes.NewReader(base.Model))
	if err != nil {
		return rep, fmt.Errorf("tuner: base.snap model: %w", err)
	}
	archive := modelstore.NewAt(base.Version, rootSnap)
	epoch := base.Epoch
	leader := base.Leader

	// Replay the WAL on top of the root. Records at or below the archive's
	// latest version are replays of pre-compaction history — skip them.
	wal, stats, err := durable.Open(st.walPath(), faults, func(p []byte) error {
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&rec); err != nil {
			return fmt.Errorf("undecodable record: %w", err)
		}
		if rec.Epoch > epoch {
			epoch = rec.Epoch
		}
		if rec.Leader > leader {
			leader = rec.Leader
		}
		if rec.Kind != walRound || rec.Version <= archive.Latest() {
			return nil
		}
		v, err := archive.AppendBlob(rec.Delta)
		if err != nil {
			return err
		}
		if v != rec.Version {
			return fmt.Errorf("record says version %d, chain is at %d", rec.Version, v)
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("tuner: wal replay: %w", err)
	}
	rep.Records = stats.Records
	rep.TornBytes = stats.TornBytes

	// Labels: recoverable state, not critical state. Corrupt → cold DB.
	if payload, err := durable.ReadFileChecksummed(st.labelsPath()); err == nil {
		if err := t.db.Load(bytes.NewReader(payload)); err != nil {
			t.log.Warn("labels.snap undecodable; starting with empty label DB", slog.Any("err", err))
		} else {
			rep.Labels = t.db.Len()
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		t.log.Warn("labels.snap damaged; starting with empty label DB", slog.Any("err", err))
	}

	// Install the recovered model.
	latest := archive.Latest()
	snap, err := archive.Snapshot(latest)
	if err != nil {
		return rep, fmt.Errorf("tuner: reconstructing version %d: %w", latest, err)
	}
	t.mu.Lock()
	if err := t.clf.Restore(snap); err != nil {
		t.mu.Unlock()
		wal.Close()
		return rep, fmt.Errorf("tuner: restoring recovered model: %w", err)
	}
	t.archive = archive
	t.version = latest
	t.epoch = epoch
	t.leaderEpoch.Store(leader)
	t.state = st
	st.wal = wal
	t.mu.Unlock()

	rep.Version = latest
	rep.Epoch = epoch
	rep.LeaderEpoch = leader
	rep.Elapsed = time.Since(start)
	t.met.modelVersion.Set(float64(latest))
	recoverSeconds("tuner").Observe(rep.Elapsed.Seconds())
	span.SetAttr("version", fmt.Sprint(latest))
	span.SetAttr("records", fmt.Sprint(rep.Records))
	span.SetAttr("torn_bytes", fmt.Sprint(rep.TornBytes))
	t.log.Info("state recovered",
		slog.String("dir", dir),
		slog.Int("version", latest),
		slog.Int("epoch", epoch),
		slog.Int("wal_records", rep.Records),
		slog.Int64("torn_bytes", rep.TornBytes),
		slog.Int("labels", rep.Labels),
		slog.Duration("elapsed", rep.Elapsed))
	return rep, nil
}

// recoverSeconds is the per-component recovery-time histogram.
func recoverSeconds(component string) *telemetry.Histogram {
	return telemetry.Default.Histogram(telemetry.Labeled("durable_recover_seconds", "component", component))
}

// StateDir returns the open state directory ("" when running in-memory).
func (t *Node) StateDir() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == nil {
		return ""
	}
	return t.state.dir
}

// Epoch returns the current round epoch (recovered across restarts).
func (t *Node) Epoch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// journalRoundLocked makes a committed round durable before it is
// broadcast. Caller holds t.mu. A journaling failure aborts the round: the
// archive entry stays in memory but no store ever sees the version, so a
// restart (which recovers the previous version) cannot strand the fleet
// ahead of the tuner.
//
// With a replicator attached (HA), the record must additionally be acked
// by the hot standby before the round may proceed to broadcast — the
// commit rule is "durable on the leader AND on the standby when one is
// attached". A replication failure aborts the round exactly like a local
// journaling failure: no store ever sees the version, so neither side of
// a failover can be stranded behind an acknowledged commit.
func (t *Node) journalRoundLocked(version, epoch int, blob []byte) error {
	if t.state == nil {
		return nil
	}
	rec, err := encodeWAL(walRecord{Kind: walRound, Version: version, Epoch: epoch,
		Leader: t.leaderEpoch.Load(), Delta: blob})
	if err != nil {
		return err
	}
	if err := t.state.wal.Append(rec); err != nil {
		return fmt.Errorf("tuner: journaling round %d: %w", version, err)
	}
	if t.repl != nil {
		if err := t.repl.Replicate(rec); err != nil {
			return fmt.Errorf("tuner: replicating round %d: %w", version, err)
		}
	}
	return nil
}

// persistLabels snapshots the label DB (atomic replace) and journals the
// pass, so a restarted tuner serves the labels of the last completed
// offline-inference pass.
func (t *Node) persistLabels(version, epoch int) error {
	t.mu.Lock()
	st := t.state
	t.mu.Unlock()
	if st == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := t.db.Save(&buf); err != nil {
		return err
	}
	if err := st.faults.WriteFileChecksummed(st.labelsPath(), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("tuner: persisting labels: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == nil {
		return nil
	}
	rec, err := encodeWAL(walRecord{Kind: walLabels, Version: version, Epoch: epoch,
		Leader: t.leaderEpoch.Load()})
	if err != nil {
		return err
	}
	if err := t.state.wal.Append(rec); err != nil {
		return fmt.Errorf("tuner: journaling label pass: %w", err)
	}
	if t.repl != nil {
		if err := t.repl.Replicate(rec); err != nil {
			return fmt.Errorf("tuner: replicating label pass: %w", err)
		}
	}
	return nil
}

// CompactState prunes archive history below keepFrom and shrinks the WAL to
// match: the new chain root goes to base.snap first (atomic replace), then
// the WAL is rewritten with only the surviving rounds. A crash between the
// two steps is safe — replay skips records at or below the new root.
func (t *Node) CompactState(keepFrom int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == nil {
		return fmt.Errorf("tuner: no state dir open")
	}
	snap, err := t.archive.Snapshot(keepFrom)
	if err != nil {
		return err
	}
	if err := writeBase(t.state, baseSnap{Version: keepFrom, Epoch: t.epoch,
		Leader: t.leaderEpoch.Load(), Model: mustEncode(snap)}); err != nil {
		return err
	}
	if err := t.archive.Prune(keepFrom); err != nil {
		return err
	}
	blobs := t.archive.Blobs()
	payloads := make([][]byte, 0, len(blobs))
	for i, b := range blobs {
		rec, err := encodeWAL(walRecord{Kind: walRound, Version: keepFrom + i + 1, Epoch: t.epoch,
			Leader: t.leaderEpoch.Load(), Delta: b})
		if err != nil {
			return err
		}
		payloads = append(payloads, rec)
	}
	if err := t.state.wal.Rewrite(payloads); err != nil {
		return fmt.Errorf("tuner: rewriting wal: %w", err)
	}
	t.log.Info("state compacted",
		slog.Int("base_version", keepFrom),
		slog.Int("wal_records", len(payloads)),
		slog.Int64("wal_bytes", t.state.wal.Size()))
	return nil
}

// closeState releases the WAL handle (called from Close).
func (t *Node) closeState() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != nil && t.state.wal != nil {
		_ = t.state.wal.Close()
	}
	t.state = nil
}

func writeBase(st *nodeState, b baseSnap) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&b); err != nil {
		return fmt.Errorf("tuner: encoding base.snap: %w", err)
	}
	return st.faults.WriteFileChecksummed(st.basePath(), buf.Bytes(), 0o644)
}

func encodeWAL(rec walRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return nil, fmt.Errorf("tuner: encoding wal record: %w", err)
	}
	return buf.Bytes(), nil
}

func mustEncode(snap nn.Snapshot) []byte {
	var buf bytes.Buffer
	// EncodeSnapshot only fails on writer errors; a bytes.Buffer cannot.
	if err := nn.EncodeSnapshot(&buf, snap); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
