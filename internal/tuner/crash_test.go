// Crash-injection tests (S31): kill/restart the tuner and stores at every
// interesting point — including a torn WAL write at every single byte
// offset — and prove the recovered state is byte-identical to the last
// durably committed round. They run under -race via `make crash`.
package tuner

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/durable"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
)

// tinyModelConfig keeps crash-test deltas around a kilobyte so the
// every-byte-offset WAL sweep stays fast.
func tinyModelConfig() core.ModelConfig {
	return core.ModelConfig{Seed: 7, InputDim: 6, BackboneHidden: 8, FeatureDim: 8, HeadHidden: 8, Classes: 4}
}

func tinyWorld(t *testing.T, images int, seed int64) *dataset.World {
	t.Helper()
	wcfg := dataset.DefaultConfig(seed)
	wcfg.InputDim = 6
	wcfg.InitialClasses = 4
	wcfg.MaxClasses = 4
	wcfg.InitialImages = images
	return dataset.NewWorld(wcfg)
}

// crashCluster is a tuner + store fleet whose state lives under root:
// the tuner at root/tuner, each store at root/<store-id>.
type crashCluster struct {
	tn     *Node
	stores []*chaosStore
	ln     net.Listener
	root   string
	cfg    core.ModelConfig
	world  *dataset.World
	shards [][]dataset.Image
}

func (c *crashCluster) tunerDir() string      { return filepath.Join(c.root, "tuner") }
func (c *crashCluster) storeDir(i int) string { return filepath.Join(c.root, fmt.Sprintf("cs-%d", i)) }
func (c *crashCluster) walPath() string       { return filepath.Join(c.tunerDir(), "tuner.wal") }
func (c *crashCluster) encodedClassifier() []byte {
	return mustEncode(c.tn.Classifier().TakeSnapshot())
}

// crashClusterUp builds a persistent cluster. With storeState, every store
// opens its own state dir before serving (so its Hello carries the
// persisted version on a restart).
func crashClusterUp(t *testing.T, root string, nStores, images int, seed int64, storeState bool) *crashCluster {
	t.Helper()
	c := &crashCluster{root: root, cfg: tinyModelConfig()}
	c.world = tinyWorld(t, images, seed)
	c.shards = c.world.Shard(nStores)

	tn, err := New(c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OpenState(c.tunerDir()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.tn, c.ln = tn, ln
	t.Cleanup(func() { ln.Close(); tn.Close() })
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, nStores) }()

	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(fmt.Sprintf("cs-%d", i), c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if storeState {
			if _, err := ps.OpenState(c.storeDir(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := ps.Ingest(c.shards[i]); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		cs := &chaosStore{ps: ps, conn: conn, done: make(chan error, 1)}
		go func() { cs.done <- cs.ps.Serve(cs.conn) }()
		c.stores = append(c.stores, cs)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	tn.SetRoundOptions(RoundOptions{
		Quorum: 1, StoreTimeout: 5 * time.Second, RoundTimeout: 60 * time.Second,
		MaxRetries: 1, Backoff: time.Millisecond, BackoffCap: 10 * time.Millisecond, Seed: 1,
	})
	return c
}

func crashTrainOpts() ftdmp.TrainOptions { return soakOpts() }

// copyTree duplicates a state directory (the "disk image" a restarted
// process would see).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashTunerRestartRecoversExactState: run rounds and a label pass,
// kill the tuner, restart from the state dir, and require the recovered
// model bytes, version, epoch, and label count to match exactly.
func TestCrashTunerRestartRecoversExactState(t *testing.T) {
	c := crashClusterUp(t, t.TempDir(), 2, 160, 11, false)
	for round := 0; round < 2; round++ {
		if _, err := c.tn.FineTune(2, 32, crashTrainOpts()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.tn.OfflineInference(32); err != nil {
		t.Fatal(err)
	}
	wantVersion := c.tn.ModelVersion()
	wantEpoch := c.tn.Epoch()
	wantModel := c.encodedClassifier()
	wantLabels := c.tn.DB().Len()
	if wantVersion != 2 || wantLabels == 0 {
		t.Fatalf("setup: version %d, labels %d", wantVersion, wantLabels)
	}
	c.ln.Close()
	c.tn.Close() // "kill": every committed round is already fsynced

	tn2, err := New(c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tn2.Close()
	rep, err := tn2.OpenState(c.tunerDir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != wantVersion || tn2.ModelVersion() != wantVersion {
		t.Fatalf("recovered version %d (report %d), want %d", tn2.ModelVersion(), rep.Version, wantVersion)
	}
	if rep.Epoch != wantEpoch || tn2.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", tn2.Epoch(), wantEpoch)
	}
	// 2 round records + 1 label-pass record.
	if rep.Records != 3 {
		t.Fatalf("replayed %d records, want 3", rep.Records)
	}
	if rep.TornBytes != 0 {
		t.Fatalf("clean shutdown left a torn tail of %d bytes", rep.TornBytes)
	}
	got := mustEncode(tn2.Classifier().TakeSnapshot())
	if string(got) != string(wantModel) {
		t.Fatal("recovered classifier is not byte-identical")
	}
	if tn2.DB().Len() != wantLabels {
		t.Fatalf("recovered %d labels, want %d", tn2.DB().Len(), wantLabels)
	}
}

// TestCrashTunerWALTornAtEveryOffset is the kill-at-any-point property:
// for EVERY byte offset of the WAL, a tuner restarted from a log truncated
// there must recover exactly the last round whose record fully survived —
// byte-identical model, correct version, correct torn-tail accounting —
// and the recovered log must accept new appends.
func TestCrashTunerWALTornAtEveryOffset(t *testing.T) {
	c := crashClusterUp(t, t.TempDir(), 2, 160, 13, false)

	type commit struct {
		walSize int64
		version int
		model   []byte
	}
	commits := []commit{{walSize: 0, version: 0, model: c.encodedClassifier()}}
	for round := 0; round < 2; round++ {
		if _, err := c.tn.FineTune(2, 32, crashTrainOpts()); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(c.walPath())
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, commit{walSize: fi.Size(), version: c.tn.ModelVersion(), model: c.encodedClassifier()})
	}
	wal, err := os.ReadFile(c.walPath())
	if err != nil {
		t.Fatal(err)
	}
	base, err := os.ReadFile(filepath.Join(c.tunerDir(), "base.snap"))
	if err != nil {
		t.Fatal(err)
	}
	c.ln.Close()
	c.tn.Close()

	scratch := t.TempDir()
	if err := os.WriteFile(filepath.Join(scratch, "base.snap"), base, 0o644); err != nil {
		t.Fatal(err)
	}
	for offset := int64(0); offset <= int64(len(wal)); offset++ {
		// The disk image a crash at this write offset would leave behind.
		if err := os.WriteFile(filepath.Join(scratch, "tuner.wal"), wal[:offset], 0o644); err != nil {
			t.Fatal(err)
		}
		want := commits[0]
		for _, cm := range commits {
			if cm.walSize <= offset {
				want = cm
			}
		}
		tn, err := New(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tn.OpenState(scratch)
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", offset, err)
		}
		if rep.Version != want.version {
			t.Fatalf("offset %d: recovered v%d, want v%d", offset, rep.Version, want.version)
		}
		if rep.TornBytes != offset-want.walSize {
			t.Fatalf("offset %d: torn bytes %d, want %d", offset, rep.TornBytes, offset-want.walSize)
		}
		if got := mustEncode(tn.Classifier().TakeSnapshot()); string(got) != string(want.model) {
			t.Fatalf("offset %d: recovered model differs from commit v%d", offset, want.version)
		}
		// The truncated-and-repaired log must be appendable again.
		rec, err := encodeWAL(walRecord{Kind: walRound, Version: want.version + 1, Epoch: 99})
		if err != nil {
			t.Fatal(err)
		}
		tn.mu.Lock()
		err = tn.state.wal.Append(rec)
		tn.mu.Unlock()
		if err != nil {
			t.Fatalf("offset %d: recovered log rejects appends: %v", offset, err)
		}
		tn.Close()
	}
}

// TestCrashCompactionAtEveryFaultPoint drives CompactState into an
// injected crash or error at each of its durability points (base.snap
// write, base.snap rename, WAL rewrite write, WAL rewrite rename, fsync
// failure). Whatever half-state the crash leaves, a restart must recover
// the exact pre-compaction model.
func TestCrashCompactionAtEveryFaultPoint(t *testing.T) {
	c := crashClusterUp(t, t.TempDir(), 2, 160, 17, false)
	for round := 0; round < 3; round++ {
		if _, err := c.tn.FineTune(2, 32, crashTrainOpts()); err != nil {
			t.Fatal(err)
		}
	}
	wantModel := c.encodedClassifier()
	c.ln.Close()
	c.tn.Close()

	specs := []string{
		"seed=3;crash:write,after=1",         // during the new base.snap's data write
		"seed=3;crash:before-rename",         // base.snap temp never renamed
		"seed=3;crash:after-rename",          // base replaced, WAL not yet rewritten
		"seed=3;crash:write,after=2",         // during the WAL rewrite's data write
		"seed=3;crash:before-rename,after=2", // WAL rewrite temp never renamed
		"seed=3;syncerr:after=1",             // first fsync fails (error, not crash)
	}
	for _, spec := range specs {
		dir := t.TempDir()
		copyTree(t, c.tunerDir(), dir)
		faults, err := durable.ParseFaults(spec)
		if err != nil {
			t.Fatal(err)
		}
		tn, err := New(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.OpenStateFaults(dir, faults); err != nil {
			t.Fatalf("%s: recovery before compaction: %v", spec, err)
		}
		if err := tn.CompactState(2); err == nil {
			t.Fatalf("%s: compaction must fail under the injected fault", spec)
		}
		tn.Close()

		// Restart on whatever the crash left behind.
		tn2, err := New(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tn2.OpenState(dir)
		if err != nil {
			t.Fatalf("%s: recovery after crashed compaction: %v", spec, err)
		}
		if rep.Version != 3 {
			t.Fatalf("%s: recovered v%d, want v3", spec, rep.Version)
		}
		if got := mustEncode(tn2.Classifier().TakeSnapshot()); string(got) != string(wantModel) {
			t.Fatalf("%s: recovered model differs after crashed compaction", spec)
		}
		tn2.Close()
	}

	// And a compaction that is allowed to finish: still v3, old history
	// pruned, and a pre-floor joiner falls back to a rebase delta.
	dir := t.TempDir()
	copyTree(t, c.tunerDir(), dir)
	tn, err := New(c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	if _, err := tn.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if err := tn.CompactState(2); err != nil {
		t.Fatal(err)
	}
	tn2, err := New(c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tn2.Close()
	rep, err := tn2.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 3 || rep.Records != 1 {
		t.Fatalf("post-compaction recovery: v%d from %d records, want v3 from 1", rep.Version, rep.Records)
	}
	if got := mustEncode(tn2.Classifier().TakeSnapshot()); string(got) != string(wantModel) {
		t.Fatal("post-compaction recovery: model differs")
	}
	if tn2.Archive().Oldest() != 2 {
		t.Fatalf("archive floor %d, want 2", tn2.Archive().Oldest())
	}
	blob, to, rebase, err := tn2.catchUpFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rebase || to != 3 || len(blob) == 0 {
		t.Fatalf("pre-floor catch-up: rebase=%v to=%d bytes=%d", rebase, to, len(blob))
	}
}

// TestCrashStoreRestartMinimalCatchUp is the acceptance criterion for the
// versioned rejoin path: a store restarted from its state dir re-registers
// at its persisted version, gets only the rounds it missed (byte-identical
// result), and a store persisted at the latest version gets a catch-up
// strictly smaller than the full composite a cold store needs — zero bytes.
func TestCrashStoreRestartMinimalCatchUp(t *testing.T) {
	c := crashClusterUp(t, t.TempDir(), 2, 160, 19, true)
	if _, err := c.tn.FineTune(2, 32, crashTrainOpts()); err != nil {
		t.Fatal(err)
	}
	// Kill store 0, then commit round 2 without it (degraded, quorum 1):
	// its persisted state stays at v1 while the fleet moves to v2.
	c.stores[0].conn.Close()
	select {
	case <-c.stores[0].done:
	case <-time.After(10 * time.Second):
		t.Fatal("killed store session did not terminate")
	}
	if _, err := c.tn.FineTune(2, 32, crashTrainOpts()); err != nil {
		t.Fatal(err)
	}
	if c.tn.ModelVersion() != 2 {
		t.Fatalf("tuner at v%d, want v2", c.tn.ModelVersion())
	}
	tunerModel := c.encodedClassifier()

	// Restart store 0 as a fresh process over the same state dir.
	ps, err := pipestore.New("cs-0", c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ps.OpenState(c.storeDir(0))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cold || rec.Version != 1 {
		t.Fatalf("restarted store recovered cold=%v v%d, want warm v1", rec.Cold, rec.Version)
	}
	if err := ps.Ingest(c.shards[0]); err != nil {
		t.Fatal(err)
	}
	c.stores[0].ps = ps
	rejoin(t, c.tn, c.ln, c.stores[0], nil)
	warm := c.tn.LastCatchUp()
	if warm.From != 1 || warm.To != 2 || warm.Rebase || warm.Bytes == 0 {
		t.Fatalf("warm rejoin catch-up: %+v", warm)
	}
	if ps.ModelVersion() != 2 {
		t.Fatalf("rejoined store at v%d, want 2", ps.ModelVersion())
	}
	if got := mustEncode(ps.ClassifierSnapshot()); string(got) != string(tunerModel) {
		t.Fatal("caught-up store model is not byte-identical to the tuner's")
	}

	// A cold store (no state) needs the full composite from v0.
	cold, err := pipestore.New("cs-cold", c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	csCold := &chaosStore{ps: cold}
	rejoin(t, c.tn, c.ln, csCold, nil)
	coldInfo := c.tn.LastCatchUp()
	if coldInfo.From != 0 || coldInfo.To != 2 || coldInfo.Bytes == 0 {
		t.Fatalf("cold join catch-up: %+v", coldInfo)
	}

	// A store persisted AT the latest version: restart store 1 (it acked
	// and persisted v2 before we kill it) and require a zero-byte catch-up —
	// strictly smaller than the cold store's full composite.
	c.stores[1].conn.Close()
	select {
	case <-c.stores[1].done:
	case <-time.After(10 * time.Second):
		t.Fatal("killed store session did not terminate")
	}
	ps1, err := pipestore.New("cs-1", c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec1, err := ps1.OpenState(c.storeDir(1))
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Version != 2 {
		t.Fatalf("restarted store 1 recovered v%d, want 2", rec1.Version)
	}
	if err := ps1.Ingest(c.shards[1]); err != nil {
		t.Fatal(err)
	}
	c.stores[1].ps = ps1
	rejoin(t, c.tn, c.ln, c.stores[1], nil)
	atLatest := c.tn.LastCatchUp()
	if atLatest.From != 2 || atLatest.To != 2 {
		t.Fatalf("at-latest rejoin catch-up: %+v", atLatest)
	}
	if atLatest.Bytes != 0 {
		t.Fatalf("store persisted at the latest version was sent %d bytes, want 0", atLatest.Bytes)
	}
	if atLatest.Bytes >= coldInfo.Bytes {
		t.Fatalf("persisted catch-up (%d B) must be strictly smaller than cold composite (%d B)",
			atLatest.Bytes, coldInfo.Bytes)
	}
	if got := mustEncode(ps1.ClassifierSnapshot()); string(got) != string(tunerModel) {
		t.Fatal("at-latest store model is not byte-identical to the tuner's")
	}
}

// TestCrashTunerJournalBeforeBroadcast: a round whose WAL append crashes
// must fail without moving the fleet — no store may ever hold a version
// the restarted tuner cannot reconstruct.
func TestCrashTunerJournalBeforeBroadcast(t *testing.T) {
	root := t.TempDir()
	// Write op 1 is OpenState creating base.snap; op 2 is the round's WAL
	// append — the crash point under test.
	faults, err := durable.ParseFaults("seed=5;crash:write,after=2")
	if err != nil {
		t.Fatal(err)
	}
	c := &crashCluster{root: root, cfg: tinyModelConfig()}
	c.world = tinyWorld(t, 160, 23)
	c.shards = c.world.Shard(1)
	tn, err := New(c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OpenStateFaults(c.tunerDir(), faults); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); tn.Close() })
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, 1) }()
	ps, err := pipestore.New("cs-0", c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Ingest(c.shards[0]); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ps.Serve(conn) }()
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	tn.SetRoundOptions(RoundOptions{Quorum: 1, StoreTimeout: 5 * time.Second,
		RoundTimeout: 60 * time.Second, MaxRetries: -1, Backoff: time.Millisecond, Seed: 1})

	if _, err := tn.FineTune(2, 32, crashTrainOpts()); err == nil {
		t.Fatal("round must fail when its journal write crashes")
	}
	// The store never saw the delta: the failed round broadcast nothing.
	if v := ps.ModelVersion(); v != 0 {
		t.Fatalf("store holds v%d after a round that never became durable", v)
	}
	conn.Close()
	ln.Close()
	tn.Close()

	// A restart recovers the pre-round state (v0) from the torn journal.
	tn2, err := New(c.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tn2.Close()
	rep, err := tn2.OpenState(c.tunerDir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 0 {
		t.Fatalf("recovered v%d after crashed journal write, want v0", rep.Version)
	}
}
