// Photo durability on the tuner side (S36): the replicated-placement
// switch, the tuner-brokered scrub/repair pass, and the rebuild pass that
// re-replicates a dead member's objects across the survivors. Stores never
// talk to each other — every object that moves between stores is relayed
// through the tuner (MsgObjects in, MsgObjectPut out), which keeps the
// store protocol a single tuner-facing connection.
package tuner

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"time"

	"ndpipe/internal/placement"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/wire"
)

// rebuildChunk bounds objects per relayed MsgObjectPut (mirrors the store
// side's chunking of MsgObjects).
const rebuildChunk = 64

// EnableReplication turns on replicated placement with factor r: ingest
// fans each photo to its r ring replicas, train/infer requests carry the
// ring so stores extract only what they own, and a store lost mid-round
// reroutes to survivors instead of losing images. Call before rounds start;
// every ingest front end must be configured with the same factor.
func (t *Node) EnableReplication(r int) error {
	if r < 1 {
		return fmt.Errorf("tuner: replication factor %d, want >= 1", r)
	}
	t.mu.Lock()
	t.replication = r
	t.mu.Unlock()
	t.log.Info("replication enabled", slog.Int("factor", r))
	return nil
}

// Replication returns the placement factor (0 = replication off).
func (t *Node) Replication() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.replication
}

// RingMembers returns the durable ring membership (sorted copy).
func (t *Node) RingMembers() []string {
	t.mu.Lock()
	out := append([]string(nil), t.ringMembers...)
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// durabilityPass snapshots the state a scrub/rebuild pass runs over: the
// pass gets its own epoch so every reply is staleness-tagged exactly like
// round traffic.
type durabilityPass struct {
	epoch   int
	o       RoundOptions
	r       int
	members []string
	live    []*storeConn
}

func (t *Node) beginDurabilityPass() (durabilityPass, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.replication <= 0 {
		return durabilityPass{}, fmt.Errorf("tuner: replication not enabled")
	}
	t.epoch++
	return durabilityPass{
		epoch:   t.epoch,
		o:       t.rounds,
		r:       t.replication,
		members: append([]string(nil), t.ringMembers...),
		live:    append([]*storeConn(nil), t.stores...),
	}, nil
}

// drainInbox consumes store events until done() or the timeout. Terminal
// read errors evict the store (same as a round would) and are reported to
// onFail; stale-epoch messages are counted and dropped; everything else
// goes to accept.
func (t *Node) drainInbox(span *telemetry.Span, epoch int, timeout time.Duration,
	done func() bool, accept func(*storeConn, *wire.Message), onFail func(*storeConn, error)) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for !done() {
		select {
		case ev := <-t.inbox:
			if ev.err != nil {
				t.evict(ev.sc, ev.err, span)
				if onFail != nil {
					onFail(ev.sc, ev.err)
				}
				continue
			}
			if ev.msg.Epoch != 0 && ev.msg.Epoch != epoch {
				t.met.staleMsgs.Inc()
				continue
			}
			accept(ev.sc, ev.msg)
		case <-timer.C:
			return fmt.Errorf("tuner: durability pass timed out after %v", timeout)
		case <-t.done:
			return fmt.Errorf("tuner: node closed mid-pass")
		}
	}
	return nil
}

// storeByID finds a live store connection.
func (t *Node) storeByID(id string) *storeConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sc := range t.stores {
		if sc.id == id {
			return sc
		}
	}
	return nil
}

// fetchObjects asks one store for healthy copies of the given IDs and
// collects its chunked reply. Missing/quarantined objects are simply absent
// from the result.
func (t *Node) fetchObjects(span *telemetry.Span, sc *storeConn, ids []uint64, epoch int, o RoundOptions) ([]wire.ObjectData, error) {
	req := &wire.Message{Type: wire.MsgObjectFetch, IDs: ids, Epoch: epoch}
	if err := t.sendWithDeadline(sc, req, o.StoreTimeout); err != nil {
		t.evict(sc, err, span)
		return nil, err
	}
	var out []wire.ObjectData
	fin := false
	var failErr error
	err := t.drainInbox(span, epoch, o.RoundTimeout,
		func() bool { return fin },
		func(s *storeConn, msg *wire.Message) {
			if s != sc {
				t.met.staleMsgs.Inc()
				return
			}
			switch msg.Type {
			case wire.MsgObjects:
				out = append(out, msg.Objects...)
				if msg.Final {
					fin = true
				}
			case wire.MsgError:
				failErr = errors.New(msg.Err)
				fin = true
			default:
				t.met.staleMsgs.Inc()
			}
		},
		func(s *storeConn, err error) {
			if s == sc {
				failErr = err
				fin = true
			}
		})
	if err != nil {
		return out, err
	}
	return out, failErr
}

// pushObjects relays objects to a store in bounded MsgObjectPut chunks,
// awaiting the per-chunk ack (which carries how many the store accepted
// after re-verifying both checksums). Returns the accepted total.
func (t *Node) pushObjects(span *telemetry.Span, sc *storeConn, objs []wire.ObjectData, epoch int, o RoundOptions) (int, error) {
	total := 0
	for len(objs) > 0 {
		chunk := objs
		if len(chunk) > rebuildChunk {
			chunk = objs[:rebuildChunk]
		}
		objs = objs[len(chunk):]
		msg := &wire.Message{Type: wire.MsgObjectPut, Objects: chunk, Epoch: epoch}
		if err := t.sendWithDeadline(sc, msg, o.StoreTimeout); err != nil {
			t.evict(sc, err, span)
			return total, err
		}
		got := false
		var ackErr error
		err := t.drainInbox(span, epoch, o.RoundTimeout,
			func() bool { return got },
			func(s *storeConn, m *wire.Message) {
				if s != sc {
					t.met.staleMsgs.Inc()
					return
				}
				switch m.Type {
				case wire.MsgAck:
					total += m.Rows
					got = true
				case wire.MsgError:
					total += m.Rows
					ackErr = errors.New(m.Err)
					got = true
				default:
					t.met.staleMsgs.Inc()
				}
			},
			func(s *storeConn, err error) {
				if s == sc {
					ackErr = err
					got = true
				}
			})
		if err != nil {
			return total, err
		}
		if ackErr != nil {
			return total, ackErr
		}
	}
	return total, nil
}

// ScrubStats summarizes one tuner-driven scrub/repair pass.
type ScrubStats struct {
	Stores      int                 // stores queried
	Quarantined map[string][]uint64 // store → quarantined IDs it reported
	Repaired    int                 // objects re-pushed and re-verified
	Failed      int                 // quarantined objects no replica could heal
	Wall        time.Duration
}

// ScrubRepair drives one fleet-wide scrub/repair pass: every live store
// scrubs up to scrubBatch objects synchronously (≤0 = its whole holding)
// and reports its quarantine list; for each quarantined object the tuner
// fetches a healthy copy from another live ring replica and relays it back
// to the damaged store, whose re-put re-verifies end to end and lifts the
// quarantine. An object is Failed only when no live replica holds an intact
// copy.
func (t *Node) ScrubRepair(scrubBatch int) (ScrubStats, error) {
	start := time.Now()
	p, err := t.beginDurabilityPass()
	if err != nil {
		return ScrubStats{}, err
	}
	span := telemetry.Default.Spans().StartTrace("tuner.scrub-repair")
	defer span.End()
	stats := ScrubStats{Quarantined: make(map[string][]uint64)}
	if scrubBatch <= 0 {
		scrubBatch = -1 // on the wire, negative = scrub the whole holding
	}
	pending := make(map[*storeConn]bool, len(p.live))
	for _, sc := range p.live {
		req := &wire.Message{Type: wire.MsgScrubQuery, BatchSize: scrubBatch, Epoch: p.epoch}
		if err := t.sendWithDeadline(sc, req, p.o.StoreTimeout); err != nil {
			t.evict(sc, err, span)
			continue
		}
		pending[sc] = true
		stats.Stores++
	}
	err = t.drainInbox(span, p.epoch, p.o.RoundTimeout,
		func() bool { return len(pending) == 0 },
		func(sc *storeConn, msg *wire.Message) {
			if msg.Type != wire.MsgScrubReport || !pending[sc] {
				t.met.staleMsgs.Inc()
				return
			}
			if len(msg.Quarantined) > 0 {
				stats.Quarantined[sc.id] = msg.Quarantined
			}
			delete(pending, sc)
		},
		func(sc *storeConn, err error) { delete(pending, sc) })
	if err != nil {
		return stats, err
	}
	ring, err := placement.New(p.members, p.r)
	if err != nil {
		return stats, err
	}
	damaged := make([]string, 0, len(stats.Quarantined))
	for id := range stats.Quarantined {
		damaged = append(damaged, id)
	}
	sort.Strings(damaged)
	for _, storeID := range damaged {
		target := t.storeByID(storeID)
		ids := stats.Quarantined[storeID]
		if target == nil {
			stats.Failed += len(ids)
			continue
		}
		n := t.refill(span, p, ring, target, ids)
		stats.Repaired += n
		stats.Failed += len(ids) - n
		telemetry.Default.Flight().Record(telemetry.FlightRepair, "tuner", target.id, int64(n), int64(len(ids)-n))
	}
	stats.Wall = time.Since(start)
	if stats.Repaired > 0 || stats.Failed > 0 {
		t.log.Info("scrub/repair pass complete",
			slog.Int("repaired", stats.Repaired), slog.Int("failed", stats.Failed),
			slog.Duration("wall", stats.Wall))
	}
	return stats, nil
}

// refill fetches healthy copies of ids from the live ring replicas that
// hold them (excluding target itself) and relays them to target, whose
// re-put re-verifies both checksums end to end. Returns how many objects
// target accepted. Shared by ScrubRepair (refilling quarantined objects)
// and AntiEntropy (refilling absent ones).
func (t *Node) refill(span *telemetry.Span, p durabilityPass, ring *placement.Ring, target *storeConn, ids []uint64) int {
	need := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		need[id] = true
	}
	var healthy []wire.ObjectData
	for _, src := range p.live {
		if src == target || src.evicted.Load() || len(need) == 0 {
			continue
		}
		// Only ask src for the objects it actually replicates.
		var ask []uint64
		for id := range need {
			for _, m := range ring.Replicas(id) {
				if m == src.id {
					ask = append(ask, id)
					break
				}
			}
		}
		if len(ask) == 0 {
			continue
		}
		sort.Slice(ask, func(i, j int) bool { return ask[i] < ask[j] })
		objs, ferr := t.fetchObjects(span, src, ask, p.epoch, p.o)
		if ferr != nil {
			t.log.Warn("repair fetch failed", slog.String("source", src.id), slog.Any("err", ferr))
		}
		for _, od := range objs {
			if need[od.ID] {
				delete(need, od.ID)
				healthy = append(healthy, od)
			}
		}
	}
	n, perr := t.pushObjects(span, target, healthy, p.epoch, p.o)
	if perr != nil {
		t.log.Warn("repair push failed", slog.String("store", target.id), slog.Any("err", perr))
	}
	return n
}

// AntiEntropyStats summarizes one missing-replica anti-entropy pass.
type AntiEntropyStats struct {
	Stores  int                 // stores inventoried
	Objects int                 // distinct objects seen fleet-wide
	Missing map[string][]uint64 // store → objects the ring assigns it but it lacks
	Refills int                 // missing replicas refilled (pushed and re-verified)
	Failed  int                 // gaps no live replica could fill
	Wall    time.Duration
}

// AntiEntropy drives one fleet-wide missing-replica check: every live
// store reports the object IDs it holds, the tuner diffs each store's
// holdings against ring placement, and every replica the ring assigns to a
// live store that the store does not hold is refilled from a live replica
// with a healthy copy. ScrubRepair heals *corrupt* copies, which announce
// themselves through checksums; this pass heals *absent* ones — a replica
// write that failed at ingest, or an object dropped by an interrupted
// rebuild — which no checksum can flag because there are no bytes to
// check. Ring members that are not live are skipped (they are healed here
// when they rejoin, or retired by Rebuild). An object counts as Failed
// only when no live replica holds an intact copy.
func (t *Node) AntiEntropy() (AntiEntropyStats, error) {
	start := time.Now()
	p, err := t.beginDurabilityPass()
	if err != nil {
		return AntiEntropyStats{}, err
	}
	span := telemetry.Default.Spans().StartTrace("tuner.anti-entropy")
	defer span.End()
	stats := AntiEntropyStats{Missing: make(map[string][]uint64)}
	held := make(map[string]map[uint64]bool, len(p.live))
	pending := make(map[*storeConn]bool, len(p.live))
	for _, sc := range p.live {
		req := &wire.Message{Type: wire.MsgScrubQuery, Inventory: true, Epoch: p.epoch}
		if err := t.sendWithDeadline(sc, req, p.o.StoreTimeout); err != nil {
			t.evict(sc, err, span)
			continue
		}
		pending[sc] = true
		stats.Stores++
	}
	err = t.drainInbox(span, p.epoch, p.o.RoundTimeout,
		func() bool { return len(pending) == 0 },
		func(sc *storeConn, msg *wire.Message) {
			if msg.Type != wire.MsgScrubReport || !pending[sc] {
				t.met.staleMsgs.Inc()
				return
			}
			set := make(map[uint64]bool, len(msg.IDs))
			for _, id := range msg.IDs {
				set[id] = true
			}
			held[sc.id] = set
			delete(pending, sc)
		},
		func(sc *storeConn, err error) { delete(pending, sc) })
	if err != nil {
		return stats, err
	}
	ring, err := placement.New(p.members, p.r)
	if err != nil {
		return stats, err
	}
	// The object universe is the union of every inventory: an object exists
	// if any live store holds it, and then every live ring replica owes a
	// copy.
	universe := make(map[uint64]bool)
	for _, set := range held {
		for id := range set {
			universe[id] = true
		}
	}
	stats.Objects = len(universe)
	for id := range universe {
		for _, m := range ring.Replicas(id) {
			set, inventoried := held[m]
			if !inventoried {
				continue // not live this pass: healed on rejoin, or rebuilt
			}
			if !set[id] {
				stats.Missing[m] = append(stats.Missing[m], id)
			}
		}
	}
	targets := make([]string, 0, len(stats.Missing))
	for id := range stats.Missing {
		targets = append(targets, id)
	}
	sort.Strings(targets)
	for _, storeID := range targets {
		ids := stats.Missing[storeID]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		target := t.storeByID(storeID)
		if target == nil {
			stats.Failed += len(ids)
			continue
		}
		n := t.refill(span, p, ring, target, ids)
		stats.Refills += n
		stats.Failed += len(ids) - n
		telemetry.Default.Flight().Record(telemetry.FlightAntiEntropy, "tuner", target.id, int64(n), int64(len(ids)-n))
	}
	stats.Wall = time.Since(start)
	if stats.Refills > 0 || stats.Failed > 0 {
		t.log.Info("anti-entropy pass complete",
			slog.Int("objects", stats.Objects), slog.Int("refilled", stats.Refills),
			slog.Int("failed", stats.Failed), slog.Duration("wall", stats.Wall))
	}
	return stats, nil
}

// RebuildReport summarizes re-replicating one dead member's objects.
type RebuildReport struct {
	Dead    string
	Objects int            // objects copied to new replicas (accepted acks)
	Bytes   int64          // payload bytes relayed
	Targets map[string]int // objects gained per destination store
	Wall    time.Duration
}

// Rebuild re-replicates everything the dead store held: each survivor
// computes (from the ring) the objects it is the designated pusher for,
// streams them to the tuner, and the tuner relays each object to the
// destination that gains it on the survivor ring. Only when every push was
// delivered is dead retired from the ring membership — consistent hashing
// guarantees only its photos moved, and those copies now exist. If any
// pusher or destination dropped out mid-pass, the ring is left unchanged
// and an error names the gaps: retiring it anyway would erase the only
// record that those photos run under-replicated, with no later pass able
// to discover the missing (non-quarantined) replicas. Retry once the fleet
// stabilizes. Call after a round reports the store failed (or after any
// eviction).
func (t *Node) Rebuild(dead string) (RebuildReport, error) {
	start := time.Now()
	p, err := t.beginDurabilityPass()
	if err != nil {
		return RebuildReport{}, err
	}
	member := false
	for _, m := range p.members {
		if m == dead {
			member = true
			break
		}
	}
	if !member {
		return RebuildReport{}, fmt.Errorf("tuner: %s is not a ring member", dead)
	}
	for _, sc := range p.live {
		if sc.id == dead {
			return RebuildReport{}, fmt.Errorf("tuner: %s is still live; evict it before rebuilding", dead)
		}
	}
	span := telemetry.Default.Spans().StartTrace("tuner.rebuild")
	span.SetAttr("dead", dead)
	defer span.End()
	liveIDs := make([]string, 0, len(p.live))
	for _, sc := range p.live {
		liveIDs = append(liveIDs, sc.id)
	}
	rep := RebuildReport{Dead: dead, Targets: make(map[string]int)}
	// Every way a rebuilt object can silently go missing — a pusher that
	// never got the request, refused it, or died mid-stream; a destination
	// that is gone; a push only partially accepted — lands in gaps. Any gap
	// vetoes the ring retirement below.
	var gaps []string
	pending := make(map[*storeConn]bool, len(p.live))
	for _, sc := range p.live {
		req := &wire.Message{Type: wire.MsgRebuildRequest, StoreID: dead,
			RingStores: p.members, LiveStores: liveIDs, Replication: p.r, Epoch: p.epoch}
		if err := t.sendWithDeadline(sc, req, p.o.StoreTimeout); err != nil {
			t.evict(sc, err, span)
			gaps = append(gaps, fmt.Sprintf("pusher %s unreachable: %v", sc.id, err))
			continue
		}
		pending[sc] = true
	}
	byDest := make(map[string][]wire.ObjectData)
	err = t.drainInbox(span, p.epoch, p.o.RoundTimeout,
		func() bool { return len(pending) == 0 },
		func(sc *storeConn, msg *wire.Message) {
			if !pending[sc] {
				t.met.staleMsgs.Inc()
				return
			}
			switch msg.Type {
			case wire.MsgObjects:
				for _, od := range msg.Objects {
					byDest[od.Dest] = append(byDest[od.Dest], od)
				}
				if msg.Final {
					delete(pending, sc)
				}
			case wire.MsgError:
				t.log.Warn("rebuild push refused", slog.String("store", sc.id), slog.String("err", msg.Err))
				gaps = append(gaps, fmt.Sprintf("pusher %s refused: %s", sc.id, msg.Err))
				delete(pending, sc)
			default:
				t.met.staleMsgs.Inc()
			}
		},
		func(sc *storeConn, err error) {
			if pending[sc] {
				gaps = append(gaps, fmt.Sprintf("pusher %s lost mid-stream: %v", sc.id, err))
			}
			delete(pending, sc)
		})
	if err != nil {
		return rep, err
	}
	dests := make([]string, 0, len(byDest))
	for d := range byDest {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	for _, dest := range dests {
		objs := byDest[dest]
		sc := t.storeByID(dest)
		if sc == nil {
			t.log.Warn("rebuild destination not live", slog.String("store", dest), slog.Int("objects", len(objs)))
			gaps = append(gaps, fmt.Sprintf("destination %s not live (%d objects undelivered)", dest, len(objs)))
			continue
		}
		n, perr := t.pushObjects(span, sc, objs, p.epoch, p.o)
		rep.Objects += n
		rep.Targets[dest] += n
		for _, od := range objs {
			rep.Bytes += int64(len(od.Raw) + len(od.Pre))
		}
		if perr != nil {
			return rep, fmt.Errorf("tuner: rebuilding onto %s: %w", dest, perr)
		}
		if n < len(objs) {
			gaps = append(gaps, fmt.Sprintf("destination %s accepted %d of %d objects", dest, n, len(objs)))
		}
	}
	if len(gaps) > 0 {
		rep.Wall = time.Since(start)
		return rep, fmt.Errorf("tuner: rebuild of %s incomplete, ring membership unchanged (retry after the fleet stabilizes): %s",
			dead, strings.Join(gaps, "; "))
	}
	// Retire the dead member: placement's minimal-movement property means
	// only its photos changed replica sets, and those copies now exist.
	t.mu.Lock()
	t.ringMembers = placement.Without(t.ringMembers, dead)
	t.mu.Unlock()
	rep.Wall = time.Since(start)
	telemetry.Default.Flight().Record(telemetry.FlightRebuild, "tuner", dead, int64(rep.Objects), rep.Bytes)
	t.log.Info("rebuild complete", slog.String("dead", dead),
		slog.Int("objects", rep.Objects), slog.Int64("bytes", rep.Bytes),
		slog.Duration("wall", rep.Wall))
	return rep, nil
}
