// Durability chaos suite (S36): deterministic fault schedules against the
// replicated photo layer. A store killed mid-round at R=2 must yield a
// degraded commit with ImagesLost == 0 and the same committed version as a
// healthy run; an injected at-rest bit-flip must be detected by scrub and
// repaired from a replica without the corrupt bytes ever being served; a
// rebuild pass must restore full replication after an eviction.
package tuner

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/photostore"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/placement"
)

// ringClusterUp builds a replicated fleet: every photo is ingested into all
// r of its ring replicas, and the tuner routes rounds by ownership. With
// disk=true each store runs on a DiskStore under a temp dir (so tests can
// flip bits in object files); otherwise photos live in memory.
func ringClusterUp(t *testing.T, nStores, r, images int, seed int64, disk bool,
	wrap func(i int, c net.Conn) net.Conn) (*Node, []*chaosStore, *dataset.World, net.Listener, *placement.Ring) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(seed)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)

	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.EnableReplication(r); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); tn.Close() })
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, nStores) }()

	members := make([]string, nStores)
	for i := range members {
		members[i] = fmt.Sprintf("cs-%d", i)
	}
	ring, err := placement.New(members, r)
	if err != nil {
		t.Fatal(err)
	}
	var stores []*chaosStore
	for i := 0; i < nStores; i++ {
		var ps *pipestore.Node
		if disk {
			photos, perr := photostore.OpenDir(filepath.Join(t.TempDir(), "photos"))
			if perr != nil {
				t.Fatal(perr)
			}
			ps, err = pipestore.NewWithStorage(members[i], cfg, photos)
		} else {
			ps, err = pipestore.New(members[i], cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		var owned []dataset.Image
		for _, img := range world.Images() {
			for _, rep := range ring.Replicas(img.ID) {
				if rep == ps.ID {
					owned = append(owned, img)
					break
				}
			}
		}
		if err := ps.Ingest(owned); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if wrap != nil {
			conn = wrap(i, conn)
		}
		cs := &chaosStore{ps: ps, conn: conn, done: make(chan error, 1)}
		go func() { cs.done <- cs.ps.Serve(cs.conn) }()
		stores = append(stores, cs)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	return tn, stores, world, ln, ring
}

// The acceptance bar of the tentpole: at R=2, a store killed mid-round
// (deterministic write-drop mid feature stream) commits degraded with
// ImagesLost == 0 — every photo the dead store was serving is re-extracted
// from a surviving replica — trains every photo exactly once, and lands on
// the same committed version as an identical healthy run.
func TestDurabilityRoundSurvivesStoreDeathZeroLoss(t *testing.T) {
	const nImages = 600
	inj, err := faultinject.New(7, faultinject.Rule{Kind: faultinject.Drop, Op: faultinject.OpWrite, After: 26})
	if err != nil {
		t.Fatal(err)
	}
	victim := 2
	wrap := func(i int, c net.Conn) net.Conn {
		if i == victim {
			return inj.Conn(c)
		}
		return c
	}
	tn, stores, world, _, _ := ringClusterUp(t, 3, 2, nImages, 41, false, wrap)
	tn.SetRoundOptions(chaosRoundOptions())

	rep, err := tn.FineTune(2, 64, soakOpts())
	if err != nil {
		t.Fatalf("round must survive one death at R=2: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("report must be marked degraded")
	}
	if len(rep.FailedStores) != 1 || rep.FailedStores[0] != stores[victim].ps.ID {
		t.Fatalf("FailedStores = %v, want [%s]", rep.FailedStores, stores[victim].ps.ID)
	}
	if rep.ImagesLost != 0 {
		t.Fatalf("ImagesLost = %d, want 0: every photo has a live replica at R=2", rep.ImagesLost)
	}
	if rep.Images != len(world.Images()) {
		t.Fatalf("trained %d images, want every one of %d exactly once", rep.Images, len(world.Images()))
	}

	// Healthy twin: same world, same options, nobody dies.
	tn2, _, _, _, _ := ringClusterUp(t, 3, 2, nImages, 41, false, nil)
	tn2.SetRoundOptions(chaosRoundOptions())
	rep2, err := tn2.FineTune(2, 64, soakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Images != rep.Images {
		t.Fatalf("degraded run trained %d images, healthy run %d", rep.Images, rep2.Images)
	}
	if tn.ModelVersion() != tn2.ModelVersion() {
		t.Fatalf("committed version %d after degraded run, healthy run committed %d",
			tn.ModelVersion(), tn2.ModelVersion())
	}
}

// flipObjectByte corrupts one payload byte of an at-rest raw object file.
func flipObjectByte(t *testing.T, ps *pipestore.Node, dir string, id uint64) {
	t.Helper()
	path := filepath.Join(dir, "raw", fmt.Sprintf("%d", id))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 9 {
		t.Fatalf("raw object %d too short to corrupt: %d bytes", id, len(b))
	}
	b[len(b)-1] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = ps // the node stays live; its next CRC-verified read detects the flip
}

// diskRingClusterUp variant that exposes each store's photo directory.
func diskRingClusterUp(t *testing.T, nStores, r, images int, seed int64) (*Node, []*chaosStore, *dataset.World, *placement.Ring, []string) {
	t.Helper()
	dirs := make([]string, nStores)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("photos-%d", i))
	}
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(seed)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)

	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.EnableReplication(r); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); tn.Close() })
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, nStores) }()

	members := make([]string, nStores)
	for i := range members {
		members[i] = fmt.Sprintf("cs-%d", i)
	}
	ring, err := placement.New(members, r)
	if err != nil {
		t.Fatal(err)
	}
	var stores []*chaosStore
	for i := 0; i < nStores; i++ {
		photos, perr := photostore.OpenDir(dirs[i])
		if perr != nil {
			t.Fatal(perr)
		}
		ps, err := pipestore.NewWithStorage(members[i], cfg, photos)
		if err != nil {
			t.Fatal(err)
		}
		var owned []dataset.Image
		for _, img := range world.Images() {
			for _, rep := range ring.Replicas(img.ID) {
				if rep == ps.ID {
					owned = append(owned, img)
					break
				}
			}
		}
		if err := ps.Ingest(owned); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		cs := &chaosStore{ps: ps, conn: conn, done: make(chan error, 1)}
		go func() { cs.done <- cs.ps.Serve(cs.conn) }()
		stores = append(stores, cs)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	return tn, stores, world, ring, dirs
}

// An at-rest bit-flip is detected by the fleet-wide scrub pass, quarantined,
// and repaired end to end over the wire — tuner fetches a healthy copy from
// the other ring replica and relays it back — after which the object reads
// back byte-identical to the original.
func TestScrubRepairsInjectedBitflipOverWire(t *testing.T) {
	tn, stores, world, ring, dirs := diskRingClusterUp(t, 3, 2, 120, 43)

	// Corrupt one photo's raw object on its first replica.
	var victimImg dataset.Image
	victimStore := -1
	for _, img := range world.Images() {
		reps := ring.Replicas(img.ID)
		for i, cs := range stores {
			if cs.ps.ID == reps[0] {
				victimImg = img
				victimStore = i
			}
		}
		if victimStore >= 0 {
			break
		}
	}
	flipObjectByte(t, stores[victimStore].ps, dirs[victimStore], victimImg.ID)

	stats, err := tn.ScrubRepair(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stores != 3 {
		t.Fatalf("scrubbed %d stores, want 3", stats.Stores)
	}
	q := stats.Quarantined[stores[victimStore].ps.ID]
	if len(q) != 1 || q[0] != victimImg.ID {
		t.Fatalf("store %s quarantined %v, want [%d]", stores[victimStore].ps.ID, q, victimImg.ID)
	}
	if stats.Repaired != 1 || stats.Failed != 0 {
		t.Fatalf("repaired=%d failed=%d, want 1/0", stats.Repaired, stats.Failed)
	}
	raw, err := stores[victimStore].ps.Storage().GetRaw(victimImg.ID)
	if err != nil {
		t.Fatalf("repaired object unreadable: %v", err)
	}
	// The healthy second replica holds the reference copy.
	var healthy []byte
	for i, cs := range stores {
		if i == victimStore {
			continue
		}
		if b, err := cs.ps.Storage().GetRaw(victimImg.ID); err == nil {
			healthy = b
			break
		}
	}
	if healthy == nil {
		t.Fatal("no healthy replica holds the reference copy")
	}
	if string(raw) != string(healthy) {
		t.Fatal("repaired object differs from the healthy replica's copy")
	}
	if len(stores[victimStore].ps.Storage().Quarantined()) != 0 {
		t.Fatal("quarantine must be lifted after repair")
	}
}

// A corrupt object is never served: reads return an error (not the flipped
// bytes), the round routes around it — the survivor replica extracts it —
// and after repair the fleet is whole again.
func TestQuarantinedObjectNeverServed(t *testing.T) {
	tn, stores, world, ring, dirs := diskRingClusterUp(t, 3, 2, 150, 47)
	tn.SetRoundOptions(chaosRoundOptions())

	img := world.Images()[0]
	reps := ring.Replicas(img.ID)
	primary := -1
	for i, cs := range stores {
		if cs.ps.ID == reps[0] {
			primary = i
		}
	}
	flipObjectByte(t, stores[primary].ps, dirs[primary], img.ID)

	// The corrupt copy must never come back from a read.
	if raw, err := stores[primary].ps.Storage().GetRaw(img.ID); err == nil {
		t.Fatalf("corrupt raw object served: %d bytes", len(raw))
	}
	if len(stores[primary].ps.Storage().Quarantined()) != 1 {
		t.Fatal("detected corruption must quarantine the object")
	}
	// Quarantined means quarantined: the read keeps failing, it never heals
	// silently or serves stale bytes.
	if _, err := stores[primary].ps.Storage().GetRaw(img.ID); err == nil {
		t.Fatal("quarantined object served on re-read")
	}

	// A round still trains every OTHER photo exactly once. The corrupt
	// photo's owner skips it (its local copy is quarantined, never decoded);
	// nothing trains on garbage.
	rep, err := tn.FineTune(2, 32, soakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("no store died, round must not be degraded: %+v", rep)
	}
	if want := len(world.Images()) - 1; rep.Images != want {
		t.Fatalf("trained %d images, want %d (all but the quarantined one)", rep.Images, want)
	}

	// Scrub/repair heals the flip from the surviving replica; the next
	// round is whole.
	stats, err := tn.ScrubRepair(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Repaired != 1 {
		t.Fatalf("repaired = %d, want 1", stats.Repaired)
	}
	rep2, err := tn.FineTune(2, 32, soakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Images != len(world.Images()) {
		t.Fatalf("post-repair round trained %d images, want %d", rep2.Images, len(world.Images()))
	}
}

// After a store dies and the round commits degraded, Rebuild re-replicates
// its objects from the survivors: with 3 members at R=2 collapsing to 2, every
// photo must end up on both survivors, and the dead member leaves the ring.
func TestRebuildRestoresReplicationAfterStoreLoss(t *testing.T) {
	const nImages = 300
	inj, err := faultinject.New(11, faultinject.Rule{Kind: faultinject.Drop, Op: faultinject.OpWrite, After: 21})
	if err != nil {
		t.Fatal(err)
	}
	victim := 1
	wrap := func(i int, c net.Conn) net.Conn {
		if i == victim {
			return inj.Conn(c)
		}
		return c
	}
	tn, stores, world, _, _ := ringClusterUp(t, 3, 2, nImages, 53, false, wrap)
	tn.SetRoundOptions(chaosRoundOptions())

	rep, err := tn.FineTune(2, 64, soakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.ImagesLost != 0 {
		t.Fatalf("want degraded zero-loss commit, got degraded=%v lost=%d", rep.Degraded, rep.ImagesLost)
	}
	dead := stores[victim].ps.ID

	rb, err := tn.Rebuild(dead)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Objects == 0 {
		t.Fatal("rebuild moved no objects")
	}
	for _, m := range tn.RingMembers() {
		if m == dead {
			t.Fatalf("dead member %s still in the ring after rebuild", dead)
		}
	}
	// Survivor ring at R=2 over 2 members: every photo on both.
	for _, img := range world.Images() {
		for _, i := range []int{0, 2} {
			if _, err := stores[i].ps.Storage().GetRaw(img.ID); err != nil {
				t.Fatalf("photo %d missing on survivor %s after rebuild: %v", img.ID, stores[i].ps.ID, err)
			}
		}
	}
}

// A rebuild that cannot prove every object was delivered — here a second
// store drops before the pass, so some of the dead member's photos have no
// reachable pusher or destination — must NOT retire the dead member from
// the ring: the membership entry is the only record that those photos run
// under-replicated. The pass errors, the ring is unchanged, and a retry
// after the fleet stabilizes can still find the gap.
func TestRebuildIncompleteKeepsRingMembership(t *testing.T) {
	const nImages = 200
	inj, err := faultinject.New(13, faultinject.Rule{Kind: faultinject.Drop, Op: faultinject.OpWrite, After: 21})
	if err != nil {
		t.Fatal(err)
	}
	victim := 1
	wrap := func(i int, c net.Conn) net.Conn {
		if i == victim {
			return inj.Conn(c)
		}
		return c
	}
	tn, stores, _, _, _ := ringClusterUp(t, 4, 2, nImages, 59, false, wrap)
	tn.SetRoundOptions(chaosRoundOptions())

	rep, err := tn.FineTune(2, 64, soakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("victim must have been evicted mid-round")
	}
	dead := stores[victim].ps.ID

	// Take a second store down right before the rebuild.
	stores[2].conn.Close()

	before := tn.RingMembers()
	if _, err := tn.Rebuild(dead); err == nil {
		t.Fatal("rebuild with undeliverable objects must error, not retire the ring member")
	}
	after := tn.RingMembers()
	if len(after) != len(before) {
		t.Fatalf("ring membership changed on incomplete rebuild: %v -> %v", before, after)
	}
	found := false
	for _, m := range after {
		if m == dead {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead member %s retired despite incomplete rebuild; ring: %v", dead, after)
	}
}

// A replica that is MISSING — a replica write that failed at ingest, or an
// object dropped by an interrupted rebuild — is invisible to checksum
// scrubbing: there are no bytes for a CRC to flag. The anti-entropy pass
// finds the gap by diffing store inventories against ring placement and
// refills it from a live replica with a healthy copy.
func TestAntiEntropyRefillsMissingReplica(t *testing.T) {
	tn, stores, world, _, ring := ringClusterUp(t, 3, 2, 120, 61, false, nil)
	tn.SetRoundOptions(chaosRoundOptions())

	// Simulate a failed replica write: drop one photo from its secondary.
	img := world.Images()[0]
	reps := ring.Replicas(img.ID)
	secondary := -1
	for i, cs := range stores {
		if cs.ps.ID == reps[1] {
			secondary = i
		}
	}
	stores[secondary].ps.Storage().Delete(img.ID)
	if _, err := stores[secondary].ps.Storage().GetRaw(img.ID); err == nil {
		t.Fatal("precondition: the secondary replica must be missing")
	}

	// Checksum scrub/repair cannot see an absent replica.
	srStats, err := tn.ScrubRepair(0)
	if err != nil {
		t.Fatal(err)
	}
	if srStats.Repaired != 0 || srStats.Failed != 0 {
		t.Fatalf("scrub/repair acted on a missing replica: %+v", srStats)
	}
	if _, err := stores[secondary].ps.Storage().GetRaw(img.ID); err == nil {
		t.Fatal("scrub/repair must not have refilled the missing replica")
	}

	// Anti-entropy finds and refills exactly that gap.
	st, err := tn.AntiEntropy()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stores != 3 {
		t.Fatalf("inventoried %d stores, want 3", st.Stores)
	}
	if st.Objects != len(world.Images()) {
		t.Fatalf("object universe %d, want %d", st.Objects, len(world.Images()))
	}
	if miss := st.Missing[reps[1]]; len(miss) != 1 || miss[0] != img.ID {
		t.Fatalf("missing[%s] = %v, want [%d]", reps[1], miss, img.ID)
	}
	if st.Refills != 1 || st.Failed != 0 {
		t.Fatalf("refills=%d failed=%d, want 1/0", st.Refills, st.Failed)
	}
	raw, err := stores[secondary].ps.Storage().GetRaw(img.ID)
	if err != nil {
		t.Fatalf("refilled replica unreadable: %v", err)
	}
	healthy, err := stores[0].ps.Storage().GetRaw(img.ID)
	if err != nil {
		// stores[0] may not be a replica; find one that is.
		for _, cs := range stores {
			if cs.ps.ID == reps[0] {
				healthy, err = cs.ps.Storage().GetRaw(img.ID)
			}
		}
		if err != nil {
			t.Fatalf("no healthy replica readable: %v", err)
		}
	}
	if string(raw) != string(healthy) {
		t.Fatal("refilled replica differs from the healthy copy")
	}

	// Idempotent: a whole fleet finds nothing to do.
	st2, err := tn.AntiEntropy()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Missing) != 0 || st2.Refills != 0 || st2.Failed != 0 {
		t.Fatalf("second pass must be a no-op: %+v", st2)
	}
}
