// Round protocol: quorum-based fault tolerance for FT-DMP rounds.
//
// Every FineTune / OfflineInference invocation is one *round*, stamped
// with a monotonically increasing epoch that tags every request and is
// echoed by the stores, so anything buffered from an earlier (possibly
// failed) round is detectably stale. Within a round each participating
// store runs a small state machine: live → (suspect on silence, pinged) →
// failed (evicted from the fleet). A store that disconnects, reports an
// error, violates the protocol, or stays silent past StoreTimeout is
// evicted; its contributions to not-yet-trained runs are discarded and the
// round completes on the surviving quorum — a hard error is returned only
// when fewer than Quorum stores survive a phase. Evicted stores rejoin
// through Node.AddStore (the catch-up-delta path) and are folded into the
// next round.
package tuner

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
	"ndpipe/internal/wire"
)

// RoundOptions is the fleet fault-tolerance policy.
type RoundOptions struct {
	// Quorum is the minimum number of stores that must survive (and, for
	// fine-tuning, contribute) for a round to commit. Below it the round
	// returns a hard error. Zero defaults to 1: at the paper's scale a
	// round on any surviving subset beats restarting.
	Quorum int
	// StoreTimeout bounds per-store silence. A store that has sent nothing
	// for longer (despite a heartbeat ping at half the budget) is declared
	// dead and evicted. Also used as the per-store send deadline.
	StoreTimeout time.Duration
	// RoundTimeout bounds each phase of a round (feature gather, delta
	// ack collection, label collection) with its own timer.
	RoundTimeout time.Duration
	// MaxRetries caps re-attempts of a failed per-store send. Zero means
	// the default (3); use -1 to disable retries.
	MaxRetries int
	// Backoff is the base delay between retries, doubled per attempt up to
	// BackoffCap, with uniform jitter in [0.5×, 1.5×) drawn from the
	// seeded source.
	Backoff    time.Duration
	BackoffCap time.Duration
	// Seed fixes the jitter RNG for deterministic chaos runs (0 = entropy).
	Seed int64
}

// DefaultRoundOptions returns the production policy.
func DefaultRoundOptions() RoundOptions {
	return RoundOptions{
		Quorum:       1,
		StoreTimeout: 30 * time.Second,
		RoundTimeout: 5 * time.Minute,
		MaxRetries:   3,
		Backoff:      50 * time.Millisecond,
		BackoffCap:   2 * time.Second,
	}
}

// WithDefaults fills zero fields with the defaults.
func (o RoundOptions) WithDefaults() RoundOptions {
	d := DefaultRoundOptions()
	if o.Quorum <= 0 {
		o.Quorum = d.Quorum
	}
	if o.StoreTimeout <= 0 {
		o.StoreTimeout = d.StoreTimeout
	}
	if o.RoundTimeout <= 0 {
		o.RoundTimeout = d.RoundTimeout
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = d.MaxRetries
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = d.Backoff
	}
	if o.BackoffCap < o.Backoff {
		o.BackoffCap = d.BackoffCap
	}
	return o
}

// heartbeatInterval is how often a round checks store liveness.
func heartbeatInterval(o RoundOptions) time.Duration {
	hb := o.StoreTimeout / 4
	if hb < 5*time.Millisecond {
		hb = 5 * time.Millisecond
	}
	if hb > time.Second {
		hb = time.Second
	}
	return hb
}

// backoffRNG is the seeded jitter source (guarded by Node.rngMu).
type backoffRNG = *rand.Rand

func newBackoffRNG(seed int64) backoffRNG {
	if seed == 0 {
		var s int64
		// Draw entropy from the global source rather than the clock so two
		// Tuners started in the same nanosecond still diverge.
		s = rand.Int63()
		if s == 0 {
			s = 1
		}
		seed = s
	}
	return rand.New(rand.NewSource(seed))
}

func (t *Node) randFloat() float64 {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Float64()
}

// backoff returns the capped, jittered exponential delay before retry
// `attempt` (0-based).
func (t *Node) backoff(o RoundOptions, attempt int) time.Duration {
	d := o.Backoff
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= o.BackoffCap {
			d = o.BackoffCap
			break
		}
	}
	// Full jitter around the midpoint: [0.5d, 1.5d).
	return d/2 + time.Duration(t.randFloat()*float64(d))
}

// sendWithDeadline writes one message with a per-store write deadline, so
// a stalled peer cannot wedge the round inside a blocking send. Every
// message is stamped with the tuner's leadership term on the way out —
// this is the fencing signal stores use to reject a deposed leader.
func (t *Node) sendWithDeadline(sc *storeConn, msg *wire.Message, d time.Duration) error {
	msg.LeaderEpoch = t.leaderEpoch.Load()
	if d > 0 {
		_ = sc.conn.SetWriteDeadline(time.Now().Add(d))
		defer sc.conn.SetWriteDeadline(time.Time{})
	}
	return sc.codec.Send(msg)
}

// storeRunBuf accumulates one store's feature batches for one run. finals
// counts Final markers received: under ring routing a re-sent (degraded)
// request makes every survivor owe a second Final per not-yet-trained run,
// so completion is a count, not a flag.
type storeRunBuf struct {
	rows   []float64
	labels []int
	ids    []uint64
	finals int
}

// roundCtx is the per-round state machine over the participating stores.
type roundCtx struct {
	t     *Node
	o     RoundOptions
	epoch int

	span   *telemetry.Span
	logger *slog.Logger

	participants []*storeConn        // round entrants, in registration order
	live         map[*storeConn]bool // still healthy this round
	failed       map[string]error    // storeID → why it left the round

	// Feature-gather state (FineTune only): per-run, per-store buffers plus
	// the next run to train, so a failing store's not-yet-trained
	// contributions can be discarded and accounted.
	ftBufs     []map[string]*storeRunBuf
	nextRun    int
	imagesLost int

	// Ring-routing state (replication enabled; see durability.go). ring is
	// the full membership stamped on every request — dead members stay in it
	// so ownership math is stable — and curLive is the live set carried by
	// the most recent train request; when rc.live shrinks below it, the
	// round re-sends the request so survivors pick up the dead store's
	// photos (reextract). extraFinals[r] counts re-sent requests covering
	// run r: each one makes every live store owe one more Final for r.
	ring        []string
	replication int
	curLive     []string
	extraFinals []int
	// Exactly-once training under re-extraction: seen holds every image ID
	// already trained this round (re-extracted duplicates of already-trained
	// rows are dropped), orphans holds IDs buffered from a failed store and
	// discarded — drained as survivors re-deliver them. What remains at
	// commit is genuinely lost.
	seen    map[uint64]bool
	orphans map[uint64]bool

	// Straggler accounting: per-store phase latencies measured against the
	// shared phase start, so one slow store stands out of the fleet median.
	stats       map[string]*StoreRoundStats
	gatherStart time.Time
	ackStart    time.Time
}

// stat returns (creating) a store's per-round accounting slot.
func (rc *roundCtx) stat(id string) *StoreRoundStats {
	st := rc.stats[id]
	if st == nil {
		st = &StoreRoundStats{}
		rc.stats[id] = st
	}
	return st
}

// beginRound stamps a fresh epoch, snapshots the fleet as this round's
// participants and verifies the quorum is reachable at all.
func (t *Node) beginRound(span *telemetry.Span, logger *slog.Logger) (*roundCtx, error) {
	t.mu.Lock()
	t.epoch++
	rc := &roundCtx{
		t:            t,
		o:            t.rounds,
		epoch:        t.epoch,
		span:         span,
		logger:       logger,
		participants: append([]*storeConn(nil), t.stores...),
		live:         make(map[*storeConn]bool),
		failed:       make(map[string]error),
		stats:        make(map[string]*StoreRoundStats),
		replication:  t.replication,
	}
	if rc.replication > 0 {
		// Legacy rounds (replication off) must not carry a ring: stores would
		// take the ownership path over data that was never ring-placed.
		rc.ring = append([]string(nil), t.ringMembers...)
	}
	t.mu.Unlock()
	if rc.ringMode() {
		for _, sc := range rc.participants {
			rc.curLive = append(rc.curLive, sc.id)
		}
		rc.seen = make(map[uint64]bool)
		rc.orphans = make(map[uint64]bool)
	}
	span.SetAttr("epoch", fmt.Sprint(rc.epoch))
	telemetry.Default.Flight().Record(telemetry.FlightRoundStart, "tuner", "",
		int64(rc.epoch), int64(len(rc.participants)))
	if len(rc.participants) == 0 {
		return nil, fmt.Errorf("tuner: no PipeStores registered")
	}
	for _, sc := range rc.participants {
		rc.live[sc] = true
	}
	if len(rc.live) < rc.o.Quorum {
		return nil, fmt.Errorf("tuner: %d stores registered, below quorum %d", len(rc.participants), rc.o.Quorum)
	}
	return rc, nil
}

// fail takes a store out of the round (and the fleet). Duplicate signals
// for the same store are no-ops.
func (rc *roundCtx) fail(sc *storeConn, err error) {
	rc.t.evict(sc, err, rc.span)
	if !rc.live[sc] {
		return // not (or no longer) part of this round
	}
	delete(rc.live, sc)
	if rc.failed[sc.id] == nil {
		rc.failed[sc.id] = err
	}
	rc.discardPending(sc.id)
	rc.logger.Warn("store failed mid-round",
		slog.String("store", sc.id),
		slog.Int("live", len(rc.live)),
		slog.Any("err", err))
}

// adopt folds a store that joined the fleet mid-round (via AddStore) into
// the round for the delta phase, so its ack is awaited and its liveness
// checked like everyone else's.
func (rc *roundCtx) adopt(sc *storeConn) {
	if rc.live[sc] || rc.failed[sc.id] != nil || sc.evicted.Load() {
		return
	}
	rc.participants = append(rc.participants, sc)
	rc.live[sc] = true
}

// ringMode reports whether this round runs under replicated placement.
func (rc *roundCtx) ringMode() bool { return rc.replication > 0 && len(rc.ring) > 0 }

// discardPending drops a failed store's contributions to runs that have
// not been trained yet: a half-gathered run must not train on a partial
// shard without accounting for it. Under ring routing the discarded rows
// are not written off — their IDs become orphans, reclaimed as survivors
// re-deliver them, and only what is never reclaimed counts as lost.
func (rc *roundCtx) discardPending(storeID string) {
	for r := rc.nextRun; r < len(rc.ftBufs); r++ {
		if b := rc.ftBufs[r][storeID]; b != nil {
			if rc.ringMode() {
				for _, id := range b.ids {
					if !rc.seen[id] {
						rc.orphans[id] = true
					}
				}
			} else {
				rc.imagesLost += len(b.labels)
			}
			delete(rc.ftBufs[r], storeID)
		}
	}
}

// handle routes one inbox event: terminal errors and MsgError fail the
// store, stale-epoch messages are counted and dropped, and everything else
// goes to the phase's accept function.
func (rc *roundCtx) handle(ev inbound, accept func(*storeConn, *wire.Message)) {
	if ev.err != nil {
		rc.fail(ev.sc, ev.err)
		return
	}
	msg := ev.msg
	if msg.Epoch != 0 && msg.Epoch != rc.epoch {
		rc.t.met.staleMsgs.Inc()
		return
	}
	if msg.Type == wire.MsgError {
		rc.fail(ev.sc, fmt.Errorf("tuner: store %s: %s", ev.sc.id, msg.Err))
		return
	}
	accept(ev.sc, msg)
}

// checkLiveness pings quiet stores and fails silent ones. pending filters
// which live stores the current phase is still waiting on (nil = all).
func (rc *roundCtx) checkLiveness(pending func(*storeConn) bool) {
	var cands []*storeConn
	for sc := range rc.live {
		if pending == nil || pending(sc) {
			cands = append(cands, sc)
		}
	}
	for _, sc := range cands {
		silent := sc.silence()
		switch {
		case silent > rc.o.StoreTimeout:
			rc.fail(sc, fmt.Errorf("tuner: store %s silent for %v (store timeout %v)",
				sc.id, silent.Round(time.Millisecond), rc.o.StoreTimeout))
		case silent > rc.o.StoreTimeout/2:
			// Suspect: probe it. A pong (or any message) resets the clock.
			ping := &wire.Message{Type: wire.MsgPing, Epoch: rc.epoch}
			if err := rc.t.sendWithDeadline(sc, ping, rc.o.StoreTimeout); err != nil {
				rc.fail(sc, fmt.Errorf("tuner: ping to store %s: %w", sc.id, err))
				continue
			}
			rc.t.met.pings.Inc()
		}
	}
}

// sendWithRetry sends with per-store deadlines and capped exponential
// backoff with jitter between attempts.
func (rc *roundCtx) sendWithRetry(sc *storeConn, msg *wire.Message) error {
	var err error
	for attempt := 0; attempt <= rc.o.MaxRetries; attempt++ {
		if attempt > 0 {
			rc.t.met.retries.Inc()
			telemetry.Default.Flight().Record(telemetry.FlightRetry, "tuner", sc.id, int64(attempt), int64(rc.epoch))
			time.Sleep(rc.t.backoff(rc.o, attempt-1))
		}
		if err = rc.t.sendWithDeadline(sc, msg, rc.o.StoreTimeout); err == nil {
			return nil
		}
	}
	return fmt.Errorf("tuner: send %v to store %s failed after %d attempts: %w",
		msg.Type, sc.id, rc.o.MaxRetries+1, err)
}

// quorumError is the hard failure: fewer than Quorum stores survive. It
// names every casualty and its reason, so the one real root cause (a
// disconnect, a store-side error) is in the message.
func (rc *roundCtx) quorumError(phase string) error {
	ids := make([]string, 0, len(rc.failed))
	for id := range rc.failed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %v", id, rc.failed[id])
	}
	telemetry.Default.Flight().Record(telemetry.FlightRoundAbort, "tuner", phase, int64(rc.epoch), int64(len(rc.live)))
	return fmt.Errorf("tuner: round %d aborted while %s: %d live stores, quorum %d; failed: [%s]",
		rc.epoch, phase, len(rc.live), rc.o.Quorum, b.String())
}

// failedSorted lists the round's casualties for the Report.
func (rc *roundCtx) failedSorted() []string {
	if len(rc.failed) == 0 {
		return nil
	}
	ids := make([]string, 0, len(rc.failed))
	for id := range rc.failed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// finishAccounting stamps the degraded-round outcome into the report and
// the metrics.
func (rc *roundCtx) finishAccounting(rep *Report) {
	rep.Participants = len(rc.participants)
	rep.FailedStores = rc.failedSorted()
	rep.Degraded = len(rc.failed) > 0
	if rc.ringMode() {
		// Under replication, lost = buffered-then-discarded rows never
		// re-delivered by a survivor. With R ≥ 2 and any live replica per
		// photo, reroute drains the orphan set and this is zero.
		rc.imagesLost = len(rc.orphans)
	}
	rep.ImagesLost = rc.imagesLost
	if rep.Degraded {
		rc.t.met.degradedRounds.Inc()
		rc.t.met.imagesLost.Add(int64(rc.imagesLost))
		rc.span.SetAttr("degraded", "true")
	}
}

// flagStragglers applies the median+MAD rule to the round's per-store phase
// latencies: the gather phase (request → last final feature batch) and the
// ack phase (delta broadcast → ack) are judged independently, and a store
// flagged in either is a straggler. Flags land in the report, in the
// ndpipe_straggler{store=...} gauges (1 flagged / 0 clear, refreshed every
// round) and in structured log + flight-recorder events.
func (rc *roundCtx) flagStragglers(rep *Report) {
	gather := make(map[string]float64, len(rc.stats))
	ack := make(map[string]float64, len(rc.stats))
	for id, st := range rc.stats {
		if st.GatherSeconds > 0 {
			gather[id] = st.GatherSeconds
		}
		if st.AckSeconds > 0 {
			ack[id] = st.AckSeconds
		}
	}
	flagged := make(map[string]bool)
	for _, id := range telemetry.FlagStragglers(gather, 0) {
		flagged[id] = true
	}
	for _, id := range telemetry.FlagStragglers(ack, 0) {
		flagged[id] = true
	}
	rep.StoreStats = make(map[string]StoreRoundStats, len(rc.stats))
	for id, st := range rc.stats {
		st.Straggler = flagged[id]
		rep.StoreStats[id] = *st
		v := 0.0
		if st.Straggler {
			v = 1
		}
		telemetry.Default.Gauge(telemetry.Labeled("ndpipe_straggler", "store", id)).Set(v)
	}
	if len(flagged) == 0 {
		return
	}
	rep.Stragglers = make([]string, 0, len(flagged))
	for id := range flagged {
		rep.Stragglers = append(rep.Stragglers, id)
	}
	sort.Strings(rep.Stragglers)
	for _, id := range rep.Stragglers {
		rc.t.met.stragglersSeen.Inc()
		telemetry.Default.Flight().Record(telemetry.FlightStraggler, "tuner", id, int64(rc.epoch), 0)
		st := rc.stats[id]
		rc.logger.Warn("straggler detected",
			slog.String("store", id),
			slog.Int("epoch", rc.epoch),
			slog.Float64("gather_seconds", st.GatherSeconds),
			slog.Float64("ack_seconds", st.AckSeconds))
	}
}

// runComplete reports whether every live store has finished sending run r:
// one Final per request covering the run — the original, plus one per
// re-sent (degraded) request under ring routing.
func (rc *roundCtx) runComplete(r int) bool {
	want := 1
	if rc.extraFinals != nil {
		want += rc.extraFinals[r]
	}
	for sc := range rc.live {
		b := rc.ftBufs[r][sc.id]
		if b == nil || b.finals < want {
			return false
		}
	}
	return true
}

// liveIDs returns the current live set in participant order.
func (rc *roundCtx) liveIDs() []string {
	ids := make([]string, 0, len(rc.live))
	for _, sc := range rc.participants {
		if rc.live[sc] {
			ids = append(ids, sc.id)
		}
	}
	return ids
}

// reextract is the zero-loss reroute: a store died during the gather, so
// the round re-sends its train request to every survivor with the shrunken
// live set. Each survivor extracts the photos it owns now but did not own
// under PrevLive — exactly the dead store's photos, rerouted to their next
// live replica — partitioned over the runs not yet trained. Every re-sent
// request makes every live store owe one more Final for those runs.
func (rc *roundCtx) reextract(tc telemetry.SpanContext, nrun, batch int) {
	newLive := rc.liveIDs()
	prev := rc.curLive
	from := rc.nextRun
	rc.curLive = newLive
	for r := from; r < nrun; r++ {
		rc.extraFinals[r]++
	}
	telemetry.Default.Flight().Record(telemetry.FlightReroute, "tuner", "", int64(rc.epoch), int64(from))
	rc.span.Event(fmt.Sprintf("reroute from run %d to %d survivors", from, len(newLive)))
	rc.logger.Warn("re-extracting dead store's photos on survivors",
		slog.Int("epoch", rc.epoch), slog.Int("from_run", from), slog.Int("survivors", len(newLive)))
	for _, sc := range rc.participants {
		if !rc.live[sc] {
			continue
		}
		req := &wire.Message{Type: wire.MsgTrainRequest, Runs: nrun, BatchSize: batch, Epoch: rc.epoch,
			RingStores: rc.ring, LiveStores: newLive, PrevLive: prev,
			Replication: rc.replication, FromRun: from}
		req.SetTraceContext(tc)
		if err := rc.sendWithRetry(sc, req); err != nil {
			rc.fail(sc, fmt.Errorf("tuner: re-sending train request to %s: %w", sc.id, err))
		}
	}
}

// FineTune runs one pipelined FT-DMP round over all registered stores and
// distributes the resulting model delta. Stores extract nrun sub-shards;
// the Tuner trains on run r as soon as every store finished sending it.
// The round runs under a fresh distributed trace (see FineTuneTraced).
func (t *Node) FineTune(nrun, batch int, opt ftdmp.TrainOptions) (Report, error) {
	return t.FineTuneTraced(telemetry.SpanContext{}, nrun, batch, opt)
}

// FineTuneTraced is FineTune inside a caller-provided trace context (an
// empty context mints a fresh trace). The round span parents both the
// Tuner's local train-run spans and — via the trace context carried in
// every MsgTrainRequest/MsgModelDelta envelope — the remote extraction and
// delta-apply spans each PipeStore records and ships back, so /traces
// shows the full Fig-6 decomposition of the round.
//
// The round tolerates partial failure: stores that die, stall past
// StoreTimeout, or misbehave are evicted and the round commits on the
// surviving quorum with Report.Degraded accounting. Only when fewer than
// RoundOptions.Quorum stores survive does it return an error.
func (t *Node) FineTuneTraced(parent telemetry.SpanContext, nrun, batch int, opt ftdmp.TrainOptions) (Report, error) {
	start := time.Now()
	res0 := telemetry.SampleResources()
	wireIn0 := telemetry.Default.Counter("wire_recv_bytes_total").Value()
	wireOut0 := telemetry.Default.Counter("wire_sent_bytes_total").Value()
	span := telemetry.Default.Spans().StartSpanIn(parent, "tuner.finetune")
	span.SetAttr("nrun", fmt.Sprint(nrun))
	tc := span.Context()
	logger := t.log.With(telemetry.TraceAttrs(tc)...)
	defer func() {
		t.met.fineTune.Observe(span.End().Seconds())
	}()
	if nrun < 1 {
		nrun = 1
	}
	t.mu.Lock()
	clf := t.clf
	t.mu.Unlock()

	rc, err := t.beginRound(span, logger)
	if err != nil {
		return Report{}, err
	}
	rc.gatherStart = time.Now()
	if rc.ringMode() {
		rc.extraFinals = make([]int, nrun)
	}
	for _, sc := range rc.participants {
		req := &wire.Message{Type: wire.MsgTrainRequest, Runs: nrun, BatchSize: batch, Epoch: rc.epoch,
			RingStores: rc.ring, LiveStores: rc.curLive, Replication: rc.replication}
		req.SetTraceContext(tc)
		if err := rc.sendWithRetry(sc, req); err != nil {
			rc.fail(sc, fmt.Errorf("tuner: requesting training from %s: %w", sc.id, err))
		}
	}
	if len(rc.live) < rc.o.Quorum {
		return Report{}, rc.quorumError("requesting training")
	}
	logger.Debug("fine-tune round started",
		slog.Int("epoch", rc.epoch), slog.Int("stores", len(rc.live)), slog.Int("nrun", nrun))

	rep := Report{Trace: tc.Trace, Runs: nrun}
	rc.ftBufs = make([]map[string]*storeRunBuf, nrun)
	for r := range rc.ftBufs {
		rc.ftBufs[r] = make(map[string]*storeRunBuf)
	}
	cols := t.cfg.FeatureDim

	acceptFeatures := func(sc *storeConn, msg *wire.Message) {
		if !rc.live[sc] || msg.Type != wire.MsgFeatures {
			rc.t.met.staleMsgs.Inc()
			return
		}
		if msg.Run < 0 || msg.Run >= nrun {
			rc.fail(sc, fmt.Errorf("tuner: store %s sent feature batch for bad run %d", sc.id, msg.Run))
			return
		}
		if msg.Cols != cols {
			rc.fail(sc, fmt.Errorf("tuner: store %s sent feature width %d, want %d", sc.id, msg.Cols, cols))
			return
		}
		if msg.Run < rc.nextRun {
			// Already trained that run; a duplicate or laggard batch.
			rc.t.met.staleMsgs.Inc()
			return
		}
		b := rc.ftBufs[msg.Run][sc.id]
		if b == nil {
			b = &storeRunBuf{}
			rc.ftBufs[msg.Run][sc.id] = b
		}
		b.rows = append(b.rows, msg.X...)
		b.labels = append(b.labels, msg.Labels...)
		if rc.ringMode() {
			b.ids = append(b.ids, msg.IDs...)
		}
		if msg.Final {
			b.finals++
		}
		rep.FeatureBytes += int64(len(msg.X)) * 8
		t.met.featureBytes.Add(int64(len(msg.X)) * 8)
		st := rc.stat(sc.id)
		st.FeatureBytes += int64(len(msg.X)) * 8
		if msg.Final && msg.Run == nrun-1 {
			// The store's last pipelined run is in: its gather phase is done.
			st.GatherSeconds = time.Since(rc.gatherStart).Seconds()
		}
	}

	// Gather+train, pipelined: a per-phase timer (satisfying the round
	// deadline) and a heartbeat ticker (satisfying per-store silence
	// detection) run alongside the inbox.
	gatherTimer := time.NewTimer(rc.o.RoundTimeout)
	defer gatherTimer.Stop()
	hb := time.NewTicker(heartbeatInterval(rc.o))
	defer hb.Stop()

	for r := 0; r < nrun; r++ {
		rc.nextRun = r
		for {
			if len(rc.live) < rc.o.Quorum {
				return Report{}, rc.quorumError(fmt.Sprintf("gathering run %d", r))
			}
			if rc.ringMode() && len(rc.live) < len(rc.curLive) {
				// A store died since the last request: reroute its photos to
				// the survivors before judging run completion — they now owe
				// an extra Final per remaining run.
				rc.reextract(tc, nrun, batch)
				continue
			}
			if rc.runComplete(r) {
				break
			}
			select {
			case ev := <-t.inbox:
				rc.handle(ev, acceptFeatures)
			case <-hb.C:
				want := 1
				if rc.extraFinals != nil {
					want += rc.extraFinals[r]
				}
				rc.checkLiveness(func(sc *storeConn) bool {
					b := rc.ftBufs[r][sc.id]
					return b == nil || b.finals < want
				})
			case <-gatherTimer.C:
				return Report{}, fmt.Errorf("tuner: round %d timed out gathering run %d after %v",
					rc.epoch, r, rc.o.RoundTimeout)
			}
		}
		// Tuner-stage: train on the gathered run, concatenating survivors in
		// registration order (deterministic for a fixed failure schedule).
		// Under ring routing, rows whose ID already trained this round are
		// dropped (a re-extraction can re-deliver rows the dead store got
		// through before dying), and every trained ID leaves the orphan set.
		var rows []float64
		var labels []int
		for _, sc := range rc.participants {
			b := rc.ftBufs[r][sc.id]
			if b == nil || b.finals == 0 {
				continue
			}
			if !rc.ringMode() {
				rows = append(rows, b.rows...)
				labels = append(labels, b.labels...)
				continue
			}
			for i, id := range b.ids {
				if rc.seen[id] {
					continue
				}
				rc.seen[id] = true
				delete(rc.orphans, id)
				rows = append(rows, b.rows[i*cols:(i+1)*cols]...)
				labels = append(labels, b.labels[i])
			}
		}
		n := len(labels)
		if n == 0 {
			if len(rc.failed) == 0 {
				return Report{}, fmt.Errorf("tuner: run %d is empty", r)
			}
			// Every contributor to this run died; skip it and train on what
			// later runs bring.
			rc.ftBufs[r] = nil
			continue
		}
		batchData := &dataset.Batch{X: tensor.FromSlice(n, cols, rows), Labels: labels}
		runSpan := telemetry.Default.Spans().StartSpanIn(tc, "tuner.train-run")
		runSpan.SetAttr("run", fmt.Sprint(r))
		stats, err := trainOneRun(clf, batchData, opt)
		t.met.runTrain.Observe(runSpan.End().Seconds())
		if err != nil {
			return Report{}, err
		}
		rep.Epochs += stats
		rep.Images += n
		rc.ftBufs[r] = nil // release
		// Training blocks the event loop; don't hold that idle time against
		// the stores' silence budget.
		for sc := range rc.live {
			sc.touch()
		}
	}
	gatherTimer.Stop()

	// Check-N-Run distribution: archive the new version and broadcast its
	// delta blob.
	t.mu.Lock()
	// A node closed mid-round (leader deposed, process shutting down) must
	// not commit: Close has already released the state handles and the
	// fleet, so the journal, replication, and broadcast below would all
	// degenerate to no-ops and the caller would see a version that exists
	// nowhere durable.
	select {
	case <-t.done:
		t.mu.Unlock()
		return Report{}, fmt.Errorf("tuner: node closed; round %d cannot commit", rc.epoch)
	default:
	}
	newSnap := clf.TakeSnapshot()
	blob, err := t.archive.Append(newSnap)
	if err != nil {
		t.mu.Unlock()
		return Report{}, err
	}
	t.version = t.archive.Latest()
	version := t.version
	// Durability barrier: the round's WAL record is fsynced BEFORE any
	// store sees the new version, so no acked delta can ever reference a
	// version a restarted tuner fails to recover.
	if err := t.journalRoundLocked(version, rc.epoch, blob); err != nil {
		t.mu.Unlock()
		return Report{}, err
	}
	// The broadcast targets the *current* fleet — surviving participants
	// plus any store that registered mid-round (already caught up to the
	// pre-round version; deltas carry absolute values, so even a straddling
	// catch-up is idempotent).
	targets := append([]*storeConn(nil), t.stores...)
	t.mu.Unlock()

	rep.DeltaBytes = int64(len(blob))
	rep.DeltaBlob = blob
	// Naive distribution would ship the entire model — frozen backbone
	// included — to every store; Check-N-Run ships only the classifier
	// delta (§5, up to 427× smaller at ImageNet scale where the backbone
	// dwarfs the head).
	rep.FullModelBytes = newSnap.Bytes() + t.backbone.TakeSnapshot().Bytes()
	rep.ModelVersion = version

	rc.ackStart = time.Now()
	pending := make(map[*storeConn]bool, len(targets))
	for _, sc := range targets {
		rc.adopt(sc)
		if !rc.live[sc] {
			continue
		}
		// Each store receives its negotiated wire form: the shared dense blob,
		// or a per-store compressed stream with error feedback (delta.Encoding).
		sblob, enc, err := t.encodeDeltaFor(sc, newSnap, version, blob)
		if err != nil {
			rc.fail(sc, fmt.Errorf("tuner: encoding delta for %s: %w", sc.id, err))
			continue
		}
		msg := &wire.Message{Type: wire.MsgModelDelta, Blob: sblob, ModelVersion: version,
			Epoch: rc.epoch, DeltaEncoding: uint8(enc)}
		msg.SetTraceContext(tc)
		if err := rc.sendWithRetry(sc, msg); err != nil {
			rc.fail(sc, fmt.Errorf("tuner: distributing delta to %s: %w", sc.id, err))
			continue
		}
		t.met.deltaBytes.Add(int64(len(sblob)))
		deltaBytesByEnc(enc).Add(int64(len(sblob)))
		pending[sc] = true
	}

	// Ack collection: its own phase timer, heartbeat-checked, pruned as
	// stores fail.
	ackTimer := time.NewTimer(rc.o.RoundTimeout)
	defer ackTimer.Stop()
	prune := func() {
		for sc := range pending {
			if !rc.live[sc] {
				delete(pending, sc)
			}
		}
	}
	for len(pending) > 0 {
		if len(rc.live) < rc.o.Quorum {
			return Report{}, rc.quorumError("distributing delta")
		}
		select {
		case ev := <-t.inbox:
			rc.handle(ev, func(sc *storeConn, msg *wire.Message) {
				if msg.Type == wire.MsgAck && pending[sc] {
					rc.stat(sc.id).AckSeconds = time.Since(rc.ackStart).Seconds()
					delete(pending, sc)
					return
				}
				rc.t.met.staleMsgs.Inc()
			})
		case <-hb.C:
			rc.checkLiveness(func(sc *storeConn) bool { return pending[sc] })
		case <-ackTimer.C:
			return Report{}, fmt.Errorf("tuner: round %d timed out waiting for delta acks after %v",
				rc.epoch, rc.o.RoundTimeout)
		}
		prune()
	}
	if len(rc.live) < rc.o.Quorum {
		return Report{}, rc.quorumError("collecting delta acks")
	}

	rep.WallTime = time.Since(start)
	t.met.trainRounds.Inc()
	t.met.modelVersion.Set(float64(version))
	rc.finishAccounting(&rep)
	rc.flagStragglers(&rep)
	// Per-round resource accounting: the tuner process's cost of the round.
	rep.Resources = telemetry.SampleResources().Sub(res0)
	rep.WireBytesIn = telemetry.Default.Counter("wire_recv_bytes_total").Value() - wireIn0
	rep.WireBytesOut = telemetry.Default.Counter("wire_sent_bytes_total").Value() - wireOut0
	t.met.roundCPU.Set(rep.Resources.CPUSeconds)
	t.met.roundAllocB.Set(float64(rep.Resources.AllocBytes))
	t.met.roundAllocN.Set(float64(rep.Resources.AllocObjects))
	telemetry.Default.Flight().Record(telemetry.FlightRoundCommit, "tuner", "", int64(rc.epoch), int64(version))
	logger.Info("fine-tune round complete",
		slog.Int("epoch", rc.epoch),
		slog.Int("images", rep.Images),
		slog.Int("model_version", version),
		slog.Int64("delta_bytes", rep.DeltaBytes),
		slog.Bool("degraded", rep.Degraded),
		slog.Int("images_lost", rep.ImagesLost),
		slog.Duration("wall", rep.WallTime))
	if rep.Degraded {
		logger.Warn("round committed degraded",
			slog.Int("epoch", rc.epoch),
			slog.Any("failed_stores", rep.FailedStores),
			slog.Int("images_lost", rep.ImagesLost))
	}
	return rep, nil
}

// OfflineInference asks every store to relabel its shard with the current
// model and applies the results to the label database. It returns the
// aggregate refresh statistics (the Table 1 measurement). Like FineTune,
// it completes on the surviving quorum: labels from failed stores are
// simply refreshed in a later pass.
func (t *Node) OfflineInference(batch int) (labeldb.RefreshStats, error) {
	return t.OfflineInferenceTraced(telemetry.SpanContext{}, batch)
}

// OfflineInferenceTraced is OfflineInference inside a caller-provided
// trace context (an empty context mints a fresh trace); the per-store
// near-data inference spans ship back and nest under this span.
func (t *Node) OfflineInferenceTraced(parent telemetry.SpanContext, batch int) (labeldb.RefreshStats, error) {
	span := telemetry.Default.Spans().StartSpanIn(parent, "tuner.offline-inference")
	tc := span.Context()
	logger := t.log.With(telemetry.TraceAttrs(tc)...)
	defer func() {
		t.met.offlineInfer.Observe(span.End().Seconds())
	}()
	t.mu.Lock()
	version := t.version
	t.mu.Unlock()

	rc, err := t.beginRound(span, logger)
	if err != nil {
		return labeldb.RefreshStats{}, err
	}
	for _, sc := range rc.participants {
		req := &wire.Message{Type: wire.MsgInferRequest, BatchSize: batch, Epoch: rc.epoch,
			RingStores: rc.ring, LiveStores: rc.curLive, Replication: rc.replication}
		req.SetTraceContext(tc)
		if err := rc.sendWithRetry(sc, req); err != nil {
			rc.fail(sc, fmt.Errorf("tuner: requesting inference from %s: %w", sc.id, err))
		}
	}
	if len(rc.live) < rc.o.Quorum {
		return labeldb.RefreshStats{}, rc.quorumError("requesting inference")
	}

	agg := labeldb.RefreshStats{ModelVersion: version}
	pending := make(map[*storeConn]bool, len(rc.live))
	for sc := range rc.live {
		pending[sc] = true
	}
	labelTimer := time.NewTimer(rc.o.RoundTimeout)
	defer labelTimer.Stop()
	hb := time.NewTicker(heartbeatInterval(rc.o))
	defer hb.Stop()
	prune := func() {
		for sc := range pending {
			if !rc.live[sc] {
				delete(pending, sc)
			}
		}
	}
	for len(pending) > 0 {
		if len(rc.live) < rc.o.Quorum {
			return labeldb.RefreshStats{}, rc.quorumError("collecting labels")
		}
		select {
		case ev := <-t.inbox:
			rc.handle(ev, func(sc *storeConn, msg *wire.Message) {
				if msg.Type == wire.MsgLabels && pending[sc] {
					st := t.db.ApplyRefresh(msg.LabelsOut, version, msg.StoreID)
					agg.Total += st.Total
					agg.Changed += st.Changed
					delete(pending, sc)
					return
				}
				rc.t.met.staleMsgs.Inc()
			})
		case <-hb.C:
			rc.checkLiveness(func(sc *storeConn) bool { return pending[sc] })
		case <-labelTimer.C:
			return labeldb.RefreshStats{}, fmt.Errorf("tuner: round %d timed out waiting for labels after %v",
				rc.epoch, rc.o.RoundTimeout)
		}
		prune()
	}
	if len(rc.live) < rc.o.Quorum {
		return labeldb.RefreshStats{}, rc.quorumError("collecting labels")
	}
	if agg.Total > 0 {
		agg.FixedFrac = float64(agg.Changed) / float64(agg.Total)
	}
	// The pass is complete: snapshot the refreshed label DB so a restarted
	// tuner serves these labels rather than the previous pass's.
	if err := t.persistLabels(version, rc.epoch); err != nil {
		return labeldb.RefreshStats{}, err
	}
	logger.Info("offline inference complete",
		slog.Int("epoch", rc.epoch),
		slog.Int("relabeled", agg.Total),
		slog.Int("changed", agg.Changed),
		slog.Int("model_version", agg.ModelVersion),
		slog.Bool("degraded", len(rc.failed) > 0))
	if len(rc.failed) > 0 {
		logger.Warn("offline inference degraded",
			slog.Any("failed_stores", rc.failedSorted()))
	}
	return agg, nil
}
