// Replica support (S35). A hot-standby tuner tails the leader's WAL over
// the wire and materializes it into a state directory with the exact
// base.snap/tuner.wal layout persist.go writes — so takeover is nothing
// but the already-proven OpenState recovery path run against shipped
// bytes. The helpers here are the only doorway into the private on-disk
// formats: the leader packages a bootstrap Seed, the standby installs it
// and appends live records verbatim.
package tuner

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"ndpipe/internal/durable"
)

// Seed is the bootstrap a leader ships to a freshly attached standby: the
// delta chain's root plus every WAL record needed to reach the current
// version. Records are pre-encoded walRecord payloads — the standby writes
// them to its own log byte-for-byte, so leader and standby logs stay
// replay-identical.
type Seed struct {
	BaseVersion int
	RoundEpoch  int
	LeaderEpoch uint64
	Model       []byte   // nn.EncodeSnapshot of the classifier at BaseVersion
	Records     [][]byte // encoded walRecords for BaseVersion+1..latest
}

// ReplicaSeed snapshots the tuner's durable state as a bootstrap Seed.
func (t *Node) ReplicaSeed() (Seed, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	baseV := t.archive.Oldest()
	baseSnap, err := t.archive.Snapshot(baseV)
	if err != nil {
		return Seed{}, fmt.Errorf("tuner: replica seed base: %w", err)
	}
	s := Seed{
		BaseVersion: baseV,
		RoundEpoch:  t.epoch,
		LeaderEpoch: t.leaderEpoch.Load(),
		Model:       mustEncode(baseSnap),
	}
	for i, b := range t.archive.Blobs() {
		rec, err := encodeWAL(walRecord{Kind: walRound, Version: baseV + i + 1, Epoch: t.epoch,
			Leader: s.LeaderEpoch, Delta: b})
		if err != nil {
			return Seed{}, err
		}
		s.Records = append(s.Records, rec)
	}
	return s, nil
}

// WALInfo is the decoded view of one shipped WAL record — what a standby
// needs to maintain its in-memory replica (the raw payload is persisted
// verbatim; this is only for bookkeeping).
type WALInfo struct {
	Kind    int // walRound / walLabels / walLeader
	Version int
	Epoch   int
	Leader  uint64
	Delta   []byte // round records only
}

// IsRound reports whether the record carries a committed round's delta.
func (w WALInfo) IsRound() bool { return w.Kind == walRound }

// DecodeWALRecord parses an encoded walRecord payload.
func DecodeWALRecord(p []byte) (WALInfo, error) {
	var rec walRecord
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&rec); err != nil {
		return WALInfo{}, fmt.Errorf("tuner: undecodable wal record: %w", err)
	}
	return WALInfo(rec), nil
}

// InstallSeed materializes a bootstrap Seed into dir — base.snap first
// (atomic replace), then the WAL rewritten with the seed's records — and
// returns the open log positioned for live appends. The write order
// mirrors CompactState: a crash between the two steps leaves a consistent
// (if stale) state that OpenState recovers.
func InstallSeed(dir string, s Seed) (*durable.Log, error) {
	st := &nodeState{dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tuner: replica dir: %w", err)
	}
	if err := writeBase(st, baseSnap{Version: s.BaseVersion, Epoch: s.RoundEpoch,
		Leader: s.LeaderEpoch, Model: s.Model}); err != nil {
		return nil, err
	}
	wal, _, err := durable.Open(st.walPath(), nil, nil)
	if err != nil {
		return nil, fmt.Errorf("tuner: opening replica wal: %w", err)
	}
	if err := wal.Rewrite(s.Records); err != nil {
		wal.Close()
		return nil, fmt.Errorf("tuner: seeding replica wal: %w", err)
	}
	return wal, nil
}
