// End-to-end tests of the compressed delta wire path: a mixed fleet where
// stores negotiate different encodings in Hello, the per-store
// error-feedback streams, and the rebase-on-rejoin consistency rule.
package tuner

import (
	"math"
	"net"
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/nn"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/telemetry"
)

// clusterUpEnc is clusterUp with a per-store delta encoding, so tests can
// stand up a mixed dense/topk/int8 fleet.
func clusterUpEnc(t *testing.T, encs []delta.Encoding, seed int64) (*Node, []*pipestore.Node, *dataset.World, func()) {
	t.Helper()
	n := len(encs)
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(seed)
	wcfg.InitialImages = 2000
	world := dataset.NewWorld(wcfg)

	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, n) }()

	shards := world.Shard(n)
	var stores []*pipestore.Node
	for i := 0; i < n; i++ {
		ps, err := pipestore.New(storeID(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.SetDeltaEncoding(encs[i]); err != nil {
			t.Fatal(err)
		}
		if err := ps.Ingest(shards[i]); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		go func(ps *pipestore.Node, conn net.Conn) {
			_ = ps.Serve(conn)
		}(ps, conn)
		stores = append(stores, ps)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		tn.Close()
		ln.Close()
	}
	return tn, stores, world, cleanup
}

// snapMaxErr returns the largest per-element |a-b| across two snapshots.
func snapMaxErr(t *testing.T, a, b nn.Snapshot) float64 {
	t.Helper()
	var worst float64
	for k, ma := range a {
		mb, ok := b[k]
		if !ok || len(ma.Data) != len(mb.Data) {
			t.Fatalf("snapshot shape mismatch on %q", k)
		}
		for i := range ma.Data {
			if d := math.Abs(ma.Data[i] - mb.Data[i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestMixedFleetCompressedDeltas drives fine-tune rounds through a fleet
// where each store negotiated a different wire codec, and pins the central
// invariants:
//
//   - a dense store's classifier is bitwise the archive snapshot;
//   - a compressed store's classifier is bitwise what its compressor
//     believes it shipped (error feedback is computed against the peer's
//     true state);
//   - compressed replicas stay within a loose tolerance of the exact model;
//   - broadcast bytes are accounted per encoding, and the compressed
//     encodings ship fewer bytes than dense.
func TestMixedFleetCompressedDeltas(t *testing.T) {
	encs := []delta.Encoding{delta.EncodingDense, delta.EncodingTopK, delta.EncodingInt8}
	tn, stores, _, cleanup := clusterUpEnc(t, encs, 31)
	defer cleanup()

	before := map[delta.Encoding]int64{}
	for _, e := range encs {
		before[e] = deltaBytesByEnc(e).Value()
	}

	topkErr := []float64{}
	const rounds = 3
	for round := 1; round <= rounds; round++ {
		if _, err := tn.FineTune(2, 128, trainOpts()); err != nil {
			t.Fatal(err)
		}
		exact, err := tn.Archive().Snapshot(round)
		if err != nil {
			t.Fatal(err)
		}
		for i, ps := range stores {
			if ps.ModelVersion() != round {
				t.Fatalf("round %d: store %s at v%d", round, ps.ID, ps.ModelVersion())
			}
			got := ps.ClassifierSnapshot()
			switch encs[i] {
			case delta.EncodingDense:
				if !delta.SnapshotsEqual(got, exact, 0) {
					t.Fatalf("round %d: dense store %s diverged from the archive", round, ps.ID)
				}
			default:
				tn.mu.Lock()
				cs := tn.codecs[ps.ID]
				tn.mu.Unlock()
				if cs == nil || cs.version != round {
					t.Fatalf("round %d: no current compressor for %s", round, ps.ID)
				}
				if !delta.SnapshotsEqual(got, cs.comp.Shipped(), 0) {
					t.Fatalf("round %d: store %s state is not bitwise the compressor's shipped snapshot", round, ps.ID)
				}
				e := snapMaxErr(t, got, exact)
				switch encs[i] {
				case delta.EncodingInt8:
					// Int8 ships the whole residual each round; its error is
					// bounded by half the per-parameter quantization step.
					if e > 0.05 {
						t.Fatalf("round %d: int8 store %s is %g off the exact model", round, ps.ID, e)
					}
				case delta.EncodingTopK:
					// Top-k ships 1/topKDenom of the entries per round, so it
					// lags the exact model while the model is moving fast
					// (round 1 leaves random init); convergence is checked
					// across rounds below.
					topkErr = append(topkErr, e)
				}
			}
		}
	}

	// Error feedback: as training settles, the top-k stream drains its lag
	// instead of accumulating drift.
	if topkErr[rounds-1] >= topkErr[0] {
		t.Fatalf("topk tracking error did not shrink across rounds: %v", topkErr)
	}

	shipped := map[delta.Encoding]int64{}
	for _, e := range encs {
		shipped[e] = deltaBytesByEnc(e).Value() - before[e]
		if shipped[e] <= 0 {
			t.Fatalf("ndpipe_delta_bytes_total{encoding=%v} did not advance", e)
		}
	}
	for _, e := range []delta.Encoding{delta.EncodingTopK, delta.EncodingInt8} {
		if shipped[e] >= shipped[delta.EncodingDense] {
			t.Fatalf("%v shipped %dB, dense %dB — compression bought nothing",
				e, shipped[e], shipped[delta.EncodingDense])
		}
	}
}

// TestCompressedLateJoinerRebases: a compressed-encoding store joining after
// rounds have happened gets a dense rebase catch-up (an additive stream
// cannot start from unknown state), then rides its own compressed stream.
func TestCompressedLateJoinerRebases(t *testing.T) {
	encs := []delta.Encoding{delta.EncodingDense, delta.EncodingInt8}
	tn, _, world, cleanup := clusterUpEnc(t, encs, 32)
	defer cleanup()
	if _, err := tn.FineTune(1, 128, trainOpts()); err != nil {
		t.Fatal(err)
	}

	late, err := pipestore.New("late-store", core.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := late.SetDeltaEncoding(delta.EncodingInt8); err != nil {
		t.Fatal(err)
	}
	if err := late.Ingest(world.Images()[:50]); err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	accept := make(chan error, 1)
	go func() {
		conn, err := ln2.Accept()
		if err != nil {
			accept <- err
			return
		}
		accept <- tn.AddStore(conn)
	}()
	conn, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = late.Serve(conn) }()
	if err := <-accept; err != nil {
		t.Fatal(err)
	}

	if late.ModelVersion() != 1 {
		t.Fatalf("late joiner at v%d, want 1", late.ModelVersion())
	}
	// The catch-up must have been a dense rebase, recorded with the
	// negotiated encoding and surfaced to the flight recorder.
	cu := tn.LastCatchUp()
	if cu.StoreID != "late-store" || !cu.Rebase || cu.Bytes == 0 {
		t.Fatalf("catch-up record %+v, want a non-empty rebase for late-store", cu)
	}
	if cu.Encoding != "int8" {
		t.Fatalf("catch-up recorded encoding %q, want int8", cu.Encoding)
	}
	found := false
	for _, ev := range telemetry.Default.Flight().Events() {
		if ev.Kind == telemetry.FlightCatchUp && ev.Code == "late-store" &&
			ev.V1 == 1 && ev.V2 == int64(cu.Bytes) {
			found = true
		}
	}
	if !found {
		t.Fatal("catch-up flight event for late-store not recorded")
	}
	// The rebase landed the store on the exact snapshot.
	exact, err := tn.Archive().Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.SnapshotsEqual(late.ClassifierSnapshot(), exact, 0) {
		t.Fatal("rebase catch-up must land the store on the exact latest snapshot")
	}

	// Next round rides the compressed stream: version advances, and the
	// store's state is bitwise the compressor's shipped snapshot.
	if _, err := tn.FineTune(1, 128, trainOpts()); err != nil {
		t.Fatal(err)
	}
	if late.ModelVersion() != 2 {
		t.Fatalf("late joiner missed the compressed broadcast (v%d)", late.ModelVersion())
	}
	tn.mu.Lock()
	cs := tn.codecs["late-store"]
	tn.mu.Unlock()
	if cs == nil || cs.version != 2 {
		t.Fatalf("compressor for late-store not advanced: %+v", cs)
	}
	if !delta.SnapshotsEqual(late.ClassifierSnapshot(), cs.comp.Shipped(), 0) {
		t.Fatal("late store state is not bitwise the compressor's shipped snapshot")
	}
}

// TestCatchUpForStreamResume pins the one case where a compressed store's
// stream resumes without a rebase: the store rejoins holding exactly the
// version the compressor tracks.
func TestCatchUpForStreamResume(t *testing.T) {
	encs := []delta.Encoding{delta.EncodingInt8}
	tn, _, _, cleanup := clusterUpEnc(t, encs, 33)
	defer cleanup()
	if _, err := tn.FineTune(1, 128, trainOpts()); err != nil {
		t.Fatal(err)
	}
	id := storeID(0)

	// Same version on both sides: resume, nothing shipped.
	blob, to, rebase, err := tn.catchUpFor(id, delta.EncodingInt8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if blob != nil || to != 1 || rebase {
		t.Fatalf("resume shipped blob=%d to=%d rebase=%v, want nothing", len(blob), to, rebase)
	}

	// Version mismatch (store lost its state): dense rebase, fresh stream.
	blob, to, rebase, err = tn.catchUpFor(id, delta.EncodingInt8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil || to != 1 || !rebase {
		t.Fatalf("stale rejoin got blob=%d to=%d rebase=%v, want a rebase", len(blob), to, rebase)
	}
	// The fresh compressor is based at the exact latest snapshot.
	tn.mu.Lock()
	cs := tn.codecs[id]
	tn.mu.Unlock()
	exact, err := tn.Archive().Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.SnapshotsEqual(cs.comp.Shipped(), exact, 0) {
		t.Fatal("rebased compressor must start from the exact latest snapshot")
	}
}
