// Package tuner implements the Tuner node: the training server that
// orchestrates a fleet of PipeStores (§5). It triggers FT-DMP fine-tuning,
// gathers the feature batches the stores extract near their data, trains
// the classifier run by run (pipelined: stores keep extracting run r+1
// while the Tuner trains on run r), distributes the resulting Check-N-Run
// delta, and drives offline inference to refresh the label database.
package tuner

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/modelstore"
	"ndpipe/internal/nn"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
	"ndpipe/internal/wire"
)

// Node is the Tuner.
type Node struct {
	cfg      core.ModelConfig
	backbone *nn.Network

	// AcceptTimeout, when positive, bounds how long AcceptStores waits for
	// each PipeStore registration (the listener must support deadlines, as
	// *net.TCPListener does). Zero means wait forever.
	AcceptTimeout time.Duration

	mu      sync.Mutex
	clf     *nn.Network
	version int
	archive *modelstore.Store // every released version, as a delta chain
	stores  []*storeConn
	db      *labeldb.DB

	features chan *wire.Message
	acks     chan *wire.Message
	labels   chan *wire.Message
	errs     chan error

	met tunerMetrics
	log *slog.Logger
}

type storeConn struct {
	id    string
	codec *wire.Codec
	conn  net.Conn
	// lastRun tracks the highest pipelined run this store has finished
	// sending, so per-store extraction lag is visible while the Tuner
	// trains (run r trains while stores extract r+1).
	lastRun *telemetry.Gauge
}

// tunerMetrics holds the Tuner's instruments, registered once in New.
type tunerMetrics struct {
	stores       *telemetry.Gauge
	trainRounds  *telemetry.Counter
	featureBytes *telemetry.Counter
	deltaBytes   *telemetry.Counter
	modelVersion *telemetry.Gauge
	runTrain     *telemetry.Histogram
	fineTune     *telemetry.Histogram
	offlineInfer *telemetry.Histogram
}

func newTunerMetrics() tunerMetrics {
	reg := telemetry.Default
	return tunerMetrics{
		stores:       reg.Gauge("tuner_stores"),
		trainRounds:  reg.Counter("tuner_train_rounds_total"),
		featureBytes: reg.Counter("tuner_feature_bytes_total"),
		deltaBytes:   reg.Counter("tuner_delta_broadcast_bytes_total"),
		modelVersion: reg.Gauge("tuner_model_version"),
		runTrain:     reg.Histogram("tuner_run_train_seconds"),
		fineTune:     reg.Histogram("tuner_finetune_seconds"),
		offlineInfer: reg.Histogram("tuner_offline_inference_seconds"),
	}
}

// New creates a Tuner with the deterministic model replicas for cfg and a
// fresh label database.
func New(cfg core.ModelConfig) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Node{
		cfg:      cfg,
		backbone: cfg.NewBackbone(),
		clf:      cfg.NewClassifier(),
		db:       labeldb.New(),
		features: make(chan *wire.Message, 64),
		acks:     make(chan *wire.Message, 16),
		labels:   make(chan *wire.Message, 16),
		errs:     make(chan error, 16),
		met:      newTunerMetrics(),
		log:      telemetry.ComponentLogger("tuner"),
	}
	t.archive = modelstore.New(t.clf.TakeSnapshot())
	return t, nil
}

// Archive exposes the model-version store (read-only use).
func (t *Node) Archive() *modelstore.Store { return t.archive }

// DB exposes the label database.
func (t *Node) DB() *labeldb.DB { return t.db }

// ModelVersion returns the current classifier version.
func (t *Node) ModelVersion() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// NumStores returns how many PipeStores are registered.
func (t *Node) NumStores() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stores)
}

// Classifier returns the live classifier (callers must not train it
// concurrently with FineTune).
func (t *Node) Classifier() *nn.Network {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clf
}

// deadlineListener is implemented by listeners supporting accept deadlines
// (*net.TCPListener and friends).
type deadlineListener interface {
	SetDeadline(time.Time) error
}

// AcceptStores accepts exactly n PipeStore registrations on ln. With a
// positive AcceptTimeout and a deadline-capable listener, each registration
// must arrive within the timeout or AcceptStores returns an error instead of
// blocking forever on a store that never connects.
func (t *Node) AcceptStores(ln net.Listener, n int) error {
	dl, hasDeadline := ln.(deadlineListener)
	for i := 0; i < n; i++ {
		if t.AcceptTimeout > 0 && hasDeadline {
			if err := dl.SetDeadline(time.Now().Add(t.AcceptTimeout)); err != nil {
				return fmt.Errorf("tuner: setting accept deadline: %w", err)
			}
		}
		conn, err := ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return fmt.Errorf("tuner: no store registration within %v (%d of %d accepted): %w",
					t.AcceptTimeout, i, n, err)
			}
			return err
		}
		if t.AcceptTimeout > 0 && hasDeadline {
			// Clear the deadline so established connections are unaffected.
			if err := dl.SetDeadline(time.Time{}); err != nil {
				return fmt.Errorf("tuner: clearing accept deadline: %w", err)
			}
		}
		if err := t.AddStore(conn); err != nil {
			return err
		}
	}
	return nil
}

// AddStore registers a PipeStore connection (expects its Hello) and starts
// its reader.
func (t *Node) AddStore(conn net.Conn) error {
	codec := wire.NewCodec(conn)
	hello, err := codec.Recv()
	if err != nil {
		return fmt.Errorf("tuner: reading hello: %w", err)
	}
	if hello.Type != wire.MsgHello {
		return fmt.Errorf("tuner: expected hello, got %v", hello.Type)
	}
	sc := &storeConn{
		id: hello.StoreID, codec: codec, conn: conn,
		lastRun: telemetry.Default.Gauge(telemetry.Labeled("tuner_store_last_run", "store", hello.StoreID)),
	}
	sc.lastRun.Set(-1)
	// Late joiner: bring the store's classifier to the current version with
	// one composite catch-up delta before it enters the fleet.
	t.mu.Lock()
	version := t.version
	t.mu.Unlock()
	if version > 0 {
		blob, to, err := t.archive.CatchUp(0)
		if err != nil {
			return fmt.Errorf("tuner: catch-up for %s: %w", sc.id, err)
		}
		if err := codec.Send(&wire.Message{Type: wire.MsgModelDelta, Blob: blob, ModelVersion: to}); err != nil {
			return fmt.Errorf("tuner: sending catch-up to %s: %w", sc.id, err)
		}
		ack, err := codec.Recv()
		if err != nil || ack.Type != wire.MsgAck {
			return fmt.Errorf("tuner: catch-up ack from %s: %v (err %v)", sc.id, ack, err)
		}
	}
	t.mu.Lock()
	t.stores = append(t.stores, sc)
	nstores := len(t.stores)
	t.met.stores.Set(float64(nstores))
	t.mu.Unlock()
	t.log.Info("store registered", slog.String("store", sc.id), slog.Int("fleet", nstores))
	go t.readLoop(sc)
	return nil
}

// readLoop routes a store's messages to the Tuner's channels.
func (t *Node) readLoop(sc *storeConn) {
	for {
		msg, err := sc.codec.Recv()
		if err != nil {
			// Connection closed or corrupted: fail any outstanding
			// operation promptly rather than letting it time out.
			t.log.Debug("store disconnected", slog.String("store", sc.id), slog.Any("err", err))
			select {
			case t.errs <- fmt.Errorf("tuner: store %s disconnected: %w", sc.id, err):
			default:
			}
			return
		}
		switch msg.Type {
		case wire.MsgFeatures:
			if msg.Final {
				sc.lastRun.Set(float64(msg.Run))
			}
			t.features <- msg
		case wire.MsgAck:
			t.acks <- msg
		case wire.MsgLabels:
			t.labels <- msg
		case wire.MsgSpans:
			// The store's half of a distributed trace: stitch it into the
			// collector, where it joins the Tuner's own spans for the round.
			telemetry.Default.Traces().Add(msg.Spans...)
		case wire.MsgError:
			t.errs <- fmt.Errorf("tuner: store %s: %s", msg.StoreID, msg.Err)
		}
	}
}

// Report summarizes one fine-tuning round.
type Report struct {
	Trace        telemetry.TraceID // the round's distributed trace (see /traces)
	Images       int
	Runs         int
	Epochs       int
	WallTime     time.Duration
	FeatureBytes int64  // feature payload gathered over the network
	DeltaBytes   int64  // Check-N-Run broadcast size (per store)
	DeltaBlob    []byte // the broadcast itself (for further distribution,
	// e.g. to the online inference server)
	FullModelBytes int64 // what shipping whole models would have cost (per store)
	ModelVersion   int
}

// TrafficReduction is the Check-N-Run win for this round.
func (r Report) TrafficReduction() float64 {
	if r.DeltaBytes == 0 {
		return 0
	}
	return float64(r.FullModelBytes) / float64(r.DeltaBytes)
}

// FineTune runs one pipelined FT-DMP round over all registered stores and
// distributes the resulting model delta. Stores extract nrun sub-shards;
// the Tuner trains on run r as soon as every store finished sending it.
// The round runs under a fresh distributed trace (see FineTuneTraced).
func (t *Node) FineTune(nrun, batch int, opt ftdmp.TrainOptions) (Report, error) {
	return t.FineTuneTraced(telemetry.SpanContext{}, nrun, batch, opt)
}

// FineTuneTraced is FineTune inside a caller-provided trace context (an
// empty context mints a fresh trace). The round span parents both the
// Tuner's local train-run spans and — via the trace context carried in
// every MsgTrainRequest/MsgModelDelta envelope — the remote extraction and
// delta-apply spans each PipeStore records and ships back, so /traces
// shows the full Fig-6 decomposition of the round.
func (t *Node) FineTuneTraced(parent telemetry.SpanContext, nrun, batch int, opt ftdmp.TrainOptions) (Report, error) {
	start := time.Now()
	span := telemetry.Default.Spans().StartSpanIn(parent, "tuner.finetune")
	span.SetAttr("nrun", fmt.Sprint(nrun))
	tc := span.Context()
	logger := t.log.With(telemetry.TraceAttrs(tc)...)
	defer func() {
		t.met.fineTune.Observe(span.End().Seconds())
	}()
	if nrun < 1 {
		nrun = 1
	}
	t.mu.Lock()
	stores := append([]*storeConn(nil), t.stores...)
	clf := t.clf
	t.mu.Unlock()
	if len(stores) == 0 {
		return Report{}, fmt.Errorf("tuner: no PipeStores registered")
	}
	for _, sc := range stores {
		req := &wire.Message{Type: wire.MsgTrainRequest, Runs: nrun, BatchSize: batch}
		req.SetTraceContext(tc)
		if err := sc.codec.Send(req); err != nil {
			return Report{}, fmt.Errorf("tuner: requesting training from %s: %w", sc.id, err)
		}
	}
	logger.Debug("fine-tune round started", slog.Int("stores", len(stores)), slog.Int("nrun", nrun))

	rep := Report{Trace: tc.Trace, Runs: nrun}
	sgd := nn.NewSGD(opt.LR, opt.Momentum)
	type runBuf struct {
		rows   []float64
		labels []int
		finals int
	}
	bufs := make([]runBuf, nrun)
	cols := t.cfg.FeatureDim
	timeout := time.After(5 * time.Minute)
	for r := 0; r < nrun; r++ {
		// Gather run r (later-run batches may arrive early thanks to
		// pipelining; they are buffered by run index).
		for bufs[r].finals < len(stores) {
			select {
			case msg := <-t.features:
				if msg.Run < 0 || msg.Run >= nrun {
					return Report{}, fmt.Errorf("tuner: feature batch for bad run %d", msg.Run)
				}
				if msg.Cols != cols {
					return Report{}, fmt.Errorf("tuner: feature width %d, want %d", msg.Cols, cols)
				}
				b := &bufs[msg.Run]
				b.rows = append(b.rows, msg.X...)
				b.labels = append(b.labels, msg.Labels...)
				if msg.Final {
					b.finals++
				}
				rep.FeatureBytes += int64(len(msg.X)) * 8
				t.met.featureBytes.Add(int64(len(msg.X)) * 8)
			case err := <-t.errs:
				return Report{}, err
			case <-timeout:
				return Report{}, fmt.Errorf("tuner: timed out gathering run %d", r)
			}
		}
		// Tuner-stage: train on the gathered run.
		b := bufs[r]
		n := len(b.labels)
		if n == 0 {
			return Report{}, fmt.Errorf("tuner: run %d is empty", r)
		}
		batchData := &dataset.Batch{X: tensor.FromSlice(n, cols, b.rows), Labels: b.labels}
		runSpan := telemetry.Default.Spans().StartSpanIn(tc, "tuner.train-run")
		runSpan.SetAttr("run", fmt.Sprint(r))
		stats, err := trainOneRun(clf, sgd, batchData, opt)
		t.met.runTrain.Observe(runSpan.End().Seconds())
		if err != nil {
			return Report{}, err
		}
		rep.Epochs += stats
		rep.Images += n
		bufs[r] = runBuf{} // release
	}

	// Check-N-Run distribution: archive the new version and broadcast its
	// delta blob.
	t.mu.Lock()
	newSnap := clf.TakeSnapshot()
	blob, err := t.archive.Append(newSnap)
	if err != nil {
		t.mu.Unlock()
		return Report{}, err
	}
	t.version = t.archive.Latest()
	version := t.version
	t.mu.Unlock()

	rep.DeltaBytes = int64(len(blob))
	rep.DeltaBlob = blob
	// Naive distribution would ship the entire model — frozen backbone
	// included — to every store; Check-N-Run ships only the classifier
	// delta (§5, up to 427× smaller at ImageNet scale where the backbone
	// dwarfs the head).
	rep.FullModelBytes = newSnap.Bytes() + t.backbone.TakeSnapshot().Bytes()
	rep.ModelVersion = version
	for _, sc := range stores {
		msg := &wire.Message{Type: wire.MsgModelDelta, Blob: blob, ModelVersion: version}
		msg.SetTraceContext(tc)
		if err := sc.codec.Send(msg); err != nil {
			return Report{}, fmt.Errorf("tuner: distributing delta to %s: %w", sc.id, err)
		}
		t.met.deltaBytes.Add(int64(len(blob)))
	}
	for range stores {
		select {
		case <-t.acks:
		case err := <-t.errs:
			return Report{}, err
		case <-timeout:
			return Report{}, fmt.Errorf("tuner: timed out waiting for delta acks")
		}
	}
	rep.WallTime = time.Since(start)
	t.met.trainRounds.Inc()
	t.met.modelVersion.Set(float64(version))
	logger.Info("fine-tune round complete",
		slog.Int("images", rep.Images),
		slog.Int("model_version", version),
		slog.Int64("delta_bytes", rep.DeltaBytes),
		slog.Duration("wall", rep.WallTime))
	return rep, nil
}

// trainOneRun trains the classifier to the paper's convergence criterion on
// one run's features and returns the epochs used.
func trainOneRun(clf *nn.Network, sgd *nn.SGD, b *dataset.Batch, opt ftdmp.TrainOptions) (int, error) {
	stats, err := ftdmp.FineTuneRuns(clf, []*dataset.Batch{b}, opt)
	if err != nil {
		return 0, err
	}
	_ = sgd // optimizer state is run-local in FineTuneRuns
	return stats.TotalEpochs, nil
}

// OfflineInference asks every store to relabel its shard with the current
// model and applies the results to the label database. It returns the
// aggregate refresh statistics (the Table 1 measurement).
func (t *Node) OfflineInference(batch int) (labeldb.RefreshStats, error) {
	return t.OfflineInferenceTraced(telemetry.SpanContext{}, batch)
}

// OfflineInferenceTraced is OfflineInference inside a caller-provided
// trace context (an empty context mints a fresh trace); the per-store
// near-data inference spans ship back and nest under this span.
func (t *Node) OfflineInferenceTraced(parent telemetry.SpanContext, batch int) (labeldb.RefreshStats, error) {
	span := telemetry.Default.Spans().StartSpanIn(parent, "tuner.offline-inference")
	tc := span.Context()
	defer func() {
		t.met.offlineInfer.Observe(span.End().Seconds())
	}()
	t.mu.Lock()
	stores := append([]*storeConn(nil), t.stores...)
	version := t.version
	t.mu.Unlock()
	if len(stores) == 0 {
		return labeldb.RefreshStats{}, fmt.Errorf("tuner: no PipeStores registered")
	}
	for _, sc := range stores {
		req := &wire.Message{Type: wire.MsgInferRequest, BatchSize: batch}
		req.SetTraceContext(tc)
		if err := sc.codec.Send(req); err != nil {
			return labeldb.RefreshStats{}, err
		}
	}
	agg := labeldb.RefreshStats{ModelVersion: version}
	timeout := time.After(5 * time.Minute)
	for range stores {
		select {
		case msg := <-t.labels:
			st := t.db.ApplyRefresh(msg.LabelsOut, version, msg.StoreID)
			agg.Total += st.Total
			agg.Changed += st.Changed
		case err := <-t.errs:
			return labeldb.RefreshStats{}, err
		case <-timeout:
			return labeldb.RefreshStats{}, fmt.Errorf("tuner: timed out waiting for labels")
		}
	}
	if agg.Total > 0 {
		agg.FixedFrac = float64(agg.Changed) / float64(agg.Total)
	}
	t.log.With(telemetry.TraceAttrs(tc)...).Info("offline inference complete",
		slog.Int("relabeled", agg.Total),
		slog.Int("changed", agg.Changed),
		slog.Int("model_version", agg.ModelVersion))
	return agg, nil
}

// Evaluate measures the current model's top-1/top-k accuracy on raw-input
// test data (backbone + classifier).
func (t *Node) Evaluate(test *dataset.Batch, k int) (top1, topK float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	full := nn.Stack(t.backbone, t.clf)
	return nn.Accuracy(full, test.X, test.Labels, k)
}

// Close disconnects all stores.
func (t *Node) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sc := range t.stores {
		_ = sc.conn.Close()
	}
	t.stores = nil
	t.met.stores.Set(0)
}
