// Package tuner implements the Tuner node: the training server that
// orchestrates a fleet of PipeStores (§5). It triggers FT-DMP fine-tuning,
// gathers the feature batches the stores extract near their data, trains
// the classifier run by run (pipelined: stores keep extracting run r+1
// while the Tuner trains on run r), distributes the resulting Check-N-Run
// delta, and drives offline inference to refresh the label database.
//
// At the paper's scale — tens of cheap st1-backed stores per Tuner —
// partial failure is the common case, so rounds run a quorum protocol
// (see round.go): a store that dies, stalls, or misbehaves mid-round is
// evicted and the round completes degraded on the survivors; evicted
// stores rejoin through the AddStore catch-up path.
package tuner

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/modelstore"
	"ndpipe/internal/nn"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/wire"
)

// Node is the Tuner.
type Node struct {
	cfg      core.ModelConfig
	backbone *nn.Network

	// AcceptTimeout, when positive, bounds how long AcceptStores waits for
	// each PipeStore registration (the listener must support deadlines, as
	// *net.TCPListener does). Zero means wait forever.
	AcceptTimeout time.Duration

	mu      sync.Mutex
	clf     *nn.Network
	version int
	epoch   int               // round counter; stamps every request (staleness tag)
	rounds  RoundOptions      // quorum/timeout/retry policy, see SetRoundOptions
	archive *modelstore.Store // every released version, as a delta chain
	stores  []*storeConn
	db      *labeldb.DB

	// inbox is the single ordered stream of store events (messages and
	// disconnects). readLoop delivery is blocking — never dropped — so the
	// one disconnect signal of a dying store cannot be lost; the active
	// round drains the inbox and discards anything tagged with a stale
	// epoch.
	inbox     chan inbound
	done      chan struct{}
	closeOnce sync.Once

	// state is the crash-consistency layer (nil = in-memory only). Opened
	// by OpenState before rounds begin; every committed round journals to
	// its WAL before broadcast. See persist.go.
	state       *nodeState
	lastCatchUp CatchUpInfo

	// leaderEpoch is this tuner's leadership term, stamped on every
	// outbound message so stores can fence a deposed leader. Zero until
	// leadership is asserted (single-tuner deployments never assert and run
	// unfenced, exactly as before HA). Durable: recovered from the WAL by
	// OpenState, advanced only through AssertLeadership.
	leaderEpoch atomic.Uint64

	// repl, when set, ships every journaled WAL record to the hot standby
	// before the round proceeds (see journalRoundLocked's commit rule).
	// Guarded by mu.
	repl Replicator

	// Photo durability (S36), guarded by mu. replication is the placement
	// factor R (0 = replication off, legacy full-shard rounds); ringMembers
	// is the durable ring membership — every store that ever registered,
	// dead or alive, until Rebuild explicitly retires one. Membership must
	// outlive liveness: ownership is "first LIVE replica on the ring", so a
	// dead member has to stay on the ring for its photos to keep resolving
	// to the survivors that actually hold them.
	replication int
	ringMembers []string

	// codecs holds the per-store delta compressors for stores that
	// negotiated a compressed wire encoding in their Hello. Keyed by store ID
	// and retained across evictions, so a store that rejoins at exactly the
	// version its compressor tracks resumes the lossy stream without a
	// rebase. The map is guarded by mu; each Compressor itself is only
	// touched from the round/AddStore paths, never concurrently.
	codecs map[string]*storeCodec

	rngMu sync.Mutex
	rng   backoffRNG

	// fleet is the tuner-side half of the fleet observability plane: it
	// merges the registry snapshots stores piggy-back on round traffic
	// (MsgMetrics) and serves the exact fleet rollup at /fleet.
	fleet *telemetry.FleetAggregator

	met tunerMetrics
	log *slog.Logger
}

// inbound is one event from a store's read loop: a decoded message, or the
// terminal error that ended the connection (msg == nil).
type inbound struct {
	sc  *storeConn
	msg *wire.Message
	err error
}

// storeCodec is the tuner's view of one compressed-encoding store: the
// error-feedback compressor (which tracks the exact snapshot the store has
// reconstructed from everything shipped) and the model version that shipped
// state corresponds to. A version mismatch on rejoin means the stream broke
// mid-flight (e.g. a send failed after Compress advanced the state) and the
// store must be rebased.
type storeCodec struct {
	comp    *delta.Compressor
	enc     delta.Encoding
	version int
}

type storeConn struct {
	id    string
	codec *wire.Codec
	conn  net.Conn
	// enc is the delta wire encoding negotiated in the store's Hello
	// (EncodingDense for legacy peers).
	enc delta.Encoding
	// lastRun tracks the highest pipelined run this store has finished
	// sending, so per-store extraction lag is visible while the Tuner
	// trains (run r trains while stores extract r+1).
	lastRun *telemetry.Gauge
	// lastSeen is the unix-nano arrival time of the store's most recent
	// message (including pongs); the heartbeat check evicts stores whose
	// silence exceeds RoundOptions.StoreTimeout.
	lastSeen atomic.Int64
	// evicted latches once the Tuner removes the store from the fleet, so
	// duplicate failure signals (read error racing a heartbeat timeout)
	// evict only once.
	evicted atomic.Bool
}

// touch records message arrival for the liveness check.
func (sc *storeConn) touch() { sc.lastSeen.Store(time.Now().UnixNano()) }

// silence returns how long the store has been quiet.
func (sc *storeConn) silence() time.Duration {
	return time.Duration(time.Now().UnixNano() - sc.lastSeen.Load())
}

// tunerMetrics holds the Tuner's instruments, registered once in New.
type tunerMetrics struct {
	stores         *telemetry.Gauge
	trainRounds    *telemetry.Counter
	degradedRounds *telemetry.Counter
	evictions      *telemetry.Counter
	retries        *telemetry.Counter
	pings          *telemetry.Counter
	staleMsgs      *telemetry.Counter
	imagesLost     *telemetry.Counter
	featureBytes   *telemetry.Counter
	deltaBytes     *telemetry.Counter
	modelVersion   *telemetry.Gauge
	runTrain       *telemetry.Histogram
	fineTune       *telemetry.Histogram
	offlineInfer   *telemetry.Histogram

	// Fleet observability: straggler flags and per-round resource cost.
	stragglersSeen *telemetry.Counter
	roundCPU       *telemetry.Gauge
	roundAllocB    *telemetry.Gauge
	roundAllocN    *telemetry.Gauge
}

func newTunerMetrics() tunerMetrics {
	reg := telemetry.Default
	return tunerMetrics{
		stores:         reg.Gauge("tuner_stores"),
		trainRounds:    reg.Counter("tuner_train_rounds_total"),
		degradedRounds: reg.Counter("tuner_degraded_rounds_total"),
		evictions:      reg.Counter("tuner_store_evictions_total"),
		retries:        reg.Counter("tuner_send_retries_total"),
		pings:          reg.Counter("tuner_pings_sent_total"),
		staleMsgs:      reg.Counter("tuner_stale_msgs_total"),
		imagesLost:     reg.Counter("tuner_images_lost_total"),
		featureBytes:   reg.Counter("tuner_feature_bytes_total"),
		deltaBytes:     reg.Counter("tuner_delta_broadcast_bytes_total"),
		modelVersion:   reg.Gauge("tuner_model_version"),
		runTrain:       reg.Histogram("tuner_run_train_seconds"),
		fineTune:       reg.Histogram("tuner_finetune_seconds"),
		offlineInfer:   reg.Histogram("tuner_offline_inference_seconds"),
		stragglersSeen: reg.Counter("tuner_stragglers_total"),
		roundCPU:       reg.Gauge("tuner_round_cpu_seconds"),
		roundAllocB:    reg.Gauge("tuner_round_alloc_bytes"),
		roundAllocN:    reg.Gauge("tuner_round_alloc_objects"),
	}
}

// New creates a Tuner with the deterministic model replicas for cfg and a
// fresh label database.
func New(cfg core.ModelConfig) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Node{
		cfg:      cfg,
		backbone: cfg.NewBackbone(),
		clf:      cfg.NewClassifier(),
		db:       labeldb.New(),
		rounds:   DefaultRoundOptions(),
		inbox:    make(chan inbound, 256),
		done:     make(chan struct{}),
		codecs:   make(map[string]*storeCodec),
		fleet:    telemetry.NewFleetAggregator(telemetry.Default),
		met:      newTunerMetrics(),
		log:      telemetry.ComponentLogger("tuner"),
	}
	t.rng = newBackoffRNG(0)
	t.archive = modelstore.New(t.clf.TakeSnapshot())
	return t, nil
}

// Replicator ships one durable WAL record to a hot standby and returns
// once the standby has acknowledged it as locally durable (or immediately
// when no standby is attached). It is called with the tuner's mutex held
// and must not call back into the tuner.
type Replicator interface {
	Replicate(record []byte) error
}

// SetReplicator attaches (or detaches, with nil) the WAL-shipping hook.
// Install it before rounds start.
func (t *Node) SetReplicator(r Replicator) {
	t.mu.Lock()
	t.repl = r
	t.mu.Unlock()
}

// LeaderEpoch returns the tuner's current leadership term (0 = unfenced).
func (t *Node) LeaderEpoch() uint64 { return t.leaderEpoch.Load() }

// AssertLeadership durably adopts a leadership term strictly above both the
// tuner's own recovered term and `above` (the highest term observed
// elsewhere — e.g. by a standby on its replication stream). The assertion
// is journaled before it takes effect, so a restarted leader can never
// come back with a term it already ceded. Returns the new term.
func (t *Node) AssertLeadership(above uint64) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.leaderEpoch.Load()
	if above > e {
		e = above
	}
	e++
	if t.state != nil {
		rec, err := encodeWAL(walRecord{Kind: walLeader, Version: t.version, Epoch: t.epoch, Leader: e})
		if err != nil {
			return 0, err
		}
		if err := t.state.wal.Append(rec); err != nil {
			return 0, fmt.Errorf("tuner: journaling leadership epoch %d: %w", e, err)
		}
		if t.repl != nil {
			if err := t.repl.Replicate(rec); err != nil {
				return 0, fmt.Errorf("tuner: replicating leadership epoch %d: %w", e, err)
			}
		}
	}
	t.leaderEpoch.Store(e)
	telemetry.Default.Flight().Record(telemetry.FlightTakeover, "tuner", "", int64(e), int64(t.version))
	t.log.Info("leadership asserted", slog.Uint64("leader_epoch", e), slog.Int("version", t.version))
	return e, nil
}

// Archive exposes the model-version store (read-only use).
func (t *Node) Archive() *modelstore.Store { return t.archive }

// Fleet returns the tuner's fleet aggregator — mount it at /fleet with
// telemetry.WithFleet to expose the merged fleet view.
func (t *Node) Fleet() *telemetry.FleetAggregator { return t.fleet }

// DB exposes the label database.
func (t *Node) DB() *labeldb.DB { return t.db }

// ModelVersion returns the current classifier version.
func (t *Node) ModelVersion() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// NumStores returns how many PipeStores are registered.
func (t *Node) NumStores() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stores)
}

// Classifier returns the live classifier (callers must not train it
// concurrently with FineTune).
func (t *Node) Classifier() *nn.Network {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clf
}

// SetRoundOptions installs the fleet's fault-tolerance policy (quorum,
// per-store and per-phase timeouts, retry/backoff). Zero fields take the
// defaults; call before rounds start.
func (t *Node) SetRoundOptions(o RoundOptions) {
	o = o.WithDefaults()
	t.mu.Lock()
	t.rounds = o
	t.mu.Unlock()
	if o.Seed != 0 {
		t.rngMu.Lock()
		t.rng = newBackoffRNG(o.Seed)
		t.rngMu.Unlock()
	}
}

// RoundOptionsInEffect returns the active (defaulted) policy.
func (t *Node) RoundOptionsInEffect() RoundOptions {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rounds
}

// deadlineListener is implemented by listeners supporting accept deadlines
// (*net.TCPListener and friends).
type deadlineListener interface {
	SetDeadline(time.Time) error
}

// AcceptStores accepts exactly n PipeStore registrations on ln. With a
// positive AcceptTimeout and a deadline-capable listener, each registration
// must arrive within the timeout or AcceptStores returns an error instead of
// blocking forever on a store that never connects.
func (t *Node) AcceptStores(ln net.Listener, n int) error {
	dl, hasDeadline := ln.(deadlineListener)
	for i := 0; i < n; i++ {
		if t.AcceptTimeout > 0 && hasDeadline {
			if err := dl.SetDeadline(time.Now().Add(t.AcceptTimeout)); err != nil {
				return fmt.Errorf("tuner: setting accept deadline: %w", err)
			}
		}
		conn, err := ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return fmt.Errorf("tuner: no store registration within %v (%d of %d accepted): %w",
					t.AcceptTimeout, i, n, err)
			}
			return err
		}
		if t.AcceptTimeout > 0 && hasDeadline {
			// Clear the deadline so established connections are unaffected.
			if err := dl.SetDeadline(time.Time{}); err != nil {
				return fmt.Errorf("tuner: clearing accept deadline: %w", err)
			}
		}
		if err := t.AddStore(conn); err != nil {
			return err
		}
	}
	return nil
}

// AddStore registers a PipeStore connection (expects its Hello) and starts
// its reader. It is also the rejoin path: an evicted or restarted store
// reconnects here, receives one composite catch-up delta bringing its
// classifier to the current version, and is folded into the next round.
func (t *Node) AddStore(conn net.Conn) error {
	codec := wire.NewCodec(conn)
	hello, err := codec.Recv()
	if err != nil {
		return fmt.Errorf("tuner: reading hello: %w", err)
	}
	if hello.Type != wire.MsgHello {
		return fmt.Errorf("tuner: expected hello, got %v", hello.Type)
	}
	enc := delta.Encoding(hello.DeltaEncoding)
	if !enc.Valid() {
		// A codec from the future: serve the store dense rather than reject
		// it — legacy interop in the other direction.
		t.log.Warn("store advertised unknown delta encoding, falling back to dense",
			slog.String("store", hello.StoreID), slog.Int("encoding", int(hello.DeltaEncoding)))
		enc = delta.EncodingDense
	}
	sc := &storeConn{
		id: hello.StoreID, codec: codec, conn: conn, enc: enc,
		lastRun: telemetry.Default.Gauge(telemetry.Labeled("tuner_store_last_run", "store", hello.StoreID)),
	}
	sc.lastRun.Set(-1)
	sc.touch()
	// Late joiner: bring the store's classifier to the current version
	// before it enters the fleet. The Hello carries the store's persisted
	// version (0 for cold or pre-persistence stores), so a restarted store
	// gets only the delta for the rounds it missed — or nothing, if its
	// state is already current — instead of the full composite from v0.
	blob, to, rebase, err := t.catchUpFor(sc.id, enc, hello.ModelVersion)
	if err != nil {
		return fmt.Errorf("tuner: catch-up for %s: %w", sc.id, err)
	}
	t.mu.Lock()
	t.lastCatchUp = CatchUpInfo{StoreID: sc.id, From: hello.ModelVersion, To: to,
		Bytes: len(blob), Rebase: rebase, Encoding: enc.String()}
	t.mu.Unlock()
	telemetry.Default.Flight().Record(telemetry.FlightCatchUp, "tuner", sc.id, int64(to), int64(len(blob)))
	if blob != nil {
		if err := codec.Send(&wire.Message{Type: wire.MsgModelDelta, Blob: blob, ModelVersion: to,
			Rebase: rebase, LeaderEpoch: t.leaderEpoch.Load()}); err != nil {
			return fmt.Errorf("tuner: sending catch-up to %s: %w", sc.id, err)
		}
		ack, err := codec.Recv()
		// The store may piggy-back span or metrics shipments around the ack;
		// absorb them into their sinks rather than failing the catch-up.
		for err == nil && (ack.Type == wire.MsgSpans || ack.Type == wire.MsgMetrics) {
			switch ack.Type {
			case wire.MsgSpans:
				telemetry.Default.Traces().Add(ack.Spans...)
			case wire.MsgMetrics:
				t.fleet.Ship(sc.id, ack.MetricsSeq, ack.Metrics)
			}
			ack, err = codec.Recv()
		}
		if err != nil || ack.Type != wire.MsgAck {
			return fmt.Errorf("tuner: catch-up ack from %s: %v (err %v)", sc.id, ack, err)
		}
		sc.touch()
	}
	t.mu.Lock()
	t.stores = append(t.stores, sc)
	nstores := len(t.stores)
	t.met.stores.Set(float64(nstores))
	// Ring membership accumulates registrations and survives evictions; a
	// rejoining store is already a member.
	member := false
	for _, m := range t.ringMembers {
		if m == sc.id {
			member = true
			break
		}
	}
	if !member {
		t.ringMembers = append(t.ringMembers, sc.id)
	}
	t.mu.Unlock()
	t.log.Info("store registered", slog.String("store", sc.id), slog.Int("fleet", nstores))
	go t.readLoop(sc)
	return nil
}

// readLoop routes a store's messages into the Tuner's inbox. Pongs and
// span shipments are absorbed here (they only feed liveness and the trace
// collector); everything else — including the terminal disconnect error —
// is delivered losslessly to the active round.
func (t *Node) readLoop(sc *storeConn) {
	for {
		msg, err := sc.codec.Recv()
		if err != nil {
			t.log.Debug("store disconnected", slog.String("store", sc.id), slog.Any("err", err))
			t.deliver(inbound{sc: sc, err: fmt.Errorf("tuner: store %s disconnected: %w", sc.id, err)})
			return
		}
		sc.touch()
		switch msg.Type {
		case wire.MsgSpans:
			// The store's half of a distributed trace: stitch it into the
			// collector, where it joins the Tuner's own spans for the round.
			telemetry.Default.Traces().Add(msg.Spans...)
			continue
		case wire.MsgPong:
			// Liveness only; touch above already recorded it.
			continue
		case wire.MsgMetrics:
			// The store's registry snapshot for the fleet aggregator. The
			// shipment sequence number dedups retransmits and reordering.
			t.fleet.Ship(sc.id, msg.MetricsSeq, msg.Metrics)
			continue
		case wire.MsgFeatures:
			if msg.Final {
				sc.lastRun.Set(float64(msg.Run))
			}
		}
		t.deliver(inbound{sc: sc, msg: msg})
	}
}

// deliver blocks until the event is consumed (or the Tuner shuts down):
// the disconnect signal of a dying store must never be dropped on the
// floor, or a round would stall until its timeout instead of reacting.
func (t *Node) deliver(ev inbound) {
	select {
	case t.inbox <- ev:
	case <-t.done:
	}
}

// evict removes a store from the fleet and closes its connection. It is
// idempotent (the first caller wins) and reports whether this call did the
// eviction.
func (t *Node) evict(sc *storeConn, reason error, span *telemetry.Span) bool {
	if !sc.evicted.CompareAndSwap(false, true) {
		return false
	}
	_ = sc.conn.Close()
	t.mu.Lock()
	for i, s := range t.stores {
		if s == sc {
			t.stores = append(t.stores[:i], t.stores[i+1:]...)
			break
		}
	}
	nstores := len(t.stores)
	t.mu.Unlock()
	t.met.stores.Set(float64(nstores))
	t.met.evictions.Inc()
	telemetry.Default.Flight().Record(telemetry.FlightEvict, "tuner", sc.id, 0, 0)
	span.Event("evicted " + sc.id)
	t.log.Warn("store evicted",
		slog.String("store", sc.id),
		slog.Int("fleet", nstores),
		slog.Any("reason", reason))
	return true
}

// Report summarizes one fine-tuning round.
type Report struct {
	Trace        telemetry.TraceID // the round's distributed trace (see /traces)
	Images       int
	Runs         int
	Epochs       int
	WallTime     time.Duration
	FeatureBytes int64  // feature payload gathered over the network
	DeltaBytes   int64  // Check-N-Run broadcast size (per store)
	DeltaBlob    []byte // the broadcast itself (for further distribution,
	// e.g. to the online inference server)
	FullModelBytes int64 // what shipping whole models would have cost (per store)
	ModelVersion   int

	// Degraded-round accounting: the round committed without the full
	// fleet. FailedStores lists the stores evicted during the round (sorted),
	// ImagesLost counts feature rows they had contributed to runs that had
	// not been trained yet (discarded rather than half-trained).
	Degraded     bool
	FailedStores []string
	ImagesLost   int
	Participants int // stores that entered the round

	// Straggler detection: per-store, per-phase latencies for the round and
	// the stores flagged by the median+MAD rule (telemetry.FlagStragglers),
	// also exported as ndpipe_straggler{store=...} gauges.
	StoreStats map[string]StoreRoundStats
	Stragglers []string

	// Per-round resource accounting: the tuner process's CPU and allocation
	// cost of the round, plus total wire traffic during it.
	Resources    telemetry.ResourceDelta
	WireBytesIn  int64
	WireBytesOut int64
}

// StoreRoundStats is one store's observable cost within a round.
type StoreRoundStats struct {
	GatherSeconds float64 // request sent → last run's final feature batch
	AckSeconds    float64 // delta broadcast → ack received
	FeatureBytes  int64   // feature payload this store contributed
	Straggler     bool
}

// TrafficReduction is the Check-N-Run win for this round.
func (r Report) TrafficReduction() float64 {
	if r.DeltaBytes == 0 {
		return 0
	}
	return float64(r.FullModelBytes) / float64(r.DeltaBytes)
}

// trainOneRun trains the classifier to the paper's convergence criterion on
// one run's features and returns the epochs used.
func trainOneRun(clf *nn.Network, b *dataset.Batch, opt ftdmp.TrainOptions) (int, error) {
	stats, err := ftdmp.FineTuneRuns(clf, []*dataset.Batch{b}, opt)
	if err != nil {
		return 0, err
	}
	return stats.TotalEpochs, nil
}

// Evaluate measures the current model's top-1/top-k accuracy on raw-input
// test data (backbone + classifier).
func (t *Node) Evaluate(test *dataset.Batch, k int) (top1, topK float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	full := nn.Stack(t.backbone, t.clf)
	return nn.Accuracy(full, test.X, test.Labels, k)
}

// CatchUpInfo records the most recent AddStore catch-up — what the tuner
// shipped to bring a (re)joining store current. Bytes is 0 when the store's
// persisted version was already the latest (nothing sent).
type CatchUpInfo struct {
	StoreID string
	From    int
	To      int
	Bytes   int
	Rebase  bool
	// Encoding is the delta wire codec the store negotiated for subsequent
	// broadcasts ("dense", "topk", "int8"). The catch-up blob itself is
	// always dense — it must land the store on an exact snapshot.
	Encoding string
}

// LastCatchUp returns the most recent AddStore catch-up record.
func (t *Node) LastCatchUp() CatchUpInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastCatchUp
}

// catchUpFrom builds the minimal delta upgrading a store from the claimed
// version to the latest. A nil blob means the store is already current.
// Versions outside the archive's reconstructible range — hostile claims, or
// honest ones that predate a compaction's prune floor — fall back to a
// rebase delta: a diff from the deterministic initial classifier (which
// every store can reconstruct from cfg) to the latest snapshot.
func (t *Node) catchUpFrom(from int) (blob []byte, to int, rebase bool, err error) {
	latest := t.archive.Latest()
	if from == latest {
		return nil, latest, false, nil
	}
	if from >= t.archive.Oldest() && from < latest {
		blob, to, err = t.archive.CatchUp(from)
		return blob, to, false, err
	}
	end, err := t.archive.Snapshot(latest)
	if err != nil {
		return nil, 0, false, err
	}
	d, err := delta.Diff(t.cfg.NewClassifier().TakeSnapshot(), end, 0)
	if err != nil {
		return nil, 0, false, err
	}
	blob, err = d.Encode()
	if err != nil {
		return nil, 0, false, err
	}
	return blob, latest, true, nil
}

// catchUpFor is the encoding-aware catch-up: legacy stores take the plain
// catchUpFrom path; compressed-encoding stores get their error-feedback
// compressor resumed or rebuilt. A compressed store's additive stream only
// makes sense against the exact state its compressor tracks, so unless the
// store rejoins at precisely that state (same version on both sides), it is
// rebased: one dense delta to the exact latest snapshot, and a fresh
// compressor based there.
func (t *Node) catchUpFor(storeID string, enc delta.Encoding, from int) (blob []byte, to int, rebase bool, err error) {
	if enc == delta.EncodingDense {
		return t.catchUpFrom(from)
	}
	latest := t.archive.Latest()
	t.mu.Lock()
	cs := t.codecs[storeID]
	t.mu.Unlock()
	if cs != nil && cs.enc == enc && cs.version == latest && from == latest {
		// The store holds exactly the (lossy) state the compressor tracks:
		// resume the stream, nothing to ship.
		return nil, latest, false, nil
	}
	var base nn.Snapshot
	if cs == nil && from == 0 && latest == 0 {
		// Fresh store before any round: its state is the deterministic
		// initial classifier, exact by construction. Start the stream there.
		base = t.cfg.NewClassifier().TakeSnapshot()
	} else {
		// Rebase: a dense assign-delta lands the store on the exact latest
		// snapshot regardless of what lossy state it holds, and the new
		// compressor starts from that known-exact base.
		end, err := t.archive.Snapshot(latest)
		if err != nil {
			return nil, 0, false, err
		}
		d, err := delta.Diff(t.cfg.NewClassifier().TakeSnapshot(), end, 0)
		if err != nil {
			return nil, 0, false, err
		}
		blob, err = d.Encode()
		if err != nil {
			return nil, 0, false, err
		}
		base = end
		rebase = true
	}
	comp, err := delta.NewCompressor(enc, base)
	if err != nil {
		return nil, 0, false, err
	}
	t.mu.Lock()
	t.codecs[storeID] = &storeCodec{comp: comp, enc: enc, version: latest}
	t.mu.Unlock()
	return blob, latest, rebase, nil
}

// encodeDeltaFor picks a store's wire form of the freshly committed version:
// the shared dense blob for legacy stores, or the store's compressed
// error-feedback stream. Compress advances the tracked shipped state, so a
// send that fails after this call leaves cs.version ahead of the store's
// real version — exactly the mismatch catchUpFor detects on rejoin, which
// forces a rebase instead of a corrupting additive apply.
func (t *Node) encodeDeltaFor(sc *storeConn, target nn.Snapshot, version int, dense []byte) ([]byte, delta.Encoding, error) {
	if sc.enc == delta.EncodingDense {
		return dense, delta.EncodingDense, nil
	}
	t.mu.Lock()
	cs := t.codecs[sc.id]
	t.mu.Unlock()
	if cs == nil || cs.enc != sc.enc {
		return nil, 0, fmt.Errorf("tuner: store %s negotiated %v but has no tracked compressor", sc.id, sc.enc)
	}
	blob, err := cs.comp.Compress(target)
	if err != nil {
		return nil, 0, err
	}
	cs.version = version
	return blob, sc.enc, nil
}

// deltaBytesByEnc is the per-encoding broadcast byte counter
// (ndpipe_delta_bytes_total{encoding=...}).
func deltaBytesByEnc(enc delta.Encoding) *telemetry.Counter {
	return telemetry.Default.Counter(telemetry.Labeled("ndpipe_delta_bytes_total", "encoding", enc.String()))
}

// Close disconnects all stores and releases the state handles.
func (t *Node) Close() {
	t.closeOnce.Do(func() { close(t.done) })
	t.closeState()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sc := range t.stores {
		_ = sc.conn.Close()
	}
	t.stores = nil
	t.met.stores.Set(0)
}
