// Chaos tests: deterministic fault schedules (seeded faultinject wrappers,
// seeded kill/restart sequences) driving the quorum round protocol. They
// prove the three tentpole properties end to end: a round survives store
// death and commits degraded on the quorum, drops below quorum are hard
// errors that do not advance the model, and evicted stores rejoin through
// the catch-up path and participate in the next round.
package tuner

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/wire"
)

// chaosStore is one fleet member plus the handles chaos tests need: its
// client-side conn (possibly fault-wrapped) and its Serve exit channel.
type chaosStore struct {
	ps   *pipestore.Node
	conn net.Conn
	done chan error
}

// chaosClusterUp is clusterUp with knobs: world size and a per-store conn
// wrapper (the faultinject seam).
func chaosClusterUp(t *testing.T, nStores, images int, seed int64, wrap func(i int, c net.Conn) net.Conn) (*Node, []*chaosStore, *dataset.World, net.Listener) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(seed)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)

	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); tn.Close() })
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, nStores) }()

	shards := world.Shard(nStores)
	var stores []*chaosStore
	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(fmt.Sprintf("cs-%d", i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.Ingest(shards[i]); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if wrap != nil {
			conn = wrap(i, conn)
		}
		cs := &chaosStore{ps: ps, conn: conn, done: make(chan error, 1)}
		go func() { cs.done <- cs.ps.Serve(cs.conn) }()
		stores = append(stores, cs)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	return tn, stores, world, ln
}

// rejoin reconnects a dead store through the normal registration path (the
// Tuner-side catch-up protocol runs inside AddStore).
func rejoin(t *testing.T, tn *Node, ln net.Listener, cs *chaosStore, wrap func(net.Conn) net.Conn) {
	t.Helper()
	res := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			res <- err
			return
		}
		res <- tn.AddStore(conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	cs.conn = conn
	cs.done = make(chan error, 1)
	go func() { cs.done <- cs.ps.Serve(cs.conn) }()
	if err := <-res; err != nil {
		t.Fatalf("rejoin %s: %v", cs.ps.ID, err)
	}
}

func soakOpts() ftdmp.TrainOptions {
	o := ftdmp.DefaultTrainOptions()
	o.MaxEpochs = 4
	return o
}

func chaosRoundOptions() RoundOptions {
	return RoundOptions{
		Quorum:       2,
		StoreTimeout: 5 * time.Second,
		RoundTimeout: 60 * time.Second,
		MaxRetries:   2,
		Backoff:      5 * time.Millisecond,
		BackoffCap:   50 * time.Millisecond,
		Seed:         1,
	}
}

// One of three stores is killed mid-round by a deterministic fault (its
// conn drops after a fixed number of write ops — mid feature stream). With
// Quorum 2 the round must commit degraded on the survivors.
func TestQuorumRoundSurvivesStoreDeath(t *testing.T) {
	inj, err := faultinject.New(7, faultinject.Rule{Kind: faultinject.Drop, Op: faultinject.OpWrite, After: 20})
	if err != nil {
		t.Fatal(err)
	}
	victim := 2
	wrap := func(i int, c net.Conn) net.Conn {
		if i == victim {
			return inj.Conn(c)
		}
		return c
	}
	tn, stores, world, _ := chaosClusterUp(t, 3, 900, 41, wrap)
	tn.SetRoundOptions(chaosRoundOptions())

	rep, err := tn.FineTune(2, 64, soakOpts())
	if err != nil {
		t.Fatalf("round must survive one death with quorum 2: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("report must be marked degraded")
	}
	if len(rep.FailedStores) != 1 || rep.FailedStores[0] != stores[victim].ps.ID {
		t.Fatalf("FailedStores = %v, want [%s]", rep.FailedStores, stores[victim].ps.ID)
	}
	if rep.Participants != 3 {
		t.Fatalf("participants = %d, want 3", rep.Participants)
	}
	surv := stores[0].ps.NumImages() + stores[1].ps.NumImages()
	if rep.Images < surv {
		t.Fatalf("trained on %d images, survivors alone hold %d", rep.Images, surv)
	}
	if rep.Images+rep.ImagesLost > world.NumImages() {
		t.Fatalf("accounting overflow: trained %d + lost %d > world %d",
			rep.Images, rep.ImagesLost, world.NumImages())
	}
	if rep.ModelVersion != 1 || tn.ModelVersion() != 1 {
		t.Fatalf("degraded round must still commit v1, got report v%d tuner v%d", rep.ModelVersion, tn.ModelVersion())
	}
	// The victim was evicted from the fleet and its session torn down.
	if tn.NumStores() != 2 {
		t.Fatalf("fleet size %d after eviction, want 2", tn.NumStores())
	}
	select {
	case <-stores[victim].done:
	case <-time.After(10 * time.Second):
		t.Fatal("victim session did not terminate")
	}
	// Survivors installed the delta.
	for _, i := range []int{0, 1} {
		if v := stores[i].ps.ModelVersion(); v != 1 {
			t.Fatalf("survivor %s at v%d, want 1", stores[i].ps.ID, v)
		}
	}
}

// Two of three stores die mid-round: below Quorum 2 the round must return
// a hard error naming the casualties, and the model version must not
// advance.
func TestQuorumHardErrorBelowQuorum(t *testing.T) {
	wrap := func(i int, c net.Conn) net.Conn {
		if i == 0 {
			return c
		}
		inj, err := faultinject.New(int64(10+i), faultinject.Rule{Kind: faultinject.Drop, Op: faultinject.OpWrite, After: 20 + i})
		if err != nil {
			t.Fatal(err)
		}
		return inj.Conn(c)
	}
	tn, stores, _, _ := chaosClusterUp(t, 3, 600, 43, wrap)
	tn.SetRoundOptions(chaosRoundOptions())

	_, err := tn.FineTune(2, 64, soakOpts())
	if err == nil {
		t.Fatal("round below quorum must fail hard")
	}
	if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("error must cite the quorum: %v", err)
	}
	for _, cs := range stores[1:] {
		if !strings.Contains(err.Error(), cs.ps.ID) {
			t.Fatalf("error must name casualty %s: %v", cs.ps.ID, err)
		}
	}
	if tn.ModelVersion() != 0 {
		t.Fatalf("failed round must not commit, tuner at v%d", tn.ModelVersion())
	}
}

// An evicted store rejoins through AddStore, is caught up by a composite
// delta, and participates fully in the next round.
func TestEvictedStoreRejoins(t *testing.T) {
	inj, err := faultinject.New(3, faultinject.Rule{Kind: faultinject.Drop, Op: faultinject.OpWrite, After: 20})
	if err != nil {
		t.Fatal(err)
	}
	victim := 1
	wrap := func(i int, c net.Conn) net.Conn {
		if i == victim {
			return inj.Conn(c)
		}
		return c
	}
	tn, stores, world, ln := chaosClusterUp(t, 3, 900, 47, wrap)
	tn.SetRoundOptions(chaosRoundOptions())

	rep, err := tn.FineTune(2, 64, soakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || tn.NumStores() != 2 {
		t.Fatalf("setup: want a degraded round with one eviction (degraded=%v fleet=%d)", rep.Degraded, tn.NumStores())
	}
	select {
	case <-stores[victim].done:
	case <-time.After(10 * time.Second):
		t.Fatal("victim session did not terminate")
	}

	// Rejoin with a clean conn: the catch-up delta must land it on v1.
	rejoin(t, tn, ln, stores[victim], nil)
	if v := stores[victim].ps.ModelVersion(); v != 1 {
		t.Fatalf("rejoined store at v%d, want catch-up to 1", v)
	}
	if tn.NumStores() != 3 {
		t.Fatalf("fleet size %d after rejoin, want 3", tn.NumStores())
	}

	// Next round: full strength again.
	rep2, err := tn.FineTune(2, 64, soakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Degraded || rep2.Participants != 3 {
		t.Fatalf("post-rejoin round: degraded=%v participants=%d", rep2.Degraded, rep2.Participants)
	}
	if rep2.Images != world.NumImages() {
		t.Fatalf("post-rejoin round trained %d of %d images", rep2.Images, world.NumImages())
	}
	for _, cs := range stores {
		if cs.ps.ModelVersion() != 2 {
			t.Fatalf("store %s at v%d, want 2", cs.ps.ID, cs.ps.ModelVersion())
		}
	}
}

// A store that stays live (answers pings) but never delivers features must
// not be evicted by the silence detector — but the round's own per-phase
// timer must still fail the round.
func TestRoundTimeoutFailsRoundWhileStoreStaysLive(t *testing.T) {
	tn, ln := tunerWithListener(t)
	tn.SetRoundOptions(RoundOptions{
		Quorum:       1,
		StoreTimeout: 300 * time.Millisecond,
		RoundTimeout: 1200 * time.Millisecond,
		MaxRetries:   -1,
		Backoff:      time.Millisecond,
		Seed:         5,
	})
	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 1) }()
	fs := dialFake(t, tn, ln, "sleepy")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			msg, err := fs.codec.Recv()
			if err != nil {
				return
			}
			if msg.Type == wire.MsgPing {
				_ = fs.codec.Send(&wire.Message{Type: wire.MsgPong, StoreID: "sleepy", Epoch: msg.Epoch})
			}
			// ...but never any features.
		}
	}()
	start := time.Now()
	_, err := tn.FineTune(1, 64, trainOpts())
	if err == nil || !strings.Contains(err.Error(), "timed out gathering") {
		t.Fatalf("round must fail on its phase timer, got %v", err)
	}
	if el := time.Since(start); el < time.Second || el > 30*time.Second {
		t.Fatalf("round ended after %v, want ≈ the 1.2s round timeout", el)
	}
	// The pongs kept it alive: a round timeout is not the store's fault.
	if tn.NumStores() != 1 {
		t.Fatal("ping-answering store must not be evicted on a round timeout")
	}
}

// A message tagged with another round's epoch — even one that would
// otherwise be a protocol violation — is dropped, not acted on.
func TestStaleEpochMessageDropped(t *testing.T) {
	tn, ln := tunerWithListener(t)
	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 1) }()
	fs := dialFake(t, tn, ln, "time-traveler")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	cols := core.DefaultModelConfig().FeatureDim
	go func() {
		req, err := fs.codec.Recv()
		if err != nil {
			return
		}
		// Poison from a "previous round": wrong width, stale epoch. If the
		// epoch filter were broken this would fail the store (quorum 1 →
		// the whole round).
		_ = fs.codec.Send(&wire.Message{
			Type: wire.MsgFeatures, StoreID: "time-traveler",
			Run: 0, Rows: 1, Cols: 3, X: []float64{1, 2, 3}, Labels: []int{9}, Epoch: 99,
		})
		// The real contribution, correctly tagged.
		_ = fs.codec.Send(&wire.Message{
			Type: wire.MsgFeatures, StoreID: "time-traveler",
			Run: 0, Rows: 1, Cols: cols, X: make([]float64, cols), Labels: []int{0},
			Final: true, Epoch: req.Epoch,
		})
		for {
			msg, err := fs.codec.Recv()
			if err != nil {
				return
			}
			switch msg.Type {
			case wire.MsgPing:
				_ = fs.codec.Send(&wire.Message{Type: wire.MsgPong, StoreID: "time-traveler", Epoch: msg.Epoch})
			case wire.MsgModelDelta:
				_ = fs.codec.Send(&wire.Message{Type: wire.MsgAck, StoreID: "time-traveler", Epoch: msg.Epoch})
				return
			}
		}
	}()
	rep, err := tn.FineTune(1, 64, trainOpts())
	if err != nil {
		t.Fatalf("stale-tagged poison must be ignored: %v", err)
	}
	if rep.Degraded || rep.Images != 1 {
		t.Fatalf("round saw through the filter: %+v", rep)
	}
}

// Seeded soak: 3 stores whose connections carry deterministic drop faults,
// 10 rounds with kill/restart churn. Properties: the model version is
// monotone, advances exactly on committed rounds, never on failed ones,
// and the fleet always recovers to full strength via rejoin.
func TestChaosSoakSeededKillRestart(t *testing.T) {
	const (
		nStores = 3
		rounds  = 10
	)
	rng := rand.New(rand.NewSource(99))
	nextInjector := func() *faultinject.Injector {
		inj, err := faultinject.New(rng.Int63n(1<<30)+1, faultinject.Rule{
			Kind: faultinject.Drop,
			Op:   faultinject.OpWrite,
			// Floor 32: gob's first Encode spends ~15 writes on type
			// descriptors (the Message type graph includes the telemetry
			// snapshot types) and the first command piggy-backs one metrics
			// shipment, so lower thresholds can kill the hello/catch-up
			// handshake itself instead of mid-round traffic.
			After: 35 + int(rng.Int63n(40)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	wrap := func(i int, c net.Conn) net.Conn { return nextInjector().Conn(c) }
	tn, stores, world, ln := chaosClusterUp(t, nStores, 300, 53, wrap)
	tn.SetRoundOptions(RoundOptions{
		Quorum:       2,
		StoreTimeout: 5 * time.Second,
		RoundTimeout: 60 * time.Second,
		MaxRetries:   1,
		Backoff:      time.Millisecond,
		BackoffCap:   10 * time.Millisecond,
		Seed:         99,
	})
	opts := soakOpts()
	opts.MaxEpochs = 2

	committed := 0
	for round := 0; round < rounds; round++ {
		// Restart every store whose session died (evicted last round). A
		// fresh conn gets a fresh deterministic fault schedule.
		for _, cs := range stores {
			select {
			case <-cs.done:
				rejoin(t, tn, ln, cs, nextInjector().Conn)
			default:
			}
		}
		if tn.NumStores() != nStores {
			t.Fatalf("round %d: fleet at %d/%d after rejoin sweep", round, tn.NumStores(), nStores)
		}
		before := tn.ModelVersion()
		rep, err := tn.FineTune(2, 64, opts)
		after := tn.ModelVersion()
		if after < before {
			t.Fatalf("round %d: version went backwards %d → %d", round, before, after)
		}
		if err != nil {
			if !strings.Contains(err.Error(), "quorum") && !strings.Contains(err.Error(), "timed out") {
				t.Fatalf("round %d: unexpected failure mode: %v", round, err)
			}
			if after != before {
				t.Fatalf("round %d: failed round moved the version %d → %d", round, before, after)
			}
			continue
		}
		committed++
		if after != before+1 {
			t.Fatalf("round %d: committed round moved version %d → %d, want +1", round, before, after)
		}
		if rep.Images+rep.ImagesLost > world.NumImages() {
			t.Fatalf("round %d: accounting overflow (%d trained + %d lost > %d)",
				round, rep.Images, rep.ImagesLost, world.NumImages())
		}
		if rep.Degraded && len(rep.FailedStores) == 0 {
			t.Fatalf("round %d: degraded without casualties: %+v", round, rep)
		}
	}
	if committed == 0 {
		t.Fatal("soak committed no rounds at all")
	}
	if tn.ModelVersion() != committed {
		t.Fatalf("final version %d, want %d committed rounds", tn.ModelVersion(), committed)
	}
	t.Logf("soak: %d/%d rounds committed, final model v%d", committed, rounds, tn.ModelVersion())
}
