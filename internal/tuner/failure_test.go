// Failure-injection tests: the Tuner must surface PipeStore failures
// promptly instead of hanging or silently training on partial data.
package tuner

import (
	"net"
	"strings"
	"testing"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/wire"
)

// fakeStore registers with the tuner but misbehaves on command.
type fakeStore struct {
	conn  net.Conn
	codec *wire.Codec
}

func dialFake(t *testing.T, tn *Node, ln net.Listener, id string) *fakeStore {
	t.Helper()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewCodec(conn)
	if err := c.Send(&wire.Message{Type: wire.MsgHello, StoreID: id}); err != nil {
		t.Fatal(err)
	}
	return &fakeStore{conn: conn, codec: c}
}

func tunerWithListener(t *testing.T) (*Node, net.Listener) {
	t.Helper()
	tn, err := New(core.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); tn.Close() })
	return tn, ln
}

func TestStoreDisconnectMidTrainingFailsFast(t *testing.T) {
	tn, ln := tunerWithListener(t)
	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 1) }()
	fs := dialFake(t, tn, ln, "flaky")
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The fake store waits for the training request, then dies.
	go func() {
		_, _ = fs.codec.Recv()
		fs.conn.Close()
	}()

	start := time.Now()
	_, err := tn.FineTune(2, 64, trainOpts())
	if err == nil {
		t.Fatal("fine-tune must fail when the only store dies")
	}
	if !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("error should name the disconnect: %v", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatalf("failure took %v; must surface promptly", time.Since(start))
	}
}

func TestStoreErrorMessagePropagates(t *testing.T) {
	tn, ln := tunerWithListener(t)
	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 1) }()
	fs := dialFake(t, tn, ln, "broken")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = fs.codec.Recv()
		_ = fs.codec.Send(&wire.Message{Type: wire.MsgError, StoreID: "broken", Err: "disk on fire"})
	}()
	_, err := tn.FineTune(1, 64, trainOpts())
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("store error must propagate, got %v", err)
	}
}

func TestBadRunIndexRejected(t *testing.T) {
	tn, ln := tunerWithListener(t)
	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 1) }()
	fs := dialFake(t, tn, ln, "confused")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = fs.codec.Recv()
		_ = fs.codec.Send(&wire.Message{
			Type: wire.MsgFeatures, StoreID: "confused",
			Run: 99, Rows: 1, Cols: core.DefaultModelConfig().FeatureDim,
			X: make([]float64, core.DefaultModelConfig().FeatureDim), Labels: []int{0}, Final: true,
		})
	}()
	if _, err := tn.FineTune(1, 64, trainOpts()); err == nil {
		t.Fatal("out-of-range run index must be rejected")
	}
}

func TestWrongFeatureWidthRejected(t *testing.T) {
	tn, ln := tunerWithListener(t)
	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 1) }()
	fs := dialFake(t, tn, ln, "narrow")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = fs.codec.Recv()
		_ = fs.codec.Send(&wire.Message{
			Type: wire.MsgFeatures, StoreID: "narrow",
			Run: 0, Rows: 1, Cols: 3, X: []float64{1, 2, 3}, Labels: []int{0}, Final: true,
		})
	}()
	if _, err := tn.FineTune(1, 64, trainOpts()); err == nil {
		t.Fatal("wrong feature width must be rejected")
	}
}

func TestAddStoreRejectsNonHello(t *testing.T) {
	tn, ln := tunerWithListener(t)
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		errCh <- tn.AddStore(conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewCodec(conn)
	if err := c.Send(&wire.Message{Type: wire.MsgAck}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("non-hello first message must be rejected")
	}
}

func TestAcceptStoresTimesOutInsteadOfHanging(t *testing.T) {
	tn, ln := tunerWithListener(t)
	tn.AcceptTimeout = 100 * time.Millisecond

	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 1) }() // nobody ever connects
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("AcceptStores returned nil without any store connecting")
		}
		if !strings.Contains(err.Error(), "no store registration within") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcceptStores hung despite AcceptTimeout")
	}
}

func TestAcceptStoresDeadlineClearedForLateStores(t *testing.T) {
	tn, ln := tunerWithListener(t)
	tn.AcceptTimeout = 2 * time.Second

	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 1) }()
	// A store that connects inside the window registers normally.
	dialFake(t, tn, ln, "on-time")
	if err := <-done; err != nil {
		t.Fatalf("store inside the window rejected: %v", err)
	}
	if tn.NumStores() != 1 {
		t.Fatalf("stores = %d, want 1", tn.NumStores())
	}
}
