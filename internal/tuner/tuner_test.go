// End-to-end tests of the distributed NDPipe prototype: real PipeStore and
// Tuner nodes exchanging features, deltas and labels over TCP on loopback.
package tuner

import (
	"net"
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
)

// cluster spins up a Tuner and n connected PipeStores holding shards of a
// fresh world, all over loopback TCP.
func clusterUp(t *testing.T, n int, seed int64) (*Node, []*pipestore.Node, *dataset.World, func()) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(seed)
	wcfg.InitialImages = 2000
	world := dataset.NewWorld(wcfg)

	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, n) }()

	shards := world.Shard(n)
	var stores []*pipestore.Node
	for i := 0; i < n; i++ {
		ps, err := pipestore.New(storeID(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.Ingest(shards[i]); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		go func(ps *pipestore.Node, conn net.Conn) {
			_ = ps.Serve(conn)
		}(ps, conn)
		stores = append(stores, ps)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		tn.Close()
		ln.Close()
	}
	return tn, stores, world, cleanup
}

func storeID(i int) string { return string(rune('A'+i)) + "-store" }

func trainOpts() ftdmp.TrainOptions {
	o := ftdmp.DefaultTrainOptions()
	o.MaxEpochs = 25
	return o
}

func TestEndToEndFineTuneImprovesAccuracy(t *testing.T) {
	tn, stores, world, cleanup := clusterUp(t, 3, 21)
	defer cleanup()

	test := world.FreshTestSet(600)
	before, _ := tn.Evaluate(test, 5)

	rep, err := tn.FineTune(2, 128, trainOpts())
	if err != nil {
		t.Fatal(err)
	}
	after, _ := tn.Evaluate(test, 5)
	if after <= before+0.1 {
		t.Fatalf("fine-tune should lift accuracy well above the random init: %.3f → %.3f", before, after)
	}
	if rep.Images != world.NumImages() {
		t.Fatalf("trained on %d images, world has %d", rep.Images, world.NumImages())
	}
	if rep.ModelVersion != 1 {
		t.Fatalf("model version %d, want 1", rep.ModelVersion)
	}
	// Every store must have installed the delta.
	for _, ps := range stores {
		if ps.ModelVersion() != 1 {
			t.Fatalf("store %s at version %d", ps.ID, ps.ModelVersion())
		}
	}
	// Check-N-Run: the delta beats shipping the whole model (backbone
	// included). At ImageNet scale the backbone dwarfs the head and the
	// reduction reaches the paper's orders of magnitude; at this laptop
	// scale the win is modest but must exist.
	if rep.TrafficReduction() <= 1.2 {
		t.Fatalf("delta (%d B) should clearly beat the full model (%d B)",
			rep.DeltaBytes, rep.FullModelBytes)
	}
	if rep.FeatureBytes == 0 || rep.Epochs == 0 {
		t.Fatalf("suspicious report: %+v", rep)
	}
}

func TestOfflineInferenceRefreshesLabels(t *testing.T) {
	tn, _, world, cleanup := clusterUp(t, 2, 22)
	defer cleanup()

	// Label everything with the (untrained) v0 model.
	st0, err := tn.OfflineInference(128)
	if err != nil {
		t.Fatal(err)
	}
	if st0.Total != world.NumImages() {
		t.Fatalf("labeled %d of %d", st0.Total, world.NumImages())
	}
	if tn.DB().Len() != world.NumImages() {
		t.Fatalf("db has %d entries", tn.DB().Len())
	}

	// Fine-tune, then refresh: a meaningful share of labels must be fixed
	// (Table 1's outdated-label phenomenon).
	if _, err := tn.FineTune(1, 128, trainOpts()); err != nil {
		t.Fatal(err)
	}
	st1, err := tn.OfflineInference(128)
	if err != nil {
		t.Fatal(err)
	}
	if st1.FixedFrac < 0.05 {
		t.Fatalf("new model fixed only %.1f%% of labels", st1.FixedFrac*100)
	}
	if tn.DB().OutdatedCount(tn.ModelVersion()) != 0 {
		t.Fatal("refresh must leave no outdated labels")
	}
	// Labels assigned by the trained model should mostly match ground truth.
	correct, total := 0, 0
	for _, img := range world.Images() {
		e, err := tn.DB().Get(img.ID)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if e.Label == img.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.5 {
		t.Fatalf("offline-inference label accuracy %.3f too low", acc)
	}
}

func TestPipelinedRunsDeliverSameModelEverywhere(t *testing.T) {
	tn, stores, _, cleanup := clusterUp(t, 3, 23)
	defer cleanup()
	if _, err := tn.FineTune(3, 64, trainOpts()); err != nil {
		t.Fatal(err)
	}
	// All stores and the tuner agree on the classifier bit-for-bit: verify
	// through identical offline-inference labels from two stores over the
	// same synthetic input (indirect check via versions + a second round).
	for _, ps := range stores {
		if ps.ModelVersion() != tn.ModelVersion() {
			t.Fatalf("store %s version %d != tuner %d", ps.ID, ps.ModelVersion(), tn.ModelVersion())
		}
	}
	// A second round must advance versions consistently.
	if _, err := tn.FineTune(2, 64, trainOpts()); err != nil {
		t.Fatal(err)
	}
	if tn.ModelVersion() != 2 {
		t.Fatalf("tuner version %d, want 2", tn.ModelVersion())
	}
	for _, ps := range stores {
		if ps.ModelVersion() != 2 {
			t.Fatalf("store %s missed the second delta", ps.ID)
		}
	}
}

func TestFineTuneWithoutStoresFails(t *testing.T) {
	tn, err := New(core.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.FineTune(1, 128, trainOpts()); err == nil {
		t.Fatal("fine-tune with no stores must fail")
	}
	if _, err := tn.OfflineInference(128); err == nil {
		t.Fatal("inference with no stores must fail")
	}
}

func TestInvalidModelConfig(t *testing.T) {
	bad := core.DefaultModelConfig()
	bad.Classes = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	if _, err := pipestore.New("x", bad); err == nil {
		t.Fatal("pipestore must reject invalid config")
	}
}

// TestLateJoinerCatchesUp: a PipeStore connecting after fine-tuning rounds
// have happened receives one composite catch-up delta and lands on the
// current version immediately.
func TestLateJoinerCatchesUp(t *testing.T) {
	tn, stores, world, cleanup := clusterUp(t, 2, 25)
	defer cleanup()
	if _, err := tn.FineTune(1, 128, trainOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.FineTune(2, 128, trainOpts()); err != nil {
		t.Fatal(err)
	}
	if tn.ModelVersion() != 2 || tn.Archive().Latest() != 2 {
		t.Fatalf("tuner at v%d, archive at v%d", tn.ModelVersion(), tn.Archive().Latest())
	}

	// A brand-new store joins at version 0.
	late, err := pipestore.New("late-store", core.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Ingest(world.Images()[:50]); err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	accept := make(chan error, 1)
	go func() {
		conn, err := ln2.Accept()
		if err != nil {
			accept <- err
			return
		}
		accept <- tn.AddStore(conn)
	}()
	conn, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = late.Serve(conn) }()
	if err := <-accept; err != nil {
		t.Fatal(err)
	}
	if late.ModelVersion() != 2 {
		t.Fatalf("late joiner at v%d, want 2", late.ModelVersion())
	}
	// And it participates in the next round like everyone else.
	if _, err := tn.FineTune(1, 128, trainOpts()); err != nil {
		t.Fatal(err)
	}
	if late.ModelVersion() != 3 {
		t.Fatalf("late joiner missed the next delta (v%d)", late.ModelVersion())
	}
	for _, ps := range stores {
		if ps.ModelVersion() != 3 {
			t.Fatalf("original store %s at v%d", ps.ID, ps.ModelVersion())
		}
	}
}
