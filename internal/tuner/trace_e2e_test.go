package tuner

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ndpipe/internal/telemetry"
)

// findIn walks a subtree depth-first for the first node matching pred.
func findIn(n *telemetry.TraceNode, pred func(*telemetry.TraceNode) bool) *telemetry.TraceNode {
	if pred(n) {
		return n
	}
	for _, c := range n.Children {
		if m := findIn(c, pred); m != nil {
			return m
		}
	}
	return nil
}

// The tracing acceptance test: one Tuner and two PipeStores over loopback
// TCP run a full FT-DMP round, and /traces must return a SINGLE trace whose
// tree nests each store's NPE stage spans (the Fig-6 phases read, preproc,
// fecl) under the Tuner's round span. The stores get private tracers, so
// their spans can only have reached the Tuner's collector by traveling in
// MsgSpans envelopes over the wire — this proves propagation, shipping and
// stitching end to end.
func TestDistributedTraceAcrossStores(t *testing.T) {
	tn, stores, _, cleanup := clusterUp(t, 2, 33)
	defer cleanup()
	for _, ps := range stores {
		ps.SetTracer(telemetry.NewTracer(1024))
	}

	rep, err := tn.FineTune(2, 128, trainOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == 0 {
		t.Fatal("fine-tune report carries no trace ID")
	}

	srv := httptest.NewServer(telemetry.Default.Handler())
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("%s/traces?trace=%s", srv.URL, rep.Trace))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var trees []*telemetry.TraceTree
	if err := json.NewDecoder(resp.Body).Decode(&trees); err != nil {
		t.Fatalf("decode /traces: %v", err)
	}
	if len(trees) != 1 {
		t.Fatalf("/traces returned %d trees for the round, want exactly 1", len(trees))
	}
	tree := trees[0]
	if tree.TraceID != rep.Trace {
		t.Fatalf("tree trace = %s, want %s", tree.TraceID, rep.Trace)
	}

	round := tree.Find(func(n *telemetry.TraceNode) bool { return n.Name == "tuner.finetune" })
	if round == nil {
		t.Fatal("tuner.finetune round span missing from trace tree")
	}
	for _, ps := range stores {
		extract := findIn(round, func(n *telemetry.TraceNode) bool {
			return n.Name == "pipestore.extract" && n.AttrValue("store") == ps.ID
		})
		if extract == nil {
			t.Fatalf("store %s has no pipestore.extract span under the round", ps.ID)
		}
		for _, stage := range []string{"read", "preproc", "fecl"} {
			s := findIn(extract, func(n *telemetry.TraceNode) bool { return n.Name == stage })
			if s == nil {
				t.Fatalf("store %s: stage span %q missing under its extract span", ps.ID, stage)
			}
			if s.Trace != rep.Trace {
				t.Fatalf("store %s stage %s is in trace %s, want %s", ps.ID, stage, s.Trace, rep.Trace)
			}
		}
	}

	// The JSONL export streams the same spans one record per line.
	resp2, err := http.Get(fmt.Sprintf("%s/traces?trace=%s&format=jsonl", srv.URL, rep.Trace))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var lines int
	dec := json.NewDecoder(resp2.Body)
	seen := map[string]bool{}
	for dec.More() {
		var rec telemetry.SpanRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("jsonl line %d: %v", lines, err)
		}
		seen[rec.Name] = true
		lines++
	}
	if lines != tree.SpanCount {
		t.Fatalf("jsonl export has %d records, tree has %d spans", lines, tree.SpanCount)
	}
	for _, want := range []string{"tuner.finetune", "pipestore.extract", "read", "preproc", "fecl"} {
		if !seen[want] {
			t.Fatalf("jsonl export missing span %q (have %s)", want, strings.Join(keys(seen), ", "))
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// A delta broadcast and offline inference continue the same trace: the
// stores' apply-delta and offline-infer spans land in the round's trace too
// when the caller threads one parent context through both phases.
func TestTraceSpansOfflineInference(t *testing.T) {
	tn, stores, _, cleanup := clusterUp(t, 2, 34)
	defer cleanup()
	for _, ps := range stores {
		ps.SetTracer(telemetry.NewTracer(1024))
	}
	root := telemetry.Default.Spans().StartTrace("test.round")
	tc := root.Context()
	if _, err := tn.FineTuneTraced(tc, 1, 128, trainOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OfflineInferenceTraced(tc, 128); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := telemetry.Default.Traces().Tree(tc.Trace)
	if tree == nil {
		t.Fatal("round trace missing from collector")
	}
	for _, want := range []string{"tuner.finetune", "tuner.offline-inference",
		"pipestore.apply-delta", "pipestore.offline-infer"} {
		if tree.Find(func(n *telemetry.TraceNode) bool { return n.Name == want }) == nil {
			t.Fatalf("span %q missing from the round trace", want)
		}
	}
	// Both stores shipped their offline-infer spans into the one trace.
	for _, ps := range stores {
		found := tree.Find(func(n *telemetry.TraceNode) bool {
			return n.Name == "pipestore.offline-infer" && n.AttrValue("store") == ps.ID
		})
		if found == nil {
			t.Fatalf("store %s offline-infer span missing", ps.ID)
		}
	}
}
