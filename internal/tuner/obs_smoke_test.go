// Observability smoke (make obs-smoke): real tuner + PipeStore fleets over
// loopback TCP, asserted through the same HTTP surface an operator scrapes.
// TestObsSmokeFleetRollup boots a tuner + 2 stores and checks the /fleet
// merged view (shipped per-store series, exact rollups, flight recorder,
// health endpoints); TestObsSmokeStragglerFlag boots 4 stores (the
// median+MAD rule needs >=3 for a meaningful median) with one delayed
// connection and checks the straggler is flagged — in the round report and
// in the exported gauge — within a single round.
package tuner

import (
	"fmt"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/telemetry"
)

// obsFleetUp boots a tuner + nStores PipeStores over loopback. Every store
// gets a private registry (as a separate process would have) and ships its
// metrics after every command, so /fleet is fresh after one round. wrap, if
// non-nil, wraps store i's client conn (the fault-injection seam).
func obsFleetUp(t *testing.T, nStores, images int, wrap func(i int, c net.Conn) net.Conn) (*Node, []string) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(11)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)

	tn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); tn.Close() })
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, nStores) }()

	shards := world.Shard(nStores)
	ids := make([]string, nStores)
	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(fmt.Sprintf("obs-%d", i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = ps.ID
		ps.SetRegistry(telemetry.NewRegistry())
		ps.SetMetricsInterval(0)
		if err := ps.Ingest(shards[i]); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if wrap != nil {
			conn = wrap(i, conn)
		}
		go func(ps *pipestore.Node, conn net.Conn) { _ = ps.Serve(conn) }(ps, conn)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	return tn, ids
}

// fleetText scrapes /fleet through the full registry handler (the same mux
// the daemons mount) and returns the text exposition.
func fleetText(t *testing.T, tn *Node, path string) (int, string) {
	t.Helper()
	h := telemetry.Default.Handler(telemetry.WithFleet(tn.Fleet()))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// metricValue finds `name <value>` in a text exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("bad value for %s: %q", name, line)
		}
		return v
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

func obsTrainOpts() ftdmp.TrainOptions {
	o := ftdmp.DefaultTrainOptions()
	o.MaxEpochs = 5
	return o
}

func TestObsSmokeFleetRollup(t *testing.T) {
	const nStores, images = 2, 300
	tn, ids := obsFleetUp(t, nStores, images, nil)
	if _, err := tn.FineTune(2, 128, obsTrainOpts()); err != nil {
		t.Fatal(err)
	}

	code, body := fleetText(t, tn, "/fleet")
	if code != 200 {
		t.Fatalf("/fleet = %d", code)
	}
	// Every store's shipped series appears with its store label, and the
	// fleet: rollup is the exact sum across shipments.
	var sum float64
	for _, id := range ids {
		sum += metricValue(t, body, fmt.Sprintf("pipestore_images_ingested_total{store=%q}", id))
	}
	if sum != float64(images) {
		t.Fatalf("per-store ingested sums to %v, want %d", sum, images)
	}
	if got := metricValue(t, body, "fleet:pipestore_images_ingested_total"); got != sum {
		t.Fatalf("fleet rollup = %v, want exact sum %v", got, sum)
	}
	// The tuner's local series (including the per-store straggler gauges,
	// refreshed every round) ride along after the fleet view.
	for _, id := range ids {
		if v := metricValue(t, body, fmt.Sprintf("ndpipe_straggler{store=%q}", id)); v != 0 {
			t.Fatalf("store %s flagged straggler in a healthy fleet", id)
		}
	}

	// Health contract: liveness always 200, readiness 200 (no failing checks
	// registered here), and the flight recorder carries the round events.
	if code, _ := fleetText(t, tn, "/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := fleetText(t, tn, "/readyz"); code != 200 {
		t.Fatalf("/readyz = %d", code)
	}
	code, flight := fleetText(t, tn, "/flightrec")
	if code != 200 || !strings.Contains(flight, telemetry.FlightRoundCommit) {
		t.Fatalf("/flightrec (%d) missing %s:\n%s", code, telemetry.FlightRoundCommit, flight)
	}
}

func TestObsSmokeStragglerFlag(t *testing.T) {
	const nStores, victim = 4, 3
	tn, ids := obsFleetUp(t, nStores, 400, func(i int, c net.Conn) net.Conn {
		if i != victim {
			return c
		}
		inj, err := faultinject.New(11, faultinject.Rule{
			Kind: faultinject.Delay, Op: faultinject.OpWrite,
			After: 1, Prob: 1, Delay: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj.Conn(c)
	})
	rep, err := tn.FineTune(2, 128, obsTrainOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stragglers) != 1 || rep.Stragglers[0] != ids[victim] {
		t.Fatalf("stragglers = %v, want [%s]", rep.Stragglers, ids[victim])
	}
	_, body := fleetText(t, tn, "/fleet")
	if v := metricValue(t, body, fmt.Sprintf("ndpipe_straggler{store=%q}", ids[victim])); v != 1 {
		t.Fatalf("ndpipe_straggler{store=%q} = %v, want 1", ids[victim], v)
	}
	for i, id := range ids {
		if i == victim {
			continue
		}
		if v := metricValue(t, body, fmt.Sprintf("ndpipe_straggler{store=%q}", id)); v != 0 {
			t.Fatalf("healthy store %s flagged", id)
		}
	}
}
