package faultinject

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// pipePair returns both ends of an in-memory conn with the client side
// fault-wrapped.
func pipePair(t *testing.T, in *Injector) (faulty, peer net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return in.Conn(a), b
}

func TestDropAfterNWrites(t *testing.T) {
	in, err := New(1, Rule{Kind: Drop, Op: OpWrite, After: 3})
	if err != nil {
		t.Fatal(err)
	}
	faulty, peer := pipePair(t, in)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	msg := []byte("hello")
	for i := 1; i <= 2; i++ {
		if _, err := faulty.Write(msg); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if _, err := faulty.Write(msg); err == nil {
		t.Fatal("third write must fail: drop scheduled at after=3")
	}
	// The conn is gone for good; reads fail too.
	if _, err := faulty.Read(make([]byte, 1)); err == nil {
		t.Fatal("reads after a drop must fail")
	}
}

func TestDropCountsOnlySelectedOps(t *testing.T) {
	in, err := New(1, Rule{Kind: Drop, Op: OpWrite, After: 2})
	if err != nil {
		t.Fatal(err)
	}
	faulty, peer := pipePair(t, in)
	// Reads must not advance the write counter.
	go func() { peer.Write([]byte("x")) }()
	if _, err := faulty.Read(make([]byte, 1)); err != nil {
		t.Fatalf("read: %v", err)
	}
	go func() { io_discard(peer) }()
	if _, err := faulty.Write([]byte("a")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := faulty.Write([]byte("b")); err == nil {
		t.Fatal("second write should trigger the drop")
	}
}

func io_discard(c net.Conn) {
	buf := make([]byte, 64)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	in, err := New(7, Rule{Kind: Corrupt, Op: OpWrite, After: 1, Once: true})
	if err != nil {
		t.Fatal(err)
	}
	faulty, peer := pipePair(t, in)
	payload := bytes.Repeat([]byte{0x42}, 32)
	got := make([]byte, len(payload))
	done := make(chan error, 1)
	go func() {
		_, err := faulty.Write(payload)
		done <- err
	}()
	if _, err := peer.Read(got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range payload {
		if payload[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes, want exactly 1", diff)
	}
	// The caller's buffer must stay pristine (corruption copies).
	if !bytes.Equal(payload, bytes.Repeat([]byte{0x42}, 32)) {
		t.Fatal("corrupt mutated the caller's buffer")
	}
}

func TestBlackholeSwallowsWritesAndHangsReads(t *testing.T) {
	in, err := New(1, Rule{Kind: Blackhole, After: 1})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _ := pipePair(t, in)
	// Writes claim success without a peer reading anything (net.Pipe is
	// unbuffered, so a real write would block forever here).
	if n, err := faulty.Write([]byte("vanish")); err != nil || n != 6 {
		t.Fatalf("blackholed write = (%d, %v), want (6, nil)", n, err)
	}
	// Reads hang until close.
	readDone := make(chan error, 1)
	go func() {
		_, err := faulty.Read(make([]byte, 1))
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("blackholed read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	faulty.Close()
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("read after close must error")
		}
	case <-time.After(time.Second):
		t.Fatal("read did not unblock on close")
	}
}

func TestDelayIsDeterministicForSeed(t *testing.T) {
	run := func() time.Duration {
		in, err := New(99, Rule{Kind: Delay, Op: OpWrite, After: 1, Prob: 1, Delay: time.Millisecond, Jitter: 4 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		faulty, peer := pipePair(t, in)
		go io_discard(peer)
		start := time.Now()
		for i := 0; i < 3; i++ {
			if _, err := faulty.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	a, b := run(), run()
	// Identical seeds draw identical jitter; wall-clock noise stays well
	// under the 3ms+jitter floor each run must sleep.
	if a < 3*time.Millisecond || b < 3*time.Millisecond {
		t.Fatalf("delays not applied: %v, %v", a, b)
	}
	if diff := a - b; diff < -5*time.Millisecond || diff > 5*time.Millisecond {
		t.Fatalf("seeded runs diverged: %v vs %v", a, b)
	}
}

func TestListenerWrapsEachConnIndependently(t *testing.T) {
	in, err := New(1, Rule{Kind: Drop, Op: OpWrite, After: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fln := in.Listener(ln)
	for i := 0; i < 2; i++ {
		client, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		server, err := fln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		go io_discard(client)
		// Every accepted conn gets a fresh counter: the first write works,
		// the second drops — on both conns.
		if _, err := server.Write([]byte("a")); err != nil {
			t.Fatalf("conn %d first write: %v", i, err)
		}
		if _, err := server.Write([]byte("b")); err == nil {
			t.Fatalf("conn %d second write must drop", i)
		}
		client.Close()
		server.Close()
	}
}

func TestParseSpec(t *testing.T) {
	in, err := Parse("seed=42; drop:write,after=5; delay:prob=0.25,ms=10,jitter=5; corrupt:after=9,once; blackhole:after=12")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 42 {
		t.Fatalf("seed = %d, want 42", in.Seed())
	}
	if len(in.rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(in.rules))
	}
	want := []Rule{
		{Kind: Drop, Op: OpWrite, After: 5},
		{Kind: Delay, Prob: 0.25, Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond},
		{Kind: Corrupt, After: 9, Once: true},
		{Kind: Blackhole, After: 12},
	}
	for i, w := range want {
		if in.rules[i] != w {
			t.Fatalf("rule %d = %+v, want %+v", i, in.rules[i], w)
		}
	}
}

func TestParseEmptyAndInvalid(t *testing.T) {
	if in, err := Parse(""); in != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{
		"explode:after=1",     // unknown kind
		"drop",                // no trigger
		"drop:after=-1",       // negative threshold
		"delay:prob=2,ms=1",   // probability out of range
		"delay:after=1",       // delay with no duration
		"drop:after=1,flux=3", // unknown parameter
		"seed=abc",            // bad seed
		"seed=1",              // seed but no faults
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted invalid spec", bad)
		}
	}
}

func TestProbabilisticFiringIsSeedStable(t *testing.T) {
	fires := func(seed int64) []int {
		in, err := New(seed, Rule{Kind: Delay, Op: OpWrite, Prob: 0.5, Delay: time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		faulty, peer := pipePair(t, in)
		go io_discard(peer)
		before := in.fired.Value()
		var out []int
		for i := 0; i < 20; i++ {
			if _, err := faulty.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			out = append(out, int(in.fired.Value()-before))
		}
		return out
	}
	a, b := fires(1234), fires(1234)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded firing schedules diverged at op %d: %v vs %v", i, a, b)
		}
	}
	if a[len(a)-1] == 0 || a[len(a)-1] == 20 {
		t.Fatalf("prob=0.5 over 20 ops fired %d times; schedule looks degenerate", a[len(a)-1])
	}
}

func TestDroppedErrorIsNotTimeout(t *testing.T) {
	var ne net.Error
	if !errors.As(error(droppedError{}), &ne) || ne.Timeout() {
		t.Fatal("droppedError must be a non-timeout net.Error-shaped failure")
	}
	if !strings.Contains(droppedError{}.Error(), "dropped") {
		t.Fatal("error text should name the drop")
	}
}

func TestBlackholeInHangsReadsPassesWrites(t *testing.T) {
	in, err := New(1, Rule{Kind: BlackholeIn, After: 1})
	if err != nil {
		t.Fatal(err)
	}
	faulty, peer := pipePair(t, in)
	// Reads hang (first matching op fires the rule)...
	readDone := make(chan error, 1)
	go func() {
		_, err := faulty.Read(make([]byte, 1))
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("blackholed-in read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// ...while writes still reach the peer.
	got := make([]byte, 3)
	go func() { faulty.Write([]byte("out")) }()
	if _, err := peer.Read(got); err != nil || string(got) != "out" {
		t.Fatalf("write through blackhole-in = %q, %v; want to pass", got, err)
	}
	faulty.Close()
	if err := <-readDone; err == nil {
		t.Fatal("read after close must error")
	}
}

func TestBlackholeOutSwallowsWritesPassesReads(t *testing.T) {
	in, err := New(1, Rule{Kind: BlackholeOut, After: 1})
	if err != nil {
		t.Fatal(err)
	}
	faulty, peer := pipePair(t, in)
	// Writes vanish: net.Pipe is unbuffered, so a transmitted write with no
	// reader would block forever — instant success proves the swallow.
	if n, err := faulty.Write([]byte("vanish")); err != nil || n != 6 {
		t.Fatalf("blackholed-out write = (%d, %v), want (6, nil)", n, err)
	}
	// Reads still flow: the peer looks alive while our acks go nowhere.
	go func() { peer.Write([]byte("in")) }()
	got := make([]byte, 2)
	if _, err := faulty.Read(got); err != nil || string(got) != "in" {
		t.Fatalf("read through blackhole-out = %q, %v; want to pass", got, err)
	}
}

func TestPartitionStallsThenHeals(t *testing.T) {
	in, err := New(1, Rule{Kind: Partition, Op: OpWrite, After: 2, Delay: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	faulty, peer := pipePair(t, in)
	go io_discard(peer)
	if _, err := faulty.Write([]byte("a")); err != nil {
		t.Fatalf("pre-partition write: %v", err)
	}
	// The second write triggers the split and rides it out: it must stall
	// for roughly the partition window, then deliver intact.
	start := time.Now()
	if _, err := faulty.Write([]byte("b")); err != nil {
		t.Fatalf("partitioned write: %v", err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("partitioned write completed in %v, want ~80ms stall", d)
	}
	// Healed: subsequent ops run at full speed again.
	start = time.Now()
	if _, err := faulty.Write([]byte("c")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("post-heal write took %v, partition did not heal", d)
	}
}

func TestPartitionStallsBothDirections(t *testing.T) {
	// An Op-less partition rule covers reads and writes alike.
	in, err := New(1, Rule{Kind: Partition, After: 1, Delay: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	faulty, peer := pipePair(t, in)
	go func() { peer.Write([]byte("x")) }()
	start := time.Now()
	if _, err := faulty.Read(make([]byte, 1)); err != nil {
		t.Fatalf("partitioned read: %v", err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("partitioned read completed in %v, want ~60ms stall", d)
	}
}

func TestParseDirectionalAndPartitionSpecs(t *testing.T) {
	in, err := Parse("blackhole-in:after=3; blackhole-out:after=4,write; partition:after=5,ms=250")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: BlackholeIn, After: 3},
		{Kind: BlackholeOut, Op: OpWrite, After: 4},
		{Kind: Partition, After: 5, Delay: 250 * time.Millisecond},
	}
	if len(in.rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(in.rules), len(want))
	}
	for i, w := range want {
		if in.rules[i] != w {
			t.Fatalf("rule %d = %+v, want %+v", i, in.rules[i], w)
		}
	}
	// Partition without a healing time is rejected.
	if _, err := Parse("partition:after=1"); err == nil {
		t.Fatal("partition with no ms= must be rejected")
	}
}
