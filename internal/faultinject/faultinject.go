// Package faultinject is a deterministic network-fault layer for chaos
// testing the NDPipe fleet. An Injector wraps net.Conn / net.Listener and
// perturbs the byte stream according to a seeded, schedulable rule set:
// dropping the connection after the N-th operation, delaying operations
// with jitter, corrupting frames, or blackholing a direction entirely
// (writes vanish, reads hang — the silent partition a heartbeat must
// catch). Rules fire either at a fixed operation count (one-shot) or
// probabilistically per operation; all randomness flows from one seeded
// generator, so a fault schedule replays identically run after run.
//
// The same layer serves both in-process tests (wrap one end of a
// net.Pipe or a dialed TCP conn) and end-to-end chaos runs: the daemons
// accept a -fault-spec flag parsed by Parse, e.g.
//
//	pipestore -fault-spec 'seed=7;drop:write,after=40'
//	tuner     -fault-spec 'seed=7;delay:prob=0.05,ms=20,jitter=10'
//
// An operation is one Read or Write call on the wrapped conn. The gob
// codec issues a small, deterministic number of writes per message, so
// "drop after N write ops" is a stable way to kill a store mid-round.
package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"ndpipe/internal/telemetry"
)

// Op selects which conn operations a rule applies to.
type Op uint8

// Operation directions.
const (
	OpRead  Op = 1 << iota // fault Read calls
	OpWrite                // fault Write calls
	OpBoth  = OpRead | OpWrite
)

// Kind is the fault a rule injects.
type Kind uint8

// Fault kinds.
const (
	// Drop closes the connection at the triggering operation; the op (and
	// everything after it) fails with a "connection dropped" error.
	Drop Kind = iota + 1
	// Delay sleeps Delay ± uniform Jitter before the operation proceeds.
	Delay
	// Corrupt flips one byte of the frame (seeded position) — writes are
	// corrupted before hitting the wire, reads after leaving it — which a
	// gob peer surfaces as a decode error.
	Corrupt
	// Blackhole partitions the direction: writes report success without
	// transmitting and reads block until the conn is closed. The peer sees
	// pure silence, not a reset.
	Blackhole
	// BlackholeIn silences only the inbound half: reads block until the
	// conn is closed while writes keep flowing. The wrapped side keeps
	// talking into the void — the asymmetric partition that makes a peer
	// look alive to us while we look dead to it.
	BlackholeIn
	// BlackholeOut silences only the outbound half: writes report success
	// without transmitting while reads keep flowing. Heartbeats from the
	// peer still arrive; our acks never leave.
	BlackholeOut
	// Partition stalls both directions for Delay (ms=N in the spec), then
	// heals: operations block — interruptibly — until the healing time and
	// then proceed with the stream intact, like a TCP conn riding out a
	// transient network split on retransmissions. The peer sees silence
	// for the window, so lease/heartbeat timeouts shorter than it fire.
	Partition
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	case Blackhole:
		return "blackhole"
	case BlackholeIn:
		return "blackhole-in"
	case BlackholeOut:
		return "blackhole-out"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule schedules one fault. The zero Op means OpBoth. With After > 0 and
// Prob == 0 the rule fires exactly at the After-th matching operation
// (one-shot). With Prob > 0 it fires each matching operation with that
// probability, becoming eligible only after the After-th op; set Once to
// fire at most one time. Drop and Blackhole are terminal for the conn and
// are implicitly one-shot.
type Rule struct {
	Kind   Kind
	Op     Op
	After  int           // operation count threshold (1-based; 0 = every op eligible)
	Prob   float64       // per-op probability (0 = deterministic at After)
	Once   bool          // fire at most once even when probabilistic
	Delay  time.Duration // Delay kind: base sleep
	Jitter time.Duration // Delay kind: uniform extra sleep in [0, Jitter)
}

func (r Rule) validate() error {
	switch r.Kind {
	case Drop, Delay, Corrupt, Blackhole, BlackholeIn, BlackholeOut, Partition:
	default:
		return fmt.Errorf("faultinject: rule has no kind")
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("faultinject: probability %v outside [0,1]", r.Prob)
	}
	if r.After < 0 {
		return fmt.Errorf("faultinject: negative after=%d", r.After)
	}
	if r.After == 0 && r.Prob == 0 {
		// A deterministic rule with no threshold would fire on op 1;
		// make that explicit rather than accidental.
		return fmt.Errorf("faultinject: %s rule needs after=N or prob=P", r.Kind)
	}
	if r.Kind == Delay && r.Delay <= 0 && r.Jitter <= 0 {
		return fmt.Errorf("faultinject: delay rule needs ms or jitter")
	}
	if r.Kind == Partition && r.Delay <= 0 {
		return fmt.Errorf("faultinject: partition rule needs ms=N (healing time)")
	}
	return nil
}

// Injector owns a seeded fault schedule and wraps conns/listeners with it.
// Each wrapped conn gets independent per-rule operation counters (so every
// store accepted through one listener sees the same schedule), while all
// randomness is drawn from the injector's single seeded source — the whole
// chaos run replays deterministically for a fixed seed and op order.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	seed  int64

	fired *telemetry.Counter
}

// New builds an injector with the given seed and schedule. Seed 0 is
// replaced by 1 so the zero value is still deterministic.
func New(seed int64, rules ...Rule) (*Injector, error) {
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: rules,
		seed:  seed,
		fired: telemetry.Default.Counter("faultinject_fired_total"),
	}, nil
}

// Seed returns the injector's seed (for logging chaos runs).
func (in *Injector) Seed() int64 { return in.seed }

// float64 draws from the shared seeded source.
func (in *Injector) float64() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// intn draws from the shared seeded source.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Parse builds an injector from a -fault-spec string: semicolon-separated
// clauses, each `kind:param,param,...` with an optional standalone
// `seed=N` clause. Parameters: after=N, prob=P, ms=N, jitter=N (ms),
// read / write / both, once.
//
//	seed=42;drop:write,after=40
//	delay:prob=0.1,ms=15,jitter=5;corrupt:after=100,once
//
// An empty spec returns (nil, nil): no injection.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var (
		seed  int64
		rules []Rule
	)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %w", v, err)
			}
			seed = n
			continue
		}
		kindStr, params, _ := strings.Cut(clause, ":")
		var r Rule
		switch kindStr {
		case "drop":
			r.Kind = Drop
		case "delay":
			r.Kind = Delay
		case "corrupt":
			r.Kind = Corrupt
		case "blackhole":
			r.Kind = Blackhole
		case "blackhole-in":
			r.Kind = BlackholeIn
		case "blackhole-out":
			r.Kind = BlackholeOut
		case "partition":
			r.Kind = Partition
		default:
			return nil, fmt.Errorf("faultinject: unknown fault %q (want drop|delay|corrupt|blackhole|blackhole-in|blackhole-out|partition)", kindStr)
		}
		for _, p := range strings.Split(params, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			key, val, hasVal := strings.Cut(p, "=")
			var err error
			switch {
			case key == "read" && !hasVal:
				r.Op |= OpRead
			case key == "write" && !hasVal:
				r.Op |= OpWrite
			case key == "both" && !hasVal:
				r.Op = OpBoth
			case key == "once" && !hasVal:
				r.Once = true
			case key == "after":
				r.After, err = strconv.Atoi(val)
			case key == "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
			case key == "ms":
				var ms int
				ms, err = strconv.Atoi(val)
				r.Delay = time.Duration(ms) * time.Millisecond
			case key == "jitter":
				var ms int
				ms, err = strconv.Atoi(val)
				r.Jitter = time.Duration(ms) * time.Millisecond
			default:
				return nil, fmt.Errorf("faultinject: unknown parameter %q in %q", p, clause)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad parameter %q: %w", p, err)
			}
		}
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("%w (clause %q)", err, clause)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q has no fault clauses", spec)
	}
	return New(seed, rules...)
}

// ruleState is one conn's progress through one rule.
type ruleState struct {
	rule  Rule
	ops   int
	spent bool
}

// Conn wraps c with the injector's schedule. Counters start at zero for
// every wrapped conn; randomness stays shared (and seeded).
func (in *Injector) Conn(c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	fc := &faultConn{Conn: c, in: in, closed: make(chan struct{})}
	fc.states = make([]ruleState, len(in.rules))
	for i, r := range in.rules {
		fc.states[i] = ruleState{rule: r}
	}
	return fc
}

// Listener wraps ln so every accepted conn carries the schedule.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	if in == nil {
		return ln
	}
	return &faultListener{Listener: ln, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// faultConn applies the schedule to one conn.
type faultConn struct {
	net.Conn
	in *Injector

	mu      sync.Mutex
	states  []ruleState
	dropped bool
	bhIn    bool      // inbound silenced (reads hang)
	bhOut   bool      // outbound silenced (writes vanish)
	healAt  time.Time // partition in effect until this instant

	closeOnce sync.Once
	closed    chan struct{}
}

// errDropped is returned for every op after a Drop rule fires.
type droppedError struct{}

func (droppedError) Error() string   { return "faultinject: connection dropped" }
func (droppedError) Timeout() bool   { return false }
func (droppedError) Temporary() bool { return false }

// verdict is one operation's fate under the schedule.
type verdict struct {
	drop    bool
	silence bool // permanent for this direction (blackhole kinds)
	corrupt bool
	delay   time.Duration
	healAt  time.Time // partition: stall until here, then proceed
}

// decide runs the schedule for one operation and returns the actions to
// apply (at most one per rule). It owns all counter state.
func (c *faultConn) decide(op Op) (v verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped {
		v.drop = true
		return
	}
	for i := range c.states {
		st := &c.states[i]
		if st.rule.Op != 0 && st.rule.Op&op == 0 {
			continue
		}
		st.ops++
		if st.spent || st.ops < st.rule.After {
			continue
		}
		fire := false
		if st.rule.Prob > 0 {
			fire = c.in.float64() < st.rule.Prob
		} else {
			fire = st.ops == st.rule.After
		}
		if !fire {
			continue
		}
		if st.rule.Once || st.rule.Prob == 0 {
			st.spent = true
		}
		c.in.fired.Inc()
		switch st.rule.Kind {
		case Drop:
			c.dropped = true
			v.drop = true
		case Blackhole:
			c.bhIn, c.bhOut = true, true
		case BlackholeIn:
			c.bhIn = true
		case BlackholeOut:
			c.bhOut = true
		case Partition:
			if heal := time.Now().Add(st.rule.Delay); heal.After(c.healAt) {
				c.healAt = heal
			}
		case Corrupt:
			v.corrupt = true
		case Delay:
			d := st.rule.Delay
			if st.rule.Jitter > 0 {
				d += time.Duration(c.in.float64() * float64(st.rule.Jitter))
			}
			v.delay += d
		}
	}
	if (op == OpRead && c.bhIn) || (op == OpWrite && c.bhOut) {
		v.silence = true
	}
	if !c.healAt.IsZero() && time.Now().Before(c.healAt) {
		v.healAt = c.healAt
	}
	return
}

func (c *faultConn) Read(b []byte) (int, error) {
	v := c.decide(OpRead)
	if v.delay > 0 {
		c.sleep(v.delay)
	}
	if v.drop {
		_ = c.Close()
		return 0, droppedError{}
	}
	if v.silence {
		// Silence: hold the read until the conn is torn down.
		<-c.closed
		return 0, droppedError{}
	}
	if !v.healAt.IsZero() {
		// Partitioned: stall until the split heals, then read normally —
		// the stream survives intact, as TCP retransmission would leave it.
		c.sleep(time.Until(v.healAt))
	}
	n, err := c.Conn.Read(b)
	if v.corrupt && n > 0 {
		b[c.in.intn(n)] ^= 0xFF
	}
	return n, err
}

func (c *faultConn) Write(b []byte) (int, error) {
	v := c.decide(OpWrite)
	if v.delay > 0 {
		c.sleep(v.delay)
	}
	if v.drop {
		_ = c.Close()
		return 0, droppedError{}
	}
	if v.silence {
		// The bytes vanish; the sender believes they left.
		return len(b), nil
	}
	if !v.healAt.IsZero() {
		c.sleep(time.Until(v.healAt))
	}
	if v.corrupt && len(b) > 0 {
		cp := append([]byte(nil), b...)
		cp[c.in.intn(len(cp))] ^= 0xFF
		b = cp
	}
	return c.Conn.Write(b)
}

// sleep waits for d but wakes early if the conn closes underneath.
func (c *faultConn) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
