package nn

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
)

func sampleSnapshot(t *testing.T) Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	net := NewMLP("m", []int{4, 6, 3}, rng)
	return net.TakeSnapshot()
}

func encodeToBytes(t *testing.T, s Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	got, err := DecodeSnapshot(bytes.NewReader(encodeToBytes(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("got %d params, want %d", len(got), len(s))
	}
	for name, m := range s {
		g := got[name]
		if g == nil || g.Rows != m.Rows || g.Cols != m.Cols {
			t.Fatalf("param %q shape mismatch", name)
		}
		for i := range m.Data {
			if g.Data[i] != m.Data[i] {
				t.Fatalf("param %q data[%d]: %v != %v", name, i, g.Data[i], m.Data[i])
			}
		}
	}
}

// TestDecodeSnapshotTruncated feeds every strict prefix of a valid encoding:
// all must error, none may panic.
func TestDecodeSnapshotTruncated(t *testing.T) {
	whole := encodeToBytes(t, sampleSnapshot(t))
	for n := 0; n < len(whole); n++ {
		if _, err := DecodeSnapshot(bytes.NewReader(whole[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}

// TestDecodeSnapshotBitFlips flips each byte of the structural prefix (the
// header and first entry's metadata): decode must error or succeed, never
// panic or allocate unboundedly. Flips inside float payloads legitimately
// decode to different values, so only structural corruption is asserted on.
func TestDecodeSnapshotBitFlips(t *testing.T) {
	whole := encodeToBytes(t, sampleSnapshot(t))
	for i := 0; i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0xFF
		// Must terminate without panicking; error or not depends on where
		// the flip landed.
		_, _ = DecodeSnapshot(bytes.NewReader(mut))
	}
}

// TestDecodeSnapshotHostilePrefixes hand-crafts headers that claim enormous
// payloads: the decoder must reject them by arithmetic, not by attempting
// the allocation.
func TestDecodeSnapshotHostilePrefixes(t *testing.T) {
	u32 := func(vs ...uint32) []byte {
		var b bytes.Buffer
		for _, v := range vs {
			binary.Write(&b, binary.LittleEndian, v)
		}
		return b.Bytes()
	}
	cases := map[string][]byte{
		"huge count":    u32(1 << 30),
		"huge name len": append(u32(1), u32(1<<31)...),
		// one param "w" claiming a 1<<16 x 1<<16 matrix with no data behind it
		"huge dims": append(append(append(u32(1), u32(1)...), 'w'), u32(1<<16, 1<<16)...),
		// dims within the per-param cap but with zero payload bytes remaining
		"over-claiming dims": append(append(append(u32(1), u32(1)...), 'w'), u32(1024, 1024)...),
		"empty":              {},
		"header only":        u32(2),
	}
	for name, in := range cases {
		if _, err := DecodeSnapshot(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
	// Cumulative cap: many params individually under the per-param limit.
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(8))
	for i := 0; i < 8; i++ {
		binary.Write(&b, binary.LittleEndian, uint32(1))
		b.WriteByte(byte('a' + i))
		binary.Write(&b, binary.LittleEndian, uint32(1<<12))
		binary.Write(&b, binary.LittleEndian, uint32(1<<12))
	}
	if _, err := DecodeSnapshot(bytes.NewReader(b.Bytes())); err == nil {
		t.Error("cumulative-cap input decoded successfully")
	}
}

// TestDecodeSnapshotUnsizedReader exercises the chunked path (no Len()
// pre-flight): truncation mid-payload must error after reading at most the
// delivered bytes.
func TestDecodeSnapshotUnsizedReader(t *testing.T) {
	whole := encodeToBytes(t, sampleSnapshot(t))
	// An io.Reader wrapper hides bytes.Reader's Len method.
	unsized := struct{ io.Reader }{bytes.NewReader(whole)}
	if _, err := DecodeSnapshot(unsized); err != nil {
		t.Fatalf("unsized round trip: %v", err)
	}
	truncated := struct{ io.Reader }{bytes.NewReader(whole[:len(whole)/2])}
	if _, err := DecodeSnapshot(truncated); err == nil {
		t.Fatal("unsized truncated decode succeeded")
	}
}

func FuzzDecodeSnapshot(f *testing.F) {
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(3))
	if err := EncodeSnapshot(&buf, NewMLP("m", []int{4, 6, 3}, rng).TakeSnapshot()); err != nil {
		f.Fatal(err)
	}
	whole := buf.Bytes()
	f.Add(whole)
	f.Add(whole[:len(whole)/2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or OOM; errors are expected.
		_, _ = DecodeSnapshot(bytes.NewReader(data))
	})
}
