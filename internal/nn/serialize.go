package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"ndpipe/internal/tensor"
)

// Snapshot is a named copy of every parameter matrix in a network. It is the
// unit of model distribution: the Tuner snapshots the classifier after
// fine-tuning and ships it (or its delta) to every PipeStore.
type Snapshot map[string]*tensor.Matrix

// TakeSnapshot deep-copies all parameters of n.
func (n *Network) TakeSnapshot() Snapshot {
	s := make(Snapshot)
	for _, p := range n.Params() {
		s[p.Name] = p.W.Clone()
	}
	return s
}

// Restore copies snapshot values back into matching parameters of n.
// Parameters absent from the snapshot are left untouched; snapshot entries
// with no matching parameter are an error (they indicate a topology mismatch).
func (n *Network) Restore(s Snapshot) error {
	byName := make(map[string]*Param)
	for _, p := range n.Params() {
		byName[p.Name] = p
	}
	for name, w := range s {
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: snapshot has unknown parameter %q", name)
		}
		if p.W.Rows != w.Rows || p.W.Cols != w.Cols {
			return fmt.Errorf("nn: snapshot %q shape %dx%d != %dx%d", name, w.Rows, w.Cols, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, w.Data)
	}
	return nil
}

// Bytes returns the total serialized size of the snapshot payload in bytes
// (8 bytes per weight), used for network-traffic accounting.
func (s Snapshot) Bytes() int64 {
	var n int64
	for _, m := range s {
		n += int64(len(m.Data)) * 8
	}
	return n
}

// Names returns the sorted parameter names in the snapshot.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// binary wire format for snapshots:
//   u32 count, then per entry: u32 nameLen, name bytes, u32 rows, u32 cols,
//   rows*cols float64 (little endian).

// EncodeSnapshot writes s to w in a deterministic binary format.
func EncodeSnapshot(w io.Writer, s Snapshot) error {
	names := s.Names()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		m := s[name]
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write([]byte(name)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(m.Rows)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(m.Cols)); err != nil {
			return err
		}
		buf := make([]byte, 8*len(m.Data))
		for i, v := range m.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Decoder hardening limits. A length prefix is attacker-controlled until the
// data behind it actually arrives, so no limit below may be enforced by
// allocation — only by arithmetic before allocating.
const (
	maxSnapshotParams = 1 << 20 // parameter count a snapshot may declare
	maxParamElems     = 1 << 24 // elements in one parameter matrix
	maxSnapshotElems  = 1 << 26 // elements across the whole snapshot
	decodeChunkElems  = 8 << 10 // floats read per chunk (64 KiB)
)

// DecodeSnapshot reads a snapshot written by EncodeSnapshot. It is safe on
// hostile input: truncated or corrupt streams return an error (never a
// panic), and a hostile length prefix cannot force a large allocation —
// sized readers are length-checked up front, and unsized streams allocate
// in 64 KiB chunks proportional to the bytes actually delivered.
func DecodeSnapshot(r io.Reader) (Snapshot, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("nn: snapshot header: %w", err)
	}
	if count > maxSnapshotParams {
		return nil, fmt.Errorf("nn: snapshot declares %d params (limit %d)", count, maxSnapshotParams)
	}
	// Pre-size the map from the declared count, but bounded: the count is
	// unverified until entries actually decode.
	sizeHint := count
	if sizeHint > 1024 {
		sizeHint = 1024
	}
	s := make(Snapshot, sizeHint)
	var totalElems uint64
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("nn: snapshot param %d: %w", i, err)
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("nn: parameter name length %d too large", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, fmt.Errorf("nn: snapshot param %d name: %w", i, err)
		}
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return nil, fmt.Errorf("nn: snapshot param %q: %w", nameBuf, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return nil, fmt.Errorf("nn: snapshot param %q: %w", nameBuf, err)
		}
		elems := uint64(rows) * uint64(cols)
		if elems > maxParamElems {
			return nil, fmt.Errorf("nn: parameter %q too large: %dx%d", nameBuf, rows, cols)
		}
		totalElems += elems
		if totalElems > maxSnapshotElems {
			return nil, fmt.Errorf("nn: snapshot exceeds %d total elements at parameter %q", maxSnapshotElems, nameBuf)
		}
		// Sized readers (bytes.Reader & friends) expose how much input truly
		// remains: reject an over-claiming prefix before allocating for it.
		if lr, ok := r.(interface{ Len() int }); ok && uint64(lr.Len()) < 8*elems {
			return nil, fmt.Errorf("nn: parameter %q claims %d elements but only %d bytes remain: %w",
				nameBuf, elems, lr.Len(), io.ErrUnexpectedEOF)
		}
		data := make([]float64, 0, minU64(elems, decodeChunkElems))
		var chunk [8 * decodeChunkElems]byte
		for read := uint64(0); read < elems; {
			n := elems - read
			if n > decodeChunkElems {
				n = decodeChunkElems
			}
			if _, err := io.ReadFull(r, chunk[:8*n]); err != nil {
				return nil, fmt.Errorf("nn: snapshot param %q data: %w", nameBuf, err)
			}
			for j := uint64(0); j < n; j++ {
				data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(chunk[j*8:])))
			}
			read += n
		}
		if rows == 0 || cols == 0 {
			s[string(nameBuf)] = tensor.New(int(rows), int(cols))
		} else {
			s[string(nameBuf)] = tensor.FromSlice(int(rows), int(cols), data)
		}
	}
	return s, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// NewFeatureExtractor builds the frozen backbone stand-in: a deterministic
// (seeded) random MLP projecting raw inputs to a feature embedding. Every
// PipeStore constructs the identical extractor from the same seed, mirroring
// how the paper's weight-freeze layers are replicated across storage servers
// with no synchronization (§5.1).
func NewFeatureExtractor(seed int64, inDim, hidden, featDim int) *Network {
	rng := rand.New(rand.NewSource(seed))
	net := NewMLP("backbone", []int{inDim, hidden, featDim}, rng)
	net.FreezeAll()
	return net
}
