package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ndpipe/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("fc", 2, 2, rng)
	copy(d.w.W.Data, []float64{1, 2, 3, 4})
	copy(d.b.W.Data, []float64{0.5, -0.5})
	x := tensor.FromSlice(1, 2, []float64{1, 1})
	y := d.Forward(x)
	want := []float64{1 + 3 + 0.5, 2 + 4 - 0.5}
	for i := range want {
		if math.Abs(y.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("forward = %v, want %v", y.Data, want)
		}
	}
}

// numericalGrad estimates dLoss/dW[i] by central differences.
func numericalGrad(n *Network, x *tensor.Matrix, labels []int, p *Param, i int) float64 {
	const eps = 1e-5
	orig := p.W.Data[i]
	p.W.Data[i] = orig + eps
	lp, _ := SoftmaxCrossEntropy(n.Forward(x), labels)
	p.W.Data[i] = orig - eps
	lm, _ := SoftmaxCrossEntropy(n.Forward(x), labels)
	p.W.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

// TestBackwardMatchesNumericalGradient is the load-bearing correctness test:
// analytic gradients from Backward must match finite differences.
func TestBackwardMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewMLP("clf", []int{4, 6, 3}, rng)
	x := tensor.New(5, 4)
	x.RandNormal(rng, 1)
	labels := []int{0, 2, 1, 1, 0}

	logits := n.Forward(x)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	n.ZeroGrads()
	n.Forward(x) // re-run to refresh caches (ZeroGrads doesn't clear them, but keep deterministic)
	_, grad = SoftmaxCrossEntropy(n.Forward(x), labels)
	n.Backward(grad)

	for _, p := range n.Params() {
		for _, i := range []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1} {
			got := p.Grad.Data[i]
			want := numericalGrad(n, x, labels, p, i)
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
	}
}

func TestSoftmaxCrossEntropyGradientSumsToZero(t *testing.T) {
	// For each sample the gradient over classes must sum to zero
	// (softmax rows sum to 1, one-hot subtracts 1).
	rng := rand.New(rand.NewSource(3))
	logits := tensor.New(4, 5)
	logits.RandNormal(rng, 2)
	_, grad := SoftmaxCrossEntropy(logits, []int{1, 0, 4, 2})
	for i := 0; i < grad.Rows; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += v
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("row %d gradient sum %v, want 0", i, s)
		}
	}
}

func TestTrainingConvergesOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, dim, classes = 300, 8, 3
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64()*0.3)
		}
		x.Set(i, c, x.At(i, c)+2.0) // class mean offset along axis c
	}
	net := NewMLP("clf", []int{dim, 16, classes}, rng)
	opt := NewSGD(0.1, 0.9)
	var first, last float64
	for epoch := 0; epoch < 30; epoch++ {
		loss := TrainBatch(net, opt, x, labels)
		if epoch == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first/2 {
		t.Fatalf("loss did not halve: first %v last %v", first, last)
	}
	top1, top3 := Accuracy(net, x, labels, 3)
	if top1 < 0.9 {
		t.Fatalf("top-1 accuracy %v < 0.9", top1)
	}
	if top3 < top1 {
		t.Fatalf("top-3 %v < top-1 %v", top3, top1)
	}
}

func TestFrozenParamsDoNotMove(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	backbone := NewMLP("bb", []int{4, 8}, rng)
	backbone.FreezeAll()
	head := NewMLP("head", []int{8, 3}, rng)
	full := Stack(backbone, head)

	before := backbone.TakeSnapshot()
	x := tensor.New(10, 4)
	x.RandNormal(rng, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	opt := NewSGD(0.5, 0.9)
	for i := 0; i < 5; i++ {
		TrainBatch(full, opt, x, labels)
	}
	after := backbone.TakeSnapshot()
	for name, w := range before {
		if tensor.MaxAbsDiff(w, after[name]) != 0 {
			t.Fatalf("frozen parameter %s changed", name)
		}
	}
	// The head must have moved.
	moved := false
	for _, p := range head.TrainableParams() {
		if p.W.FrobeniusNorm() != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("trainable head did not move")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewMLP("m", []int{3, 5, 2}, rng)
	b := NewMLP("m", []int{3, 5, 2}, rand.New(rand.NewSource(7)))
	snap := a.TakeSnapshot()
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		q := b.Params()[i]
		if tensor.MaxAbsDiff(p.W, q.W) != 0 {
			t.Fatalf("param %s differs after restore", p.Name)
		}
	}
}

func TestRestoreRejectsUnknownAndMismatched(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := NewMLP("m", []int{3, 2}, rng)
	if err := n.Restore(Snapshot{"bogus": tensor.New(1, 1)}); err == nil {
		t.Fatal("expected error for unknown param")
	}
	if err := n.Restore(Snapshot{"m.fc0.w": tensor.New(9, 9)}); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestEncodeDecodeSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewMLP("m", []int{4, 7, 3}, rng)
	snap := n.TakeSnapshot()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snap) {
		t.Fatalf("decoded %d params, want %d", len(got), len(snap))
	}
	for name, w := range snap {
		if tensor.MaxAbsDiff(w, got[name]) != 0 {
			t.Fatalf("param %s corrupted in round trip", name)
		}
	}
}

// Property: encode→decode is the identity for random snapshots.
func TestSnapshotCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Snapshot{}
		for i := 0; i < 1+r.Intn(4); i++ {
			m := tensor.New(1+r.Intn(5), 1+r.Intn(5))
			m.RandNormal(r, 3)
			s[string(rune('a'+i))+".w"] = m
		}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, s); err != nil {
			return false
		}
		got, err := DecodeSnapshot(&buf)
		if err != nil {
			return false
		}
		for name, w := range s {
			g, ok := got[name]
			if !ok || tensor.MaxAbsDiff(w, g) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureExtractorDeterministicAcrossStores(t *testing.T) {
	a := NewFeatureExtractor(42, 16, 32, 8)
	b := NewFeatureExtractor(42, 16, 32, 8)
	x := tensor.New(3, 16)
	rng := rand.New(rand.NewSource(10))
	x.RandNormal(rng, 1)
	ya := a.Forward(x)
	yb := b.Forward(x)
	if tensor.MaxAbsDiff(ya, yb) != 0 {
		t.Fatal("feature extractors from same seed must agree bit-for-bit")
	}
	for _, p := range a.Params() {
		if !p.Frozen {
			t.Fatalf("backbone param %s not frozen", p.Name)
		}
	}
}

func TestSnapshotBytes(t *testing.T) {
	s := Snapshot{"w": tensor.New(2, 3)}
	if got := s.Bytes(); got != 48 {
		t.Fatalf("Bytes = %d, want 48", got)
	}
}

func TestDeltaBalanceZeroForBalancedStack(t *testing.T) {
	// Identity-like balanced pair: wLower = I (3x3), wUpper = I (3x3)
	id := tensor.New(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(i, i, 1)
	}
	if got := DeltaBalance(id, id); got > 1e-12 {
		t.Fatalf("DeltaBalance(I,I) = %v, want 0", got)
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	// On a quadratic-like objective, momentum should move parameters
	// further than plain SGD after several identical-gradient steps.
	mk := func(mom float64) float64 {
		p := &Param{Name: "w", W: tensor.New(1, 1), Grad: tensor.New(1, 1)}
		opt := NewSGD(0.1, mom)
		for i := 0; i < 5; i++ {
			p.Grad.Data[0] = 1 // constant gradient
			opt.Step([]*Param{p})
		}
		return -p.W.Data[0]
	}
	if mk(0.9) <= mk(0) {
		t.Fatal("momentum should accumulate larger displacement")
	}
}

func TestForwardIntoSurvivesNextForward(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := NewMLP("m", []int{4, 8, 3}, rng)
	x1 := tensor.New(2, 4)
	x1.RandNormal(rng, 1)
	x2 := tensor.New(2, 4)
	x2.RandNormal(rng, 1)

	kept := n.ForwardInto(nil, x1)
	want := kept.Clone()
	_ = n.Forward(x2) // overwrites layer scratch
	if tensor.MaxAbsDiff(kept, want) != 0 {
		t.Fatal("ForwardInto output must survive the next Forward")
	}
	// And it must equal a plain Forward bit for bit.
	direct := n.Forward(x1)
	if tensor.MaxAbsDiff(kept, direct) != 0 {
		t.Fatal("ForwardInto must match Forward bitwise")
	}
	// Reuse path: same dst back when shapes match.
	if again := n.ForwardInto(kept, x2); again != kept {
		t.Fatal("matching-shape dst must be reused")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := NewMLP("m", []int{10, 5, 2}, rng)
	want := 10*5 + 5 + 5*2 + 2
	if got := n.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}
