package nn

import (
	"math"
	"math/rand"
	"testing"

	"ndpipe/internal/tensor"
)

func TestConv2DOutputGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewConv2D("c", 3, 8, 8, 4, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	oc, oh, ow := c.OutShape()
	if oc != 4 || oh != 8 || ow != 8 {
		t.Fatalf("same-pad geometry = %d×%d×%d", oc, oh, ow)
	}
	c2, err := NewConv2D("c2", 3, 8, 8, 4, 3, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, oh, ow := c2.OutShape(); oh != 3 || ow != 3 {
		t.Fatalf("strided geometry = %d×%d", oh, ow)
	}
	if _, err := NewConv2D("bad", 0, 8, 8, 4, 3, 1, 0, rng); err == nil {
		t.Fatal("invalid geometry must error")
	}
	if _, err := NewConv2D("bad", 1, 2, 2, 1, 5, 1, 0, rng); err == nil {
		t.Fatal("kernel larger than padded input must error")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1×1 kernel with weight 1 and zero bias is the identity map.
	rng := rand.New(rand.NewSource(2))
	c, err := NewConv2D("id", 1, 4, 4, 1, 1, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	c.w.W.Fill(1)
	c.b.W.Zero()
	x := tensor.New(2, 16)
	x.RandNormal(rng, 1)
	y := c.Forward(x)
	if !tensor.Equal(x, y, 1e-12) {
		t.Fatal("1×1 identity kernel must pass input through")
	}
}

func TestConv2DKnownConvolution(t *testing.T) {
	// 2×2 input, 2×2 all-ones kernel, no pad: output = sum of the input.
	rng := rand.New(rand.NewSource(3))
	c, err := NewConv2D("sum", 1, 2, 2, 1, 2, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	c.w.W.Fill(1)
	c.b.W.Data[0] = 0.5
	x := tensor.FromSlice(1, 4, []float64{1, 2, 3, 4})
	y := c.Forward(x)
	if y.Rows != 1 || y.Cols != 1 || math.Abs(y.Data[0]-10.5) > 1e-12 {
		t.Fatalf("conv sum = %v, want 10.5", y.Data)
	}
}

// TestConv2DGradientCheck validates backward against finite differences —
// the decisive correctness test for the convolution implementation.
func TestConv2DGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv, err := NewConv2D("c", 2, 5, 5, 3, 3, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := &Network{Layers: []Layer{
		conv,
		NewReLU("r"),
		NewDense("fc", conv.OutFloats(), 4, rng),
	}}
	x := tensor.New(3, conv.InFloats())
	x.RandNormal(rng, 1)
	labels := []int{0, 2, 1}

	net.ZeroGrads()
	_, grad := SoftmaxCrossEntropy(net.Forward(x), labels)
	net.Backward(grad)

	for _, p := range net.Params() {
		for _, i := range []int{0, len(p.W.Data) / 3, len(p.W.Data) - 1} {
			got := p.Grad.Data[i]
			want := numericalGrad(net, x, labels, p, i)
			if math.Abs(got-want) > 1e-5 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
	}
}

func TestConv2DInputGradientCheck(t *testing.T) {
	// Check ∂L/∂x via finite differences on the input.
	rng := rand.New(rand.NewSource(5))
	conv, err := NewConv2D("c", 1, 4, 4, 2, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := &Network{Layers: []Layer{conv, NewDense("fc", conv.OutFloats(), 3, rng)}}
	x := tensor.New(2, 16)
	x.RandNormal(rng, 1)
	labels := []int{1, 0}

	_, grad := SoftmaxCrossEntropy(net.Forward(x), labels)
	net.ZeroGrads()
	_, grad = SoftmaxCrossEntropy(net.Forward(x), labels)
	dx := net.Backward(grad)

	const eps = 1e-5
	for _, i := range []int{0, 7, 15, 16, 31} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(net.Forward(x), labels)
		x.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(net.Forward(x), labels)
		x.Data[i] = orig
		want := (lp - lm) / (2 * eps)
		if math.Abs(dx.Data[i]-want) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx.Data[i], want)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool2D("p", 2, 2, 2)
	x := tensor.FromSlice(1, 8, []float64{1, 2, 3, 4, 10, 20, 30, 40})
	y := g.Forward(x)
	if y.Cols != 2 || y.Data[0] != 2.5 || y.Data[1] != 25 {
		t.Fatalf("pool = %v", y.Data)
	}
	// Backward spreads gradient evenly.
	dx := g.Backward(tensor.FromSlice(1, 2, []float64{4, 8}))
	for i := 0; i < 4; i++ {
		if dx.Data[i] != 1 || dx.Data[4+i] != 2 {
			t.Fatalf("pool grad = %v", dx.Data)
		}
	}
}

func TestConvBackboneTrainsOnPatterns(t *testing.T) {
	// A tiny CNN must learn to separate horizontal vs vertical bars.
	rng := rand.New(rand.NewSource(6))
	conv, err := NewConv2D("c", 1, 6, 6, 4, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewGlobalAvgPool2D("p", 4, 6, 6)
	net := &Network{Layers: []Layer{conv, NewReLU("r"), pool, NewDense("fc", 4, 2, rng)}}

	mk := func(n int) (*tensor.Matrix, []int) {
		x := tensor.New(n, 36)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := i % 2
			labels[i] = c
			pos := rng.Intn(6)
			for j := 0; j < 6; j++ {
				if c == 0 {
					x.Set(i, pos*6+j, 1) // horizontal bar
				} else {
					x.Set(i, j*6+pos, 1) // vertical bar
				}
			}
		}
		return x, labels
	}
	x, labels := mk(64)
	opt := NewSGD(0.3, 0.9)
	for e := 0; e < 60; e++ {
		TrainBatch(net, opt, x, labels)
	}
	tx, tl := mk(40)
	top1, _ := Accuracy(net, tx, tl, 1)
	if top1 < 0.9 {
		t.Fatalf("CNN failed to learn bars: top-1 %.2f", top1)
	}
}

func TestConv2DFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv, err := NewConv2D("c", 1, 3, 3, 2, 2, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	conv.Freeze()
	before := conv.w.W.Clone()
	net := &Network{Layers: []Layer{conv, NewDense("fc", conv.OutFloats(), 2, rng)}}
	x := tensor.New(4, 9)
	x.RandNormal(rng, 1)
	opt := NewSGD(0.5, 0.9)
	for i := 0; i < 3; i++ {
		TrainBatch(net, opt, x, []int{0, 1, 0, 1})
	}
	if tensor.MaxAbsDiff(before, conv.w.W) != 0 {
		t.Fatal("frozen conv kernel moved")
	}
}
