package nn

import (
	"math"
	"math/rand"
	"testing"

	"ndpipe/internal/tensor"
)

func TestAdamConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, dim, classes = 200, 8, 3
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64()*0.3)
		}
		x.Set(i, c, x.At(i, c)+2)
	}
	net := NewMLP("clf", []int{dim, 16, classes}, rng)
	opt := NewAdam(0.01)
	var first, last float64
	for e := 0; e < 40; e++ {
		logits := net.Forward(x)
		loss, grad := SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
		if e == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/3 {
		t.Fatalf("Adam did not converge: %v → %v", first, last)
	}
	top1, _ := Accuracy(net, x, labels, 1)
	if top1 < 0.9 {
		t.Fatalf("Adam accuracy %.2f", top1)
	}
}

func TestAdamSkipsFrozen(t *testing.T) {
	p := &Param{Name: "w", W: tensor.New(1, 1), Grad: tensor.New(1, 1), Frozen: true}
	p.Grad.Data[0] = 1
	NewAdam(0.1).Step([]*Param{p})
	if p.W.Data[0] != 0 {
		t.Fatal("frozen param must not move under Adam")
	}
}

func TestClipGradients(t *testing.T) {
	p := &Param{Name: "w", W: tensor.New(1, 2), Grad: tensor.FromSlice(1, 2, []float64{3, 4})}
	norm := ClipGradients([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	var after float64
	for _, g := range p.Grad.Data {
		after += g * g
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-12 {
		t.Fatalf("post-clip norm %v, want 1", math.Sqrt(after))
	}
	// Within bounds: untouched.
	q := &Param{Name: "q", W: tensor.New(1, 1), Grad: tensor.FromSlice(1, 1, []float64{0.5})}
	ClipGradients([]*Param{q}, 1)
	if q.Grad.Data[0] != 0.5 {
		t.Fatal("small gradients must not be scaled")
	}
	// Frozen params excluded from the norm.
	f := &Param{Name: "f", W: tensor.New(1, 1), Grad: tensor.FromSlice(1, 1, []float64{100}), Frozen: true}
	if n := ClipGradients([]*Param{f}, 1); n != 0 {
		t.Fatalf("frozen-only norm %v, want 0", n)
	}
}

func TestStepDecay(t *testing.T) {
	lr := StepDecay(0.1, 0.5, 10)
	if lr(0) != 0.1 || lr(9) != 0.1 {
		t.Fatal("first plateau")
	}
	if math.Abs(lr(10)-0.05) > 1e-12 || math.Abs(lr(25)-0.025) > 1e-12 {
		t.Fatalf("decay: %v %v", lr(10), lr(25))
	}
	flat := StepDecay(0.1, 0.5, 0)
	if flat(100) != 0.1 {
		t.Fatal("every=0 must be constant")
	}
}

func TestCosineDecay(t *testing.T) {
	lr := CosineDecay(0.1, 0.001, 100)
	if lr(0) != 0.1 {
		t.Fatalf("start %v", lr(0))
	}
	if lr(100) != 0.001 || lr(200) != 0.001 {
		t.Fatal("floor after horizon")
	}
	mid := lr(50)
	if mid <= 0.001 || mid >= 0.1 {
		t.Fatalf("midpoint %v out of band", mid)
	}
	// Monotone decreasing.
	prev := lr(0)
	for e := 1; e <= 100; e += 7 {
		cur := lr(e)
		if cur > prev+1e-12 {
			t.Fatalf("cosine not monotone at %d", e)
		}
		prev = cur
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	d := NewDropout("d", 0.5, 1)
	x := tensor.New(10, 100)
	x.Fill(1)
	y := d.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected activation %v", v)
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("dropped %.2f, want ≈0.5", frac)
	}
	// Backward masks identically.
	g := tensor.New(10, 100)
	g.Fill(1)
	dg := d.Backward(g)
	for i, v := range y.Data {
		if (v == 0) != (dg.Data[i] == 0) {
			t.Fatal("gradient mask must match forward mask")
		}
	}
	// Eval mode: pass-through.
	d.Train = false
	ye := d.Forward(x)
	if tensor.MaxAbsDiff(x, ye) != 0 {
		t.Fatal("eval mode must be identity")
	}
	if dge := d.Backward(g); tensor.MaxAbsDiff(g, dge) != 0 {
		t.Fatal("eval backward must be identity")
	}
}

func TestDropoutExpectationPreserved(t *testing.T) {
	// Inverted dropout keeps E[output] = input.
	d := NewDropout("d", 0.3, 2)
	x := tensor.New(1, 20000)
	x.Fill(1)
	y := d.Forward(x)
	var mean float64
	for _, v := range y.Data {
		mean += v
	}
	mean /= float64(len(y.Data))
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("mean %v, want ≈1", mean)
	}
}
