// Package nn is a small, self-contained neural-network engine: dense layers,
// ReLU activations, a softmax cross-entropy head, stochastic gradient descent
// with momentum, and per-parameter weight freezing.
//
// It exists because NDPipe's fine-tuning workload only ever *trains* a
// classifier head (a few MLP layers) on features produced by a frozen
// backbone. That workload runs end-to-end on this engine: PipeStores execute
// the frozen feature-extraction layers (forward pass only, identical to
// inference — §2.1 of the paper), and the Tuner trains the trainable layers
// with real gradient descent. Accuracy-shaped experiments (drift, outdated
// labels, pipelined-run catastrophic forgetting) therefore exercise genuine
// learning dynamics, not canned numbers.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ndpipe/internal/tensor"
)

// Param is one learnable (or frozen) parameter matrix with its gradient.
type Param struct {
	Name   string
	W      *tensor.Matrix
	Grad   *tensor.Matrix
	Frozen bool
}

// Layer is a differentiable network stage.
type Layer interface {
	// Forward computes the layer output for a batch (rows = samples).
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients along the way.
	Backward(grad *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's parameters (may be empty).
	Params() []*Param
	// Name identifies the layer for serialization and diffing.
	Name() string
}

// Dense is a fully connected layer: y = xW + b.
type Dense struct {
	name  string
	w, b  *Param
	input *tensor.Matrix // cached for backward
}

// NewDense creates an in×out dense layer with Glorot-uniform weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(in, out)
	w.GlorotInit(rng, in, out)
	return &Dense{
		name: name,
		w:    &Param{Name: name + ".w", W: w, Grad: tensor.New(in, out)},
		b:    &Param{Name: name + ".b", W: tensor.New(1, out), Grad: tensor.New(1, out)},
	}
}

// In returns the input width of the layer.
func (d *Dense) In() int { return d.w.W.Rows }

// Out returns the output width of the layer.
func (d *Dense) Out() int { return d.w.W.Cols }

// Freeze marks the layer's parameters as non-trainable (weight-freeze layer).
func (d *Dense) Freeze() {
	d.w.Frozen = true
	d.b.Frozen = true
}

// Frozen reports whether the layer's parameters are frozen.
func (d *Dense) Frozen() bool { return d.w.Frozen }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	d.input = x
	out := tensor.MatMul(x, d.w.W)
	out.AddRowVector(d.b.W.Data)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if !d.w.Frozen {
		d.w.Grad.Add(tensor.MatMulATB(d.input, grad))
		bg := grad.ColSums()
		for j, v := range bg {
			d.b.Grad.Data[j] += v
		}
	}
	return tensor.MatMulABT(grad, d.w.W)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// ReLU is the rectified linear activation.
type ReLU struct {
	name string
	mask *tensor.Matrix
}

// NewReLU creates a named ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	r.mask = out.Relu()
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	g := grad.Clone()
	g.MulElem(r.mask)
	return g
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer
}

// NewMLP builds Dense/ReLU stacks for the given widths, e.g. dims
// {2048, 512, 100} produces Dense(2048→512)·ReLU·Dense(512→100).
func NewMLP(prefix string, dims []int, rng *rand.Rand) *Network {
	if len(dims) < 2 {
		panic("nn: NewMLP needs at least two dims")
	}
	n := &Network{}
	for i := 0; i < len(dims)-1; i++ {
		n.Layers = append(n.Layers, NewDense(fmt.Sprintf("%s.fc%d", prefix, i), dims[i], dims[i+1], rng))
		if i < len(dims)-2 {
			n.Layers = append(n.Layers, NewReLU(fmt.Sprintf("%s.relu%d", prefix, i)))
		}
	}
	return n
}

// Forward runs the whole stack.
func (n *Network) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates ∂L/∂logits back through the stack.
func (n *Network) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// TrainableParams returns only the non-frozen parameters.
func (n *Network) TrainableParams() []*Param {
	var ps []*Param
	for _, p := range n.Params() {
		if !p.Frozen {
			ps = append(ps, p)
		}
	}
	return ps
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// FreezeAll freezes every parameter in the network.
func (n *Network) FreezeAll() {
	for _, p := range n.Params() {
		p.Frozen = true
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.Data)
	}
	return total
}

// Stack returns a network that runs a then b (used to compose a frozen
// feature extractor with a trainable classifier, exactly the FT-DMP split).
func Stack(a, b *Network) *Network {
	out := &Network{}
	out.Layers = append(out.Layers, a.Layers...)
	out.Layers = append(out.Layers, b.Layers...)
	return out
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits against
// integer labels and the gradient ∂L/∂logits.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, grad *tensor.Matrix) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), logits.Rows))
	}
	probs := logits.Clone()
	probs.SoftmaxRows()
	n := float64(logits.Rows)
	grad = probs // reuse: grad = (probs - onehot)/n
	for i, y := range labels {
		p := probs.At(i, y)
		loss -= math.Log(math.Max(p, 1e-15))
		grad.Set(i, y, grad.At(i, y)-1)
	}
	grad.Scale(1 / n)
	return loss / n, grad
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]*tensor.Matrix
}

// NewSGD creates an optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]*tensor.Matrix)}
}

// Step applies one update to every non-frozen parameter and zeroes its grad.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			continue
		}
		v, ok := o.vel[p]
		if !ok {
			v = tensor.New(p.W.Rows, p.W.Cols)
			o.vel[p] = v
		}
		v.Scale(o.Momentum)
		v.AXPY(-o.LR, p.Grad)
		p.W.Add(v)
		p.Grad.Zero()
	}
}

// TrainBatch runs one forward/backward/update step and returns the loss.
func TrainBatch(n *Network, opt *SGD, x *tensor.Matrix, labels []int) float64 {
	logits := n.Forward(x)
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	n.Backward(grad)
	opt.Step(n.Params())
	return loss
}

// Accuracy evaluates top-1 and top-k accuracy of the network on (x, labels).
func Accuracy(n *Network, x *tensor.Matrix, labels []int, k int) (top1, topK float64) {
	logits := n.Forward(x)
	pred := logits.ArgmaxRows()
	topk := logits.TopKRows(k)
	var c1, ck int
	for i, y := range labels {
		if pred[i] == y {
			c1++
		}
		for _, j := range topk[i] {
			if j == y {
				ck++
				break
			}
		}
	}
	total := float64(len(labels))
	return float64(c1) / total, float64(ck) / total
}

// DeltaBalance returns the δ-balance measure between two consecutive layer
// weight matrices used by the convergence analysis (§5.2, assumption B):
// ‖W₂ᵀW₂ − W₁W₁ᵀ‖_F in the paper's convention where Wⱼ maps layer j−1 to j.
// Our Dense stores the transpose (x·W), so with wLower of shape d₀×d₁ and
// wUpper of shape d₁×d₂ the measure is ‖wUpper·wUpperᵀ − wLowerᵀ·wLower‖_F
// (both d₁×d₁). Small values mean the stack is approximately balanced.
func DeltaBalance(wLower, wUpper *tensor.Matrix) float64 {
	if wLower.Cols != wUpper.Rows {
		panic(fmt.Sprintf("nn: DeltaBalance shape mismatch %dx%d then %dx%d",
			wLower.Rows, wLower.Cols, wUpper.Rows, wUpper.Cols))
	}
	a := tensor.MatMulABT(wUpper, wUpper) // wUpper·wUpperᵀ (d₁×d₁)
	b := tensor.MatMulATB(wLower, wLower) // wLowerᵀ·wLower (d₁×d₁)
	a.Sub(b)
	return a.FrobeniusNorm()
}
