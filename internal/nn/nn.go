// Package nn is a small, self-contained neural-network engine: dense layers,
// ReLU activations, a softmax cross-entropy head, stochastic gradient descent
// with momentum, and per-parameter weight freezing.
//
// It exists because NDPipe's fine-tuning workload only ever *trains* a
// classifier head (a few MLP layers) on features produced by a frozen
// backbone. That workload runs end-to-end on this engine: PipeStores execute
// the frozen feature-extraction layers (forward pass only, identical to
// inference — §2.1 of the paper), and the Tuner trains the trainable layers
// with real gradient descent. Accuracy-shaped experiments (drift, outdated
// labels, pipelined-run catastrophic forgetting) therefore exercise genuine
// learning dynamics, not canned numbers.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ndpipe/internal/tensor"
)

// Param is one learnable (or frozen) parameter matrix with its gradient.
type Param struct {
	Name   string
	W      *tensor.Matrix
	Grad   *tensor.Matrix
	Frozen bool
}

// Layer is a differentiable network stage.
//
// Buffer-ownership contract (the allocation-free kernel discipline,
// DESIGN.md S29): Forward may return layer-owned scratch that stays valid
// only until the layer's next Forward call — callers that need the output
// past that point must copy it. Forward must not mutate its input.
// Backward takes ownership of grad (it may mutate it in place) and its
// return value follows the same scratch rule. Layers are therefore stateful
// and a single Layer/Network must not run Forward/Backward concurrently.
type Layer interface {
	// Forward computes the layer output for a batch (rows = samples).
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients along the way.
	Backward(grad *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's parameters (may be empty).
	Params() []*Param
	// Name identifies the layer for serialization and diffing.
	Name() string
}

// Dense is a fully connected layer: y = xW + b.
//
// The layer owns per-layer scratch for its output, input gradient and
// weight-gradient product, reused across batches (see the buffer-ownership
// contract on Layer): steady-state training allocates nothing.
type Dense struct {
	name  string
	w, b  *Param
	input *tensor.Matrix // cached for backward

	out *tensor.Matrix // forward scratch: xW + b
	gw  *tensor.Matrix // backward scratch: xᵀ·grad before accumulation
	bg  []float64      // backward scratch: column sums of grad
	dx  *tensor.Matrix // backward scratch: grad·Wᵀ
}

// NewDense creates an in×out dense layer with Glorot-uniform weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(in, out)
	w.GlorotInit(rng, in, out)
	return &Dense{
		name: name,
		w:    &Param{Name: name + ".w", W: w, Grad: tensor.New(in, out)},
		b:    &Param{Name: name + ".b", W: tensor.New(1, out), Grad: tensor.New(1, out)},
	}
}

// In returns the input width of the layer.
func (d *Dense) In() int { return d.w.W.Rows }

// Out returns the output width of the layer.
func (d *Dense) Out() int { return d.w.W.Cols }

// Freeze marks the layer's parameters as non-trainable (weight-freeze layer).
func (d *Dense) Freeze() {
	d.w.Frozen = true
	d.b.Frozen = true
}

// Frozen reports whether the layer's parameters are frozen.
func (d *Dense) Frozen() bool { return d.w.Frozen }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	d.input = x
	d.out = tensor.Reuse(d.out, x.Rows, d.w.W.Cols)
	tensor.MatMulInto(d.out, x, d.w.W)
	d.out.AddRowVector(d.b.W.Data)
	return d.out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if !d.w.Frozen {
		d.gw = tensor.Reuse(d.gw, d.w.W.Rows, d.w.W.Cols)
		tensor.MatMulATBInto(d.gw, d.input, grad)
		d.w.Grad.Add(d.gw)
		d.bg = tensor.ReuseSlice(d.bg, grad.Cols)
		grad.ColSumsInto(d.bg)
		for j, v := range d.bg {
			d.b.Grad.Data[j] += v
		}
	}
	d.dx = tensor.Reuse(d.dx, grad.Rows, d.w.W.Rows)
	tensor.MatMulABTInto(d.dx, grad, d.w.W)
	return d.dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// ReLU is the rectified linear activation.
type ReLU struct {
	name string
	mask *tensor.Matrix
	out  *tensor.Matrix // forward scratch; mask is its pooled companion
}

// NewReLU creates a named ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Forward implements Layer. The input is copied into layer-owned scratch and
// rectified in place with a reused mask — no per-batch allocation.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.out = tensor.Reuse(r.out, x.Rows, x.Cols)
	x.CopyInto(r.out)
	r.mask = tensor.Reuse(r.mask, x.Rows, x.Cols)
	r.out.ReluInto(r.mask)
	return r.out
}

// Backward implements Layer. Per the Layer contract it takes ownership of
// grad and masks it in place.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	grad.MulElem(r.mask)
	return grad
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer

	// params caches the flattened parameter list so the training hot loop
	// (TrainBatch → Step/ZeroGrads) does not rebuild the slice every batch.
	// Invalidated when len(Layers) changes; replacing a layer in place
	// without changing the count is not supported.
	params       []*Param
	paramsLayers int
}

// NewMLP builds Dense/ReLU stacks for the given widths, e.g. dims
// {2048, 512, 100} produces Dense(2048→512)·ReLU·Dense(512→100).
func NewMLP(prefix string, dims []int, rng *rand.Rand) *Network {
	if len(dims) < 2 {
		panic("nn: NewMLP needs at least two dims")
	}
	n := &Network{}
	for i := 0; i < len(dims)-1; i++ {
		n.Layers = append(n.Layers, NewDense(fmt.Sprintf("%s.fc%d", prefix, i), dims[i], dims[i+1], rng))
		if i < len(dims)-2 {
			n.Layers = append(n.Layers, NewReLU(fmt.Sprintf("%s.relu%d", prefix, i)))
		}
	}
	return n
}

// Forward runs the whole stack.
func (n *Network) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardInto runs the stack on x and copies the output into dst, which is
// resized via tensor.Reuse (nil allocates). It is the batched-inference
// entry point for callers that must hold network outputs past the next
// Forward call: per the Layer buffer-ownership contract, Forward returns
// layer scratch that the next Forward (any goroutine, once the caller's
// lock is released) overwrites in place. Returns dst.
func (n *Network) ForwardInto(dst, x *tensor.Matrix) *tensor.Matrix {
	out := n.Forward(x)
	dst = tensor.Reuse(dst, out.Rows, out.Cols)
	out.CopyInto(dst)
	return dst
}

// Backward propagates ∂L/∂logits back through the stack.
func (n *Network) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all parameters in layer order. The slice is cached and
// shared across calls — treat it as read-only.
func (n *Network) Params() []*Param {
	if n.params != nil && n.paramsLayers == len(n.Layers) {
		return n.params
	}
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	n.params = ps
	n.paramsLayers = len(n.Layers)
	return ps
}

// TrainableParams returns only the non-frozen parameters.
func (n *Network) TrainableParams() []*Param {
	var ps []*Param
	for _, p := range n.Params() {
		if !p.Frozen {
			ps = append(ps, p)
		}
	}
	return ps
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// FreezeAll freezes every parameter in the network.
func (n *Network) FreezeAll() {
	for _, p := range n.Params() {
		p.Frozen = true
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.Data)
	}
	return total
}

// Stack returns a network that runs a then b (used to compose a frozen
// feature extractor with a trainable classifier, exactly the FT-DMP split).
func Stack(a, b *Network) *Network {
	out := &Network{}
	out.Layers = append(out.Layers, a.Layers...)
	out.Layers = append(out.Layers, b.Layers...)
	return out
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits against
// integer labels and the gradient ∂L/∂logits. The logits are left untouched
// (the gradient is a fresh matrix); the training hot path uses
// SoftmaxCrossEntropyInPlace instead.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, grad *tensor.Matrix) {
	probs := logits.Clone()
	return SoftmaxCrossEntropyInPlace(probs, labels), probs
}

// SoftmaxCrossEntropyInPlace is the allocation-free softmax head: it takes
// ownership of logits, overwrites it with the gradient ∂L/∂logits =
// (softmax(logits) − onehot)/n, and returns the mean cross-entropy loss.
func SoftmaxCrossEntropyInPlace(logits *tensor.Matrix, labels []int) (loss float64) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), logits.Rows))
	}
	logits.SoftmaxRows()
	n := float64(logits.Rows)
	for i, y := range labels {
		p := logits.At(i, y)
		loss -= math.Log(math.Max(p, 1e-15))
		logits.Set(i, y, p-1)
	}
	logits.Scale(1 / n)
	return loss / n
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]*tensor.Matrix
}

// NewSGD creates an optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]*tensor.Matrix)}
}

// Step applies one update to every non-frozen parameter and zeroes its grad.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			continue
		}
		v, ok := o.vel[p]
		if !ok {
			v = tensor.New(p.W.Rows, p.W.Cols)
			o.vel[p] = v
		}
		v.Scale(o.Momentum)
		v.AXPY(-o.LR, p.Grad)
		p.W.Add(v)
		p.Grad.Zero()
	}
}

// TrainBatch runs one forward/backward/update step and returns the loss.
// Steady state (shapes unchanged since the previous batch) it performs no
// heap allocation: the logits buffer is consumed in place as the loss
// gradient and every layer reuses its own scratch.
func TrainBatch(n *Network, opt *SGD, x *tensor.Matrix, labels []int) float64 {
	logits := n.Forward(x)
	loss := SoftmaxCrossEntropyInPlace(logits, labels)
	n.Backward(logits)
	opt.Step(n.Params())
	return loss
}

// Accuracy evaluates top-1 and top-k accuracy of the network on (x, labels).
func Accuracy(n *Network, x *tensor.Matrix, labels []int, k int) (top1, topK float64) {
	logits := n.Forward(x)
	pred := logits.ArgmaxRows()
	topk := logits.TopKRows(k)
	var c1, ck int
	for i, y := range labels {
		if pred[i] == y {
			c1++
		}
		for _, j := range topk[i] {
			if j == y {
				ck++
				break
			}
		}
	}
	total := float64(len(labels))
	return float64(c1) / total, float64(ck) / total
}

// DeltaBalance returns the δ-balance measure between two consecutive layer
// weight matrices used by the convergence analysis (§5.2, assumption B):
// ‖W₂ᵀW₂ − W₁W₁ᵀ‖_F in the paper's convention where Wⱼ maps layer j−1 to j.
// Our Dense stores the transpose (x·W), so with wLower of shape d₀×d₁ and
// wUpper of shape d₁×d₂ the measure is ‖wUpper·wUpperᵀ − wLowerᵀ·wLower‖_F
// (both d₁×d₁). Small values mean the stack is approximately balanced.
func DeltaBalance(wLower, wUpper *tensor.Matrix) float64 {
	if wLower.Cols != wUpper.Rows {
		panic(fmt.Sprintf("nn: DeltaBalance shape mismatch %dx%d then %dx%d",
			wLower.Rows, wLower.Cols, wUpper.Rows, wUpper.Cols))
	}
	a := tensor.MatMulABT(wUpper, wUpper) // wUpper·wUpperᵀ (d₁×d₁)
	b := tensor.MatMulATB(wLower, wLower) // wLowerᵀ·wLower (d₁×d₁)
	a.Sub(b)
	return a.FrobeniusNorm()
}
