package nn

import (
	"fmt"
	"math"

	"ndpipe/internal/tensor"
)

// BatchNorm normalizes each feature column over the batch and applies a
// learnable affine transform (γ, β). Training mode uses batch statistics
// and maintains running estimates; eval mode uses the running estimates —
// the standard construction the paper's CNN backbones are full of.
type BatchNorm struct {
	name     string
	dim      int
	Train    bool
	Eps      float64
	Momentum float64 // running-stat update rate

	gamma, beta *Param

	runMean, runVar []float64

	// backward caches and reused scratch (Layer buffer-ownership contract)
	xhat           *tensor.Matrix
	std            []float64
	center         *tensor.Matrix
	out            *tensor.Matrix
	dx             *tensor.Matrix
	mean, variance []float64
	dgamma, dbeta  []float64
}

// NewBatchNorm creates a BatchNorm over dim features in training mode.
func NewBatchNorm(name string, dim int) *BatchNorm {
	g := tensor.New(1, dim)
	g.Fill(1)
	bn := &BatchNorm{
		name: name, dim: dim, Train: true, Eps: 1e-5, Momentum: 0.1,
		gamma:   &Param{Name: name + ".gamma", W: g, Grad: tensor.New(1, dim)},
		beta:    &Param{Name: name + ".beta", W: tensor.New(1, dim), Grad: tensor.New(1, dim)},
		runMean: make([]float64, dim),
		runVar:  make([]float64, dim),
	}
	for i := range bn.runVar {
		bn.runVar[i] = 1
	}
	return bn
}

// Freeze marks γ and β as non-trainable.
func (b *BatchNorm) Freeze() { b.gamma.Frozen = true; b.beta.Frozen = true }

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != b.dim {
		panic(fmt.Sprintf("nn: batchnorm %s input width %d, want %d", b.name, x.Cols, b.dim))
	}
	b.out = tensor.Reuse(b.out, x.Rows, x.Cols)
	out := b.out
	if !b.Train {
		for i := 0; i < x.Rows; i++ {
			src, dst := x.Row(i), out.Row(i)
			for j := 0; j < b.dim; j++ {
				xhat := (src[j] - b.runMean[j]) / math.Sqrt(b.runVar[j]+b.Eps)
				dst[j] = b.gamma.W.Data[j]*xhat + b.beta.W.Data[j]
			}
		}
		b.xhat = nil
		return out
	}
	n := float64(x.Rows)
	b.mean = tensor.ReuseSlice(b.mean, b.dim)
	mean := b.mean
	for j := range mean {
		mean[j] = 0
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	b.variance = tensor.ReuseSlice(b.variance, b.dim)
	variance := b.variance
	for j := range variance {
		variance[j] = 0
	}
	b.center = tensor.Reuse(b.center, x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		src, c := x.Row(i), b.center.Row(i)
		for j, v := range src {
			d := v - mean[j]
			c[j] = d
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}
	b.std = tensor.ReuseSlice(b.std, b.dim)
	for j := range b.std {
		b.std[j] = math.Sqrt(variance[j] + b.Eps)
	}
	b.xhat = tensor.Reuse(b.xhat, x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		c, xh, dst := b.center.Row(i), b.xhat.Row(i), out.Row(i)
		for j := 0; j < b.dim; j++ {
			xh[j] = c[j] / b.std[j]
			dst[j] = b.gamma.W.Data[j]*xh[j] + b.beta.W.Data[j]
		}
	}
	for j := 0; j < b.dim; j++ {
		b.runMean[j] = (1-b.Momentum)*b.runMean[j] + b.Momentum*mean[j]
		b.runVar[j] = (1-b.Momentum)*b.runVar[j] + b.Momentum*variance[j]
	}
	return out
}

// Backward implements Layer (training-mode batch statistics).
func (b *BatchNorm) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if b.xhat == nil {
		// Eval mode: a per-column affine map.
		b.dx = tensor.Reuse(b.dx, grad.Rows, grad.Cols)
		out := b.dx
		for i := 0; i < grad.Rows; i++ {
			g, dst := grad.Row(i), out.Row(i)
			for j := 0; j < b.dim; j++ {
				dst[j] = g[j] * b.gamma.W.Data[j] / math.Sqrt(b.runVar[j]+b.Eps)
			}
		}
		return out
	}
	n := float64(grad.Rows)
	// Parameter gradients.
	b.dgamma = tensor.ReuseSlice(b.dgamma, b.dim)
	b.dbeta = tensor.ReuseSlice(b.dbeta, b.dim)
	dgamma, dbeta := b.dgamma, b.dbeta
	for j := range dgamma {
		dgamma[j] = 0
		dbeta[j] = 0
	}
	for i := 0; i < grad.Rows; i++ {
		g, xh := grad.Row(i), b.xhat.Row(i)
		for j := 0; j < b.dim; j++ {
			dgamma[j] += g[j] * xh[j]
			dbeta[j] += g[j]
		}
	}
	if !b.gamma.Frozen {
		for j := 0; j < b.dim; j++ {
			b.gamma.Grad.Data[j] += dgamma[j]
			b.beta.Grad.Data[j] += dbeta[j]
		}
	}
	// Input gradient:
	// dx = γ/(n·σ) · (n·dy − Σdy − x̂·Σ(dy·x̂))
	b.dx = tensor.Reuse(b.dx, grad.Rows, grad.Cols)
	out := b.dx
	for i := 0; i < grad.Rows; i++ {
		g, xh, dst := grad.Row(i), b.xhat.Row(i), out.Row(i)
		for j := 0; j < b.dim; j++ {
			dst[j] = b.gamma.W.Data[j] / (n * b.std[j]) *
				(n*g[j] - dbeta[j] - xh[j]*dgamma[j])
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.gamma, b.beta} }

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.name }
