package nn

import (
	"fmt"

	"ndpipe/internal/tensor"
)

// Quantized inference for the frozen backbone. A QuantNetwork is a
// forward-only int8 replica of a Dense/ReLU network: weights are quantized
// once at build time (symmetric per output column), activations are
// quantized on the fly with *calibrated* static per-layer parameters —
// min/max observed while running a sample batch through the f64 network.
// Static parameters matter twice over: they keep the codes a pure
// elementwise function of the input (bitwise-reproducible across nodes,
// runs and worker counts — the same contract the f64 kernels give), and
// they let post-ReLU layers spend all 8 bits on the live half-axis.
//
// Training never sees any of this: the f64 network is untouched, and a
// QuantNetwork has no backward pass at all.

// Precision-mode names, used by the serving cache key and telemetry so f64
// and int8 artifacts can never be mistaken for one another.
const (
	PrecisionF64  = "f64"
	PrecisionInt8 = "int8"
)

// quantDense is one quantized Dense layer with its optional fused ReLU.
type quantDense struct {
	name  string
	w     *tensor.QWeights
	bias  []float64
	scale float64 // calibrated input scale
	zero  int32   // calibrated input zero point
	relu  bool    // rectify after bias (fused following ReLU layer)

	qin tensor.QMatrix // quantization scratch, reused per batch
	out *tensor.Matrix // forward scratch
}

// QuantNetwork is an int8 forward-only replica of a Dense/ReLU network.
// Like Network, it owns per-layer scratch: Forward returns a buffer valid
// only until the next Forward call, and a single QuantNetwork must not run
// Forward concurrently.
type QuantNetwork struct {
	layers []*quantDense
	inDim  int
	outDim int
}

// Quantize builds a quantized replica of n, calibrating per-layer
// activation ranges by running calib (a representative sample batch)
// through the f64 network. Only Dense and ReLU layers are supported — a
// ReLU must directly follow a Dense, which fuses it; anything else (conv,
// batch-norm) returns an error. n itself is not modified beyond its usual
// forward scratch.
func Quantize(n *Network, calib *tensor.Matrix) (*QuantNetwork, error) {
	if len(n.Layers) == 0 {
		return nil, fmt.Errorf("nn: cannot quantize an empty network")
	}
	if calib == nil || calib.Rows == 0 {
		return nil, fmt.Errorf("nn: quantization needs a non-empty calibration batch")
	}
	qn := &QuantNetwork{}
	x := calib
	for i := 0; i < len(n.Layers); i++ {
		d, ok := n.Layers[i].(*Dense)
		if !ok {
			return nil, fmt.Errorf("nn: cannot quantize layer %q (%T): only Dense/ReLU backbones are supported", n.Layers[i].Name(), n.Layers[i])
		}
		if x.Cols != d.In() {
			return nil, fmt.Errorf("nn: calibration batch width %d != layer %q input %d", x.Cols, d.Name(), d.In())
		}
		lo, hi := 0.0, 0.0
		for _, v := range x.Data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		scale, zero := tensor.AffineParams(lo, hi)
		ql := &quantDense{
			name:  d.Name(),
			w:     tensor.QuantizeWeights(d.w.W),
			bias:  append([]float64(nil), d.b.W.Data...),
			scale: scale,
			zero:  zero,
		}
		x = d.Forward(x)
		if i+1 < len(n.Layers) {
			if r, ok := n.Layers[i+1].(*ReLU); ok {
				ql.relu = true
				x = r.Forward(x)
				i++
			} else if _, ok := n.Layers[i+1].(*Dense); !ok {
				return nil, fmt.Errorf("nn: cannot quantize layer %q (%T): only Dense/ReLU backbones are supported", n.Layers[i+1].Name(), n.Layers[i+1])
			}
		}
		qn.layers = append(qn.layers, ql)
	}
	qn.inDim = qn.layers[0].w.In
	qn.outDim = qn.layers[len(qn.layers)-1].w.Out
	return qn, nil
}

// In returns the network's input width.
func (qn *QuantNetwork) In() int { return qn.inDim }

// Out returns the network's output width.
func (qn *QuantNetwork) Out() int { return qn.outDim }

// Forward runs the quantized stack on a batch. Per layer: quantize the f64
// input with the calibrated parameters, int8 matmul, dequantized f64 output
// plus bias, exact f64 ReLU. The returned matrix is layer-owned scratch
// (same contract as Network.Forward); steady state allocates nothing.
func (qn *QuantNetwork) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range qn.layers {
		tensor.QuantizeCalibratedInto(&l.qin, x, l.scale, l.zero)
		l.out = tensor.Reuse(l.out, x.Rows, l.w.Out)
		tensor.QMatMulInto(l.out, &l.qin, l.w)
		l.out.AddRowVector(l.bias)
		if l.relu {
			for i, v := range l.out.Data {
				if v < 0 {
					l.out.Data[i] = 0
				}
			}
		}
		x = l.out
	}
	return x
}

// ForwardInto runs the stack on x and copies the output into dst, resized
// via tensor.Reuse (nil allocates) — for callers that must hold the output
// past the next Forward. Returns dst.
func (qn *QuantNetwork) ForwardInto(dst, x *tensor.Matrix) *tensor.Matrix {
	out := qn.Forward(x)
	dst = tensor.Reuse(dst, out.Rows, out.Cols)
	out.CopyInto(dst)
	return dst
}
