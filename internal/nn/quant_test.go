package nn

import (
	"math"
	"math/rand"
	"testing"

	"ndpipe/internal/tensor"
)

func quantFixture(t *testing.T, seed int64) (*Network, *QuantNetwork, *tensor.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := NewMLP("bb", []int{24, 64, 32}, rng)
	net.FreezeAll()
	calib := tensor.New(256, 24)
	calib.RandNormal(rng, 0.5)
	qn, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(32, 24)
	x.RandNormal(rng, 0.5)
	return net, qn, x
}

// TestQuantForwardTracksF64 bounds the quantized forward error against the
// f64 reference: per-layer 8-bit codes on calibrated ranges keep the output
// within a few percent of the activation magnitude — close enough that the
// accuracy experiments downstream see top-1 deltas under a point.
func TestQuantForwardTracksF64(t *testing.T) {
	net, qn, x := quantFixture(t, 21)
	want := net.Forward(x).Clone()
	got := qn.Forward(x)
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("quant output %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	var rms, maxErr float64
	for i := range want.Data {
		rms += want.Data[i] * want.Data[i]
		if d := math.Abs(got.Data[i] - want.Data[i]); d > maxErr {
			maxErr = d
		}
	}
	rms = math.Sqrt(rms / float64(len(want.Data)))
	if maxErr > 0.15*math.Max(rms, 1e-6) && maxErr > 0.05 {
		t.Fatalf("quantized forward max error %g vs output RMS %g — quantization is off the rails", maxErr, rms)
	}
}

// TestQuantForwardDeterministic: two independently built replicas (same
// seed, same calibration) produce bitwise-identical embeddings at any
// parallelism — the cross-store contract offline inference relies on.
func TestQuantForwardDeterministic(t *testing.T) {
	t.Cleanup(func() { tensor.SetParallelism(0) })
	_, qa, x := quantFixture(t, 33)
	_, qb, _ := quantFixture(t, 33)
	tensor.SetParallelism(1)
	want := qa.Forward(x).Clone()
	for _, par := range []int{2, 4} {
		tensor.SetParallelism(par)
		got := qb.Forward(x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("parallelism %d: element %d = %v, want %v (bit-identical)", par, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestQuantForwardZeroAllocSteadyState mirrors the f64 inference contract.
func TestQuantForwardZeroAllocSteadyState(t *testing.T) {
	_, qn, x := quantFixture(t, 44)
	qn.Forward(x) // warm-up sizes scratch
	allocs := testing.AllocsPerRun(10, func() {
		qn.Forward(x)
	})
	if allocs != 0 {
		t.Fatalf("quantized Forward steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestQuantizeRejectsUnsupportedLayers: conv/batch-norm backbones must be
// refused up front, not mis-executed.
func TestQuantizeRejectsUnsupportedLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv, err := NewConv2D("c", 1, 4, 6, 2, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := &Network{Layers: []Layer{conv}}
	calib := tensor.New(8, 24)
	calib.RandNormal(rng, 1)
	if _, err := Quantize(net, calib); err == nil {
		t.Fatal("quantizing a conv backbone must error")
	}
	bn := &Network{Layers: []Layer{NewDense("d", 24, 16, rng), NewBatchNorm("bn", 16)}}
	if _, err := Quantize(bn, calib); err == nil {
		t.Fatal("quantizing a batch-norm backbone must error")
	}
	if _, err := Quantize(&Network{}, calib); err == nil {
		t.Fatal("quantizing an empty network must error")
	}
	if _, err := Quantize(&Network{Layers: []Layer{NewDense("d", 24, 16, rng)}}, nil); err == nil {
		t.Fatal("quantizing without a calibration batch must error")
	}
}

// TestQuantizeFusesReLU: the fused path must clamp negatives exactly like
// the f64 ReLU (exact zeros, not small residues).
func TestQuantizeFusesReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewMLP("m", []int{8, 16, 4}, rng)
	calib := tensor.New(64, 8)
	calib.RandNormal(rng, 1)
	qn, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	if len(qn.layers) != 2 || !qn.layers[0].relu || qn.layers[1].relu {
		t.Fatalf("expected [dense+relu, dense], got %d layers (relu flags %v/%v)",
			len(qn.layers), qn.layers[0].relu, qn.layers[len(qn.layers)-1].relu)
	}
	if qn.In() != 8 || qn.Out() != 4 {
		t.Fatalf("dims %d→%d, want 8→4", qn.In(), qn.Out())
	}
}
