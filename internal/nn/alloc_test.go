package nn

import (
	"math/rand"
	"testing"

	"ndpipe/internal/tensor"
)

// TestTrainBatchZeroAllocSteadyState is the allocation contract of the
// scratch-reuse refactor: after a warm-up step sizes every layer's buffers,
// a full TrainBatch (forward, softmax loss, backward, SGD step) allocates
// nothing.
func TestTrainBatchZeroAllocSteadyState(t *testing.T) {
	// 4 lanes with a product over the parallel threshold: the worker-pool
	// dispatch itself must also be allocation-free.
	t.Cleanup(func() { tensor.SetParallelism(0) })
	tensor.SetParallelism(4)
	rng := rand.New(rand.NewSource(1))
	const batch, dim, classes = 32, 64, 10
	x := tensor.New(batch, dim)
	x.RandNormal(rng, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % classes
	}
	net := NewMLP("clf", []int{dim, 48, classes}, rng)
	opt := NewSGD(0.05, 0.9)
	// Warm-up: sizes layer scratch, SGD velocity and the cached params slice.
	for i := 0; i < 3; i++ {
		TrainBatch(net, opt, x, labels)
	}
	allocs := testing.AllocsPerRun(10, func() {
		TrainBatch(net, opt, x, labels)
	})
	if allocs != 0 {
		t.Fatalf("TrainBatch steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestForwardZeroAllocSteadyState covers the inference path (the per-upload
// online classification and the NPE feature-extraction batches).
func TestForwardZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewMLP("bb", []int{32, 64, 16}, rng)
	x := tensor.New(8, 32)
	x.RandNormal(rng, 1)
	net.Forward(x)
	allocs := testing.AllocsPerRun(10, func() {
		net.Forward(x)
	})
	if allocs != 0 {
		t.Fatalf("Forward steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTrainDeterministicAcrossParallelism trains three identically seeded
// networks at different kernel parallelism levels; weights must stay
// bit-identical (the tensor layer's determinism contract, observed through
// a whole training loop).
func TestTrainDeterministicAcrossParallelism(t *testing.T) {
	t.Cleanup(func() { tensor.SetParallelism(0) })
	const batch, dim, classes, steps = 64, 128, 10, 5
	mk := func() (*Network, *tensor.Matrix, []int) {
		rng := rand.New(rand.NewSource(9))
		net := NewMLP("clf", []int{dim, 96, classes}, rng)
		x := tensor.New(batch, dim)
		x.RandNormal(rng, 1)
		labels := make([]int, batch)
		for i := range labels {
			labels[i] = i % classes
		}
		return net, x, labels
	}
	train := func(par int) Snapshot {
		tensor.SetParallelism(par)
		net, x, labels := mk()
		opt := NewSGD(0.05, 0.9)
		for s := 0; s < steps; s++ {
			TrainBatch(net, opt, x, labels)
		}
		return net.TakeSnapshot()
	}
	want := train(1)
	for _, par := range []int{4, 0} { // 0 = GOMAXPROCS default
		got := train(par)
		for name, m := range want {
			g, ok := got[name]
			if !ok {
				t.Fatalf("parallelism %d: missing param %s", par, name)
			}
			for i := range m.Data {
				if m.Data[i] != g.Data[i] {
					t.Fatalf("parallelism %d: param %s element %d = %v, want %v (bit-identical)",
						par, name, i, g.Data[i], m.Data[i])
				}
			}
		}
	}
}
