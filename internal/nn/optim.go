package nn

import (
	"math"
	"math/rand"

	"ndpipe/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update to every non-frozen parameter and zeroes its
	// gradient.
	Step(params []*Param)
}

// SGD already satisfies Optimizer (see nn.go); assert it.
var _ Optimizer = (*SGD)(nil)

// Adam is the Adam optimizer (Kingma & Ba) with bias correction — what the
// paper's TensorFlow-side classifier training typically runs.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	t       int
	m, v    map[*Param]*tensor.Matrix
}

// NewAdam creates an Adam optimizer with standard defaults for zero fields.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		if p.Frozen {
			continue
		}
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.W.Rows, p.W.Cols)
			o.m[p] = m
			o.v[p] = tensor.New(p.W.Rows, p.W.Cols)
		}
		v := o.v[p]
		for i, g := range p.Grad.Data {
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.W.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Epsilon)
		}
		p.Grad.Zero()
	}
}

// ClipGradients scales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. A no-op when already within bounds.
func ClipGradients(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		if p.Frozen {
			continue
		}
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			if p.Frozen {
				continue
			}
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// StepDecay returns a learning-rate schedule that multiplies base by gamma
// every `every` epochs — the classic staircase used for fine-tuning.
func StepDecay(base, gamma float64, every int) func(epoch int) float64 {
	return func(epoch int) float64 {
		if every <= 0 {
			return base
		}
		return base * math.Pow(gamma, float64(epoch/every))
	}
}

// CosineDecay anneals base → floor over horizon epochs.
func CosineDecay(base, floor float64, horizon int) func(epoch int) float64 {
	return func(epoch int) float64 {
		if horizon <= 0 || epoch >= horizon {
			return floor
		}
		return floor + (base-floor)*0.5*(1+math.Cos(math.Pi*float64(epoch)/float64(horizon)))
	}
}

// Dropout randomly zeroes activations during training (inverted dropout:
// surviving units are scaled so inference needs no correction). Eval mode
// passes inputs through untouched.
type Dropout struct {
	name  string
	Rate  float64
	Train bool
	rng   *rand.Rand
	mask  *tensor.Matrix
	out   *tensor.Matrix // forward scratch, reused across batches
}

// NewDropout creates a dropout layer in training mode.
func NewDropout(name string, rate float64, seed int64) *Dropout {
	return &Dropout{name: name, Rate: rate, Train: true, rng: rand.New(rand.NewSource(seed))}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Matrix) *tensor.Matrix {
	if !d.Train || d.Rate <= 0 {
		d.mask = nil
		return x
	}
	d.out = tensor.Reuse(d.out, x.Rows, x.Cols)
	x.CopyInto(d.out)
	out := d.out
	d.mask = tensor.Reuse(d.mask, x.Rows, x.Cols)
	keep := 1 - d.Rate
	inv := 1 / keep
	for i := range out.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = inv
			out.Data[i] *= inv
		} else {
			d.mask.Data[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer. Masks grad in place (the Layer contract hands
// it ownership of the gradient).
func (d *Dropout) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return grad
	}
	grad.MulElem(d.mask)
	return grad
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }
