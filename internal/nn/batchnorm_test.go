package nn

import (
	"math"
	"math/rand"
	"testing"

	"ndpipe/internal/tensor"
)

func TestBatchNormNormalizesColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bn := NewBatchNorm("bn", 4)
	x := tensor.New(64, 4)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64()*float64(j+1)+float64(j)*10)
		}
	}
	y := bn.Forward(x)
	for j := 0; j < 4; j++ {
		var mean, sq float64
		for i := 0; i < y.Rows; i++ {
			mean += y.At(i, j)
		}
		mean /= float64(y.Rows)
		for i := 0; i < y.Rows; i++ {
			d := y.At(i, j) - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(y.Rows))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean %v, want 0", j, mean)
		}
		if math.Abs(std-1) > 1e-3 {
			t.Fatalf("col %d std %v, want 1", j, std)
		}
	}
}

// TestBatchNormGradientCheck validates the backward pass against finite
// differences through a small network.
func TestBatchNormGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bn := NewBatchNorm("bn", 6)
	net := &Network{Layers: []Layer{
		NewDense("fc0", 4, 6, rng),
		bn,
		NewReLU("r"),
		NewDense("fc1", 6, 3, rng),
	}}
	x := tensor.New(8, 4)
	x.RandNormal(rng, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}

	net.ZeroGrads()
	_, grad := SoftmaxCrossEntropy(net.Forward(x), labels)
	net.Backward(grad)

	for _, p := range net.Params() {
		for _, i := range []int{0, len(p.W.Data) - 1} {
			got := p.Grad.Data[i]
			want := numericalGrad(net, x, labels, p, i)
			if math.Abs(got-want) > 2e-5 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bn := NewBatchNorm("bn", 3)
	// Train on shifted data so running stats move off (0, 1).
	for e := 0; e < 200; e++ {
		x := tensor.New(32, 3)
		for i := 0; i < 32; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, rng.NormFloat64()*2+5)
			}
		}
		bn.Forward(x)
	}
	bn.Train = false
	// A single input at exactly the running mean must normalize to ~β (=0).
	x := tensor.New(1, 3)
	for j := 0; j < 3; j++ {
		x.Set(0, j, bn.runMean[j])
	}
	y := bn.Forward(x)
	for j := 0; j < 3; j++ {
		if math.Abs(y.At(0, j)) > 1e-9 {
			t.Fatalf("eval at running mean gave %v, want 0", y.At(0, j))
		}
	}
	// Eval mode is deterministic (no batch dependence): a singleton batch
	// and a repeated batch agree.
	xx := tensor.New(2, 3)
	copy(xx.Row(0), x.Row(0))
	copy(xx.Row(1), x.Row(0))
	yy := bn.Forward(xx)
	if math.Abs(yy.At(0, 0)-y.At(0, 0)) > 1e-12 {
		t.Fatal("eval output must not depend on batch composition")
	}
}

func TestBatchNormFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm("bn", 5)
	bn.Freeze()
	net := &Network{Layers: []Layer{NewDense("fc", 5, 5, rng), bn, NewDense("out", 5, 2, rng)}}
	x := tensor.New(6, 5)
	x.RandNormal(rng, 1)
	opt := NewSGD(0.5, 0.9)
	gammaBefore := bn.gamma.W.Clone()
	for i := 0; i < 3; i++ {
		TrainBatch(net, opt, x, []int{0, 1, 0, 1, 0, 1})
	}
	if tensor.MaxAbsDiff(gammaBefore, bn.gamma.W) != 0 {
		t.Fatal("frozen γ moved")
	}
}

func TestBatchNormTrainingHelpsShiftedData(t *testing.T) {
	// With a large input shift, a BN-equipped head should learn fine.
	rng := rand.New(rand.NewSource(5))
	const n, dim = 240, 6
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64()+100) // big shift
		}
		x.Set(i, c, x.At(i, c)+4)
	}
	net := &Network{Layers: []Layer{
		NewBatchNorm("bn", dim),
		NewDense("fc", dim, 16, rng),
		NewReLU("r"),
		NewDense("out", 16, 3, rng),
	}}
	opt := NewSGD(0.1, 0.9)
	for e := 0; e < 80; e++ {
		TrainBatch(net, opt, x, labels)
	}
	top1, _ := Accuracy(net, x, labels, 1)
	if top1 < 0.9 {
		t.Fatalf("BN head failed on shifted data: %.2f", top1)
	}
}
