package nn

import (
	"fmt"
	"math/rand"

	"ndpipe/internal/tensor"
)

// Conv2D is a 2-D convolution layer over NCHW inputs flattened row-major
// into the batch matrix: each sample row is C·H·W values. It uses im2col +
// matrix multiply, the standard CPU formulation, and supports stride and
// zero padding. With it, genuinely convolutional weight-freeze backbones
// (the Conv1..Conv5 stages of the paper's CNNs) can run on this engine.
type Conv2D struct {
	name          string
	inC, inH, inW int
	outC, kH, kW  int
	stride, pad   int
	outH, outW    int
	w, b          *Param // w: (inC·kH·kW)×outC
	cols          *tensor.Matrix
	batch         int

	// Reused scratch (see the Layer buffer-ownership contract): forward
	// output and per-sample product, backward gradient reassembly, column
	// gradient, input gradient and bias column sums.
	out, prod    *tensor.Matrix
	g, dCols, dx *tensor.Matrix
	wg           *tensor.Matrix
	bg           []float64
}

// NewConv2D creates a convolution with the given geometry. Weights use
// Glorot initialization over the receptive field.
func NewConv2D(name string, inC, inH, inW, outC, k, stride, pad int, rng *rand.Rand) (*Conv2D, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: invalid conv geometry")
	}
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: conv %s produces empty output (%dx%d)", name, outH, outW)
	}
	fanIn := inC * k * k
	w := tensor.New(fanIn, outC)
	w.GlorotInit(rng, fanIn, outC*k*k)
	return &Conv2D{
		name: name,
		inC:  inC, inH: inH, inW: inW,
		outC: outC, kH: k, kW: k,
		stride: stride, pad: pad,
		outH: outH, outW: outW,
		w: &Param{Name: name + ".w", W: w, Grad: tensor.New(fanIn, outC)},
		b: &Param{Name: name + ".b", W: tensor.New(1, outC), Grad: tensor.New(1, outC)},
	}, nil
}

// OutShape returns the per-sample output dimensions (C, H, W).
func (c *Conv2D) OutShape() (int, int, int) { return c.outC, c.outH, c.outW }

// OutFloats returns the flattened output width.
func (c *Conv2D) OutFloats() int { return c.outC * c.outH * c.outW }

// InFloats returns the flattened input width.
func (c *Conv2D) InFloats() int { return c.inC * c.inH * c.inW }

// Freeze marks the kernel as non-trainable.
func (c *Conv2D) Freeze() { c.w.Frozen = true; c.b.Frozen = true }

// im2col unrolls one sample's patches into rows of (inC·kH·kW).
func (c *Conv2D) im2col(sample []float64, out *tensor.Matrix) {
	row := 0
	for oy := 0; oy < c.outH; oy++ {
		for ox := 0; ox < c.outW; ox++ {
			dst := out.Row(row)
			i := 0
			for ch := 0; ch < c.inC; ch++ {
				base := ch * c.inH * c.inW
				for ky := 0; ky < c.kH; ky++ {
					y := oy*c.stride + ky - c.pad
					for kx := 0; kx < c.kW; kx++ {
						x := ox*c.stride + kx - c.pad
						if y < 0 || y >= c.inH || x < 0 || x >= c.inW {
							dst[i] = 0
						} else {
							dst[i] = sample[base+y*c.inW+x]
						}
						i++
					}
				}
			}
			row++
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != c.InFloats() {
		panic(fmt.Sprintf("nn: conv %s input width %d, want %d", c.name, x.Cols, c.InFloats()))
	}
	c.batch = x.Rows
	patches := c.outH * c.outW
	// Cache all samples' im2col matrices stacked for backward.
	c.cols = tensor.Reuse(c.cols, x.Rows*patches, c.inC*c.kH*c.kW)
	c.out = tensor.Reuse(c.out, x.Rows, c.OutFloats())
	c.prod = tensor.Reuse(c.prod, patches, c.outC)
	out := c.out
	var view tensor.Matrix
	view.Rows, view.Cols = patches, c.cols.Cols
	for s := 0; s < x.Rows; s++ {
		view.Data = c.cols.Data[s*patches*c.cols.Cols : (s+1)*patches*c.cols.Cols]
		c.im2col(x.Row(s), &view)
		tensor.MatMulInto(c.prod, &view, c.w.W) // patches×outC
		dst := out.Row(s)
		for p := 0; p < patches; p++ {
			for oc := 0; oc < c.outC; oc++ {
				// NCHW layout: channel-major flattening.
				dst[oc*patches+p] = c.prod.At(p, oc) + c.b.W.Data[oc]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	patches := c.outH * c.outW
	c.dx = tensor.Reuse(c.dx, c.batch, c.InFloats())
	c.dx.Zero() // scatter-add target
	c.g = tensor.Reuse(c.g, patches, c.outC)
	c.dCols = tensor.Reuse(c.dCols, patches, c.cols.Cols)
	c.wg = tensor.Reuse(c.wg, c.w.W.Rows, c.w.W.Cols)
	c.bg = tensor.ReuseSlice(c.bg, c.outC)
	dx := c.dx
	g := c.g
	var view tensor.Matrix
	view.Rows, view.Cols = patches, c.cols.Cols
	for s := 0; s < c.batch; s++ {
		// Reassemble this sample's gradient as patches×outC.
		src := grad.Row(s)
		for p := 0; p < patches; p++ {
			for oc := 0; oc < c.outC; oc++ {
				g.Set(p, oc, src[oc*patches+p])
			}
		}
		view.Data = c.cols.Data[s*patches*c.cols.Cols : (s+1)*patches*c.cols.Cols]
		if !c.w.Frozen {
			tensor.MatMulATBInto(c.wg, &view, g)
			c.w.Grad.Add(c.wg)
			g.ColSumsInto(c.bg)
			for oc, v := range c.bg {
				c.b.Grad.Data[oc] += v
			}
		}
		// dCols = g × wᵀ, then col2im scatter-add back to the input.
		dCols := c.dCols
		tensor.MatMulABTInto(dCols, g, c.w.W)
		dst := dx.Row(s)
		row := 0
		for oy := 0; oy < c.outH; oy++ {
			for ox := 0; ox < c.outW; ox++ {
				srcRow := dCols.Row(row)
				i := 0
				for ch := 0; ch < c.inC; ch++ {
					base := ch * c.inH * c.inW
					for ky := 0; ky < c.kH; ky++ {
						y := oy*c.stride + ky - c.pad
						for kx := 0; kx < c.kW; kx++ {
							x := ox*c.stride + kx - c.pad
							if y >= 0 && y < c.inH && x >= 0 && x < c.inW {
								dst[base+y*c.inW+x] += srcRow[i]
							}
							i++
						}
					}
				}
				row++
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// GlobalAvgPool2D averages each channel's H×W plane down to one value —
// the pooling between the paper's Conv5 stage and its FC classifier, and
// the reason the +Conv5 cut ships only `channels` floats per image.
type GlobalAvgPool2D struct {
	name     string
	channels int
	plane    int // H·W

	out, dx *tensor.Matrix // reused scratch
}

// NewGlobalAvgPool2D pools C×H×W inputs (flattened) to C outputs.
func NewGlobalAvgPool2D(name string, channels, h, w int) *GlobalAvgPool2D {
	return &GlobalAvgPool2D{name: name, channels: channels, plane: h * w}
}

// Forward implements Layer.
func (g *GlobalAvgPool2D) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != g.channels*g.plane {
		panic(fmt.Sprintf("nn: pool %s input width %d, want %d", g.name, x.Cols, g.channels*g.plane))
	}
	g.out = tensor.Reuse(g.out, x.Rows, g.channels)
	out := g.out
	inv := 1 / float64(g.plane)
	for s := 0; s < x.Rows; s++ {
		src := x.Row(s)
		dst := out.Row(s)
		for c := 0; c < g.channels; c++ {
			var sum float64
			for i := 0; i < g.plane; i++ {
				sum += src[c*g.plane+i]
			}
			dst[c] = sum * inv
		}
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	g.dx = tensor.Reuse(g.dx, grad.Rows, g.channels*g.plane)
	out := g.dx
	inv := 1 / float64(g.plane)
	for s := 0; s < grad.Rows; s++ {
		src := grad.Row(s)
		dst := out.Row(s)
		for c := 0; c < g.channels; c++ {
			v := src[c] * inv
			for i := 0; i < g.plane; i++ {
				dst[c*g.plane+i] = v
			}
		}
	}
	return out
}

// Params implements Layer.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }

// Name implements Layer.
func (g *GlobalAvgPool2D) Name() string { return g.name }
