package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row(1)[2] = %v, want 7.5", row[2])
	}
	row[0] = 1 // views share storage
	if m.At(1, 0) != 1 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(5, 7)
	m.RandNormal(rng, 1)
	tt := m.Transpose().Transpose()
	if !Equal(m, tt, 0) {
		t.Fatal("transpose twice must be identity")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := New(n, k), New(k, p)
		a.RandNormal(r, 1)
		b.RandNormal(r, 1)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return Equal(lhs, rhs, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMulATB(a,b) == aᵀ·b and MatMulABT(a,b) == a·bᵀ.
func TestFusedTransposeProducts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, p := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b := New(k, n), New(k, p)
		a.RandNormal(r, 1)
		b.RandNormal(r, 1)
		if !Equal(MatMulATB(a, b), MatMul(a.Transpose(), b), 1e-9) {
			return false
		}
		c, d := New(n, k), New(p, k)
		c.RandNormal(r, 1)
		d.RandNormal(r, 1)
		return Equal(MatMulABT(c, d), MatMul(c, d.Transpose()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	m.SoftmaxRows()
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v, want 1", i, sum)
		}
	}
	// Second row tests numerical stability (all-equal large logits → uniform).
	for _, v := range m.Row(1) {
		if math.Abs(v-1.0/3.0) > 1e-9 {
			t.Fatalf("expected uniform softmax, got %v", m.Row(1))
		}
	}
	if m.At(0, 2) <= m.At(0, 1) || m.At(0, 1) <= m.At(0, 0) {
		t.Fatal("softmax must preserve ordering")
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromSlice(3, 3, []float64{0, 5, 1, 9, 2, 3, -1, -2, -0.5})
	got := m.ArgmaxRows()
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgmaxRows = %v, want %v", got, want)
		}
	}
}

func TestTopKRows(t *testing.T) {
	m := FromSlice(1, 5, []float64{0.1, 0.9, 0.3, 0.8, 0.2})
	top := m.TopKRows(3)[0]
	want := []int{1, 3, 2}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopKRows = %v, want %v", top, want)
		}
	}
	// k larger than cols clamps.
	if got := len(m.TopKRows(10)[0]); got != 5 {
		t.Fatalf("TopKRows clamp = %d, want 5", got)
	}
}

func TestReluAndMask(t *testing.T) {
	m := FromSlice(1, 4, []float64{-1, 0, 2, -3})
	mask := m.Relu()
	wantVals := []float64{0, 0, 2, 0}
	wantMask := []float64{0, 0, 1, 0}
	for i := range wantVals {
		if m.Data[i] != wantVals[i] {
			t.Fatalf("relu vals = %v", m.Data)
		}
		if mask.Data[i] != wantMask[i] {
			t.Fatalf("relu mask = %v", mask.Data)
		}
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{10, 20, 30})
	a.Add(b)
	if a.Data[2] != 33 {
		t.Fatalf("Add: %v", a.Data)
	}
	a.Sub(b)
	if a.Data[2] != 3 {
		t.Fatalf("Sub: %v", a.Data)
	}
	a.Scale(2)
	if a.Data[0] != 2 {
		t.Fatalf("Scale: %v", a.Data)
	}
	a.AXPY(0.5, b)
	if a.Data[1] != 4+10 {
		t.Fatalf("AXPY: %v", a.Data)
	}
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := New(2, 3)
	m.AddRowVector([]float64{1, 2, 3})
	sums := m.ColSums()
	want := []float64{2, 4, 6}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("ColSums = %v, want %v", sums, want)
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{1, 5, 2})
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestSetRow(t *testing.T) {
	m := New(3, 2)
	m.SetRow(1, []float64{7, 8})
	if m.At(1, 0) != 7 || m.At(1, 1) != 8 {
		t.Fatalf("row 1 = %v", m.Row(1))
	}
	if m.At(0, 0) != 0 || m.At(2, 1) != 0 {
		t.Fatal("SetRow must not touch other rows")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	m.SetRow(0, []float64{1})
}

func TestGlorotInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(64, 32)
	m.GlorotInit(rng, 64, 32)
	limit := math.Sqrt(6.0 / 96.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("glorot sample %v outside ±%v", v, limit)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := New(128, 128)
	c := New(128, 128)
	a.RandNormal(rng, 1)
	c.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}
