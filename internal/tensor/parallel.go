package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ndpipe/internal/telemetry"
)

// The kernel worker pool. Large matrix products are row-partitioned across
// a package-level pool of long-lived goroutines sized from GOMAXPROCS (or
// SetParallelism). The partitioning never changes the floating-point
// accumulation order of any output element — each element is produced by
// exactly one worker running the same loop the serial kernel runs — so
// results are bit-identical at every parallelism level (see
// TestMatMulDeterministicAcrossParallelism).
//
// Dispatch uses an unbuffered channel with a non-blocking send: a chunk is
// handed to a worker only if one is idle *right now*, otherwise the caller
// runs it inline. Work is therefore never queued behind a busy pool, which
// makes nested parallel kernels (a worker's task calling parallelFor again)
// deadlock-free by construction.

// Kernel kinds. Dispatch carries a plain value struct naming the kernel and
// its operands instead of a closure: closures sent over a channel escape to
// the heap on every launch, and the steady-state-zero-alloc contract covers
// big parallel products too.
const (
	kindMatMul = iota
	kindMatMulATB
	kindMatMulABT
	kindQMatMul
)

type kernelTask struct {
	kind      int
	out, a, b *Matrix
	qa        *QMatrix  // kindQMatMul operand (a,b unused)
	qb        *QWeights // kindQMatMul operand
	sparse    bool
	lo, hi    int
	wg        *sync.WaitGroup
}

func (t *kernelTask) exec() {
	switch t.kind {
	case kindMatMul:
		matMulRange(t.out, t.a, t.b, t.lo, t.hi, t.sparse)
	case kindMatMulATB:
		matMulATBRange(t.out, t.a, t.b, t.lo, t.hi, t.sparse)
	case kindMatMulABT:
		matMulABTRange(t.out, t.a, t.b, t.lo, t.hi)
	case kindQMatMul:
		qMatMulGroups(t.out, t.qa, t.qb, t.lo, t.hi)
	}
}

var (
	parallelism atomic.Int64 // configured worker count (≥1)

	workCh = make(chan kernelTask) // unbuffered: send succeeds only to an idle worker

	spawnMu sync.Mutex
	spawned int // workers started so far (they never exit)
)

// Pool-utilization telemetry: configured size, live goroutines, and how many
// are executing a chunk right now; per-kernel wall-time histograms for the
// launches big enough to go parallel.
var (
	metWorkersConf = telemetry.Default.Gauge("tensor_pool_workers")
	metWorkersLive = telemetry.Default.Gauge("tensor_pool_workers_live")
	metBusy        = telemetry.Default.Gauge("tensor_pool_busy_workers")
	metInline      = telemetry.Default.Counter("tensor_pool_inline_chunks_total")
	metDispatched  = telemetry.Default.Counter("tensor_pool_dispatched_chunks_total")

	metMatMul    = telemetry.Default.Histogram(`tensor_kernel_seconds{kernel="matmul"}`)
	metMatMulATB = telemetry.Default.Histogram(`tensor_kernel_seconds{kernel="matmul_atb"}`)
	metMatMulABT = telemetry.Default.Histogram(`tensor_kernel_seconds{kernel="matmul_abt"}`)
	metQMatMul   = telemetry.Default.Histogram(`tensor_kernel_seconds{kernel="int8_matmul"}`)
)

func init() {
	setParallelism(runtime.GOMAXPROCS(0))
}

// SetParallelism sets the number of goroutines matrix kernels may use.
// n < 1 resets to GOMAXPROCS. Safe to call concurrently with running
// kernels: in-flight launches keep the partition count they started with,
// and output bits never depend on the worker count anyway.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	setParallelism(n)
}

func setParallelism(n int) {
	parallelism.Store(int64(n))
	metWorkersConf.Set(float64(n))
	ensureWorkers(n - 1) // the caller's goroutine is the n-th lane
}

// Parallelism returns the configured kernel worker count.
func Parallelism() int { return int(parallelism.Load()) }

func ensureWorkers(n int) {
	spawnMu.Lock()
	for spawned < n {
		go worker()
		spawned++
	}
	metWorkersLive.Set(float64(spawned))
	spawnMu.Unlock()
}

func worker() {
	for t := range workCh {
		metBusy.Add(1)
		t.exec()
		metBusy.Add(-1)
		t.wg.Done()
	}
}

// wgPool recycles the per-launch WaitGroup so a parallel launch performs no
// heap allocation at all (the task structs travel by value).
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// parallelKernel splits [0, rows) into up to Parallelism() contiguous chunks
// of at least minRows rows and runs the named kernel on each, one chunk per
// goroutine. Each chunk writes only its own output rows. Falls back to a
// single inline call when the range is too small or the pool is down to one
// lane.
func parallelKernel(kind int, out, a, b *Matrix, sparse bool, rows, minRows int) {
	dispatchChunks(kernelTask{kind: kind, out: out, a: a, b: b, sparse: sparse}, rows, minRows)
}

// parallelQuantKernel is the int8 analogue: the partition unit is the 3-row
// group of the packed layout (a group's rows share packed words, so a chunk
// boundary inside one would have two workers writing the same outputs).
func parallelQuantKernel(out *Matrix, qa *QMatrix, qb *QWeights, groups, minGroups int) {
	dispatchChunks(kernelTask{kind: kindQMatMul, out: out, qa: qa, qb: qb}, groups, minGroups)
}

// dispatchChunks partitions [0, rows) for task t across the pool.
func dispatchChunks(t kernelTask, rows, minRows int) {
	p := Parallelism()
	if minRows < 1 {
		minRows = 1
	}
	chunks := rows / minRows
	if chunks > p {
		chunks = p
	}
	if p <= 1 || chunks < 2 {
		t.hi = rows
		t.exec()
		return
	}
	chunk := (rows + chunks - 1) / chunks
	wg := wgPool.Get().(*sync.WaitGroup)
	t.wg = wg
	for lo := chunk; lo < rows; lo += chunk {
		t.lo, t.hi = lo, min(lo+chunk, rows)
		wg.Add(1)
		select {
		case workCh <- t:
			metDispatched.Add(1)
		default:
			// No idle worker: run this chunk on the caller. Correctness is
			// unaffected (same rows, same loops), and not queueing keeps
			// nested kernels deadlock-free.
			metInline.Add(1)
			t.exec()
			wg.Done()
		}
	}
	t.lo, t.hi = 0, min(chunk, rows) // the caller always takes the first chunk
	t.exec()
	wg.Wait()
	wgPool.Put(wg)
}

// observeKernel records a kernel wall time when the launch was large enough
// to be timed (tiny serial launches skip the clock entirely).
func observeKernel(h *telemetry.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
