package tensor

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// randMatrix fills a rows×cols matrix with deterministic values; zeroFrac
// of the entries are forced to zero (post-ReLU-shaped inputs exercise the
// sparse kernels).
func randMatrix(rng *rand.Rand, rows, cols int, zeroFrac float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if rng.Float64() < zeroFrac {
			continue
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func bitsEqual(t *testing.T, name string, want, got *Matrix) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bit-identical)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMulDeterministicAcrossParallelism is the determinism contract: all
// three products produce bit-identical results at every parallelism level,
// including shapes big enough to fan out, odd sizes that straddle block and
// chunk boundaries, and half-zero activation-shaped inputs.
func TestMatMulDeterministicAcrossParallelism(t *testing.T) {
	t.Cleanup(func() { SetParallelism(0) })
	shapes := []struct {
		n, k, p  int
		zeroFrac float64
	}{
		{3, 5, 7, 0},
		{64, 64, 64, 0},
		{97, 131, 61, 0},    // odd sizes, straddles kkBlock and chunk edges
		{128, 256, 96, 0.5}, // big enough to parallelize, post-ReLU shaped
		{256, 64, 256, 0.9},
		{1, 300, 1, 0},
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range shapes {
		a := randMatrix(rng, s.n, s.k, s.zeroFrac)
		b := randMatrix(rng, s.k, s.p, 0)
		at := randMatrix(rng, s.k, s.n, s.zeroFrac) // for ATB: k×n
		bt := randMatrix(rng, s.p, s.k, 0)          // for ABT: p×k

		SetParallelism(1)
		wantMM := MatMul(a, b)
		wantATB := MatMulATB(at, b)
		wantABT := MatMulABT(a, bt)

		for _, par := range []int{2, 4, 0} { // 0 = GOMAXPROCS default
			SetParallelism(par)
			bitsEqual(t, "MatMul", wantMM, MatMul(a, b))
			bitsEqual(t, "MatMulATB", wantATB, MatMulATB(at, b))
			bitsEqual(t, "MatMulABT", wantABT, MatMulABT(a, bt))
		}
	}
}

// TestConcurrentKernels hammers the worker pool from many goroutines at once
// (run under -race); every caller must get its own correct, untouched result.
func TestConcurrentKernels(t *testing.T) {
	t.Cleanup(func() { SetParallelism(0) })
	SetParallelism(4)
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 96, 128, 0.3)
	b := randMatrix(rng, 128, 96, 0)
	want := MatMul(a, b)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				got := MatMul(a, b)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						select {
						case errs <- "concurrent MatMul diverged":
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestIntoVariantsMatchAllocating checks the destination-passing kernels
// against their allocating counterparts, including reuse of a dirty
// destination (Into must fully overwrite).
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 33, 47, 0.4)
	b := randMatrix(rng, 47, 29, 0)

	dst := New(33, 29)
	dst.Fill(999) // dirty destination must not leak into the product
	MatMulInto(dst, a, b)
	bitsEqual(t, "MatMulInto", MatMul(a, b), dst)

	at := randMatrix(rng, 47, 33, 0)
	dATB := New(33, 29)
	dATB.Fill(-1)
	MatMulATBInto(dATB, at, b)
	bitsEqual(t, "MatMulATBInto", MatMulATB(at, b), dATB)

	bt := randMatrix(rng, 29, 47, 0)
	dABT := New(33, 29)
	dABT.Fill(-1)
	MatMulABTInto(dABT, a, bt)
	bitsEqual(t, "MatMulABTInto", MatMulABT(a, bt), dABT)

	tr := New(47, 33)
	a.TransposeInto(tr)
	bitsEqual(t, "TransposeInto", a.Transpose(), tr)
}

func TestIntoAliasPanics(t *testing.T) {
	a := New(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto with aliased destination did not panic")
		}
	}()
	MatMulInto(a, a, New(8, 8))
}

func TestIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto with wrong destination shape did not panic")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(3, 4))
}

func TestReluInto(t *testing.T) {
	m := FromSlice(1, 4, []float64{-1, 0, 2, -3})
	mask := New(1, 4)
	mask.Fill(9) // dirty mask must be fully rewritten, zeros included
	m.ReluInto(mask)
	for i, want := range []float64{0, 0, 2, 0} {
		if m.Data[i] != want {
			t.Fatalf("relu[%d] = %v, want %v", i, m.Data[i], want)
		}
	}
	for i, want := range []float64{0, 0, 1, 0} {
		if mask.Data[i] != want {
			t.Fatalf("mask[%d] = %v, want %v", i, mask.Data[i], want)
		}
	}
}

func TestColSumsInto(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := []float64{99, 99, 99} // must be zeroed first
	m.ColSumsInto(dst)
	for i, want := range []float64{5, 7, 9} {
		if dst[i] != want {
			t.Fatalf("colsum[%d] = %v, want %v", i, dst[i], want)
		}
	}
}

func TestPoolGetPut(t *testing.T) {
	m := Get(10, 10)
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Get returned a non-zero matrix")
		}
	}
	m.Fill(3)
	Put(m)
	// A pooled buffer coming back around must be zeroed again.
	m2 := Get(9, 11)
	if m2.Rows != 9 || m2.Cols != 11 {
		t.Fatalf("Get shape %dx%d", m2.Rows, m2.Cols)
	}
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("recycled Get buffer was not zero-filled")
		}
	}
	Put(m2)
	// Put of a non-pool matrix (odd capacity) must be a safe no-op.
	Put(New(3, 5))
	Put(nil)
}

func TestReuse(t *testing.T) {
	m := New(4, 8)
	if got := Reuse(m, 4, 8); got != m {
		t.Fatal("Reuse with matching shape must return the same header")
	}
	// Shape change within capacity: new header, same backing array, and the
	// old header stays valid (callers may hold views across a Reuse).
	got := Reuse(m, 2, 8)
	if got == m {
		t.Fatal("Reuse with a different shape must return a fresh header")
	}
	if &got.Data[0] != &m.Data[0] {
		t.Fatal("Reuse within capacity must keep the backing array")
	}
	if m.Rows != 4 || len(m.Data) != 32 {
		t.Fatal("Reuse mutated the old header")
	}
	// Growth allocates.
	big := Reuse(m, 100, 100)
	if big.Rows != 100 || big.Cols != 100 {
		t.Fatalf("Reuse growth shape %dx%d", big.Rows, big.Cols)
	}
	if nilCase := Reuse(nil, 3, 3); nilCase.Rows != 3 || nilCase.Cols != 3 {
		t.Fatal("Reuse(nil) must allocate")
	}
	s := ReuseSlice(nil, 5)
	if len(s) != 5 {
		t.Fatal("ReuseSlice(nil) length")
	}
	if s2 := ReuseSlice(s, 3); &s2[0] != &s[0] {
		t.Fatal("ReuseSlice within capacity must reslice")
	}
}

// TestTopKRowsOracle checks the bounded-selection TopKRows against a plain
// sort-based oracle, with duplicate-heavy rows where tie-breaking (equal
// values rank by ascending index) is what distinguishes implementations.
func TestTopKRowsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		cols := 1 + rng.Intn(40)
		m := New(1, cols)
		for i := range m.Data {
			// Few distinct values → lots of duplicates.
			m.Data[i] = float64(rng.Intn(5))
		}
		k := rng.Intn(cols + 2) // sometimes k > cols
		got := m.TopKRows(k)[0]

		oracle := make([]int, cols)
		for i := range oracle {
			oracle[i] = i
		}
		row := m.Row(0)
		sort.SliceStable(oracle, func(a, b int) bool {
			if row[oracle[a]] != row[oracle[b]] {
				return row[oracle[a]] > row[oracle[b]]
			}
			return oracle[a] < oracle[b]
		})
		want := oracle[:min(k, cols)]
		if len(got) != len(want) {
			t.Fatalf("trial %d: len=%d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: row %v k=%d: got %v, want %v", trial, row, k, got, want)
			}
		}
	}
}

func TestIsSparseProbe(t *testing.T) {
	// Small matrices keep the historical always-skip behaviour.
	if !isSparse(New(4, 4)) {
		t.Fatal("small matrix must use the zero-skip kernel")
	}
	dense := New(100, 100)
	dense.Fill(1)
	if isSparse(dense) {
		t.Fatal("dense large matrix misclassified as sparse")
	}
	half := New(100, 100)
	for i := range half.Data {
		if i%2 == 0 {
			half.Data[i] = 1
		}
	}
	if !isSparse(half) {
		t.Fatal("half-zero large matrix misclassified as dense")
	}
}
