package tensor

import (
	"math/bits"
	"sync"

	"ndpipe/internal/telemetry"
)

// A size-bucketed scratch arena for transient matrices. Hot paths that need
// a matrix for one batch (feature-extraction inputs, minibatch slices,
// softmax scratch) Get one here and Put it back, so steady-state traffic
// recycles a handful of power-of-two buffers instead of allocating fresh
// Rows×Cols storage every call.
//
// Ownership rules (see DESIGN.md S29): Get transfers ownership to the
// caller; Put transfers it back and the caller must not touch the matrix —
// or any header previously Reuse'd from it — afterwards. Never Put a matrix
// whose Data the caller handed to someone else (e.g. wrapped in a wire
// message): copy first.

const (
	poolMinBits = 6  // smallest class: 64 floats (512 B)
	poolMaxBits = 24 // largest class: 16 Mi floats (128 MiB)
)

var (
	poolClasses [poolMaxBits - poolMinBits + 1]sync.Pool

	metPoolHits   = telemetry.Default.Counter("tensor_pool_get_hits_total")
	metPoolMisses = telemetry.Default.Counter("tensor_pool_get_misses_total")
)

// poolClass returns the index of the smallest class holding need floats,
// or -1 if need exceeds the largest class (such requests are not pooled).
func poolClass(need int) int {
	if need <= 0 {
		return 0
	}
	b := bits.Len(uint(need - 1)) // ceil(log2(need))
	if b < poolMinBits {
		b = poolMinBits
	}
	if b > poolMaxBits {
		return -1
	}
	return b - poolMinBits
}

// Get returns a zero-filled rows×cols matrix, reusing pooled storage when a
// suitable buffer is available. Return it with Put when done.
func Get(rows, cols int) *Matrix {
	need := rows * cols
	c := poolClass(need)
	if c < 0 {
		metPoolMisses.Add(1)
		return New(rows, cols)
	}
	if v := poolClasses[c].Get(); v != nil {
		metPoolHits.Add(1)
		m := v.(*Matrix)
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:need]
		for i := range m.Data {
			m.Data[i] = 0
		}
		return m
	}
	metPoolMisses.Add(1)
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, need, 1<<(c+poolMinBits))}
}

// Put returns a matrix obtained from Get to the arena. Matrices with
// non-class capacities (e.g. built by New or FromSlice) are dropped
// silently, so Put is always safe to call.
func Put(m *Matrix) {
	if m == nil {
		return
	}
	c := poolClass(cap(m.Data))
	if c < 0 || cap(m.Data) != 1<<(c+poolMinBits) {
		return
	}
	poolClasses[c].Put(m)
}

// Reuse returns a rows×cols matrix backed by m's storage when it fits:
// the same header if the shape already matches, a fresh header over the
// same array if only the shape changed, or a brand-new matrix if m is nil
// or too small. Contents are unspecified — callers must fully overwrite
// (MatMulInto and friends do). Store the result back into the scratch slot:
//
//	d.out = tensor.Reuse(d.out, rows, cols)
func Reuse(m *Matrix, rows, cols int) *Matrix {
	if m != nil && m.Rows == rows && m.Cols == cols {
		return m
	}
	need := rows * cols
	if m != nil && cap(m.Data) >= need {
		return &Matrix{Rows: rows, Cols: cols, Data: m.Data[:need]}
	}
	return New(rows, cols)
}

// ReuseSlice is the []float64 analogue of Reuse: it returns s resliced to
// length n when capacity allows, or a new slice. Contents are unspecified.
func ReuseSlice(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
