package tensor

import (
	"fmt"
	"time"
)

// Destination-passing ("Into") kernels. Every product has a variant that
// writes into a caller-owned destination instead of allocating, which is what
// lets the nn engine and the NPE feature-extraction path run steady-state
// allocation-free. The destination is always fully overwritten and must not
// alias either input.
//
// Tuning constants. kkBlock is the panel height of the packed traversal:
// the kernels walk the shared dimension in kkBlock-row panels of b so a
// panel stays cache-resident while every output row in the worker's range
// consumes it. Blocking never reorders the per-element accumulation (panels
// and rows within a panel are visited in ascending kk), so blocked, serial
// and parallel kernels all produce identical bits.
const (
	kkBlock = 64

	// parallelFlops is the minimum multiply-add count before a product is
	// worth fanning out to the worker pool (and worth timing): below this,
	// goroutine handoff costs more than the arithmetic.
	parallelFlops = 1 << 16

	// minRowsPerChunk keeps row partitions coarse enough that workers don't
	// fight over cache lines at partition boundaries.
	minRowsPerChunk = 8

	// sparseProbeLimit bounds how many elements the sparsity probe samples;
	// sparseMinFrac is the zero fraction above which the zero-skip kernel
	// wins (post-ReLU activations sit near 50 %).
	sparseProbeLimit = 256
	sparseMinFrac    = 0.25
)

// isSparse decides between the zero-skipping and the straight-line inner
// loop. Small single-row inputs keep the historical always-skip behaviour;
// batched and large inputs are probed (activation-shaped matrices coming out
// of a ReLU are roughly half zeros, dense weight/gradient/feature matrices
// have essentially none — and a dense batch earns the register-blocked
// micro-kernel). The decision depends only on the input values and shape,
// never on the worker count, so it cannot break cross-parallelism
// determinism.
func isSparse(a *Matrix) bool {
	n := len(a.Data)
	if n < 4096 && a.Rows < 4 {
		return true
	}
	stride := n / sparseProbeLimit
	if stride < 1 {
		stride = 1
	}
	zeros, probes := 0, 0
	for i := 0; i < n; i += stride {
		if a.Data[i] == 0 {
			zeros++
		}
		probes++
	}
	return float64(zeros) >= sparseMinFrac*float64(probes)
}

// mustNotAlias panics if dst shares backing storage with src — an aliased
// destination would silently corrupt the product mid-accumulation.
func mustNotAlias(op string, dst, src *Matrix) {
	if len(dst.Data) == 0 || len(src.Data) == 0 {
		return
	}
	if &dst.Data[0] == &src.Data[0] {
		panic(fmt.Sprintf("tensor: %s destination aliases an input", op))
	}
}

// MatMulInto computes out = a×b into a caller-owned n×p destination.
// out is fully overwritten and must not alias a or b.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul destination %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	mustNotAlias("MatMulInto", out, a)
	mustNotAlias("MatMulInto", out, b)
	n, k, p := a.Rows, a.Cols, b.Cols
	if n == 0 || p == 0 {
		return
	}
	sparse := isSparse(a)
	if n*k*p >= parallelFlops {
		defer observeKernel(metMatMul, time.Now())
		parallelKernel(kindMatMul, out, a, b, sparse, n, minRowsPerChunk)
		return
	}
	matMulRange(out, a, b, 0, n, sparse)
}

// matMulRange computes output rows [lo,hi) of a×b. Dense ranges of four or
// more rows go through the register-blocked micro-kernel four rows at a
// time — the per-row speedup batched inference actually buys on one core.
// Sparse (activation-shaped) inputs keep the zero-skipping panel loop, which
// measures faster than dense register blocking at ReLU-typical ~50 % zeros;
// the remainder rows also fall back to the panel traversal. Both paths
// accumulate every output element over kk ascending with individually-
// rounded float64 ops (Go never contracts or reassociates), so which path
// computes a row can never change its bits.
func matMulRange(out, a, b *Matrix, lo, hi int, sparse bool) {
	if sparse {
		matMulPanels(out, a, b, lo, hi, true)
		return
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		matMul4Rows(out, a, b, i)
	}
	if i < hi {
		matMulPanels(out, a, b, i, hi, false)
	}
}

// matMul4Rows computes output rows [i,i+4) with a 4×4 register-blocked
// micro-kernel: the 16 accumulators live in registers across the whole kk
// loop, so the output never round-trips through memory per step and each
// loaded b value feeds four rows. A single row can't amortize those loads —
// this is why a coalesced batch is cheaper per photo than four sequential
// forward passes doing identical FLOPs.
func matMul4Rows(out, a, b *Matrix, i int) {
	k, p := a.Cols, b.Cols
	a0 := a.Data[i*k : i*k+k]
	a1 := a.Data[(i+1)*k : (i+1)*k+k]
	a2 := a.Data[(i+2)*k : (i+2)*k+k]
	a3 := a.Data[(i+3)*k : (i+3)*k+k]
	o0 := out.Data[i*p : i*p+p]
	o1 := out.Data[(i+1)*p : (i+1)*p+p]
	o2 := out.Data[(i+2)*p : (i+2)*p+p]
	o3 := out.Data[(i+3)*p : (i+3)*p+p]
	bd := b.Data
	j := 0
	for ; j+4 <= p; j += 4 {
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		for kk := 0; kk < k; kk++ {
			br := bd[kk*p+j : kk*p+j+4 : kk*p+j+4]
			b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
			v := a0[kk]
			c00 += v * b0
			c01 += v * b1
			c02 += v * b2
			c03 += v * b3
			v = a1[kk]
			c10 += v * b0
			c11 += v * b1
			c12 += v * b2
			c13 += v * b3
			v = a2[kk]
			c20 += v * b0
			c21 += v * b1
			c22 += v * b2
			c23 += v * b3
			v = a3[kk]
			c30 += v * b0
			c31 += v * b1
			c32 += v * b2
			c33 += v * b3
		}
		o0[j], o0[j+1], o0[j+2], o0[j+3] = c00, c01, c02, c03
		o1[j], o1[j+1], o1[j+2], o1[j+3] = c10, c11, c12, c13
		o2[j], o2[j+1], o2[j+2], o2[j+3] = c20, c21, c22, c23
		o3[j], o3[j+1], o3[j+2], o3[j+3] = c30, c31, c32, c33
	}
	for ; j < p; j++ {
		var c0, c1, c2, c3 float64
		for kk := 0; kk < k; kk++ {
			bv := bd[kk*p+j]
			c0 += a0[kk] * bv
			c1 += a1[kk] * bv
			c2 += a2[kk] * bv
			c3 += a3[kk] * bv
		}
		o0[j], o1[j], o2[j], o3[j] = c0, c1, c2, c3
	}
}

// matMulPanels computes output rows [lo,hi) of a×b with a kkBlock-panel
// traversal: per output element the accumulation is over kk ascending,
// identical to the classic ikj loop.
func matMulPanels(out, a, b *Matrix, lo, hi int, sparse bool) {
	k, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		orow := out.Data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
	}
	for kk0 := 0; kk0 < k; kk0 += kkBlock {
		kk1 := kk0 + kkBlock
		if kk1 > k {
			kk1 = k
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*p : i*p+p]
			if sparse {
				for kk := kk0; kk < kk1; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := b.Data[kk*p : kk*p+p]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			} else {
				for kk := kk0; kk < kk1; kk++ {
					av := arow[kk]
					brow := b.Data[kk*p : kk*p+p]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulATBInto computes out = aᵀ×b (a is k×n, b is k×p, out n×p) without
// materializing the transpose. out is fully overwritten and must not alias
// a or b.
func MatMulATBInto(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulATB shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulATB destination %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	mustNotAlias("MatMulATBInto", out, a)
	mustNotAlias("MatMulATBInto", out, b)
	n, k, p := a.Cols, a.Rows, b.Cols
	if n == 0 || p == 0 {
		return
	}
	sparse := isSparse(a)
	if n*k*p >= parallelFlops {
		defer observeKernel(metMatMulATB, time.Now())
		parallelKernel(kindMatMulATB, out, a, b, sparse, n, minRowsPerChunk)
		return
	}
	matMulATBRange(out, a, b, 0, n, sparse)
}

// matMulATBRange computes output rows [lo,hi) of aᵀ×b — i.e. columns
// [lo,hi) of a. Panels of b rows are reused across every output row in the
// range; per element the accumulation runs over kk (rows of a) ascending,
// matching the serial kernel bit-for-bit.
func matMulATBRange(out, a, b *Matrix, lo, hi int, sparse bool) {
	k, n, p := a.Rows, a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		orow := out.Data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
	}
	for kk0 := 0; kk0 < k; kk0 += kkBlock {
		kk1 := kk0 + kkBlock
		if kk1 > k {
			kk1 = k
		}
		for i := lo; i < hi; i++ {
			orow := out.Data[i*p : i*p+p]
			for kk := kk0; kk < kk1; kk++ {
				av := a.Data[kk*n+i]
				if sparse && av == 0 {
					continue
				}
				brow := b.Data[kk*p : kk*p+p]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// MatMulABTInto computes out = a×bᵀ (a is n×k, b is p×k, out n×p) without
// materializing the transpose. out is fully overwritten and must not alias
// a or b.
func MatMulABTInto(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulABT shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulABT destination %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	mustNotAlias("MatMulABTInto", out, a)
	mustNotAlias("MatMulABTInto", out, b)
	n, k, p := a.Rows, a.Cols, b.Rows
	if n == 0 || p == 0 {
		return
	}
	if n*k*p >= parallelFlops {
		defer observeKernel(metMatMulABT, time.Now())
		parallelKernel(kindMatMulABT, out, a, b, false, n, minRowsPerChunk)
		return
	}
	matMulABTRange(out, a, b, 0, n)
}

// matMulABTRange computes output rows [lo,hi) of a×bᵀ as row-pair dot
// products; per element the reduction runs over t ascending, matching the
// serial kernel bit-for-bit.
func matMulABTRange(out, a, b *Matrix, lo, hi int) {
	k, p := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*p : (i+1)*p]
		for j := 0; j < p; j++ {
			brow := b.Data[j*k : j*k+k]
			var s float64
			for t, av := range arow {
				s += av * brow[t]
			}
			orow[j] = s
		}
	}
}

// TransposeInto writes mᵀ into a caller-owned Cols×Rows destination, which
// must not alias m.
func (m *Matrix) TransposeInto(dst *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: transpose destination %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Cols, m.Rows))
	}
	mustNotAlias("TransposeInto", dst, m)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst.Data[j*m.Rows+i] = v
		}
	}
}

// CopyInto copies m's contents into dst (same shape required).
func (m *Matrix) CopyInto(dst *Matrix) {
	mustSameShape("CopyInto", dst, m)
	copy(dst.Data, m.Data)
}

// ReluInto applies max(0,x) to m in place and writes the 0/1 positive mask
// into the caller-owned mask matrix (same shape, used by the backward pass).
// The allocation-free form of Relu.
func (m *Matrix) ReluInto(mask *Matrix) {
	mustSameShape("ReluInto", m, mask)
	for i, v := range m.Data {
		if v > 0 {
			mask.Data[i] = 1
		} else {
			m.Data[i] = 0
			mask.Data[i] = 0
		}
	}
}

// ColSumsInto writes the per-column sums of m into dst (length Cols).
func (m *Matrix) ColSumsInto(dst []float64) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSumsInto length %d != cols %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}
