package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// qRef is the scalar int reference for the SWAR kernel: signed codes,
// straight triple loop, same correction algebra. The kernel must match it
// bit for bit (the integer part is exact in both).
func qRef(a *QMatrix, b *QWeights) *Matrix {
	out := New(a.Rows, b.Out)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Out; j++ {
			var s int64
			for kk := 0; kk < a.Cols; kk++ {
				qa := int64(a.Code(i, kk) - a.Zero[i])
				qw := int64(int32(b.UT[j*b.In+kk]) - 128)
				s += qa * qw
			}
			out.Set(i, j, a.Scale[i]*b.Scale[j]*float64(s))
		}
	}
	return out
}

func randMat(rng *rand.Rand, rows, cols int, scale float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}

// TestQuantizeRoundTripErrorBound is the round-trip property test: for any
// input, per-row dynamic quantization reconstructs every element within the
// row's scale (½ scale of value rounding + ½ scale of zero-point rounding).
func TestQuantizeRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][2]int{{1, 7}, {2, 64}, {3, 33}, {5, 128}, {8, 24}, {17, 256}}
	for trial := 0; trial < 20; trial++ {
		rows, cols := shapes[trial%len(shapes)][0], shapes[trial%len(shapes)][1]
		m := randMat(rng, rows, cols, 0.1+rng.Float64()*10)
		if trial%3 == 0 { // post-ReLU shape: half-axis ranges
			for i := range m.Data {
				if m.Data[i] < 0 {
					m.Data[i] = 0
				}
			}
		}
		var q QMatrix
		QuantizeInto(&q, m)
		back := New(rows, cols)
		q.DequantizeInto(back)
		for i := 0; i < rows; i++ {
			bound := q.Scale[i] * (1 + 1e-9)
			for j := 0; j < cols; j++ {
				if d := math.Abs(m.At(i, j) - back.At(i, j)); d > bound {
					t.Fatalf("trial %d: row %d col %d error %g exceeds scale bound %g", trial, i, j, d, bound)
				}
			}
		}
	}
}

// TestQuantizeWeightsRoundTrip checks the symmetric per-column bound: half
// a column scale per element.
func TestQuantizeWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		k, p := 1+rng.Intn(200), 1+rng.Intn(60)
		w := randMat(rng, k, p, 0.5)
		qw := QuantizeWeights(w)
		back := New(k, p)
		qw.DequantizeInto(back)
		for j := 0; j < p; j++ {
			bound := qw.Scale[j]/2 + 1e-12
			for kk := 0; kk < k; kk++ {
				if d := math.Abs(w.At(kk, j) - back.At(kk, j)); d > bound {
					t.Fatalf("trial %d: col %d row %d error %g exceeds half-scale %g", trial, j, kk, d, bound)
				}
			}
		}
	}
}

// TestQuantizeDegenerate covers constant rows, all-zero inputs and exact
// zero representation (a quantized 0 must decode to exactly 0 — the sparse
// post-ReLU structure depends on it).
func TestQuantizeDegenerate(t *testing.T) {
	m := New(3, 8)
	m.Row(1)[3] = 2.5 // row 1 mixed, rows 0 and 2 all zero
	m.Row(1)[5] = -1.25
	var q QMatrix
	QuantizeInto(&q, m)
	back := New(3, 8)
	q.DequantizeInto(back)
	for j := 0; j < 8; j++ {
		if back.At(0, j) != 0 || back.At(2, j) != 0 {
			t.Fatalf("all-zero rows must reconstruct exactly, got %v / %v", back.At(0, j), back.At(2, j))
		}
	}
	if got := back.At(1, 0); got != 0 {
		t.Fatalf("zero element in mixed row reconstructs to %v, want exactly 0", got)
	}
}

// TestQMatMulMatchesIntReference: the SWAR kernel computes the same exact
// integer product as a naive signed triple loop, bit for bit, across odd
// shapes (ragged 3-row groups, odd column counts, non-multiple-of-qDrain
// depths) and both dynamic and calibrated activation quantization.
func TestQMatMulMatchesIntReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shapes := []struct{ n, k, p int }{
		{1, 8, 1}, {2, 31, 3}, {3, 32, 4}, {4, 33, 5}, {5, 64, 26},
		{6, 95, 9}, {7, 96, 10}, {8, 97, 11}, {32, 128, 26}, {33, 256, 17},
	}
	for _, sh := range shapes {
		x := randMat(rng, sh.n, sh.k, 1.5)
		w := randMat(rng, sh.k, sh.p, 0.4)
		var q QMatrix
		QuantizeInto(&q, x)
		qw := QuantizeWeights(w)
		out := New(sh.n, sh.p)
		QMatMulInto(out, &q, qw)
		want := qRef(&q, qw)
		for i := range out.Data {
			if out.Data[i] != want.Data[i] {
				t.Fatalf("shape %+v: element %d = %v, want %v (exact)", sh, i, out.Data[i], want.Data[i])
			}
		}

		QuantizeCalibratedInto(&q, x, 0.02, 117)
		QMatMulInto(out, &q, qw)
		want = qRef(&q, qw)
		for i := range out.Data {
			if out.Data[i] != want.Data[i] {
				t.Fatalf("shape %+v calibrated: element %d = %v, want %v", sh, i, out.Data[i], want.Data[i])
			}
		}
	}
}

// TestQMatMulDeterministicAcrossParallelism is the int8 kernel's version of
// the f64 determinism contract: identical bits at every worker count,
// including products big enough to fan out to the pool.
func TestQMatMulDeterministicAcrossParallelism(t *testing.T) {
	t.Cleanup(func() { SetParallelism(0) })
	rng := rand.New(rand.NewSource(14))
	for _, sh := range []struct{ n, k, p int }{{64, 64, 64}, {65, 128, 33}, {256, 256, 256}} {
		x := randMat(rng, sh.n, sh.k, 1)
		w := randMat(rng, sh.k, sh.p, 1)
		var q QMatrix
		QuantizeInto(&q, x)
		qw := QuantizeWeights(w)
		SetParallelism(1)
		want := New(sh.n, sh.p)
		QMatMulInto(want, &q, qw)
		for _, par := range []int{2, 4, 8, 0} {
			SetParallelism(par)
			got := New(sh.n, sh.p)
			QMatMulInto(got, &q, qw)
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("shape %+v parallelism %d: element %d differs", sh, par, i)
				}
			}
		}
	}
}

// TestQMatMulSaturatesLanes drives the accumulators at their ceiling —
// all-255 codes against all-±127 weights at the depth cap's shape — to
// prove the 21-bit lane discipline and the int64 correction never wrap.
func TestQMatMulSaturatesLanes(t *testing.T) {
	const k = 1024
	x := New(4, k)
	x.Fill(1000) // clamps to code 255 with calibrated scale 1, zero 0
	w := New(k, 3)
	for kk := 0; kk < k; kk++ {
		w.Set(kk, 0, 127)
		w.Set(kk, 1, -127)
		w.Set(kk, 2, 127)
	}
	var q QMatrix
	QuantizeCalibratedInto(&q, x, 1, 0)
	qw := QuantizeWeights(w)
	out := New(4, 3)
	QMatMulInto(out, &q, qw)
	want := qRef(&q, qw)
	for i := range out.Data {
		if out.Data[i] != want.Data[i] {
			t.Fatalf("saturated element %d = %v, want %v", i, out.Data[i], want.Data[i])
		}
	}
	if out.At(0, 0) != 255*127*k {
		t.Fatalf("saturated product = %v, want %v", out.At(0, 0), 255*127*k)
	}
}

// TestQuantZeroAllocSteadyState: quantize + int8 matmul with reused scratch
// allocates nothing once shapes stabilize, like the f64 path — including
// pool-dispatched products.
func TestQuantZeroAllocSteadyState(t *testing.T) {
	t.Cleanup(func() { SetParallelism(0) })
	SetParallelism(4)
	rng := rand.New(rand.NewSource(15))
	x := randMat(rng, 64, 64, 1)
	qw := QuantizeWeights(randMat(rng, 64, 64, 1))
	var q QMatrix
	out := New(64, 64)
	QuantizeCalibratedInto(&q, x, 0.05, 128) // warm-up sizes the scratch
	QMatMulInto(out, &q, qw)
	allocs := testing.AllocsPerRun(10, func() {
		QuantizeCalibratedInto(&q, x, 0.05, 128)
		QMatMulInto(out, &q, qw)
	})
	if allocs != 0 {
		t.Fatalf("quantized steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestQMatMulShapePanics pins the destination/shape contract.
func TestQMatMulShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var q QMatrix
	QuantizeInto(&q, randMat(rng, 4, 8, 1))
	qw := QuantizeWeights(randMat(rng, 8, 5, 1))
	for name, fn := range map[string]func(){
		"inner": func() {
			bad := QuantizeWeights(randMat(rng, 9, 5, 1))
			QMatMulInto(New(4, 5), &q, bad)
		},
		"dest": func() { QMatMulInto(New(4, 6), &q, qw) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkQMatMulGridLocal(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{64, 256, 1024} {
		x := randMat(rng, n, n, 1)
		w := randMat(rng, n, n, 1)
		var q QMatrix
		QuantizeInto(&q, x)
		qw := QuantizeWeights(w)
		out := New(n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				QMatMulInto(out, &q, qw)
			}
		})
	}
}
