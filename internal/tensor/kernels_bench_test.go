package tensor

import (
	"math/rand"
	"testing"
)

// Benchmarks for the matmul paths the online serving experiment leans on:
// single-row (sequential Upload), the kkBlock panel loop, and the 4×4
// register-blocked micro-kernel used for coalesced batches. Shapes mirror
// the default model (backbone 24→64→32, classifier 32→128→26).

func benchMat(rows, cols int, zeroFrac float64, rng *rand.Rand) *Matrix {
	m := Get(rows, cols)
	for i := range m.Data {
		if rng.Float64() < zeroFrac {
			m.Data[i] = 0
		} else {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func benchMatMul(b *testing.B, rows, k, p int, zeroFrac float64) {
	rng := rand.New(rand.NewSource(7))
	a := benchMat(rows, k, zeroFrac, rng)
	w := benchMat(k, p, 0, rng)
	out := Get(rows, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, w)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rows), "ns/row")
}

func BenchmarkMatMulRow1Dense(b *testing.B)     { benchMatMul(b, 1, 24, 64, 0) }
func BenchmarkMatMulRow1Sparse(b *testing.B)    { benchMatMul(b, 1, 64, 32, 0.5) }
func BenchmarkMatMulBatch32Dense(b *testing.B)  { benchMatMul(b, 32, 24, 64, 0) }
func BenchmarkMatMulBatch32Sparse(b *testing.B) { benchMatMul(b, 32, 64, 32, 0.5) }
func BenchmarkMatMulHeadBatch32(b *testing.B)   { benchMatMul(b, 32, 32, 128, 0.5) }
func BenchmarkMatMulHeadRow1(b *testing.B)      { benchMatMul(b, 1, 32, 128, 0.5) }
