// Package tensor provides the dense linear-algebra primitives that back the
// ndpipe neural-network engine (internal/nn).
//
// Everything is float64 and row-major. The package is intentionally small:
// it implements exactly the operations a fine-tuning workload needs (matrix
// multiply, transpose products, elementwise math, softmax, argmax) with no
// external dependencies, so that the rest of the system can run real gradient
// descent on any machine.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero-filled Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a Rows×Cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SetRow copies v into row i. Panics if len(v) != Cols. It is the
// row-assembly primitive of the batched inference path: callers gather
// per-request feature vectors (or cached embeddings) into one design matrix
// before a single batched Forward.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: SetRow length %d != cols %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// RandNormal fills m with N(0, std²) samples drawn from rng.
func (m *Matrix) RandNormal(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// GlorotInit fills m with the Glorot/Xavier uniform initialization for a
// layer with fanIn inputs and fanOut outputs.
func (m *Matrix) GlorotInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MatMul returns a×b. Panics if the inner dimensions disagree.
// Large products run blocked and parallel (see kernels.go / parallel.go);
// output bits are identical at every parallelism level.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulATB returns aᵀ×b (a is k×n, b is k×p, result n×p) without
// materializing the transpose.
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulATB shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	MatMulATBInto(out, a, b)
	return out
}

// MatMulABT returns a×bᵀ (a is n×k, b is p×k, result n×p) without
// materializing the transpose.
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulABT shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	MatMulABTInto(out, a, b)
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add computes m += other elementwise.
func (m *Matrix) Add(other *Matrix) {
	mustSameShape("Add", m, other)
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// Sub computes m -= other elementwise.
func (m *Matrix) Sub(other *Matrix) {
	mustSameShape("Sub", m, other)
	for i, v := range other.Data {
		m.Data[i] -= v
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes m += alpha*other.
func (m *Matrix) AXPY(alpha float64, other *Matrix) {
	mustSameShape("AXPY", m, other)
	for i, v := range other.Data {
		m.Data[i] += alpha * v
	}
}

// AddRowVector adds vector v (length Cols) to every row of m.
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m as a slice of length Cols.
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// SoftmaxRows applies an in-place numerically stable softmax to each row.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func (m *Matrix) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// TopKRows returns, for each row, the indices of its k largest elements in
// descending order of value; equal values rank by ascending index. Runs in
// O(cols·log k) per row via a bounded min-heap (the previous implementation
// did an O(cols·k) insertion scan with a memmove per hit).
func (m *Matrix) TopKRows(k int) [][]int {
	if k > m.Cols {
		k = m.Cols
	}
	out := make([][]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = topK(m.Row(i), k)
	}
	return out
}

// topKLess orders candidates for eviction: index a is a worse answer than
// index b if its value is smaller, or — on ties — if it appeared later.
// The heap keeps the worst candidate at the root.
func topKLess(row []float64, a, b int) bool {
	return row[a] < row[b] || (row[a] == row[b] && a > b)
}

// topK selects the k largest elements of row as a bounded min-heap, then
// heap-sorts the survivors into descending (value, then ascending index)
// order — the same order the insertion-scan version produced.
func topK(row []float64, k int) []int {
	if k <= 0 {
		return []int{}
	}
	h := make([]int, k)
	for j := 0; j < k; j++ {
		h[j] = j
	}
	// Heapify the first k indices (min at h[0]).
	for t := k/2 - 1; t >= 0; t-- {
		topKSiftDown(row, h, t, k)
	}
	for j := k; j < len(row); j++ {
		if topKLess(row, h[0], j) { // j beats the current worst survivor
			h[0] = j
			topKSiftDown(row, h, 0, k)
		}
	}
	// Pop repeatedly: the heap yields ascending order, so fill from the back.
	for end := k - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		topKSiftDown(row, h, 0, end)
	}
	return h
}

func topKSiftDown(row []float64, h []int, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && topKLess(row, h[child+1], h[child]) {
			child++
		}
		if !topKLess(row, h[child], h[root]) {
			return
		}
		h[root], h[child] = h[child], h[root]
		root = child
	}
}

// FrobeniusNorm returns the Frobenius norm ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max|m−other| elementwise; used by delta encoding and tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	mustSameShape("MaxAbsDiff", a, b)
	var max float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Relu applies max(0,x) in place and returns a mask matrix with 1 where the
// input was positive (used by the backward pass).
func (m *Matrix) Relu() *Matrix {
	mask := New(m.Rows, m.Cols)
	m.ReluInto(mask)
	return mask
}

// MulElem computes m *= other elementwise (Hadamard product).
func (m *Matrix) MulElem(other *Matrix) {
	mustSameShape("MulElem", m, other)
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// Equal reports whether a and b have the same shape and every element is
// within tol of its counterpart.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
