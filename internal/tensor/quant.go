package tensor

import (
	"fmt"
	"math"
	"time"
)

// Quantized int8 inference kernels. The f64 kernels in kernels.go bound the
// FLOP rate of one core at roughly one multiply-add per cycle; 8-bit codes
// buy the next multiplier by packing three rows of activation codes into one
// 64-bit word and retiring three multiply-adds per integer multiply (a SWAR
// kernel — SIMD within a register — which is as wide as portable Go gets).
//
// Scheme (the usual affine/symmetric split):
//
//   - activations are quantized asymmetrically per row: x ≈ s·(q − z) with
//     q ∈ [0,255] and zero point z ∈ [0,255], so post-ReLU ranges
//     ([0, max]) spend all 8 bits on the live half-axis;
//   - weights are quantized symmetrically per output column: w ≈ s_b·q_w
//     with q_w ∈ [−127,127], stored biased (q_w+128 ∈ [1,255]) and
//     transposed so the inner loop streams one contiguous byte per step.
//
// The product unwinds exactly: with S = Σ_kk q·(q_w+128), R = Σ_kk q
// (per activation row) and C = Σ_kk q_w (per weight column),
//
//	out[i,j] = s_i · s_bj · (S_ij − 128·R_i − z_i·C_j)
//
// — all-integer until the final scale, so the kernel is exact given the
// codes and therefore bitwise-deterministic at every parallelism level for
// free (integer addition is associative; the f64 kernels have to pin their
// accumulation order to get the same guarantee).
//
// Lane discipline: each of the three 21-bit lanes accumulates products
// ≤ 255·255 = 65025 < 2²¹, so a lane overflows its width only after
// ⌊(2²¹−1)/65025⌋ = 32 steps — qDrain. The kernel drains lanes into int32
// accumulators every 32 kk steps; 2³¹/65025 caps the shared dimension at
// qMaxK rows.
const (
	qLaneBits = 21
	qLaneMask = 1<<qLaneBits - 1
	qDrain    = 32
	qMaxK     = 1 << 15

	// qMinGroupsPerChunk mirrors minRowsPerChunk for the 3-row groups the
	// packed layout is partitioned by.
	qMinGroupsPerChunk = 3
)

// QMatrix is a row-major matrix of asymmetric uint8 activation codes in the
// lane-packed layout the int8 kernel consumes: rows are grouped in threes,
// and word g·Cols+kk carries column kk of rows 3g, 3g+1, 3g+2 in bits 0–20,
// 21–41 and 42–62. Ragged final groups pad with all-zero lanes (they
// contribute nothing and their outputs are never written). Scale, Zero and
// RowSum are per logical row.
//
// A QMatrix is scratch: Quantize*Into reshapes it in place via ReuseQ-style
// growth, so a long-lived holder (e.g. a quantized layer) reaches the f64
// path's zero-alloc steady state.
type QMatrix struct {
	Rows, Cols int
	Scale      []float64 // per-row dequantization scale s
	Zero       []int32   // per-row zero point z ∈ [0,255]
	RowSum     []int32   // per-row Σ codes (kernel correction term R)
	Packed     []uint64  // ceil(Rows/3)·Cols lane-packed codes
}

// qGroups returns the number of 3-row groups covering rows.
func qGroups(rows int) int { return (rows + 2) / 3 }

// resize reshapes q to rows×cols, reusing backing storage when it fits, and
// zeroes the packed region (codes are OR-ed in lane by lane).
func (q *QMatrix) resize(rows, cols int) {
	q.Rows, q.Cols = rows, cols
	q.Scale = ReuseSlice(q.Scale, rows)
	q.Zero = reuseI32(q.Zero, rows)
	q.RowSum = reuseI32(q.RowSum, rows)
	words := qGroups(rows) * cols
	if cap(q.Packed) >= words {
		q.Packed = q.Packed[:words]
	} else {
		q.Packed = make([]uint64, words)
		return
	}
	for i := range q.Packed {
		q.Packed[i] = 0
	}
}

func reuseI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

// Code returns the uint8 code of element (i, kk) — test/debug accessor.
func (q *QMatrix) Code(i, kk int) int32 {
	w := q.Packed[(i/3)*q.Cols+kk]
	return int32((w >> (uint(i%3) * qLaneBits)) & qLaneMask)
}

// setRow quantizes one f64 row with the given scale and zero point, packing
// codes into the row's lane and accumulating the row-sum correction.
func (q *QMatrix) setRow(i int, row []float64, s float64, z int32) {
	q.Scale[i], q.Zero[i] = s, z
	base := (i / 3) * q.Cols
	lane := uint(i%3) * qLaneBits
	inv := 1 / s
	var sum int32
	for kk, v := range row {
		c := int32(math.Round(v*inv)) + z
		if c < 0 {
			c = 0
		} else if c > 255 {
			c = 255
		}
		sum += c
		q.Packed[base+kk] |= uint64(c) << lane
	}
	q.RowSum[i] = sum
}

// AffineParams derives the asymmetric (scale, zero point) pair for the
// value range [lo, hi]. The range is widened to include 0 so the zero point
// is always representable (and exact: post-ReLU zeros quantize to exactly
// z). Degenerate ranges (empty, NaN, ±Inf) fall back to scale 1, zero 0.
// It is a pure function — calibration derived from it on identical inputs
// is identical on every node, which is what keeps quantized inference
// bitwise-reproducible fleet-wide.
func AffineParams(lo, hi float64) (scale float64, zero int32) {
	return affineParams(lo, hi)
}

func affineParams(lo, hi float64) (s float64, z int32) {
	lo = math.Min(lo, 0)
	hi = math.Max(hi, 0)
	s = (hi - lo) / 255
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return 1, 0
	}
	z = int32(math.Round(-lo / s))
	if z < 0 {
		z = 0
	} else if z > 255 {
		z = 255
	}
	return s, z
}

// QuantizeInto quantizes m into q with dynamic per-row asymmetric
// parameters (each row's own min/max). Reconstruction error is bounded by
// the row scale: |x − s·(q−z)| ≤ s per element (½ from value rounding, ½
// from zero-point rounding). q is reshaped in place; steady state with a
// stable shape performs no allocation.
func QuantizeInto(q *QMatrix, m *Matrix) {
	q.resize(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		lo, hi := 0.0, 0.0
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		s, z := affineParams(lo, hi)
		q.setRow(i, row, s, z)
	}
}

// QuantizeCalibratedInto quantizes m into q with a single static
// (scale, zero point) pair — the calibrated per-layer parameters a
// quantized network derives from a sample batch at load time. Values
// outside the calibrated range clamp to the nearest code. The static
// parameters make the codes a pure elementwise function of the input, so
// quantized inference stays bitwise-identical across nodes and runs.
func QuantizeCalibratedInto(q *QMatrix, m *Matrix, scale float64, zero int32) {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		panic(fmt.Sprintf("tensor: calibrated scale %v must be positive and finite", scale))
	}
	if zero < 0 || zero > 255 {
		panic(fmt.Sprintf("tensor: calibrated zero point %d outside [0,255]", zero))
	}
	q.resize(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		q.setRow(i, m.Row(i), scale, zero)
	}
}

// DequantizeInto reconstructs q's values into the caller-owned dst
// (q.Rows×q.Cols): dst[i,kk] = s_i·(code − z_i).
func (q *QMatrix) DequantizeInto(dst *Matrix) {
	if dst.Rows != q.Rows || dst.Cols != q.Cols {
		panic(fmt.Sprintf("tensor: dequantize destination %dx%d, want %dx%d", dst.Rows, dst.Cols, q.Rows, q.Cols))
	}
	for i := 0; i < q.Rows; i++ {
		base := (i / 3) * q.Cols
		lane := uint(i%3) * qLaneBits
		s, z := q.Scale[i], q.Zero[i]
		row := dst.Data[i*q.Cols : (i+1)*q.Cols]
		for kk := range row {
			c := int32((q.Packed[base+kk] >> lane) & qLaneMask)
			row[kk] = s * float64(c-z)
		}
	}
}

// QWeights is a symmetric per-output-column int8 quantization of a weight
// matrix, laid out for the SWAR kernel: UT stores the codes transposed
// (column j of the original is UT[j·In : (j+1)·In]) and biased by +128 so
// they are unsigned bytes. Weights quantize once at model load and are
// immutable afterwards.
type QWeights struct {
	In, Out int
	Scale   []float64 // per-column dequantization scale s_b
	ColSum  []int32   // per-column Σ signed codes (kernel correction term C)
	UT      []uint8   // Out×In transposed biased codes (q_w + 128)
}

// QuantizeWeights quantizes w (In×Out, the x·W layout Dense uses) with a
// symmetric per-output-column scale. Reconstruction error is at most half
// the column scale per element.
func QuantizeWeights(w *Matrix) *QWeights {
	k, p := w.Rows, w.Cols
	if k > qMaxK {
		panic(fmt.Sprintf("tensor: QuantizeWeights input dim %d exceeds %d", k, qMaxK))
	}
	qw := &QWeights{
		In:     k,
		Out:    p,
		Scale:  make([]float64, p),
		ColSum: make([]int32, p),
		UT:     make([]uint8, k*p),
	}
	for j := 0; j < p; j++ {
		var maxAbs float64
		for kk := 0; kk < k; kk++ {
			if a := math.Abs(w.Data[kk*p+j]); a > maxAbs {
				maxAbs = a
			}
		}
		s := maxAbs / 127
		if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			s = 1
		}
		inv := 1 / s
		var sum int32
		ut := qw.UT[j*k : (j+1)*k]
		for kk := 0; kk < k; kk++ {
			c := int32(math.Round(w.Data[kk*p+j] * inv))
			if c < -127 {
				c = -127
			} else if c > 127 {
				c = 127
			}
			sum += c
			ut[kk] = uint8(c + 128)
		}
		qw.Scale[j], qw.ColSum[j] = s, sum
	}
	return qw
}

// DequantizeInto reconstructs the f64 weight matrix into dst (In×Out).
func (qw *QWeights) DequantizeInto(dst *Matrix) {
	if dst.Rows != qw.In || dst.Cols != qw.Out {
		panic(fmt.Sprintf("tensor: dequantize destination %dx%d, want %dx%d", dst.Rows, dst.Cols, qw.In, qw.Out))
	}
	for j := 0; j < qw.Out; j++ {
		s := qw.Scale[j]
		ut := qw.UT[j*qw.In : (j+1)*qw.In]
		for kk, c := range ut {
			dst.Data[kk*qw.Out+j] = s * float64(int32(c)-128)
		}
	}
}

// QMatMulInto computes the dequantized product of quantized activations and
// quantized weights into the caller-owned f64 destination (a.Rows×b.Out).
// The integer part is exact, so output bits never depend on the worker
// count. Large products ride the same worker pool as the f64 kernels,
// partitioned over 3-row groups.
func QMatMulInto(out *Matrix, a *QMatrix, b *QWeights) {
	if a.Cols != b.In {
		panic(fmt.Sprintf("tensor: qmatmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.In, b.Out))
	}
	if out.Rows != a.Rows || out.Cols != b.Out {
		panic(fmt.Sprintf("tensor: qmatmul destination %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Out))
	}
	if a.Cols > qMaxK {
		panic(fmt.Sprintf("tensor: qmatmul shared dim %d exceeds %d", a.Cols, qMaxK))
	}
	n, k, p := a.Rows, a.Cols, b.Out
	if n == 0 || p == 0 {
		return
	}
	groups := qGroups(n)
	if n*k*p >= parallelFlops {
		defer observeKernel(metQMatMul, time.Now())
		parallelQuantKernel(out, a, b, groups, qMinGroupsPerChunk)
		return
	}
	qMatMulGroups(out, a, b, 0, groups)
}

// qMatMulGroups computes the output rows of groups [gLo, gHi). Columns are
// register-blocked in fours: four uint64 accumulators retire twelve
// multiply-adds per loop step (3 packed rows × 4 columns), draining lanes
// into int32 sums every qDrain steps. The qDrain-aligned body converts its
// slices to fixed-size array pointers so the compiler drops every bounds
// check from the hot loop.
func qMatMulGroups(out *Matrix, a *QMatrix, b *QWeights, gLo, gHi int) {
	k, p := a.Cols, b.Out
	kAligned := k - k%qDrain
	for g := gLo; g < gHi; g++ {
		aw := a.Packed[g*k : (g+1)*k]
		j := 0
		for ; j+4 <= p; j += 4 {
			ut0 := b.UT[j*k : (j+1)*k]
			ut1 := b.UT[(j+1)*k : (j+2)*k]
			ut2 := b.UT[(j+2)*k : (j+3)*k]
			ut3 := b.UT[(j+3)*k : (j+4)*k]
			var l0, l1, l2, l3 [3]int32
			for kk := 0; kk < kAligned; kk += qDrain {
				w := (*[qDrain]uint64)(aw[kk:])
				u0 := (*[qDrain]uint8)(ut0[kk:])
				u1 := (*[qDrain]uint8)(ut1[kk:])
				u2 := (*[qDrain]uint8)(ut2[kk:])
				u3 := (*[qDrain]uint8)(ut3[kk:])
				var acc0, acc1, acc2, acc3 uint64
				for t := 0; t < qDrain; t += 4 {
					wv := w[t]
					acc0 += wv * uint64(u0[t])
					acc1 += wv * uint64(u1[t])
					acc2 += wv * uint64(u2[t])
					acc3 += wv * uint64(u3[t])
					wv = w[t+1]
					acc0 += wv * uint64(u0[t+1])
					acc1 += wv * uint64(u1[t+1])
					acc2 += wv * uint64(u2[t+1])
					acc3 += wv * uint64(u3[t+1])
					wv = w[t+2]
					acc0 += wv * uint64(u0[t+2])
					acc1 += wv * uint64(u1[t+2])
					acc2 += wv * uint64(u2[t+2])
					acc3 += wv * uint64(u3[t+2])
					wv = w[t+3]
					acc0 += wv * uint64(u0[t+3])
					acc1 += wv * uint64(u1[t+3])
					acc2 += wv * uint64(u2[t+3])
					acc3 += wv * uint64(u3[t+3])
				}
				qDrainLanes(&l0, acc0)
				qDrainLanes(&l1, acc1)
				qDrainLanes(&l2, acc2)
				qDrainLanes(&l3, acc3)
			}
			if kAligned < k {
				var acc0, acc1, acc2, acc3 uint64
				for kk := kAligned; kk < k; kk++ {
					wv := aw[kk]
					acc0 += wv * uint64(ut0[kk])
					acc1 += wv * uint64(ut1[kk])
					acc2 += wv * uint64(ut2[kk])
					acc3 += wv * uint64(ut3[kk])
				}
				qDrainLanes(&l0, acc0)
				qDrainLanes(&l1, acc1)
				qDrainLanes(&l2, acc2)
				qDrainLanes(&l3, acc3)
			}
			qWriteColumn(out, a, b, g, j, &l0)
			qWriteColumn(out, a, b, g, j+1, &l1)
			qWriteColumn(out, a, b, g, j+2, &l2)
			qWriteColumn(out, a, b, g, j+3, &l3)
		}
		for ; j < p; j++ {
			ut := b.UT[j*k : (j+1)*k]
			var l [3]int32
			for kk := 0; kk < kAligned; kk += qDrain {
				w := (*[qDrain]uint64)(aw[kk:])
				u := (*[qDrain]uint8)(ut[kk:])
				var acc uint64
				for t := 0; t < qDrain; t++ {
					acc += w[t] * uint64(u[t])
				}
				qDrainLanes(&l, acc)
			}
			if kAligned < k {
				var acc uint64
				for kk := kAligned; kk < k; kk++ {
					acc += aw[kk] * uint64(ut[kk])
				}
				qDrainLanes(&l, acc)
			}
			qWriteColumn(out, a, b, g, j, &l)
		}
	}
}

// qDrainLanes unpacks one accumulator's three 21-bit lanes into the running
// per-row int32 sums.
func qDrainLanes(l *[3]int32, acc uint64) {
	l[0] += int32(acc & qLaneMask)
	l[1] += int32((acc >> qLaneBits) & qLaneMask)
	l[2] += int32(acc >> (2 * qLaneBits))
}

// qWriteColumn applies the affine correction and scale to one column of one
// 3-row group and writes the f64 outputs (padding lanes are discarded). The
// correction runs in int64: the lane sum alone can sit near the int32 edge,
// so subtracting the correction terms in 32 bits could wrap.
func qWriteColumn(out *Matrix, a *QMatrix, b *QWeights, g, j int, lanes *[3]int32) {
	cs := int64(b.ColSum[j])
	bs := b.Scale[j]
	i0 := g * 3
	rows := a.Rows - i0
	if rows > 3 {
		rows = 3
	}
	p := out.Cols
	for r := 0; r < rows; r++ {
		i := i0 + r
		v := int64(lanes[r]) - 128*int64(a.RowSum[i]) - int64(a.Zero[i])*cs
		out.Data[i*p+j] = a.Scale[i] * bs * float64(v)
	}
}
