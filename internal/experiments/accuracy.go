package experiments

import (
	"fmt"
	"math/rand"

	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/nn"
)

// lab bundles a drifting world with the deployment's frozen backbone and a
// classifier factory — the shared rig for all accuracy experiments.
type lab struct {
	world    *dataset.World
	backbone *nn.Network
	cfg      dataset.Config
	featDim  int
	head     int
	rng      *rand.Rand
	epochs   int
}

func newLab(p Params) *lab {
	cfg := dataset.DefaultConfig(p.Seed)
	featDim, head, epochs := 32, 128, 40
	if p.Quick {
		cfg.InitialImages = 1200
		epochs = 12
	}
	return &lab{
		world:    dataset.NewWorld(cfg),
		backbone: nn.NewFeatureExtractor(p.Seed, cfg.InputDim, 64, featDim),
		cfg:      cfg,
		featDim:  featDim,
		head:     head,
		rng:      rand.New(rand.NewSource(p.Seed + 100)),
		epochs:   epochs,
	}
}

// feat pushes a raw batch through the frozen backbone.
func (l *lab) feat(b *dataset.Batch) *dataset.Batch {
	return &dataset.Batch{X: l.backbone.Forward(b.X), Labels: b.Labels, IDs: b.IDs}
}

// newClf builds an untrained classifier head.
func (l *lab) newClf() *nn.Network {
	return nn.NewMLP("clf", []int{l.featDim, l.head, l.cfg.MaxClasses}, l.rng)
}

// trainOn fine-tunes clf on the batch to the paper's stopping criterion.
func (l *lab) trainOn(clf *nn.Network, b *dataset.Batch, nrun int) error {
	opt := ftdmp.DefaultTrainOptions()
	opt.MaxEpochs = l.epochs
	opt.Seed = l.rng.Int63()
	_, err := ftdmp.FineTuneRuns(clf, ftdmp.SplitRuns(b, nrun), opt)
	return err
}

// evalToday evaluates on a fresh test set from the world's current day.
func (l *lab) evalToday(clf *nn.Network, n int) (top1, top5 float64) {
	test := l.feat(l.world.FreshTestSet(n))
	return nn.Accuracy(clf, test.X, test.Labels, 5)
}

func (l *lab) sampleSize(want int) int {
	if n := l.world.NumImages(); want > n {
		return n
	}
	return want
}

// Fig4a reproduces the outdated-model experiment (§3.2): top-1 accuracy of
// the day-0 model over two weeks vs biweekly full training vs fine-tuning.
func Fig4a(p Params) (*Table, error) {
	l := newLab(p)
	trainN, testN := l.sampleSize(3000), 2400
	if p.Quick {
		trainN, testN = l.sampleSize(800), 300
	}

	outdated := l.newClf()
	if err := l.trainOn(outdated, l.feat(l.world.SampleStored(trainN)), 1); err != nil {
		return nil, err
	}
	// Fine-tuned model: starts as a copy of the base model.
	tuned := l.newClf()
	if err := tuned.Restore(outdated.TakeSnapshot()); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig4a",
		Title:  "Outdated model problem: top-1 accuracy over two weeks (%)",
		Header: []string{"day", "Outdated", "FullTraining", "FineTuning"},
	}
	addRow := func(day int, full *nn.Network) {
		o1, _ := l.evalToday(outdated, testN)
		f1, _ := l.evalToday(full, testN)
		ft1, _ := l.evalToday(tuned, testN)
		t.Add(fmt.Sprintf("+%dd", day), 100*o1, 100*f1, 100*ft1)
	}
	addRow(0, outdated)
	for day := 1; day <= 14; day++ {
		l.world.AdvanceDay()
		if day%2 != 0 {
			continue
		}
		// Full training: a fresh model on the whole (current) population.
		full := l.newClf()
		if err := l.trainOn(full, l.feat(l.world.SampleStored(trainN)), 1); err != nil {
			return nil, err
		}
		// Fine-tuning: continue the running model on recent data (a
		// several-day window, as narrow windows cause forgetting).
		if err := l.trainOn(tuned, l.feat(l.world.SampleRecent(trainN, 5)), 1); err != nil {
			return nil, err
		}
		addRow(day, full)
	}
	t.Notes = append(t.Notes,
		"paper: base 73.8% decays to 68.9% outdated; fine-tuning holds within ~2 pts of full training")
	return t, nil
}

// Fig4b reproduces the dataset-size study (§3.2): accuracy of fine-tuning
// the pretrained base model as a function of the fine-tuning dataset size.
func Fig4b(p Params) (*Table, error) {
	l := newLab(p)
	trainN, testN := l.sampleSize(3000), 1600
	sizes := []int{125, 250, 500, 1000, 2000, 4000}
	if p.Quick {
		trainN, testN = l.sampleSize(800), 300
		sizes = []int{200, 600}
	}
	base := l.newClf()
	if err := l.trainOn(base, l.feat(l.world.SampleStored(trainN)), 1); err != nil {
		return nil, err
	}
	for d := 0; d < 14; d++ {
		l.world.AdvanceDay()
	}
	t := &Table{
		ID:     "fig4b",
		Title:  "Fine-tuning accuracy vs dataset size (pretrained base, day-14 eval)",
		Header: []string{"images", "top1(%)"},
	}
	s1, _ := l.evalToday(base, testN)
	t.Add(0, 100*s1)
	for _, n := range sizes {
		clf := l.newClf()
		if err := clf.Restore(base.TakeSnapshot()); err != nil {
			return nil, err
		}
		if err := l.trainOn(clf, l.feat(l.world.SampleRecent(l.sampleSize(n), 14)), 1); err != nil {
			return nil, err
		}
		a1, _ := l.evalToday(clf, testN)
		t.Add(n, 100*a1)
	}
	t.Notes = append(t.Notes, "paper: noticeable improvement needs a large dataset (>500K images at ImageNet scale); row 0 is the stale model")
	return t, nil
}

// Table1 reproduces the outdated-label experiment (§3.3): the share of
// labels fixed by each successive biweekly model M1..M4.
func Table1(p Params) (*Table, error) {
	l := newLab(p)
	trainN, labelN := l.sampleSize(3000), 2000
	rounds := 4
	if p.Quick {
		trainN, labelN, rounds = l.sampleSize(800), 500, 2
	}

	label := func(clf *nn.Network, b *dataset.Batch) []int {
		f := l.feat(b)
		return clf.Forward(f.X).ArgmaxRows()
	}
	m0 := l.newClf()
	if err := l.trainOn(m0, l.feat(l.world.SampleStored(trainN)), 1); err != nil {
		return nil, err
	}
	fixed := l.world.SampleStored(labelN) // the 50K-image analogue
	base := label(m0, fixed)

	t := &Table{
		ID:     "table1",
		Title:  "% of labels fixed by new models",
		Header: []string{"model", "fixed(%)"},
	}
	t.Add("M0", 0.0)
	for m := 1; m <= rounds; m++ {
		for d := 0; d < 14; d++ {
			l.world.AdvanceDay()
		}
		clf := l.newClf()
		if err := l.trainOn(clf, l.feat(l.world.SampleStored(trainN)), 1); err != nil {
			return nil, err
		}
		now := label(clf, fixed)
		changed := 0
		for i := range now {
			if now[i] != base[i] {
				changed++
			}
		}
		t.Add(fmt.Sprintf("M%d", m), 100*float64(changed)/float64(len(now)))
	}
	t.Notes = append(t.Notes, "paper: 6.67% fixed by M1 rising to 8.98% by M4")
	return t, nil
}

// Fig17 reproduces the pipelined-training study (§6.3): accuracy and
// simulated training-time saving for Nrun = 1..4.
func Fig17(p Params) (*Table, error) {
	l := newLab(p)
	trainN, testN := l.sampleSize(3000), 2400
	if p.Quick {
		trainN, testN = l.sampleSize(800), 300
	}
	train := l.feat(l.world.SampleStored(trainN))

	base, err := simulateTrainingTime(1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig17",
		Title:  "Pipelined FT-DMP: accuracy and training-time saving vs Nrun (4 PipeStores, ResNet50)",
		Header: []string{"Nrun", "top1(%)", "timeSaved(%)"},
	}
	for _, nrun := range []int{1, 2, 3, 4} {
		clf := l.newClf()
		// Fixed total epoch budget: pipelining splits the same training
		// work across runs, it does not add passes.
		opt := ftdmp.DefaultTrainOptions()
		opt.MaxEpochs = l.epochs / nrun
		if opt.MaxEpochs < 4 {
			opt.MaxEpochs = 4
		}
		opt.Seed = 99
		if _, err := ftdmp.FineTuneRuns(clf, ftdmp.SplitRuns(train, nrun), opt); err != nil {
			return nil, err
		}
		a1, _ := l.evalToday(clf, testN)
		tt, err := simulateTrainingTime(nrun)
		if err != nil {
			return nil, err
		}
		t.Add(nrun, 100*a1, 100*(1-tt/base))
	}
	t.Notes = append(t.Notes,
		"paper: 71.61/71.55/71.52% for Nrun 1–3 with up to 32% time saved; accuracy collapses at Nrun=4 (70.36%)")
	return t, nil
}
