package experiments

import (
	"fmt"
	"net"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/tuner"
)

// Faults measures the quorum round protocol under deterministic store
// failures: a healthy 3-store baseline, a round where one store's
// connection is dropped mid-extraction (degraded commit on the surviving
// quorum), and the recovery round after the victim rejoins through the
// catch-up path. Accuracy is measured on a held-out test set after each
// scenario's round, showing that degraded rounds still learn.
func Faults(p Params) (*Table, error) {
	t := &Table{
		ID:     "faults",
		Title:  "Fault-tolerant FT-DMP rounds: degraded commit and rejoin (3 stores, quorum 2)",
		Header: []string{"scenario", "committed", "degraded", "survivors", "images", "imagesLost", "top1", "wall(ms)"},
	}
	images, testN := 900, 400
	if p.Quick {
		images, testN = 300, 150
	}
	const nStores = 3

	type scenario struct {
		name string
		kill int // store index whose conn drops mid-round (-1 = none)
	}
	for _, sc := range []scenario{{"healthy", -1}, {"one-store-killed", nStores - 1}, {"after-rejoin", nStores - 1}} {
		cfg := core.DefaultModelConfig()
		wcfg := dataset.DefaultConfig(p.Seed)
		wcfg.InitialImages = images
		world := dataset.NewWorld(wcfg)
		test := world.FreshTestSet(testN)

		tn, err := tuner.New(cfg)
		if err != nil {
			return nil, err
		}
		tn.SetRoundOptions(tuner.RoundOptions{
			Quorum:       2,
			StoreTimeout: 10 * time.Second,
			RoundTimeout: 2 * time.Minute,
			Seed:         p.Seed,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		accepted := make(chan error, 1)
		go func() { accepted <- tn.AcceptStores(ln, nStores) }()
		shards := world.Shard(nStores)
		var stores []*pipestore.Node
		var victim *pipestore.Node
		for i := 0; i < nStores; i++ {
			ps, err := pipestore.New(fmt.Sprintf("exp-%d", i), cfg)
			if err != nil {
				return nil, err
			}
			if err := ps.Ingest(shards[i]); err != nil {
				return nil, err
			}
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return nil, err
			}
			if i == sc.kill {
				inj, err := faultinject.New(p.Seed,
					faultinject.Rule{Kind: faultinject.Drop, Op: faultinject.OpWrite, After: 20})
				if err != nil {
					return nil, err
				}
				conn = inj.Conn(conn)
				victim = ps
			}
			go func(ps *pipestore.Node, conn net.Conn) { _ = ps.Serve(conn) }(ps, conn)
			stores = append(stores, ps)
		}
		if err := <-accepted; err != nil {
			return nil, err
		}

		opt := ftdmp.DefaultTrainOptions()
		if p.Quick {
			opt.MaxEpochs = 5
		}
		start := time.Now()
		rep, err := tn.FineTune(2, 128, opt)
		if err != nil {
			tn.Close()
			ln.Close()
			return nil, fmt.Errorf("faults %s: %w", sc.name, err)
		}
		if sc.name == "after-rejoin" && victim != nil {
			// The victim reconnects through the registration/catch-up path
			// and the next round runs at full strength.
			res := make(chan error, 1)
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					res <- err
					return
				}
				res <- tn.AddStore(conn)
			}()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return nil, err
			}
			go func() { _ = victim.Serve(conn) }()
			if err := <-res; err != nil {
				return nil, fmt.Errorf("faults rejoin: %w", err)
			}
			start = time.Now()
			if rep, err = tn.FineTune(2, 128, opt); err != nil {
				tn.Close()
				ln.Close()
				return nil, fmt.Errorf("faults post-rejoin round: %w", err)
			}
		}
		wall := time.Since(start)
		top1, _ := tn.Evaluate(test, 5)
		t.Add(sc.name, rep.ModelVersion, rep.Degraded,
			fmt.Sprintf("%d/%d", rep.Participants-len(rep.FailedStores), rep.Participants),
			rep.Images, rep.ImagesLost, top1, fmt.Sprintf("%d", wall.Milliseconds()))
		tn.Close()
		ln.Close()
	}
	t.Notes = append(t.Notes,
		"faults are injected deterministically (seeded drop after N write ops on the victim's conn)",
		"a degraded round commits on the surviving quorum; the rejoined store is caught up by one composite delta")
	return t, nil
}
