package experiments

import (
	"math/rand"

	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/nn"
)

// modelVariant scales the classifier stand-in to mirror a zoo model's
// capacity: bigger paper models get wider embeddings and heads.
type modelVariant struct {
	name    string
	featDim int
	head    int
}

func table2Models() []modelVariant {
	return []modelVariant{
		{"ShuffleNetV2", 16, 48},
		{"ResNet50", 32, 128},
		{"InceptionV3", 32, 160},
		{"ResNeXt101", 48, 192},
		{"ViT", 64, 256},
	}
}

// datasetVariant scales the synthetic workload to mirror a benchmark's
// difficulty: CIFAR-100 is the easiest, ImageNet-21K much harder (more,
// noisier classes).
type datasetVariant struct {
	name    string
	classes int
	maxCls  int
	std     float64
}

func table2Datasets() []datasetVariant {
	return []datasetVariant{
		{"CIFAR100", 16, 20, 0.20},
		{"ImageNet1K", 20, 26, 0.24},
		{"ImageNet21K", 40, 48, 0.36},
	}
}

// Table2 reproduces the §6.3 accuracy comparison: Base / Outdated / NDPipe
// (fine-tuned) / Full top-1 and top-5 accuracy for every model × dataset.
func Table2(p Params) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Model accuracy comparison (%)",
		Header: []string{"dataset", "model", "system", "top1", "top5"},
	}
	models := table2Models()
	datasets := table2Datasets()
	trainN, testN, epochs := 2600, 800, 35
	if p.Quick {
		models = models[1:3]
		datasets = datasets[:2]
		trainN, testN, epochs = 800, 300, 10
	}
	for _, dv := range datasets {
		for _, mv := range models {
			if err := table2Cell(t, p, dv, mv, trainN, testN, epochs); err != nil {
				return nil, err
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: NDPipe beats Outdated everywhere (avg +1.7/+2.4 pts top-1/top-5) and trails Full by ~2.3/1.5 pts while training >300x faster")
	return t, nil
}

func table2Cell(t *Table, p Params, dv datasetVariant, mv modelVariant, trainN, testN, epochs int) error {
	cfg := dataset.DefaultConfig(p.Seed + int64(len(mv.name))*31 + int64(len(dv.name)))
	cfg.InitialClasses = dv.classes
	cfg.MaxClasses = dv.maxCls
	cfg.ClusterStd = dv.std
	if p.Quick {
		cfg.InitialImages = 1500
	}
	world := dataset.NewWorld(cfg)
	backbone := nn.NewFeatureExtractor(cfg.Seed, cfg.InputDim, 64, mv.featDim)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	feat := func(b *dataset.Batch) *dataset.Batch {
		return &dataset.Batch{X: backbone.Forward(b.X), Labels: b.Labels}
	}
	train := func(clf *nn.Network, b *dataset.Batch) error {
		opt := ftdmp.DefaultTrainOptions()
		opt.MaxEpochs = epochs
		opt.Seed = rng.Int63()
		_, err := ftdmp.FineTuneRuns(clf, []*dataset.Batch{b}, opt)
		return err
	}
	newClf := func() *nn.Network {
		return nn.NewMLP("clf", []int{mv.featDim, mv.head, cfg.MaxClasses}, rng)
	}
	sample := func(n int) int {
		if w := world.NumImages(); n > w {
			return w
		}
		return n
	}

	base := newClf()
	if err := train(base, feat(world.SampleStored(sample(trainN)))); err != nil {
		return err
	}
	test0 := feat(world.FreshTestSet(testN))
	b1, b5 := nn.Accuracy(base, test0.X, test0.Labels, 5)

	for d := 0; d < 14; d++ {
		world.AdvanceDay()
	}
	test14 := feat(world.FreshTestSet(testN))
	o1, o5 := nn.Accuracy(base, test14.X, test14.Labels, 5)

	ndpipe := newClf()
	if err := ndpipe.Restore(base.TakeSnapshot()); err != nil {
		return err
	}
	if err := train(ndpipe, feat(world.SampleRecent(sample(trainN), 14))); err != nil {
		return err
	}
	n1, n5 := nn.Accuracy(ndpipe, test14.X, test14.Labels, 5)

	full := newClf()
	if err := train(full, feat(world.SampleStored(sample(trainN)))); err != nil {
		return err
	}
	f1v, f5 := nn.Accuracy(full, test14.X, test14.Labels, 5)

	add := func(sys string, a1, a5 float64) {
		t.Add(dv.name, mv.name, sys, 100*a1, 100*a5)
	}
	add("Base", b1, b5)
	add("Outdated", o1, o5)
	add("NDPipe", n1, n5)
	add("Full", f1v, f5)
	return nil
}
