package experiments

import (
	"fmt"

	"ndpipe/internal/cluster"
	"ndpipe/internal/delta"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
	"ndpipe/internal/npe"
)

// These experiments go beyond the paper's figures: they ablate the design
// choices NDPipe packages together, quantifying each one's contribution.

// AblationDelta compares Check-N-Run delta distribution against shipping
// whole models after every fine-tune, per model and fleet size.
func AblationDelta(p Params) (*Table, error) {
	t := &Table{
		ID:     "ablation-delta",
		Title:  "Model distribution traffic: Check-N-Run delta vs full model (per fine-tune)",
		Header: []string{"model", "stores", "delta(MB)", "full(MB)", "reduction"},
	}
	for _, m := range evalModels() {
		for _, n := range []int{4, 20} {
			d := float64(delta.DistributionBytes(m)) * float64(n) / 1e6
			full := float64(m.ParamBytes()) * float64(n) / 1e6
			t.Rows = append(t.Rows, []string{m.Name, fmt.Sprint(n),
				f2(d), f2(full), fmt.Sprintf("%.0fx", full/d)})
		}
	}
	t.Notes = append(t.Notes, "the paper reports up to 427x; the win scales with model size since only the head changes")
	return t, nil
}

// AblationCompression isolates the +Comp optimization: storage overhead and
// fine-tuning throughput with and without compressed preprocessed binaries.
func AblationCompression(p Params) (*Table, error) {
	ps := cluster.PipeStore(10)
	t := &Table{
		ID:     "ablation-compression",
		Title:  "Compression ablation on one PipeStore (fine-tuning path)",
		Header: []string{"model", "compress", "storageOverhead(%)", "read(ms)", "decomp(ms)", "IPS"},
	}
	for _, m := range evalModels() {
		for _, comp := range []bool{false, true} {
			opt := npe.Optimized()
			opt.Compress = comp
			st, err := npe.StageTimes(ps, m, m.StoreGFLOPs(m.LastFrozen()), npe.FineTune, opt)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{m.Name, fmt.Sprint(comp),
				f1(100 * npe.StorageOverhead(m, opt)),
				f2(st.Read * 1e3), f2(st.Decomp * 1e3),
				fmt.Sprintf("%.0f", npe.Throughput(st, true))})
		}
	}
	t.Notes = append(t.Notes, "compression cuts the storage overhead ~4x and shortens reads; two decompression cores keep it hidden behind FE")
	return t, nil
}

// AblationPipelineDepth sweeps Nrun well past the paper's 1–3 to expose the
// diminishing time returns (the accuracy cost grows meanwhile — Fig 17).
func AblationPipelineDepth(p Params) (*Table, error) {
	m := model.ResNet50()
	base, err := ftdmp.Simulate(ftConfigNrun(m, 4, 1))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-nrun",
		Title:  "Pipeline depth sweep (ResNet50, 4 PipeStores)",
		Header: []string{"Nrun", "trainTime(s)", "saved(%)"},
	}
	for _, nrun := range []int{1, 2, 3, 4, 6, 8, 12} {
		res, err := ftdmp.Simulate(ftConfigNrun(m, 4, nrun))
		if err != nil {
			return nil, err
		}
		t.Add(nrun, res.TotalSec, 100*(1-res.TotalSec/base.TotalSec))
	}
	t.Notes = append(t.Notes, "saving asymptotes at 1−S/(S+T); catastrophic forgetting makes deep pipelines unattractive long before that")
	return t, nil
}

func ftConfigNrun(m *model.Spec, stores, nrun int) ftdmp.Config {
	cfg := ftConfig(m, stores)
	cfg.Nrun = nrun
	return cfg
}
