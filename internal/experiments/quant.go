package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

// timeKernel measures one call's wall time, growing the repetition count
// until the sample is long enough to trust (≥50ms or 4096 reps).
func timeKernel(f func()) float64 {
	f() // warm: pools, page faults
	reps := 1
	for {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		el := time.Since(t0)
		if el > 50*time.Millisecond || reps >= 1<<12 {
			return el.Seconds() / float64(reps)
		}
		reps *= 4
	}
}

// cloneSnap deep-copies a snapshot.
func cloneSnap(s nn.Snapshot) nn.Snapshot {
	out := make(nn.Snapshot, len(s))
	for k, m := range s {
		out[k] = m.Clone()
	}
	return out
}

// Quant is the raw-speed round-2 scorecard: the int8 SWAR kernel against the
// f64 kernel across a size×parallelism grid, end-to-end top-1 accuracy of
// the quantized backbone against f64, and per-encoding wire bytes for the
// compressed delta codecs over simulated fine-tune rounds. The accuracy and
// byte-reduction gates are enforced, not just reported: the experiment
// errors if int8 costs more than 5 top-1 points or a compressed encoding
// ships less than 4× fewer bytes than dense.
func Quant(p Params) (*Table, error) {
	t := &Table{
		ID:     "quant",
		Title:  "Int8 inference path + compressed wire deltas",
		Header: []string{"section", "config", "f64/dense", "int8/compressed", "ratio"},
	}

	// --- Kernel grid: n×n·n×n MatMul, f64 vs int8 SWAR, per worker count.
	sizes := []int{64, 256, 1024}
	if p.Quick {
		sizes = []int{64, 256}
	}
	prevPar := tensor.Parallelism()
	defer tensor.SetParallelism(prevPar)
	rng := rand.New(rand.NewSource(p.Seed))
	for _, n := range sizes {
		x := tensor.New(n, n)
		w := tensor.New(n, n)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		var q tensor.QMatrix
		tensor.QuantizeInto(&q, x)
		qw := tensor.QuantizeWeights(w)
		out := tensor.New(n, n)
		for _, par := range []int{1, 2, 4} {
			tensor.SetParallelism(par)
			f64Sec := timeKernel(func() { tensor.MatMulInto(out, x, w) })
			i8Sec := timeKernel(func() { tensor.QMatMulInto(out, &q, qw) })
			t.Add("kernel", fmt.Sprintf("n=%d P=%d", n, par),
				fmt.Sprintf("%.3fms", f64Sec*1e3),
				fmt.Sprintf("%.3fms", i8Sec*1e3),
				fmt.Sprintf("%.2fx", f64Sec/i8Sec))
		}
	}
	tensor.SetParallelism(prevPar)

	// --- Accuracy: the deployment pipeline at both precisions. The
	// classifier is trained once on f64 embeddings (what the Tuner sees),
	// then evaluated over f64 embeddings, over int8 embeddings (a quantized
	// store serving a Tuner-trained head), and for the full -quantize
	// deployment a second head is trained *and* evaluated on int8 embeddings.
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(p.Seed)
	wcfg.InitialImages = 3000
	epochs, testN := 40, 1500
	if p.Quick {
		wcfg.InitialImages = 1000
		epochs, testN = 12, 400
	}
	world := dataset.NewWorld(wcfg)
	backbone := cfg.NewBackbone()
	qbb, err := cfg.NewQuantBackbone()
	if err != nil {
		return nil, err
	}
	trainHead := func(emb func(x *tensor.Matrix) *tensor.Matrix, seed int64) (*nn.Network, error) {
		b := world.SampleStored(wcfg.InitialImages)
		clf := cfg.NewClassifier()
		opt := ftdmp.DefaultTrainOptions()
		opt.MaxEpochs = epochs
		opt.Seed = seed
		batch := &dataset.Batch{X: emb(b.X), Labels: b.Labels, IDs: b.IDs}
		if _, err := ftdmp.FineTuneRuns(clf, ftdmp.SplitRuns(batch, 1), opt); err != nil {
			return nil, err
		}
		return clf, nil
	}
	clf, err := trainHead(backbone.Forward, p.Seed+9)
	if err != nil {
		return nil, err
	}
	qclf, err := trainHead(qbb.Forward, p.Seed+9)
	if err != nil {
		return nil, err
	}
	test := world.FreshTestSet(testN)
	f64Top1, f64Top5 := nn.Accuracy(clf, backbone.Forward(test.X), test.Labels, 5)
	i8Top1, i8Top5 := nn.Accuracy(clf, qbb.Forward(test.X), test.Labels, 5)
	qTop1, qTop5 := nn.Accuracy(qclf, qbb.Forward(test.X), test.Labels, 5)
	t.Add("accuracy", "top-1 % (f64 head)", 100*f64Top1, 100*i8Top1,
		fmt.Sprintf("%+.2fpt", 100*(i8Top1-f64Top1)))
	t.Add("accuracy", "top-5 % (f64 head)", 100*f64Top5, 100*i8Top5,
		fmt.Sprintf("%+.2fpt", 100*(i8Top5-f64Top5)))
	t.Add("accuracy", "top-1 % (int8-trained head)", 100*f64Top1, 100*qTop1,
		fmt.Sprintf("%+.2fpt", 100*(qTop1-f64Top1)))
	t.Add("accuracy", "top-5 % (int8-trained head)", 100*f64Top5, 100*qTop5,
		fmt.Sprintf("%+.2fpt", 100*(qTop5-f64Top5)))
	const accEps = 0.05 // quantization may cost at most 5 top-1 points
	for name, got := range map[string]float64{"served": i8Top1, "trained": qTop1} {
		if f64Top1-got > accEps {
			return nil, fmt.Errorf("quant: int8 (%s head) top-1 %.2f%% vs f64 %.2f%% exceeds the %.0f-point gate",
				name, 100*got, 100*f64Top1, 100*accEps)
		}
	}

	// --- Wire bytes: simulated fine-tune rounds over the real classifier
	// shape, every weight perturbed per round (what momentum SGD does), each
	// codec shipping its own stream with error feedback.
	rounds := 10
	if p.Quick {
		rounds = 4
	}
	drng := rand.New(rand.NewSource(p.Seed + 7))
	target := cfg.NewClassifier().TakeSnapshot()
	prev := cloneSnap(target)
	compTopK, err := delta.NewCompressor(delta.EncodingTopK, target)
	if err != nil {
		return nil, err
	}
	compInt8, err := delta.NewCompressor(delta.EncodingInt8, target)
	if err != nil {
		return nil, err
	}
	var denseBytes, topkBytes, int8Bytes int
	for r := 0; r < rounds; r++ {
		for _, m := range target {
			for i := range m.Data {
				m.Data[i] += drng.NormFloat64() * 0.01
			}
		}
		d, err := delta.Diff(prev, target, 0)
		if err != nil {
			return nil, err
		}
		blob, err := d.Encode()
		if err != nil {
			return nil, err
		}
		denseBytes += len(blob)
		prev = cloneSnap(target)
		if blob, err = compTopK.Compress(target); err != nil {
			return nil, err
		}
		topkBytes += len(blob)
		if blob, err = compInt8.Compress(target); err != nil {
			return nil, err
		}
		int8Bytes += len(blob)
	}
	for _, row := range []struct {
		enc   string
		bytes int
	}{{"topk", topkBytes}, {"int8", int8Bytes}} {
		red := float64(denseBytes) / float64(row.bytes)
		t.Add("delta-bytes", fmt.Sprintf("%s, %d rounds", row.enc, rounds),
			denseBytes, row.bytes, fmt.Sprintf("%.1fx", red))
		if red < 4 {
			return nil, fmt.Errorf("quant: %s shipped %dB vs dense %dB — %.1fx is under the 4x gate",
				row.enc, row.bytes, denseBytes, red)
		}
	}
	// Tracking error after the last round (error feedback residual).
	worst := func(c *delta.Compressor) float64 {
		var w float64
		for k, m := range c.Shipped() {
			for i, v := range m.Data {
				if d := math.Abs(v - target[k].Data[i]); d > w {
					w = d
				}
			}
		}
		return w
	}
	t.Notes = append(t.Notes,
		"kernel rows time the bare MatMul kernels (quantization of activations excluded, as in the tensor benchmarks); P is the compute-pool worker count",
		"accuracy heads are trained on the embeddings their deployment would see: the Tuner's f64 features, or a -quantize fleet's int8 features",
		fmt.Sprintf("compressed streams track the exact model via error feedback: final max residual topk=%.2e int8=%.2e", worst(compTopK), worst(compInt8)),
		"gates enforced: int8 top-1 within 5 points of f64; topk and int8 ship ≥4x fewer delta bytes than dense")
	return t, nil
}
