package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestEveryExperimentRunsQuick executes every registered experiment at quick
// size and sanity-checks their tables.
func TestEveryExperimentRunsQuick(t *testing.T) {
	p := Params{Seed: 1, Quick: true}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Registry()[id](p)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != id {
				t.Fatalf("table ID %q != %q", tbl.ID, id)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			if len(tbl.Header) == 0 || tbl.Title == "" {
				t.Fatal("missing header/title")
			}
			out := tbl.String()
			if !strings.Contains(out, id) {
				t.Fatal("String() must include the experiment ID")
			}
		})
	}
}

func TestRegistryCoversEveryPaperExhibit(t *testing.T) {
	want := []string{
		"fig4a", "fig4b", "table1", "fig5", "fig6", "fig9", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "table2", "fig18",
		"fig19", "fig20", "fig21",
		"ablation-delta", "ablation-compression", "ablation-nrun",
		"ablation-colocation", "faults", "recovery", "failover", "serve",
		"obs", "quant", "durability",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

// TestFig9ShapeHolds: the headline Fig 9 shape — +Conv5 minimizes training
// time and traffic surges at +FC — must hold at full size.
func TestFig9ShapeHolds(t *testing.T) {
	tbl, err := Fig9(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: None..+FC; col 3 = train time, col 1+2 = traffic.
	n := len(tbl.Rows)
	conv5 := n - 2
	for r := 0; r < n; r++ {
		if r != conv5 && cell(t, tbl, r, 3) <= cell(t, tbl, conv5, 3) {
			t.Fatalf("cut %s beats +Conv5", tbl.Rows[r][0])
		}
	}
	fcTraffic := cell(t, tbl, n-1, 1) + cell(t, tbl, n-1, 2)
	c5Traffic := cell(t, tbl, conv5, 1) + cell(t, tbl, conv5, 2)
	if fcTraffic <= c5Traffic {
		t.Fatal("+FC traffic must surge past +Conv5")
	}
}

// TestFig13LinearScaling: NDPipe inference throughput must scale linearly
// with store count.
func TestFig13LinearScaling(t *testing.T) {
	tbl, err := Fig13(Params{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// First model block: stores 1, 4, 8 → KIPS ratios 1:4:8.
	base := cell(t, tbl, 0, 2)
	if r := cell(t, tbl, 1, 2) / base; r < 3.9 || r > 4.1 {
		t.Fatalf("4-store scaling %.2f, want 4", r)
	}
	if r := cell(t, tbl, 2, 2) / base; r < 7.9 || r > 8.1 {
		t.Fatalf("8-store scaling %.2f, want 8", r)
	}
}

// TestFig18RatioShrinksWithBandwidth: NDPipe's efficiency advantage over
// SRV-C is largest at 1 Gbps and smallest at 40 Gbps.
func TestFig18RatioShrinksWithBandwidth(t *testing.T) {
	tbl, err := Fig18(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 4) // ResNet50 @1Gbps ratio
	last := cell(t, tbl, 3, 4)  // ResNet50 @40Gbps ratio
	if first <= last {
		t.Fatalf("advantage should shrink with bandwidth: %.2f → %.2f", first, last)
	}
	if last < 1.0 {
		t.Fatalf("NDPipe should stay ahead at 40 Gbps: %.2f", last)
	}
}

// TestFig19ViTOOM: the ViT rows must include OOM markers at large batches.
func TestFig19ViTOOM(t *testing.T) {
	tbl, err := Fig19(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	oom := 0
	for _, r := range tbl.Rows {
		if r[0] == "ViT" && r[2] == "OOM" {
			oom++
		}
	}
	if oom == 0 {
		t.Fatal("ViT must OOM at large batch sizes (Fig 19)")
	}
	for _, r := range tbl.Rows {
		if r[0] == "ResNet50" && r[2] == "OOM" {
			t.Fatal("ResNet50 must not OOM")
		}
	}
}

// TestFig21NDPipeCheaperThanSRVC at its best point (Fig 21a).
func TestFig21NDPipeCheaperThanSRVC(t *testing.T) {
	tbl, err := Fig21(Params{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var bestND, srv float64
	bestND = 1e18
	for _, r := range tbl.Rows {
		v, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch r[0] {
		case "NDPipe":
			if v < bestND {
				bestND = v
			}
		case "SRV-C":
			srv = v
		}
	}
	if srv == 0 || bestND >= srv {
		t.Fatalf("NDPipe best cost %.2f should undercut SRV-C %.2f", bestND, srv)
	}
}

func TestTableAddFormatting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Header: []string{"a", "b"}}
	tbl.Add(1.23456, "str")
	if tbl.Rows[0][0] != "1.23" || tbl.Rows[0][1] != "str" {
		t.Fatalf("Add formatting: %v", tbl.Rows[0])
	}
}
