// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §5, §6, §7.2) from the ndpipe substrates: the real
// neural-network engine for accuracy-shaped results and the calibrated
// simulator for performance/energy/cost-shaped results.
//
// Each experiment returns a Table whose rows mirror the series the paper
// plots; cmd/ndpipe-bench and the root bench harness print them. See
// EXPERIMENTS.md for measured-vs-paper commentary.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Params tunes an experiment run.
type Params struct {
	Seed  int64
	Quick bool // shrink dataset/model sweeps to smoke-test size
}

// DefaultParams is what cmd/ndpipe-bench uses.
func DefaultParams() Params { return Params{Seed: 1} }

// Table is a printable experiment result.
type Table struct {
	ID     string // "fig4a", "table2", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Func runs one experiment.
type Func func(Params) (*Table, error)

// Registry maps experiment IDs (fig4a ... fig21, table1, table2) to their
// generators.
func Registry() map[string]Func {
	return map[string]Func{
		"fig4a":  Fig4a,
		"fig4b":  Fig4b,
		"table1": Table1,
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig9":   Fig9,
		"fig11":  Fig11,
		"fig12":  Fig12,
		"fig13":  Fig13,
		"fig14":  Fig14,
		"fig15":  Fig15,
		"fig16":  Fig16,
		"fig17":  Fig17,
		"table2": Table2,
		"fig18":  Fig18,
		"fig19":  Fig19,
		"fig20":  Fig20,
		"fig21":  Fig21,
		// Robustness: quorum rounds under injected faults.
		"faults": Faults,
		// Crash consistency: WAL replay and warm vs cold store rejoin.
		"recovery": Recovery,
		// High availability: WAL-shipped standby overhead + leader failover.
		"failover": Failover,
		// Online serving: batched gateway vs sequential upload loop.
		"serve": Serve,
		// Fleet observability: exact rollups, shipping cost, stragglers.
		"obs": Obs,
		// Int8 kernels, quantized-path accuracy, compressed delta bytes.
		"quant": Quant,
		// Photo durability: replicated placement, scrub/repair, rebuild.
		"durability": Durability,
		// Beyond-the-paper ablations of bundled design choices.
		"ablation-delta":       AblationDelta,
		"ablation-compression": AblationCompression,
		"ablation-nrun":        AblationPipelineDepth,
		"ablation-colocation":  AblationColocation,
	}
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
