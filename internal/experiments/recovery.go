package experiments

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/tuner"
)

// Recovery measures the crash-consistency layer (S31): restart-to-ready
// time and catch-up traffic for a tuner replaying its WAL and for stores
// rejoining warm (persisted state.snap) versus cold. The headline row pair
// is store-persisted vs store-cold: a store restarted at the tuner's
// latest version receives a zero-byte catch-up, strictly smaller than the
// full composite delta a cold store must download.
func Recovery(p Params) (*Table, error) {
	t := &Table{
		ID:     "recovery",
		Title:  "Crash recovery: WAL replay and warm vs cold store rejoin (2 stores)",
		Header: []string{"scenario", "version", "walRecords", "labels", "catchup(B)", "ready(ms)"},
	}
	images := 900
	rounds := 2
	if p.Quick {
		images, rounds = 300, 1
	}
	const nStores = 2

	root, err := os.MkdirTemp("", "ndpipe-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	tunerDir := filepath.Join(root, "tuner")
	storeDir := func(i int) string { return filepath.Join(root, fmt.Sprintf("rec-%d", i)) }

	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(p.Seed)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)
	shards := world.Shard(nStores)

	// Phase 1: a persistent cluster commits some rounds and a label pass,
	// then dies.
	tn, err := tuner.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := tn.OpenState(tunerDir); err != nil {
		return nil, err
	}
	tn.SetRoundOptions(tuner.RoundOptions{
		Quorum: 1, StoreTimeout: 10 * time.Second, RoundTimeout: 2 * time.Minute, Seed: p.Seed,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, nStores) }()
	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(fmt.Sprintf("rec-%d", i), cfg)
		if err != nil {
			return nil, err
		}
		if _, err := ps.OpenState(storeDir(i)); err != nil {
			return nil, err
		}
		if err := ps.Ingest(shards[i]); err != nil {
			return nil, err
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		go func(ps *pipestore.Node, conn net.Conn) { _ = ps.Serve(conn) }(ps, conn)
	}
	if err := <-accepted; err != nil {
		return nil, err
	}
	opt := ftdmp.DefaultTrainOptions()
	if p.Quick {
		opt.MaxEpochs = 5
	}
	for r := 0; r < rounds; r++ {
		if _, err := tn.FineTune(2, 128, opt); err != nil {
			return nil, fmt.Errorf("recovery setup round: %w", err)
		}
	}
	if _, err := tn.OfflineInference(128); err != nil {
		return nil, fmt.Errorf("recovery label pass: %w", err)
	}
	ln.Close()
	tn.Close() // kill: committed state is already on disk

	// Phase 2: the tuner restarts and replays its WAL.
	tn2, err := tuner.New(cfg)
	if err != nil {
		return nil, err
	}
	defer tn2.Close()
	rec, err := tn2.OpenState(tunerDir)
	if err != nil {
		return nil, fmt.Errorf("recovery replay: %w", err)
	}
	t.Add("tuner-recover", rec.Version, rec.Records, rec.Labels, "-",
		fmt.Sprintf("%.1f", float64(rec.Elapsed.Microseconds())/1000))

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln2.Close()
	join := func(ps *pipestore.Node) (time.Duration, error) {
		res := make(chan error, 1)
		go func() {
			conn, err := ln2.Accept()
			if err != nil {
				res <- err
				return
			}
			res <- tn2.AddStore(conn)
		}()
		start := time.Now()
		conn, err := net.Dial("tcp", ln2.Addr().String())
		if err != nil {
			return 0, err
		}
		go func() { _ = ps.Serve(conn) }()
		if err := <-res; err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	// A warm store restarts from its persisted snapshot: it re-registers at
	// the version it acked, and the tuner ships only the missing rounds —
	// zero bytes here, since it was current when it died.
	warm, err := pipestore.New("rec-0", cfg)
	if err != nil {
		return nil, err
	}
	wrec, err := warm.OpenState(storeDir(0))
	if err != nil {
		return nil, err
	}
	if err := warm.Ingest(shards[0]); err != nil {
		return nil, err
	}
	warmReady, err := join(warm)
	if err != nil {
		return nil, fmt.Errorf("recovery warm rejoin: %w", err)
	}
	warmReady += wrec.Elapsed
	warmCatch := tn2.LastCatchUp()
	t.Add("store-persisted", wrec.Version, "-", "-", warmCatch.Bytes,
		fmt.Sprintf("%.1f", float64(warmReady.Microseconds())/1000))

	// A cold store has no state: it must download the full composite delta.
	cold, err := pipestore.New("rec-cold", cfg)
	if err != nil {
		return nil, err
	}
	if err := cold.Ingest(shards[1]); err != nil {
		return nil, err
	}
	coldReady, err := join(cold)
	if err != nil {
		return nil, fmt.Errorf("recovery cold join: %w", err)
	}
	coldCatch := tn2.LastCatchUp()
	t.Add("store-cold", 0, "-", "-", coldCatch.Bytes,
		fmt.Sprintf("%.1f", float64(coldReady.Microseconds())/1000))

	if warmCatch.Bytes >= coldCatch.Bytes {
		return nil, fmt.Errorf("recovery: warm catch-up (%d B) not smaller than cold (%d B)",
			warmCatch.Bytes, coldCatch.Bytes)
	}
	t.Notes = append(t.Notes,
		"tuner-recover replays the CRC32C-framed WAL over the base.snap chain root (torn tails truncated)",
		fmt.Sprintf("warm store re-registered at v%d and was shipped %d bytes; the cold store needed the full %d-byte composite",
			wrec.Version, warmCatch.Bytes, coldCatch.Bytes))
	return t, nil
}
