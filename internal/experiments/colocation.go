package experiments

import (
	"fmt"

	"ndpipe/internal/cluster"
	"ndpipe/internal/model"
	"ndpipe/internal/npe"
	"ndpipe/internal/sim"
)

// AblationColocation examines a point the paper makes but never measures:
// PipeStore runs fine-tuning feature extraction and offline inference "on
// the same hardware" (§5). This experiment colocates both tasks on one
// PipeStore's accelerator in the discrete-event simulator and reports the
// interference each suffers relative to running alone.
func AblationColocation(p Params) (*Table, error) {
	m := model.ResNet50()
	ps := cluster.PipeStore(10)

	infSt, err := npe.StageTimes(ps, m, m.TotalGFLOPs(), npe.OfflineInference, npe.Optimized())
	if err != nil {
		return nil, err
	}
	ftOpt := npe.Optimized()
	ftOpt.BatchSize = 512
	ftSt, err := npe.StageTimes(ps, m, m.StoreGFLOPs(m.LastFrozen()), npe.FineTune, ftOpt)
	if err != nil {
		return nil, err
	}

	const horizon = 60.0 // simulated seconds
	run := func(tasks []struct {
		batch int
		fe    float64
	}) []int {
		eng := sim.New()
		gpu := eng.NewResource("gpu", 1)
		done := make([]int, len(tasks))
		for i, task := range tasks {
			i, task := i, task
			eng.Go(fmt.Sprintf("task-%d", i), func(proc *sim.Proc) {
				for eng.Now() < horizon {
					gpu.Use(proc, task.fe*float64(task.batch))
					done[i] += task.batch
				}
			})
		}
		if _, err := eng.Run(); err != nil {
			panic(err)
		}
		return done
	}

	infTask := struct {
		batch int
		fe    float64
	}{128, infSt.FE}
	ftTask := struct {
		batch int
		fe    float64
	}{512, ftSt.FE}

	aloneInf := run([]struct {
		batch int
		fe    float64
	}{infTask})[0]
	aloneFT := run([]struct {
		batch int
		fe    float64
	}{ftTask})[0]
	both := run([]struct {
		batch int
		fe    float64
	}{infTask, ftTask})

	t := &Table{
		ID:     "ablation-colocation",
		Title:  "Colocating offline inference and fine-tuning FE on one PipeStore GPU (ResNet50, 60 s)",
		Header: []string{"task", "alone(IPS)", "colocated(IPS)", "slowdown"},
	}
	add := func(name string, alone, co int) {
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%.0f", float64(alone)/horizon),
			fmt.Sprintf("%.0f", float64(co)/horizon),
			fmt.Sprintf("%.2fx", float64(alone)/float64(co))})
	}
	add("offline-inference", aloneInf, both[0])
	add("fine-tune-FE", aloneFT, both[1])
	t.Notes = append(t.Notes,
		"the FIFO accelerator is monopolized by fine-tuning's large (512) batches: inference slows ~4.5x while FE barely notices — schedule offline inference outside fine-tuning windows, or cap FE batch sizes when colocating")
	return t, nil
}
