package experiments

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/ha"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/tuner"
)

// failoverOverheadGate is the S35 acceptance bar: WAL-shipping to a
// synchronously-acking hot standby may not cost more than this fraction of
// round wall time at full experiment size.
const failoverOverheadGate = 10.0

// timedReplicator measures the wall time a round spends inside Replicate —
// the full synchronous shipping cost: framing, the wire round trip, and
// the standby's fsync+apply before it acks.
type timedReplicator struct {
	inner tuner.Replicator
	total atomic.Int64 // nanoseconds
}

func (r *timedReplicator) Replicate(rec []byte) error {
	start := time.Now()
	err := r.inner.Replicate(rec)
	r.total.Add(int64(time.Since(start)))
	return err
}

// Failover measures the tuner high-availability layer (S35): the per-round
// cost of shipping the WAL to a hot standby that must fsync+ack before the
// round commits, and the end-to-end recovery timeline when the leader is
// killed — lease expiry, takeover (WAL replay + leadership assertion), and
// the fleet reconverging on the new leader's strictly-higher epoch.
func Failover(p Params) (*Table, error) {
	t := &Table{
		ID:     "failover",
		Title:  "Tuner HA: WAL-shipping overhead and leader-failure recovery (2 stores)",
		Header: []string{"scenario", "rounds", "version", "epoch", "wall(ms)", "overhead(%)"},
	}
	images, rounds := 900, 5
	if p.Quick {
		images, rounds = 300, 2
	}
	const nStores = 2
	lease := 250 * time.Millisecond

	root, err := os.MkdirTemp("", "ndpipe-failover-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(p.Seed)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)
	shards := world.Shard(nStores)

	tn, err := tuner.New(cfg)
	if err != nil {
		return nil, err
	}
	defer tn.Close()
	if _, err := tn.OpenState(filepath.Join(root, "leader")); err != nil {
		return nil, err
	}
	if _, err := tn.AssertLeadership(0); err != nil {
		return nil, err
	}
	tn.SetRoundOptions(tuner.RoundOptions{
		Quorum: nStores, StoreTimeout: 10 * time.Second, RoundTimeout: 2 * time.Minute, Seed: p.Seed,
	})

	listen := func() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
	storeLn, err := listen()
	if err != nil {
		return nil, err
	}
	defer storeLn.Close()
	haLn, err := listen()
	if err != nil {
		return nil, err
	}
	defer haLn.Close()
	// Pre-bound: store redials land in its backlog until the standby takes
	// over and starts accepting — exactly the production failover topology.
	sbLn, err := listen()
	if err != nil {
		return nil, err
	}
	defer sbLn.Close()

	ship := ha.NewShipper(tn, ha.Options{LeaseTimeout: lease})
	defer ship.Close()
	tn.SetReplicator(ship)
	go func() { _ = ship.Serve(haLn) }()

	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(storeLn, nStores) }()
	addrs := []string{storeLn.Addr().String(), sbLn.Addr().String()}
	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(fmt.Sprintf("ha-%d", i), cfg)
		if err != nil {
			return nil, err
		}
		if err := ps.Ingest(shards[i]); err != nil {
			return nil, err
		}
		go func(ps *pipestore.Node, seed int64) {
			_ = ps.DialRetryMulti(addrs, pipestore.DialOptions{
				Attempts: 400, Backoff: 5 * time.Millisecond, BackoffCap: 50 * time.Millisecond,
				Rejoin: true, Seed: seed,
			})
		}(ps, p.Seed+int64(i)+1)
	}
	if err := <-accepted; err != nil {
		return nil, err
	}

	opt := ftdmp.DefaultTrainOptions()
	if p.Quick {
		opt.MaxEpochs = 5
	}
	medianWall := func(n int) (float64, time.Duration, int, error) {
		walls := make([]float64, 0, n)
		var total time.Duration
		version := 0
		for r := 0; r < n; r++ {
			rep, err := tn.FineTune(2, 128, opt)
			if err != nil {
				return 0, 0, 0, err
			}
			walls = append(walls, float64(rep.WallTime.Microseconds())/1000)
			total += rep.WallTime
			version = rep.ModelVersion
		}
		sort.Float64s(walls)
		return walls[len(walls)/2], total, version, nil
	}

	// Warm-up rounds: the first rounds pay one-off costs (tensor-pool
	// growth, page faults) that would pollute the measured rows.
	if _, _, _, err := medianWall(2); err != nil {
		return nil, fmt.Errorf("failover warm-up rounds: %w", err)
	}

	// Baseline: no standby attached, Replicate is a no-op — the same code
	// path production runs before (or after) a standby joins.
	baseWall, _, baseV, err := medianWall(rounds)
	if err != nil {
		return nil, fmt.Errorf("failover baseline rounds: %w", err)
	}
	t.Add("round-unreplicated", rounds, baseV, tn.LeaderEpoch(), fmt.Sprintf("%.1f", baseWall), "-")

	sb, err := ha.NewStandby(cfg, filepath.Join(root, "standby"), ha.Options{ID: "sb", LeaseTimeout: lease})
	if err != nil {
		return nil, err
	}
	defer sb.Stop()
	runErr := make(chan error, 1)
	go func() { runErr <- sb.Run([]string{haLn.Addr().String()}) }()
	attachDeadline := time.Now().Add(10 * time.Second)
	for ship.Attached() == 0 {
		if time.Now().After(attachDeadline) {
			return nil, errors.New("failover: standby never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Shipped: every commit now waits for the standby's fsync+ack. The
	// overhead is measured directly — time inside Replicate (frame the
	// record, ship it, await the ack) as a share of round wall — rather
	// than by differencing sequential round timings, which converging
	// training costs would bias.
	timed := &timedReplicator{inner: ship}
	tn.SetReplicator(timed)
	shipWall, shipTotal, shipV, err := medianWall(rounds)
	if err != nil {
		return nil, fmt.Errorf("failover shipped rounds: %w", err)
	}
	overhead := float64(timed.total.Load()) / float64(shipTotal) * 100
	t.Add("round-wal-shipped", rounds, shipV, tn.LeaderEpoch(),
		fmt.Sprintf("%.1f", shipWall), fmt.Sprintf("%.1f", overhead))

	// Leader death: listeners down, shipping stops, every store session
	// severed. The clock for the recovery rows starts here.
	killAt := time.Now()
	_ = storeLn.Close()
	ship.Close()
	tn.Close()
	select {
	case err := <-runErr:
		if !errors.Is(err, ha.ErrLeaseExpired) {
			return nil, fmt.Errorf("failover: standby run ended with %v, want lease expiry", err)
		}
	case <-time.After(30 * time.Second):
		return nil, errors.New("failover: standby never detected the dead leader")
	}
	leaseMs := float64(time.Since(killAt).Microseconds()) / 1000
	t.Add("lease-expiry", "-", sb.ModelVersion(), sb.LeaderEpoch(), fmt.Sprintf("%.1f", leaseMs), "-")

	takeStart := time.Now()
	tn2, rec, err := sb.TakeOver()
	if err != nil {
		return nil, fmt.Errorf("failover takeover: %w", err)
	}
	defer tn2.Close()
	takeMs := float64(time.Since(takeStart).Microseconds()) / 1000
	t.Add("takeover-wal-replay", "-", rec.Version, tn2.LeaderEpoch(), fmt.Sprintf("%.1f", takeMs), "-")
	if rec.Version != shipV {
		return nil, fmt.Errorf("failover: standby recovered v%d, leader had committed v%d", rec.Version, shipV)
	}

	tn2.SetRoundOptions(tuner.RoundOptions{
		Quorum: nStores, StoreTimeout: 10 * time.Second, RoundTimeout: 2 * time.Minute, Seed: p.Seed,
	})
	go func() {
		for {
			conn, err := sbLn.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) { _ = tn2.AddStore(conn) }(conn)
		}
	}()
	reattachDeadline := time.Now().Add(30 * time.Second)
	for tn2.NumStores() < nStores {
		if time.Now().After(reattachDeadline) {
			return nil, fmt.Errorf("failover: only %d/%d stores reattached", tn2.NumStores(), nStores)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep, err := tn2.FineTune(2, 128, opt)
	if err != nil {
		return nil, fmt.Errorf("failover post-takeover round: %w", err)
	}
	recoveryMs := float64(time.Since(killAt).Microseconds()) / 1000
	t.Add("fleet-reconverged", 1, rep.ModelVersion, tn2.LeaderEpoch(), fmt.Sprintf("%.1f", recoveryMs), "-")

	t.Notes = append(t.Notes,
		fmt.Sprintf("commit rule: fsync on leader + ack from every attached standby; lease %v, synchronous ship+ack is %.1f%% of round wall", lease, overhead),
		fmt.Sprintf("recovery = kill → lease expiry → WAL-replay takeover (epoch %d > 1) → stores redial the standby address → first committed round", tn2.LeaderEpoch()))
	if !p.Quick && overhead > failoverOverheadGate {
		return nil, fmt.Errorf("failover: WAL-shipping overhead %.1f%% exceeds the %.0f%% gate", overhead, failoverOverheadGate)
	}
	return t, nil
}
