package experiments

import (
	"errors"
	"fmt"

	"ndpipe/internal/apo"
	"ndpipe/internal/baseline"
	"ndpipe/internal/cluster"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
	"ndpipe/internal/npe"
)

// trainImages is the simulated fine-tuning dataset (the paper's 1.2 M
// ImageNet-1K images, §6.3).
const trainImages = 1_200_000

// evalModels are the four models the paper plots (ShuffleNetV2 is Table 2
// only).
func evalModels() []*model.Spec {
	return []*model.Spec{model.ResNet50(), model.InceptionV3(), model.ResNeXt101(), model.ViT()}
}

func ftConfig(m *model.Spec, stores int) ftdmp.Config {
	return ftdmp.Config{
		Model:  m,
		Cut:    m.LastFrozen(),
		Stores: stores,
		Nrun:   3,
		Images: trainImages,
	}
}

// simulateTrainingTime is the Fig 17 companion: ResNet50, 4 PipeStores.
func simulateTrainingTime(nrun int) (float64, error) {
	cfg := ftConfig(model.ResNet50(), 4)
	cfg.Nrun = nrun
	res, err := ftdmp.Simulate(cfg)
	if err != nil {
		return 0, err
	}
	return res.TotalSec, nil
}

// pipeStoreIPS is one optimized PipeStore's offline-inference rate.
func pipeStoreIPS(m *model.Spec) (float64, error) {
	ps := cluster.PipeStore(10)
	st, err := npe.StageTimes(ps, m, m.TotalGFLOPs(), npe.OfflineInference, npe.Optimized())
	if err != nil {
		return 0, err
	}
	return npe.Throughput(st, true), nil
}

// Fig5 reproduces the §3.4 bottleneck analysis: Typical vs Ideal fine-tuning
// time (for the 1.2 M-image job) and offline-inference throughput.
func Fig5(p Params) (*Table, error) {
	m := model.ResNet50()
	t := &Table{
		ID:     "fig5",
		Title:  "Impact of network bottleneck (Typical vs Ideal, ResNet50)",
		Header: []string{"system", "fineTune(min)", "inference(IPS)"},
	}
	for _, sys := range []baseline.System{baseline.Typical, baseline.Ideal} {
		ft, err := baseline.FineTuneIPS(sys, m, 10)
		if err != nil {
			return nil, err
		}
		inf, err := baseline.InferenceIPS(sys, m, 10)
		if err != nil {
			return nil, err
		}
		t.Add(sys.String(), trainImages/ft/60, inf)
	}
	t.Notes = append(t.Notes, "paper: Typical trains 3.7x slower; 94 vs 123 IPS offline inference")
	return t, nil
}

// Fig6 reproduces the §4 per-phase execution breakdown, normalized to
// Typical, for fine-tuning and offline inference.
func Fig6(p Params) (*Table, error) {
	m := model.ResNet50()
	ftTyp := baseline.TypicalFineTunePhases(m, 10)
	ftNDP, err := baseline.NaiveNDPFineTunePhases(m, 10, 4, 512)
	if err != nil {
		return nil, err
	}
	infTyp := baseline.TypicalInferencePhases(m, 10)
	infNDP, err := baseline.NaiveNDPInferencePhases(m, 10, 4)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig6",
		Title:  "Execution time of DL tasks normalized to Typical (naive NDP, 4 stores)",
		Header: []string{"task", "phase", "Typical(ms)", "NDP(ms)", "NDP/Typical"},
	}
	norm := func(task, phase string, typ, ndp float64) {
		ratio := "-"
		if typ > 0 {
			ratio = fmt.Sprintf("%.2f", ndp/typ)
		}
		t.Rows = append(t.Rows, []string{task, phase,
			fmt.Sprintf("%.3f", typ*1e3), fmt.Sprintf("%.3f", ndp*1e3), ratio})
	}
	norm("fine-tune", "Read", ftTyp.Read, ftNDP.Read)
	norm("fine-tune", "DataTrans", ftTyp.DataTrans, ftNDP.DataTrans)
	norm("fine-tune", "FE&CT", ftTyp.FECT, ftNDP.FECT)
	norm("fine-tune", "WeightSync", ftTyp.WeightSync, ftNDP.WeightSync)
	norm("inference", "Read", infTyp.Read, infNDP.Read)
	norm("inference", "DataTrans", infTyp.DataTrans, infNDP.DataTrans)
	norm("inference", "Preproc", infTyp.Preproc, infNDP.Preproc)
	norm("inference", "FE&Cl", infTyp.FECl, infNDP.FECl)
	t.Notes = append(t.Notes,
		"paper: NDP kills DataTrans, FE&CT costs 1.36x, weight sync blows up (axis break); preprocessing becomes the inference bottleneck")
	return t, nil
}

// Fig9 reproduces the layer-offloading study (§5.1): data traffic and
// training time per partition cut for ResNet50 on 4 PipeStores.
func Fig9(p Params) (*Table, error) {
	m := model.ResNet50()
	t := &Table{
		ID:     "fig9",
		Title:  "Impact of layer offloading (ResNet50, 4 PipeStores, 10 Gbps)",
		Header: []string{"cut", "dataTraffic(GB)", "syncTraffic(GB)", "trainTime(s)"},
	}
	for c := model.Cut(0); int(c) <= len(m.Stages); c++ {
		cfg := ftConfig(m, 4)
		cfg.Cut = c
		res, err := ftdmp.Estimate(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(m.CutName(c),
			float64(res.FeatureTraffic)/1e9,
			float64(res.SyncTraffic)/1e9,
			res.TotalSec)
	}
	t.Notes = append(t.Notes, "paper: traffic falls to ~9.16GB at +Conv5, surges at +FC; +Conv5 trains fastest")
	return t, nil
}

// Fig12 reproduces the NPE optimization ablation (§5.4): per-task times on
// one PipeStore for Naive, +Offload, +Comp, +Batch.
func Fig12(p Params) (*Table, error) {
	m := model.ResNet50()
	ps := cluster.PipeStore(10)
	steps := []struct {
		name string
		opt  npe.Options
	}{
		{"Naive", npe.Options{BatchSize: 32, Pipelined: true, PreprocCores: 1, DecompCores: 2}},
		{"+Offload", npe.Options{OffloadPreproc: true, BatchSize: 32, Pipelined: true, DecompCores: 2}},
		{"+Comp", npe.Options{OffloadPreproc: true, Compress: true, BatchSize: 32, Pipelined: true, DecompCores: 2}},
		{"+Batch", npe.Optimized()},
	}
	t := &Table{
		ID:     "fig12",
		Title:  "Elapsed time per task on a PipeStore (ms/image)",
		Header: []string{"task", "config", "Read", "Preproc", "Decomp", "FE", "IPS"},
	}
	for _, task := range []struct {
		name string
		kind npe.Task
		gf   float64
	}{
		{"fine-tune", npe.FineTune, m.StoreGFLOPs(m.LastFrozen())},
		{"inference", npe.OfflineInference, m.TotalGFLOPs()},
	} {
		for _, step := range steps {
			st, err := npe.StageTimes(ps, m, task.gf, task.kind, step.opt)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{task.name, step.name,
				fmt.Sprintf("%.3f", st.Read*1e3),
				fmt.Sprintf("%.3f", st.Preproc*1e3),
				fmt.Sprintf("%.3f", st.Decomp*1e3),
				fmt.Sprintf("%.3f", st.FE*1e3),
				fmt.Sprintf("%.0f", npe.Throughput(st, step.opt.Pipelined)),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: offload removes the preprocessing bottleneck, compression shrinks reads, batch=128 balances the stages at FE")
	return t, nil
}

// Fig13 reproduces the inference-scaling comparison (§6.2): NDPipe KIPS vs
// the SRV baselines for 1–20 PipeStores and four models.
func Fig13(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Offline inference throughput (KIPS) vs #PipeStores",
		Header: []string{"model", "stores", "NDPipe", "SRV-I", "SRV-P", "SRV-C"},
	}
	counts := []int{1, 2, 4, 6, 8, 12, 16, 20}
	if p.Quick {
		counts = []int{1, 4, 8}
	}
	for _, m := range evalModels() {
		per, err := pipeStoreIPS(m)
		if err != nil {
			return nil, err
		}
		i, _ := baseline.InferenceIPS(baseline.SRVI, m, 10)
		pp, _ := baseline.InferenceIPS(baseline.SRVP, m, 10)
		c, _ := baseline.InferenceIPS(baseline.SRVC, m, 10)
		for _, n := range counts {
			t.Add(m.Name, n, per*float64(n)/1e3, i/1e3, pp/1e3, c/1e3)
		}
	}
	t.Notes = append(t.Notes, "paper: NDPipe scales linearly; crossings P1≈1, P2≈4-7, P3≈5-7 stores for ResNet50/InceptionV3; big models are GPU-bound so SRV lines converge")
	return t, nil
}

// Fig15 reproduces the training-scaling comparison (§6.3): FT-DMP training
// time vs #PipeStores against SRV-C.
func Fig15(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "Fine-tuning time (min) vs #PipeStores (1.2M images)",
		Header: []string{"model", "stores", "NDPipe(min)", "SRV-C(min)"},
	}
	counts := []int{1, 2, 3, 4, 6, 8, 10, 12, 16, 20}
	if p.Quick {
		counts = []int{2, 8}
	}
	for _, m := range evalModels() {
		srv, err := baseline.FineTuneIPS(baseline.SRVC, m, 10)
		if err != nil {
			return nil, err
		}
		srvMin := trainImages / srv / 60
		for _, n := range counts {
			res, err := ftdmp.Simulate(ftConfig(m, n))
			if err != nil {
				return nil, err
			}
			t.Add(m.Name, n, res.TotalSec/60, srvMin)
		}
	}
	t.Notes = append(t.Notes, "paper: NDPipe overtakes SRV-C at 3 stores (ResNet50/InceptionV3) and 6 (ResNeXt101); gains flatten once the Tuner saturates")
	return t, nil
}

// Fig19 reproduces the batch-size study (§6.4): inference throughput vs
// batch size, with ViT hitting OOM at large batches.
func Fig19(p Params) (*Table, error) {
	ps := cluster.PipeStore(10)
	t := &Table{
		ID:     "fig19",
		Title:  "Inference throughput (KIPS) vs batch size on one PipeStore",
		Header: []string{"model", "batch", "KIPS"},
	}
	for _, m := range evalModels() {
		for _, bs := range []int{1, 8, 32, 128, 256, 512} {
			opt := npe.Optimized()
			opt.BatchSize = bs
			st, err := npe.StageTimes(ps, m, m.TotalGFLOPs(), npe.OfflineInference, opt)
			if err != nil {
				if errors.Is(err, npe.ErrOOM) {
					t.Rows = append(t.Rows, []string{m.Name, fmt.Sprint(bs), "OOM"})
					continue
				}
				return nil, err
			}
			t.Add(m.Name, bs, npe.Throughput(st, true)/1e3)
		}
	}
	t.Notes = append(t.Notes, "paper: gains marginal beyond 128; ViT OOMs at large batches; InceptionV3 hits the decompression ceiling")
	return t, nil
}

// Fig20 reproduces the Inferentia study (§6.4): NDPipe-Inf1 offline
// inference and fine-tuning vs SRV-C.
func Fig20(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig20",
		Title:  "NDPipe on Inferentia (NeuronCoreV1) vs SRV-C",
		Header: []string{"model", "task", "stores@parity", "perStoreIPS", "SRV-C"},
	}
	counts := func(per, srv float64) string { return fmt.Sprintf("%.1f", srv/per) }
	for _, m := range []*model.Spec{model.ResNet50(), model.ResNeXt101()} {
		inf1 := cluster.PipeStoreInf1(10)
		st, err := npe.StageTimes(inf1, m, m.TotalGFLOPs(), npe.OfflineInference, npe.Optimized())
		if err != nil {
			return nil, err
		}
		per := npe.Throughput(st, true)
		srv, _ := baseline.InferenceIPS(baseline.SRVC, m, 10)
		t.Rows = append(t.Rows, []string{m.Name, "inference", counts(per, srv),
			fmt.Sprintf("%.0f", per), fmt.Sprintf("%.0f", srv)})

		cfg := ftConfig(m, 1)
		cfg.Store = inf1
		res, err := ftdmp.Estimate(cfg)
		if err != nil {
			return nil, err
		}
		perFT := 1 / res.StorePerImageSec
		srvFT, _ := baseline.FineTuneIPS(baseline.SRVC, m, 10)
		t.Rows = append(t.Rows, []string{m.Name, "fine-tune", counts(perFT, srvFT),
			fmt.Sprintf("%.0f", perFT), fmt.Sprintf("%.0f", srvFT)})
	}
	t.Notes = append(t.Notes, "paper: NeuronCore needs 11-16 stores (inference) and 8-13 (fine-tuning) to match SRV-C, but wins on power/energy efficiency")
	return t, nil
}

// BestOrganization re-exports APO's Algorithm 1 for the planning example.
func BestOrganization(m *model.Spec, maxStores int) (apo.Recommendation, error) {
	return apo.BestOrganization(apo.Config{
		Base:      ftConfig(m, 1),
		MaxStores: maxStores,
	})
}
