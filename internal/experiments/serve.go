package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/inferserver"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/serve"
	"ndpipe/internal/telemetry"
)

// serveRig is one fresh online-serving deployment: an inference server over
// its own PipeStores. Every sweep point gets a new rig so rows don't inherit
// warm caches or grown shards from earlier rows.
func serveRig(cfg core.ModelConfig, stores int) (*inferserver.Server, error) {
	nodes := make([]*pipestore.Node, stores)
	for i := range nodes {
		ps, err := pipestore.New(fmt.Sprintf("srv-%d", i), cfg)
		if err != nil {
			return nil, err
		}
		nodes[i] = ps
	}
	return inferserver.New(cfg, nodes, labeldb.New())
}

// makeStream builds the offered upload stream as a Zipf-popular serving mix,
// the standard model for content-serving workloads: each arrival is a
// distinct photo object (fresh ID) whose *content* is drawn from a catalog
// with Zipf(s) popularity — re-shares, cross-posts and duplicate uploads of
// popular photos. The first arrival of any content is a cache miss; repeats
// are what the content-hash cache exists for. Draws are deterministic in the
// seed; the realized repeat fraction is reported in the table, not assumed.
func makeStream(catalog []dataset.Image, total int, s float64, seed int64) []dataset.Image {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(len(catalog)-1))
	stream := make([]dataset.Image, total)
	for i := range stream {
		img := catalog[z.Uint64()]
		img.ID = 2_000_000_000 + uint64(i) // every arrival is a new photo object
		stream[i] = img
	}
	return stream
}

// driveOpenLoop offers stream at a fixed arrival rate (uploads/sec) and
// serves it from a bounded worker pool. Latency is measured from each
// request's scheduled arrival time, not from when a worker got to it, so an
// overloaded system shows its real queueing delay instead of hiding it by
// slowing the generator (no coordinated omission). Returns achieved
// throughput and every per-request latency, sorted.
func driveOpenLoop(stream []dataset.Image, rate float64, workers int, up func(dataset.Image) error) (float64, []time.Duration, error) {
	tickets := make(chan int, len(stream))
	lats := make([]time.Duration, len(stream))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	t0 := time.Now()
	sched := func(i int) time.Time {
		return t0.Add(time.Duration(float64(i) * float64(time.Second) / rate))
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tickets {
				err := up(stream[i])
				lats[i] = time.Since(sched(i))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	// The generator checks the clock lazily: while behind schedule it must
	// not burn the (shared) CPU on a time.Now-per-ticket spin — `now` only
	// refreshes when the next scheduled arrival might still be in the future.
	now := t0
	for i := range stream {
		if s := sched(i); now.Before(s) {
			now = time.Now()
			if d := s.Sub(now); d > 0 {
				time.Sleep(d)
				now = s
			}
		}
		tickets <- i
	}
	close(tickets)
	wg.Wait()
	wall := time.Since(t0).Seconds()
	if firstErr != nil {
		return 0, nil, firstErr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return float64(len(stream)) / wall, lats, nil
}

// driveClosedLoop runs `clients` goroutines each uploading their strided
// share of imgs back-to-back. Used for the capacity probe and the replay /
// shed validation rows.
func driveClosedLoop(imgs []dataset.Image, clients int, up func(dataset.Image) error) (float64, []time.Duration, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	lats := make([][]time.Duration, clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			own := make([]time.Duration, 0, len(imgs)/clients+1)
			for i := c; i < len(imgs); i += clients {
				s := time.Now()
				err := up(imgs[i])
				own = append(own, time.Since(s))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
			lats[c] = own
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	if firstErr != nil {
		return 0, nil, firstErr
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return float64(len(all)) / wall, all, nil
}

// pctMs reads an exact percentile (nearest-rank on the sorted sample) in ms.
func pctMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Seconds() * 1e3
}

// Serve measures the online serving gateway against the sequential Upload
// loop as a throughput-vs-p99 curve: a fixed-rate offered-load sweep (in
// multiples of the sequential path's measured capacity) over an upload mix
// that is half fresh photos, half re-uploads of earlier content under new
// IDs. The sequential baseline recomputes everything per request; the
// gateway coalesces batches and serves repeated content from the
// content-hash feature cache. Latency percentiles are exact and measured
// from scheduled arrival, so an overloaded mode shows its real backlog.
// Separate rows validate cache bitwise identity (replay) and shed
// accounting under overload.
func Serve(p Params) (*Table, error) {
	cfg := core.DefaultModelConfig()
	const (
		nStores = 2
		zipfS   = 1.2 // popularity skew of the serving mix
		workers = 128
	)
	multipliers := []float64{0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}
	streamLen := 6000
	if p.Quick {
		multipliers = []float64{1.0, 2.0, 3.0, 4.0}
		streamLen = 1200
	}
	wcfg := dataset.DefaultConfig(p.Seed)
	wcfg.InitialImages = streamLen // catalog: more uniques than any stream needs
	uniques := dataset.NewWorld(wcfg).Images()[:streamLen]
	// Like any load generator, prepare the upload payloads before the timed
	// runs — both modes ingest real raw bytes instead of synthesizing them
	// inside the measurement.
	dataset.AttachRaw(uniques, dataset.DefaultJPEGSpec())
	stream := makeStream(uniques, streamLen, zipfS, p.Seed+1)
	freshStream := uniques // all-distinct content: the no-repeat control

	t := &Table{
		ID:    "serve",
		Title: "Online serving: batched+cached gateway vs sequential upload (offered-load sweep)",
		Header: []string{"mode", "offered/s", "uploads/s", "p50(ms)", "p95(ms)",
			"p99(ms)", "batch(avg)", "cacheHit%", "shed"},
	}

	gwOpts := func() serve.Options {
		return serve.Options{
			MaxBatch:     64,
			MaxWait:      500 * time.Microsecond,
			QueueDepth:   256,
			Policy:       serve.Block,
			CacheEntries: 2 * streamLen,
			Registry:     telemetry.NewRegistry(),
		}
	}

	// Capacity probe: the sequential Upload loop at full tilt sets the
	// sweep's unit. The probe uses the same mixed stream the sweep offers.
	probe := stream
	if len(probe) > 1500 {
		probe = probe[:1500]
	}
	srv, err := serveRig(cfg, nStores)
	if err != nil {
		return nil, err
	}
	seqCap, _, err := driveClosedLoop(probe, 1, func(img dataset.Image) error {
		_, err := srv.Upload(img)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Saturation comparison is per offered rate: the note reports the row
	// where the gateway's sustained throughput peaks, against the sequential
	// loop under the SAME offered load — comparing each mode's best row at
	// different rates would pair a saturated p99 with an unsaturated one.
	var seqSatThr, seqSatP99, gwSatThr, gwSatP99 float64
	for _, m := range multipliers {
		rate := m * seqCap
		var seqThr, seqP99 float64

		// Baseline: one worker draining the arrival queue through Upload.
		srv, err := serveRig(cfg, nStores)
		if err != nil {
			return nil, err
		}
		thr, lats, err := driveOpenLoop(stream, rate, 1, func(img dataset.Image) error {
			_, err := srv.Upload(img)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add("sequential", int(rate), thr, pctMs(lats, 0.50), pctMs(lats, 0.95),
			pctMs(lats, 0.99), "1.0", "-", 0)
		seqThr, seqP99 = thr, pctMs(lats, 0.99)

		// Gateway: same offered load, coalesced and cached.
		srv, err = serveRig(cfg, nStores)
		if err != nil {
			return nil, err
		}
		g, err := serve.New(srv, gwOpts())
		if err != nil {
			return nil, err
		}
		thr, lats, err = driveOpenLoop(stream, rate, workers, func(img dataset.Image) error {
			_, err := g.UploadImage(img)
			return err
		})
		g.Close()
		if err != nil {
			return nil, err
		}
		st := g.Stats()
		if st.Admitted != int64(len(stream)) || st.Completed != st.Admitted || st.Rejected() != 0 {
			return nil, fmt.Errorf("serve: gateway lost requests at rate %.0f: %+v", rate, st)
		}
		hitPct := 100 * float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
		t.Add("gateway", int(rate), thr, pctMs(lats, 0.50), pctMs(lats, 0.95),
			pctMs(lats, 0.99), fmt.Sprintf("%.1f", st.MeanBatch()),
			fmt.Sprintf("%.1f", hitPct), 0)
		if thr > gwSatThr {
			gwSatThr, gwSatP99 = thr, pctMs(lats, 0.99)
			seqSatThr, seqSatP99 = seqThr, seqP99
		}

		// Control row: the gateway on an all-distinct stream (no repeated
		// content), isolating what batching alone buys without the cache.
		if m == 2.0 {
			srv, err = serveRig(cfg, nStores)
			if err != nil {
				return nil, err
			}
			g, err := serve.New(srv, gwOpts())
			if err != nil {
				return nil, err
			}
			thr, lats, err = driveOpenLoop(freshStream, rate, workers, func(img dataset.Image) error {
				_, err := g.UploadImage(img)
				return err
			})
			g.Close()
			if err != nil {
				return nil, err
			}
			st := g.Stats()
			t.Add("gw-nodup", int(rate), thr, pctMs(lats, 0.50), pctMs(lats, 0.95),
				pctMs(lats, 0.99), fmt.Sprintf("%.1f", st.MeanBatch()), "0.0", 0)
		}
	}

	// Cache replay: upload everything once, then re-upload the same content
	// under fresh IDs — every replay must hit the content-hash cache and
	// reproduce the original label and confidence bitwise.
	srv, err = serveRig(cfg, nStores)
	if err != nil {
		return nil, err
	}
	opts := gwOpts()
	g, err := serve.New(srv, opts)
	if err != nil {
		return nil, err
	}
	firstRes := make(map[uint64]inferserver.UploadResult, len(uniques))
	var firstMu sync.Mutex
	_, _, err = driveClosedLoop(uniques, workers, func(img dataset.Image) error {
		r, err := g.UploadImage(img)
		if err == nil {
			firstMu.Lock()
			firstRes[img.ID] = r
			firstMu.Unlock()
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	warm := g.Stats()
	replays := make([]dataset.Image, len(uniques))
	for i, img := range uniques {
		img.ID += 1_000_000_000
		replays[i] = img
	}
	thr, lats, err := driveClosedLoop(replays, workers, func(img dataset.Image) error {
		r, err := g.UploadImage(img)
		if err != nil {
			return err
		}
		orig := firstRes[img.ID-1_000_000_000]
		if r.Label != orig.Label || r.Confidence != orig.Confidence {
			return fmt.Errorf("serve: cache hit for image %d not identical to miss", img.ID)
		}
		return nil
	})
	g.Close()
	if err != nil {
		return nil, err
	}
	st := g.Stats()
	hits := st.CacheHits - warm.CacheHits
	hitPct := 100 * float64(hits) / float64(len(replays))
	t.Add("gw-replay", 0, thr, pctMs(lats, 0.50), pctMs(lats, 0.95),
		pctMs(lats, 0.99), fmt.Sprintf("%.1f", st.MeanBatch()),
		fmt.Sprintf("%.1f", hitPct), 0)

	// Shed overload: a deliberately small queue with the shed policy; drops
	// fail fast and every one is counted — offered == completed + shed.
	srv, err = serveRig(cfg, nStores)
	if err != nil {
		return nil, err
	}
	opts = gwOpts()
	opts.Policy = serve.Shed
	opts.QueueDepth = 8
	g, err = serve.New(srv, opts)
	if err != nil {
		return nil, err
	}
	var shed int64
	var shedMu sync.Mutex
	thr, lats, err = driveClosedLoop(stream, workers, func(img dataset.Image) error {
		_, err := g.UploadImage(img)
		if err == serve.ErrOverloaded {
			shedMu.Lock()
			shed++
			shedMu.Unlock()
			return nil // shedding is the expected overload behavior
		}
		return err
	})
	g.Close()
	if err != nil {
		return nil, err
	}
	st = g.Stats()
	if st.ShedQueueFull != shed {
		return nil, fmt.Errorf("serve: silent drop: clients saw %d sheds, gateway counted %d",
			shed, st.ShedQueueFull)
	}
	if st.Admitted+st.ShedQueueFull != int64(len(stream)) {
		return nil, fmt.Errorf("serve: conservation violated: admitted %d + shed %d != offered %d",
			st.Admitted, st.ShedQueueFull, len(stream))
	}
	t.Add("gw-shed", 0, thr, pctMs(lats, 0.50), pctMs(lats, 0.95),
		pctMs(lats, 0.99), fmt.Sprintf("%.1f", st.MeanBatch()), "-", shed)

	t.Notes = append(t.Notes,
		fmt.Sprintf("offered-load sweep in multiples of the sequential capacity probe (%.0f up/s); latency measured from scheduled arrival (no coordinated omission)", seqCap),
		fmt.Sprintf("upload mix: Zipf(%.1f)-popular content under fresh photo IDs (re-shares/duplicate uploads); realized repeat rate is the cacheHit%% column; gw-nodup row is the all-distinct control", zipfS),
		fmt.Sprintf("at saturating offered load (same rate, both modes): gateway sustains %.0f up/s (p99 %.2fms) vs sequential %.0f up/s (p99 %.2fms) — %.1fx at %s p99",
			gwSatThr, gwSatP99, seqSatThr, seqSatP99, gwSatThr/seqSatThr,
			map[bool]string{true: "lower", false: "higher"}[gwSatP99 <= seqSatP99]),
		"replay row re-uploads identical content under fresh IDs; hits are bitwise-identical to misses",
		"shed row: bounded queue (8) under the shed policy; every drop is client-visible and counted")
	return t, nil
}
