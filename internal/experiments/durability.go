package experiments

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/photostore"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/placement"
	"ndpipe/internal/tuner"
)

// Durability gates (S36), enforced at full experiment size:
// rebuilding a dead store holding ≥1k photos must finish under 5 s, and a
// bounded-rate background scrub may not cost more than 5% of round wall.
const (
	rebuildWallGate   = 5 * time.Second
	scrubOverheadGate = 5.0 // percent of round wall
)

// durFleet is one replicated fleet over loopback: a tuner with replication
// enabled and nStores ring-ingested stores, optionally on disk, with one
// store's conn optionally rigged to drop mid-round.
type durFleet struct {
	tn     *tuner.Node
	stores []*pipestore.Node
	world  *dataset.World
	ring   *placement.Ring
	dirs   []string
	ln     net.Listener
}

func (f *durFleet) close() {
	f.ln.Close()
	f.tn.Close()
}

func durFleetUp(p Params, nStores, r, images, kill int, disk bool, root string) (*durFleet, error) {
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(p.Seed)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)

	tn, err := tuner.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := tn.EnableReplication(r); err != nil {
		return nil, err
	}
	tn.SetRoundOptions(tuner.RoundOptions{
		Quorum:       2,
		StoreTimeout: 10 * time.Second,
		RoundTimeout: 2 * time.Minute,
		Seed:         p.Seed,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tn.Close()
		return nil, err
	}
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, nStores) }()

	members := make([]string, nStores)
	for i := range members {
		members[i] = fmt.Sprintf("dur-%d", i)
	}
	ring, err := placement.New(members, r)
	if err != nil {
		return nil, err
	}
	f := &durFleet{tn: tn, world: world, ring: ring, ln: ln, dirs: make([]string, nStores)}
	for i := 0; i < nStores; i++ {
		var ps *pipestore.Node
		if disk {
			f.dirs[i] = filepath.Join(root, fmt.Sprintf("photos-%d", i))
			photos, perr := photostore.OpenDir(f.dirs[i])
			if perr != nil {
				return nil, perr
			}
			ps, err = pipestore.NewWithStorage(members[i], cfg, photos)
		} else {
			ps, err = pipestore.New(members[i], cfg)
		}
		if err != nil {
			return nil, err
		}
		var owned []dataset.Image
		for _, img := range world.Images() {
			for _, rep := range ring.Replicas(img.ID) {
				if rep == ps.ID {
					owned = append(owned, img)
					break
				}
			}
		}
		if err := ps.Ingest(owned); err != nil {
			return nil, err
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		if i == kill {
			inj, ierr := faultinject.New(p.Seed,
				faultinject.Rule{Kind: faultinject.Drop, Op: faultinject.OpWrite, After: 23})
			if ierr != nil {
				return nil, ierr
			}
			conn = inj.Conn(conn)
		}
		go func(ps *pipestore.Node, conn net.Conn) { _ = ps.Serve(conn) }(ps, conn)
		f.stores = append(f.stores, ps)
	}
	if err := <-accepted; err != nil {
		return nil, err
	}
	return f, nil
}

// storeMB is how many MB a full scrub of the store reads: raw frames plus
// compressed preprocessed frames.
func storeMB(ps *pipestore.Node) float64 {
	u := ps.Storage().Usage()
	return float64(u.RawBytes+u.PreprocBytes) / 1e6
}

// Durability measures the replicated photo layer (S36): scrub bandwidth,
// degraded rounds that lose zero images at R=2, at-rest bit-flip detection
// and over-the-wire repair latency, background-scrub overhead on a training
// round, and the rebuild time after losing a whole store.
func Durability(p Params) (*Table, error) {
	t := &Table{
		ID:     "durability",
		Title:  "Photo durability at R=2: scrub, repair, zero-loss rounds, rebuild (3 stores)",
		Header: []string{"scenario", "objects", "MB", "wall(ms)", "rate", "imagesLost"},
	}
	images, corruptN := 1500, 5
	if p.Quick {
		images, corruptN = 300, 2
	}
	const nStores, repl = 3, 2

	root, err := os.MkdirTemp("", "ndpipe-durability-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	opt := ftdmp.DefaultTrainOptions()
	if p.Quick {
		opt.MaxEpochs = 5
	}

	// --- Scrub bandwidth: one full checksum pass over a store's holding.
	f, err := durFleetUp(p, nStores, repl, images, -1, false, root)
	if err != nil {
		return nil, err
	}
	scrubStart := time.Now()
	checked, corrupt := f.stores[0].ScrubOnce(0)
	scrubWall := time.Since(scrubStart)
	mb := storeMB(f.stores[0])
	t.Add("scrub-full-store", checked, fmt.Sprintf("%.1f", mb),
		fmt.Sprintf("%d", scrubWall.Milliseconds()),
		fmt.Sprintf("%.0f MB/s", mb/scrubWall.Seconds()), corrupt)

	// --- Baseline round vs round with a bounded-rate background scrub.
	// Overhead is measured directly: time spent inside ScrubOnce while the
	// round runs, as a share of round wall.
	baseStart := time.Now()
	rep, err := f.tn.FineTune(2, 128, opt)
	if err != nil {
		f.close()
		return nil, fmt.Errorf("durability baseline round: %w", err)
	}
	baseWall := time.Since(baseStart)
	t.Add("round-baseline", rep.Images, "-", fmt.Sprintf("%d", baseWall.Milliseconds()), "-", rep.ImagesLost)

	stopScrub := make(chan struct{})
	var scrubBusy time.Duration
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// One bounded-rate scrubber cycling the fleet: 64 objects per 20 ms
		// tick, one store at a time (ScrubOnce passes serialize anyway).
		defer wg.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stopScrub:
				return
			case <-tick.C:
				t0 := time.Now()
				f.stores[i%len(f.stores)].ScrubOnce(64)
				scrubBusy += time.Since(t0)
			}
		}
	}()
	roundStart := time.Now()
	rep, err = f.tn.FineTune(2, 128, opt)
	roundWall := time.Since(roundStart)
	close(stopScrub)
	wg.Wait()
	if err != nil {
		f.close()
		return nil, fmt.Errorf("durability scrubbed round: %w", err)
	}
	overhead := float64(scrubBusy) / float64(roundWall) * 100
	t.Add("round-with-scrub", rep.Images, "-", fmt.Sprintf("%d", roundWall.Milliseconds()),
		fmt.Sprintf("%.1f%% scrub", overhead), rep.ImagesLost)
	f.close()

	// --- Degraded round at R=2: one store killed mid-extraction. Every
	// photo has a surviving replica, so the commit must lose nothing, and the
	// follow-up rebuild restores full replication from the survivors.
	f, err = durFleetUp(p, nStores, repl, images, nStores-1, false, root)
	if err != nil {
		return nil, err
	}
	degStart := time.Now()
	rep, err = f.tn.FineTune(2, 128, opt)
	if err != nil {
		f.close()
		return nil, fmt.Errorf("durability degraded round: %w", err)
	}
	degWall := time.Since(degStart)
	if !rep.Degraded {
		f.close()
		return nil, fmt.Errorf("durability: victim survived, round not degraded")
	}
	if rep.ImagesLost != 0 {
		f.close()
		return nil, fmt.Errorf("durability: degraded round lost %d images at R=2, want 0", rep.ImagesLost)
	}
	t.Add("round-one-store-killed", rep.Images, "-", fmt.Sprintf("%d", degWall.Milliseconds()),
		"0 lost", rep.ImagesLost)

	dead := f.stores[nStores-1]
	deadObjects := dead.Storage().Len()
	deadMB := storeMB(dead)
	rebuildStart := time.Now()
	rb, err := f.tn.Rebuild(dead.ID)
	if err != nil {
		f.close()
		return nil, fmt.Errorf("durability rebuild: %w", err)
	}
	rebuildWall := time.Since(rebuildStart)
	t.Add("store-loss-rebuild", rb.Objects, fmt.Sprintf("%.1f", float64(rb.Bytes)/1e6),
		fmt.Sprintf("%d", rebuildWall.Milliseconds()),
		fmt.Sprintf("%.0f obj/s", float64(rb.Objects)/rebuildWall.Seconds()), 0)
	f.close()

	// --- At-rest bit-flips on disk: scrub detects them, quarantines, and
	// the tuner repairs each from the healthy replica over the wire.
	f, err = durFleetUp(p, nStores, repl, images, -1, true, root)
	if err != nil {
		return nil, err
	}
	flipped := 0
	for _, img := range f.world.Images() {
		if flipped == corruptN {
			break
		}
		primary := f.ring.Replicas(img.ID)[0]
		for i, ps := range f.stores {
			if ps.ID != primary {
				continue
			}
			path := filepath.Join(f.dirs[i], "raw", fmt.Sprintf("%d", img.ID))
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				f.close()
				return nil, rerr
			}
			b[len(b)-1] ^= 0x01
			if werr := os.WriteFile(path, b, 0o644); werr != nil {
				f.close()
				return nil, werr
			}
			flipped++
		}
	}
	repairStart := time.Now()
	stats, err := f.tn.ScrubRepair(0)
	if err != nil {
		f.close()
		return nil, fmt.Errorf("durability scrub-repair: %w", err)
	}
	repairWall := time.Since(repairStart)
	if stats.Repaired != flipped || stats.Failed != 0 {
		f.close()
		return nil, fmt.Errorf("durability: %d bit-flips injected, repaired=%d failed=%d",
			flipped, stats.Repaired, stats.Failed)
	}
	t.Add("bitflip-scrub-repair", stats.Repaired, "-", fmt.Sprintf("%d", repairWall.Milliseconds()),
		fmt.Sprintf("%.1f ms/repair", float64(repairWall.Milliseconds())/float64(stats.Repaired)), 0)
	f.close()

	t.Notes = append(t.Notes,
		fmt.Sprintf("placement: consistent-hash ring, R=%d over %d stores; a degraded commit re-extracts the dead store's photos from live replicas", repl, nStores),
		fmt.Sprintf("rebuild re-replicates the dead store's %d objects (%.1f MB) from the designated surviving pusher of each", deadObjects, deadMB),
		"bit-flips are injected into at-rest raw frames; CRC32C verification quarantines on read and repair re-verifies end to end")
	if !p.Quick {
		if deadObjects >= 1000 && rebuildWall > rebuildWallGate {
			return nil, fmt.Errorf("durability: rebuild of %d-photo store took %v, gate is %v",
				deadObjects, rebuildWall, rebuildWallGate)
		}
		if overhead > scrubOverheadGate {
			return nil, fmt.Errorf("durability: background scrub cost %.1f%% of round wall, gate is %.0f%%",
				overhead, scrubOverheadGate)
		}
	}
	return t, nil
}
