package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tuner"
)

// allocsPerOp measures heap allocations per call of f, pinned to one P so
// concurrent background allocation doesn't leak into the count (the same
// discipline as testing.AllocsPerRun, without importing testing into a
// non-test package).
func allocsPerOp(iters int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm-up: one-time lazy initialization doesn't count
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// Obs validates and prices the fleet observability plane:
//
//   - rollup-exactness: 64 simulated store registries ship dense snapshots
//     into a FleetAggregator; the merged fleet histogram quantiles must be
//     bitwise-identical to a single histogram that observed the union of
//     every store's samples, and the fleet counter must be the exact sum.
//     The row prices shipping (snapshot+ship per store) and merging.
//   - hotpath-*: allocations per operation of the three instruments that sit
//     on request/round hot paths (counter increment, histogram observation,
//     flight-recorder event). All must be 0 allocs/op — observability must
//     not put garbage-collection pressure on the paths it watches.
//   - straggler-round: a real tuner + 4-store fleet over loopback where one
//     store's connection carries an injected per-write delay; the round
//     report must flag exactly that store within one fine-tuning round.
func Obs(p Params) (*Table, error) {
	t := &Table{
		ID:    "obs",
		Title: "Fleet observability: exact rollups, shipping overhead, hot-path cost, stragglers",
		Header: []string{"scenario", "stores", "samples", "ship(us/store)", "merge(ms)",
			"fleet p99(ms)", "exact", "allocs/op", "stragglers"},
	}
	nStores, perStore := 64, 2000
	images := 800
	if p.Quick {
		nStores, perStore = 16, 500
		images = 300
	}

	// --- rollup-exactness -------------------------------------------------
	// Every simulated store observes its own latency stream into a private
	// registry; a union histogram sees all of them. After shipping, the fleet
	// merge must reproduce the union bitwise (shared quantileOver, dense
	// bucket layouts) and the summed counter exactly.
	union := telemetry.NewHistogram(nil)
	rng := rand.New(rand.NewSource(p.Seed))
	regs := make([]*telemetry.Registry, nStores)
	ids := make([]string, nStores)
	for i := range regs {
		regs[i] = telemetry.NewRegistry()
		ids[i] = fmt.Sprintf("sim-%d", i)
		h := regs[i].Histogram("obs_op_seconds")
		c := regs[i].Counter("obs_ops_total")
		// Per-store latency regimes differ (scale grows with the store index)
		// so the merge is exercised across buckets, not within one.
		scale := 1e-4 * (1 + float64(i%8))
		for j := 0; j < perStore; j++ {
			v := scale * (0.5 + rng.Float64()*4)
			h.Observe(v)
			union.Observe(v)
			c.Inc()
		}
	}
	agg := telemetry.NewFleetAggregator(nil)
	shipStart := time.Now()
	for i, reg := range regs {
		if !agg.Ship(ids[i], 1, reg.SnapshotDense()) {
			return nil, fmt.Errorf("obs: shipment from %s rejected", ids[i])
		}
	}
	shipPerStore := float64(time.Since(shipStart).Microseconds()) / float64(nStores)
	mergeStart := time.Now()
	snap := agg.Snapshot()
	mergeMs := float64(time.Since(mergeStart).Microseconds()) / 1e3

	var fleetHist *telemetry.HistogramSnapshot
	var fleetOps float64
	for _, s := range snap.Series {
		switch s.Name {
		case "obs_op_seconds":
			fleetHist = s.Fleet.Hist
		case "obs_ops_total":
			fleetOps = s.Fleet.Value
		}
	}
	if fleetHist == nil {
		return nil, fmt.Errorf("obs: merged histogram missing from fleet snapshot")
	}
	want := union.DenseSnapshot()
	exact := fleetHist.P50 == want.P50 && fleetHist.P95 == want.P95 &&
		fleetHist.P99 == want.P99 && fleetHist.Count == want.Count
	if !exact {
		return nil, fmt.Errorf("obs: fleet merge not exact: p50 %v/%v p95 %v/%v p99 %v/%v count %d/%d",
			fleetHist.P50, want.P50, fleetHist.P95, want.P95, fleetHist.P99, want.P99,
			fleetHist.Count, want.Count)
	}
	if wantOps := float64(nStores * perStore); fleetOps != wantOps {
		return nil, fmt.Errorf("obs: fleet counter %v, want %v", fleetOps, wantOps)
	}
	t.Add("rollup-exactness", nStores, nStores*perStore,
		fmt.Sprintf("%.1f", shipPerStore), fmt.Sprintf("%.2f", mergeMs),
		fmt.Sprintf("%.3f", fleetHist.P99*1e3), "bitwise", "-", "-")

	// --- hot-path allocation cost ----------------------------------------
	hreg := telemetry.NewRegistry()
	ctr := hreg.Counter("obs_hot_total")
	hist := hreg.Histogram("obs_hot_seconds")
	flight := telemetry.NewFlightRecorder(0)
	iters := 100_000
	if p.Quick {
		iters = 20_000
	}
	for _, hp := range []struct {
		name string
		f    func()
	}{
		{"hotpath-counter", func() { ctr.Inc() }},
		{"hotpath-histogram", func() { hist.Observe(2.5e-4) }},
		{"hotpath-flightrec", func() {
			flight.Record(telemetry.FlightRoundStart, "obs", "sim-0", 1, 2)
		}},
	} {
		allocs := allocsPerOp(iters, hp.f)
		// Runtime background activity (GC bookkeeping) can contribute a
		// handful of mallocs across 100k iterations; anything at or above
		// 0.01 allocs/op is a real per-operation allocation.
		if allocs >= 0.01 {
			return nil, fmt.Errorf("obs: %s allocates %.2f allocs/op, want 0", hp.name, allocs)
		}
		t.Add(hp.name, "-", iters, "-", "-", "-", "-", fmt.Sprintf("%.2f", allocs), "-")
	}

	// --- straggler-round --------------------------------------------------
	// A real fleet where one store's writes each carry an injected delay:
	// its gather latency separates from the fleet median and the round
	// report must name it (and only it) within one round.
	const fleetN = 4
	const victimIdx = fleetN - 1
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(p.Seed)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)

	tn, err := tuner.New(cfg)
	if err != nil {
		return nil, err
	}
	tn.SetRoundOptions(tuner.RoundOptions{
		StoreTimeout: 30 * time.Second,
		RoundTimeout: 2 * time.Minute,
		Seed:         p.Seed,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, fleetN) }()
	shards := world.Shard(fleetN)
	victimID := ""
	for i := 0; i < fleetN; i++ {
		ps, err := pipestore.New(fmt.Sprintf("obs-%d", i), cfg)
		if err != nil {
			return nil, err
		}
		if err := ps.Ingest(shards[i]); err != nil {
			return nil, err
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		if i == victimIdx {
			inj, err := faultinject.New(p.Seed, faultinject.Rule{
				Kind: faultinject.Delay, Op: faultinject.OpWrite,
				After: 1, Prob: 1, Delay: 100 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			conn = inj.Conn(conn)
			victimID = ps.ID
		}
		go func(ps *pipestore.Node, conn net.Conn) { _ = ps.Serve(conn) }(ps, conn)
	}
	if err := <-accepted; err != nil {
		return nil, err
	}
	defer tn.Close()

	opt := ftdmp.DefaultTrainOptions()
	if p.Quick {
		opt.MaxEpochs = 5
	}
	roundStart := time.Now()
	rep, err := tn.FineTune(2, 128, opt)
	if err != nil {
		return nil, fmt.Errorf("obs straggler round: %w", err)
	}
	roundMs := time.Since(roundStart).Milliseconds()
	if len(rep.Stragglers) != 1 || rep.Stragglers[0] != victimID {
		return nil, fmt.Errorf("obs: round flagged %v as stragglers, want [%s]",
			rep.Stragglers, victimID)
	}
	t.Add("straggler-round", fleetN, rep.Images, "-", "-", "-", "-", "-",
		strings.Join(rep.Stragglers, " "))

	t.Notes = append(t.Notes,
		"rollup row: fleet p50/p95/p99 from merged bucket counts are bitwise-equal to a union-observing histogram (shared quantileOver over dense snapshots), counters sum exactly",
		"hotpath rows: instruments on request/round hot paths must not allocate; measured pinned to one P, warm-up excluded",
		fmt.Sprintf("straggler row: one store's writes carry an injected 100ms delay; the median+MAD rule (k=%.0f) flagged it in a single %dms round", telemetry.DefaultStragglerK, roundMs),
		fmt.Sprintf("round resource accounting: %.2fs CPU, %d B in / %d B out on the wire",
			rep.Resources.CPUSeconds, rep.WireBytesIn, rep.WireBytesOut))
	return t, nil
}
