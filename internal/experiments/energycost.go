package experiments

import (
	"fmt"
	"math"

	"ndpipe/internal/baseline"
	"ndpipe/internal/cluster"
	"ndpipe/internal/cost"
	"ndpipe/internal/energy"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
	"ndpipe/internal/npe"
)

// ndpipeInferenceLoads builds the energy loads of n PipeStores running
// offline inference flat out for duration seconds.
func ndpipeInferenceLoads(m *model.Spec, n int, gbps, duration float64) ([]energy.ServerLoad, error) {
	ps := cluster.PipeStore(gbps)
	st, err := npe.StageTimes(ps, m, m.TotalGFLOPs(), npe.OfflineInference, npe.Optimized())
	if err != nil {
		return nil, err
	}
	bott := maxOf(st.Read, st.Decomp, st.FE)
	return []energy.ServerLoad{{
		Server: ps, Count: n, Duration: duration,
		AccelBusy:    duration * st.FE / bott,
		CPUBusy:      duration * st.Decomp / bott,
		DiskBusy:     duration * st.Read / bott,
		CPUCoresUsed: 2,
	}}, nil
}

// srvInferenceLoads builds the energy loads of a centralized system serving
// `ips` images/s for duration seconds.
func srvInferenceLoads(sys baseline.System, m *model.Spec, gbps, ips, duration float64) []energy.ServerLoad {
	host := cluster.SRVHost(gbps)
	storage := cluster.StorageServer(gbps)
	gpuCap := host.InferIPS(m, m.TotalGFLOPs()) * npe.BatchEff(128)
	decompCap := float64(baseline.DecompCores) * host.CPU.DecompBps / float64(m.PreprocBytes())
	loads := []energy.ServerLoad{{
		Server: host, Duration: duration,
		AccelBusy:    duration * clamp01(ips/gpuCap),
		CPUBusy:      duration * cpuBusyFrac(sys, ips, decompCap, host),
		DiskBusy:     duration * diskBusyFrac(sys, m, ips, host),
		CPUCoresUsed: baseline.DecompCores,
	}}
	if sys != baseline.SRVI && sys != baseline.Ideal {
		readAgg := float64(baseline.StorageServers) * storage.Disk.ReadBps
		bytes := float64(m.PreprocBytes())
		if sys == baseline.SRVC {
			bytes *= npe.PreprocCompressRatio
		}
		loads = append(loads, energy.ServerLoad{
			Server: storage, Count: baseline.StorageServers, Duration: duration,
			DiskBusy:     duration * clamp01(ips*bytes/readAgg),
			CPUCoresUsed: 1,
		})
	}
	return loads
}

func cpuBusyFrac(sys baseline.System, ips, decompCap float64, host *cluster.Server) float64 {
	switch sys {
	case baseline.SRVC:
		return clamp01(ips / decompCap)
	case baseline.Typical, baseline.Ideal:
		return clamp01(ips / (float64(baseline.PreprocPoolCores) * host.CPU.PreprocIPS))
	}
	return 0.1 // framing/feed handling
}

func diskBusyFrac(sys baseline.System, m *model.Spec, ips float64, host *cluster.Server) float64 {
	if sys == baseline.SRVI || sys == baseline.Ideal {
		return clamp01(ips * float64(m.PreprocBytes()) / host.Disk.ReadBps)
	}
	return 0
}

// trainingLoads converts an FT-DMP result into energy loads.
func trainingLoads(res ftdmp.Result, stores int, gbps float64) []energy.ServerLoad {
	return []energy.ServerLoad{
		{
			Server: cluster.PipeStore(gbps), Count: stores, Duration: res.TotalSec,
			AccelBusy: res.StoreGPUBusy, CPUBusy: res.StoreCPUBusy,
			DiskBusy: res.StoreDiskBusy, CPUCoresUsed: 2,
		},
		{
			Server: cluster.Tuner(gbps), Duration: res.TotalSec,
			AccelBusy: res.TunerGPUBusy, CPUBusy: res.TunerCPUBusy,
			CPUCoresUsed: 2,
		},
	}
}

// srvTrainingLoads builds SRV-C's fine-tuning energy loads.
func srvTrainingLoads(m *model.Spec, gbps float64, ips, duration float64) []energy.ServerLoad {
	return srvInferenceLoads(baseline.SRVC, m, gbps, ips, duration)
}

// Fig11 reproduces the APO example study (§5.3): training time, T_diff and
// energy efficiency vs #PipeStores for ResNet50.
func Fig11(p Params) (*Table, error) {
	m := model.ResNet50()
	t := &Table{
		ID:     "fig11",
		Title:  "Training time and energy efficiency by #PipeStores (ResNet50)",
		Header: []string{"stores", "trainTime(s)", "Tdiff(s)", "IPS/kJ"},
	}
	maxStores := 20
	if p.Quick {
		maxStores = 10
	}
	bestEff, bestN := 0.0, 0
	for n := 1; n <= maxStores; n++ {
		res, err := ftdmp.Simulate(ftConfig(m, n))
		if err != nil {
			return nil, err
		}
		rep, err := energy.Compute(trainingLoads(res, n, 10))
		if err != nil {
			return nil, err
		}
		eff := energy.IPSPerKJ(trainImages, rep)
		if eff > bestEff {
			bestEff, bestN = eff, n
		}
		t.Add(n, res.TotalSec, res.TDiff, eff)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"paper: APO picks 8 stores (Tdiff→0); efficiency decays beyond. best efficiency here at %d stores", bestN))
	return t, nil
}

// Fig14 reproduces the inference power comparison (§6.2): GPU/CPU/Others
// breakdown at the P1/P2/P3 parity points.
func Fig14(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Inference power at parity points (W)",
		Header: []string{"model", "point", "system", "GPU", "CPU", "Others", "total", "IPS/W"},
	}
	models := evalModels()
	if p.Quick {
		models = models[:1]
	}
	const dur = 100.0
	for _, m := range models {
		per, err := pipeStoreIPS(m)
		if err != nil {
			return nil, err
		}
		for _, pt := range []struct {
			name string
			sys  baseline.System
		}{{"P1", baseline.SRVP}, {"P2", baseline.SRVC}, {"P3", baseline.SRVI}} {
			ips, err := baseline.InferenceIPS(pt.sys, m, 10)
			if err != nil {
				return nil, err
			}
			stores := int(math.Max(1, math.Round(ips/per)))
			srvRep, err := energy.Compute(srvInferenceLoads(pt.sys, m, 10, ips, dur))
			if err != nil {
				return nil, err
			}
			ndLoads, err := ndpipeInferenceLoads(m, stores, 10, dur)
			if err != nil {
				return nil, err
			}
			ndRep, err := energy.Compute(ndLoads)
			if err != nil {
				return nil, err
			}
			ndIPS := per * float64(stores)
			t.Rows = append(t.Rows,
				[]string{m.Name, pt.name, pt.sys.String(),
					f1(srvRep.GPUWatts), f1(srvRep.CPUWatts), f1(srvRep.OtherWatts),
					f1(srvRep.AvgWatts), f2(ips / srvRep.AvgWatts)},
				[]string{m.Name, pt.name, fmt.Sprintf("NDPipe(%d)", stores),
					f1(ndRep.GPUWatts), f1(ndRep.CPUWatts), f1(ndRep.OtherWatts),
					f1(ndRep.AvgWatts), f2(ndIPS / ndRep.AvgWatts)})
		}
	}
	t.Notes = append(t.Notes, "paper: NDPipe is 1.83x/1.39x more power-efficient than SRV-P/SRV-C on average")
	return t, nil
}

// Fig16 reproduces the training energy-efficiency comparison (§6.3) at the
// SRV-C-parity point (P1) and at NDPipe's best-efficiency point (BEST).
func Fig16(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig16",
		Title:  "Training energy efficiency (IPS/kJ) at P1 and BEST",
		Header: []string{"model", "point", "NDPipe", "SRV-C", "ratio"},
	}
	models := evalModels()
	if p.Quick {
		models = models[:1]
	}
	for _, m := range models {
		srvIPS, err := baseline.FineTuneIPS(baseline.SRVC, m, 10)
		if err != nil {
			return nil, err
		}
		srvDur := trainImages / srvIPS
		srvRep, err := energy.Compute(srvTrainingLoads(m, 10, srvIPS, srvDur))
		if err != nil {
			return nil, err
		}
		srvEff := energy.IPSPerKJ(trainImages, srvRep)

		// Sweep stores for the parity and best-efficiency points.
		parityN, bestN, bestEff := 0, 0, 0.0
		var parityEff float64
		for n := 1; n <= 20; n++ {
			res, err := ftdmp.Simulate(ftConfig(m, n))
			if err != nil {
				return nil, err
			}
			rep, err := energy.Compute(trainingLoads(res, n, 10))
			if err != nil {
				return nil, err
			}
			eff := energy.IPSPerKJ(trainImages, rep)
			if parityN == 0 && res.TotalSec <= srvDur {
				parityN, parityEff = n, eff
			}
			if eff > bestEff {
				bestN, bestEff = n, eff
			}
		}
		if parityN == 0 {
			parityN, parityEff = 20, bestEff
		}
		t.Rows = append(t.Rows,
			[]string{m.Name, fmt.Sprintf("P1(%d stores)", parityN), f2(parityEff), f2(srvEff), f2(parityEff / srvEff)},
			[]string{m.Name, fmt.Sprintf("BEST(%d stores)", bestN), f2(bestEff), f2(srvEff), f2(bestEff / srvEff)})
	}
	t.Notes = append(t.Notes, "paper: 1.44x (P1) and 2.64x (BEST) higher energy efficiency than SRV-C on average")
	return t, nil
}

// Fig18 reproduces the bandwidth study (§6.4): inference IPS/W vs network
// line rate for NDPipe and SRV-C.
func Fig18(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "Inference throughput-per-watt vs network bandwidth",
		Header: []string{"model", "Gbps", "NDPipe(IPS/W)", "SRV-C(IPS/W)", "ratio"},
	}
	const dur, stores = 100.0, 4
	for _, m := range []*model.Spec{model.ResNet50(), model.ResNeXt101()} {
		for _, g := range []float64{1, 10, 20, 40} {
			srvIPS, err := baseline.InferenceIPS(baseline.SRVC, m, g)
			if err != nil {
				return nil, err
			}
			srvRep, err := energy.Compute(srvInferenceLoads(baseline.SRVC, m, g, srvIPS, dur))
			if err != nil {
				return nil, err
			}
			per, err := pipeStoreIPS(m)
			if err != nil {
				return nil, err
			}
			ndLoads, err := ndpipeInferenceLoads(m, stores, g, dur)
			if err != nil {
				return nil, err
			}
			ndRep, err := energy.Compute(ndLoads)
			if err != nil {
				return nil, err
			}
			nd := per * stores / ndRep.AvgWatts
			srv := srvIPS / srvRep.AvgWatts
			t.Rows = append(t.Rows, []string{m.Name, fmt.Sprintf("%.0f", g), f2(nd), f2(srv), f2(nd / srv)})
		}
	}
	t.Notes = append(t.Notes, "paper: 3.7x at 1 Gbps, 1.3x at 40 Gbps for ResNet50; SRV-C stops improving past 20 Gbps")
	return t, nil
}

// Fig21 reproduces the cost analysis (§7.2): fine-tuning cost vs
// #PipeStores, and cost vs accuracy for the training strategies.
func Fig21(p Params) (*Table, error) {
	m := model.ResNet50()
	t := &Table{
		ID:     "fig21",
		Title:  "Operational cost of fine-tuning (ResNet50, 1.2M images)",
		Header: []string{"system", "stores", "time(min)", "cost($)"},
	}
	counts := []int{1, 2, 4, 8, 12, 16, 20}
	if p.Quick {
		counts = []int{2, 8}
	}
	for _, n := range counts {
		res, err := ftdmp.Simulate(ftConfig(m, n))
		if err != nil {
			return nil, err
		}
		usd, err := cost.FineTuneNDPipe(cluster.PipeStore(10), cluster.Tuner(10), n, res.TotalSec)
		if err != nil {
			return nil, err
		}
		t.Add("NDPipe", n, res.TotalSec/60, usd)

		cfg := ftConfig(m, n)
		cfg.Store = cluster.PipeStoreInf1(10)
		resI, err := ftdmp.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		usdI, err := cost.FineTuneNDPipe(cluster.PipeStoreInf1(10), cluster.Tuner(10), n, resI.TotalSec)
		if err != nil {
			return nil, err
		}
		t.Add("NDPipe-Inf1", n, resI.TotalSec/60, usdI)
	}
	srvIPS, err := baseline.FineTuneIPS(baseline.SRVC, m, 10)
	if err != nil {
		return nil, err
	}
	srvDur := trainImages / srvIPS
	srvUSD, err := cost.FineTuneSRV(cluster.SRVHost(10), cluster.StorageServer(10), baseline.StorageServers, srvDur)
	if err != nil {
		return nil, err
	}
	t.Add("SRV-C", "-", srvDur/60, srvUSD)

	// Cost vs accuracy: full training runs ~90 epochs on the plain engine.
	fullIPS, err := baseline.FineTuneIPS(baseline.Typical, m, 10)
	if err != nil {
		return nil, err
	}
	fullDur := 90 * trainImages / fullIPS
	fullUSD, err := cost.FineTuneSRV(cluster.SRVHost(10), cluster.StorageServer(10), baseline.StorageServers, fullDur)
	if err != nil {
		return nil, err
	}
	t.Add("Full(90ep)", "-", fullDur/60, fullUSD)
	t.Notes = append(t.Notes,
		"paper: NDPipe and NDPipe-Inf1 run 1.5x and 2.5x cheaper than SRV-C; full training is far costlier for slightly higher accuracy")
	return t, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxOf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
