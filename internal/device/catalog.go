// Package device is the hardware catalog behind the ndpipe simulator: the
// accelerators, CPUs, storage volumes and NICs of the paper's AWS testbed,
// reduced to the rates and power draws that determine system behaviour.
//
// Calibration philosophy (see DESIGN.md §4): a device's *effective*
// throughput on a model is device-peak × model-efficiency. The free
// parameters were set so that the paper's measured single-device anchors
// are reproduced:
//
//   - one T4 PipeStore: 2,129 / 2,439 / 449 / 277 IPS for
//     ResNet50 / InceptionV3 / ResNeXt101 / ViT (§6.2);
//   - two V100s ≈ the throughput of 5–7 T4 PipeStores (Fig 13, point P3),
//     giving the V100 a 1.43× efficiency multiplier on top of its
//     125/65 TFLOPS peak ratio;
//   - NeuronCoreV1 needs ≈2.3× more PipeStores than the T4 to match SRV-C
//     (Fig 20), i.e. ≈0.43× T4 throughput;
//   - an st1 16-HDD array sustains 500 MB/s sequential (the st1 burst
//     ceiling), and host-side preprocessing shares its 8-core pool with
//     network receive handling, which is what pins the Typical offline
//     inference path at ≈94 IPS vs the Ideal's ≈123 IPS (Fig 5b);
//   - 8 host cores decompress 0.78 GB/s of raw output each, capping SRV-C
//     at ≈10.4 K IPS for ResNet50, which is why SRV-C stops scaling past
//     20 Gbps (Fig 18);
//   - 8 host cores preprocess 2.7 MB JPEGs at ≈15.4 images/s/core, making
//     the Ideal system preprocessing-bound at ≈123 IPS (Fig 5b).
package device

// Accelerator is a GPU or inference ASIC.
type Accelerator struct {
	Name string
	// TensorFLOPS is peak throughput on the optimized inference engine
	// (TensorRT / Neuron), in FLOP/s.
	TensorFLOPS float64
	// FP32FLOPS is peak fp32 throughput on the training engine.
	FP32FLOPS float64
	// EffMult scales model.InferEff for this device (batch/compiler
	// quality differences between devices).
	EffMult float64
	// TrainEffMult scales model.TrainEff for this device's training engine
	// (framework maturity differs across accelerators).
	TrainEffMult float64
	// MemoryBytes bounds the batch size (Fig 19's ViT OOM).
	MemoryBytes int64
	// ActiveWatts / IdleWatts are the accelerator's power draw.
	ActiveWatts float64
	IdleWatts   float64
}

// CPU describes a server's host processor complex.
type CPU struct {
	Name  string
	Cores int
	// PreprocIPS is JPEG decode+resize throughput per core (images/s) for a
	// typical 2.7 MB photo.
	PreprocIPS float64
	// DecompBps is deflate *decompression* output bandwidth per core (raw
	// bytes/s).
	DecompBps float64
	// CompBps is deflate compression input bandwidth per core (raw bytes/s).
	CompBps float64
	// FeedBps is the per-pipeline data-handling bandwidth (framing, copies,
	// staging to the accelerator) that bounds the Tuner's ingest of feature
	// batches.
	FeedBps float64
	// ActiveWattsPerCore / IdleWatts are the package power draws.
	ActiveWattsPerCore float64
	IdleWatts          float64
}

// Storage is a block volume.
type Storage struct {
	Name        string
	ReadBps     float64 // sustained sequential read, bytes/s
	WriteBps    float64
	ActiveWatts float64
	IdleWatts   float64
}

// NIC is a network interface.
type NIC struct {
	Name        string
	Bps         float64 // line rate in bytes/s (we quote Gbps/8 in constructors)
	LatencyS    float64
	ActiveWatts float64
}

// GbpsToBps converts link gigabits/s to bytes/s.
func GbpsToBps(gbps float64) float64 { return gbps * 1e9 / 8 }

// --- Accelerators -----------------------------------------------------------

// TeslaT4 is the PipeStore accelerator (g4dn.4xlarge).
func TeslaT4() Accelerator {
	return Accelerator{
		Name:         "Tesla T4",
		TensorFLOPS:  65e12,
		FP32FLOPS:    8.1e12,
		EffMult:      1.0,
		TrainEffMult: 0.75, // calibrated: 4×T4 FE&CT ≈ 1.36× two-V100 time (Fig 6a)
		MemoryBytes:  16 << 30,
		ActiveWatts:  70,
		IdleWatts:    10,
	}
}

// TeslaV100 is the Tuner / host-server accelerator (p3 instances).
func TeslaV100() Accelerator {
	return Accelerator{
		Name:         "Tesla V100",
		TensorFLOPS:  125e12,
		FP32FLOPS:    15.7e12,
		EffMult:      1.43, // calibrated: 2×V100 ≈ 5.5 T4 stores (Fig 13 P3)
		TrainEffMult: 1.0,
		MemoryBytes:  16 << 30,
		ActiveWatts:  300,
		IdleWatts:    30,
	}
}

// NeuronCoreV1 is the AWS Inferentia accelerator (Inf1.2xlarge). Power is
// estimated (the paper likewise estimates it from public figures [52]).
func NeuronCoreV1() Accelerator {
	return Accelerator{
		Name:         "NeuronCoreV1",
		TensorFLOPS:  64e12, // int8/bf16 peak
		FP32FLOPS:    2e12,
		EffMult:      0.43, // calibrated: ≈2.3× more stores than T4 (Fig 20)
		TrainEffMult: 0.30,
		MemoryBytes:  8 << 30,
		ActiveWatts:  25,
		IdleWatts:    5,
	}
}

// --- CPUs -------------------------------------------------------------------

// XeonStorage is the 16-vCPU CPU of a g4dn.4xlarge storage server.
func XeonStorage() CPU {
	return CPU{
		Name:               "Xeon-2.5GHz-16c",
		Cores:              16,
		PreprocIPS:         15.4,
		DecompBps:          780e6,
		CompBps:            180e6,
		FeedBps:            150e6,
		ActiveWattsPerCore: 5.5,
		IdleWatts:          40,
	}
}

// XeonHost is the 32-vCPU CPU of the p3.8xlarge host server.
func XeonHost() CPU {
	return CPU{
		Name:               "Xeon-2.7GHz-32c",
		Cores:              32,
		PreprocIPS:         15.4,
		DecompBps:          780e6,
		CompBps:            180e6,
		FeedBps:            150e6,
		ActiveWattsPerCore: 6.0,
		IdleWatts:          70,
	}
}

// XeonTuner is the 8-vCPU CPU of the p3.2xlarge Tuner.
func XeonTuner() CPU {
	return CPU{
		Name:       "Xeon-2.7GHz-8c",
		Cores:      8,
		PreprocIPS: 15.4,
		DecompBps:  780e6,
		CompBps:    180e6,
		// The Tuner's feature-ingest path (deserialize, stage, index) is
		// calibrated so Store- and Tuner-stages balance at ≈8 ResNet50
		// PipeStores (Fig 11: APO picks 8).
		FeedBps:            75e6,
		ActiveWattsPerCore: 6.0,
		IdleWatts:          35,
	}
}

// --- Storage ----------------------------------------------------------------

// ST1Array is the 16-HDD st1 RAID-5 volume of the storage servers.
func ST1Array() Storage {
	return Storage{
		Name:        "st1-16xHDD",
		ReadBps:     500e6,
		WriteBps:    200e6,
		ActiveWatts: 96, // 16 spindles × 6 W
		IdleWatts:   64,
	}
}

// NVMeLocal is the Tuner's local NVMe scratch volume.
func NVMeLocal() Storage {
	return Storage{
		Name:        "nvme-local",
		ReadBps:     7e9,
		WriteBps:    3e9,
		ActiveWatts: 12,
		IdleWatts:   4,
	}
}

// --- NICs -------------------------------------------------------------------

// Ethernet returns a NIC at the given line rate.
func Ethernet(gbps float64) NIC {
	return NIC{
		Name:        "eth",
		Bps:         GbpsToBps(gbps),
		LatencyS:    50e-6,
		ActiveWatts: 8,
	}
}
