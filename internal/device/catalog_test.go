package device

import "testing"

// The catalog is calibration-bearing: these tests pin the relationships the
// figures depend on, so an accidental edit shows up as a test failure, not
// as silently wrong reproductions.

func TestAcceleratorOrdering(t *testing.T) {
	t4, v100, neuron := TeslaT4(), TeslaV100(), NeuronCoreV1()
	// Effective inference throughput ordering: V100 > T4 > NeuronCore.
	effT4 := t4.TensorFLOPS * t4.EffMult
	effV100 := v100.TensorFLOPS * v100.EffMult
	effNeuron := neuron.TensorFLOPS * neuron.EffMult
	if !(effV100 > effT4 && effT4 > effNeuron) {
		t.Fatalf("ordering broken: V100 %g, T4 %g, Neuron %g", effV100, effT4, effNeuron)
	}
	// Fig 13 P3: one V100 ≈ 2.75 T4s (two ≈ 5.5 stores).
	if r := effV100 / effT4; r < 2.4 || r > 3.1 {
		t.Fatalf("V100/T4 ratio %.2f, want ≈2.75", r)
	}
	// Fig 20: NeuronCore ≈ 0.43× T4.
	if r := effNeuron / effT4; r < 0.35 || r > 0.5 {
		t.Fatalf("Neuron/T4 ratio %.2f, want ≈0.43", r)
	}
}

func TestPowerOrdering(t *testing.T) {
	t4, v100, neuron := TeslaT4(), TeslaV100(), NeuronCoreV1()
	if !(neuron.ActiveWatts < t4.ActiveWatts && t4.ActiveWatts < v100.ActiveWatts) {
		t.Fatal("power ordering must be Neuron < T4 < V100")
	}
	for _, a := range []Accelerator{t4, v100, neuron} {
		if a.IdleWatts >= a.ActiveWatts || a.IdleWatts < 0 {
			t.Fatalf("%s idle/active watts inconsistent", a.Name)
		}
		if a.MemoryBytes <= 0 || a.TensorFLOPS <= 0 || a.FP32FLOPS <= 0 {
			t.Fatalf("%s has non-positive capability", a.Name)
		}
	}
}

func TestGbpsToBps(t *testing.T) {
	if GbpsToBps(10) != 1.25e9 {
		t.Fatalf("10 Gbps = %v B/s", GbpsToBps(10))
	}
}

func TestCPURates(t *testing.T) {
	for _, c := range []CPU{XeonStorage(), XeonHost(), XeonTuner()} {
		if c.Cores <= 0 || c.PreprocIPS <= 0 || c.DecompBps <= 0 || c.CompBps <= 0 || c.FeedBps <= 0 {
			t.Fatalf("%s has non-positive rates", c.Name)
		}
		// Decompression is much faster than compression (deflate asymmetry).
		if c.DecompBps <= c.CompBps {
			t.Fatalf("%s: decompress (%g) must beat compress (%g)", c.Name, c.DecompBps, c.CompBps)
		}
	}
	// Fig 5(b) anchor: 8 host cores preprocess at ≈123 IPS.
	if ips := 8 * XeonHost().PreprocIPS; ips < 118 || ips > 128 {
		t.Fatalf("8-core preprocessing %f IPS, want ≈123", ips)
	}
}

func TestStorageRates(t *testing.T) {
	st1, nvme := ST1Array(), NVMeLocal()
	if st1.ReadBps >= nvme.ReadBps {
		t.Fatal("NVMe must outrun the HDD array")
	}
	for _, s := range []Storage{st1, nvme} {
		if s.ReadBps <= 0 || s.WriteBps <= 0 {
			t.Fatalf("%s non-positive throughput", s.Name)
		}
	}
}

func TestEthernet(t *testing.T) {
	nic := Ethernet(25)
	if nic.Bps != GbpsToBps(25) || nic.LatencyS <= 0 {
		t.Fatalf("NIC = %+v", nic)
	}
}
