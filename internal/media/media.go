// Package media extends NDPipe beyond photos, implementing the §7.1
// discussion: adapters that turn video, audio and document content into the
// fixed-width preprocessed vectors the NDPipe pipeline consumes. Each
// adapter is a Preprocessor: PipeStores run it near the data (the +Offload
// stage for non-photo media), then feature-extract and classify exactly as
// they do for photos.
//
//   - Video: key-frame extraction (frame-difference selection, after [39]);
//   - Audio: spectrogram transformation (windowed DFT magnitude bands, the
//     AST approach);
//   - Document: text → embedding vectors via hashed bag-of-words.
package media

import "fmt"

// Preprocessor converts one stored media object into NDPipe input vectors
// of width Dim (one vector per analyzable unit: key frame, audio window,
// document).
type Preprocessor interface {
	// Kind names the media type ("video", "audio", "document").
	Kind() string
	// Dim is the output vector width.
	Dim() int
	// Preprocess converts raw media bytes into input vectors.
	Preprocess(raw []byte) ([][]float64, error)
}

// errShort reports truncated media payloads consistently.
func errShort(kind string, want, got int) error {
	return fmt.Errorf("media: %s payload truncated: need %d bytes, have %d", kind, want, got)
}
