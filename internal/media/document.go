package media

import (
	"hash/fnv"
	"math"
	"strings"
	"unicode"
)

// DocumentPreprocessor converts text into an embedding vector (§7.1's
// document extension): a hashed bag-of-words projection into EmbedDim
// dimensions, L2-normalized — the classical feature-hashing embedding that
// downstream classification or sentiment tasks consume.
type DocumentPreprocessor struct {
	EmbedDim int
}

// Kind implements Preprocessor.
func (d *DocumentPreprocessor) Kind() string { return "document" }

// Dim implements Preprocessor.
func (d *DocumentPreprocessor) Dim() int { return d.EmbedDim }

// Preprocess implements Preprocessor: one embedding vector per document.
func (d *DocumentPreprocessor) Preprocess(raw []byte) ([][]float64, error) {
	return [][]float64{Embed(string(raw), d.EmbedDim)}, nil
}

// Embed computes the hashed bag-of-words embedding of a text: every token
// is hashed to a dimension and a sign, counts accumulate, and the result is
// L2-normalized. Similar texts land near each other in cosine distance.
func Embed(text string, dim int) []float64 {
	vec := make([]float64, dim)
	for _, tok := range Tokenize(text) {
		h := fnv.New64a()
		_, _ = h.Write([]byte(tok))
		sum := h.Sum64()
		idx := int(sum % uint64(dim))
		sign := 1.0
		if (sum>>32)&1 == 1 {
			sign = -1
		}
		vec[idx] += sign
	}
	var norm float64
	for _, v := range vec {
		norm += v * v
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i] /= norm
		}
	}
	return vec
}

// Tokenize lower-cases and splits on non-letter/digit runes.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Cosine returns the cosine similarity of two equal-length vectors.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
