package media

import (
	"encoding/binary"
	"math"
)

// EncodePCM serializes mono float64 samples (the synthetic stand-in for a
// stored audio file).
func EncodePCM(samples []float64) []byte {
	out := make([]byte, 8+8*len(samples))
	binary.LittleEndian.PutUint64(out, uint64(len(samples)))
	for i, s := range samples {
		binary.LittleEndian.PutUint64(out[8+8*i:], math.Float64bits(s))
	}
	return out
}

// DecodePCM reverses EncodePCM.
func DecodePCM(raw []byte) ([]float64, error) {
	if len(raw) < 8 {
		return nil, errShort("audio", 8, len(raw))
	}
	n := int(binary.LittleEndian.Uint64(raw))
	if n < 0 || n > 1<<26 {
		return nil, errShort("audio", 8, len(raw))
	}
	need := 8 + 8*n
	if len(raw) < need {
		return nil, errShort("audio", need, len(raw))
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8+8*i:]))
	}
	return s, nil
}

// AudioPreprocessor performs the audio-spectrogram transformation (AST) of
// §7.1: it slices the waveform into windows and computes log-magnitude DFT
// bands per window, yielding image-like vectors a CNN-style model can
// consume. One vector per window.
type AudioPreprocessor struct {
	Window int // samples per analysis window
	Bands  int // frequency bands (= output Dim)
}

// Kind implements Preprocessor.
func (a *AudioPreprocessor) Kind() string { return "audio" }

// Dim implements Preprocessor.
func (a *AudioPreprocessor) Dim() int { return a.Bands }

// Preprocess implements Preprocessor.
func (a *AudioPreprocessor) Preprocess(raw []byte) ([][]float64, error) {
	samples, err := DecodePCM(raw)
	if err != nil {
		return nil, err
	}
	return Spectrogram(samples, a.Window, a.Bands), nil
}

// Spectrogram computes log-magnitude DFT bands over non-overlapping windows
// of the waveform. Band b of a window measures energy near normalized
// frequency (b+1)/(2·bands) of the sampling rate.
func Spectrogram(samples []float64, window, bands int) [][]float64 {
	if window <= 0 || bands <= 0 {
		return nil
	}
	var out [][]float64
	for lo := 0; lo+window <= len(samples); lo += window {
		seg := samples[lo : lo+window]
		vec := make([]float64, bands)
		for b := 0; b < bands; b++ {
			// Single-bin DFT (Goertzel-style direct evaluation).
			freq := float64(b+1) / float64(2*bands) // cycles per sample, ≤ Nyquist
			var re, im float64
			for n, s := range seg {
				phase := 2 * math.Pi * freq * float64(n)
				re += s * math.Cos(phase)
				im -= s * math.Sin(phase)
			}
			mag := math.Sqrt(re*re+im*im) / float64(window)
			vec[b] = math.Log1p(mag * 100)
		}
		out = append(out, vec)
	}
	return out
}

// Tone synthesizes a pure sine at the given normalized frequency (cycles
// per sample) — the synthetic audio generator used in tests and examples.
func Tone(freq float64, n int, amp float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = amp * math.Sin(2*math.Pi*freq*float64(i))
	}
	return s
}
