package media

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- Video -----------------------------------------------------------------

func sceneVideo(rng *rand.Rand, dim int, cuts []int, total int) *Video {
	// A clip with abrupt scene changes at the given frame indices.
	v := &Video{}
	scene := make([]float64, dim)
	for j := range scene {
		scene[j] = rng.NormFloat64()
	}
	cutSet := map[int]bool{}
	for _, c := range cuts {
		cutSet[c] = true
	}
	for i := 0; i < total; i++ {
		if cutSet[i] {
			for j := range scene {
				scene[j] = rng.NormFloat64() * 3
			}
		}
		frame := make([]float64, dim)
		for j := range frame {
			frame[j] = scene[j] + rng.NormFloat64()*0.01
		}
		v.Frames = append(v.Frames, frame)
	}
	return v
}

func TestVideoCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := sceneVideo(rng, 8, []int{5}, 12)
	got, err := DecodeVideo(EncodeVideo(v))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(v.Frames) {
		t.Fatalf("frames %d, want %d", len(got.Frames), len(v.Frames))
	}
	for i := range v.Frames {
		for j := range v.Frames[i] {
			if got.Frames[i][j] != v.Frames[i][j] {
				t.Fatal("codec corrupted frames")
			}
		}
	}
}

func TestVideoCodecErrors(t *testing.T) {
	if _, err := DecodeVideo([]byte{1, 2}); err == nil {
		t.Fatal("short payload must error")
	}
	v := sceneVideo(rand.New(rand.NewSource(2)), 4, nil, 3)
	raw := EncodeVideo(v)
	if _, err := DecodeVideo(raw[:len(raw)-5]); err == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestKeyFramesFindSceneCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cuts := []int{10, 25}
	v := sceneVideo(rng, 16, cuts, 40)
	idx := KeyFrameIndices(v, 3)
	if len(idx) != 3 {
		t.Fatalf("got %d key frames", len(idx))
	}
	want := map[int]bool{0: true, 10: true, 25: true}
	for _, i := range idx {
		if !want[i] {
			t.Fatalf("key frames %v, want frame 0 plus cuts %v", idx, cuts)
		}
	}
}

func TestVideoPreprocessor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := sceneVideo(rng, 24, []int{7}, 20)
	p := &VideoPreprocessor{FrameDim: 24, K: 2}
	if p.Kind() != "video" || p.Dim() != 24 {
		t.Fatal("metadata")
	}
	frames, err := p.Preprocess(EncodeVideo(v))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d key frames", len(frames))
	}
	for _, f := range frames {
		if len(f) != 24 {
			t.Fatal("frame width")
		}
	}
}

func TestKeyFrameEdgeCases(t *testing.T) {
	if KeyFrameIndices(&Video{}, 3) != nil {
		t.Fatal("empty clip")
	}
	v := sceneVideo(rand.New(rand.NewSource(5)), 4, nil, 2)
	if got := KeyFrameIndices(v, 10); len(got) != 2 {
		t.Fatalf("k clamps to frame count, got %v", got)
	}
}

// --- Audio -------------------------------------------------------------------

func TestPCMCodecProperty(t *testing.T) {
	f := func(samples []float64) bool {
		got, err := DecodePCM(EncodePCM(samples))
		if err != nil {
			return false
		}
		if len(got) != len(samples) {
			return false
		}
		for i := range samples {
			same := got[i] == samples[i]
			bothNaN := math.IsNaN(got[i]) && math.IsNaN(samples[i])
			if !same && !bothNaN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpectrogramSeparatesTones(t *testing.T) {
	const window, bands = 256, 16
	low := Spectrogram(Tone(1.0/32, window*4, 1), window, bands)   // ~band 1
	high := Spectrogram(Tone(12.0/32, window*4, 1), window, bands) // ~band 11
	if len(low) != 4 || len(high) != 4 {
		t.Fatalf("window count: %d/%d", len(low), len(high))
	}
	argmax := func(v []float64) int {
		best := 0
		for i, x := range v {
			if x > v[best] {
				best = i
			}
		}
		return best
	}
	lb, hb := argmax(low[0]), argmax(high[0])
	if lb >= hb {
		t.Fatalf("low tone peaked at band %d, high at %d", lb, hb)
	}
}

func TestAudioPreprocessor(t *testing.T) {
	p := &AudioPreprocessor{Window: 128, Bands: 12}
	if p.Kind() != "audio" || p.Dim() != 12 {
		t.Fatal("metadata")
	}
	vecs, err := p.Preprocess(EncodePCM(Tone(0.1, 512, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 4 {
		t.Fatalf("windows = %d, want 4", len(vecs))
	}
	if _, err := p.Preprocess([]byte{9}); err == nil {
		t.Fatal("short payload must error")
	}
}

func TestSpectrogramDegenerate(t *testing.T) {
	if Spectrogram(nil, 0, 4) != nil || Spectrogram(Tone(0.1, 64, 1), 128, 4) != nil {
		t.Fatal("degenerate inputs must yield no windows")
	}
}

// --- Documents ---------------------------------------------------------------

func TestEmbedSimilarTextsAreClose(t *testing.T) {
	const dim = 64
	a := Embed("the quick brown fox jumps over the lazy dog", dim)
	b := Embed("a quick brown fox leaps over a lazy dog", dim)
	c := Embed("stochastic gradient descent converges under convexity assumptions", dim)
	simAB := Cosine(a, b)
	simAC := Cosine(a, c)
	if simAB <= simAC {
		t.Fatalf("related texts %f should beat unrelated %f", simAB, simAC)
	}
	// Unit norm.
	var n float64
	for _, v := range a {
		n += v * v
	}
	if math.Abs(n-1) > 1e-9 {
		t.Fatalf("embedding norm %f, want 1", n)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	a := Embed("hello world", 32)
	b := Embed("hello world", 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding must be deterministic")
		}
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Hello, World! 42 times")
	want := []string{"hello", "world", "42", "times"}
	if len(toks) != len(want) {
		t.Fatalf("tokens %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens %v", toks)
		}
	}
}

func TestDocumentPreprocessor(t *testing.T) {
	p := &DocumentPreprocessor{EmbedDim: 24}
	if p.Kind() != "document" || p.Dim() != 24 {
		t.Fatal("metadata")
	}
	vecs, err := p.Preprocess([]byte("near data processing for photo storage"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 1 || len(vecs[0]) != 24 {
		t.Fatalf("got %d vecs", len(vecs))
	}
}

func TestCosineDegenerate(t *testing.T) {
	if Cosine([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Fatal("zero vector cosine must be 0")
	}
}
