package media

import "testing"

// FuzzDecodeVideo: arbitrary bytes must never panic the video decoder.
func FuzzDecodeVideo(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0})
	v := &Video{Frames: [][]float64{{1, 2}, {3, 4}}}
	f.Add(EncodeVideo(v))
	f.Fuzz(func(t *testing.T, data []byte) {
		clip, err := DecodeVideo(data)
		if err != nil {
			return
		}
		for _, fr := range clip.Frames {
			_ = fr
		}
		// Decoded clips must re-encode without panicking.
		if len(clip.Frames) > 0 {
			_ = EncodeVideo(clip)
		}
	})
}

// FuzzDecodePCM: arbitrary bytes must never panic the audio decoder.
func FuzzDecodePCM(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePCM([]float64{0.5, -0.5}))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodePCM(data)
		if err != nil {
			return
		}
		// Spectrogram over whatever decoded must not panic either.
		_ = Spectrogram(s, 64, 4)
	})
}
