package media

import (
	"encoding/binary"
	"math"
	"sort"
)

// Video is a decoded clip: an ordered sequence of fixed-width frames.
type Video struct {
	Frames [][]float64
}

// EncodeVideo serializes a clip: u32 frame count, u32 dim, then frames of
// float64 little-endian — the synthetic stand-in for a stored video file.
func EncodeVideo(v *Video) []byte {
	if len(v.Frames) == 0 {
		return []byte{0, 0, 0, 0, 0, 0, 0, 0}
	}
	dim := len(v.Frames[0])
	out := make([]byte, 8+8*dim*len(v.Frames))
	binary.LittleEndian.PutUint32(out, uint32(len(v.Frames)))
	binary.LittleEndian.PutUint32(out[4:], uint32(dim))
	off := 8
	for _, f := range v.Frames {
		for _, x := range f {
			binary.LittleEndian.PutUint64(out[off:], math.Float64bits(x))
			off += 8
		}
	}
	return out
}

// DecodeVideo reverses EncodeVideo.
func DecodeVideo(raw []byte) (*Video, error) {
	if len(raw) < 8 {
		return nil, errShort("video", 8, len(raw))
	}
	n := int(binary.LittleEndian.Uint32(raw))
	dim := int(binary.LittleEndian.Uint32(raw[4:]))
	if n < 0 || dim < 0 || n*dim > 1<<26 {
		return nil, errShort("video", 8, len(raw))
	}
	need := 8 + 8*n*dim
	if len(raw) < need {
		return nil, errShort("video", need, len(raw))
	}
	v := &Video{Frames: make([][]float64, n)}
	off := 8
	for i := 0; i < n; i++ {
		f := make([]float64, dim)
		for j := range f {
			f[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
			off += 8
		}
		v.Frames[i] = f
	}
	return v, nil
}

// VideoPreprocessor selects up to K key frames per clip by frame-difference
// magnitude: the frames where the content changes most (scene cuts) are the
// ones worth analyzing, exactly the frame-extraction strategy §7.1 cites.
type VideoPreprocessor struct {
	FrameDim int
	K        int
}

// Kind implements Preprocessor.
func (v *VideoPreprocessor) Kind() string { return "video" }

// Dim implements Preprocessor.
func (v *VideoPreprocessor) Dim() int { return v.FrameDim }

// Preprocess implements Preprocessor: decode the clip and return its key
// frames.
func (v *VideoPreprocessor) Preprocess(raw []byte) ([][]float64, error) {
	clip, err := DecodeVideo(raw)
	if err != nil {
		return nil, err
	}
	idx := KeyFrameIndices(clip, v.K)
	out := make([][]float64, 0, len(idx))
	for _, i := range idx {
		out = append(out, clip.Frames[i])
	}
	return out, nil
}

// KeyFrameIndices returns the indices of up to k key frames, in temporal
// order: the first frame plus the k−1 frames with the largest L2 difference
// from their predecessor.
func KeyFrameIndices(v *Video, k int) []int {
	if len(v.Frames) == 0 || k <= 0 {
		return nil
	}
	if k > len(v.Frames) {
		k = len(v.Frames)
	}
	type scored struct {
		idx  int
		diff float64
	}
	diffs := make([]scored, 0, len(v.Frames)-1)
	for i := 1; i < len(v.Frames); i++ {
		var d float64
		prev, cur := v.Frames[i-1], v.Frames[i]
		for j := range cur {
			e := cur[j] - prev[j]
			d += e * e
		}
		diffs = append(diffs, scored{idx: i, diff: d})
	}
	sort.Slice(diffs, func(a, b int) bool { return diffs[a].diff > diffs[b].diff })
	pick := map[int]bool{0: true} // the opening frame is always a key frame
	for _, s := range diffs {
		if len(pick) >= k {
			break
		}
		pick[s.idx] = true
	}
	out := make([]int, 0, len(pick))
	for i := range pick {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
