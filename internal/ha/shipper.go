package ha

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"ndpipe/internal/durable"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tuner"
	"ndpipe/internal/wire"
)

// Shipper is the leader half of WAL replication. Install it on the tuner
// with tn.SetReplicator(s) and serve standby attachments with Serve: each
// journaled record then reaches every attached standby — and is
// acknowledged — before the tuner's commit proceeds to broadcast.
type Shipper struct {
	tn *tuner.Node
	o  Options

	mu       sync.Mutex
	sessions map[string]*shipSession
	closed   bool

	done chan struct{}
	once sync.Once
	log  *slog.Logger
}

// shipSession is one attached standby: a writer goroutine owns the codec's
// send side (bootstrap, records, heartbeats); a reader goroutine routes
// acks back to it.
type shipSession struct {
	id    string
	conn  net.Conn
	codec *wire.Codec
	reqs  chan shipReq
	acks  chan uint64
	done  chan struct{}
	once  sync.Once
	seq   uint64 // last shipped sequence number (writer goroutine only)
}

type shipReq struct {
	payload []byte
	resp    chan error
}

func (s *shipSession) close() {
	s.once.Do(func() {
		close(s.done)
		_ = s.conn.Close()
	})
}

// NewShipper creates a shipper for tn. Wire it up before rounds start:
//
//	s := ha.NewShipper(tn, ha.Options{})
//	tn.SetReplicator(s)
//	go s.Serve(haListener)
func NewShipper(tn *tuner.Node, o Options) *Shipper {
	return &Shipper{
		tn:       tn,
		o:        o.withDefaults(),
		sessions: make(map[string]*shipSession),
		done:     make(chan struct{}),
		log:      telemetry.ComponentLogger("ha-shipper"),
	}
}

// Attached reports how many standbys are currently replicating.
func (s *Shipper) Attached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Serve accepts standby attachments on ln until Close (or a listener
// error). Each connection is handshaken, bootstrapped with a full seed of
// the tuner's durable state, then fed the live record stream.
func (s *Shipper) Serve(ln net.Listener) error {
	go func() {
		<-s.done
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return fmt.Errorf("ha: accepting standby: %w", err)
			}
		}
		go s.attach(conn)
	}
}

// attach performs the standby handshake and runs the session to
// completion. Registration happens before the seed snapshot is taken, so
// every record journaled after the snapshot also reaches the session's
// queue; the standby dedups the overlap by version.
func (s *Shipper) attach(conn net.Conn) {
	codec := wire.NewCodec(conn)
	_ = conn.SetReadDeadline(time.Now().Add(s.o.AckTimeout))
	hello, err := codec.Recv()
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil || hello.Type != wire.MsgStandbyHello {
		s.log.Warn("standby handshake failed", slog.Any("err", err))
		_ = conn.Close()
		return
	}
	sess := &shipSession{
		id:    hello.StoreID,
		conn:  conn,
		codec: codec,
		reqs:  make(chan shipReq, 8),
		acks:  make(chan uint64, 8),
		done:  make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old := s.sessions[sess.id]; old != nil {
		old.close()
	}
	s.sessions[sess.id] = sess
	n := len(s.sessions)
	s.mu.Unlock()
	standbys.Set(float64(n))

	go s.readAcks(sess)
	s.runSession(sess)
}

// readAcks routes the standby's acks to the writer and absorbs pongs.
func (s *Shipper) readAcks(sess *shipSession) {
	for {
		msg, err := sess.codec.Recv()
		if err != nil {
			sess.close()
			return
		}
		switch msg.Type {
		case wire.MsgWALAck:
			select {
			case sess.acks <- msg.WALSeq:
			case <-sess.done:
				return
			}
		case wire.MsgPong:
			// Liveness only.
		default:
			s.log.Warn("unexpected message on replication channel",
				slog.String("standby", sess.id), slog.String("type", msg.Type.String()))
		}
	}
}

// runSession bootstraps the standby and then feeds it the live stream,
// heartbeating during idle stretches so the standby's lease stays fresh.
func (s *Shipper) runSession(sess *shipSession) {
	defer s.detach(sess, nil)
	seed, err := s.tn.ReplicaSeed()
	if err != nil {
		s.log.Warn("replica seed failed", slog.String("standby", sess.id), slog.Any("err", err))
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&seed); err != nil {
		s.log.Warn("replica seed encode failed", slog.Any("err", err))
		return
	}
	sess.seq = 1
	boot := &wire.Message{Type: wire.MsgWALAppend, Boot: true, WALSeq: sess.seq,
		Blob: buf.Bytes(), WALCRC: durable.Checksum(buf.Bytes()),
		ModelVersion: seed.BaseVersion + len(seed.Records), LeaderEpoch: seed.LeaderEpoch}
	if err := sess.codec.Send(boot); err != nil {
		return
	}
	if err := s.awaitAck(sess, sess.seq); err != nil {
		s.log.Warn("standby bootstrap not acked", slog.String("standby", sess.id), slog.Any("err", err))
		return
	}
	telemetry.Default.Flight().Record(telemetry.FlightStandbyAttach, "ha", sess.id,
		int64(seed.BaseVersion+len(seed.Records)), int64(len(seed.Records)))
	s.log.Info("standby attached", slog.String("standby", sess.id),
		slog.Int("seeded_version", seed.BaseVersion+len(seed.Records)))

	heartbeat := time.NewTicker(s.o.LeaseTimeout / 4)
	defer heartbeat.Stop()
	for {
		select {
		case req := <-sess.reqs:
			sess.seq++
			msg := &wire.Message{Type: wire.MsgWALAppend, WALSeq: sess.seq,
				Blob: req.payload, WALCRC: durable.Checksum(req.payload),
				LeaderEpoch: s.tn.LeaderEpoch()}
			err := sess.codec.Send(msg)
			if err == nil {
				err = s.awaitAck(sess, sess.seq)
			}
			if err == nil {
				shipped.Inc()
				telemetry.Default.Flight().Record(telemetry.FlightWALShip, "ha", sess.id,
					int64(sess.seq), int64(len(req.payload)))
			}
			req.resp <- err
			if err != nil {
				return
			}
		case <-heartbeat.C:
			ping := &wire.Message{Type: wire.MsgPing, LeaderEpoch: s.tn.LeaderEpoch()}
			if err := sess.codec.Send(ping); err != nil {
				return
			}
		case <-sess.done:
			return
		}
	}
}

// awaitAck waits for the ack covering seq (acks arrive in order; anything
// lower is a stale duplicate and is skipped).
func (s *Shipper) awaitAck(sess *shipSession, seq uint64) error {
	timeout := time.NewTimer(s.o.AckTimeout)
	defer timeout.Stop()
	for {
		select {
		case got := <-sess.acks:
			if got >= seq {
				return nil
			}
		case <-timeout.C:
			return fmt.Errorf("ha: standby %s ack %d timed out after %v", sess.id, seq, s.o.AckTimeout)
		case <-sess.done:
			return fmt.Errorf("ha: standby %s detached before ack %d", sess.id, seq)
		}
	}
}

// detach closes and unregisters a session.
func (s *Shipper) detach(sess *shipSession, reason error) {
	sess.close()
	s.mu.Lock()
	if s.sessions[sess.id] == sess {
		delete(s.sessions, sess.id)
	}
	n := len(s.sessions)
	s.mu.Unlock()
	standbys.Set(float64(n))
	telemetry.Default.Flight().Record(telemetry.FlightStandbyDetach, "ha", sess.id, int64(sess.seq), 0)
	if reason != nil {
		s.log.Warn("standby detached", slog.String("standby", sess.id), slog.Any("reason", reason))
	} else {
		s.log.Info("standby detached", slog.String("standby", sess.id))
	}
}

// Replicate implements tuner.Replicator: the record must land on — and be
// acked by — every attached standby before the commit may proceed. A
// standby that fails or times out is detached and the commit aborts (the
// round was never acknowledged, so nothing is lost); subsequent rounds run
// leader-only until a standby re-attaches.
func (s *Shipper) Replicate(record []byte) error {
	s.mu.Lock()
	sessions := make([]*shipSession, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	var firstErr error
	for _, sess := range sessions {
		req := shipReq{payload: record, resp: make(chan error, 1)}
		var err error
		select {
		case sess.reqs <- req:
			select {
			case err = <-req.resp:
			case <-time.After(s.o.AckTimeout):
				err = fmt.Errorf("ha: standby %s replicate timed out", sess.id)
			case <-sess.done:
				err = fmt.Errorf("ha: standby %s detached mid-replicate", sess.id)
			}
		case <-time.After(s.o.AckTimeout):
			err = fmt.Errorf("ha: standby %s replication queue wedged", sess.id)
		case <-sess.done:
			err = fmt.Errorf("ha: standby %s detached mid-replicate", sess.id)
		}
		if err != nil {
			shipFails.Inc()
			s.detach(sess, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Close detaches every standby and stops the accept loop.
func (s *Shipper) Close() {
	s.once.Do(func() { close(s.done) })
	s.mu.Lock()
	s.closed = true
	sessions := make([]*shipSession, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		s.detach(sess, errors.New("shipper closed"))
	}
}
