// Failover chaos suite (S35). Each test stands up a real fleet — leader
// tuner with WAL shipping, hot standby tailing it, PipeStores dialing
// through DialRetryMulti with the standby's address as the failover
// candidate — and kills the leader at a nasty moment. The invariants,
// asserted every time:
//
//   - no acknowledged round is lost: every FineTune that returned nil is
//     present in the standby's recovered state,
//   - the new leader's epoch is strictly above the old one's,
//   - every store's model version is monotone across the failover,
//   - the fleet reconverges on the new leader and commits fresh rounds.
//
// Run `make failover-smoke` for this suite alone under -race.
package ha

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tuner"
	"ndpipe/internal/wire"
)

const testLease = 500 * time.Millisecond

func haTrainOpts() ftdmp.TrainOptions {
	o := ftdmp.DefaultTrainOptions()
	o.MaxEpochs = 2
	return o
}

func haRoundOptions() tuner.RoundOptions {
	return tuner.RoundOptions{
		Quorum:       2,
		StoreTimeout: 5 * time.Second,
		RoundTimeout: 60 * time.Second,
		MaxRetries:   1,
		Backoff:      time.Millisecond,
		BackoffCap:   10 * time.Millisecond,
		Seed:         7,
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// haStore is one fleet member driven by the production DialRetryMulti
// loop; the tracker keeps a handle on its current conn so tests can sever
// it at chosen moments.
type haStore struct {
	ps   *pipestore.Node
	done chan error

	mu   sync.Mutex
	conn net.Conn
}

func (s *haStore) dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.conn = c
	s.mu.Unlock()
	return c, nil
}

func (s *haStore) closeConn() {
	s.mu.Lock()
	c := s.conn
	s.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

type haCluster struct {
	t       *testing.T
	cfg     core.ModelConfig
	world   *dataset.World
	tn      *tuner.Node
	ship    *Shipper
	storeLn net.Listener // leader's store listener
	haLn    net.Listener // WAL-shipping listener
	sbLn    net.Listener // pre-bound listener stores fail over to
	standby *Standby
	runErr  chan error
	stores  []*haStore
}

// haClusterUp boots leader + shipper + standby + stores and waits until
// the standby is attached and bootstrapped. dialOpts, when non-nil,
// customizes a store's reconnect behavior (the DialAddr is always
// overridden with the tracker's dial).
func haClusterUp(t *testing.T, nStores, images int, seed int64, dialOpts func(i int) pipestore.DialOptions) *haCluster {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(seed)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)

	tn, err := tuner.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OpenState(filepath.Join(t.TempDir(), "leader")); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.AssertLeadership(0); err != nil {
		t.Fatal(err)
	}
	tn.SetRoundOptions(haRoundOptions())

	listen := func() net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		return ln
	}
	c := &haCluster{
		t: t, cfg: cfg, world: world, tn: tn,
		storeLn: listen(), haLn: listen(), sbLn: listen(),
		runErr: make(chan error, 1),
	}
	t.Cleanup(tn.Close)

	c.ship = NewShipper(tn, Options{LeaseTimeout: testLease})
	tn.SetReplicator(c.ship)
	t.Cleanup(c.ship.Close)
	go func() { _ = c.ship.Serve(c.haLn) }()

	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(c.storeLn, nStores) }()

	addrs := []string{c.storeLn.Addr().String(), c.sbLn.Addr().String()}
	shards := world.Shard(nStores)
	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(fmt.Sprintf("ha-ps-%d", i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.Ingest(shards[i]); err != nil {
			t.Fatal(err)
		}
		st := &haStore{ps: ps, done: make(chan error, 1)}
		o := pipestore.DialOptions{
			Attempts: 200, Backoff: 2 * time.Millisecond, BackoffCap: 20 * time.Millisecond,
			Rejoin: true, Seed: int64(i) + 1,
		}
		if dialOpts != nil {
			o = dialOpts(i)
		}
		o.DialAddr = st.dial
		go func(st *haStore, o pipestore.DialOptions) {
			st.done <- st.ps.DialRetryMulti(addrs, o)
		}(st, o)
		c.stores = append(c.stores, st)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	// The leader keeps re-admitting stores whose sessions end (the rejoin
	// path); the loop dies with the listener.
	go func() {
		for {
			conn, err := c.storeLn.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) { _ = tn.AddStore(conn) }(conn)
		}
	}()

	sb, err := NewStandby(cfg, filepath.Join(t.TempDir(), "standby"),
		Options{ID: "sb-1", LeaseTimeout: testLease})
	if err != nil {
		t.Fatal(err)
	}
	c.standby = sb
	t.Cleanup(sb.Stop)
	go func() { c.runErr <- sb.Run([]string{c.haLn.Addr().String()}) }()
	waitFor(t, 10*time.Second, "standby attach", func() bool { return c.ship.Attached() == 1 })
	return c
}

// killLeader simulates leader death. Store sessions are severed before
// shipping stops: once the conns are dead an in-flight round can no longer
// collect acks, so any round that does get acknowledged finished its
// Replicate while the standby was still attached — the no-loss guarantee
// the tests assert. (Closing the shipper first would open a window where
// a live round replicates to zero standbys and commits leader-only.)
func (c *haCluster) killLeader() {
	for _, st := range c.stores {
		st.closeConn()
	}
	_ = c.storeLn.Close()
	c.ship.Close()
	c.tn.Close()
}

func (c *haCluster) storeVersions() []int {
	out := make([]int, len(c.stores))
	for i, st := range c.stores {
		out[i] = st.ps.ModelVersion()
	}
	return out
}

// awaitTakeover waits for the lease to expire, promotes the standby, and
// serves store reattachments on the pre-bound failover listener until at
// least minStores are registered on the new leader.
func (c *haCluster) awaitTakeover(minStores int) (*tuner.Node, tuner.RecoveryReport) {
	c.t.Helper()
	select {
	case err := <-c.runErr:
		if !errors.Is(err, ErrLeaseExpired) {
			c.t.Fatalf("standby Run = %v, want ErrLeaseExpired", err)
		}
	case <-time.After(30 * time.Second):
		c.t.Fatal("standby never detected lease expiry")
	}
	tn2, rep, err := c.standby.TakeOver()
	if err != nil {
		c.t.Fatalf("takeover: %v", err)
	}
	c.t.Cleanup(tn2.Close)
	tn2.SetRoundOptions(haRoundOptions())
	go func() {
		for {
			conn, err := c.sbLn.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) { _ = tn2.AddStore(conn) }(conn)
		}
	}()
	waitFor(c.t, 20*time.Second, "fleet reattach to new leader",
		func() bool { return tn2.NumStores() >= minStores })
	return tn2, rep
}

// assertConverged drives the post-failover invariants: the new leader
// commits a fresh round, every store lands on its version, and no store's
// version moved backwards relative to the pre-kill snapshot.
func (c *haCluster) assertConverged(tn2 *tuner.Node, rec tuner.RecoveryReport, pre []int) {
	c.t.Helper()
	rep, err := tn2.FineTune(2, 64, haTrainOpts())
	if err != nil {
		c.t.Fatalf("post-failover round: %v", err)
	}
	if rep.ModelVersion != rec.Version+1 {
		c.t.Fatalf("post-failover round committed v%d, want v%d", rep.ModelVersion, rec.Version+1)
	}
	waitFor(c.t, 20*time.Second, "stores converging on the new leader", func() bool {
		for _, st := range c.stores {
			if st.ps.ModelVersion() != rep.ModelVersion {
				return false
			}
		}
		return true
	})
	for i, st := range c.stores {
		if v := st.ps.ModelVersion(); v < pre[i] {
			c.t.Fatalf("store %d went backwards across failover: v%d → v%d", i, pre[i], v)
		}
	}
}

// TestStandbyTailsLeaderAndServesReadyz: with the leader healthy, the
// standby tails every committed round at zero lag, and its /readyz
// truthfully reports the standby role with a 503 (it cannot serve rounds).
func TestStandbyTailsLeaderAndServesReadyz(t *testing.T) {
	c := haClusterUp(t, 2, 300, 59, nil)
	for i := 0; i < 3; i++ {
		if _, err := c.tn.FineTune(2, 64, haTrainOpts()); err != nil {
			t.Fatalf("round %d: %v", i+1, err)
		}
	}
	waitFor(t, 10*time.Second, "standby catching up", func() bool {
		return c.standby.ModelVersion() == 3 && c.standby.Lag() == 0
	})
	if e := c.standby.LeaderEpoch(); e != 1 {
		t.Fatalf("standby observed leader epoch %d, want 1", e)
	}

	reg := telemetry.NewRegistry()
	c.standby.RegisterHealth(reg.Health())
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby /readyz = %d, want 503", resp.StatusCode)
	}
	var rep struct {
		Role      string `json:"role"`
		LagFrames *int64 `json:"lag_frames"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Role != "standby" {
		t.Fatalf("/readyz role = %q, want standby", rep.Role)
	}
	if rep.LagFrames == nil || *rep.LagFrames != 0 {
		t.Fatalf("/readyz lag_frames = %v, want 0", rep.LagFrames)
	}
}

// TestFailoverLeaderKilledMidRound kills the leader in the middle of a
// fine-tune round (mid-gather): the in-flight round may abort, but nothing
// acknowledged is lost and the fleet reconverges under a higher epoch.
func TestFailoverLeaderKilledMidRound(t *testing.T) {
	c := haClusterUp(t, 3, 300, 61, nil)
	rep1, err := c.tn.FineTune(2, 64, haTrainOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := rep1.ModelVersion
	pre := c.storeVersions()

	roundDone := make(chan error, 1)
	go func() {
		_, err := c.tn.FineTune(2, 64, haTrainOpts())
		roundDone <- err
	}()
	time.Sleep(30 * time.Millisecond) // the round is gathering features now
	killed := time.Now()
	c.killLeader()
	if err := <-roundDone; err == nil {
		// The round beat the kill: it was acknowledged, so it must survive.
		acked++
	}

	tn2, rec := c.awaitTakeover(3)
	if rec.Version < acked {
		t.Fatalf("acknowledged round lost: standby recovered v%d, callers saw v%d acked", rec.Version, acked)
	}
	if tn2.LeaderEpoch() <= 1 {
		t.Fatalf("takeover epoch %d not strictly above the old leader's (1)", tn2.LeaderEpoch())
	}
	c.assertConverged(tn2, rec, pre)
	t.Logf("failover: leader kill → fleet reconverged in %v (recovered v%d, epoch %d)",
		time.Since(killed), rec.Version, tn2.LeaderEpoch())
}

// replicateKiller wraps the shipper: once armed, the first successful
// Replicate fires a signal — the test uses it to kill the leader in the
// post-journal, pre-broadcast window, the narrowest durability gap.
type replicateKiller struct {
	inner tuner.Replicator
	armed atomic.Bool
	fired chan struct{}
	once  sync.Once
}

func (k *replicateKiller) Replicate(rec []byte) error {
	err := k.inner.Replicate(rec)
	if err == nil && k.armed.Load() {
		k.once.Do(func() { close(k.fired) })
	}
	return err
}

// TestFailoverPostJournalPreBroadcast kills the leader after a round's WAL
// record is journaled and shipped but before any store receives the delta.
// The round was never acknowledged — but the shipped record must survive
// into the standby's recovered state, and the fleet converges beyond it.
func TestFailoverPostJournalPreBroadcast(t *testing.T) {
	c := haClusterUp(t, 3, 300, 63, nil)
	if _, err := c.tn.FineTune(2, 64, haTrainOpts()); err != nil {
		t.Fatal(err)
	}
	pre := c.storeVersions()

	killer := &replicateKiller{inner: c.ship, fired: make(chan struct{})}
	c.tn.SetReplicator(killer)
	go func() {
		<-killer.fired
		_ = c.storeLn.Close()
		for _, st := range c.stores {
			st.closeConn()
		}
	}()
	killer.armed.Store(true)
	roundDone := make(chan error, 1)
	go func() {
		_, err := c.tn.FineTune(2, 64, haTrainOpts())
		roundDone <- err
	}()
	roundErr := <-roundDone
	c.killLeader()

	tn2, rec := c.awaitTakeover(3)
	// Round 2's record reached the standby before any store saw its delta:
	// whatever happened to the broadcast, the recovered state carries v2.
	if rec.Version < 2 {
		t.Fatalf("journaled+shipped round lost: standby recovered v%d (round err: %v)", rec.Version, roundErr)
	}
	if tn2.LeaderEpoch() <= 1 {
		t.Fatalf("takeover epoch %d not strictly above the old leader's", tn2.LeaderEpoch())
	}
	c.assertConverged(tn2, rec, pre)
}

// TestFailoverDuringStoreCatchUp: a store is down when the leader dies and
// its rejoin + catch-up straddles the failover — the catch-up completes
// against the new leader, and the whole fleet still converges.
func TestFailoverDuringStoreCatchUp(t *testing.T) {
	const victim = 2
	c := haClusterUp(t, 3, 300, 67, func(i int) pipestore.DialOptions {
		o := pipestore.DialOptions{
			Attempts: 200, Backoff: 2 * time.Millisecond, BackoffCap: 20 * time.Millisecond,
			Rejoin: true, Seed: int64(i) + 1,
		}
		if i == victim {
			// The victim redials slowly, so its rejoin lands after takeover.
			o.Backoff = 800 * time.Millisecond
			o.BackoffCap = 800 * time.Millisecond
		}
		return o
	})
	if _, err := c.tn.FineTune(2, 64, haTrainOpts()); err != nil {
		t.Fatal(err)
	}
	pre := c.storeVersions()

	c.stores[victim].closeConn()
	c.killLeader()

	tn2, rec := c.awaitTakeover(2)
	if rec.Version < 1 {
		t.Fatalf("acknowledged round lost: standby recovered v%d", rec.Version)
	}
	c.assertConverged(tn2, rec, pre)
	// The victim may have been evicted if it attached mid-round; its slow
	// redial ladder means full fleet membership can trail convergence.
	waitFor(t, 15*time.Second, "victim rejoining the new leader",
		func() bool { return tn2.NumStores() == 3 })
}

// TestSplitBrainFencedOldLeaderCannotAdvance is the dedicated split-brain
// proof: once any store has seen the new leader's epoch, the old leader's
// traffic — live rounds, and delayed/replayed deltas delivered through a
// faultinject channel — can never advance that store's model version.
func TestSplitBrainFencedOldLeaderCannotAdvance(t *testing.T) {
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(73)
	wcfg.InitialImages = 200
	world := dataset.NewWorld(wcfg)

	tn1, err := tuner.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tn1.Close)
	if _, err := tn1.OpenState(filepath.Join(t.TempDir(), "old-leader")); err != nil {
		t.Fatal(err)
	}
	if _, err := tn1.AssertLeadership(0); err != nil { // epoch 1
		t.Fatal(err)
	}
	opts := haRoundOptions()
	opts.Quorum = 1
	opts.StoreTimeout = 2 * time.Second
	opts.RoundTimeout = 10 * time.Second
	tn1.SetRoundOptions(opts)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan error, 1)
	go func() { accepted <- tn1.AcceptStores(ln, 1) }()
	ps, err := pipestore.New("sb-ps", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Ingest(world.Images()); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ps.Serve(conn) }()
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	if _, err := tn1.FineTune(1, 64, haTrainOpts()); err != nil {
		t.Fatal(err)
	}
	if ps.ModelVersion() != 1 {
		t.Fatalf("setup: store at v%d, want 1", ps.ModelVersion())
	}

	// The new leader (epoch 2) contacts the store: the fence goes up.
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() { _ = ps.Serve(b) }()
	newLeader := wire.NewCodec(a)
	if hello, err := newLeader.Recv(); err != nil || hello.Type != wire.MsgHello {
		t.Fatalf("hello from store: %v %v", hello, err)
	}
	if err := newLeader.Send(&wire.Message{Type: wire.MsgPing, LeaderEpoch: 2}); err != nil {
		t.Fatal(err)
	}
	if pong, err := newLeader.Recv(); err != nil || pong.Type != wire.MsgPong {
		t.Fatalf("epoch-2 ping: %v %v", pong, err)
	}

	// Old leader, live: a full round attempt. Every message it sends is
	// stamped with epoch 1 and must be fenced — the round fails and the
	// store's version does not move.
	if _, err := tn1.FineTune(1, 64, haTrainOpts()); err == nil {
		t.Fatal("fenced old leader must not be able to run a round")
	}
	if v := ps.ModelVersion(); v != 1 {
		t.Fatalf("fenced old leader advanced the store to v%d", v)
	}

	// Old leader, replayed: a delta from its reign delivered late over a
	// faultinject-delayed channel. The blob is garbage — if the fence ever
	// let it through, applyDelta would fail loudly and the version check
	// below would catch a real apply just the same.
	inj, err := faultinject.New(5, faultinject.Rule{
		Kind: faultinject.Delay, Op: faultinject.OpWrite, After: 1, Prob: 1,
		Delay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, y := net.Pipe()
	t.Cleanup(func() { x.Close(); y.Close() })
	go func() { _ = ps.Serve(y) }()
	replay := wire.NewCodec(inj.Conn(x))
	if hello, err := replay.Recv(); err != nil || hello.Type != wire.MsgHello {
		t.Fatalf("hello on replay channel: %v %v", hello, err)
	}
	if err := replay.Send(&wire.Message{Type: wire.MsgModelDelta, LeaderEpoch: 1,
		ModelVersion: 2, Blob: []byte("stale-delta-from-the-old-reign")}); err != nil {
		t.Fatal(err)
	}
	reply, err := replay.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("replayed delta got %v, want fenced MsgError", reply.Type)
	}
	if v := ps.ModelVersion(); v != 1 {
		t.Fatalf("replayed delta advanced the store to v%d", v)
	}
}

// TestTakeoverRequiresBootstrap: a standby that never completed a
// bootstrap has nothing to lead with and must refuse promotion.
func TestTakeoverRequiresBootstrap(t *testing.T) {
	s, err := NewStandby(core.DefaultModelConfig(), t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.TakeOver(); err == nil {
		t.Fatal("takeover before bootstrap must fail")
	}
}
