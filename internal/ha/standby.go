package ha

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/durable"
	"ndpipe/internal/modelstore"
	"ndpipe/internal/nn"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tuner"
	"ndpipe/internal/wire"
)

// ErrLeaseExpired is Run's verdict that the leader is gone: no replication
// traffic (records or heartbeats) and no reachable leader for a full
// LeaseTimeout. The caller should TakeOver.
var ErrLeaseExpired = errors.New("ha: leadership lease expired")

// ErrStopped is returned by Run after Stop.
var ErrStopped = errors.New("ha: standby stopped")

// Standby is the hot-standby tuner: it tails the leader's WAL into its own
// state directory (identical on-disk format) and an in-memory replica, and
// watches the leadership lease. After Run returns ErrLeaseExpired, TakeOver
// turns the accumulated state into a live tuner with a strictly higher
// leader epoch.
type Standby struct {
	cfg core.ModelConfig
	dir string
	o   Options

	// Dial overrides the leader dial (tests inject faulty transports).
	Dial func(addr string) (net.Conn, error)

	mu           sync.Mutex
	archive      *modelstore.Store // in-memory replica (validates the stream)
	wal          *durable.Log      // local copy of the shipped log
	version      int
	roundEpoch   int
	leaderEpoch  uint64 // highest leadership term heard on the stream
	appliedSeq   uint64
	heardSeq     uint64
	bootstrapped bool
	lastHeard    time.Time

	stop chan struct{}
	once sync.Once
	log  *slog.Logger
}

// NewStandby creates a standby replicating into dir.
func NewStandby(cfg core.ModelConfig, dir string, o Options) (*Standby, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Standby{
		cfg:  cfg,
		dir:  dir,
		o:    o.withDefaults(),
		stop: make(chan struct{}),
		log:  telemetry.ComponentLogger("ha-standby"),
	}, nil
}

// ModelVersion returns the replica's latest applied version.
func (s *Standby) ModelVersion() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// LeaderEpoch returns the highest leadership term heard on the stream.
func (s *Standby) LeaderEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderEpoch
}

// Lag reports shipped-but-unapplied WAL frames (the /readyz lag_frames
// figure; ~0 in steady state because applies are synchronous).
func (s *Standby) Lag() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.heardSeq - s.appliedSeq)
}

// RegisterHealth wires the standby into a health set: /readyz answers 503
// with role "standby" and the current lag until takeover.
func (s *Standby) RegisterHealth(h *telemetry.Health) {
	h.SetRole(func() (string, int64) { return "standby", s.Lag() })
	h.RegisterCheck("ha-role", func() error {
		return fmt.Errorf("standby: replicating, lag %d frames", s.Lag())
	})
}

// Stop ends Run (idempotent).
func (s *Standby) Stop() {
	s.once.Do(func() { close(s.stop) })
}

// Run replicates from the first reachable leader address until the lease
// expires (ErrLeaseExpired — take over), or Stop (ErrStopped). Addresses
// are tried in order, so list the current leader first and failover
// candidates after.
func (s *Standby) Run(addrs []string) error {
	if len(addrs) == 0 {
		return errors.New("ha: no leader addresses")
	}
	SetRoleMetric(false)
	dial := s.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, s.o.DialTimeout)
		}
	}
	s.mu.Lock()
	s.lastHeard = time.Now()
	s.mu.Unlock()
	for i := 0; ; i++ {
		select {
		case <-s.stop:
			return ErrStopped
		default:
		}
		conn, err := dial(addrs[i%len(addrs)])
		if err == nil {
			err = s.session(conn)
			if errors.Is(err, ErrStopped) {
				return ErrStopped
			}
			if err != nil {
				s.log.Debug("replication session ended", slog.Any("err", err))
			}
		}
		if s.leaseExpired() {
			s.log.Warn("leadership lease expired",
				slog.Int("version", s.ModelVersion()), slog.Uint64("leader_epoch", s.LeaderEpoch()))
			return ErrLeaseExpired
		}
		select {
		case <-s.stop:
			return ErrStopped
		case <-time.After(s.o.LeaseTimeout / 8):
		}
	}
}

// leaseExpired: the lease only starts mattering once the standby has state
// to take over with — before the first bootstrap it keeps dialing forever.
func (s *Standby) leaseExpired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bootstrapped && time.Since(s.lastHeard) > s.o.LeaseTimeout
}

func (s *Standby) touch() {
	s.mu.Lock()
	s.lastHeard = time.Now()
	s.mu.Unlock()
}

// session runs one replication connection: hello, bootstrap, live tail.
// Every Recv is bounded by the lease — a leader that stops sending records
// AND heartbeats ends the session, and Run then checks the lease.
func (s *Standby) session(conn net.Conn) error {
	defer conn.Close()
	stopDone := make(chan struct{})
	defer close(stopDone)
	go func() {
		select {
		case <-s.stop:
			_ = conn.Close()
		case <-stopDone:
		}
	}()
	codec := wire.NewCodec(conn)
	s.mu.Lock()
	version, applied := s.version, s.appliedSeq
	s.mu.Unlock()
	hello := &wire.Message{Type: wire.MsgStandbyHello, StoreID: s.o.ID,
		ModelVersion: version, WALSeq: applied}
	if err := codec.Send(hello); err != nil {
		return err
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.o.LeaseTimeout))
		msg, err := codec.Recv()
		if err != nil {
			select {
			case <-s.stop:
				return ErrStopped
			default:
			}
			return err
		}
		s.touch()
		s.observeLeader(msg.LeaderEpoch)
		switch msg.Type {
		case wire.MsgPing:
			if err := codec.Send(&wire.Message{Type: wire.MsgPong, StoreID: s.o.ID}); err != nil {
				return err
			}
		case wire.MsgWALAppend:
			if durable.Checksum(msg.Blob) != msg.WALCRC {
				return fmt.Errorf("ha: wal frame %d failed CRC32C", msg.WALSeq)
			}
			s.mu.Lock()
			s.heardSeq = msg.WALSeq
			s.mu.Unlock()
			if msg.Boot {
				err = s.applyBootstrap(msg.Blob, msg.WALSeq)
			} else {
				err = s.applyRecord(msg.Blob, msg.WALSeq)
			}
			if err != nil {
				// No ack: the leader's commit must not count this replica.
				return err
			}
			lagGauge.Set(0)
			if err := codec.Send(&wire.Message{Type: wire.MsgWALAck, StoreID: s.o.ID,
				WALSeq: msg.WALSeq}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ha: unexpected %v on replication channel", msg.Type)
		}
	}
}

func (s *Standby) observeLeader(epoch uint64) {
	if epoch == 0 {
		return
	}
	s.mu.Lock()
	if epoch > s.leaderEpoch {
		s.leaderEpoch = epoch
	}
	s.mu.Unlock()
}

// applyBootstrap installs a full seed: state dir rewritten to the leader's
// root + records, and the in-memory replica rebuilt by replaying every
// record through the validating delta chain.
func (s *Standby) applyBootstrap(blob []byte, seq uint64) error {
	var seed tuner.Seed
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&seed); err != nil {
		return fmt.Errorf("ha: undecodable bootstrap: %w", err)
	}
	rootSnap, err := nn.DecodeSnapshot(bytes.NewReader(seed.Model))
	if err != nil {
		return fmt.Errorf("ha: bootstrap model: %w", err)
	}
	archive := modelstore.NewAt(seed.BaseVersion, rootSnap)
	for _, rec := range seed.Records {
		info, err := tuner.DecodeWALRecord(rec)
		if err != nil {
			return err
		}
		if !info.IsRound() {
			continue
		}
		if _, err := archive.AppendBlob(info.Delta); err != nil {
			return fmt.Errorf("ha: bootstrap chain: %w", err)
		}
	}
	wal, err := tuner.InstallSeed(s.dir, seed)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.wal != nil {
		_ = s.wal.Close()
	}
	s.wal = wal
	s.archive = archive
	s.version = archive.Latest()
	s.roundEpoch = seed.RoundEpoch
	if seed.LeaderEpoch > s.leaderEpoch {
		s.leaderEpoch = seed.LeaderEpoch
	}
	s.appliedSeq = seq
	s.bootstrapped = true
	version := s.version
	s.mu.Unlock()
	s.log.Info("bootstrapped from leader",
		slog.Int("version", version), slog.Int("records", len(seed.Records)))
	return nil
}

// applyRecord persists one live record (fsynced, byte-identical to the
// leader's log) and folds it into the in-memory replica. Round records
// already covered by the bootstrap overlap are deduplicated by version.
func (s *Standby) applyRecord(payload []byte, seq uint64) error {
	info, err := tuner.DecodeWALRecord(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.bootstrapped {
		return errors.New("ha: record before bootstrap")
	}
	if err := s.wal.Append(payload); err != nil {
		return fmt.Errorf("ha: persisting shipped record: %w", err)
	}
	if info.IsRound() && info.Version > s.archive.Latest() {
		v, err := s.archive.AppendBlob(info.Delta)
		if err != nil {
			return fmt.Errorf("ha: applying shipped round: %w", err)
		}
		if v != info.Version {
			return fmt.Errorf("ha: shipped round says version %d, chain is at %d", info.Version, v)
		}
		s.version = v
	}
	if info.Epoch > s.roundEpoch {
		s.roundEpoch = info.Epoch
	}
	if info.Leader > s.leaderEpoch {
		s.leaderEpoch = info.Leader
	}
	s.appliedSeq = seq
	return nil
}

// TakeOver promotes the replica: it stops replication, recovers a fresh
// tuner from the standby's state directory (the same OpenState path a
// restarted leader uses), and durably asserts a leadership term strictly
// above everything heard on the stream. The returned tuner is ready for
// AcceptStores/AddStore; the caller owns opening the listener.
func (s *Standby) TakeOver() (*tuner.Node, tuner.RecoveryReport, error) {
	s.Stop()
	s.mu.Lock()
	if !s.bootstrapped {
		s.mu.Unlock()
		return nil, tuner.RecoveryReport{}, errors.New("ha: takeover before first bootstrap")
	}
	if s.wal != nil {
		_ = s.wal.Close()
		s.wal = nil
	}
	heard := s.leaderEpoch
	s.mu.Unlock()

	tn, err := tuner.New(s.cfg)
	if err != nil {
		return nil, tuner.RecoveryReport{}, err
	}
	rep, err := tn.OpenState(s.dir)
	if err != nil {
		return nil, rep, fmt.Errorf("ha: replaying replica state: %w", err)
	}
	if _, err := tn.AssertLeadership(heard); err != nil {
		return nil, rep, err
	}
	takeovers.Inc()
	SetRoleMetric(true)
	s.log.Info("took over leadership",
		slog.Int("version", rep.Version), slog.Uint64("leader_epoch", tn.LeaderEpoch()))
	return tn, rep, nil
}
