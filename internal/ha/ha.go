// Package ha makes the tuner's failure a blip instead of an outage (S35).
//
// The leader runs a Shipper: every WAL record the tuner journals is also
// shipped — CRC32C-checked end-to-end with the durable log's own
// polynomial — to a hot Standby over MsgWALAppend/MsgWALAck, and the
// commit rule becomes "durable on the leader AND acked by the standby when
// one is attached". The standby materializes the stream into its own state
// directory in the leader's exact on-disk format, so takeover is just the
// PR-5 recovery path (tuner.OpenState) run against shipped bytes.
//
// Leadership is lease-based: the shipper heartbeats over the replication
// channel; a standby that hears nothing for LeaseTimeout declares the
// lease expired, asserts a strictly higher leader epoch (durably, via
// tuner.AssertLeadership), replays its WAL tail, and opens its own store
// listener. Leader epochs are stamped on every outbound tuner message;
// stores fence anything older than the highest epoch they have seen, so a
// deposed leader's delayed or replayed traffic can never advance state.
package ha

import (
	"time"

	"ndpipe/internal/telemetry"
)

// Options tunes the replication channel and the leadership lease.
type Options struct {
	// ID names the standby in flight events and hellos (default "standby").
	ID string
	// LeaseTimeout is how long a standby tolerates silence before taking
	// over; the leader heartbeats at a quarter of it. Default 2s.
	LeaseTimeout time.Duration
	// AckTimeout bounds how long the leader waits for a standby's ack
	// before failing the commit and detaching it. Default 5s.
	AckTimeout time.Duration
	// DialTimeout bounds one standby→leader dial attempt. Default
	// LeaseTimeout/4.
	DialTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.ID == "" {
		o.ID = "standby"
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 2 * time.Second
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 5 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = o.LeaseTimeout / 4
	}
	return o
}

// HA instruments, shared by both roles in a process (exported on /metrics
// and, through the local section, on /fleet).
var (
	roleGauge = telemetry.Default.Gauge("ndpipe_ha_role")
	lagGauge  = telemetry.Default.Gauge("ndpipe_ha_wal_lag")
	standbys  = telemetry.Default.Gauge("ndpipe_ha_standbys")
	shipped   = telemetry.Default.Counter("ndpipe_ha_wal_shipped_total")
	shipFails = telemetry.Default.Counter("ndpipe_ha_ship_failures_total")
	takeovers = telemetry.Default.Counter("ndpipe_ha_takeovers_total")
)

// SetRoleMetric publishes the process's HA role (1 = leader, 0 = standby)
// as ndpipe_ha_role.
func SetRoleMetric(leader bool) {
	if leader {
		roleGauge.Set(1)
	} else {
		roleGauge.Set(0)
	}
}
