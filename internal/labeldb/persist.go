package labeldb

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the serialized form of the database.
type snapshot struct {
	Entries []Entry
}

// Save writes the database to w (gob-encoded).
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Entries: make([]Entry, 0, len(db.entries))}
	for _, e := range db.entries {
		snap.Entries = append(snap.Entries, e)
	}
	db.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("labeldb: save: %w", err)
	}
	return nil
}

// Load replaces the database contents with a snapshot written by Save.
func (db *DB) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("labeldb: load: %w", err)
	}
	entries := make(map[uint64]Entry, len(snap.Entries))
	for _, e := range snap.Entries {
		entries[e.ImageID] = e
	}
	db.mu.Lock()
	db.entries = entries
	db.mu.Unlock()
	return nil
}

// SaveFile persists the database to path atomically (temp file + rename),
// so a crash mid-save never corrupts the previous index.
func (db *DB) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("labeldb: %w", err)
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("labeldb: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("labeldb: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile restores the database from a file written by SaveFile.
func (db *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("labeldb: %w", err)
	}
	defer f.Close()
	return db.Load(f)
}
