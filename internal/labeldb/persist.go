package labeldb

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ndpipe/internal/durable"
)

// snapshot is the serialized form of the database.
type snapshot struct {
	Entries []Entry
}

// Save writes the database to w (gob-encoded).
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Entries: make([]Entry, 0, len(db.entries))}
	for _, e := range db.entries {
		snap.Entries = append(snap.Entries, e)
	}
	db.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("labeldb: save: %w", err)
	}
	return nil
}

// Load replaces the database contents with a snapshot written by Save. It
// is safe on hostile input: truncated or bit-flipped streams return an
// error — a gob-internal panic on malformed input is recovered and
// reported, never propagated — and on any failure the existing contents
// are left untouched.
func (db *DB) Load(r io.Reader) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("labeldb: load: malformed snapshot: %v", p)
		}
	}()
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("labeldb: load: %w", err)
	}
	entries := make(map[uint64]Entry, len(snap.Entries))
	for _, e := range snap.Entries {
		entries[e.ImageID] = e
	}
	db.mu.Lock()
	db.entries = entries
	db.mu.Unlock()
	return nil
}

// SaveFile persists the database to path atomically (temp file + fsync of
// file and parent directory + rename, via durable.AtomicWriteFile), so a
// crash mid-save never corrupts the previous index and a completed save
// survives power loss.
func (db *DB) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		return err
	}
	if err := durable.AtomicWriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("labeldb: %w", err)
	}
	return nil
}

// LoadFile restores the database from a file written by SaveFile.
func (db *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("labeldb: %w", err)
	}
	defer f.Close()
	return db.Load(f)
}
