// Package labeldb is the label index of the photo system (Fig 3): every
// stored photo's label, the model version that produced it, and where the
// photo lives. It answers search queries and the outdated-label bookkeeping
// of §3.3 — how many labels each model refresh fixed (Table 1).
package labeldb

import (
	"fmt"
	"sort"
	"sync"
)

// Entry is one indexed photo.
type Entry struct {
	ImageID      uint64
	Label        int
	ModelVersion int    // version of the model that assigned the label
	Location     string // which storage server holds the photo
}

// DB is a thread-safe versioned label index.
type DB struct {
	mu      sync.RWMutex
	entries map[uint64]Entry
}

// New creates an empty database.
func New() *DB {
	return &DB{entries: make(map[uint64]Entry)}
}

// Upsert inserts or replaces an entry. It returns the previous entry (if
// any) so callers can count label changes.
func (db *DB) Upsert(e Entry) (prev Entry, existed bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	prev, existed = db.entries[e.ImageID]
	db.entries[e.ImageID] = e
	return prev, existed
}

// Get returns the entry for an image.
func (db *DB) Get(id uint64) (Entry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[id]
	if !ok {
		return Entry{}, fmt.Errorf("labeldb: image %d not indexed", id)
	}
	return e, nil
}

// Len returns the number of indexed photos.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Search returns the IDs of all photos carrying the label, ascending —
// the user-facing image-search query path.
func (db *DB) Search(label int) []uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var ids []uint64
	for id, e := range db.entries {
		if e.Label == label {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CountByVersion returns how many labels were produced by each model
// version — the outdated-label inventory.
func (db *DB) CountByVersion() map[int]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[int]int)
	for _, e := range db.entries {
		out[e.ModelVersion]++
	}
	return out
}

// OutdatedCount returns how many labels predate the current model version.
func (db *DB) OutdatedCount(currentVersion int) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, e := range db.entries {
		if e.ModelVersion < currentVersion {
			n++
		}
	}
	return n
}

// RefreshStats summarizes one offline-inference pass (Table 1's "% of
// labels fixed").
type RefreshStats struct {
	Total        int
	Changed      int     // labels that differ from the previous version
	FixedFrac    float64 // Changed/Total
	ModelVersion int
}

// ApplyRefresh bulk-applies new labels from an offline inference pass with
// the given model version, returning how many stored labels changed.
func (db *DB) ApplyRefresh(labels map[uint64]int, version int, location string) RefreshStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := RefreshStats{ModelVersion: version}
	for id, lbl := range labels {
		st.Total++
		prev, ok := db.entries[id]
		if ok && prev.Label != lbl {
			st.Changed++
		}
		loc := location
		if ok && loc == "" {
			loc = prev.Location
		}
		db.entries[id] = Entry{ImageID: id, Label: lbl, ModelVersion: version, Location: loc}
	}
	if st.Total > 0 {
		st.FixedFrac = float64(st.Changed) / float64(st.Total)
	}
	return st
}
