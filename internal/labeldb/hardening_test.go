package labeldb

import (
	"bytes"
	"testing"
)

func savedBytes(t *testing.T) []byte {
	t.Helper()
	db := New()
	for i := uint64(0); i < 50; i++ {
		db.Upsert(Entry{ImageID: i, Label: int(i % 7), ModelVersion: int(i % 3), Location: "ps-0"})
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadTruncated feeds every strict prefix of a valid snapshot: each must
// error without panicking, and a failed load must leave the DB untouched.
func TestLoadTruncated(t *testing.T) {
	whole := savedBytes(t)
	for n := 0; n < len(whole); n++ {
		db := New()
		db.Upsert(Entry{ImageID: 999, Label: 1})
		if err := db.Load(bytes.NewReader(whole[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded successfully", n)
		}
		if db.Len() != 1 {
			t.Fatalf("failed load at %d bytes mutated the DB (%d entries)", n, db.Len())
		}
	}
}

// TestLoadBitFlips flips each byte: Load must terminate with error-or-success,
// never panic (gob-internal panics are recovered).
func TestLoadBitFlips(t *testing.T) {
	whole := savedBytes(t)
	for i := 0; i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0xFF
		db := New()
		_ = db.Load(bytes.NewReader(mut))
	}
}

func TestLoadGarbagePayloads(t *testing.T) {
	for _, in := range [][]byte{
		{},
		{0x00},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0x7F}, 4096),
	} {
		db := New()
		if err := db.Load(bytes.NewReader(in)); err == nil && len(in) > 0 {
			t.Errorf("garbage %v loaded successfully", in[:min(8, len(in))])
		}
	}
}

func FuzzLoad(f *testing.F) {
	db := New()
	for i := uint64(0); i < 5; i++ {
		db.Upsert(Entry{ImageID: i, Label: int(i)})
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are expected.
		_ = New().Load(bytes.NewReader(data))
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
