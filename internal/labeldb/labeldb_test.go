package labeldb

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestUpsertGet(t *testing.T) {
	db := New()
	_, existed := db.Upsert(Entry{ImageID: 1, Label: 3, ModelVersion: 0, Location: "ps-0"})
	if existed {
		t.Fatal("first upsert should not report existing")
	}
	e, err := db.Get(1)
	if err != nil || e.Label != 3 || e.Location != "ps-0" {
		t.Fatalf("Get = %+v, %v", e, err)
	}
	prev, existed := db.Upsert(Entry{ImageID: 1, Label: 5, ModelVersion: 1})
	if !existed || prev.Label != 3 {
		t.Fatalf("second upsert prev = %+v", prev)
	}
	if _, err := db.Get(99); err == nil {
		t.Fatal("missing entry must error")
	}
}

func TestSearch(t *testing.T) {
	db := New()
	db.Upsert(Entry{ImageID: 3, Label: 7})
	db.Upsert(Entry{ImageID: 1, Label: 7})
	db.Upsert(Entry{ImageID: 2, Label: 4})
	ids := db.Search(7)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("Search = %v", ids)
	}
	if got := db.Search(99); len(got) != 0 {
		t.Fatalf("empty search = %v", got)
	}
}

func TestVersionAccounting(t *testing.T) {
	db := New()
	for i := uint64(0); i < 10; i++ {
		v := 0
		if i >= 6 {
			v = 1
		}
		db.Upsert(Entry{ImageID: i, Label: int(i), ModelVersion: v})
	}
	counts := db.CountByVersion()
	if counts[0] != 6 || counts[1] != 4 {
		t.Fatalf("CountByVersion = %v", counts)
	}
	if got := db.OutdatedCount(1); got != 6 {
		t.Fatalf("OutdatedCount = %d", got)
	}
	if got := db.OutdatedCount(0); got != 0 {
		t.Fatalf("OutdatedCount(0) = %d", got)
	}
}

// TestApplyRefreshCountsFixedLabels is the Table 1 mechanism: a refresh with
// a newer model counts exactly the labels it changed.
func TestApplyRefreshCountsFixedLabels(t *testing.T) {
	db := New()
	for i := uint64(0); i < 100; i++ {
		db.Upsert(Entry{ImageID: i, Label: 0, ModelVersion: 0, Location: "ps-1"})
	}
	newLabels := make(map[uint64]int, 100)
	for i := uint64(0); i < 100; i++ {
		if i < 7 {
			newLabels[i] = 1 // 7 % fixed
		} else {
			newLabels[i] = 0
		}
	}
	st := db.ApplyRefresh(newLabels, 1, "")
	if st.Total != 100 || st.Changed != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if st.FixedFrac != 0.07 {
		t.Fatalf("FixedFrac = %v", st.FixedFrac)
	}
	// All entries now carry version 1 and kept their location.
	e, _ := db.Get(3)
	if e.ModelVersion != 1 || e.Location != "ps-1" {
		t.Fatalf("entry after refresh: %+v", e)
	}
	if db.OutdatedCount(1) != 0 {
		t.Fatal("no outdated labels should remain")
	}
}

func TestApplyRefreshNewImages(t *testing.T) {
	db := New()
	st := db.ApplyRefresh(map[uint64]int{1: 5, 2: 6}, 2, "ps-9")
	if st.Total != 2 || st.Changed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	e, _ := db.Get(2)
	if e.Location != "ps-9" || e.ModelVersion != 2 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64(g*200 + i)
				db.Upsert(Entry{ImageID: id, Label: i % 5})
				db.Search(i % 5)
				db.Len()
			}
		}()
	}
	wg.Wait()
	if db.Len() != 1600 {
		t.Fatalf("Len = %d, want 1600", db.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	for i := uint64(0); i < 500; i++ {
		db.Upsert(Entry{ImageID: i, Label: int(i % 9), ModelVersion: int(i % 3), Location: "ps-x"})
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 500 {
		t.Fatalf("restored %d entries", restored.Len())
	}
	for i := uint64(0); i < 500; i += 37 {
		a, _ := db.Get(i)
		b, err := restored.Get(i)
		if err != nil || a != b {
			t.Fatalf("entry %d mismatch: %+v vs %+v (%v)", i, a, b, err)
		}
	}
	// Version accounting survives.
	if got, want := restored.CountByVersion(), db.CountByVersion(); len(got) != len(want) {
		t.Fatalf("version counts diverged: %v vs %v", got, want)
	}
}

func TestSaveFileLoadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.db")
	db := New()
	db.Upsert(Entry{ImageID: 1, Label: 4, ModelVersion: 2, Location: "ps-0"})
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with more data: the rename must replace cleanly.
	db.Upsert(Entry{ImageID: 2, Label: 5})
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored %d entries", restored.Len())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	if err := New().LoadFile(filepath.Join(dir, "missing.db")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadGarbage(t *testing.T) {
	db := New()
	db.Upsert(Entry{ImageID: 7, Label: 1})
	if err := db.Load(bytes.NewReader([]byte{0xba, 0xad})); err == nil {
		t.Fatal("garbage must not load")
	}
	// A failed load must leave the previous contents intact.
	if db.Len() != 1 {
		t.Fatal("failed load corrupted the database")
	}
}
