package cluster

import (
	"math"
	"testing"

	"ndpipe/internal/model"
)

func TestServerConstructors(t *testing.T) {
	ps := PipeStore(10)
	if !ps.HasAccel() || ps.Accels[0].Name != "Tesla T4" {
		t.Fatalf("PipeStore accel: %+v", ps.Accels)
	}
	if StorageServer(10).HasAccel() {
		t.Fatal("storage server must have its GPU disabled")
	}
	srv := SRVHost(10)
	if len(srv.Accels) != 2 {
		t.Fatalf("SRV host should use two V100s, has %d", len(srv.Accels))
	}
	if PipeStoreInf1(10).Accels[0].Name != "NeuronCoreV1" {
		t.Fatal("Inf1 store must carry a NeuronCore")
	}
	if Tuner(25).Net.Bps != 25e9/8 {
		t.Fatal("NIC rate must follow the gbps argument")
	}
}

func TestInferIPSAnchor(t *testing.T) {
	ps := PipeStore(10)
	m := model.ResNet50()
	// Peak (batch-independent) rate: anchor/batchEff(128).
	want := 2129 / (128.0 / 152.0)
	got := ps.InferIPS(m, m.TotalGFLOPs())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("T4 peak IPS %.0f, want ≈%.0f", got, want)
	}
	// Two V100s ≈ 5.5 T4s.
	srv := SRVHost(10)
	ratio := srv.InferIPS(m, m.TotalGFLOPs()) / got
	if ratio < 4.5 || ratio > 6.5 {
		t.Fatalf("2xV100/T4 ratio %.2f, want ≈5.5", ratio)
	}
}

func TestInferIPSZeroWorkIsInfinite(t *testing.T) {
	ps := PipeStore(10)
	if ips := ps.InferIPS(model.ResNet50(), 0); ips < 1e200 {
		t.Fatalf("zero work should be unbounded, got %v", ips)
	}
}

func TestInferIPSPanicsWithoutAccel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StorageServer(10).InferIPS(model.ResNet50(), 1)
}

func TestTrainIPSUsesTrainingEngine(t *testing.T) {
	ps := PipeStore(10)
	m := model.ResNet50()
	train := ps.TrainIPS(m, m.TotalGFLOPs())
	infer := ps.InferIPS(m, m.TotalGFLOPs())
	if train >= infer {
		t.Fatalf("training engine (%.0f) must be slower than the optimized inference engine (%.0f)", train, infer)
	}
}

func TestActiveWattsMonotone(t *testing.T) {
	ps := PipeStore(10)
	idle := ps.ActiveWatts(0, 0, 0)
	busy := ps.ActiveWatts(1, 0.5, 0.5)
	if idle <= 0 || busy <= idle {
		t.Fatalf("idle %.0f W, busy %.0f W", idle, busy)
	}
	// Clamping: silly utilizations don't explode.
	if ps.ActiveWatts(5, 5, 5) != ps.ActiveWatts(1, 1, 1) {
		t.Fatal("utilization must clamp to [0,1]")
	}
}

func TestWattsBreakdownSumsToTotal(t *testing.T) {
	srv := SRVHost(10)
	g, c, o := srv.WattsBreakdown(0.7, 0.3, 0.2)
	total := srv.ActiveWatts(0.7, 0.3, 0.2)
	if math.Abs(g+c+o-total) > 1e-9 {
		t.Fatalf("breakdown %v+%v+%v != %v", g, c, o, total)
	}
}
