// Package cluster composes devices from the catalog into the server types
// the paper deploys: PipeStores (g4dn.4xlarge + T4, or Inf1 + NeuronCore),
// plain storage servers (GPU disabled), the Tuner (p3.2xlarge, one V100) and
// the SRV host (p3.8xlarge, two V100s).
package cluster

import (
	"fmt"

	"ndpipe/internal/device"
	"ndpipe/internal/model"
)

// Server is one machine: an optional accelerator plus CPU, disk and NIC.
type Server struct {
	Name   string
	Accels []device.Accelerator // empty when the GPU is disabled
	CPU    device.CPU
	Disk   device.Storage
	Net    device.NIC
	// OtherWatts covers the paper's "Others" power bucket (PSU losses, SoC,
	// fans, I/O) when the server is active; OtherIdleWatts when idle.
	OtherWatts     float64
	OtherIdleWatts float64
	// HourlyUSD is the AWS on-demand price used by the cost model.
	HourlyUSD float64
}

// PipeStore is a g4dn.4xlarge storage server with its T4 enabled.
func PipeStore(gbps float64) *Server {
	return &Server{
		Name:           "PipeStore(T4)",
		Accels:         []device.Accelerator{device.TeslaT4()},
		CPU:            device.XeonStorage(),
		Disk:           device.ST1Array(),
		Net:            device.Ethernet(gbps),
		OtherWatts:     85,
		OtherIdleWatts: 55,
		HourlyUSD:      1.204, // g4dn.4xlarge on-demand
	}
}

// PipeStoreInf1 is the Inferentia variant (Inf1.2xlarge + st1).
func PipeStoreInf1(gbps float64) *Server {
	return &Server{
		Name:           "PipeStore(Inf1)",
		Accels:         []device.Accelerator{device.NeuronCoreV1()},
		CPU:            device.XeonStorage(),
		Disk:           device.ST1Array(),
		Net:            device.Ethernet(gbps),
		OtherWatts:     80,
		OtherIdleWatts: 52,
		HourlyUSD:      0.362, // inf1.2xlarge on-demand
	}
}

// StorageServer is a g4dn.4xlarge with the GPU disabled (the SRV baselines).
func StorageServer(gbps float64) *Server {
	return &Server{
		Name:           "StorageServer",
		CPU:            device.XeonStorage(),
		Disk:           device.ST1Array(),
		Net:            device.Ethernet(gbps),
		OtherWatts:     85,
		OtherIdleWatts: 55,
		HourlyUSD:      1.204,
	}
}

// Tuner is a p3.2xlarge with one V100 and local NVMe scratch.
func Tuner(gbps float64) *Server {
	return &Server{
		Name:           "Tuner",
		Accels:         []device.Accelerator{device.TeslaV100()},
		CPU:            device.XeonTuner(),
		Disk:           device.NVMeLocal(),
		Net:            device.Ethernet(gbps),
		OtherWatts:     110,
		OtherIdleWatts: 70,
		HourlyUSD:      3.06, // p3.2xlarge on-demand
	}
}

// SRVHost is a p3.8xlarge with two of its four V100s in use (§3.4, §6.1).
func SRVHost(gbps float64) *Server {
	return &Server{
		Name: "SRVHost",
		Accels: []device.Accelerator{
			device.TeslaV100(), device.TeslaV100(),
		},
		CPU:            device.XeonHost(),
		Disk:           device.NVMeLocal(),
		Net:            device.Ethernet(gbps),
		OtherWatts:     160,
		OtherIdleWatts: 100,
		HourlyUSD:      12.24, // p3.8xlarge on-demand
	}
}

// HasAccel reports whether the server has at least one accelerator.
func (s *Server) HasAccel() bool { return len(s.Accels) > 0 }

// InferIPS returns the server's aggregate inference throughput (images/s)
// for a *portion* of a model costing gflops per image, on the optimized
// inference engine. It returns +Inf when gflops is zero (nothing to do) and
// panics when the server has no accelerator.
func (s *Server) InferIPS(m *model.Spec, gflops float64) float64 {
	if !s.HasAccel() {
		panic(fmt.Sprintf("cluster: %s has no accelerator", s.Name))
	}
	if gflops == 0 {
		return inf()
	}
	var total float64
	for _, a := range s.Accels {
		total += m.InferEff * a.EffMult * a.TensorFLOPS / (gflops * 1e9)
	}
	return total
}

// TrainIPS returns the server's aggregate fine-tuning throughput for a model
// portion costing gflops of *forward* work per image, on the training engine
// (fp32). Backward+update for the trainable part roughly triples its cost,
// which callers account for by passing 3× the trainable forward GFLOPs.
func (s *Server) TrainIPS(m *model.Spec, gflops float64) float64 {
	if !s.HasAccel() {
		panic(fmt.Sprintf("cluster: %s has no accelerator", s.Name))
	}
	if gflops == 0 {
		return inf()
	}
	var total float64
	for _, a := range s.Accels {
		total += m.TrainEff * a.TrainEffMult * a.FP32FLOPS / (gflops * 1e9)
	}
	return total
}

// ActiveWatts returns the server's power draw with the given component
// utilizations in [0,1]: accelerator, CPU (fraction of cores busy), disk.
// NIC and "Others" are folded into the active/idle other bucket.
func (s *Server) ActiveWatts(accelUtil, cpuUtil, diskUtil float64) float64 {
	accelUtil, cpuUtil, diskUtil = clamp01(accelUtil), clamp01(cpuUtil), clamp01(diskUtil)
	w := s.OtherIdleWatts + (s.OtherWatts-s.OtherIdleWatts)*maxf(accelUtil, maxf(cpuUtil, diskUtil))
	for _, a := range s.Accels {
		w += a.IdleWatts + (a.ActiveWatts-a.IdleWatts)*clamp01(accelUtil)
	}
	w += s.CPU.IdleWatts + s.CPU.ActiveWattsPerCore*float64(s.CPU.Cores)*clamp01(cpuUtil)
	w += s.Disk.IdleWatts + (s.Disk.ActiveWatts-s.Disk.IdleWatts)*clamp01(diskUtil)
	w += s.Net.ActiveWatts
	return w
}

// WattsBreakdown splits ActiveWatts into the paper's GPU / CPU / Others
// buckets (Fig 14). Disk and NIC count as Others.
func (s *Server) WattsBreakdown(accelUtil, cpuUtil, diskUtil float64) (gpu, cpu, others float64) {
	accelUtil, cpuUtil, diskUtil = clamp01(accelUtil), clamp01(cpuUtil), clamp01(diskUtil)
	for _, a := range s.Accels {
		gpu += a.IdleWatts + (a.ActiveWatts-a.IdleWatts)*clamp01(accelUtil)
	}
	cpu = s.CPU.IdleWatts + s.CPU.ActiveWattsPerCore*float64(s.CPU.Cores)*clamp01(cpuUtil)
	others = s.OtherIdleWatts + (s.OtherWatts-s.OtherIdleWatts)*maxf(accelUtil, maxf(cpuUtil, diskUtil)) +
		s.Disk.IdleWatts + (s.Disk.ActiveWatts-s.Disk.IdleWatts)*clamp01(diskUtil) +
		s.Net.ActiveWatts
	return gpu, cpu, others
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func inf() float64 { return 1e300 }
