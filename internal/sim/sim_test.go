package sim

import (
	"errors"
	"math"
	"testing"
)

func TestWaitAdvancesTime(t *testing.T) {
	e := New()
	var at float64
	e.Go("p", func(p *Proc) {
		p.Wait(1.5)
		at = e.Now()
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if at != 1.5 || end != 1.5 {
		t.Fatalf("at=%v end=%v, want 1.5", at, end)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	run := func() []string {
		e := New()
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				p.Wait(1) // all wake at t=1; FIFO by spawn order
				order = append(order, name)
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 10; i++ {
		got := run()
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("nondeterministic order: %v vs %v", got, first)
			}
		}
	}
	if first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Fatalf("tie-break must follow spawn order, got %v", first)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New()
	r := e.NewResource("gpu", 1)
	var finish []float64
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			r.Use(p, 2)
			finish = append(finish, e.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
	if end != 6 {
		t.Fatalf("end = %v", end)
	}
	if bt := r.BusyTime(); math.Abs(bt-6) > 1e-12 {
		t.Fatalf("busy time %v, want 6", bt)
	}
	if u := r.Utilization(); math.Abs(u-1) > 1e-12 {
		t.Fatalf("utilization %v, want 1", u)
	}
}

func TestResourceCapacityTwoRunsInParallel(t *testing.T) {
	e := New()
	r := e.NewResource("cores", 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			r.Use(p, 3)
			finish = append(finish, e.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 6 {
		t.Fatalf("4 jobs × 3s on 2 cores should end at 6, got %v", end)
	}
	if finish[0] != 3 || finish[1] != 3 || finish[2] != 6 || finish[3] != 6 {
		t.Fatalf("finish = %v", finish)
	}
}

func TestQueueBlocksGetterUntilPut(t *testing.T) {
	e := New()
	q := e.NewQueue("q", 0)
	var got any
	var at float64
	e.Go("consumer", func(p *Proc) {
		got = q.Get(p)
		at = e.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Wait(5)
		q.Put(p, 42)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 || at != 5 {
		t.Fatalf("got=%v at=%v", got, at)
	}
}

func TestQueueBoundedBlocksPutter(t *testing.T) {
	e := New()
	q := e.NewQueue("q", 1)
	var putDone float64
	e.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2) // blocks until the consumer drains one
		putDone = e.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Wait(7)
		q.Get(p)
		p.Wait(1)
		q.Get(p)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != 7 {
		t.Fatalf("second put completed at %v, want 7", putDone)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := New()
	q := e.NewQueue("q", 0)
	var order []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Wait(1)
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			order = append(order, q.Get(p).(int))
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	q := e.NewQueue("never", 0)
	e.Go("stuck", func(p *Proc) {
		q.Get(p) // nothing ever puts
	})
	_, err := e.Run()
	if err == nil || !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestLinkTransferTime(t *testing.T) {
	e := New()
	l := e.NewLink("net", 1e6, 0.001) // 1 MB/s, 1 ms latency
	var at float64
	e.Go("xfer", func(p *Proc) {
		l.Transfer(p, 500_000)
		at = e.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(at-0.501) > 1e-9 {
		t.Fatalf("transfer finished at %v, want 0.501", at)
	}
	if l.BytesSent() != 500_000 {
		t.Fatalf("BytesSent = %v", l.BytesSent())
	}
}

func TestLinkContention(t *testing.T) {
	e := New()
	l := e.NewLink("net", 1e6, 0)
	var finish []float64
	for i := 0; i < 2; i++ {
		e.Go("xfer", func(p *Proc) {
			l.Transfer(p, 1e6)
			finish = append(finish, e.Now())
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finish[0] != 1 || finish[1] != 2 {
		t.Fatalf("contended finishes %v, want [1 2]", finish)
	}
}

// TestPipelineThroughputMatchesBottleneck builds a 3-stage pipeline and
// verifies the steady-state rate equals the slowest stage — the invariant
// the NPE design relies on (§5.4).
func TestPipelineThroughputMatchesBottleneck(t *testing.T) {
	e := New()
	const items = 50
	s1, s2, s3 := 0.01, 0.03, 0.02 // stage 2 is the bottleneck
	q12 := e.NewQueue("q12", 2)
	q23 := e.NewQueue("q23", 2)
	d1 := e.NewResource("disk", 1)
	d2 := e.NewResource("cpu", 1)
	d3 := e.NewResource("gpu", 1)
	e.Go("load", func(p *Proc) {
		for i := 0; i < items; i++ {
			d1.Use(p, s1)
			q12.Put(p, i)
		}
	})
	e.Go("preproc", func(p *Proc) {
		for i := 0; i < items; i++ {
			v := q12.Get(p)
			d2.Use(p, s2)
			q23.Put(p, v)
		}
	})
	var end float64
	e.Go("fe", func(p *Proc) {
		for i := 0; i < items; i++ {
			q23.Get(p)
			d3.Use(p, s3)
		}
		end = e.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Expected ≈ fill (s1+s2) + items·s2 + s3 drain.
	expected := s1 + float64(items)*s2 + s3
	if math.Abs(end-expected) > 0.05 {
		t.Fatalf("pipeline end %v, want ≈%v", end, expected)
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	e := New()
	var childAt float64
	e.Go("parent", func(p *Proc) {
		p.Wait(1)
		e.Go("child", func(c *Proc) {
			c.Wait(2)
			childAt = e.Now()
		})
		p.Wait(0.5)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 3 {
		t.Fatalf("child finished at %v, want 3", childAt)
	}
}

func TestUtilizationPartial(t *testing.T) {
	e := New()
	r := e.NewResource("gpu", 1)
	e.Go("w", func(p *Proc) {
		r.Use(p, 1)
		p.Wait(3) // idle tail
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(); math.Abs(u-0.25) > 1e-12 {
		t.Fatalf("utilization %v, want 0.25", u)
	}
}
