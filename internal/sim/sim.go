// Package sim is a deterministic, process-based discrete-event simulator.
//
// Processes are goroutines that interact with simulated time exclusively
// through the Proc handle (Wait, Acquire/Release, queue Put/Get). The engine
// runs exactly one process at a time and orders events by (time, sequence),
// so a simulation is reproducible bit-for-bit regardless of Go scheduling.
//
// It is the substrate under the NPE pipeline model, FT-DMP pipelined
// training and the baseline systems: storage arms, CPU cores, accelerators
// and network links are Resources; batches flow through Queues.
package sim

import (
	"container/heap"
	"fmt"
)

// Engine owns simulated time and the event queue.
type Engine struct {
	now     float64
	events  eventHeap
	seq     int64
	yield   chan signal
	running bool
	procs   int
}

type signal struct {
	done bool // the signalling process finished
}

type event struct {
	at   float64
	seq  int64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New returns an empty engine at time 0.
func New() *Engine {
	return &Engine{yield: make(chan signal)}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Proc is a process's handle to the engine. All methods must be called from
// the process's own goroutine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
}

// Go spawns a new process. It may be called before Run or from inside a
// running process.
func (e *Engine) Go(name string, fn func(p *Proc)) {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs++
	e.schedule(e.now, p)
	go func() {
		<-p.resume // wait for the engine to start us
		fn(p)
		e.yield <- signal{done: true}
	}()
}

func (e *Engine) schedule(at float64, p *Proc) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p})
}

// Run executes events until the queue drains, then returns the final time.
// Processes still blocked on resources or queues at that point are
// deadlocked; Run returns ErrDeadlock alongside the time in that case.
func (e *Engine) Run() (float64, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			return e.now, fmt.Errorf("sim: time went backwards (%g < %g)", ev.at, e.now)
		}
		e.now = ev.at
		ev.proc.resume <- struct{}{}
		sig := <-e.yield
		if sig.done {
			e.procs--
		}
	}
	if e.procs > 0 {
		return e.now, fmt.Errorf("sim: deadlock: %d process(es) still blocked: %w", e.procs, ErrDeadlock)
	}
	return e.now, nil
}

// ErrDeadlock is wrapped by Run when processes remain blocked at drain time.
var ErrDeadlock = fmt.Errorf("deadlock")

// yieldAndWait parks the calling process until the engine resumes it.
func (p *Proc) yieldAndWait() {
	p.eng.yield <- signal{}
	<-p.resume
}

// Wait advances the process by d seconds of simulated time.
func (p *Proc) Wait(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s waits negative duration %g", p.name, d))
	}
	p.eng.schedule(p.eng.now+d, p)
	p.yieldAndWait()
}

// Name returns the process name (useful in traces and tests).
func (p *Proc) Name() string { return p.name }

// Resource is a FIFO-queued server with integer capacity. It tracks busy
// time (integral of holders over time) for utilization and energy metering.
type Resource struct {
	Label    string
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*Proc

	busyIntegral float64 // ∫ holders dt
	lastStamp    float64
}

// NewResource creates a resource with the given capacity (e.g. CPU cores).
func (e *Engine) NewResource(label string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{Label: label, eng: e, capacity: capacity}
}

func (r *Resource) stamp() {
	now := r.eng.now
	r.busyIntegral += float64(r.inUse) * (now - r.lastStamp)
	r.lastStamp = now
}

// Acquire blocks the process until a slot is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.yieldAndWait()
	// The releaser already accounted for our slot.
}

// Release frees a slot and wakes the longest-waiting process, if any.
func (r *Resource) Release() {
	r.stamp()
	r.inUse--
	if r.inUse < 0 {
		panic(fmt.Sprintf("sim: resource %s over-released", r.Label))
	}
	if len(r.waiters) > 0 && r.inUse < r.capacity {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.inUse++ // hand the slot to the waiter before it runs
		r.eng.schedule(r.eng.now, next)
	}
}

// Use acquires the resource, holds it for dur simulated seconds, and
// releases it — the common "do work on this device" idiom.
func (r *Resource) Use(p *Proc, dur float64) {
	r.Acquire(p)
	p.Wait(dur)
	r.Release()
}

// BusyTime returns ∫ holders dt up to the current simulated time.
func (r *Resource) BusyTime() float64 {
	return r.busyIntegral + float64(r.inUse)*(r.eng.now-r.lastStamp)
}

// Utilization returns BusyTime normalized by capacity and elapsed time.
func (r *Resource) Utilization() float64 {
	if r.eng.now == 0 {
		return 0
	}
	return r.BusyTime() / (float64(r.capacity) * r.eng.now)
}

// Queue is a bounded FIFO channel between processes; Put blocks when full,
// Get blocks when empty. It is how pipeline stages hand off batches.
type Queue struct {
	Label   string
	eng     *Engine
	cap     int
	items   []any
	getters []*Proc
	putters []*Proc
}

// NewQueue creates a queue with the given capacity (0 = unbounded).
func (e *Engine) NewQueue(label string, capacity int) *Queue {
	return &Queue{Label: label, eng: e, cap: capacity}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put enqueues v, blocking while the queue is full.
func (q *Queue) Put(p *Proc, v any) {
	for q.cap > 0 && len(q.items) >= q.cap {
		q.putters = append(q.putters, p)
		p.yieldAndWait()
	}
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		q.eng.schedule(q.eng.now, g)
	}
}

// Get dequeues the oldest item, blocking while the queue is empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.yieldAndWait()
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		q.eng.schedule(q.eng.now, w)
	}
	return v
}

// Link models a network link of the given bandwidth (bytes/s) and per-message
// latency. Transfers serialize FCFS on the link resource, which approximates
// fair sharing closely enough for the throughput shapes we reproduce.
type Link struct {
	res      *Resource
	bps      float64
	latency  float64
	sentByte float64
}

// NewLink creates a link with bandwidth bps (bytes/s) and per-transfer
// latency lat (seconds).
func (e *Engine) NewLink(label string, bps, lat float64) *Link {
	return &Link{res: e.NewResource(label, 1), bps: bps, latency: lat}
}

// Transfer moves n bytes across the link, blocking the process for the
// serialization plus latency time.
func (l *Link) Transfer(p *Proc, n int64) {
	if n < 0 {
		panic("sim: negative transfer")
	}
	l.sentByte += float64(n)
	l.res.Use(p, float64(n)/l.bps+l.latency)
}

// BytesSent returns the cumulative bytes offered to the link.
func (l *Link) BytesSent() float64 { return l.sentByte }

// BusyTime returns the total time the link spent transferring.
func (l *Link) BusyTime() float64 { return l.res.BusyTime() }
