package sim

import (
	"math"
	"testing"
)

func TestFairLinkSingleFlow(t *testing.T) {
	e := New()
	l := e.NewFairLink("net", 1e6)
	var at float64
	e.Go("x", func(p *Proc) {
		l.Transfer(p, 500_000)
		at = e.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(at-0.5) > 1e-9 {
		t.Fatalf("finish at %v, want 0.5", at)
	}
	if l.BytesSent() != 500_000 {
		t.Fatalf("sent %v", l.BytesSent())
	}
}

// TestFairLinkEqualFlowsShareEvenly: two identical concurrent transfers on
// a 1 MB/s link each take 2 s for 1 MB (vs FCFS's 1 s and 2 s).
func TestFairLinkEqualFlowsShareEvenly(t *testing.T) {
	e := New()
	l := e.NewFairLink("net", 1e6)
	var finish []float64
	for i := 0; i < 2; i++ {
		e.Go("x", func(p *Proc) {
			l.Transfer(p, 1e6)
			finish = append(finish, e.Now())
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, f := range finish {
		if math.Abs(f-2) > 1e-9 {
			t.Fatalf("fair-share finishes %v, want both at 2", finish)
		}
	}
}

// TestFairLinkShortFlowPreemptsLong: a short flow arriving mid-transfer
// slows the long one down but completes quickly itself (processor sharing).
func TestFairLinkShortFlowPreemptsLong(t *testing.T) {
	e := New()
	l := e.NewFairLink("net", 1e6)
	var longDone, shortDone float64
	e.Go("long", func(p *Proc) {
		l.Transfer(p, 2e6)
		longDone = e.Now()
	})
	e.Go("short", func(p *Proc) {
		p.Wait(1) // long flow has 1 MB left when we join
		l.Transfer(p, 0.25e6)
		shortDone = e.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// From t=1 both share 0.5 MB/s: short (0.25 MB) finishes at 1.5;
	// long then has 0.75 MB left at full rate → 2.25.
	if math.Abs(shortDone-1.5) > 1e-9 {
		t.Fatalf("short finished at %v, want 1.5", shortDone)
	}
	if math.Abs(longDone-2.25) > 1e-9 {
		t.Fatalf("long finished at %v, want 2.25", longDone)
	}
}

func TestFairLinkConservation(t *testing.T) {
	// N flows of equal size all finish exactly at N·size/bps.
	e := New()
	l := e.NewFairLink("net", 2e6)
	const n = 5
	var finishes []float64
	for i := 0; i < n; i++ {
		e.Go("x", func(p *Proc) {
			l.Transfer(p, 1e6)
			finishes = append(finishes, e.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * 1e6 / 2e6
	if math.Abs(end-want) > 1e-6 {
		t.Fatalf("end %v, want %v", end, want)
	}
	if l.Active() != 0 {
		t.Fatalf("%d flows still active", l.Active())
	}
}

func TestFairLinkZeroBytes(t *testing.T) {
	e := New()
	l := e.NewFairLink("net", 1e6)
	var at float64
	e.Go("x", func(p *Proc) {
		l.Transfer(p, 0)
		at = e.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("zero-byte transfer took %v", at)
	}
}

// TestFairVsFCFSAggregate: total completion time of a batch is identical
// under both disciplines (work conservation); only per-flow latency differs.
func TestFairVsFCFSAggregate(t *testing.T) {
	run := func(fair bool) float64 {
		e := New()
		var fl *FairLink
		var fc *Link
		if fair {
			fl = e.NewFairLink("net", 1e6)
		} else {
			fc = e.NewLink("net", 1e6, 0)
		}
		for i := 0; i < 4; i++ {
			sz := int64((i + 1) * 250_000)
			e.Go("x", func(p *Proc) {
				if fair {
					fl.Transfer(p, sz)
				} else {
					fc.Transfer(p, sz)
				}
			})
		}
		end, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	fair, fcfs := run(true), run(false)
	if math.Abs(fair-fcfs) > 1e-6 {
		t.Fatalf("work conservation violated: fair %v vs fcfs %v", fair, fcfs)
	}
}
