package sim

import (
	"testing"
	"time"
)

// TestFairLinkManyStaggeredFlows is a regression test for a livelock where
// sub-ulp wait quanta stopped simulated time from advancing.
func TestFairLinkManyStaggeredFlows(t *testing.T) {
	eng := New()
	fl := eng.NewFairLink("in", 1.25e9)
	for s := 0; s < 8; s++ {
		eng.Go("store", func(p *Proc) {
			for k := 0; k < 50; k++ {
				p.Wait(0.01)
				fl.Transfer(p, 512*4096)
			}
		})
	}
	done := make(chan struct{})
	go func() {
		if _, err := eng.Run(); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-timeoutC(t):
		t.Fatal("fair link simulation hung")
	}
}

func timeoutC(t *testing.T) <-chan struct{} {
	c := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Second)
		close(c)
	}()
	return c
}
