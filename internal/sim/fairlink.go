package sim

import "fmt"

// FairLink models a network link with processor-sharing (max-min fair)
// bandwidth allocation: k concurrent transfers each progress at bps/k, and
// remaining times are rescaled whenever a flow joins or leaves. This is the
// higher-fidelity alternative to Link's FCFS serialization; the NPE and
// FT-DMP shapes are insensitive to the choice (see the ablation bench), so
// the figures use the cheaper Link.
type FairLink struct {
	Label string
	eng   *Engine
	bps   float64

	flows     map[int]*flow
	nextID    int
	lastStamp float64
	sent      float64
}

type flow struct {
	remaining float64 // bytes left
	waiter    *Proc
	done      bool
}

// NewFairLink creates a processor-sharing link with bandwidth bps (bytes/s).
func (e *Engine) NewFairLink(label string, bps float64) *FairLink {
	if bps <= 0 {
		panic("sim: fair link bandwidth must be positive")
	}
	return &FairLink{Label: label, eng: e, bps: bps, flows: make(map[int]*flow)}
}

// progress advances all active flows to the current time. Flows that have
// already completed but whose owner has not reaped them yet (its wake event
// is still pending) consume no bandwidth.
func (l *FairLink) progress() {
	now := l.eng.now
	dt := now - l.lastStamp
	l.lastStamp = now
	if dt <= 0 {
		return
	}
	active := 0
	for _, f := range l.flows {
		if f.remaining > 0 {
			active++
		}
	}
	if active == 0 {
		return
	}
	share := l.bps / float64(active)
	for _, f := range l.flows {
		if f.remaining <= 0 {
			continue
		}
		f.remaining -= share * dt
		if f.remaining < 1e-9 {
			f.remaining = 0
		}
	}
}

// Transfer moves n bytes across the link, sharing bandwidth fairly with
// every concurrent transfer. The process blocks until its flow completes.
func (l *FairLink) Transfer(p *Proc, n int64) {
	if n < 0 {
		panic("sim: negative transfer")
	}
	l.sent += float64(n)
	if n == 0 {
		return
	}
	l.progress()
	id := l.nextID
	l.nextID++
	f := &flow{remaining: float64(n), waiter: p}
	l.flows[id] = f

	// Completion times depend on future arrivals, so each waiter sleeps
	// until the *global* earliest completion estimate among still-active
	// flows and then re-checks. Arrivals only postpone completions, so
	// wake-ups are at worst early for one's own flow (a departure can make
	// it finish before a stale target; the bytes are accounted exactly at
	// every event boundary either way, completion is just reported at the
	// next wake). Completed-but-unreaped flows are excluded from both the
	// share and the minimum so waiters always make progress.
	for {
		l.progress()
		if f.remaining == 0 {
			delete(l.flows, id)
			l.progress()
			return
		}
		active := 0
		for _, other := range l.flows {
			if other.remaining > 0 {
				active++
			}
		}
		share := l.bps / float64(active)
		next := f.remaining / share
		for _, other := range l.flows {
			if other.remaining <= 0 {
				continue
			}
			if t := other.remaining / share; t < next {
				next = t
			}
		}
		// Floor the wait at the resolution of simulated time: a wait below
		// the current timestamp's ulp would not advance the clock and the
		// loop would spin forever on a near-empty flow.
		if eps := (l.eng.Now() + 1) * 1e-12; next < eps {
			next = eps
		}
		p.Wait(next)
	}
}

// BytesSent returns cumulative bytes offered to the link.
func (l *FairLink) BytesSent() float64 { return l.sent }

// Active returns the number of in-flight transfers.
func (l *FairLink) Active() int { return len(l.flows) }

// String implements fmt.Stringer for diagnostics.
func (l *FairLink) String() string {
	return fmt.Sprintf("FairLink(%s, %.0f B/s, %d active)", l.Label, l.bps, len(l.flows))
}
