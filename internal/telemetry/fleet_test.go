package telemetry

import (
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// The tentpole exactness guarantee: fleet quantiles computed from merged
// per-store bucket counts are bitwise-identical to a single histogram that
// observed the union of every store's samples.
func TestFleetMergeBitwiseEqualsUnionRegistry(t *testing.T) {
	const stores, perStore = 9, 400
	union := NewHistogram(nil)
	agg := NewFleetAggregator(nil)
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < stores; s++ {
		reg := NewRegistry()
		h := reg.Histogram("op_seconds")
		c := reg.Counter("ops_total")
		scale := 1e-4 * float64(1+s)
		for i := 0; i < perStore; i++ {
			v := scale * (0.5 + rng.Float64()*3)
			h.Observe(v)
			union.Observe(v)
			c.Inc()
		}
		if !agg.Ship("ps-"+string(rune('a'+s)), 1, reg.SnapshotDense()) {
			t.Fatalf("shipment %d rejected", s)
		}
	}
	snap := agg.Snapshot()
	var hist *HistogramSnapshot
	var ops float64
	for _, s := range snap.Series {
		switch s.Name {
		case "op_seconds":
			hist = s.Fleet.Hist
		case "ops_total":
			ops = s.Fleet.Value
		}
	}
	if hist == nil {
		t.Fatal("merged histogram missing")
	}
	want := union.DenseSnapshot()
	if hist.Count != want.Count {
		t.Fatalf("count = %d, want %d", hist.Count, want.Count)
	}
	// Sum is float addition in a different association order (per-store then
	// merged vs globally interleaved), so it is near-equal, not bitwise.
	if diff := math.Abs(hist.Sum - want.Sum); diff > 1e-9*math.Abs(want.Sum) {
		t.Fatalf("sum = %v, want %v", hist.Sum, want.Sum)
	}
	if hist.P50 != want.P50 || hist.P95 != want.P95 || hist.P99 != want.P99 {
		t.Fatalf("quantiles not bitwise equal: %v/%v/%v vs %v/%v/%v",
			hist.P50, hist.P95, hist.P99, want.P50, want.P95, want.P99)
	}
	if ops != stores*perStore {
		t.Fatalf("fleet counter %v, want %d", ops, stores*perStore)
	}
}

// Sum is float addition, so the merge must use a deterministic store order:
// two snapshots over the same shipments are identical.
func TestFleetSnapshotDeterministic(t *testing.T) {
	agg := NewFleetAggregator(nil)
	for _, id := range []string{"z", "a", "m"} {
		reg := NewRegistry()
		h := reg.Histogram("h")
		h.Observe(0.1)
		h.Observe(0.2)
		agg.Ship(id, 1, reg.SnapshotDense())
	}
	a, b := agg.Snapshot(), agg.Snapshot()
	if len(a.Series) != len(b.Series) {
		t.Fatal("series count differs")
	}
	for i := range a.Series {
		ha, hb := a.Series[i].Fleet.Hist, b.Series[i].Fleet.Hist
		if ha.Sum != hb.Sum || ha.Count != hb.Count || ha.P99 != hb.P99 {
			t.Fatalf("series %d not deterministic", i)
		}
	}
}

// Dedup under concurrent shipping (run with -race): stale and duplicate
// sequence numbers are dropped, the highest seq wins, and exactly one
// goroutine wins each seq.
func TestFleetAggregatorDedupConcurrentShipping(t *testing.T) {
	agg := NewFleetAggregator(nil)
	reg := NewRegistry()
	reg.Counter("c").Inc()
	points := reg.SnapshotDense()

	const goroutines, seqs = 8, 50
	accepted := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := uint64(1); seq <= seqs; seq++ {
				if agg.Ship("ps-0", seq, points) {
					accepted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range accepted {
		total += n
	}
	// Each seq can be accepted at most once; seq 1..seqs arrive in order per
	// goroutine so at least the overall max is accepted.
	if total < 1 || total > seqs {
		t.Fatalf("accepted %d shipments of %d distinct seqs", total, seqs)
	}
	if got := agg.Stores(); len(got) != 1 || got[0] != "ps-0" {
		t.Fatalf("stores = %v", got)
	}
	// A replay of an old seq must be rejected now.
	if agg.Ship("ps-0", 1, points) {
		t.Fatal("stale seq accepted after higher seq")
	}
}

func TestWithStoreLabel(t *testing.T) {
	if got := WithStoreLabel("up_total", "ps-1"); got != `up_total{store="ps-1"}` {
		t.Fatalf("got %s", got)
	}
	got := WithStoreLabel(`wire_send_total{type="features"}`, "ps-2")
	if got != `wire_send_total{store="ps-2",type="features"}` {
		t.Fatalf("got %s", got)
	}
	// Already-carried store labels are never duplicated.
	already := `pipestore_model_version{store="ps-3"}`
	if got := WithStoreLabel(already, "ps-3"); got != already {
		t.Fatalf("got %s", got)
	}
}

func TestStripStoreLabel(t *testing.T) {
	for in, want := range map[string]string{
		"up_total":                                    "up_total",
		`up_total{store="ps-0"}`:                      "up_total",
		`wire_send_total{type="features"}`:            `wire_send_total{type="features"}`,
		`x{store="ps-1",type="ack"}`:                  `x{type="ack"}`,
		`x{type="ack",store="ps-1"}`:                  `x{type="ack"}`,
		`pipestore_extract_run_seconds{store="ps-9"}`: "pipestore_extract_run_seconds",
	} {
		if got := StripStoreLabel(in); got != want {
			t.Errorf("StripStoreLabel(%s) = %s, want %s", in, got, want)
		}
	}
}

// Real per-store instruments embed their owner's ID as a store label; the
// aggregator must group them across stores under the store-less name, roll
// them up exactly, and expose each store's point with a single store label.
func TestFleetGroupsStoreLabeledSeries(t *testing.T) {
	agg := NewFleetAggregator(nil)
	for i, n := range []int64{3, 4} {
		id := fmt.Sprintf("ps-%d", i)
		reg := NewRegistry()
		reg.Counter(Labeled("pipestore_images_ingested_total", "store", id)).Add(n)
		if !agg.Ship(id, 1, reg.SnapshotDense()) {
			t.Fatalf("ship %s rejected", id)
		}
	}
	snap := agg.Snapshot()
	if len(snap.Series) != 1 {
		t.Fatalf("series = %d, want 1 (store-labeled names must group)", len(snap.Series))
	}
	s := snap.Series[0]
	if s.Name != "pipestore_images_ingested_total" || s.Fleet.Value != 7.0 {
		t.Fatalf("rollup = %s %v, want pipestore_images_ingested_total 7", s.Name, s.Fleet.Value)
	}
	rec := httptest.NewRecorder()
	agg.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`pipestore_images_ingested_total{store="ps-0"} 3`,
		`pipestore_images_ingested_total{store="ps-1"} 4`,
		"fleet:pipestore_images_ingested_total 7",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet text missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, `store="ps-0",store=`) {
		t.Errorf("duplicated store label:\n%s", body)
	}
}

func TestFleetServeHTTPTextAndJSON(t *testing.T) {
	local := NewRegistry()
	local.Gauge(`ndpipe_straggler{store="ps-1"}`).Set(1)
	agg := NewFleetAggregator(local)
	for _, id := range []string{"ps-0", "ps-1"} {
		reg := NewRegistry()
		reg.Counter("ops_total").Add(3)
		agg.Ship(id, 1, reg.SnapshotDense())
	}

	rec := httptest.NewRecorder()
	agg.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`ops_total{store="ps-0"} 3`,
		`ops_total{store="ps-1"} 3`,
		"fleet:ops_total 6",
		`ndpipe_straggler{store="ps-1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("text view missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	agg.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content-type = %s", ct)
	}
	if !strings.Contains(rec.Body.String(), `"fleet":{"name":"ops_total"`) {
		t.Fatalf("json view missing rollup: %s", rec.Body.String())
	}
}

func TestMedianAndMAD(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
	if d := MAD([]float64{1, 2, 3, 4, 100}); d != 1 {
		t.Fatalf("MAD = %v (one outlier must not inflate it)", d)
	}
}

func TestFlagStragglers(t *testing.T) {
	// A clear outlier is flagged.
	got := FlagStragglers(map[string]float64{"a": 1.0, "b": 1.1, "c": 0.9, "d": 5.0}, 0)
	if len(got) != 1 || got[0] != "d" {
		t.Fatalf("stragglers = %v, want [d]", got)
	}
	// Identical fleets: MAD is 0 but the deviation floor keeps microsecond
	// jitter from flagging half the fleet.
	got = FlagStragglers(map[string]float64{"a": 1.0, "b": 1.0000001, "c": 1.0}, 0)
	if len(got) != 0 {
		t.Fatalf("jitter flagged %v", got)
	}
	// Below 3 stores there is no meaningful median.
	if got = FlagStragglers(map[string]float64{"a": 1, "b": 100}, 0); got != nil {
		t.Fatalf("tiny fleet flagged %v", got)
	}
}
