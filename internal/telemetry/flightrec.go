package telemetry

import (
	"encoding/json"
	"sync"
	"time"
)

// DefaultFlightRing is the default flight-recorder capacity: enough for
// several rounds' worth of state transitions without unbounded growth.
const DefaultFlightRing = 4096

// FlightEvent is one structured flight-recorder entry. Fields are flat and
// fixed so recording is allocation-free: Kind/Comp/Code are expected to be
// constants or long-lived strings (store IDs, phase names) — referencing
// them copies a string header, not the bytes — and the two value slots
// carry whatever numbers the event needs (a version, a byte count, an
// epoch), avoiding any fmt work on the hot path.
type FlightEvent struct {
	Seq  uint64 `json:"seq"`
	At   int64  `json:"at_unix_nano"`
	Kind string `json:"kind"`           // event taxonomy, e.g. "round-start"
	Comp string `json:"comp"`           // component, e.g. "tuner"
	Code string `json:"code,omitempty"` // detail, e.g. a store ID
	V1   int64  `json:"v1,omitempty"`
	V2   int64  `json:"v2,omitempty"`
}

// Flight-recorder event taxonomy. Daemons record state transitions with
// these kinds so a post-mortem dump reads the same across components; see
// DESIGN.md §9 for the full table.
const (
	FlightRoundStart  = "round-start"  // v1=epoch, v2=participants
	FlightRoundCommit = "round-commit" // v1=epoch, v2=model version
	FlightRoundAbort  = "round-abort"  // v1=epoch, code=phase
	FlightEvict       = "evict"        // code=store, v1=epoch
	FlightRetry       = "retry"        // code=store, v1=attempt
	FlightStraggler   = "straggler"    // code=store, v1=epoch
	FlightDeltaApply  = "delta-apply"  // code=store/encoding, v1=version, v2=bytes
	FlightCatchUp     = "catch-up"     // code=store, v1=to-version, v2=bytes
	FlightShed        = "shed"         // code=reason
	FlightPersist     = "persist"      // code=what, v1=bytes
	FlightRecover     = "recover"      // code=what, v1=version
	FlightExtractRun  = "extract-run"  // v1=run, v2=images
	FlightDump        = "dump"         // the recorder itself being dumped

	// HA / failover taxonomy (S35).
	FlightTakeover      = "takeover"       // v1=leader epoch, v2=model version
	FlightFenced        = "fenced"         // code=sender, v1=stale epoch, v2=fence
	FlightStandbyAttach = "standby-attach" // code=standby, v1=seeded version
	FlightStandbyDetach = "standby-detach" // code=standby, v1=last acked seq
	FlightWALShip       = "wal-ship"       // v1=seq, v2=bytes
	FlightDegraded      = "degraded"       // code=component, v1=1 enter / 0 exit

	// Photo durability taxonomy (S36).
	FlightScrub       = "scrub"        // code=store, v1=objects checked, v2=corrupt found
	FlightQuarantine  = "quarantine"   // code=store, v1=object id
	FlightRepair      = "repair"       // code=store, v1=object id, v2=1 ok / 0 failed
	FlightReroute     = "reroute"      // code=dead store, v1=epoch, v2=from-run
	FlightRebuild     = "rebuild"      // code=dead store, v1=objects copied, v2=bytes
	FlightAntiEntropy = "anti-entropy" // code=store, v1=replicas refilled, v2=gaps unfilled
)

// FlightRecorder is a bounded, allocation-free ring of structured events —
// the black box every daemon carries. Recording is a mutex-guarded slot
// write (no allocation, no I/O); the ring is served at /flightrec and
// dumped atomically to the state dir on panic or SIGQUIT for post-mortem of
// chaos and crash failures.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightEvent
	pos  int
	full bool
	seq  uint64
}

// NewFlightRecorder creates a recorder keeping the most recent capacity
// events (≤0 selects DefaultFlightRing).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRing
	}
	return &FlightRecorder{ring: make([]FlightEvent, capacity)}
}

// Record appends one event. Allocation-free: kind/comp/code must be
// constants or strings that outlive the recorder (component names, store
// IDs); do not build them with fmt on the hot path.
func (f *FlightRecorder) Record(kind, comp, code string, v1, v2 int64) {
	now := time.Now().UnixNano()
	f.mu.Lock()
	f.seq++
	slot := &f.ring[f.pos]
	slot.Seq = f.seq
	slot.At = now
	slot.Kind = kind
	slot.Comp = comp
	slot.Code = code
	slot.V1 = v1
	slot.V2 = v2
	f.pos++
	if f.pos == len(f.ring) {
		f.pos = 0
		f.full = true
	}
	f.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []FlightEvent
	if f.full {
		out = make([]FlightEvent, 0, len(f.ring))
		out = append(out, f.ring[f.pos:]...)
	} else {
		out = make([]FlightEvent, 0, f.pos)
	}
	return append(out, f.ring[:f.pos]...)
}

// Len returns how many events are buffered.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.ring)
	}
	return f.pos
}

// FlightDumpRecord is the serialized dump format: a self-describing header
// plus the event ring, oldest first — replayable by ReadFlightDump.
type FlightDumpRecord struct {
	Component string        `json:"component"`
	At        time.Time     `json:"at"`
	Reason    string        `json:"reason"` // "panic" | "sigquit" | "manual"
	Events    []FlightEvent `json:"events"`
}

// Dump serializes the ring (oldest first) with a reason header. The caller
// writes it somewhere durable — see internal/flightdump for the daemons'
// panic/SIGQUIT path via durable.AtomicWriteFile.
func (f *FlightRecorder) Dump(component, reason string) ([]byte, error) {
	f.Record(FlightDump, component, reason, 0, 0)
	rec := FlightDumpRecord{
		Component: component,
		At:        time.Now(),
		Reason:    reason,
		Events:    f.Events(),
	}
	return json.MarshalIndent(rec, "", " ")
}

// ParseFlightDump decodes a dump produced by Dump, so post-mortem tooling
// (and the crash tests) can replay the event sequence.
func ParseFlightDump(data []byte) (FlightDumpRecord, error) {
	var rec FlightDumpRecord
	err := json.Unmarshal(data, &rec)
	return rec, err
}
