package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Collector limits: keep the most recent DefaultTraceCap traces, each
// bounded to DefaultTraceSpanCap spans, so a long-lived Tuner cannot grow
// without bound while still holding several full FT-DMP rounds.
const (
	DefaultTraceCap     = 64
	DefaultTraceSpanCap = 8192
)

// Collector assembles distributed traces: it accumulates finished spans —
// local ones fed by a Tracer, remote ones shipped over the wire in MsgSpans
// envelopes — grouped by TraceID, and serves them as per-round span trees
// (the /traces endpoint). Spans are deduplicated by SpanID, so a record
// that arrives both locally and over the wire (in-process deployments) is
// stored once; traces are evicted oldest-first beyond the capacity.
type Collector struct {
	mu       sync.Mutex
	capTr    int
	capSpans int
	order    []TraceID
	traces   map[TraceID]*traceEntry
}

type traceEntry struct {
	spans   []SpanRecord
	seen    map[SpanID]int // span ID → index in spans, for dedup/replace
	dropped int            // spans discarded beyond capSpans
}

// NewCollector creates a collector holding at most capTraces traces of at
// most capSpans spans each (≤0 selects the defaults).
func NewCollector(capTraces, capSpans int) *Collector {
	if capTraces <= 0 {
		capTraces = DefaultTraceCap
	}
	if capSpans <= 0 {
		capSpans = DefaultTraceSpanCap
	}
	return &Collector{
		capTr:    capTraces,
		capSpans: capSpans,
		traces:   make(map[TraceID]*traceEntry),
	}
}

// Add merges finished spans into their traces. Records without a TraceID
// are ignored; a record whose SpanID was already collected replaces the
// earlier copy (shipped records win ties, which is harmless: they are
// identical).
func (c *Collector) Add(spans ...SpanRecord) {
	if len(spans) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range spans {
		if rec.Trace == 0 || rec.ID == 0 {
			continue
		}
		e := c.traces[rec.Trace]
		if e == nil {
			if len(c.order) >= c.capTr {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.traces, oldest)
			}
			e = &traceEntry{seen: make(map[SpanID]int)}
			c.traces[rec.Trace] = e
			c.order = append(c.order, rec.Trace)
		}
		if i, ok := e.seen[rec.ID]; ok {
			e.spans[i] = rec
			continue
		}
		if len(e.spans) >= c.capSpans {
			e.dropped++
			continue
		}
		e.seen[rec.ID] = len(e.spans)
		e.spans = append(e.spans, rec)
	}
}

// Len returns how many traces are currently held.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// TraceNode is one span in an assembled trace tree.
type TraceNode struct {
	SpanRecord
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree is one fully assembled trace: every collected span for a
// TraceID, stitched into parent/child trees. Spans whose parent was never
// collected (e.g. the remote parent lives on a node that has not shipped
// yet) surface as additional roots rather than being dropped.
type TraceTree struct {
	TraceID      TraceID      `json:"trace_id"`
	Start        time.Time    `json:"start"`
	Duration     float64      `json:"duration_seconds"` // wall span: min start → max end
	SpanCount    int          `json:"span_count"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Roots        []*TraceNode `json:"roots"`
}

// Spans returns the raw collected records for one trace, start-ordered
// (the JSONL export view). Nil if the trace is unknown.
func (c *Collector) Spans(id TraceID) []SpanRecord {
	c.mu.Lock()
	e := c.traces[id]
	var out []SpanRecord
	if e != nil {
		out = append([]SpanRecord(nil), e.spans...)
	}
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Tree assembles one trace (nil if unknown).
func (c *Collector) Tree(id TraceID) *TraceTree {
	spans := c.Spans(id)
	if spans == nil {
		return nil
	}
	c.mu.Lock()
	dropped := 0
	if e := c.traces[id]; e != nil {
		dropped = e.dropped
	}
	c.mu.Unlock()
	return buildTree(id, spans, dropped)
}

// Trees assembles every collected trace, oldest first.
func (c *Collector) Trees() []*TraceTree {
	c.mu.Lock()
	ids := append([]TraceID(nil), c.order...)
	c.mu.Unlock()
	out := make([]*TraceTree, 0, len(ids))
	for _, id := range ids {
		if tr := c.Tree(id); tr != nil {
			out = append(out, tr)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

func buildTree(id TraceID, spans []SpanRecord, dropped int) *TraceTree {
	tree := &TraceTree{TraceID: id, SpanCount: len(spans), DroppedSpans: dropped}
	nodes := make(map[SpanID]*TraceNode, len(spans))
	for _, rec := range spans {
		nodes[rec.ID] = &TraceNode{SpanRecord: rec}
	}
	var end time.Time
	for i, rec := range spans {
		if i == 0 || rec.Start.Before(tree.Start) {
			tree.Start = rec.Start
		}
		if e := rec.Start.Add(time.Duration(rec.Duration * float64(time.Second))); e.After(end) {
			end = e
		}
		n := nodes[rec.ID]
		if p, ok := nodes[rec.Parent]; ok && rec.Parent != rec.ID {
			p.Children = append(p.Children, n)
		} else {
			tree.Roots = append(tree.Roots, n)
		}
	}
	if !tree.Start.IsZero() {
		tree.Duration = end.Sub(tree.Start).Seconds()
	}
	var sortNodes func([]*TraceNode)
	sortNodes = func(ns []*TraceNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(tree.Roots)
	return tree
}

// Find walks a tree depth-first and returns the first node satisfying
// pred, or nil — a convenience for tests and trace tooling.
func (t *TraceTree) Find(pred func(*TraceNode) bool) *TraceNode {
	var walk func(ns []*TraceNode) *TraceNode
	walk = func(ns []*TraceNode) *TraceNode {
		for _, n := range ns {
			if pred(n) {
				return n
			}
			if m := walk(n.Children); m != nil {
				return m
			}
		}
		return nil
	}
	return walk(t.Roots)
}
