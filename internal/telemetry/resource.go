package telemetry

import "runtime"

// ResourceSample is one point-in-time process resource reading, the basis of
// per-round resource accounting: the tuner samples before and after a round
// and reports the deltas (CPU seconds burned, bytes allocated, allocation
// count) alongside the round's wall time.
type ResourceSample struct {
	CPUSeconds   float64 `json:"cpu_seconds"` // user+system CPU, process-wide
	AllocBytes   uint64  `json:"alloc_bytes"` // cumulative heap bytes allocated
	AllocObjects uint64  `json:"alloc_objects"`
}

// SampleResources reads the current process resource counters. CPU time
// comes from getrusage where available (zero on unsupported platforms);
// allocation counters come from runtime.ReadMemStats. Not for hot paths —
// ReadMemStats stops the world briefly — but cheap enough per round.
func SampleResources() ResourceSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ResourceSample{
		CPUSeconds:   processCPUSeconds(),
		AllocBytes:   ms.TotalAlloc,
		AllocObjects: ms.Mallocs,
	}
}

// ResourceDelta is the resource cost between two samples (a round, a phase).
type ResourceDelta struct {
	CPUSeconds   float64 `json:"cpu_seconds"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	AllocObjects uint64  `json:"alloc_objects"`
}

// Sub returns the delta from earlier to s. Counters that regressed (CPU
// clock skew, platform quirks) clamp to zero rather than going negative.
func (s ResourceSample) Sub(earlier ResourceSample) ResourceDelta {
	d := ResourceDelta{}
	if s.CPUSeconds > earlier.CPUSeconds {
		d.CPUSeconds = s.CPUSeconds - earlier.CPUSeconds
	}
	if s.AllocBytes > earlier.AllocBytes {
		d.AllocBytes = s.AllocBytes - earlier.AllocBytes
	}
	if s.AllocObjects > earlier.AllocObjects {
		d.AllocObjects = s.AllocObjects - earlier.AllocObjects
	}
	return d
}
