package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("uploads_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("uploads_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("lag")
	g.Set(2.5)
	g.Add(1.25)
	g.Add(-0.75)
	if got := g.Value(); got != 3.0 {
		t.Fatalf("gauge = %v, want 3.0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 100 samples at ~1ms, 10 at ~50ms, 1 at ~2s.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	h.Observe(2)
	if h.Count() != 111 {
		t.Fatalf("count = %d, want 111", h.Count())
	}
	wantSum := 100*0.001 + 10*0.05 + 2
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	p50 := h.Quantile(0.50)
	if p50 <= 0 || p50 > 0.003 {
		t.Fatalf("p50 = %v, want within the ~1ms bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.03 || p99 > 0.1 {
		t.Fatalf("p99 = %v, want within the ~50ms bucket", p99)
	}
	if q := h.Quantile(1.0); q < 1 || q > 3 {
		t.Fatalf("p100 = %v, want within the ~2s bucket", q)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	h.Observe(100) // overflow bucket
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %v, want largest bound 2", q)
	}
	s := h.Snapshot()
	if s.Count != 1 || len(s.Buckets) != 1 || !math.IsInf(s.Buckets[0].UpperBound, 1) {
		t.Fatalf("snapshot = %+v, want one +Inf bucket", s)
	}
}

// Regression: one NaN used to poison the CAS-updated running sum forever
// (NaN+x is NaN), and ±Inf saturated it. Non-finite samples must be dropped
// without touching count, sum or buckets.
func TestHistogramRejectsNonFinite(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(0.001)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		h.Observe(v)
	}
	h.Observe(0.003)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2 (non-finite samples must be dropped)", h.Count())
	}
	if s := h.Sum(); math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("sum poisoned: %v", s)
	}
	if math.Abs(h.Sum()-0.004) > 1e-12 {
		t.Fatalf("sum = %v, want 0.004", h.Sum())
	}
	if q := h.Quantile(0.99); math.IsNaN(q) || q <= 0 {
		t.Fatalf("p99 = %v after non-finite observes, want finite > 0", q)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 4; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	// Out-of-range q is clamped, and both extremes interpolate inside the
	// single occupied bucket: q→0 at its lower bound, q=1 at its upper bound.
	if q := h.Quantile(-0.5); q < 1 || q > 2 {
		t.Fatalf("q<0 clamped quantile = %v, want within (1,2]", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q=0 = %v, want bucket lower bound 1", q)
	}
	if q := h.Quantile(1); q != 2 {
		t.Fatalf("q=1 = %v, want bucket upper bound 2", q)
	}
	if q := h.Quantile(7); q != 2 {
		t.Fatalf("q>1 clamped quantile = %v, want 2", q)
	}
	// Interpolation is linear in rank: half the samples → bucket midpoint.
	if q := h.Quantile(0.5); math.Abs(q-1.5) > 1e-9 {
		t.Fatalf("q=0.5 = %v, want midpoint 1.5", q)
	}
	// Overflow-bucket ranks report the largest configured bound.
	h.Observe(1000)
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("overflow q=1 = %v, want largest bound 4", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum = %v, want 8.0", h.Sum())
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Inc()
	r.Gauge("a_gauge").Set(7)
	r.Histogram("c_hist").Observe(0.01)
	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(pts))
	}
	if pts[0].Name != "a_gauge" || pts[1].Name != "b_count" || pts[2].Name != "c_hist" {
		t.Fatalf("snapshot not sorted: %v %v %v", pts[0].Name, pts[1].Name, pts[2].Name)
	}
	if pts[2].Hist == nil || pts[2].Hist.Count != 1 {
		t.Fatalf("histogram point missing snapshot: %+v", pts[2])
	}
}

func TestLabeled(t *testing.T) {
	got := Labeled("wire_send_total", "type", "features")
	if got != `wire_send_total{type="features"}` {
		t.Fatalf("Labeled = %s", got)
	}
	base, labels := splitLabels(got)
	if base != "wire_send_total" || labels != `type="features",` {
		t.Fatalf("splitLabels = %q, %q", base, labels)
	}
}

func TestExpvarString(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(3)
	s := r.String()
	if !strings.Contains(s, `"x"`) || !strings.Contains(s, `"counter"`) {
		t.Fatalf("expvar string missing metric: %s", s)
	}
}
