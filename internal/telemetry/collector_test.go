package telemetry

import (
	"testing"
	"time"
)

func rec(trace TraceID, id, parent SpanID, name string, start time.Time, dur float64) SpanRecord {
	return SpanRecord{Trace: trace, ID: id, Parent: parent, Name: name, Start: start, Duration: dur}
}

func TestCollectorTreeAssembly(t *testing.T) {
	c := NewCollector(0, 0)
	t0 := time.Now()
	// A two-node round: tuner root, local child, plus a remote subtree whose
	// spans arrive out of order (children shipped before their parent).
	c.Add(
		rec(1, 30, 10, "pipestore.extract", t0.Add(20*time.Millisecond), 0.05),
		rec(1, 10, 0, "tuner.finetune", t0, 0.1),
		rec(1, 20, 10, "tuner.train-run", t0.Add(10*time.Millisecond), 0.02),
		rec(1, 31, 30, "read", t0.Add(21*time.Millisecond), 0.01),
	)
	tree := c.Tree(1)
	if tree == nil || tree.SpanCount != 4 {
		t.Fatalf("tree = %+v, want 4 spans", tree)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "tuner.finetune" {
		t.Fatalf("roots = %+v, want single tuner.finetune root", tree.Roots)
	}
	if !tree.Start.Equal(t0) {
		t.Fatalf("tree start = %v, want earliest span start %v", tree.Start, t0)
	}
	// Wall span: min start (t0) → max end (root t0+100ms).
	if tree.Duration < 0.099 || tree.Duration > 0.101 {
		t.Fatalf("tree duration = %v, want ~0.1", tree.Duration)
	}
	ex := tree.Find(func(n *TraceNode) bool { return n.Name == "pipestore.extract" })
	if ex == nil || len(ex.Children) != 1 || ex.Children[0].Name != "read" {
		t.Fatalf("extract subtree = %+v, want read child", ex)
	}
	// Children are start-ordered: train-run (t0+10ms) before extract (t0+20ms).
	if got := tree.Roots[0].Children; len(got) != 2 ||
		got[0].Name != "tuner.train-run" || got[1].Name != "pipestore.extract" {
		t.Fatalf("root children = %+v, want start-ordered train-run, extract", got)
	}
}

func TestCollectorDedupBySpanID(t *testing.T) {
	// In-process deployments deliver the same span twice: once locally via
	// the tracer's collector feed, once shipped in a MsgSpans envelope.
	c := NewCollector(0, 0)
	t0 := time.Now()
	span := rec(1, 10, 0, "pipestore.extract", t0, 0.05)
	c.Add(span)
	c.Add(span) // the wire copy
	if got := c.Spans(1); len(got) != 1 {
		t.Fatalf("collected %d spans, want 1 after dedup", len(got))
	}
}

func TestCollectorOrphanBecomesRoot(t *testing.T) {
	// A span whose parent lives on a node that never shipped must surface
	// as an extra root, not vanish.
	c := NewCollector(0, 0)
	c.Add(rec(1, 20, 999, "pipestore.extract", time.Now(), 0.01))
	tree := c.Tree(1)
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "pipestore.extract" {
		t.Fatalf("orphan not promoted to root: %+v", tree.Roots)
	}
}

func TestCollectorEvictsOldestTrace(t *testing.T) {
	c := NewCollector(2, 0)
	t0 := time.Now()
	c.Add(rec(1, 1, 0, "a", t0, 0))
	c.Add(rec(2, 2, 0, "b", t0, 0))
	c.Add(rec(3, 3, 0, "c", t0, 0))
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Tree(1) != nil {
		t.Fatal("oldest trace 1 should have been evicted")
	}
	if c.Tree(3) == nil {
		t.Fatal("newest trace 3 missing")
	}
}

func TestCollectorSpanCapCountsDropped(t *testing.T) {
	c := NewCollector(0, 2)
	t0 := time.Now()
	c.Add(
		rec(1, 1, 0, "a", t0, 0),
		rec(1, 2, 1, "b", t0, 0),
		rec(1, 3, 1, "c", t0, 0), // beyond cap
	)
	tree := c.Tree(1)
	if tree.SpanCount != 2 || tree.DroppedSpans != 1 {
		t.Fatalf("tree = %d spans / %d dropped, want 2 / 1", tree.SpanCount, tree.DroppedSpans)
	}
}

func TestCollectorIgnoresUntracedSpans(t *testing.T) {
	c := NewCollector(0, 0)
	c.Add(rec(0, 1, 0, "untraced", time.Now(), 0))
	c.Add(rec(1, 0, 0, "no-id", time.Now(), 0))
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0 (zero trace/span IDs must be ignored)", c.Len())
	}
}

func TestTracerFeedsCollector(t *testing.T) {
	// A registry's tracer auto-forwards finished spans to its collector, so
	// Tuner-local spans appear in /traces without explicit shipping.
	r := NewRegistry()
	sp := r.Spans().StartTrace("service.retrain")
	r.Spans().StartSpanIn(sp.Context(), "tuner.finetune").End()
	sp.End()
	tree := r.Traces().Tree(sp.TraceID())
	if tree == nil {
		t.Fatal("trace missing from registry collector")
	}
	if n := tree.Find(func(n *TraceNode) bool { return n.Name == "tuner.finetune" }); n == nil {
		t.Fatal("child span missing from assembled tree")
	}
}
