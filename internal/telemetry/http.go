package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// ServeOption customizes Handler/Serve.
type ServeOption func(*serveConfig)

type serveConfig struct {
	pprof bool
	fleet *FleetAggregator
}

// WithPprof mounts the net/http/pprof handlers (/debug/pprof/...) on the
// telemetry mux, so CPU and heap profiles are reachable on the same
// -telemetry-addr as /metrics. Off by default: profiling endpoints can
// reveal more than metrics, so the daemons gate this behind -pprof.
func WithPprof() ServeOption { return func(c *serveConfig) { c.pprof = true } }

// WithFleet mounts a fleet aggregator's merged view at /fleet on the
// telemetry mux — the tuner passes its aggregator so one scrape covers the
// whole fleet.
func WithFleet(agg *FleetAggregator) ServeOption {
	return func(c *serveConfig) { c.fleet = agg }
}

// Handler serves the registry over HTTP:
//
//	/metrics — Prometheus-style text exposition (counters, gauges,
//	           histogram buckets/sum/count plus p50/p95/p99 quantiles)
//	/spans   — JSON dump of the span ring buffer, oldest first
//	/traces  — assembled distributed traces (local + shipped spans) as
//	           nested JSON trees; ?format=jsonl streams the raw span
//	           records one JSON object per line; ?trace=<hex id> selects
//	           a single trace
//	/snapshot— the Snapshot() view as JSON (what Publish exposes via expvar)
//	/flightrec — the flight recorder's event ring as a JSON dump record
//	/healthz — liveness (always 200, with per-check detail)
//	/readyz  — readiness (503 until every registered check passes)
//
// With WithPprof, /debug/pprof/... is mounted as well; with WithFleet, the
// aggregator's merged fleet view is mounted at /fleet.
func (r *Registry) Handler(opts ...ServeOption) http.Handler {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetricsText(w, r.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Spans().Recent())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		r.serveTraces(w, req)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
	mux.HandleFunc("/flightrec", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(FlightDumpRecord{
			Component: "live",
			At:        time.Now(),
			Reason:    "http",
			Events:    r.Flight().Events(),
		})
	})
	mux.HandleFunc("/healthz", r.Health().serveHealthz)
	mux.HandleFunc("/readyz", r.Health().serveReadyz)
	if cfg.fleet != nil {
		mux.Handle("/fleet", cfg.fleet)
	}
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// serveTraces implements /traces: nested JSON trees by default, raw span
// records as JSONL with ?format=jsonl, optionally filtered to one trace
// with ?trace=<hex id>.
func (r *Registry) serveTraces(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	var trees []*TraceTree
	if want := q.Get("trace"); want != "" {
		id, err := strconv.ParseUint(want, 16, 64)
		if err != nil {
			http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
			return
		}
		if tr := r.Traces().Tree(TraceID(id)); tr != nil {
			trees = append(trees, tr)
		}
	} else {
		trees = r.Traces().Trees()
	}
	if q.Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, tr := range trees {
			for _, rec := range r.Traces().Spans(tr.TraceID) {
				_ = enc.Encode(rec)
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(trees)
}

// WriteMetricsText writes the Prometheus text format for a snapshot.
func WriteMetricsText(w interface{ Write([]byte) (int, error) }, pts []MetricPoint) {
	var b strings.Builder
	for _, p := range pts {
		switch p.Kind {
		case "counter", "gauge":
			fmt.Fprintf(&b, "%s %s\n", p.Name, formatFloat(p.Value))
		case "histogram":
			base, labels := splitLabels(p.Name)
			cum := uint64(0)
			for _, bk := range p.Hist.Buckets {
				cum += bk.Count
				le := "+Inf"
				if !math.IsInf(bk.UpperBound, 1) {
					le = formatFloat(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", base, labels, le, cum)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", base, bracketed(labels), formatFloat(p.Hist.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", base, bracketed(labels), p.Hist.Count)
			for _, q := range [...]struct {
				q string
				v float64
			}{{"0.5", p.Hist.P50}, {"0.95", p.Hist.P95}, {"0.99", p.Hist.P99}} {
				fmt.Fprintf(&b, "%s{%squantile=%q} %s\n", base, labels, q.q, formatFloat(q.v))
			}
		}
	}
	_, _ = w.Write([]byte(b.String()))
}

// splitLabels separates `name{k="v"}` into ("name", `k="v",`); a plain name
// yields ("name", "").
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	inner := name[i+1 : len(name)-1]
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

func bracketed(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String implements expvar.Var: the JSON snapshot, so a registry can be
// published into the standard /debug/vars page.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "[]"
	}
	return string(b)
}

// Publish registers the registry under name in the process-wide expvar set.
// A second Publish of the same name returns an error instead of inheriting
// the expvar panic — daemons restarted inside one test process (and tests
// that exercise restart paths) must be able to treat the duplicate as a
// no-op failure rather than crash.
func (r *Registry) Publish(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("telemetry: expvar name %q already published", name)
	}
	expvar.Publish(name, r)
	return nil
}

// Serve starts the exposition endpoint on addr in a background goroutine and
// returns the bound listener address (useful with ":0") and a shutdown
// function. The daemons call this behind their -telemetry-addr flag;
// WithPprof additionally mounts /debug/pprof/ on the same mux.
func (r *Registry) Serve(addr string, opts ...ServeOption) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(opts...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
