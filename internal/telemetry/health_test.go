package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestHealthzAlwaysOKReadyzGatesOnChecks(t *testing.T) {
	reg := NewRegistry()
	var ready atomic.Bool
	reg.Health().RegisterCheck("wal", func() error {
		if !ready.Load() {
			return errors.New("wal not open")
		}
		return nil
	})
	reg.Health().RegisterCheck("fleet", func() error { return nil })
	h := reg.Handler()

	get := func(path string) (int, HealthReport) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		var rep HealthReport
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return rec.Code, rep
	}

	// Liveness answers 200 even while unready, with the failing detail.
	code, rep := get("/healthz")
	if code != 200 || rep.Status != "ok" {
		t.Fatalf("healthz = %d %s", code, rep.Status)
	}
	if len(rep.Checks) != 2 || rep.Checks[1].OK || rep.Checks[1].Err == "" {
		t.Fatalf("healthz checks = %+v", rep.Checks)
	}

	code, rep = get("/readyz")
	if code != 503 || rep.Status != "unready" {
		t.Fatalf("readyz before ready = %d %s", code, rep.Status)
	}

	ready.Store(true)
	code, rep = get("/readyz")
	if code != 200 || rep.Status != "ok" {
		t.Fatalf("readyz after ready = %d %s", code, rep.Status)
	}
}

func TestHealthNoChecksIsReady(t *testing.T) {
	h := NewHealth()
	if checks, ok := h.Run(); !ok || len(checks) != 0 {
		t.Fatalf("empty health = %v %v", checks, ok)
	}
}

var publishSeq atomic.Int64

func TestPublishSecondCallReturnsError(t *testing.T) {
	// expvar names are process-global and cannot be unregistered, so mint a
	// fresh one per run (-count reuses the process).
	name := fmt.Sprintf("publish_twice_test_%d", publishSeq.Add(1))
	if err := NewRegistry().Publish(name); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	// A second publish under the same expvar name used to panic inside
	// expvar.Publish; it must surface as an error instead.
	if err := NewRegistry().Publish(name); err == nil {
		t.Fatal("second publish did not error")
	}
}
