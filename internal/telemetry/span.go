package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanRing is the default tracer ring capacity: enough for several
// retrain cycles' worth of spans without unbounded growth.
const DefaultSpanRing = 1024

// SpanID identifies a span; 0 means "no parent" (a root span).
type SpanID uint64

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a finished span as stored in the ring buffer.
type SpanRecord struct {
	ID       SpanID    `json:"id"`
	Parent   SpanID    `json:"parent,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"duration_seconds"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// Span is an in-flight operation. Create with Tracer.StartSpan, finish with
// End; a Span is owned by one goroutine and must not be shared before End.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// ID returns the span's identity, for parenting child spans.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches a key/value attribute (e.g. store ID, run index).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span, records it in the tracer's ring buffer, and returns
// its duration. Safe on a nil span (returns 0) so instrumented code can run
// with tracing disabled.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.tr.record(SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: d.Seconds(),
		Attrs:    s.attrs,
	})
	return d
}

// Tracer hands out spans and keeps the last `cap` finished ones in a ring
// buffer for post-hoc inspection (the /spans endpoint).
type Tracer struct {
	nextID atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	pos  int
	full bool
}

// NewTracer creates a tracer keeping the most recent capacity spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanRecord, capacity)}
}

// StartSpan begins a span under the given parent (0 for a root span).
func (t *Tracer) StartSpan(name string, parent SpanID) *Span {
	return &Span{
		tr:     t,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	t.ring[t.pos] = rec
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Recent returns the buffered finished spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord(nil), t.ring[:t.pos]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.pos:]...)
	out = append(out, t.ring[:t.pos]...)
	return out
}
