package telemetry

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanRing is the default tracer ring capacity: enough for several
// retrain cycles' worth of spans without unbounded growth.
const DefaultSpanRing = 1024

// TraceID identifies one end-to-end request (e.g. one FT-DMP round) across
// every process that touches it; 0 means "untraced". IDs are drawn from a
// per-process random 64-bit base plus a counter, so two nodes minting
// traces independently will not collide in practice.
type TraceID uint64

// SpanID identifies a span; 0 means "no parent" (a root span). Like trace
// IDs, span IDs are offset by a per-tracer random base so spans minted on
// different nodes stay distinct when stitched into one trace.
type SpanID uint64

var (
	traceBase    = rand.Uint64()
	traceCounter atomic.Uint64
)

// NewTraceID mints a process-unique trace identifier (never 0). It is a
// single atomic add over a random base: allocation-free and safe for
// concurrent callers.
func NewTraceID() TraceID {
	id := TraceID(traceBase + traceCounter.Add(1))
	if id == 0 {
		id = TraceID(traceBase + traceCounter.Add(1))
	}
	return id
}

// String renders the trace ID as fixed-width hex, the form used in logs and
// JSON so traces can be grepped across nodes.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// MarshalJSON encodes the trace ID as a hex string (uint64 would lose
// precision in JavaScript consumers).
func (t TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts the hex-string form produced by MarshalJSON.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad trace id %q: %w", s, err)
	}
	*t = TraceID(v)
	return nil
}

// SpanContext is the propagated trace context: which trace an operation
// belongs to and which span is its parent. It is what crosses process
// boundaries in wire.Message envelopes; the zero value means "untraced".
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a trace.
func (tc SpanContext) Valid() bool { return tc.Trace != 0 }

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a finished span as stored in the ring buffer and shipped
// between nodes (it is gob-encodable for MsgSpans).
type SpanRecord struct {
	Trace    TraceID   `json:"trace_id,omitempty"`
	ID       SpanID    `json:"id"`
	Parent   SpanID    `json:"parent,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"duration_seconds"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// AttrValue returns the value of the named attribute ("" if absent).
func (r SpanRecord) AttrValue(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Span is an in-flight operation. Create with Tracer.StartTrace /
// StartSpanIn, finish with End. A Span is owned by one goroutine and must
// not be shared before End; after End it returns to an internal pool and
// must not be touched again.
type Span struct {
	tr     *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// ID returns the span's identity, for parenting child spans.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the trace this span belongs to.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// Context returns the propagation context for children of this span —
// local ones (StartSpanIn) or remote ones (carried in wire envelopes).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// SetAttr attaches a key/value attribute (e.g. store ID, run index).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Event records a point-in-time occurrence on the span — an eviction, a
// retry, a phase transition — as an attribute keyed "event" whose value
// carries the offset since span start, so /traces shows when within the
// operation it happened. Safe on a nil span.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: "event", Value: name + " +" + time.Since(s.start).Round(time.Microsecond).String()})
}

// End finishes the span, records it in the tracer's ring buffer (and trace
// collector, if attached), and returns its duration. Safe on a nil span
// (returns 0) so instrumented code can run with tracing disabled; a second
// End is a no-op.
func (s *Span) End() time.Duration {
	if s == nil || s.tr == nil {
		return 0
	}
	d := time.Since(s.start)
	tr := s.tr
	s.tr = nil // double-End guard: the pool must see each span once
	tr.record(s, d)
	tr.pool.Put(s)
	return d
}

// Tracer hands out spans and keeps the last `cap` finished ones in a ring
// buffer for post-hoc inspection (the /spans endpoint). Spans are pooled,
// and ring slots reuse their attribute storage, so the start/end hot path
// is allocation-free in steady state.
type Tracer struct {
	base   uint64 // random offset making span IDs process-unique
	nextID atomic.Uint64
	pool   sync.Pool

	// collector, when set, receives every finished span that belongs to a
	// trace, so cross-node traces can be assembled (see Collector).
	collector *Collector

	mu   sync.Mutex
	ring []SpanRecord
	pos  int
	full bool
}

// NewTracer creates a tracer keeping the most recent capacity spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{base: rand.Uint64(), ring: make([]SpanRecord, capacity)}
	t.pool.New = func() any { return new(Span) }
	return t
}

// SetCollector attaches a trace collector: every finished span with a
// non-zero TraceID is forwarded to it. Call before tracing starts.
func (t *Tracer) SetCollector(c *Collector) { t.collector = c }

// StartTrace mints a fresh trace and begins its root span.
func (t *Tracer) StartTrace(name string) *Span {
	return t.StartSpanIn(SpanContext{}, name)
}

// StartSpanIn begins a span inside the given trace context — a local child
// when the context came from Span.Context(), a remote child when it was
// carried over the wire. An empty context starts a new trace (so entry
// points can accept a caller's context or stand alone).
func (t *Tracer) StartSpanIn(tc SpanContext, name string) *Span {
	if tc.Trace == 0 {
		tc.Trace = NewTraceID()
		tc.Span = 0
	}
	s := t.pool.Get().(*Span)
	s.tr = t
	s.trace = tc.Trace
	s.id = SpanID(t.base + t.nextID.Add(1))
	s.parent = tc.Span
	s.name = name
	s.attrs = s.attrs[:0]
	s.start = time.Now()
	return s
}

// record writes the finished span into the ring (reusing the slot's
// attribute storage: no allocation in steady state) and forwards a copy to
// the collector.
func (t *Tracer) record(s *Span, d time.Duration) {
	t.mu.Lock()
	slot := &t.ring[t.pos]
	slot.Trace = s.trace
	slot.ID = s.id
	slot.Parent = s.parent
	slot.Name = s.name
	slot.Start = s.start
	slot.Duration = d.Seconds()
	slot.Attrs = append(slot.Attrs[:0], s.attrs...)
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
		t.full = true
	}
	t.mu.Unlock()
	if t.collector != nil && s.trace != 0 {
		t.collector.Add(SpanRecord{
			Trace:    s.trace,
			ID:       s.id,
			Parent:   s.parent,
			Name:     s.name,
			Start:    s.start,
			Duration: d.Seconds(),
			Attrs:    append([]Attr(nil), s.attrs...),
		})
	}
}

// cloneRecord deep-copies a ring slot: slots reuse their Attrs backing
// arrays, so exported records must not alias them.
func cloneRecord(rec SpanRecord) SpanRecord {
	if len(rec.Attrs) > 0 {
		rec.Attrs = append([]Attr(nil), rec.Attrs...)
	} else {
		rec.Attrs = nil
	}
	return rec
}

// Recent returns the buffered finished spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if !t.full {
		out = make([]SpanRecord, 0, t.pos)
		for _, rec := range t.ring[:t.pos] {
			out = append(out, cloneRecord(rec))
		}
		return out
	}
	out = make([]SpanRecord, 0, len(t.ring))
	for _, rec := range t.ring[t.pos:] {
		out = append(out, cloneRecord(rec))
	}
	for _, rec := range t.ring[:t.pos] {
		out = append(out, cloneRecord(rec))
	}
	return out
}

// TraceSpans returns the buffered spans belonging to one trace, oldest
// first — what a PipeStore ships back to the Tuner in a MsgSpans envelope.
func (t *Tracer) TraceSpans(id TraceID) []SpanRecord {
	if id == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	scan := func(recs []SpanRecord) {
		for _, rec := range recs {
			if rec.Trace == id {
				out = append(out, cloneRecord(rec))
			}
		}
	}
	if t.full {
		scan(t.ring[t.pos:])
	}
	scan(t.ring[:t.pos])
	return out
}
