package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Structured logging conventions for the NDPipe processes: every daemon
// logs through log/slog with a shared handler configured once at startup
// (SetupLogging), each subsystem namespaces itself with a `component`
// attribute (ComponentLogger), and anything that happens inside a traced
// operation carries `trace_id`/`span_id` attributes (TraceAttrs), so logs
// correlate with /traces and /metrics on the same identifiers.

// SetupLogging installs the process-wide slog default handler writing to w
// (os.Stderr if nil). level is "debug", "info", "warn" or "error"; jsonOut
// selects JSON lines instead of logfmt-style text. The daemons call this
// from their -log-level / -log-json flags before any other work.
func SetupLogging(w io.Writer, level string, jsonOut bool) error {
	if w == nil {
		w = os.Stderr
	}
	var lvl slog.Level
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// ComponentLogger returns the default logger namespaced with a `component`
// attribute ("tuner", "pipestore", "inferserver", "service", ...).
func ComponentLogger(component string) *slog.Logger {
	return slog.Default().With(slog.String("component", component))
}

// TraceAttrs renders a span context as the conventional trace_id/span_id
// log attributes. An invalid (zero) context yields nothing, so callers can
// pass it through unconditionally:
//
//	logger.Info("round done", telemetry.TraceAttrs(span.Context())...)
func TraceAttrs(tc SpanContext) []any {
	if !tc.Valid() {
		return nil
	}
	return []any{
		slog.String("trace_id", tc.Trace.String()),
		slog.Uint64("span_id", uint64(tc.Span)),
	}
}
