package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// FleetAggregator is the tuner-side half of the fleet observability plane.
// Every PipeStore periodically serializes its private registry into a
// MsgMetrics envelope (piggy-backed on round traffic, like MsgSpans); the
// aggregator keeps the latest snapshot per store and serves the merged
// fleet view at /fleet:
//
//   - per-store series, re-labeled with store="<id>" so one scrape sees the
//     whole fleet without N endpoints;
//   - exact fleet rollups under the recording-rule-style "fleet:" prefix —
//     counters and gauges sum, fixed-bucket histograms merge losslessly by
//     bucket (MergeHistogramSnapshots), so fleet p50/p95/p99 are true
//     quantile merges, not averages of per-store quantiles;
//   - the local registry's own series (the tuner's fleet-level instruments,
//     including ndpipe_straggler{store=...}), verbatim.
//
// Shipments are deduplicated by a per-store sequence number: a snapshot
// whose Seq is not strictly greater than the last accepted one for that
// store is dropped, so retransmits, reordered piggy-backs and concurrent
// shipping cannot double-count or roll a store's view backwards.
type FleetAggregator struct {
	local *Registry // may be nil: fleet-only view

	mu     sync.Mutex
	stores map[string]*storeShipment
}

type storeShipment struct {
	seq    uint64
	at     time.Time
	points []MetricPoint
}

// NewFleetAggregator creates an aggregator whose /fleet view also includes
// the local registry's series (nil means fleet shipments only).
func NewFleetAggregator(local *Registry) *FleetAggregator {
	return &FleetAggregator{local: local, stores: make(map[string]*storeShipment)}
}

// Ship installs one store's registry snapshot. It reports whether the
// shipment was accepted: stale or duplicate sequence numbers (retransmits,
// reordering) are dropped so the per-store view is monotone.
func (a *FleetAggregator) Ship(store string, seq uint64, points []MetricPoint) bool {
	if store == "" || len(points) == 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	prev := a.stores[store]
	if prev != nil && seq <= prev.seq {
		return false
	}
	a.stores[store] = &storeShipment{seq: seq, at: time.Now(), points: points}
	return true
}

// Stores returns the IDs of every store that has shipped metrics, sorted.
func (a *FleetAggregator) Stores() []string {
	a.mu.Lock()
	ids := make([]string, 0, len(a.stores))
	for id := range a.stores {
		ids = append(ids, id)
	}
	a.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// FleetSeries is one logical instrument merged across the fleet.
type FleetSeries struct {
	Name   string                 `json:"name"` // original (store-less) name
	Kind   string                 `json:"kind"`
	Fleet  MetricPoint            `json:"fleet"`  // exact rollup over all stores
	Stores map[string]MetricPoint `json:"stores"` // per-store latest values
}

// FleetSnapshot is the merged fleet view: every shipped series rolled up,
// plus which stores contributed.
type FleetSnapshot struct {
	Stores []string      `json:"stores"`
	Series []FleetSeries `json:"series"`
	Local  []MetricPoint `json:"local,omitempty"`
}

// Snapshot merges the latest shipment of every store into the fleet view.
func (a *FleetAggregator) Snapshot() FleetSnapshot {
	a.mu.Lock()
	type shipped struct {
		id  string
		pts []MetricPoint
	}
	ships := make([]shipped, 0, len(a.stores))
	for id, sh := range a.stores {
		ships = append(ships, shipped{id: id, pts: sh.points})
	}
	a.mu.Unlock()
	sort.Slice(ships, func(i, j int) bool { return ships[i].id < ships[j].id })

	byName := make(map[string]*FleetSeries)
	var order []string
	for _, sh := range ships {
		for _, p := range sh.pts {
			// Real per-store instruments embed their owner's ID as a
			// store label; strip it so fleet-mates group under the
			// store-less name (the shipment itself is the identity —
			// exposition re-injects it via WithStoreLabel).
			p.Name = StripStoreLabel(p.Name)
			s := byName[p.Name]
			if s == nil {
				s = &FleetSeries{Name: p.Name, Kind: p.Kind, Stores: make(map[string]MetricPoint)}
				byName[p.Name] = s
				order = append(order, p.Name)
			}
			s.Stores[sh.id] = p
		}
	}
	sort.Strings(order)

	snap := FleetSnapshot{Series: make([]FleetSeries, 0, len(order))}
	for _, sh := range ships {
		snap.Stores = append(snap.Stores, sh.id)
	}
	for _, name := range order {
		s := byName[name]
		s.Fleet = mergePoints(name, s.Kind, s.Stores)
		snap.Series = append(snap.Series, *s)
	}
	if a.local != nil {
		snap.Local = a.local.Snapshot()
	}
	return snap
}

// mergePoints computes the exact rollup of one series over all stores:
// counters and gauges sum (the only rollup that is exact without
// assumptions), histograms merge bucket-by-bucket.
func mergePoints(name, kind string, stores map[string]MetricPoint) MetricPoint {
	out := MetricPoint{Name: name, Kind: kind}
	if kind == "histogram" {
		snaps := make([]HistogramSnapshot, 0, len(stores))
		// Deterministic order so the merged Sum (float addition) is stable.
		ids := make([]string, 0, len(stores))
		for id := range stores {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if h := stores[id].Hist; h != nil {
				snaps = append(snaps, *h)
			}
		}
		merged := MergeHistogramSnapshots(snaps...)
		out.Hist = &merged
		return out
	}
	for _, p := range stores {
		out.Value += p.Value
	}
	return out
}

// WithStoreLabel injects store="id" as the first label of a metric name,
// e.g. `wire_send_total{type="features"}` → `wire_send_total{store="ps-0",
// type="features"}`. A name that already carries a store label is returned
// unchanged. Exposition-time only, never on the hot path.
func WithStoreLabel(name, store string) string {
	base, labels := splitLabels(name)
	if strings.Contains(labels, `store="`) {
		return name
	}
	if labels == "" {
		return fmt.Sprintf("%s{store=%q}", base, store)
	}
	return fmt.Sprintf("%s{store=%q,%s}", base, store, strings.TrimSuffix(labels, ","))
}

// StripStoreLabel removes a store="..." label from a metric name. Shipped
// series that already embed their owner's ID (the per-store instruments)
// must group with their fleet-mates under the store-less name; the store
// identity of a shipment is authoritative and exposition re-injects it.
// Label values in this codebase never contain commas.
func StripStoreLabel(name string) string {
	base, labels := splitLabels(name)
	if labels == "" || !strings.Contains(labels, `store="`) {
		return name
	}
	parts := strings.Split(strings.TrimSuffix(labels, ","), ",")
	kept := parts[:0]
	for _, p := range parts {
		if strings.HasPrefix(p, `store="`) {
			continue
		}
		kept = append(kept, p)
	}
	if len(kept) == 0 {
		return base
	}
	return base + "{" + strings.Join(kept, ",") + "}"
}

// ServeHTTP renders the fleet view: Prometheus text by default (per-store
// series with the store label injected, exact rollups under the "fleet:"
// recording-rule prefix, then the local registry verbatim), or structured
// JSON with ?format=json.
func (a *FleetAggregator) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	snap := a.Snapshot()
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(jsonSafeFleet(snap))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, s := range snap.Series {
		pts := make([]MetricPoint, 0, len(s.Stores))
		ids := make([]string, 0, len(s.Stores))
		for id := range s.Stores {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			p := s.Stores[id]
			p.Name = WithStoreLabel(p.Name, id)
			pts = append(pts, p)
		}
		fleet := s.Fleet
		fleet.Name = "fleet:" + fleet.Name
		pts = append(pts, fleet)
		WriteMetricsText(w, pts)
	}
	WriteMetricsText(w, snap.Local)
}

// jsonSafeFleet deep-copies a fleet snapshot with non-finite bucket bounds
// replaced (encoding/json cannot represent +Inf): the overflow bucket's
// upper bound becomes MaxFloat64, which consumers can treat as "rest".
func jsonSafeFleet(snap FleetSnapshot) FleetSnapshot {
	fix := func(p MetricPoint) MetricPoint {
		if p.Hist == nil {
			return p
		}
		h := *p.Hist
		h.Buckets = append([]BucketCount(nil), h.Buckets...)
		for i := range h.Buckets {
			if math.IsInf(h.Buckets[i].UpperBound, 1) {
				h.Buckets[i].UpperBound = math.MaxFloat64
			}
		}
		p.Hist = &h
		return p
	}
	out := snap
	out.Series = make([]FleetSeries, len(snap.Series))
	for i, s := range snap.Series {
		ns := s
		ns.Fleet = fix(s.Fleet)
		ns.Stores = make(map[string]MetricPoint, len(s.Stores))
		for id, p := range s.Stores {
			ns.Stores[id] = fix(p)
		}
		out.Series[i] = ns
	}
	out.Local = make([]MetricPoint, len(snap.Local))
	for i, p := range snap.Local {
		out.Local[i] = fix(p)
	}
	return out
}

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of xs around its median — the
// robust spread estimator straggler detection uses: unlike the standard
// deviation, one extreme straggler cannot inflate it and mask itself.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// DefaultStragglerK is the default deviation multiplier: a store is a
// straggler when its latency exceeds median + K·MAD. 3 is the conventional
// robust-outlier cutoff (≈2σ for normal data, scaled by the MAD/σ factor).
const DefaultStragglerK = 3.0

// FlagStragglers applies the median+MAD rule to one phase's per-store
// latencies and returns the straggling store IDs, sorted. k ≤ 0 selects
// DefaultStragglerK. To stay meaningful on tight fleets the deviation floor
// is max(MAD, 10% of median, 1ms): with MAD ≈ 0 (every store identical) a
// microsecond of jitter must not flag half the fleet.
func FlagStragglers(latencies map[string]float64, k float64) []string {
	if len(latencies) < 3 {
		return nil // no meaningful fleet median below 3 stores
	}
	if k <= 0 {
		k = DefaultStragglerK
	}
	xs := make([]float64, 0, len(latencies))
	for _, v := range latencies {
		xs = append(xs, v)
	}
	med := Median(xs)
	dev := MAD(xs)
	if floor := med * 0.10; dev < floor {
		dev = floor
	}
	if dev < 1e-3 {
		dev = 1e-3
	}
	cut := med + k*dev
	var out []string
	for id, v := range latencies {
		if v > cut {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
