package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestSetupLoggingLevelsAndFormats(t *testing.T) {
	defer slog.SetDefault(slog.Default())

	var buf bytes.Buffer
	if err := SetupLogging(&buf, "warn", false); err != nil {
		t.Fatal(err)
	}
	slog.Info("hidden")
	slog.Warn("shown")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("warn level filtering broken:\n%s", out)
	}

	buf.Reset()
	if err := SetupLogging(&buf, "info", true); err != nil {
		t.Fatal(err)
	}
	ComponentLogger("tuner").Info("round", slog.Int("n", 3))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON mode emitted non-JSON: %v\n%s", err, buf.String())
	}
	if rec["component"] != "tuner" || rec["msg"] != "round" || rec["n"] != float64(3) {
		t.Fatalf("record = %v", rec)
	}

	if err := SetupLogging(&buf, "shout", false); err == nil {
		t.Fatal("unknown level must be rejected")
	}
}

func TestTraceAttrs(t *testing.T) {
	if got := TraceAttrs(SpanContext{}); got != nil {
		t.Fatalf("invalid context attrs = %v, want nil", got)
	}
	tc := SpanContext{Trace: 0xab, Span: 7}
	defer slog.SetDefault(slog.Default())
	var buf bytes.Buffer
	if err := SetupLogging(&buf, "info", true); err != nil {
		t.Fatal(err)
	}
	slog.Default().With(TraceAttrs(tc)...).Info("x")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != "00000000000000ab" || rec["span_id"] != float64(7) {
		t.Fatalf("record = %v", rec)
	}
}
