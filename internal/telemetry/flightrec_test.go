package telemetry

import (
	"testing"
)

func TestFlightRecorderRingBoundedOldestFirst(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := int64(1); i <= 6; i++ {
		f.Record(FlightRoundStart, "t", "", i, 0)
	}
	evs := f.Events()
	if len(evs) != 4 || f.Len() != 4 {
		t.Fatalf("len = %d/%d, want 4", len(evs), f.Len())
	}
	for i, ev := range evs {
		if want := int64(3 + i); ev.V1 != want {
			t.Fatalf("event %d has v1=%d, want %d (oldest first)", i, ev.V1, want)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq not monotone: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestFlightDumpParseRoundtrip(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Record(FlightRoundStart, "tuner", "", 1, 3)
	f.Record(FlightStraggler, "tuner", "ps-2", 1, 0)
	data, err := f.Dump("tuner", "manual")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ParseFlightDump(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Component != "tuner" || rec.Reason != "manual" {
		t.Fatalf("header = %+v", rec)
	}
	// The dump records itself as the final event.
	if n := len(rec.Events); n != 3 || rec.Events[n-1].Kind != FlightDump {
		t.Fatalf("events = %+v", rec.Events)
	}
	if rec.Events[1].Kind != FlightStraggler || rec.Events[1].Code != "ps-2" {
		t.Fatalf("straggler event = %+v", rec.Events[1])
	}
}

// Recording must never allocate: the ring sits on round and request hot
// paths, and a black box that creates GC pressure perturbs what it records.
func TestFlightRecordAllocationFree(t *testing.T) {
	f := NewFlightRecorder(64)
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(FlightRetry, "tuner", "ps-0", 2, 0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestRegistryFlightRecorderWired(t *testing.T) {
	reg := NewRegistry()
	if reg.Flight() == nil {
		t.Fatal("registry has no flight recorder")
	}
	reg.Flight().Record(FlightPersist, "test", "wal", 128, 0)
	if reg.Flight().Len() != 1 {
		t.Fatal("event not recorded")
	}
}
