package telemetry

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// instrumentRegistrations scans every non-test .go file in the repository
// for Counter/Gauge/Histogram/HistogramBuckets registrations and returns the
// literal metric names used (base name only; Labeled() label keys are
// validated in place). Names built entirely at runtime can't be linted and
// don't occur in this codebase.
func instrumentRegistrations(t *testing.T, root string) map[string][]string {
	t.Helper()
	found := make(map[string][]string) // name -> files registering it
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram", "HistogramBuckets":
			default:
				return true
			}
			// The name argument is either a string literal, a Labeled(name,
			// key, value) call, or a thin wrapper like lbl(name); in every
			// form the first string literal reached is the base name.
			if name, labelKeys := firstMetricLiteral(call.Args[0]); name != "" {
				found[name] = append(found[name], rel)
				for _, k := range labelKeys {
					if !promLabelName.MatchString(k) {
						t.Errorf("%s: label %q on metric %q is not a valid Prometheus label name", rel, k, name)
					}
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return found
}

// firstMetricLiteral digs the base metric name out of a registration
// argument. For telemetry.Labeled("name", "key", value) calls it also
// returns the literal label keys (arguments 1, 3, ... when literal).
func firstMetricLiteral(e ast.Expr) (name string, labelKeys []string) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			s, err := strconv.Unquote(v.Value)
			if err == nil {
				return s, nil
			}
		}
	case *ast.CallExpr:
		isLabeled := false
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Labeled" {
			isLabeled = true
		}
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "Labeled" {
			isLabeled = true
		}
		for i, arg := range v.Args {
			lit, ok := arg.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				continue
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				continue
			}
			if i == 0 {
				name = s
			} else if isLabeled && i%2 == 1 {
				labelKeys = append(labelKeys, s)
			}
		}
	}
	return name, labelKeys
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test dir")
		}
		dir = parent
	}
}

// Every instrument the codebase registers must have a valid Prometheus name
// and a row in README.md's metric table — the scrape surface is part of the
// public interface, and an undocumented metric is a silent one.
func TestMetricNamesLintedAndDocumented(t *testing.T) {
	root := repoRoot(t)
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)

	regs := instrumentRegistrations(t, root)
	if len(regs) < 40 {
		t.Fatalf("scan found only %d instrument registrations — the scanner is broken", len(regs))
	}
	names := make([]string, 0, len(regs))
	for name := range regs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !promMetricName.MatchString(base) {
			t.Errorf("metric %q (registered in %v) is not a valid Prometheus metric name", name, regs[name])
		}
		if !strings.Contains(doc, base) {
			t.Errorf("metric %q (registered in %v) is missing from the README metric table", base, regs[name])
		}
	}
}
