// Package telemetry is the observability subsystem of the NDPipe prototype:
// a stdlib-only metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms with p50/p95/p99 summaries), lightweight trace spans
// with a bounded in-memory ring buffer, and text exposition over net/http
// (Prometheus-style /metrics and JSON /spans).
//
// The hot path is allocation-free: Counter.Add, Gauge.Set and
// Histogram.Observe are single atomic operations (plus a bounded bucket
// search), so instrumentation can stay always-on in the wire codec, the NPE
// pipeline and the upload path. BenchmarkTelemetryOverhead enforces the
// <100ns/op, 0 allocs/op budget.
//
// Callers register instruments once (registration locks and allocates) and
// keep the returned pointer for the hot path. The package-level Default
// registry is what the prototype's packages (wire, npe, pipestore, tuner,
// inferserver, service) instrument into, and what the daemons expose behind
// their -telemetry-addr flag.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (utilization, lag, queue depth).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (lock-free CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds named instruments. Registration (Counter/Gauge/Histogram)
// locks and may allocate; the returned instruments are lock-free. Names are
// Prometheus-style and may carry a label suffix, e.g.
// `wire_send_total{type="features"}`.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    *Tracer
	traces   *Collector
	flight   *FlightRecorder
	health   *Health
}

// NewRegistry creates an empty registry with a span tracer of the default
// ring capacity, wired to a trace collector so every traced span the
// process finishes is available for cross-node assembly (/traces).
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    NewTracer(DefaultSpanRing),
		traces:   NewCollector(0, 0),
		flight:   NewFlightRecorder(DefaultFlightRing),
		health:   NewHealth(),
	}
	r.spans.SetCollector(r.traces)
	return r
}

// Default is the process-wide registry the NDPipe packages instrument into.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on first
// use. Safe for concurrent callers; idempotent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the default latency buckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets returns the histogram registered under name, creating it
// with the given upper bounds (nil means DefaultLatencyBuckets). Bounds are
// only applied on first registration.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Spans returns the registry's span tracer.
func (r *Registry) Spans() *Tracer { return r.spans }

// Traces returns the registry's trace collector — the sink for both local
// spans (fed by the tracer) and remote spans shipped over the wire.
func (r *Registry) Traces() *Collector { return r.traces }

// Flight returns the registry's flight recorder — the bounded black box of
// structured events served at /flightrec and dumped on panic/SIGQUIT.
func (r *Registry) Flight() *FlightRecorder { return r.flight }

// Health returns the registry's component health set (the /healthz and
// /readyz checks).
func (r *Registry) Health() *Health { return r.health }

// MetricPoint is one exported metric sample.
type MetricPoint struct {
	Name  string             `json:"name"`
	Kind  string             `json:"kind"` // "counter" | "gauge" | "histogram"
	Value float64            `json:"value,omitempty"`
	Hist  *HistogramSnapshot `json:"hist,omitempty"`
}

// Snapshot returns every registered instrument's current value, sorted by
// name — the expvar-compatible view (see Publish) and the source for both
// exposition formats.
func (r *Registry) Snapshot() []MetricPoint {
	return r.snapshot(false)
}

// SnapshotDense is Snapshot with dense histogram buckets (zero-count
// buckets included), the form a node serializes into a MsgMetrics envelope:
// the full bucket layout is what lets the fleet aggregator merge histograms
// losslessly (see MergeHistogramSnapshots).
func (r *Registry) SnapshotDense() []MetricPoint {
	return r.snapshot(true)
}

func (r *Registry) snapshot(dense bool) []MetricPoint {
	r.mu.RLock()
	pts := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		pts = append(pts, MetricPoint{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		pts = append(pts, MetricPoint{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		var snap HistogramSnapshot
		if dense {
			snap = h.DenseSnapshot()
		} else {
			snap = h.Snapshot()
		}
		pts = append(pts, MetricPoint{Name: name, Kind: "histogram", Hist: &snap})
	}
	r.mu.RUnlock()
	sort.Slice(pts, func(i, j int) bool { return pts[i].Name < pts[j].Name })
	return pts
}

// Labeled formats a metric name with one label, e.g.
// Labeled("wire_send_total", "type", "features") →
// `wire_send_total{type="features"}`. Call at registration time, not on the
// hot path.
func Labeled(name, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}
