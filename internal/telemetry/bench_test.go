package telemetry

import "testing"

// BenchmarkTelemetryOverhead enforces the always-on instrumentation budget:
// a counter increment and a histogram observation must each cost <100ns/op
// with 0 allocs/op, so the wire codec and the NPE pipeline can stay
// instrumented in production.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("CounterInc", func(b *testing.B) {
		c := NewRegistry().Counter("bench_total")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		h := NewHistogram(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.0031) // mid-range bucket: realistic I/O latency
		}
	})
	b.Run("GaugeSet", func(b *testing.B) {
		g := NewRegistry().Gauge("bench_gauge")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("SpanStartEnd", func(b *testing.B) {
		// A standalone tracer (no collector) isolates the span hot path:
		// pooled span + ring-slot reuse must keep it at 0 allocs/op.
		tr := NewTracer(256)
		tc := tr.StartTrace("bench-root").Context()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.StartSpanIn(tc, "bench-span").End()
		}
	})
}
