package telemetry

import (
	"testing"
	"time"
)

func TestSpanParentAndAttrs(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartSpan("retrain", 0)
	child := tr.StartSpan("finetune", root.ID())
	child.SetAttr("run", "0")
	time.Sleep(time.Millisecond)
	if d := child.End(); d <= 0 {
		t.Fatalf("child duration = %v, want > 0", d)
	}
	root.End()

	recs := tr.Recent()
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	if recs[0].Name != "finetune" || recs[1].Name != "retrain" {
		t.Fatalf("order = %s, %s; want finetune then retrain", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].ID {
		t.Fatalf("child parent = %d, want root ID %d", recs[0].Parent, recs[1].ID)
	}
	if len(recs[0].Attrs) != 1 || recs[0].Attrs[0].Key != "run" {
		t.Fatalf("child attrs = %+v", recs[0].Attrs)
	}
	if recs[0].Duration < 0.001 {
		t.Fatalf("child duration = %v, want ≥ 1ms", recs[0].Duration)
	}
}

func TestSpanRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.StartSpan("s", 0).End()
	}
	recs := tr.Recent()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	// Oldest first: IDs 7,8,9,10.
	for i, want := range []SpanID{7, 8, 9, 10} {
		if recs[i].ID != want {
			t.Fatalf("recs[%d].ID = %d, want %d", i, recs[i].ID, want)
		}
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	if s.End() != 0 {
		t.Fatal("nil span End should return 0")
	}
	if s.ID() != 0 {
		t.Fatal("nil span ID should be 0")
	}
}
