package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSpanParentAndAttrs(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartTrace("retrain")
	child := tr.StartSpanIn(root.Context(), "finetune")
	child.SetAttr("run", "0")
	time.Sleep(time.Millisecond)
	if d := child.End(); d <= 0 {
		t.Fatalf("child duration = %v, want > 0", d)
	}
	root.End()

	recs := tr.Recent()
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	if recs[0].Name != "finetune" || recs[1].Name != "retrain" {
		t.Fatalf("order = %s, %s; want finetune then retrain", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].ID {
		t.Fatalf("child parent = %d, want root ID %d", recs[0].Parent, recs[1].ID)
	}
	if recs[0].Trace == 0 || recs[0].Trace != recs[1].Trace {
		t.Fatalf("trace IDs = %v, %v; want equal and non-zero", recs[0].Trace, recs[1].Trace)
	}
	if len(recs[0].Attrs) != 1 || recs[0].Attrs[0].Key != "run" {
		t.Fatalf("child attrs = %+v", recs[0].Attrs)
	}
	if recs[0].Duration < 0.001 {
		t.Fatalf("child duration = %v, want ≥ 1ms", recs[0].Duration)
	}
}

func TestSpanRingBounded(t *testing.T) {
	tr := NewTracer(4)
	var ids []SpanID
	for i := 0; i < 10; i++ {
		sp := tr.StartTrace("s")
		ids = append(ids, sp.ID())
		sp.End()
	}
	recs := tr.Recent()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	// Oldest first: the last four spans started, in start order.
	for i, want := range ids[6:] {
		if recs[i].ID != want {
			t.Fatalf("recs[%d].ID = %d, want %d", i, recs[i].ID, want)
		}
	}
}

func TestSpanIDsUniqueAcrossTracers(t *testing.T) {
	// Two tracers stand in for two processes: their randomized ID bases
	// must keep span IDs distinct so cross-node traces never collide.
	a, b := NewTracer(8), NewTracer(8)
	seen := map[SpanID]bool{}
	for i := 0; i < 8; i++ {
		for _, tr := range []*Tracer{a, b} {
			sp := tr.StartTrace("s")
			if sp.ID() == 0 || seen[sp.ID()] {
				t.Fatalf("span ID %d zero or duplicated", sp.ID())
			}
			seen[sp.ID()] = true
			sp.End()
		}
	}
}

func TestStartSpanInRemoteParent(t *testing.T) {
	// A remote parent context (as decoded from a wire.Message) must be
	// honoured verbatim: same trace, parent = the remote span ID.
	tr := NewTracer(8)
	remote := SpanContext{Trace: NewTraceID(), Span: 42}
	sp := tr.StartSpanIn(remote, "pipestore.extract")
	sp.End()
	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("got %d spans, want 1", len(recs))
	}
	if recs[0].Trace != remote.Trace || recs[0].Parent != remote.Span {
		t.Fatalf("span = trace %v parent %d, want trace %v parent 42",
			recs[0].Trace, recs[0].Parent, remote.Trace)
	}
}

func TestStartSpanInEmptyContextMintsTrace(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.StartSpanIn(SpanContext{}, "untraced-peer")
	if !sp.Context().Valid() {
		t.Fatal("span from empty context should mint a fresh trace")
	}
	sp.End()
	recs := tr.Recent()
	if recs[0].Trace == 0 || recs[0].Parent != 0 {
		t.Fatalf("span = trace %v parent %d, want fresh trace with no parent",
			recs[0].Trace, recs[0].Parent)
	}
}

func TestTraceSpansFilters(t *testing.T) {
	tr := NewTracer(16)
	a := tr.StartTrace("a")
	// Capture identities before End: an ended span returns to the pool and
	// may be reused (and rewritten) by the next StartTrace.
	aID := a.TraceID()
	tr.StartSpanIn(a.Context(), "a-child").End()
	a.End()
	b := tr.StartTrace("b")
	bID := b.TraceID()
	b.End()

	got := tr.TraceSpans(aID)
	if len(got) != 2 {
		t.Fatalf("trace a has %d spans, want 2", len(got))
	}
	for _, r := range got {
		if r.Trace != aID {
			t.Fatalf("span %s leaked from another trace", r.Name)
		}
	}
	if got := tr.TraceSpans(bID); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("trace b spans = %+v", got)
	}
}

func TestTraceIDString(t *testing.T) {
	if s := TraceID(0xabc).String(); s != "0000000000000abc" {
		t.Fatalf("TraceID string = %q", s)
	}
	var id TraceID
	if err := id.UnmarshalJSON([]byte(`"0000000000000abc"`)); err != nil || id != 0xabc {
		t.Fatalf("unmarshal = %v, %v", id, err)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	if s.End() != 0 {
		t.Fatal("nil span End should return 0")
	}
	if s.ID() != 0 {
		t.Fatal("nil span ID should be 0")
	}
	if s.Context().Valid() {
		t.Fatal("nil span context should be invalid")
	}
	// Double End must be harmless (the span is pooled).
	tr := NewTracer(4)
	sp := tr.StartTrace("once")
	sp.End()
	sp.End()
}

func TestSpanEvent(t *testing.T) {
	tr := NewTracer(4)
	s := tr.StartTrace("round")
	s.Event("evicted ps-1")
	s.End()
	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	v := recs[0].AttrValue("event")
	if !strings.HasPrefix(v, "evicted ps-1 +") {
		t.Fatalf("event attr = %q, want prefix %q", v, "evicted ps-1 +")
	}
	// Nil spans swallow events like they swallow attrs.
	var nilSpan *Span
	nilSpan.Event("nothing")
}
