//go:build unix

package telemetry

import "syscall"

// processCPUSeconds returns total (user + system) CPU time consumed by the
// process, via getrusage(RUSAGE_SELF).
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvSeconds(ru.Utime) + tvSeconds(ru.Stime)
}

func tvSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}
