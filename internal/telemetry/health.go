package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Health is the per-process component health set behind /healthz and
// /readyz. Components register named checks (WAL open, fleet connected,
// gateway accepting); /healthz reports process liveness (always 200 while
// the process can serve HTTP, with per-check detail), /readyz gates on
// every check passing (503 otherwise) so an orchestrator can hold traffic
// until the daemon is actually serving.
type Health struct {
	mu     sync.Mutex
	order  []string
	checks map[string]func() error
	start  time.Time
	role   func() (string, int64) // optional HA role/lag provider
}

// NewHealth creates an empty health set.
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error), start: time.Now()}
}

// RegisterCheck installs (or replaces) a named readiness check. fn must be
// safe for concurrent callers and cheap — it runs on every /readyz scrape.
func (h *Health) RegisterCheck(name string, fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.checks[name]; !dup {
		h.order = append(h.order, name)
	}
	h.checks[name] = fn
}

// CheckResult is one check's outcome.
type CheckResult struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
}

// HealthReport is the JSON body of /healthz and /readyz. Role and
// LagFrames appear only on HA-aware daemons (SetRole): a standby answers
// /readyz with 503 and {"role":"standby","lag_frames":N} so orchestrators
// and load balancers route around it until it takes over.
type HealthReport struct {
	Status        string        `json:"status"` // "ok" | "unready"
	UptimeSeconds float64       `json:"uptime_seconds"`
	Role          string        `json:"role,omitempty"` // "leader" | "standby"
	LagFrames     *int64        `json:"lag_frames,omitempty"`
	Checks        []CheckResult `json:"checks,omitempty"`
}

// SetRole installs the HA role provider: fn returns the daemon's current
// role ("leader" or "standby") and, for a standby, how many shipped WAL
// frames it has heard of but not yet applied. Both land in the /healthz
// and /readyz bodies.
func (h *Health) SetRole(fn func() (role string, lagFrames int64)) {
	h.mu.Lock()
	h.role = fn
	h.mu.Unlock()
}

// roleInfo snapshots the role provider's view (nil lag when no provider).
func (h *Health) roleInfo() (string, *int64) {
	h.mu.Lock()
	fn := h.role
	h.mu.Unlock()
	if fn == nil {
		return "", nil
	}
	role, lag := fn()
	return role, &lag
}

// Run executes every check and reports the results (sorted by name) and
// whether all passed.
func (h *Health) Run() ([]CheckResult, bool) {
	h.mu.Lock()
	names := append([]string(nil), h.order...)
	fns := make([]func() error, len(names))
	for i, n := range names {
		fns[i] = h.checks[n]
	}
	h.mu.Unlock()
	out := make([]CheckResult, len(names))
	ok := true
	for i, n := range names {
		r := CheckResult{Name: n, OK: true}
		if err := fns[i](); err != nil {
			r.OK = false
			r.Err = err.Error()
			ok = false
		}
		out[i] = r
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, ok
}

// serveHealthz implements /healthz: liveness. Answering at all is the
// signal; the body carries the check detail for humans.
func (h *Health) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	checks, _ := h.Run()
	h.mu.Lock()
	up := time.Since(h.start).Seconds()
	h.mu.Unlock()
	role, lag := h.roleInfo()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(HealthReport{Status: "ok", UptimeSeconds: up,
		Role: role, LagFrames: lag, Checks: checks})
}

// serveReadyz implements /readyz: 200 only when every registered check
// passes, 503 with the failing checks otherwise.
func (h *Health) serveReadyz(w http.ResponseWriter, _ *http.Request) {
	checks, ok := h.Run()
	h.mu.Lock()
	up := time.Since(h.start).Seconds()
	h.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if !ok {
		status = "unready"
		code = http.StatusServiceUnavailable
	}
	role, lag := h.roleInfo()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(HealthReport{Status: status, UptimeSeconds: up,
		Role: role, LagFrames: lag, Checks: checks})
}
