//go:build !unix

package telemetry

// processCPUSeconds is unavailable off unix; resource deltas then carry
// allocation counters only.
func processCPUSeconds() float64 { return 0 }
