package telemetry

import (
	"math"
	"sync/atomic"
)

// DefaultLatencyBuckets spans 1µs…100s in roughly ×3 steps — wide enough to
// cover both a single atomic op on the wire hot path and a multi-minute
// fine-tune round without reconfiguration. Values are seconds.
var DefaultLatencyBuckets = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
	1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
	1, 3, 10, 30, 100,
}

// Histogram is a fixed-bucket histogram with atomic, allocation-free
// observation. Bucket i counts observations ≤ bounds[i]; one overflow bucket
// counts the rest. The observed sum is kept as CAS-updated float bits so
// mean latency is exact, not bucket-approximated.
type Histogram struct {
	bounds  []float64 // sorted upper bounds
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram creates a histogram with the given upper bounds (nil means
// DefaultLatencyBuckets). Bounds must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. Allocation-free; the bucket search is a
// bounded linear scan (≤ len(bounds) comparisons — faster than binary search
// at these sizes because latencies cluster in the low buckets).
//
// Non-finite samples are rejected: a single NaN would poison the
// CAS-updated running sum forever (NaN+x is NaN), and ±Inf would saturate
// it, so neither may enter.
func (h *Histogram) Observe(v float64) {
	if v != v || v > math.MaxFloat64 || v < -math.MaxFloat64 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket. Returns 0 with no observations; the overflow
// bucket reports its lower bound (the largest configured bound).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCount is one exported histogram bucket.
type BucketCount struct {
	UpperBound float64 `json:"le"` // +Inf for the overflow bucket
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a consistent-enough point-in-time view (buckets are
// read individually; a concurrent Observe may straddle the read).
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot exports counts, sum and the p50/p95/p99 summaries.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		P50:     h.Quantile(0.50),
		P95:     h.Quantile(0.95),
		P99:     h.Quantile(0.99),
		Buckets: make([]BucketCount, 0, len(h.counts)),
	}
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Count: n})
		}
	}
	return s
}
