package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBuckets spans 1µs…100s in roughly ×3 steps — wide enough to
// cover both a single atomic op on the wire hot path and a multi-minute
// fine-tune round without reconfiguration. Values are seconds.
var DefaultLatencyBuckets = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
	1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
	1, 3, 10, 30, 100,
}

// Histogram is a fixed-bucket histogram with atomic, allocation-free
// observation. Bucket i counts observations ≤ bounds[i]; one overflow bucket
// counts the rest. The observed sum is kept as CAS-updated float bits so
// mean latency is exact, not bucket-approximated.
type Histogram struct {
	bounds  []float64 // sorted upper bounds
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram creates a histogram with the given upper bounds (nil means
// DefaultLatencyBuckets). Bounds must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. Allocation-free; the bucket search is a
// bounded linear scan (≤ len(bounds) comparisons — faster than binary search
// at these sizes because latencies cluster in the low buckets).
//
// Non-finite samples are rejected: a single NaN would poison the
// CAS-updated running sum forever (NaN+x is NaN), and ±Inf would saturate
// it, so neither may enter.
func (h *Histogram) Observe(v float64) {
	if v != v || v > math.MaxFloat64 || v < -math.MaxFloat64 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket. Returns 0 with no observations; the overflow
// bucket reports its lower bound (the largest configured bound).
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return quantileOver(counts, h.bounds, h.count.Load(), q)
}

// quantileOver is the one quantile algorithm, shared by live histograms and
// merged fleet snapshots so that a fleet-level quantile computed from merged
// bucket counts is bitwise-identical to what a single histogram observing
// the union would report. counts has len(bounds)+1 entries (the last is the
// overflow bucket).
func quantileOver(counts []uint64, bounds []float64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range counts {
		n := float64(counts[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}

// BucketCount is one exported histogram bucket.
type BucketCount struct {
	UpperBound float64 `json:"le"` // +Inf for the overflow bucket
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a consistent-enough point-in-time view (buckets are
// read individually; a concurrent Observe may straddle the read).
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot exports counts, sum and the p50/p95/p99 summaries. Zero-count
// buckets are elided (the compact /metrics view).
func (h *Histogram) Snapshot() HistogramSnapshot {
	return h.snapshot(false)
}

// DenseSnapshot is Snapshot with every bucket present, including zero-count
// ones. The dense form carries the full bucket layout, which is what makes
// cross-node merging lossless: MergeHistogramSnapshots aligns buckets by
// upper bound, and a missing (elided) bucket would shift the interpolation
// base of the bucket above it. This is the form shipped in MsgMetrics.
func (h *Histogram) DenseSnapshot() HistogramSnapshot {
	return h.snapshot(true)
}

func (h *Histogram) snapshot(dense bool) HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		P50:     h.Quantile(0.50),
		P95:     h.Quantile(0.95),
		P99:     h.Quantile(0.99),
		Buckets: make([]BucketCount, 0, len(h.counts)),
	}
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		if n := h.counts[i].Load(); n > 0 || dense {
			s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Count: n})
		}
	}
	return s
}

// MergeHistogramSnapshots merges per-node snapshots of the same logical
// histogram into one fleet-level snapshot. Buckets are aligned by upper
// bound (the union of all bounds seen) and their integer counts summed, so
// the merge is lossless: the merged quantiles are computed by quantileOver
// on exactly the counts a single histogram observing every node's samples
// would hold — a true quantile merge, not an average of quantiles.
//
// Snapshots should be dense (DenseSnapshot); sparse ones still merge, but a
// bucket layout that elides everything below the first sample degrades the
// interpolation lower bound exactly as it does in a standalone sparse view.
func MergeHistogramSnapshots(snaps ...HistogramSnapshot) HistogramSnapshot {
	boundSet := make(map[float64]struct{})
	for _, s := range snaps {
		for _, b := range s.Buckets {
			if !math.IsInf(b.UpperBound, 1) {
				boundSet[b.UpperBound] = struct{}{}
			}
		}
	}
	bounds := make([]float64, 0, len(boundSet))
	for ub := range boundSet {
		bounds = append(bounds, ub)
	}
	sort.Float64s(bounds)
	idx := make(map[float64]int, len(bounds))
	for i, ub := range bounds {
		idx[ub] = i
	}
	counts := make([]uint64, len(bounds)+1) // +1: overflow
	out := HistogramSnapshot{}
	for _, s := range snaps {
		out.Count += s.Count
		out.Sum += s.Sum
		for _, b := range s.Buckets {
			if math.IsInf(b.UpperBound, 1) {
				counts[len(bounds)] += b.Count
			} else {
				counts[idx[b.UpperBound]] += b.Count
			}
		}
	}
	out.P50 = quantileOver(counts, bounds, out.Count, 0.50)
	out.P95 = quantileOver(counts, bounds, out.Count, 0.95)
	out.P99 = quantileOver(counts, bounds, out.Count, 0.99)
	out.Buckets = make([]BucketCount, 0, len(counts))
	for i, n := range counts {
		ub := math.Inf(1)
		if i < len(bounds) {
			ub = bounds[i]
		}
		out.Buckets = append(out.Buckets, BucketCount{UpperBound: ub, Count: n})
	}
	return out
}
