package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter(`wire_send_total{type="features"}`).Add(12)
	r.Gauge("tuner_stores").Set(3)
	h := r.Histogram(`npe_stage_seconds{stage="read"}`)
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	body := get(t, srv.URL+"/metrics")

	for _, want := range []string{
		`wire_send_total{type="features"} 12`,
		`tuner_stores 3`,
		`npe_stage_seconds_bucket{stage="read",le="0.003"} 100`,
		`npe_stage_seconds_count{stage="read"} 100`,
		`npe_stage_seconds{stage="read",quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSpansEndpoint(t *testing.T) {
	r := NewRegistry()
	sp := r.Spans().StartSpan("upload", 0)
	sp.SetAttr("store", "ps-0")
	sp.End()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var recs []SpanRecord
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/spans")), &recs); err != nil {
		t.Fatalf("unmarshal spans: %v", err)
	}
	if len(recs) != 1 || recs[0].Name != "upload" || len(recs[0].Attrs) != 1 {
		t.Fatalf("spans = %+v", recs)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var pts []MetricPoint
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/snapshot")), &pts); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	if len(pts) != 1 || pts[0].Name != "c" || pts[0].Value != 1 {
		t.Fatalf("snapshot = %+v", pts)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("served").Inc()
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	body := get(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "served 1") {
		t.Fatalf("/metrics via Serve missing counter:\n%s", body)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(b)
}
