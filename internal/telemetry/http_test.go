package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter(`wire_send_total{type="features"}`).Add(12)
	r.Gauge("tuner_stores").Set(3)
	h := r.Histogram(`npe_stage_seconds{stage="read"}`)
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	body := get(t, srv.URL+"/metrics")

	for _, want := range []string{
		`wire_send_total{type="features"} 12`,
		`tuner_stores 3`,
		`npe_stage_seconds_bucket{stage="read",le="0.003"} 100`,
		`npe_stage_seconds_count{stage="read"} 100`,
		`npe_stage_seconds{stage="read",quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSpansEndpoint(t *testing.T) {
	r := NewRegistry()
	sp := r.Spans().StartTrace("upload")
	sp.SetAttr("store", "ps-0")
	sp.End()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var recs []SpanRecord
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/spans")), &recs); err != nil {
		t.Fatalf("unmarshal spans: %v", err)
	}
	if len(recs) != 1 || recs[0].Name != "upload" || len(recs[0].Attrs) != 1 {
		t.Fatalf("spans = %+v", recs)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var pts []MetricPoint
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/snapshot")), &pts); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	if len(pts) != 1 || pts[0].Name != "c" || pts[0].Value != 1 {
		t.Fatalf("snapshot = %+v", pts)
	}
}

func TestTracesEndpoint(t *testing.T) {
	r := NewRegistry()
	root := r.Spans().StartTrace("service.retrain")
	r.Spans().StartSpanIn(root.Context(), "tuner.finetune").End()
	root.End()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var trees []*TraceTree
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/traces")), &trees); err != nil {
		t.Fatalf("unmarshal traces: %v", err)
	}
	if len(trees) != 1 || trees[0].SpanCount != 2 {
		t.Fatalf("traces = %+v, want one 2-span tree", trees)
	}
	if len(trees[0].Roots) != 1 || trees[0].Roots[0].Name != "service.retrain" {
		t.Fatalf("roots = %+v", trees[0].Roots)
	}

	// ?trace=<hex> selects one trace; an unknown ID yields an empty list.
	one := get(t, srv.URL+"/traces?trace="+root.TraceID().String())
	if err := json.Unmarshal([]byte(one), &trees); err != nil || len(trees) != 1 {
		t.Fatalf("single-trace query = %s (%v)", one, err)
	}
	if body := get(t, srv.URL+"/traces?trace=ffffffffffffffff"); strings.TrimSpace(body) != "null" {
		t.Fatalf("unknown trace = %q, want null", body)
	}

	// ?format=jsonl streams raw records, one per line.
	jl := strings.TrimSpace(get(t, srv.URL+"/traces?format=jsonl"))
	lines := strings.Split(jl, "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl = %d lines, want 2:\n%s", len(lines), jl)
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.Trace != root.TraceID() {
		t.Fatalf("jsonl record = %+v (%v)", rec, err)
	}

	// A malformed trace ID is a 400, not a panic.
	resp, err := http.Get(srv.URL + "/traces?trace=not-hex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad trace id status = %d, want 400", resp.StatusCode)
	}
}

func TestPprofMountIsOptIn(t *testing.T) {
	r := NewRegistry()

	// Default: profiling endpoints absent.
	plain := httptest.NewServer(r.Handler())
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without WithPprof = %d, want 404", resp.StatusCode)
	}

	// With WithPprof: the index and the heap profile respond.
	prof := httptest.NewServer(r.Handler(WithPprof()))
	defer prof.Close()
	if body := get(t, prof.URL+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%.200s", body)
	}
	if body := get(t, prof.URL+"/debug/pprof/heap?debug=1"); !strings.Contains(body, "heap profile") {
		t.Fatalf("heap profile malformed:\n%.200s", body)
	}
	// Metrics still served on the same mux.
	r.Counter("with_pprof").Inc()
	if body := get(t, prof.URL+"/metrics"); !strings.Contains(body, "with_pprof 1") {
		t.Fatalf("/metrics missing on pprof-enabled mux:\n%s", body)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("served").Inc()
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	body := get(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "served 1") {
		t.Fatalf("/metrics via Serve missing counter:\n%s", body)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(b)
}
