//go:build unix

package flightdump

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ndpipe/internal/telemetry"
)

// InstallSignal arms a SIGQUIT handler that dumps the flight recorder to
// stateDir, then restores the default disposition and re-raises the signal
// so the runtime still prints its goroutine dump and the process dies as a
// SIGQUIT-killed process should. Returns a stop function that disarms the
// handler (for tests).
func InstallSignal(reg *telemetry.Registry, component, stateDir string) func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
		case <-done:
			return
		}
		if p, err := Dump(reg, component, stateDir, "sigquit"); err == nil {
			fmt.Fprintf(os.Stderr, "flight recorder dumped to %s\n", p)
		}
		signal.Reset(syscall.SIGQUIT)
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
