//go:build !unix

package flightdump

import "ndpipe/internal/telemetry"

// InstallSignal is a no-op off unix: there is no SIGQUIT to hook.
func InstallSignal(_ *telemetry.Registry, _, _ string) func() {
	return func() {}
}
