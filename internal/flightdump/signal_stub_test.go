//go:build !unix

package flightdump

func signalSupported() bool { return false }

func raiseQuit() error { return nil }
