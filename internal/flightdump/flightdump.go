// Package flightdump connects a registry's flight recorder to durable
// storage: the daemons install it so a panic or SIGQUIT leaves a replayable
// crash dump (the last few thousand structured events — round transitions,
// evictions, retries, shed decisions) in the -state-dir next to the WAL.
//
// It lives outside internal/telemetry because durable itself instruments
// into telemetry; telemetry importing durable back would be a cycle. The
// daemons are the natural owner of the glue anyway: they know the state dir.
package flightdump

import (
	"fmt"
	"os"
	"path/filepath"

	"ndpipe/internal/durable"
	"ndpipe/internal/telemetry"
)

// Path returns where a component's flight dump lands inside stateDir.
func Path(stateDir, component string) string {
	return filepath.Join(stateDir, component+".flightrec.json")
}

// Dump serializes reg's flight recorder and writes it atomically (tmp +
// rename via durable.AtomicWriteFile) to Path(stateDir, component), so a
// crash mid-dump can never leave a torn file. Returns the written path.
func Dump(reg *telemetry.Registry, component, stateDir, reason string) (string, error) {
	if stateDir == "" {
		return "", fmt.Errorf("flightdump: no state dir")
	}
	data, err := reg.Flight().Dump(component, reason)
	if err != nil {
		return "", fmt.Errorf("flightdump: encode: %w", err)
	}
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return "", fmt.Errorf("flightdump: %w", err)
	}
	p := Path(stateDir, component)
	if err := durable.AtomicWriteFile(p, data, 0o644); err != nil {
		return "", fmt.Errorf("flightdump: write: %w", err)
	}
	return p, nil
}

// Load reads back a dump written by Dump.
func Load(stateDir, component string) (telemetry.FlightDumpRecord, error) {
	data, err := os.ReadFile(Path(stateDir, component))
	if err != nil {
		return telemetry.FlightDumpRecord{}, err
	}
	return telemetry.ParseFlightDump(data)
}

// Recover is the panic half: defer it at the top of a daemon's main
// goroutine. On panic it dumps the flight recorder (reason "panic") and
// re-panics so the crash still surfaces with its stack.
//
//	defer flightdump.Recover(telemetry.Default, "tuner", *stateDir)
func Recover(reg *telemetry.Registry, component, stateDir string) {
	if r := recover(); r != nil {
		if p, err := Dump(reg, component, stateDir, "panic"); err == nil {
			fmt.Fprintf(os.Stderr, "flight recorder dumped to %s\n", p)
		}
		panic(r)
	}
}
