package flightdump

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ndpipe/internal/telemetry"
)

func TestDumpLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	reg.Flight().Record(telemetry.FlightRoundStart, "tuner", "", 1, 3)
	reg.Flight().Record(telemetry.FlightRoundCommit, "tuner", "", 1, 7)

	p, err := Dump(reg, "tuner", dir, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if p != Path(dir, "tuner") {
		t.Fatalf("dump path = %s", p)
	}
	rec, err := Load(dir, "tuner")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Component != "tuner" || rec.Reason != "manual" {
		t.Fatalf("header = %+v", rec)
	}
	// The two recorded events plus the dump marker itself.
	if len(rec.Events) != 3 || rec.Events[0].Kind != telemetry.FlightRoundStart ||
		rec.Events[2].Kind != telemetry.FlightDump {
		t.Fatalf("events = %+v", rec.Events)
	}
}

func TestDumpCreatesStateDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "state")
	reg := telemetry.NewRegistry()
	reg.Flight().Record(telemetry.FlightPersist, "ps", "wal", 1, 0)
	if _, err := Dump(reg, "ps", dir, "manual"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "ps"); err != nil {
		t.Fatal(err)
	}
}

func TestDumpWithoutStateDirErrors(t *testing.T) {
	if _, err := Dump(telemetry.NewRegistry(), "x", "", "manual"); err == nil {
		t.Fatal("dump without state dir succeeded")
	}
}

func TestRecoverDumpsAndRepanics(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	reg.Flight().Record(telemetry.FlightRoundAbort, "tuner", "gather", 2, 0)

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("Recover swallowed the panic")
			}
		}()
		defer Recover(reg, "tuner", dir)
		panic("round state corrupted")
	}()

	rec, err := Load(dir, "tuner")
	if err != nil {
		t.Fatalf("no dump after panic: %v", err)
	}
	if rec.Reason != "panic" {
		t.Fatalf("reason = %s, want panic", rec.Reason)
	}
	if rec.Events[0].Kind != telemetry.FlightRoundAbort {
		t.Fatalf("events = %+v", rec.Events)
	}
}

// A SIGQUIT-killed daemon must leave a replayable flight dump in its state
// dir (the crash-black-box acceptance path). The signal handler re-raises,
// so this runs in a child process.
func TestSignalDumpOnSIGQUIT(t *testing.T) {
	if os.Getenv("FLIGHTDUMP_CHILD") == "1" {
		dir := os.Getenv("FLIGHTDUMP_DIR")
		reg := telemetry.NewRegistry()
		reg.Flight().Record(telemetry.FlightRoundStart, "child", "", 9, 1)
		defer InstallSignal(reg, "child", dir)()
		if err := raiseQuit(); err != nil {
			t.Fatalf("raise: %v", err)
		}
		select {} // the handler dumps and re-raises; we never get here
	}
	if !signalSupported() {
		t.Skip("no SIGQUIT on this platform")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestSignalDumpOnSIGQUIT")
	cmd.Env = append(os.Environ(), "FLIGHTDUMP_CHILD=1", "FLIGHTDUMP_DIR="+dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child survived SIGQUIT: %s", out)
	}
	if !strings.Contains(string(out), "SIGQUIT") && !strings.Contains(string(out), "quit") {
		t.Logf("child output: %s", out)
	}
	rec, err := Load(dir, "child")
	if err != nil {
		t.Fatalf("no dump after SIGQUIT: %v (child: %s)", err, out)
	}
	if rec.Reason != "sigquit" || rec.Events[0].V1 != 9 {
		t.Fatalf("dump = %+v", rec)
	}
}
