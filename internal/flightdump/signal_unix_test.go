//go:build unix

package flightdump

import "syscall"

func signalSupported() bool { return true }

func raiseQuit() error { return syscall.Kill(syscall.Getpid(), syscall.SIGQUIT) }
