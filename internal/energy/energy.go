// Package energy is the power/energy model behind the paper's efficiency
// metrics (IPS/W, IPS/J, IPS/kJ): it integrates per-component power over a
// job's duration using the busy times reported by the simulator, mirroring
// the paper's gpustat/powerstat/ipmitool methodology at model level.
package energy

import (
	"fmt"

	"ndpipe/internal/cluster"
)

// ServerLoad is one server's activity over a window of Duration seconds.
type ServerLoad struct {
	Server   *cluster.Server
	Count    int     // identical servers under this load (e.g. N PipeStores)
	Duration float64 // seconds the server is part of the job
	// Busy seconds per component (≤ Duration; CPUBusy is in units of
	// fully-busy-pipeline seconds, normalized internally by core count).
	AccelBusy float64
	CPUBusy   float64
	DiskBusy  float64
	// CPUCoresUsed is how many cores the busy pipeline occupies (decompress
	// cores, preprocessing cores...); defaults to 2 when zero.
	CPUCoresUsed int
}

// Report aggregates a job's energy.
type Report struct {
	Joules     float64
	AvgWatts   float64
	GPUWatts   float64 // average, for the Fig 14 breakdown
	CPUWatts   float64
	OtherWatts float64
}

// Compute integrates power over all server loads. Components draw idle
// power for the full duration and the active increment for their busy time.
func Compute(loads []ServerLoad) (Report, error) {
	var rep Report
	var totalDur float64
	for _, l := range loads {
		if l.Server == nil {
			return Report{}, fmt.Errorf("energy: nil server")
		}
		if l.Duration <= 0 {
			return Report{}, fmt.Errorf("energy: non-positive duration for %s", l.Server.Name)
		}
		n := l.Count
		if n <= 0 {
			n = 1
		}
		cores := l.CPUCoresUsed
		if cores <= 0 {
			cores = 2
		}
		aU := clamp01(l.AccelBusy / l.Duration)
		cU := clamp01(l.CPUBusy / l.Duration * float64(cores) / float64(l.Server.CPU.Cores))
		dU := clamp01(l.DiskBusy / l.Duration)
		gpu, cpu, other := l.Server.WattsBreakdown(aU, cU, dU)
		rep.GPUWatts += gpu * float64(n)
		rep.CPUWatts += cpu * float64(n)
		rep.OtherWatts += other * float64(n)
		rep.Joules += (gpu + cpu + other) * l.Duration * float64(n)
		if l.Duration > totalDur {
			totalDur = l.Duration
		}
	}
	rep.AvgWatts = rep.GPUWatts + rep.CPUWatts + rep.OtherWatts
	return rep, nil
}

// IPSPerWatt returns throughput per watt for an inference workload.
func IPSPerWatt(ips float64, rep Report) float64 { return ips / rep.AvgWatts }

// IPSPerKJ returns images trained per kilojoule for a training job
// (the paper's training throughput-per-joule metric, scaled to kJ as in
// Figs 11 and 16).
func IPSPerKJ(images int, rep Report) float64 {
	return float64(images) / (rep.Joules / 1000)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
