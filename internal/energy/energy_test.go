package energy

import (
	"testing"

	"ndpipe/internal/cluster"
)

func TestComputeSingleServer(t *testing.T) {
	ps := cluster.PipeStore(10)
	rep, err := Compute([]ServerLoad{{
		Server:    ps,
		Duration:  100,
		AccelBusy: 100, // fully busy GPU
		CPUBusy:   50,
		DiskBusy:  25,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joules <= 0 || rep.AvgWatts <= 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.AvgWatts != rep.GPUWatts+rep.CPUWatts+rep.OtherWatts {
		t.Fatal("breakdown must sum to total")
	}
	// Fully busy T4 draws its active watts.
	if rep.GPUWatts < 65 || rep.GPUWatts > 75 {
		t.Fatalf("GPU watts %.0f, want ≈70 (T4 active)", rep.GPUWatts)
	}
}

func TestIdleCostsLessThanBusy(t *testing.T) {
	ps := cluster.PipeStore(10)
	busy, _ := Compute([]ServerLoad{{Server: ps, Duration: 10, AccelBusy: 10, CPUBusy: 10, DiskBusy: 10}})
	idle, _ := Compute([]ServerLoad{{Server: ps, Duration: 10}})
	if idle.Joules >= busy.Joules {
		t.Fatalf("idle %f J should be < busy %f J", idle.Joules, busy.Joules)
	}
	if idle.Joules <= 0 {
		t.Fatal("idle still draws power")
	}
}

func TestCountScalesEnergy(t *testing.T) {
	ps := cluster.PipeStore(10)
	one, _ := Compute([]ServerLoad{{Server: ps, Duration: 10, AccelBusy: 5}})
	four, _ := Compute([]ServerLoad{{Server: ps, Count: 4, Duration: 10, AccelBusy: 5}})
	if four.Joules != 4*one.Joules {
		t.Fatalf("4 servers should draw 4×: %v vs %v", four.Joules, one.Joules)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Compute([]ServerLoad{{Server: nil, Duration: 1}}); err == nil {
		t.Fatal("nil server must error")
	}
	if _, err := Compute([]ServerLoad{{Server: cluster.Tuner(10), Duration: 0}}); err == nil {
		t.Fatal("zero duration must error")
	}
}

func TestMetrics(t *testing.T) {
	rep := Report{Joules: 2000, AvgWatts: 400}
	if got := IPSPerWatt(800, rep); got != 2 {
		t.Fatalf("IPSPerWatt = %v", got)
	}
	if got := IPSPerKJ(1000, rep); got != 500 {
		t.Fatalf("IPSPerKJ = %v", got)
	}
}

// TestNDPipeBeatsSRVCEfficiencyAtEqualThroughput is the Fig 14 anchor: at
// matched inference throughput, PipeStores draw less total power than the
// two-V100 host + storage fleet.
func TestNDPipeBeatsSRVCEfficiencyAtEqualThroughput(t *testing.T) {
	// SRV-C at ≈8.5 KIPS ≈ 4 PipeStores at full tilt.
	srv, _ := Compute([]ServerLoad{
		{Server: cluster.SRVHost(10), Duration: 100, AccelBusy: 73, CPUBusy: 100, CPUCoresUsed: 8},
		{Server: cluster.StorageServer(10), Count: 4, Duration: 100, DiskBusy: 70},
	})
	nd, _ := Compute([]ServerLoad{
		{Server: cluster.PipeStore(10), Count: 4, Duration: 100, AccelBusy: 100, CPUBusy: 60, DiskBusy: 50, CPUCoresUsed: 2},
	})
	ratio := srv.AvgWatts / nd.AvgWatts
	if ratio < 1.1 || ratio > 2.2 {
		t.Fatalf("NDPipe power advantage %.2f×, want ≈1.4× (paper 1.39×)", ratio)
	}
}
