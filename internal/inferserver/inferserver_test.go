package inferserver

import (
	"math"
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/placement"
	"ndpipe/internal/telemetry"
)

func rig(t *testing.T, nStores int) (*Server, []*pipestore.Node, *dataset.World) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(41)
	wcfg.InitialImages = 300
	world := dataset.NewWorld(wcfg)
	var stores []*pipestore.Node
	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(string(rune('a'+i)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, ps)
	}
	srv, err := New(cfg, stores, labeldb.New())
	if err != nil {
		t.Fatal(err)
	}
	return srv, stores, world
}

func TestUploadStoresLabelsAndIndexes(t *testing.T) {
	srv, stores, world := rig(t, 2)
	img := world.Images()[0]
	res, err := srv.Upload(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImageID != img.ID || res.ModelVersion != 0 {
		t.Fatalf("result = %+v", res)
	}
	// The photo landed on a store with raw + preprocessed binary.
	found := false
	for _, ps := range stores {
		if ps.ID == res.StoreID {
			found = true
			if _, err := ps.Storage().GetRaw(img.ID); err != nil {
				t.Fatal("raw blob missing after upload")
			}
			if _, err := ps.Storage().GetPreprocCompressed(img.ID); err != nil {
				t.Fatal("preprocessed binary missing (+Offload broken)")
			}
		}
	}
	if !found {
		t.Fatalf("unknown store %q", res.StoreID)
	}
	// And it is indexed for search.
	e, err := srv.DB().Get(img.ID)
	if err != nil {
		t.Fatal(err)
	}
	if e.Label != res.Label || e.Location != res.StoreID {
		t.Fatalf("index entry %+v vs result %+v", e, res)
	}
	if ids := srv.Search(res.Label); len(ids) == 0 {
		t.Fatal("search must find the uploaded photo")
	}
}

func TestUploadBatchRoundRobins(t *testing.T) {
	srv, stores, world := rig(t, 3)
	res, errs := srv.UploadBatch(world.Images()[:99])
	for i, err := range errs {
		if err != nil {
			t.Fatalf("photo %d: %v", i, err)
		}
	}
	if len(res) != 99 || srv.Uploads() != 99 {
		t.Fatalf("uploaded %d", len(res))
	}
	for _, ps := range stores {
		if n := ps.NumImages(); n != 33 {
			t.Fatalf("store %s holds %d, want 33 (round-robin)", ps.ID, n)
		}
	}
}

// One bad photo in a batch must not discard its batchmates: every other
// photo is ingested, indexed, and reported, and the failure is attributed to
// exactly the offending index (and counted in /metrics).
func TestUploadBatchPartialFailure(t *testing.T) {
	srv, _, world := rig(t, 2)
	errsBefore := telemetry.Default.Counter(
		telemetry.Labeled("inferserver_upload_errors_total", "reason", "dim")).Value()
	imgs := append([]dataset.Image(nil), world.Images()[:7]...)
	imgs[3] = dataset.Image{ID: 777, Feat: []float64{1, 2}} // wrong dim
	res, errs := srv.UploadBatch(imgs)
	if len(res) != 7 || len(errs) != 7 {
		t.Fatalf("got %d results, %d errs", len(res), len(errs))
	}
	for i := range imgs {
		if i == 3 {
			if errs[i] == nil {
				t.Fatal("bad photo must carry its own error")
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("good photo %d failed: %v", i, errs[i])
		}
		if res[i].ImageID != imgs[i].ID {
			t.Fatalf("photo %d result = %+v", i, res[i])
		}
		if _, err := srv.DB().Get(imgs[i].ID); err != nil {
			t.Fatalf("good photo %d not indexed", i)
		}
	}
	if srv.Uploads() != 6 {
		t.Fatalf("uploads = %d, want 6", srv.Uploads())
	}
	got := telemetry.Default.Counter(
		telemetry.Labeled("inferserver_upload_errors_total", "reason", "dim")).Value()
	if got-errsBefore != 1 {
		t.Fatalf("error counter moved by %d, want 1", got-errsBefore)
	}
}

// Batched inference must be bitwise-identical to the sequential Upload loop:
// same labels, same confidence bits, same round-robin placement.
func TestInferBatchMatchesSequentialBitwise(t *testing.T) {
	seqSrv, _, world := rig(t, 2)
	batSrv, _, _ := rig(t, 2)
	imgs := world.Images()[:40]

	want := make([]UploadResult, len(imgs))
	for i, img := range imgs {
		r, err := seqSrv.Upload(img)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	got, errs := batSrv.UploadBatch(imgs)
	for i := range imgs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i].Label != want[i].Label {
			t.Fatalf("photo %d label %d != sequential %d", i, got[i].Label, want[i].Label)
		}
		if math.Float64bits(got[i].Confidence) != math.Float64bits(want[i].Confidence) {
			t.Fatalf("photo %d confidence %x != sequential %x", i,
				math.Float64bits(got[i].Confidence), math.Float64bits(want[i].Confidence))
		}
		if got[i].StoreID != want[i].StoreID {
			t.Fatalf("photo %d store %s != sequential %s", i, got[i].StoreID, want[i].StoreID)
		}
	}
}

// A cached embedding fed back through InferBatch must reproduce the
// cache-miss result exactly — the frozen backbone makes hit and miss
// bitwise-interchangeable.
func TestInferBatchCachedEmbeddingBitwise(t *testing.T) {
	srv, _, world := rig(t, 1)
	img := world.Images()[5]
	first := srv.InferBatch([]BatchRequest{{Img: img, WantEmb: true}})
	if first[0].Err != nil {
		t.Fatal(first[0].Err)
	}
	if len(first[0].Emb) == 0 {
		t.Fatal("WantEmb must return the embedding")
	}
	replay := img
	replay.ID = 424242 // same content, new upload
	second := srv.InferBatch([]BatchRequest{{Img: replay, Emb: first[0].Emb}})
	if second[0].Err != nil {
		t.Fatal(second[0].Err)
	}
	if second[0].Label != first[0].Label ||
		math.Float64bits(second[0].Confidence) != math.Float64bits(first[0].Confidence) {
		t.Fatalf("cache-hit result %+v != miss result %+v", second[0], first[0])
	}
	bad := srv.InferBatch([]BatchRequest{{Img: img, Emb: []float64{1}}})
	if bad[0].Err == nil {
		t.Fatal("wrong-dim cached embedding must error")
	}
}

// A memoized classifier result is returned verbatim while its model version
// is current, skipping the head; once the version moves on, the memo is
// ignored and the row is recomputed at the live version.
func TestInferBatchMemoVersionGate(t *testing.T) {
	srv, _, world := rig(t, 1)
	img := world.Images()[6]
	first := srv.InferBatch([]BatchRequest{{Img: img, WantEmb: true}})
	if first[0].Err != nil {
		t.Fatal(first[0].Err)
	}

	// Current version: the memo rides through untouched — visible because we
	// plant a sentinel confidence no real softmax would produce.
	memo := img
	memo.ID = 555555
	hit := srv.InferBatch([]BatchRequest{{
		Img: memo, Emb: first[0].Emb,
		HaveMemo: true, MemoLabel: first[0].Label, MemoConf: 0.123456,
		MemoVersion: first[0].ModelVersion,
	}})
	if hit[0].Err != nil {
		t.Fatal(hit[0].Err)
	}
	if hit[0].Label != first[0].Label || hit[0].Confidence != 0.123456 {
		t.Fatalf("memo not honored: %+v", hit[0])
	}
	if hit[0].ModelVersion != first[0].ModelVersion {
		t.Fatalf("memo result labeled v%d, want v%d", hit[0].ModelVersion, first[0].ModelVersion)
	}

	// Stale version: the memo must be discarded and the head recomputed —
	// bitwise-equal to a plain upload of the same content.
	stale := img
	stale.ID = 666666
	re := srv.InferBatch([]BatchRequest{{
		Img: stale, Emb: first[0].Emb,
		HaveMemo: true, MemoLabel: first[0].Label, MemoConf: 0.123456,
		MemoVersion: first[0].ModelVersion - 1,
	}})
	if re[0].Err != nil {
		t.Fatal(re[0].Err)
	}
	if re[0].Confidence == 0.123456 {
		t.Fatal("stale memo served verbatim")
	}
	if re[0].Label != first[0].Label ||
		math.Float64bits(re[0].Confidence) != math.Float64bits(first[0].Confidence) {
		t.Fatalf("recomputed row (%d, %x) != fresh computation (%d, %x)",
			re[0].Label, math.Float64bits(re[0].Confidence),
			first[0].Label, math.Float64bits(first[0].Confidence))
	}
}

func TestApplyDeltaChangesOnlineLabels(t *testing.T) {
	srv, _, world := rig(t, 1)
	cfg := core.DefaultModelConfig()

	// Label a probe image with v0.
	img := world.Images()[1]
	before, err := srv.Upload(img)
	if err != nil {
		t.Fatal(err)
	}

	// Produce a v1 delta that substantially changes the classifier.
	clf := cfg.NewClassifier()
	base := clf.TakeSnapshot()
	for _, p := range clf.TrainableParams() {
		for i := range p.W.Data {
			p.W.Data[i] = -p.W.Data[i] + 0.3
		}
	}
	d, err := delta.Diff(base, clf.TakeSnapshot(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ApplyDelta(blob, 1); err != nil {
		t.Fatal(err)
	}
	if srv.ModelVersion() != 1 {
		t.Fatalf("version = %d", srv.ModelVersion())
	}
	// Upload the same content again (new ID): the label's model version
	// must be v1 now.
	img2 := img
	img2.ID = 999999
	after, err := srv.Upload(img2)
	if err != nil {
		t.Fatal(err)
	}
	if after.ModelVersion != 1 {
		t.Fatalf("new upload labeled by v%d", after.ModelVersion)
	}
	_ = before
}

func TestUploadValidation(t *testing.T) {
	srv, _, _ := rig(t, 1)
	if _, err := srv.Upload(dataset.Image{ID: 1, Feat: []float64{1}}); err == nil {
		t.Fatal("wrong input dim must error")
	}
	cfg := core.DefaultModelConfig()
	if _, err := New(cfg, nil, nil); err == nil {
		t.Fatal("no stores must error")
	}
	bad := cfg
	bad.InputDim = 0
	if _, err := New(bad, nil, nil); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestGarbageDeltaRejected(t *testing.T) {
	srv, _, _ := rig(t, 1)
	if err := srv.ApplyDelta([]byte{1, 2, 3}, 5); err == nil {
		t.Fatal("garbage delta must fail")
	}
	if srv.ModelVersion() != 0 {
		t.Fatal("failed delta must not bump version")
	}
}

// With replication enabled, every upload must land on all R ring replicas —
// both raw bytes and the preprocessed binary — and the label index must point
// at the primary replica.
func TestUploadReplicatesToAllReplicas(t *testing.T) {
	srv, stores, world := rig(t, 3)
	if err := srv.EnableReplication(2); err != nil {
		t.Fatal(err)
	}
	if srv.Replication() != 2 {
		t.Fatalf("Replication() = %d, want 2", srv.Replication())
	}
	byID := map[string]*pipestore.Node{}
	for _, ps := range stores {
		byID[ps.ID] = ps
	}
	ring, err := placement.New([]string{stores[0].ID, stores[1].ID, stores[2].ID}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range world.Images()[:40] {
		res, err := srv.Upload(img)
		if err != nil {
			t.Fatal(err)
		}
		reps := ring.Replicas(img.ID)
		if res.StoreID != reps[0] {
			t.Fatalf("image %d: Location = %s, want primary %s", img.ID, res.StoreID, reps[0])
		}
		for _, id := range reps {
			ps := byID[id]
			if _, err := ps.Storage().GetRaw(img.ID); err != nil {
				t.Fatalf("image %d: raw missing on replica %s: %v", img.ID, id, err)
			}
			if _, err := ps.Storage().GetPreprocCompressed(img.ID); err != nil {
				t.Fatalf("image %d: preproc missing on replica %s: %v", img.ID, id, err)
			}
		}
	}
}

// When the primary replica's write fails but a secondary lands, the upload
// succeeds and the label index still records the ring primary as Location:
// placement is deterministic, so the index stays ring-derived and the
// tuner's anti-entropy pass refills the primary copy behind it. StoreID in
// the result reports the replica that actually took the bytes.
func TestUploadLocationStaysRingPrimaryOnPrimaryWriteFailure(t *testing.T) {
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(43)
	wcfg.InitialImages = 60
	world := dataset.NewWorld(wcfg)
	ids := []string{"a", "b", "c"}
	ring, err := placement.New(ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a photo whose ring primary is store "a", then build "a" with a
	// mismatched InputDim so its Ingest rejects every write while the other
	// replicas accept normally.
	var img dataset.Image
	found := false
	for _, im := range world.Images() {
		if ring.Replicas(im.ID)[0] == "a" {
			img, found = im, true
			break
		}
	}
	if !found {
		t.Fatal("no image with primary replica on store a")
	}
	badCfg := cfg
	badCfg.InputDim = cfg.InputDim + 1
	var stores []*pipestore.Node
	byID := map[string]*pipestore.Node{}
	for _, id := range ids {
		c := cfg
		if id == "a" {
			c = badCfg
		}
		ps, err := pipestore.New(id, c)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, ps)
		byID[id] = ps
	}
	srv, err := New(cfg, stores, labeldb.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableReplication(2); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Upload(img)
	if err != nil {
		t.Fatalf("upload must survive a failed primary write: %v", err)
	}
	reps := ring.Replicas(img.ID)
	if res.StoreID != reps[1] {
		t.Fatalf("StoreID = %s, want surviving secondary %s", res.StoreID, reps[1])
	}
	e, err := srv.DB().Get(img.ID)
	if err != nil {
		t.Fatal(err)
	}
	if e.Location != reps[0] {
		t.Fatalf("Location = %s, want ring primary %s even though its write failed", e.Location, reps[0])
	}
	// The bytes really are on the secondary, and absent from the primary.
	if _, err := byID[reps[1]].Storage().GetRaw(img.ID); err != nil {
		t.Fatalf("raw missing on secondary %s: %v", reps[1], err)
	}
	if _, err := byID[reps[0]].Storage().GetRaw(img.ID); err == nil {
		t.Fatalf("primary %s unexpectedly holds the photo", reps[0])
	}
}

// The batched path must produce the same placement as sequential uploads:
// every photo on all R replicas, result.StoreID = primary.
func TestInferBatchReplicates(t *testing.T) {
	srv, stores, world := rig(t, 3)
	if err := srv.EnableReplication(2); err != nil {
		t.Fatal(err)
	}
	imgs := world.Images()[:60]
	results, errs := srv.UploadBatch(imgs)
	ring, err := placement.New([]string{stores[0].ID, stores[1].ID, stores[2].ID}, 2)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*pipestore.Node{}
	for _, ps := range stores {
		byID[ps.ID] = ps
	}
	for i, img := range imgs {
		if errs[i] != nil {
			t.Fatalf("image %d: %v", img.ID, errs[i])
		}
		reps := ring.Replicas(img.ID)
		if results[i].StoreID != reps[0] {
			t.Fatalf("image %d: StoreID = %s, want primary %s", img.ID, results[i].StoreID, reps[0])
		}
		for _, id := range reps {
			if _, err := byID[id].Storage().GetRaw(img.ID); err != nil {
				t.Fatalf("image %d: raw missing on replica %s: %v", img.ID, id, err)
			}
		}
	}
}
