package inferserver

import (
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/pipestore"
)

func rig(t *testing.T, nStores int) (*Server, []*pipestore.Node, *dataset.World) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(41)
	wcfg.InitialImages = 300
	world := dataset.NewWorld(wcfg)
	var stores []*pipestore.Node
	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(string(rune('a'+i)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, ps)
	}
	srv, err := New(cfg, stores, labeldb.New())
	if err != nil {
		t.Fatal(err)
	}
	return srv, stores, world
}

func TestUploadStoresLabelsAndIndexes(t *testing.T) {
	srv, stores, world := rig(t, 2)
	img := world.Images()[0]
	res, err := srv.Upload(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImageID != img.ID || res.ModelVersion != 0 {
		t.Fatalf("result = %+v", res)
	}
	// The photo landed on a store with raw + preprocessed binary.
	found := false
	for _, ps := range stores {
		if ps.ID == res.StoreID {
			found = true
			if _, err := ps.Storage().GetRaw(img.ID); err != nil {
				t.Fatal("raw blob missing after upload")
			}
			if _, err := ps.Storage().GetPreprocCompressed(img.ID); err != nil {
				t.Fatal("preprocessed binary missing (+Offload broken)")
			}
		}
	}
	if !found {
		t.Fatalf("unknown store %q", res.StoreID)
	}
	// And it is indexed for search.
	e, err := srv.DB().Get(img.ID)
	if err != nil {
		t.Fatal(err)
	}
	if e.Label != res.Label || e.Location != res.StoreID {
		t.Fatalf("index entry %+v vs result %+v", e, res)
	}
	if ids := srv.Search(res.Label); len(ids) == 0 {
		t.Fatal("search must find the uploaded photo")
	}
}

func TestUploadBatchRoundRobins(t *testing.T) {
	srv, stores, world := rig(t, 3)
	res, err := srv.UploadBatch(world.Images()[:99])
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 99 || srv.Uploads() != 99 {
		t.Fatalf("uploaded %d", len(res))
	}
	for _, ps := range stores {
		if n := ps.NumImages(); n != 33 {
			t.Fatalf("store %s holds %d, want 33 (round-robin)", ps.ID, n)
		}
	}
}

func TestApplyDeltaChangesOnlineLabels(t *testing.T) {
	srv, _, world := rig(t, 1)
	cfg := core.DefaultModelConfig()

	// Label a probe image with v0.
	img := world.Images()[1]
	before, err := srv.Upload(img)
	if err != nil {
		t.Fatal(err)
	}

	// Produce a v1 delta that substantially changes the classifier.
	clf := cfg.NewClassifier()
	base := clf.TakeSnapshot()
	for _, p := range clf.TrainableParams() {
		for i := range p.W.Data {
			p.W.Data[i] = -p.W.Data[i] + 0.3
		}
	}
	d, err := delta.Diff(base, clf.TakeSnapshot(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ApplyDelta(blob, 1); err != nil {
		t.Fatal(err)
	}
	if srv.ModelVersion() != 1 {
		t.Fatalf("version = %d", srv.ModelVersion())
	}
	// Upload the same content again (new ID): the label's model version
	// must be v1 now.
	img2 := img
	img2.ID = 999999
	after, err := srv.Upload(img2)
	if err != nil {
		t.Fatal(err)
	}
	if after.ModelVersion != 1 {
		t.Fatalf("new upload labeled by v%d", after.ModelVersion)
	}
	_ = before
}

func TestUploadValidation(t *testing.T) {
	srv, _, _ := rig(t, 1)
	if _, err := srv.Upload(dataset.Image{ID: 1, Feat: []float64{1}}); err == nil {
		t.Fatal("wrong input dim must error")
	}
	cfg := core.DefaultModelConfig()
	if _, err := New(cfg, nil, nil); err == nil {
		t.Fatal("no stores must error")
	}
	bad := cfg
	bad.InputDim = 0
	if _, err := New(bad, nil, nil); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestGarbageDeltaRejected(t *testing.T) {
	srv, _, _ := rig(t, 1)
	if err := srv.ApplyDelta([]byte{1, 2, 3}, 5); err == nil {
		t.Fatal("garbage delta must fail")
	}
	if srv.ModelVersion() != 0 {
		t.Fatal("failed delta must not bump version")
	}
}
