// Package inferserver implements the inference server of the photo system
// (Fig 3): the node that handles the *online* path. When a user uploads a
// photo it (1) preprocesses it, (2) runs online inference to label it,
// (3) routes the photo — raw bytes plus the preprocessed binary, which is
// the NPE +Offload optimization (§5.4) — to a PipeStore, and (4) indexes
// the label and location in the label database.
//
// It also receives model updates from the Tuner (Check-N-Run deltas), so
// freshly uploaded photos are always labeled by the newest model.
package inferserver

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/nn"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/placement"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
)

// Server is the online-inference node.
type Server struct {
	cfg      core.ModelConfig
	backbone *nn.Network
	// quant is the calibrated int8 replica of the frozen backbone, installed
	// by SetQuantize: uploads then embed through the int8 kernels while the
	// f64 classifier (and the delta-apply path) stay untouched.
	quant *nn.QuantNetwork

	mu      sync.Mutex
	clf     *nn.Network
	clfSnap nn.Snapshot
	version int
	stores  []*pipestore.Node // upload routing targets (in-process handles)
	next    int               // round-robin cursor
	ring    *placement.Ring   // non-nil once EnableReplication is called
	idx     map[string]int    // store ID -> index in stores
	db      *labeldb.DB

	uploads int

	met serverMetrics
	log *slog.Logger
}

// serverMetrics holds the upload-path instruments, registered once in New.
type serverMetrics struct {
	uploads       *telemetry.Counter
	searches      *telemetry.Counter
	deltasApplied *telemetry.Counter
	modelVersion  *telemetry.Gauge
	uploadLatency *telemetry.Histogram
	confidence    *telemetry.Histogram
	// Upload failures by cause — without these, rejected uploads are
	// invisible in /metrics (only their latency is observed).
	errDim    *telemetry.Counter
	errIngest *telemetry.Counter
	// Replica-write failures: the upload still succeeded (another copy
	// landed) but the object is under-replicated until the tuner's next
	// anti-entropy pass (tuner.AntiEntropy) refills the missing replica —
	// checksum scrubbing alone cannot see it, there are no bytes to verify.
	// A growing counter with no anti-entropy scheduled is a durability gap.
	errReplica *telemetry.Counter
}

func newServerMetrics() serverMetrics {
	reg := telemetry.Default
	return serverMetrics{
		uploads:       reg.Counter("inferserver_uploads_total"),
		searches:      reg.Counter("inferserver_searches_total"),
		deltasApplied: reg.Counter("inferserver_deltas_applied_total"),
		modelVersion:  reg.Gauge("inferserver_model_version"),
		uploadLatency: reg.Histogram("inferserver_upload_seconds"),
		// Confidence lives in [0,1]: linear buckets, not latency buckets.
		confidence: reg.HistogramBuckets("inferserver_upload_confidence",
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}),
		errDim:     reg.Counter(telemetry.Labeled("inferserver_upload_errors_total", "reason", "dim")),
		errIngest:  reg.Counter(telemetry.Labeled("inferserver_upload_errors_total", "reason", "ingest")),
		errReplica: reg.Counter(telemetry.Labeled("inferserver_upload_errors_total", "reason", "replica")),
	}
}

// New creates an inference server that routes uploads across the given
// PipeStores and indexes labels into db.
func New(cfg core.ModelConfig, stores []*pipestore.Node, db *labeldb.DB) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stores) == 0 {
		return nil, fmt.Errorf("inferserver: need at least one PipeStore")
	}
	if db == nil {
		db = labeldb.New()
	}
	s := &Server{
		cfg:      cfg,
		backbone: cfg.NewBackbone(),
		clf:      cfg.NewClassifier(),
		stores:   stores,
		db:       db,
		met:      newServerMetrics(),
		log:      telemetry.ComponentLogger("inferserver"),
	}
	s.clfSnap = s.clf.TakeSnapshot()
	return s, nil
}

// SetQuantize switches the frozen backbone to its calibrated int8 replica
// (core.ModelConfig.NewQuantBackbone). Quantized embeddings are
// deterministic but not bitwise-equal to f64 ones, so PrecisionMode changes
// with it — the serving gateway keys its content-hash cache on that mode,
// keeping f64 and int8 artifacts strictly separate. Call before traffic.
func (s *Server) SetQuantize() error {
	qn, err := s.cfg.NewQuantBackbone()
	if err != nil {
		return fmt.Errorf("inferserver: %w", err)
	}
	s.mu.Lock()
	s.quant = qn
	s.mu.Unlock()
	return nil
}

// PrecisionMode names the backbone precision labeling new uploads
// (nn.PrecisionF64 or nn.PrecisionInt8). The serving gateway folds it into
// its cache key derivation so mixed-precision fleets can never cross-serve
// cached embeddings.
func (s *Server) PrecisionMode() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quant != nil {
		return nn.PrecisionInt8
	}
	return nn.PrecisionF64
}

// forwardBackboneLocked runs the active backbone replica (int8 when
// SetQuantize installed one). Callers must hold s.mu; the result is
// network-owned scratch, valid only until the next forward.
func (s *Server) forwardBackboneLocked(x *tensor.Matrix) *tensor.Matrix {
	if s.quant != nil {
		return s.quant.Forward(x)
	}
	return s.backbone.Forward(x)
}

// EnableReplication switches upload routing from round-robin to
// consistent-hash placement with replication factor r: each photo is written
// to all r ring replicas of its ID, so losing any single PipeStore leaves
// every photo readable on a surviving replica. The label index records the
// primary (first) replica as the photo's Location. Call before traffic; the
// ring is built over the stores the server was constructed with.
func (s *Server) EnableReplication(r int) error {
	ids := make([]string, len(s.stores))
	idx := make(map[string]int, len(s.stores))
	for i, ps := range s.stores {
		ids[i] = ps.ID
		idx[ps.ID] = i
	}
	ring, err := placement.New(ids, r)
	if err != nil {
		return fmt.Errorf("inferserver: %w", err)
	}
	s.mu.Lock()
	s.ring = ring
	s.idx = idx
	s.mu.Unlock()
	return nil
}

// Replication reports the replication factor (0 when routing round-robin).
func (s *Server) Replication() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring == nil {
		return 0
	}
	return s.ring.Replication()
}

// DB exposes the label index.
func (s *Server) DB() *labeldb.DB { return s.db }

// ModelVersion returns the classifier version labeling new uploads.
func (s *Server) ModelVersion() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Uploads returns how many photos have been ingested.
func (s *Server) Uploads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploads
}

// ApplyDelta installs a Check-N-Run model update from the Tuner.
func (s *Server) ApplyDelta(blob []byte, version int) error {
	d, err := delta.Decode(blob)
	if err != nil {
		return fmt.Errorf("inferserver: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := d.Apply(s.clfSnap)
	if err != nil {
		return fmt.Errorf("inferserver: %w", err)
	}
	if err := s.clf.Restore(snap); err != nil {
		return fmt.Errorf("inferserver: %w", err)
	}
	s.clfSnap = snap
	s.version = version
	s.met.deltasApplied.Inc()
	s.met.modelVersion.Set(float64(version))
	s.log.Debug("model delta applied",
		slog.Int("model_version", version),
		slog.Int("delta_bytes", len(blob)))
	return nil
}

// UploadResult reports where an upload landed and how it was labeled.
type UploadResult struct {
	ImageID      uint64
	Label        int
	Confidence   float64 // max softmax probability of the online label
	ModelVersion int
	StoreID      string
}

// Upload runs the full online path for one photo: preprocess → online
// inference → store (raw + preprocessed binary) → index label.
func (s *Server) Upload(img dataset.Image) (UploadResult, error) {
	defer func(t0 time.Time) { s.met.uploadLatency.Observe(time.Since(t0).Seconds()) }(time.Now())
	if len(img.Feat) != s.cfg.InputDim {
		s.met.errDim.Inc()
		return UploadResult{}, fmt.Errorf("inferserver: image %d has dim %d, want %d",
			img.ID, len(img.Feat), s.cfg.InputDim)
	}
	// Online inference on the preprocessed input.
	x := tensor.FromSlice(1, s.cfg.InputDim, img.Feat)
	s.mu.Lock()
	logits := s.clf.Forward(s.forwardBackboneLocked(x))
	// Clone before the unlock: logits is the classifier's layer scratch and
	// the next Forward (any goroutine) overwrites it in place.
	probs := logits.Clone()
	version := s.version
	var targets []*pipestore.Node
	if s.ring != nil {
		for _, id := range s.ring.Replicas(img.ID) {
			targets = append(targets, s.stores[s.idx[id]])
		}
	} else {
		targets = []*pipestore.Node{s.stores[s.next%len(s.stores)]}
		s.next++
	}
	s.uploads++
	s.mu.Unlock()
	probs.SoftmaxRows()
	label := probs.ArgmaxRows()[0]
	confidence := probs.At(0, label)

	// Store near the data: raw photo plus the preprocessed binary
	// (+Offload), which the PipeStore compresses (+Comp). Under replication
	// the write fans to every ring replica; the upload succeeds as long as
	// at least one copy lands. A failed replica write leaves the photo
	// under-replicated — not lost — until the tuner's next anti-entropy
	// pass (tuner.AntiEntropy) diffs inventories against the ring and
	// refills the missing copy; checksum scrubbing cannot see it.
	var target *pipestore.Node
	var lastErr error
	for _, tgt := range targets {
		if err := tgt.Ingest([]dataset.Image{img}); err != nil {
			s.met.errReplica.Inc()
			lastErr = err
			continue
		}
		if target == nil {
			target = tgt
		}
	}
	if target == nil {
		s.met.errIngest.Inc()
		return UploadResult{}, lastErr
	}
	// Index for search. Location is the primary — ring walk order under
	// replication (targets[0] is Replicas(id)[0]), the round-robin pick
	// otherwise — even when the primary write failed and the bytes only
	// landed on a secondary: placement is deterministic, so keeping the
	// index ring-derived means every reader computes the same location,
	// and anti-entropy restores the primary copy behind it.
	s.db.Upsert(labeldb.Entry{
		ImageID:      img.ID,
		Label:        label,
		ModelVersion: version,
		Location:     targets[0].ID,
	})
	s.met.uploads.Inc()
	s.met.confidence.Observe(confidence)
	return UploadResult{
		ImageID: img.ID, Label: label, Confidence: confidence,
		ModelVersion: version, StoreID: target.ID,
	}, nil
}

// Search proxies label queries to the index (the user-facing path of Fig 3).
func (s *Server) Search(label int) []uint64 {
	s.met.searches.Inc()
	return s.db.Search(label)
}
