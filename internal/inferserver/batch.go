package inferserver

import (
	"fmt"
	"sync"
	"time"

	"ndpipe/internal/dataset"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/tensor"
)

// BatchRequest is one photo in a batched inference call. Emb optionally
// carries a precomputed backbone embedding (length FeatureDim) — the serving
// gateway's content-hash cache passes embeddings back in so hot photos skip
// the frozen backbone entirely. A nil Emb means "compute it". WantEmb asks
// for the embedding actually used to come back in BatchResult.Emb (a private
// copy); callers that won't retain it leave WantEmb false and skip the
// per-photo copy.
type BatchRequest struct {
	Img     dataset.Image
	Emb     []float64
	WantEmb bool

	// HaveMemo offers a previously computed classifier result for this
	// content: MemoLabel/MemoConf as produced at model version MemoVersion.
	// InferBatch honors the memo only if the live model version still equals
	// MemoVersion — checked under the model lock, so a concurrently applied
	// classifier delta can never smuggle a stale label through. On a version
	// mismatch the row's label is recomputed (through the classifier, using
	// Emb when present), never served stale.
	HaveMemo    bool
	MemoLabel   int
	MemoConf    float64
	MemoVersion int
}

// BatchResult is the per-photo outcome of InferBatch. Exactly one of
// (Err == nil, Err != nil) holds per photo; a failed photo never aborts its
// batchmates. Emb is the backbone embedding actually used for this photo —
// a private copy the caller may retain (e.g. to populate a feature cache) —
// and is only populated when the request set WantEmb.
type BatchResult struct {
	UploadResult
	Emb []float64
	Err error
}

// InferBatch runs the online path for many photos with ONE batched forward
// pass: every photo needing an embedding goes through a single
// backbone.Forward over an M×InputDim matrix, cached embeddings are gathered
// alongside, and one clf.Forward labels the rows that don't carry a
// still-current memoized result (HaveMemo).
// Photo i's logits are bitwise-identical to what a sequential Upload(imgs[i])
// would produce: every layer in the stack is row-independent with a fixed
// per-element accumulation order (DESIGN.md S29), so batching — like
// parallelism — never changes output bits.
//
// Stores are assigned round-robin per valid photo in request order, matching
// the sequential loop. Ingest and label indexing fan out across goroutines
// (PipeStore Ingest and labeldb are concurrency-safe); validation and ingest
// failures are per-photo, counted in inferserver_upload_errors_total, and
// leave the other photos' results intact.
func (s *Server) InferBatch(reqs []BatchRequest) []BatchResult {
	t0 := time.Now()
	out := make([]BatchResult, len(reqs))
	defer func() {
		sec := time.Since(t0).Seconds()
		for range reqs {
			s.met.uploadLatency.Observe(sec)
		}
	}()

	// Validate per photo; partition valid photos into cached / to-compute.
	valid := make([]int, 0, len(reqs))
	miss := make([]int, 0, len(reqs))
	for i := range reqs {
		img := reqs[i].Img
		if len(img.Feat) != s.cfg.InputDim {
			out[i].Err = fmt.Errorf("inferserver: image %d has dim %d, want %d",
				img.ID, len(img.Feat), s.cfg.InputDim)
			s.met.errDim.Inc()
			continue
		}
		if reqs[i].Emb != nil && len(reqs[i].Emb) != s.cfg.FeatureDim {
			out[i].Err = fmt.Errorf("inferserver: image %d cached embedding has dim %d, want %d",
				img.ID, len(reqs[i].Emb), s.cfg.FeatureDim)
			s.met.errDim.Inc()
			continue
		}
		valid = append(valid, i)
		if reqs[i].Emb == nil {
			miss = append(miss, i)
		}
	}
	if len(valid) == 0 {
		return out
	}

	n := len(valid)
	emb := tensor.Get(n, s.cfg.FeatureDim)
	defer tensor.Put(emb)
	var xm *tensor.Matrix
	if len(miss) > 0 {
		xm = tensor.Get(len(miss), s.cfg.InputDim)
		defer tensor.Put(xm)
		for r, i := range miss {
			xm.SetRow(r, reqs[i].Img.Feat)
		}
	}
	// Row position of each valid photo inside emb/probs (-1 for invalid).
	pos := make([]int, len(reqs))
	for i := range pos {
		pos[i] = -1
	}
	for r, i := range valid {
		pos[i] = r
	}

	targets := make([]int, n) // store index per valid photo
	s.mu.Lock()
	version := s.version
	// Rows whose memoized result is still current skip the classifier; all
	// other rows are gathered into one head batch. The version gate lives
	// under the model lock, so an ApplyDelta can never race a memo into a
	// stale label.
	headPos := make([]int, n) // valid-row -> row in the head batch (-1: memo)
	headRows := make([]int, 0, n)
	for r, i := range valid {
		if reqs[i].HaveMemo && reqs[i].MemoVersion == version {
			headPos[r] = -1
			continue
		}
		headPos[r] = len(headRows)
		headRows = append(headRows, r)
	}
	if xm != nil {
		// One batched pass through the frozen backbone (the int8 replica when
		// quantized); copy each row out of the layer scratch into our own
		// matrix while the lock is held.
		f := s.forwardBackboneLocked(xm)
		for r, i := range miss {
			emb.SetRow(pos[i], f.Row(r))
		}
	}
	for _, i := range valid {
		// Caller-supplied embeddings are only materialized where they'll be
		// read: head rows, or rows whose embedding is echoed back.
		if reqs[i].Emb != nil && (headPos[pos[i]] >= 0 || reqs[i].WantEmb) {
			emb.SetRow(pos[i], reqs[i].Emb)
		}
	}
	// One batched classifier pass over the non-memo rows; ForwardInto copies
	// the logits out of the classifier's scratch under the lock
	// (clone-under-lock contract).
	var probs, hx *tensor.Matrix
	switch {
	case len(headRows) == n:
		probs = s.clf.ForwardInto(tensor.Get(n, s.cfg.Classes), emb)
	case len(headRows) > 0:
		hx = tensor.Get(len(headRows), s.cfg.FeatureDim)
		for k, r := range headRows {
			hx.SetRow(k, emb.Row(r))
		}
		probs = s.clf.ForwardInto(tensor.Get(len(headRows), s.cfg.Classes), hx)
	}
	// Replica-only copies per store under ring placement: these rows get a
	// second (third, ...) copy but their result/index work stays with the
	// primary replica's group.
	var replicaGroups map[int][]int
	if s.ring != nil {
		replicaGroups = make(map[int][]int)
		for r, i := range valid {
			reps := s.ring.Replicas(reqs[i].Img.ID)
			targets[r] = s.idx[reps[0]]
			for _, id := range reps[1:] {
				si := s.idx[id]
				replicaGroups[si] = append(replicaGroups[si], r)
			}
		}
	} else {
		for r := range valid {
			targets[r] = s.next % len(s.stores)
			s.next++
		}
	}
	s.uploads += n
	s.mu.Unlock()
	if hx != nil {
		tensor.Put(hx)
	}

	var labels []int
	if probs != nil {
		defer tensor.Put(probs)
		probs.SoftmaxRows()
		labels = probs.ArgmaxRows()
	}

	// Fan the storage path out grouped by destination store: one Ingest call
	// per store amortizes the per-call locking and accounting, and the
	// groups run concurrently (PipeStore Ingest and labeldb are
	// concurrency-safe). An ingest failure is attributed to every photo in
	// that store's group; the other groups' results stay intact.
	groups := make([][]int, len(s.stores)) // valid-row indices per store
	for r := range valid {
		groups[targets[r]] = append(groups[targets[r]], r)
	}
	var wg sync.WaitGroup
	for si, rows := range groups {
		if len(rows) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, rows []int) {
			defer wg.Done()
			target := s.stores[si]
			batch := make([]dataset.Image, len(rows))
			for k, r := range rows {
				batch[k] = reqs[valid[r]].Img
			}
			if err := target.Ingest(batch); err != nil {
				for _, r := range rows {
					out[valid[r]].Err = err
					s.met.errIngest.Inc()
				}
				return
			}
			for _, r := range rows {
				i := valid[r]
				img := reqs[i].Img
				var label int
				var conf float64
				if hp := headPos[r]; hp >= 0 {
					label = labels[hp]
					conf = probs.At(hp, label)
				} else {
					// Memoized result, version-checked above: returned
					// verbatim, bitwise-identical to its original computation.
					label = reqs[i].MemoLabel
					conf = reqs[i].MemoConf
				}
				s.db.Upsert(labeldb.Entry{
					ImageID:      img.ID,
					Label:        label,
					ModelVersion: version,
					Location:     target.ID,
				})
				s.met.uploads.Inc()
				s.met.confidence.Observe(conf)
				var e []float64
				if reqs[i].WantEmb {
					e = make([]float64, s.cfg.FeatureDim)
					copy(e, emb.Row(r)) // pos[valid[r]] == r by construction
				}
				out[i] = BatchResult{
					UploadResult: UploadResult{
						ImageID: img.ID, Label: label, Confidence: conf,
						ModelVersion: version, StoreID: target.ID,
					},
					Emb: e,
				}
			}
		}(si, rows)
	}
	// Secondary replica writes run alongside the primary groups. A failed
	// replica write never fails the photo — the primary copy landed (or will
	// report its own error); the object is merely under-replicated until the
	// tuner's next anti-entropy pass (tuner.AntiEntropy) refills the missing
	// copy from inventory-vs-ring diffing (checksum scrubbing cannot see an
	// absent replica).
	for si, rows := range replicaGroups {
		wg.Add(1)
		go func(si int, rows []int) {
			defer wg.Done()
			batch := make([]dataset.Image, len(rows))
			for k, r := range rows {
				batch[k] = reqs[valid[r]].Img
			}
			if err := s.stores[si].Ingest(batch); err != nil {
				for range rows {
					s.met.errReplica.Inc()
				}
			}
		}(si, rows)
	}
	wg.Wait()
	return out
}

// UploadBatch ingests many photos through one batched forward pass and
// returns per-photo results and errors: results[i] and errs[i] describe
// imgs[i], and a failed photo (bad dimensions, ingest error) no longer
// discards or blocks the rest of the batch.
func (s *Server) UploadBatch(imgs []dataset.Image) ([]UploadResult, []error) {
	reqs := make([]BatchRequest, len(imgs))
	for i, img := range imgs {
		reqs[i] = BatchRequest{Img: img}
	}
	res := s.InferBatch(reqs)
	results := make([]UploadResult, len(imgs))
	errs := make([]error, len(imgs))
	for i := range res {
		results[i] = res[i].UploadResult
		errs[i] = res[i].Err
	}
	return results, errs
}
