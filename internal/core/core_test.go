package core

import (
	"testing"
	"testing/quick"

	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultModelConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesZeros(t *testing.T) {
	fields := []func(*ModelConfig){
		func(c *ModelConfig) { c.InputDim = 0 },
		func(c *ModelConfig) { c.BackboneHidden = 0 },
		func(c *ModelConfig) { c.FeatureDim = -1 },
		func(c *ModelConfig) { c.HeadHidden = 0 },
		func(c *ModelConfig) { c.Classes = 0 },
	}
	for i, mutate := range fields {
		c := DefaultModelConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d not caught", i)
		}
	}
}

func TestBackboneDeterministicAndFrozen(t *testing.T) {
	cfg := DefaultModelConfig()
	a, b := cfg.NewBackbone(), cfg.NewBackbone()
	x := tensor.New(2, cfg.InputDim)
	x.Fill(0.5)
	ya, yb := a.Forward(x), b.Forward(x)
	if tensor.MaxAbsDiff(ya, yb) != 0 {
		t.Fatal("backbone replicas must be bit-identical")
	}
	if ya.Cols != cfg.FeatureDim {
		t.Fatalf("backbone output width %d, want %d", ya.Cols, cfg.FeatureDim)
	}
	for _, p := range a.Params() {
		if !p.Frozen {
			t.Fatalf("backbone param %s not frozen", p.Name)
		}
	}
}

func TestClassifierDeterministicAndTrainable(t *testing.T) {
	cfg := DefaultModelConfig()
	a, b := cfg.NewClassifier(), cfg.NewClassifier()
	sa, sb := a.TakeSnapshot(), b.TakeSnapshot()
	for name, m := range sa {
		if tensor.MaxAbsDiff(m, sb[name]) != 0 {
			t.Fatalf("classifier replicas differ at %s", name)
		}
	}
	if len(a.TrainableParams()) == 0 {
		t.Fatal("classifier must be trainable")
	}
}

func TestFloatCodecRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		got, err := DecodeFloats(EncodeFloats(v))
		if err != nil {
			return false
		}
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFloatsRejectsBadLength(t *testing.T) {
	if _, err := DecodeFloats([]byte{1, 2, 3}); err == nil {
		t.Fatal("length not multiple of 8 must error")
	}
}

func TestCNNBackboneDeterministicAndFrozen(t *testing.T) {
	cfg := DefaultModelConfig()
	cfg.Backbone = BackboneCNN // 24 = 4×6 by default
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b := cfg.NewBackbone(), cfg.NewBackbone()
	x := tensor.New(3, cfg.InputDim)
	for i := range x.Data {
		x.Data[i] = float64(i%7) * 0.3
	}
	ya, yb := a.Forward(x), b.Forward(x)
	if tensor.MaxAbsDiff(ya, yb) != 0 {
		t.Fatal("CNN backbone replicas must agree bit-for-bit")
	}
	if ya.Cols != cfg.FeatureDim {
		t.Fatalf("CNN backbone output width %d, want %d", ya.Cols, cfg.FeatureDim)
	}
	for _, p := range a.Params() {
		if !p.Frozen {
			t.Fatalf("CNN backbone param %s not frozen", p.Name)
		}
	}
	// Batch invariance (the eval-mode BatchNorm must not couple samples).
	single := tensor.New(1, cfg.InputDim)
	copy(single.Row(0), x.Row(1))
	ys := a.Forward(single)
	for j := 0; j < cfg.FeatureDim; j++ {
		if ys.At(0, j) != ya.At(1, j) {
			t.Fatal("CNN backbone output depends on batch composition")
		}
	}
}

func TestCNNBackboneGeometryValidation(t *testing.T) {
	cfg := DefaultModelConfig()
	cfg.Backbone = BackboneCNN
	cfg.CNNHeight, cfg.CNNWidth = 5, 5 // 25 != 24
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched CNN geometry must be rejected")
	}
}

func TestCNNBackboneEndToEndService(t *testing.T) {
	// The whole deployment works with a convolutional backbone.
	cfg := DefaultModelConfig()
	cfg.Backbone = BackboneCNN
	bb := cfg.NewBackbone()
	clf := cfg.NewClassifier()
	full := nn.Stack(bb, clf)
	if full.NumParams() == 0 {
		t.Fatal("stacked model empty")
	}
	if len(full.TrainableParams()) == 0 {
		t.Fatal("classifier must remain trainable")
	}
}
