// Package core is the shared heart of the NDPipe prototype: the model
// configuration every node derives its networks from, and the float codecs
// the storage/wire layers use for preprocessed binaries.
//
// FT-DMP requires every PipeStore to hold a bit-identical replica of the
// weight-freeze backbone and a consistent replica of the classifier for
// offline inference. Both are derived deterministically from ModelConfig,
// so nodes never ship the backbone around — only Check-N-Run deltas of the
// classifier ever cross the network.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

// BackboneKind selects the frozen feature extractor's architecture.
type BackboneKind int

const (
	// BackboneMLP is the default dense extractor.
	BackboneMLP BackboneKind = iota
	// BackboneCNN treats the input as a 1×H×W image and extracts features
	// with a frozen Conv2D + BatchNorm + global-average-pool stack — the
	// convolutional analogue of the paper's weight-freeze conv groups.
	// Requires InputDim to factor as CNNHeight×CNNWidth.
	BackboneCNN
)

// ModelConfig pins down the model replicated across the deployment.
type ModelConfig struct {
	Seed           int64 // derives backbone and classifier initializations
	InputDim       int   // raw image feature dimensionality
	BackboneHidden int   // hidden width of the frozen feature extractor
	FeatureDim     int   // embedding width (what PipeStores ship to the Tuner)
	HeadHidden     int   // hidden width of the trainable classifier
	Classes        int   // classifier output width

	// Backbone selects the extractor architecture (default BackboneMLP).
	Backbone BackboneKind
	// CNNHeight/CNNWidth give the 2-D interpretation of the input for
	// BackboneCNN; both default from InputDim (4×InputDim/4) when zero.
	CNNHeight, CNNWidth int
}

// DefaultModelConfig matches the calibrated synthetic workload
// (dataset.DefaultConfig).
func DefaultModelConfig() ModelConfig {
	return ModelConfig{
		Seed:           42,
		InputDim:       24,
		BackboneHidden: 64,
		FeatureDim:     32,
		HeadHidden:     128,
		Classes:        26,
	}
}

// Validate reports configuration errors.
func (c ModelConfig) Validate() error {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"InputDim", c.InputDim},
		{"BackboneHidden", c.BackboneHidden},
		{"FeatureDim", c.FeatureDim},
		{"HeadHidden", c.HeadHidden},
		{"Classes", c.Classes},
	} {
		if v.val <= 0 {
			return fmt.Errorf("core: %s must be positive", v.name)
		}
	}
	if c.Backbone == BackboneCNN {
		h, w := c.cnnShape()
		if h <= 0 || w <= 0 || h*w != c.InputDim {
			return fmt.Errorf("core: CNN backbone needs CNNHeight×CNNWidth == InputDim (have %d×%d vs %d)", h, w, c.InputDim)
		}
		if _, err := c.newCNNBackbone(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// NewBackbone builds the frozen weight-freeze network. All nodes calling
// this with the same config get bit-identical replicas.
func (c ModelConfig) NewBackbone() *nn.Network {
	if c.Backbone == BackboneCNN {
		net, err := c.newCNNBackbone()
		if err != nil {
			panic(err) // Validate() rejects bad CNN geometry first
		}
		return net
	}
	return nn.NewFeatureExtractor(c.Seed, c.InputDim, c.BackboneHidden, c.FeatureDim)
}

// cnnShape resolves the input's 2-D interpretation.
func (c ModelConfig) cnnShape() (h, w int) {
	h, w = c.CNNHeight, c.CNNWidth
	if h == 0 && w == 0 {
		h = 4
		w = c.InputDim / 4
	}
	return h, w
}

// newCNNBackbone builds the frozen convolutional extractor: Conv(3×3) →
// BatchNorm(eval) → ReLU → Conv(3×3) → ReLU → global average pool → Dense
// projection to FeatureDim.
func (c ModelConfig) newCNNBackbone() (*nn.Network, error) {
	h, w := c.cnnShape()
	rng := rand.New(rand.NewSource(c.Seed + 2))
	const ch1, ch2 = 8, 16
	conv1, err := nn.NewConv2D("bb.conv1", 1, h, w, ch1, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	bn := nn.NewBatchNorm("bb.bn1", conv1.OutFloats())
	bn.Train = false // frozen backbone: fixed normalization statistics
	conv2, err := nn.NewConv2D("bb.conv2", ch1, h, w, ch2, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	proj := nn.NewDense("bb.proj", ch2, c.FeatureDim, rng)
	net := &nn.Network{Layers: []nn.Layer{
		conv1,
		bn,
		nn.NewReLU("bb.relu1"),
		conv2,
		nn.NewReLU("bb.relu2"),
		nn.NewGlobalAvgPool2D("bb.pool", ch2, h, w),
		proj,
	}}
	net.FreezeAll()
	return net, nil
}

// NewClassifier builds the trainable head at its deterministic
// initialization (the state model version 0 refers to).
func (c ModelConfig) NewClassifier() *nn.Network {
	rng := rand.New(rand.NewSource(c.Seed + 1))
	return nn.NewMLP("clf", []int{c.FeatureDim, c.HeadHidden, c.Classes}, rng)
}

// calibRows sizes the quantization calibration batch: enough samples that
// per-layer min/max ranges stabilize, small enough that quantized model
// load stays cheap.
const calibRows = 256

// CalibrationBatch synthesizes the deterministic sample batch quantized
// backbones calibrate their activation ranges on: unit-sphere directions
// plus Gaussian cluster noise, the same shape dataset inputs have. Derived
// only from the model seed — never from a store's local shard, whose
// contents differ per node — so every replica calibrates to identical
// parameters and quantized embeddings stay bitwise-identical fleet-wide.
func (c ModelConfig) CalibrationBatch() *tensor.Matrix {
	rng := rand.New(rand.NewSource(c.Seed + 3))
	x := tensor.New(calibRows, c.InputDim)
	for i := 0; i < calibRows; i++ {
		row := x.Row(i)
		var norm float64
		for j := range row {
			row[j] = rng.NormFloat64()
			norm += row[j] * row[j]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for j := range row {
			row[j] = row[j]/norm + rng.NormFloat64()*0.3
		}
	}
	return x
}

// NewQuantBackbone builds the int8 replica of the frozen backbone,
// calibrated on CalibrationBatch. Same-config nodes get bit-identical
// quantized replicas, exactly like NewBackbone. Errors when the backbone
// architecture is not quantizable (the CNN extractor).
func (c ModelConfig) NewQuantBackbone() (*nn.QuantNetwork, error) {
	return nn.Quantize(c.NewBackbone(), c.CalibrationBatch())
}

// EncodeFloats serializes a float64 vector little-endian — the preprocessed
// binary format stored by photostore and decoded by the NPE pipeline.
func EncodeFloats(v []float64) []byte {
	return AppendFloats(make([]byte, 0, 8*len(v)), v)
}

// AppendFloats appends the little-endian serialization of v to dst and
// returns the extended slice: EncodeFloats without the per-call allocation,
// for hot paths that recycle an encode buffer.
func AppendFloats(dst []byte, v []float64) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(v))...)
	for i, f := range v {
		binary.LittleEndian.PutUint64(dst[off+i*8:], math.Float64bits(f))
	}
	return dst
}

// DecodeFloats reverses EncodeFloats.
func DecodeFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("core: preprocessed binary length %d not a multiple of 8", len(b))
	}
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v, nil
}
