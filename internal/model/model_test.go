package model

import (
	"math"
	"testing"
)

func TestZooContainsFiveModels(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 5 {
		t.Fatalf("zoo size %d, want 5", len(zoo))
	}
	names := map[string]bool{}
	for _, m := range zoo {
		names[m.Name] = true
	}
	for _, want := range []string{"ShuffleNetV2", "ResNet50", "InceptionV3", "ResNeXt101", "ViT"} {
		if !names[want] {
			t.Fatalf("zoo missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("ResNet50")
	if err != nil || m.Name != "ResNet50" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("AlexNet"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestResNet50Anchors(t *testing.T) {
	m := ResNet50()
	if g := m.TotalGFLOPs(); math.Abs(g-4.094) > 0.05 {
		t.Fatalf("ResNet50 GFLOPs = %v, want ≈4.1", g)
	}
	if p := m.TotalParams(); p < 25_000_000 || p > 26_000_000 {
		t.Fatalf("ResNet50 params = %d, want ≈25.6M", p)
	}
	// Preprocessed image must be the paper's 0.59 MB.
	if b := m.PreprocBytes(); b != 224*224*3*4 {
		t.Fatalf("PreprocBytes = %d", b)
	}
	if mb := float64(m.PreprocBytes()) / 1e6; math.Abs(mb-0.602) > 0.01 {
		t.Fatalf("preprocessed size %.3f MB, want ≈0.59-0.60", mb)
	}
}

func TestTrainableTailProperties(t *testing.T) {
	for _, m := range Zoo() {
		lf := m.LastFrozen()
		if int(lf) == len(m.Stages) {
			t.Fatalf("%s has no trainable stage", m.Name)
		}
		// All stages from LastFrozen onward must be trainable,
		// all before it frozen.
		for i, st := range m.Stages {
			if i < int(lf) && st.Trainable {
				t.Fatalf("%s: trainable stage %s before frozen tail", m.Name, st.Name)
			}
			if i >= int(lf) && !st.Trainable {
				t.Fatalf("%s: frozen stage %s inside trainable tail", m.Name, st.Name)
			}
		}
		if m.TrainableParams() <= 0 {
			t.Fatalf("%s: no trainable params", m.Name)
		}
		if m.TrainableParams() >= m.TotalParams() {
			t.Fatalf("%s: everything trainable", m.Name)
		}
	}
}

func TestCutOutputBytesMonotoneAtFeatureCut(t *testing.T) {
	// The FT-DMP cut (LastFrozen) must transfer far less than raw input —
	// that is the whole point of near-data feature extraction.
	for _, m := range Zoo() {
		feat := m.CutOutputBytes(m.LastFrozen())
		raw := m.CutOutputBytes(0)
		if feat*10 > raw {
			t.Fatalf("%s: feature bytes %d not ≪ raw %d", m.Name, feat, raw)
		}
	}
}

func TestCutNames(t *testing.T) {
	m := ResNet50()
	if got := m.CutName(0); got != "None" {
		t.Fatalf("CutName(0) = %q", got)
	}
	if got := m.CutName(1); got != "+Conv1" {
		t.Fatalf("CutName(1) = %q", got)
	}
	if got := m.CutName(Cut(len(m.Stages))); got != "+FC" {
		t.Fatalf("CutName(last) = %q", got)
	}
}

func TestSyncedParamBytes(t *testing.T) {
	m := ResNet50()
	// No trainable stage offloaded until the FC cut.
	for c := Cut(0); c <= m.LastFrozen(); c++ {
		if m.SyncedParamBytes(c) != 0 {
			t.Fatalf("cut %s should not require sync", m.CutName(c))
		}
	}
	full := Cut(len(m.Stages))
	if got := m.SyncedParamBytes(full); got != m.TrainableParamBytes() {
		t.Fatalf("+FC sync bytes = %d, want %d", got, m.TrainableParamBytes())
	}
}

func TestStoreTunerFLOPsPartition(t *testing.T) {
	m := InceptionV3()
	for c := Cut(0); int(c) <= len(m.Stages); c++ {
		sum := m.StoreGFLOPs(c) + m.TunerGFLOPs(c)
		if math.Abs(sum-m.TotalGFLOPs()) > 1e-9 {
			t.Fatalf("cut %d: store+tuner %v != total %v", c, sum, m.TotalGFLOPs())
		}
	}
	if m.StoreGFLOPs(0) != 0 {
		t.Fatal("cut 0 must place nothing on the store")
	}
}

func TestFeatureFloats(t *testing.T) {
	cases := map[string]int{
		"ResNet50":     2048,
		"InceptionV3":  2048,
		"ResNeXt101":   2048,
		"ViT":          768,
		"ShuffleNetV2": 1024,
	}
	for name, want := range cases {
		m, _ := ByName(name)
		if got := m.FeatureFloats(); got != want {
			t.Fatalf("%s FeatureFloats = %d, want %d", name, got, want)
		}
	}
}

func TestValidCut(t *testing.T) {
	m := ViT()
	if m.Valid(-1) || m.Valid(Cut(len(m.Stages)+1)) {
		t.Fatal("out-of-range cuts must be invalid")
	}
	if !m.Valid(0) || !m.Valid(Cut(len(m.Stages))) {
		t.Fatal("boundary cuts must be valid")
	}
}

// The per-model T4 throughput anchors from §6.2, derived as
// InferEff·65e12/(GFLOPs·1e9); this guards the calibration.
func TestT4ThroughputAnchors(t *testing.T) {
	const t4 = 65e12
	const batchEff128 = 128.0 / (128.0 + 24.0)
	anchors := map[string]float64{
		"ResNet50":    2129,
		"InceptionV3": 2439,
		"ResNeXt101":  449,
		"ViT":         277,
	}
	for name, want := range anchors {
		m, _ := ByName(name)
		ips := m.InferEff * batchEff128 * t4 / (m.TotalGFLOPs() * 1e9)
		if math.Abs(ips-want)/want > 0.05 {
			t.Fatalf("%s calibrated T4 IPS %.0f, want ≈%.0f", name, ips, want)
		}
	}
}
