// Package model is the DNN model zoo: stage-level descriptions (FLOPs,
// activation sizes, parameter counts) of the five image-classification
// networks the paper evaluates — ShuffleNetV2, ResNet50, InceptionV3,
// ResNeXt101 and ViT-B/16 — plus the partition-point machinery FT-DMP and
// APO operate on.
//
// A "stage" is a partitionable segment of the network (areas with residual
// blocks or skip connections are never split, per §5.3, so each ResNet
// conv group is one stage). Per-stage numbers come from the literature for
// 224×224 (299×299 for InceptionV3) inputs and are what the simulator,
// APO and the traffic accounting consume.
package model

import "fmt"

// Stage is one partitionable segment of a DNN.
type Stage struct {
	Name      string
	GFLOPs    float64 // forward-pass GFLOPs per image
	OutFloats int     // activation floats per image at the stage output
	Params    int     // parameters in the stage
	Trainable bool    // true for the classifier / task-module layers
}

// Spec describes one network in the zoo.
type Spec struct {
	Name        string
	InputFloats int     // preprocessed input floats per image (e.g. 224·224·3)
	RawBytes    int64   // typical stored JPEG size (bytes)
	Stages      []Stage // in execution order; trainable stages come last
	// InferEff is the fraction of a GPU's tensor peak this model attains on
	// the optimized inference engine (TensorRT-like). Calibrated so a single
	// T4 PipeStore reproduces the paper's per-model IPS anchors (§6.2).
	InferEff float64
	// TrainEff is the fraction of fp32 peak attained on the training engine
	// (TensorFlow-like), used for host-side full training and trainable-layer
	// updates.
	TrainEff float64
	// ActMemBytes is the accelerator memory consumed per in-flight image
	// (activations, attention maps, engine workspace). Batch × ActMemBytes
	// + ParamBytes must fit the accelerator memory or inference OOMs —
	// this is what knocks ViT out at large batch sizes in Fig 19.
	ActMemBytes int64
}

// BytesPerFloat is the parameter/storage precision (fp32, matching the
// paper's 0.59 MB preprocessed ImageNet images = 224·224·3 floats).
const BytesPerFloat = 4

// TransferBytesPerFloat is the precision of intermediate activations on the
// wire: the engine downcasts features to fp16 before transmission, which is
// what makes Fig 9's traffic fall monotonically as layers are offloaded.
const TransferBytesPerFloat = 2

// PreprocBytes returns the preprocessed-binary size per image.
func (s *Spec) PreprocBytes() int64 { return int64(s.InputFloats) * BytesPerFloat }

// TotalGFLOPs returns the full forward cost per image.
func (s *Spec) TotalGFLOPs() float64 {
	var g float64
	for _, st := range s.Stages {
		g += st.GFLOPs
	}
	return g
}

// TotalParams returns the total parameter count.
func (s *Spec) TotalParams() int {
	var p int
	for _, st := range s.Stages {
		p += st.Params
	}
	return p
}

// ParamBytes returns the serialized model size in bytes.
func (s *Spec) ParamBytes() int64 { return int64(s.TotalParams()) * BytesPerFloat }

// TrainableParams returns the parameter count of the trainable stages.
func (s *Spec) TrainableParams() int {
	var p int
	for _, st := range s.Stages {
		if st.Trainable {
			p += st.Params
		}
	}
	return p
}

// TrainableParamBytes returns the serialized size of the trainable stages.
func (s *Spec) TrainableParamBytes() int64 { return int64(s.TrainableParams()) * BytesPerFloat }

// TrainableGFLOPs returns the forward GFLOPs of the trainable stages.
func (s *Spec) TrainableGFLOPs() float64 {
	var g float64
	for _, st := range s.Stages {
		if st.Trainable {
			g += st.GFLOPs
		}
	}
	return g
}

// Cut is a partition point: stages [0, Cut) run on the PipeStore, stages
// [Cut, len) run on the Tuner. Cut==0 means nothing is offloaded ("None");
// Cut==len(Stages) offloads everything including the classifier ("+FC").
type Cut int

// NumCuts returns the number of valid cut positions (0..len(Stages)).
func (s *Spec) NumCuts() int { return len(s.Stages) + 1 }

// CutName renders the paper's labels: None, +Conv1, ..., +FC.
func (s *Spec) CutName(c Cut) string {
	if c == 0 {
		return "None"
	}
	return "+" + s.Stages[c-1].Name
}

// Valid reports whether c is a legal cut for this model.
func (s *Spec) Valid(c Cut) bool { return c >= 0 && int(c) <= len(s.Stages) }

// LastFrozen returns the cut that offloads exactly the weight-freeze stages
// (everything except the trainable tail) — the deepest cut FT-DMP permits
// without reintroducing weight synchronization.
func (s *Spec) LastFrozen() Cut {
	for i, st := range s.Stages {
		if st.Trainable {
			return Cut(i)
		}
	}
	return Cut(len(s.Stages))
}

// StoreGFLOPs returns the per-image forward cost of the offloaded part.
func (s *Spec) StoreGFLOPs(c Cut) float64 {
	var g float64
	for _, st := range s.Stages[:c] {
		g += st.GFLOPs
	}
	return g
}

// TunerGFLOPs returns the per-image forward cost of the Tuner-side part.
func (s *Spec) TunerGFLOPs(c Cut) float64 { return s.TotalGFLOPs() - s.StoreGFLOPs(c) }

// CutOutputBytes returns the per-image bytes crossing the network at cut c:
// the raw stored image when nothing is offloaded (the "None" configuration
// forwards raw images to the Tuner, §5.1/Fig 9), otherwise the fp16
// activation at the last offloaded stage.
func (s *Spec) CutOutputBytes(c Cut) int64 {
	if c == 0 {
		return s.RawBytes
	}
	return int64(s.Stages[c-1].OutFloats) * TransferBytesPerFloat
}

// SyncedParamBytes returns the parameter bytes that require cross-store
// weight synchronization under cut c: any *trainable* stage placed on the
// PipeStores must be kept consistent across all replicas (this is what makes
// the +FC cut explode in Fig 9). Frozen stages never sync.
func (s *Spec) SyncedParamBytes(c Cut) int64 {
	var p int
	for _, st := range s.Stages[:c] {
		if st.Trainable {
			p += st.Params
		}
	}
	return int64(p) * BytesPerFloat
}

// FeatureFloats returns the classifier input width (activation floats at the
// last frozen stage) — what PipeStores ship to the Tuner under FT-DMP.
func (s *Spec) FeatureFloats() int {
	return int(s.CutOutputBytes(s.LastFrozen()) / TransferBytesPerFloat)
}

// ByName looks a model up in the zoo.
func ByName(name string) (*Spec, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("model: unknown model %q", name)
}

// Zoo returns the five evaluated models, freshly allocated.
//
// Calibration anchors (one Tesla T4, optimized engine at batch 128, §6.2):
// ResNet50 2,129 IPS, InceptionV3 2,439 IPS, ResNeXt101 449 IPS, ViT 277
// IPS. The InferEff values below satisfy
// eff·batchEff(128)·65 TFLOPS/total-GFLOPs = anchor, batchEff(128)=0.842.
func Zoo() []*Spec {
	return []*Spec{ShuffleNetV2(), ResNet50(), InceptionV3(), ResNeXt101(), ViT()}
}

// ResNet50 is the paper's default model: five conv groups + FC classifier,
// ≈4.1 GFLOPs and 25.6 M params at 224².
func ResNet50() *Spec {
	return &Spec{
		Name:        "ResNet50",
		InputFloats: 224 * 224 * 3, // 150,528 floats = 0.59 MB ✔ paper §3.4
		RawBytes:    2_700_000,     // typical 2.7 MB stored JPEG ✔ paper §3.4
		InferEff:    0.159,         // → 2,129 IPS on T4 at batch 128
		TrainEff:    0.20,
		ActMemBytes: 13 << 20,
		Stages: []Stage{
			{Name: "Conv1", GFLOPs: 0.24, OutFloats: 112 * 112 * 64, Params: 9_472},
			{Name: "Conv2", GFLOPs: 0.68, OutFloats: 56 * 56 * 256, Params: 215_808},
			{Name: "Conv3", GFLOPs: 1.04, OutFloats: 28 * 28 * 512, Params: 1_219_584},
			{Name: "Conv4", GFLOPs: 1.47, OutFloats: 14 * 14 * 1024, Params: 7_098_368},
			// Conv5's OutFloats is post-global-average-pool (2048): that is
			// what crosses the wire, which is why traffic plunges at +Conv5.
			{Name: "Conv5", GFLOPs: 0.66, OutFloats: 2048, Params: 14_964_736},
			{Name: "FC", GFLOPs: 0.004, OutFloats: 1000, Params: 2_049_000, Trainable: true},
		},
	}
}

// InceptionV3 at 299²: ≈5.7 GFLOPs, 23.9 M params.
func InceptionV3() *Spec {
	return &Spec{
		Name:        "InceptionV3",
		InputFloats: 299 * 299 * 3,
		RawBytes:    2_700_000,
		InferEff:    0.254, // → 2,439 IPS on T4 at batch 128
		TrainEff:    0.22,
		ActMemBytes: 16 << 20,
		Stages: []Stage{
			{Name: "Stem", GFLOPs: 1.10, OutFloats: 35 * 35 * 192, Params: 1_062_000},
			{Name: "IncA", GFLOPs: 1.35, OutFloats: 35 * 35 * 288, Params: 1_600_000},
			{Name: "IncB", GFLOPs: 2.10, OutFloats: 17 * 17 * 768, Params: 8_900_000},
			{Name: "IncC", GFLOPs: 1.15, OutFloats: 2048, Params: 10_290_000},
			{Name: "FC", GFLOPs: 0.004, OutFloats: 1000, Params: 2_049_000, Trainable: true},
		},
	}
}

// ResNeXt101 (32×8d): ≈16.5 GFLOPs, 88.8 M params.
func ResNeXt101() *Spec {
	return &Spec{
		Name:        "ResNeXt101",
		InputFloats: 224 * 224 * 3,
		RawBytes:    2_700_000,
		InferEff:    0.135, // → 449 IPS on T4 at batch 128
		TrainEff:    0.18,
		ActMemBytes: 25 << 20,
		Stages: []Stage{
			{Name: "Conv1", GFLOPs: 0.24, OutFloats: 112 * 112 * 64, Params: 9_472},
			{Name: "Conv2", GFLOPs: 2.30, OutFloats: 56 * 56 * 256, Params: 700_000},
			{Name: "Conv3", GFLOPs: 4.10, OutFloats: 28 * 28 * 512, Params: 4_000_000},
			{Name: "Conv4", GFLOPs: 7.40, OutFloats: 14 * 14 * 1024, Params: 48_000_000},
			{Name: "Conv5", GFLOPs: 2.46, OutFloats: 2048, Params: 34_000_000},
			{Name: "FC", GFLOPs: 0.004, OutFloats: 1000, Params: 2_049_000, Trainable: true},
		},
	}
}

// ViT is ViT-B/16: ≈17.6 GFLOPs, 86.6 M params; the task module (MLP head)
// is the trainable part.
func ViT() *Spec {
	return &Spec{
		Name:        "ViT",
		InputFloats: 224 * 224 * 3,
		InferEff:    0.089, // → 277 IPS on T4 at batch 128
		TrainEff:    0.16,
		ActMemBytes: 55 << 20,
		RawBytes:    2_700_000,
		Stages: []Stage{
			{Name: "Patch", GFLOPs: 0.33, OutFloats: 197 * 768, Params: 590_592},
			{Name: "Enc1-4", GFLOPs: 5.76, OutFloats: 197 * 768, Params: 28_350_000},
			{Name: "Enc5-8", GFLOPs: 5.76, OutFloats: 197 * 768, Params: 28_350_000},
			// Enc9-12's output is the pooled CLS token embedding (768).
			{Name: "Enc9-12", GFLOPs: 5.76, OutFloats: 768, Params: 28_350_000},
			{Name: "Head", GFLOPs: 0.002, OutFloats: 1000, Params: 769_000, Trainable: true},
		},
	}
}

// ShuffleNetV2 (1×): ≈0.146 GFLOPs, 2.3 M params. It is accuracy-evaluated
// in Table 2 but small enough to be kernel-launch bound, hence the low
// efficiency.
func ShuffleNetV2() *Spec {
	return &Spec{
		Name:        "ShuffleNetV2",
		InputFloats: 224 * 224 * 3,
		RawBytes:    2_700_000,
		InferEff:    0.024, // launch-bound small model
		TrainEff:    0.05,
		ActMemBytes: 2 << 20,
		Stages: []Stage{
			{Name: "Conv1", GFLOPs: 0.012, OutFloats: 112 * 112 * 24, Params: 696},
			{Name: "Stage2", GFLOPs: 0.042, OutFloats: 28 * 28 * 116, Params: 130_000},
			{Name: "Stage3", GFLOPs: 0.050, OutFloats: 14 * 14 * 232, Params: 560_000},
			{Name: "Stage4", GFLOPs: 0.040, OutFloats: 1024, Params: 1_560_000},
			{Name: "FC", GFLOPs: 0.001, OutFloats: 1000, Params: 1_025_000, Trainable: true},
		},
	}
}
