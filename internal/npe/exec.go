package npe

import (
	"fmt"
	"sync"
	"time"

	"ndpipe/internal/telemetry"
)

// StageMetrics carries the per-stage latency histograms for one NPE
// pipeline, mirroring the paper's phase breakdown (Fig 6 / Fig 12:
// Read → Preproc/Decomp → FE&Cl). Any nil histogram disables timing for
// that stage; a nil *StageMetrics disables instrumentation entirely.
type StageMetrics struct {
	Read    *telemetry.Histogram // load stage: storage I/O per item
	Preproc *telemetry.Histogram // mid stage: CPU preprocess/decompress per item
	FECl    *telemetry.Histogram // fin stage: feature extraction & classification per item
}

// NewStageMetrics registers the three stage histograms in reg under
// npe_stage_seconds{task=...,stage=...} — the Fig 6/Fig 12 phase names —
// and returns them for use with Run3StageObserved. Call once per node/task,
// not per run.
func NewStageMetrics(reg *telemetry.Registry, task string) *StageMetrics {
	name := func(stage string) string {
		return fmt.Sprintf("npe_stage_seconds{task=%q,stage=%q}", task, stage)
	}
	return &StageMetrics{
		Read:    reg.Histogram(name("read")),
		Preproc: reg.Histogram(name("preproc")),
		FECl:    reg.Histogram(name("fecl")),
	}
}

// Run3Stage is the real (non-simulated) 3-stage pipeline executor used by
// the PipeStore daemon: load (storage I/O), mid (CPU preprocessing or
// decompression) and fin (accelerator execution) run concurrently, connected
// by bounded channels, so that disk, CPU and the execution engine overlap
// exactly as §5.4 prescribes. The first stage error cancels the pipeline and
// is returned.
func Run3Stage[A, B, C any](
	items []A,
	load func(A) (B, error),
	mid func(B) (C, error),
	fin func(C) error,
	buf int,
) error {
	return Run3StageObserved(items, load, mid, fin, buf, nil)
}

// Run3StageObserved is Run3Stage with per-item stage timing recorded into
// sm's histograms (when non-nil), so the pipeline's phase breakdown is
// visible on /metrics exactly as the paper's Fig 6 plots it.
func Run3StageObserved[A, B, C any](
	items []A,
	load func(A) (B, error),
	mid func(B) (C, error),
	fin func(C) error,
	buf int,
	sm *StageMetrics,
) error {
	return Run3StageTraced(items, load, mid, fin, buf, sm, nil)
}

// StageTrace ties one pipeline execution into a distributed trace: each
// stage goroutine's lifetime is recorded as a span named with the Fig-6
// phase names (`read`, `preproc`, `fecl`) under Parent, so a cross-node
// trace shows per-run stage wall times, not just per-item histograms.
type StageTrace struct {
	Tracer *telemetry.Tracer
	Parent telemetry.SpanContext
}

// Run3StageTraced is Run3StageObserved plus per-stage trace spans (st may
// be nil to disable tracing). Because the three stages run concurrently,
// the spans overlap; their common parent is the per-run span the caller
// started.
func Run3StageTraced[A, B, C any](
	items []A,
	load func(A) (B, error),
	mid func(B) (C, error),
	fin func(C) error,
	buf int,
	sm *StageMetrics,
	st *StageTrace,
) error {
	stageSpan := func(string) *telemetry.Span { return nil }
	if st != nil && st.Tracer != nil && st.Parent.Valid() {
		stageSpan = func(name string) *telemetry.Span {
			return st.Tracer.StartSpanIn(st.Parent, name)
		}
	}
	if sm != nil {
		if h := sm.Read; h != nil {
			inner := load
			load = func(a A) (B, error) {
				t0 := time.Now()
				b, err := inner(a)
				h.Observe(time.Since(t0).Seconds())
				return b, err
			}
		}
		if h := sm.Preproc; h != nil {
			inner := mid
			mid = func(b B) (C, error) {
				t0 := time.Now()
				c, err := inner(b)
				h.Observe(time.Since(t0).Seconds())
				return c, err
			}
		}
		if h := sm.FECl; h != nil {
			inner := fin
			fin = func(c C) error {
				t0 := time.Now()
				err := inner(c)
				h.Observe(time.Since(t0).Seconds())
				return err
			}
		}
	}
	if buf < 1 {
		buf = 1
	}
	loaded := make(chan B, buf)
	ready := make(chan C, buf)
	stop := make(chan struct{})
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			close(stop)
		})
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		defer close(loaded)
		defer stageSpan("read").End()
		for _, it := range items {
			b, err := load(it)
			if err != nil {
				fail(err)
				return
			}
			select {
			case loaded <- b:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer close(ready)
		defer stageSpan("preproc").End()
		for b := range loaded {
			c, err := mid(b)
			if err != nil {
				fail(err)
				return
			}
			select {
			case ready <- c:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer stageSpan("fecl").End()
		for c := range ready {
			if err := fin(c); err != nil {
				fail(err)
				// Drain so the upstream stages can exit promptly.
				for range ready {
				}
				return
			}
		}
	}()
	wg.Wait()
	return firstErr
}
