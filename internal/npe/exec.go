package npe

import (
	"sync"
)

// Run3Stage is the real (non-simulated) 3-stage pipeline executor used by
// the PipeStore daemon: load (storage I/O), mid (CPU preprocessing or
// decompression) and fin (accelerator execution) run concurrently, connected
// by bounded channels, so that disk, CPU and the execution engine overlap
// exactly as §5.4 prescribes. The first stage error cancels the pipeline and
// is returned.
func Run3Stage[A, B, C any](
	items []A,
	load func(A) (B, error),
	mid func(B) (C, error),
	fin func(C) error,
	buf int,
) error {
	if buf < 1 {
		buf = 1
	}
	loaded := make(chan B, buf)
	ready := make(chan C, buf)
	stop := make(chan struct{})
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			close(stop)
		})
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		defer close(loaded)
		for _, it := range items {
			b, err := load(it)
			if err != nil {
				fail(err)
				return
			}
			select {
			case loaded <- b:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer close(ready)
		for b := range loaded {
			c, err := mid(b)
			if err != nil {
				fail(err)
				return
			}
			select {
			case ready <- c:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for c := range ready {
			if err := fin(c); err != nil {
				fail(err)
				// Drain so the upstream stages can exit promptly.
				for range ready {
				}
				return
			}
		}
	}()
	wg.Wait()
	return firstErr
}
