package npe

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"ndpipe/internal/cluster"
	"ndpipe/internal/model"
)

func TestInputBytes(t *testing.T) {
	m := model.ResNet50()
	// Offline inference without offload reads raw JPEGs.
	if got := InputBytes(m, OfflineInference, Options{}); got != m.RawBytes {
		t.Fatalf("raw path = %d, want %d", got, m.RawBytes)
	}
	// With offload it reads preprocessed binaries.
	if got := InputBytes(m, OfflineInference, Options{OffloadPreproc: true}); got != m.PreprocBytes() {
		t.Fatalf("offload path = %d, want %d", got, m.PreprocBytes())
	}
	// Compression shrinks them.
	c := InputBytes(m, OfflineInference, Options{OffloadPreproc: true, Compress: true})
	if c >= m.PreprocBytes() {
		t.Fatalf("compressed %d not < %d", c, m.PreprocBytes())
	}
	// Fine-tuning always reads preprocessed data.
	if got := InputBytes(m, FineTune, Options{}); got != m.PreprocBytes() {
		t.Fatalf("fine-tune path = %d", got)
	}
}

func TestStorageOverheadMatchesPaper(t *testing.T) {
	m := model.ResNet50()
	// Uncompressed preprocessed binaries: paper reports ≈17.5 % overhead
	// with 2.7 MB average images (§5.4). 0.602/2.7 ≈ 22 %; the paper's
	// fleet mixes image sizes, so accept the 15–25 % band.
	oh := StorageOverhead(m, Options{OffloadPreproc: true})
	if oh < 0.15 || oh > 0.25 {
		t.Fatalf("uncompressed overhead %.3f outside [0.15,0.25]", oh)
	}
	ohc := StorageOverhead(m, Options{OffloadPreproc: true, Compress: true})
	if ohc >= oh/2 {
		t.Fatalf("compression should at least halve overhead: %.3f vs %.3f", ohc, oh)
	}
	if StorageOverhead(m, Options{}) != 0 {
		t.Fatal("no offload → no overhead")
	}
}

func TestBatchEffMonotoneSaturating(t *testing.T) {
	prev := 0.0
	for _, b := range []int{1, 8, 32, 128, 256, 512} {
		e := BatchEff(b)
		if e <= prev {
			t.Fatalf("batchEff not increasing at %d", b)
		}
		prev = e
	}
	// Marginal beyond 128 (Fig 19): going 128→512 gains <15 %.
	if BatchEff(512)/BatchEff(128) > 1.15 {
		t.Fatalf("batch gains beyond 128 too large: %v", BatchEff(512)/BatchEff(128))
	}
	// Huge gains from 1→128.
	if BatchEff(128)/BatchEff(1) < 5 {
		t.Fatal("small batches should be heavily penalized")
	}
}

func TestViTOOMAtLargeBatch(t *testing.T) {
	ps := cluster.PipeStore(10)
	vit := model.ViT()
	if err := CheckMemory(ps, vit, 128); err != nil {
		t.Fatalf("ViT batch 128 should fit: %v", err)
	}
	err := CheckMemory(ps, vit, 512)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("ViT batch 512 should OOM, got %v", err)
	}
	// ResNet50 fits even at 512 (Fig 19 shows bars for it everywhere).
	if err := CheckMemory(ps, model.ResNet50(), 512); err != nil {
		t.Fatalf("ResNet50 batch 512 should fit: %v", err)
	}
}

func TestT4OptimizedInferenceAnchor(t *testing.T) {
	// One optimized PipeStore must reproduce the paper's ≈2,129 IPS for
	// ResNet50 offline inference (§6.2), i.e. be FE-bound, not I/O-bound.
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	st, err := StageTimes(ps, m, m.TotalGFLOPs(), OfflineInference, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	ips := Throughput(st, true)
	if math.Abs(ips-2129)/2129 > 0.05 {
		t.Fatalf("optimized PipeStore IPS = %.0f, want ≈2129", ips)
	}
	if st.FE < st.Read || st.FE < st.Decomp {
		t.Fatalf("after +Offload+Comp the bottleneck must be FE: %+v", st)
	}
}

func TestNaivePipeStorePreprocBound(t *testing.T) {
	// Without optimizations, offline inference on a PipeStore is crushed by
	// single-core preprocessing (§4.2, Fig 6b / Fig 12b).
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	st, err := StageTimes(ps, m, m.TotalGFLOPs(), OfflineInference, Naive())
	if err != nil {
		t.Fatal(err)
	}
	if st.Preproc <= st.Read || st.Preproc <= st.FE {
		t.Fatalf("naive bottleneck must be preprocessing: %+v", st)
	}
	naiveIPS := Throughput(st, true)
	opt, _ := StageTimes(ps, m, m.TotalGFLOPs(), OfflineInference, Optimized())
	if Throughput(opt, true) < 10*naiveIPS {
		t.Fatalf("optimizations should be transformative: naive %.0f vs opt %.0f",
			naiveIPS, Throughput(opt, true))
	}
}

func TestPipeliningBeatsSerial(t *testing.T) {
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	st, err := StageTimes(ps, m, m.TotalGFLOPs(), OfflineInference, Naive())
	if err != nil {
		t.Fatal(err)
	}
	if Throughput(st, true) <= Throughput(st, false) {
		t.Fatal("pipelined throughput must exceed serial")
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	opt := Optimized()
	st, err := StageTimes(ps, m, m.TotalGFLOPs(), OfflineInference, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulatePipeline(ps, m, m.TotalGFLOPs(), OfflineInference, opt, 5000)
	if err != nil {
		t.Fatal(err)
	}
	analytic := Throughput(st, true)
	if math.Abs(rep.IPS-analytic)/analytic > 0.10 {
		t.Fatalf("DES IPS %.0f vs analytic %.0f diverge >10%%", rep.IPS, analytic)
	}
}

func TestSimulateSerialSlower(t *testing.T) {
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	p := Naive()
	s := Naive()
	s.Pipelined = false
	rp, err := SimulatePipeline(ps, m, m.TotalGFLOPs(), OfflineInference, p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulatePipeline(ps, m, m.TotalGFLOPs(), OfflineInference, s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Duration >= rs.Duration {
		t.Fatalf("pipelined %v should beat serial %v", rp.Duration, rs.Duration)
	}
}

func TestStageTimesRejectsBadBatch(t *testing.T) {
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	if _, err := StageTimes(ps, m, m.TotalGFLOPs(), FineTune, Options{BatchSize: 0}); err == nil {
		t.Fatal("expected error for zero batch")
	}
}

func TestRun3StageProcessesAllInOrderlessFashion(t *testing.T) {
	var sum int
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	err := Run3Stage(items,
		func(a int) (int, error) { return a * 2, nil },
		func(b int) (int, error) { return b + 1, nil },
		func(c int) error { sum += c; return nil },
		4)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range items {
		want += v*2 + 1
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestRun3StagePropagatesErrors(t *testing.T) {
	boom := fmt.Errorf("boom")
	err := Run3Stage([]int{1, 2, 3},
		func(a int) (int, error) {
			if a == 2 {
				return 0, boom
			}
			return a, nil
		},
		func(b int) (int, error) { return b, nil },
		func(c int) error { return nil },
		1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Error in the final stage.
	err = Run3Stage([]int{1, 2, 3},
		func(a int) (int, error) { return a, nil },
		func(b int) (int, error) { return b, nil },
		func(c int) error {
			if c == 3 {
				return boom
			}
			return nil
		},
		1)
	if !errors.Is(err, boom) {
		t.Fatalf("final-stage err = %v, want boom", err)
	}
}

func TestFineTuneDecompHiddenByFE(t *testing.T) {
	// §5.4: two decompression cores suffice because FE&Cl hides the
	// decompression cost. Verify decomp ≤ FE for the optimized fine-tune
	// path on ResNet50.
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	st, err := StageTimes(ps, m, m.StoreGFLOPs(m.LastFrozen()), FineTune, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if st.Decomp > st.FE {
		t.Fatalf("decomp %.2g not hidden by FE %.2g", st.Decomp, st.FE)
	}
}
