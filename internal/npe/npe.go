// Package npe implements the Near-data Processing Engine (§5.4): the
// per-server execution model for fine-tuning feature extraction and offline
// inference, with the paper's three optimizations —
//
//   - 3-stage pipelining (data loading ∥ preprocess/decompress ∥ FE&Cl),
//   - preprocessing offloaded to the inference server at upload time
//     (+Offload), with the preprocessed binaries stored deflate-compressed
//     to contain the 17.5 % storage overhead (+Comp),
//   - enlarged batch sizes to keep the accelerator busy (+Batch).
//
// It provides an analytic stage-time model (StageTimes/Throughput), a
// discrete-event simulation of the pipeline on the sim engine
// (SimulatePipeline), and a real goroutine pipeline executor (Run3Stage)
// used by the PipeStore daemon.
package npe

import (
	"errors"
	"fmt"

	"ndpipe/internal/cluster"
	"ndpipe/internal/model"
	"ndpipe/internal/sim"
)

// Task distinguishes the two near-data workloads.
type Task int

const (
	// OfflineInference relabels stored photos: it starts from raw images
	// unless preprocessing was offloaded at upload time.
	OfflineInference Task = iota
	// FineTune extracts features for FT-DMP: inputs are the preprocessed
	// training binaries.
	FineTune
)

// Compression ratios achieved by deflate on the two stored formats,
// calibrated against §5.4 (preprocessed float binaries compress ≈4×;
// already-encoded JPEGs barely compress).
const (
	PreprocCompressRatio = 0.245
	JPEGCompressRatio    = 0.93
)

// Options selects which NPE optimizations are active.
type Options struct {
	// OffloadPreproc stores preprocessed binaries produced by the inference
	// server at upload, removing the preprocessing stage from this server.
	OffloadPreproc bool
	// Compress stores the preprocessed binaries deflate-compressed, adding a
	// decompression stage here (bounded to DecompCores CPU cores).
	Compress bool
	// BatchSize is the accelerator batch (paper default 128 for inference).
	BatchSize int
	// Pipelined enables the 3-stage pipeline; otherwise stages serialize.
	Pipelined bool
	// PreprocCores / DecompCores bound the CPU cores spent on each stage
	// (storage servers must keep cores free for their primary duty: the
	// paper allots 1 preprocessing core and at most 2 decompression cores).
	PreprocCores int
	DecompCores  int
}

// Naive is the unoptimized configuration in Fig 12.
func Naive() Options {
	return Options{BatchSize: 32, Pipelined: true, PreprocCores: 1, DecompCores: 2}
}

// Optimized is the full +Offload+Comp+Batch configuration the evaluation
// uses (§6.1: batch 128 for inference).
func Optimized() Options {
	return Options{OffloadPreproc: true, Compress: true, BatchSize: 128, Pipelined: true, PreprocCores: 1, DecompCores: 2}
}

// Stages holds per-image stage times in seconds. A zero value means the
// stage does not exist in this configuration.
type Stages struct {
	Read    float64
	Preproc float64
	Decomp  float64
	FE      float64
}

// ErrOOM is returned when batch × activation memory exceeds the accelerator.
var ErrOOM = errors.New("npe: accelerator out of memory")

// BatchEff is the fraction of peak accelerator throughput attained at a
// given batch size (kernel-launch overheads dominate small batches). The
// half-saturation constant reproduces Fig 19: large gains up to ≈128,
// marginal beyond.
func BatchEff(batch int) float64 {
	const half = 24.0
	b := float64(batch)
	return b / (b + half)
}

// MaxBatch returns the largest batch ≤ want that fits the accelerator's
// memory (halving repeatedly), or an error if even a single image does not
// fit. FT-DMP uses it to clamp the training batch on small accelerators.
func MaxBatch(s *cluster.Server, m *model.Spec, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	for b := want; b >= 1; b /= 2 {
		if CheckMemory(s, m, b) == nil {
			return b, nil
		}
	}
	return 0, CheckMemory(s, m, 1)
}

// CheckMemory reports ErrOOM if the batch does not fit the accelerator.
func CheckMemory(s *cluster.Server, m *model.Spec, batch int) error {
	if !s.HasAccel() {
		return fmt.Errorf("npe: %s has no accelerator", s.Name)
	}
	need := int64(batch)*m.ActMemBytes + m.ParamBytes() + (1 << 30) // 1 GiB runtime reserve
	if need > s.Accels[0].MemoryBytes {
		return fmt.Errorf("%w: %s batch %d needs %.1f GiB > %.1f GiB",
			ErrOOM, m.Name, batch, float64(need)/(1<<30), float64(s.Accels[0].MemoryBytes)/(1<<30))
	}
	return nil
}

// InputBytes returns the on-disk bytes read per image for the task under
// the given options.
func InputBytes(m *model.Spec, task Task, opt Options) int64 {
	switch task {
	case FineTune:
		if opt.Compress {
			return int64(float64(m.PreprocBytes()) * PreprocCompressRatio)
		}
		return m.PreprocBytes()
	case OfflineInference:
		if opt.OffloadPreproc {
			if opt.Compress {
				return int64(float64(m.PreprocBytes()) * PreprocCompressRatio)
			}
			return m.PreprocBytes()
		}
		return m.RawBytes
	}
	panic("npe: unknown task")
}

// StorageOverhead returns the extra storage fraction imposed by keeping
// preprocessed binaries alongside the raw photos (§5.4 reports 17.5 %
// uncompressed; compression shrinks it proportionally).
func StorageOverhead(m *model.Spec, opt Options) float64 {
	if !opt.OffloadPreproc {
		return 0
	}
	extra := float64(m.PreprocBytes())
	if opt.Compress {
		extra *= PreprocCompressRatio
	}
	return extra / float64(m.RawBytes)
}

// StageTimes computes the per-image stage times for running `gflops` of
// model m's forward pass on server s (pass m.TotalGFLOPs() for full
// inference, m.StoreGFLOPs(cut) for FT-DMP feature extraction).
func StageTimes(s *cluster.Server, m *model.Spec, gflops float64, task Task, opt Options) (Stages, error) {
	if opt.BatchSize <= 0 {
		return Stages{}, fmt.Errorf("npe: batch size must be positive")
	}
	if err := CheckMemory(s, m, opt.BatchSize); err != nil {
		return Stages{}, err
	}
	var st Stages
	in := InputBytes(m, task, opt)
	st.Read = float64(in) / s.Disk.ReadBps

	if task == OfflineInference && !opt.OffloadPreproc {
		cores := opt.PreprocCores
		if cores <= 0 {
			cores = 1
		}
		if cores > s.CPU.Cores {
			cores = s.CPU.Cores
		}
		st.Preproc = 1 / (s.CPU.PreprocIPS * float64(cores))
	}
	if opt.Compress && (task == FineTune || opt.OffloadPreproc) {
		cores := opt.DecompCores
		if cores <= 0 {
			cores = 1
		}
		if cores > s.CPU.Cores {
			cores = s.CPU.Cores
		}
		st.Decomp = float64(m.PreprocBytes()) / (s.CPU.DecompBps * float64(cores))
	}
	ips := s.InferIPS(m, gflops) * BatchEff(opt.BatchSize)
	st.FE = 1 / ips
	return st, nil
}

// Throughput returns images/s for the stage times: the bottleneck-stage
// rate when pipelined, the serial rate otherwise.
func Throughput(st Stages, pipelined bool) float64 {
	if pipelined {
		slow := st.Read
		for _, t := range []float64{st.Preproc, st.Decomp, st.FE} {
			if t > slow {
				slow = t
			}
		}
		if slow == 0 {
			return 0
		}
		return 1 / slow
	}
	total := st.Read + st.Preproc + st.Decomp + st.FE
	if total == 0 {
		return 0
	}
	return 1 / total
}

// Report summarizes a simulated pipeline run.
type Report struct {
	Images    int
	Duration  float64 // seconds
	IPS       float64
	DiskBusy  float64
	CPUBusy   float64 // core-seconds
	AccelBusy float64
}

// SimulatePipeline executes the NPE pipeline for nImages on the sim engine,
// batch by batch, and returns the measured duration and per-component busy
// times. It is the source of the Fig 12 ablation and validates the analytic
// model (the two agree to within pipeline fill/drain effects).
func SimulatePipeline(s *cluster.Server, m *model.Spec, gflops float64, task Task, opt Options, nImages int) (Report, error) {
	st, err := StageTimes(s, m, gflops, task, opt)
	if err != nil {
		return Report{}, err
	}
	eng := sim.New()
	disk := eng.NewResource("disk", 1)
	cpu := eng.NewResource("cpu", s.CPU.Cores)
	accel := eng.NewResource("accel", 1)

	batch := opt.BatchSize
	nBatches := (nImages + batch - 1) / batch
	sizeOf := func(i int) int {
		if i == nBatches-1 && nImages%batch != 0 {
			return nImages % batch
		}
		return batch
	}

	if opt.Pipelined {
		q1 := eng.NewQueue("loaded", 2)
		q2 := eng.NewQueue("ready", 2)
		eng.Go("load", func(p *sim.Proc) {
			for i := 0; i < nBatches; i++ {
				disk.Use(p, st.Read*float64(sizeOf(i)))
				q1.Put(p, sizeOf(i))
			}
		})
		eng.Go("mid", func(p *sim.Proc) {
			for i := 0; i < nBatches; i++ {
				n := q1.Get(p).(int)
				if d := (st.Preproc + st.Decomp) * float64(n); d > 0 {
					cpu.Use(p, d)
				}
				q2.Put(p, n)
			}
		})
		eng.Go("fe", func(p *sim.Proc) {
			for i := 0; i < nBatches; i++ {
				n := q2.Get(p).(int)
				accel.Use(p, st.FE*float64(n))
			}
		})
	} else {
		eng.Go("serial", func(p *sim.Proc) {
			for i := 0; i < nBatches; i++ {
				n := float64(sizeOf(i))
				disk.Use(p, st.Read*n)
				if d := (st.Preproc + st.Decomp) * n; d > 0 {
					cpu.Use(p, d)
				}
				accel.Use(p, st.FE*n)
			}
		})
	}
	end, err := eng.Run()
	if err != nil {
		return Report{}, err
	}
	return Report{
		Images:    nImages,
		Duration:  end,
		IPS:       float64(nImages) / end,
		DiskBusy:  disk.BusyTime(),
		CPUBusy:   cpu.BusyTime(),
		AccelBusy: accel.BusyTime(),
	}, nil
}
