package npe

import (
	"testing"

	"ndpipe/internal/telemetry"
)

func TestRun3StageObservedRecordsStageTimings(t *testing.T) {
	reg := telemetry.NewRegistry()
	sm := NewStageMetrics(reg, "test")
	items := []int{1, 2, 3, 4, 5}
	var got []int
	err := Run3StageObserved(items,
		func(a int) (int, error) { return a * 10, nil },
		func(b int) (int, error) { return b + 1, nil },
		func(c int) error { got = append(got, c); return nil },
		2,
		sm,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("processed %d items, want %d", len(got), len(items))
	}
	for _, h := range []*telemetry.Histogram{sm.Read, sm.Preproc, sm.FECl} {
		if h.Count() != uint64(len(items)) {
			t.Fatalf("stage histogram count = %d, want %d", h.Count(), len(items))
		}
	}
}

func TestRun3StageObservedNilMetricsOK(t *testing.T) {
	n := 0
	err := Run3StageObserved([]int{1, 2, 3},
		func(a int) (int, error) { return a, nil },
		func(b int) (int, error) { return b, nil },
		func(c int) error { n++; return nil },
		1,
		nil,
	)
	if err != nil || n != 3 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestNewStageMetricsNames(t *testing.T) {
	reg := telemetry.NewRegistry()
	NewStageMetrics(reg, "finetune").Read.Observe(0.001)
	found := false
	for _, p := range reg.Snapshot() {
		if p.Name == `npe_stage_seconds{task="finetune",stage="read"}` {
			found = true
		}
	}
	if !found {
		t.Fatal("stage histogram not registered under the Fig 6 phase name")
	}
}
