package wire

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestOversizeFrameRejected is the hostile-header regression: a peer whose
// gob length prefix claims a multi-gigabyte message must get a typed
// ErrTooLarge — before the decoder allocates anything — and the counter
// must record the event.
func TestOversizeFrameRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	codec := NewCodec(b)

	before := oversizeFrames.Value()
	go func() {
		// 0xFC = four big-endian length bytes follow; 0xFFFFFFFF claims a
		// ~4 GiB message. No payload is ever sent.
		_, _ = a.Write([]byte{0xFC, 0xFF, 0xFF, 0xFF, 0xFF})
	}()

	errc := make(chan error, 1)
	go func() {
		_, err := codec.Recv()
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("Recv() = %v, want ErrTooLarge", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not fail: decoder is waiting for the claimed 4 GiB")
	}
	if got := oversizeFrames.Value(); got != before+1 {
		t.Fatalf("wire_oversize_frames_total = %d, want %d", got, before+1)
	}

	// The stream is poisoned: every subsequent Recv returns the same verdict.
	if _, err := codec.Recv(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("second Recv() = %v, want sticky ErrTooLarge", err)
	}
}

// TestOversizeMalformedPrefix: a length-of-length byte claiming more than 8
// length bytes is not a size the protocol can ever produce — reject it as
// hostile framing rather than letting gob misparse.
func TestOversizeMalformedPrefix(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	codec := NewCodec(b)
	go func() { _, _ = a.Write([]byte{0x80}) }() // claims 128 length bytes
	errc := make(chan error, 1)
	go func() {
		_, err := codec.Recv()
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("Recv() = %v, want ErrTooLarge", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv hung on malformed prefix")
	}
}

// TestGuardPassesLegitimateTraffic: the guard must be invisible to real
// streams, including messages large enough that headers and payloads span
// many Read calls, and with a tight (but sufficient) limit configured.
func TestGuardPassesLegitimateTraffic(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewCodecMax(a, 1<<22), NewCodecMax(b, 1<<22)

	want := &Message{Type: MsgFeatures, StoreID: "ps-9", Rows: 512, Cols: 64,
		X: make([]float64, 512*64)}
	for i := range want.X {
		want.X[i] = float64(i)
	}
	go func() {
		for i := 0; i < 3; i++ {
			_ = ca.Send(want)
		}
	}()
	for i := 0; i < 3; i++ {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got.Rows != want.Rows || len(got.X) != len(want.X) || got.X[100] != want.X[100] {
			t.Fatalf("message %d mangled by the guard", i)
		}
	}
}

// TestGuardRejectsLegitimatelyOversized: an honest peer that simply exceeds
// the configured limit is also refused — the limit is about the receiver's
// memory, not the sender's intent.
func TestGuardRejectsLegitimatelyOversized(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewCodec(a), NewCodecMax(b, 1024)
	go func() { _ = ca.Send(&Message{Type: MsgFeatures, X: make([]float64, 4096)}) }()
	errc := make(chan error, 1)
	go func() {
		_, err := cb.Recv()
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("Recv() = %v, want ErrTooLarge", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv hung instead of rejecting oversized message")
	}
}

// TestLeaderEpochOldPeerFallback pins the interop contract for the HA
// fields: an old peer's messages decode with LeaderEpoch 0 ("unfenced"),
// and a modern fenced message is readable by an old peer with the rest of
// its fields intact (gob drops unknown fields by name).
func TestLeaderEpochOldPeerFallback(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	go func() {
		_ = ca.Send(&Message{Type: MsgModelDelta, LeaderEpoch: 7, WALSeq: 3})
		_ = ca.Send(&Message{Type: MsgModelDelta}) // legacy, unstamped
	}()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.LeaderEpoch != 7 || got.WALSeq != 3 {
		t.Fatalf("HA fields did not round-trip: %+v", got)
	}
	got, err = cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.LeaderEpoch != 0 {
		t.Fatalf("unstamped message decoded with LeaderEpoch %d, want 0", got.LeaderEpoch)
	}
}
