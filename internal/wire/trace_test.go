package wire

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"ndpipe/internal/telemetry"
)

func TestTraceContextRoundTrip(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	tc := telemetry.SpanContext{Trace: telemetry.NewTraceID(), Span: 77}
	msg := &Message{Type: MsgTrainRequest, StoreID: "ps-0", Run: 1}
	msg.SetTraceContext(tc)
	go func() { _ = ca.Send(msg) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceContext() != tc {
		t.Fatalf("trace context = %+v, want %+v", got.TraceContext(), tc)
	}
}

func TestSpansMessageRoundTrip(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	trace := telemetry.NewTraceID()
	want := &Message{
		Type:    MsgSpans,
		StoreID: "ps-1",
		Trace:   trace,
		Spans: []telemetry.SpanRecord{
			{Trace: trace, ID: 5, Parent: 3, Name: "pipestore.extract",
				Start: time.Now().Truncate(0), Duration: 0.25,
				Attrs: []telemetry.Attr{{Key: "store", Value: "ps-1"}}},
			{Trace: trace, ID: 6, Parent: 5, Name: "read",
				Start: time.Now().Truncate(0), Duration: 0.1},
		},
	}
	go func() { _ = ca.Send(want) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgSpans || got.Trace != trace || len(got.Spans) != 2 {
		t.Fatalf("spans message = %+v", got)
	}
	if got.Spans[0].Name != "pipestore.extract" || got.Spans[0].ID != 5 ||
		len(got.Spans[0].Attrs) != 1 || got.Spans[0].Attrs[0].Value != "ps-1" {
		t.Fatalf("span record mangled: %+v", got.Spans[0])
	}
	if got.Spans[1].Parent != 5 || got.Spans[1].Duration != 0.1 {
		t.Fatalf("child span mangled: %+v", got.Spans[1])
	}
}

// legacyMessage is the PR-1 wire struct, before the trace fields existed.
// Gob matches fields by name, so an old peer's encoding must still decode —
// with zero trace context, meaning "untraced".
type legacyMessage struct {
	Type      MsgType
	StoreID   string
	Runs      int
	BatchSize int
	Run       int
	Rows      int
	Cols      int
	X         []float64
	Labels    []int
	IDs       []uint64
	Final     bool
	Err       string
}

func TestOldPeerMessageDecodesUntraced(t *testing.T) {
	var buf bytes.Buffer
	old := legacyMessage{Type: MsgFeatures, StoreID: "ps-0", Run: 3,
		Rows: 1, Cols: 2, X: []float64{1, 2}, Final: true}
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decoding an old peer's message failed: %v", err)
	}
	if got.Type != MsgFeatures || got.StoreID != "ps-0" || got.Run != 3 || !got.Final {
		t.Fatalf("legacy payload mangled: %+v", got)
	}
	if tc := got.TraceContext(); tc.Valid() || tc.Trace != 0 || tc.Span != 0 {
		t.Fatalf("legacy message must decode as untraced, got %+v", tc)
	}
	if got.Spans != nil {
		t.Fatalf("legacy message must have no spans, got %+v", got.Spans)
	}
}

// And the reverse: a traced message decoded by an old peer must not error —
// gob ignores fields the receiving struct lacks.
func TestNewMessageDecodesOnOldPeer(t *testing.T) {
	var buf bytes.Buffer
	msg := &Message{Type: MsgTrainRequest, Run: 2,
		Trace: telemetry.NewTraceID(), Parent: 9}
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		t.Fatal(err)
	}
	var old legacyMessage
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old peer failed to decode a traced message: %v", err)
	}
	if old.Type != MsgTrainRequest || old.Run != 2 {
		t.Fatalf("payload mangled on old peer: %+v", old)
	}
}

func TestSetTraceContextZeroIsNoTrace(t *testing.T) {
	var msg Message
	msg.SetTraceContext(telemetry.SpanContext{})
	if msg.Trace != 0 || msg.Parent != 0 || msg.TraceContext().Valid() {
		t.Fatalf("zero context must stay zero: %+v", msg)
	}
}
