package wire

import (
	"errors"
	"fmt"
	"io"

	"ndpipe/internal/telemetry"
)

// Oversize-frame guard. A gob stream is a sequence of messages, each
// preceded by an unsigned byte count in gob's uint encoding; the decoder
// allocates a buffer of the claimed size BEFORE reading the payload, so a
// hostile peer can claim a multi-gigabyte message in a five-byte header and
// OOM the process without ever sending the bytes. The guard sits between
// the connection and the decoder, parses the same length prefixes the
// decoder will, and fails the stream with a typed error the moment a claim
// exceeds the limit — the decoder never sees the hostile length, so the
// allocation never happens.

// DefaultMaxMessage is the decoded-message size limit applied by NewCodec.
// It matches the durable log's maxRecord bound: nothing in the protocol
// legitimately ships a larger single message.
const DefaultMaxMessage = 1 << 28 // 256 MiB

// ErrTooLarge is the typed error a Codec returns when the peer claims a
// message larger than the configured limit. The stream is poisoned once it
// is returned: framing can no longer be trusted.
var ErrTooLarge = errors.New("wire: message exceeds size limit")

var oversizeFrames = telemetry.Default.Counter("wire_oversize_frames_total")

// guardReader is the pass-through reader. It tracks gob's message framing
// across arbitrary Read boundaries: when `remaining` payload bytes are
// outstanding they stream through untouched; otherwise the next bytes form
// a length prefix (first byte < 0x80 is the length itself; otherwise
// 256-b big-endian length bytes follow, at most 8).
type guardReader struct {
	r   io.Reader
	max uint64
	err error // sticky failure; returned on every Read after detection

	remaining uint64 // payload bytes left in the current message
	hdrNeed   int    // length bytes still expected (0 = at a fresh prefix)
	hdrVal    uint64 // accumulated big-endian length
}

func (g *guardReader) Read(p []byte) (int, error) {
	if g.err != nil {
		return 0, g.err
	}
	n, err := g.r.Read(p)
	if scanErr := g.scan(p[:n]); scanErr != nil {
		g.err = scanErr
		oversizeFrames.Inc()
		// Nothing read past the hostile header may reach the decoder.
		return 0, scanErr
	}
	return n, err
}

// scan advances the framing state machine over one chunk of stream bytes.
func (g *guardReader) scan(b []byte) error {
	for i := 0; i < len(b); {
		if g.remaining > 0 {
			skip := uint64(len(b) - i)
			if skip > g.remaining {
				skip = g.remaining
			}
			g.remaining -= skip
			i += int(skip)
			continue
		}
		c := b[i]
		i++
		if g.hdrNeed == 0 {
			if c < 0x80 { // single-byte length
				g.remaining = uint64(c)
				continue
			}
			g.hdrNeed = 256 - int(c)
			if g.hdrNeed > 8 {
				return fmt.Errorf("%w: malformed %d-byte length prefix", ErrTooLarge, g.hdrNeed)
			}
			g.hdrVal = 0
			continue
		}
		g.hdrVal = g.hdrVal<<8 | uint64(c)
		g.hdrNeed--
		if g.hdrNeed == 0 {
			if g.hdrVal > g.max {
				return fmt.Errorf("%w: peer claims %d bytes, limit %d", ErrTooLarge, g.hdrVal, g.max)
			}
			g.remaining = g.hdrVal
		}
	}
	return nil
}
