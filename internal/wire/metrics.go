package wire

import (
	"io"

	"ndpipe/internal/telemetry"
)

// Protocol instrumentation: every codec in the process shares one set of
// per-MsgType message counters plus byte counters, registered once in the
// telemetry default registry. The hot path (Send/Recv and the stream
// wrappers) only touches pre-registered atomic counters — no lookups, no
// allocation.
var (
	sentMsgs  [lastMsgType + 1]*telemetry.Counter
	recvMsgs  [lastMsgType + 1]*telemetry.Counter
	sentBytes = telemetry.Default.Counter("wire_sent_bytes_total")
	recvBytes = telemetry.Default.Counter("wire_recv_bytes_total")
)

func init() {
	for t := MsgHello; t <= lastMsgType; t++ {
		sentMsgs[t] = telemetry.Default.Counter(telemetry.Labeled("wire_send_total", "type", t.String()))
		recvMsgs[t] = telemetry.Default.Counter(telemetry.Labeled("wire_recv_total", "type", t.String()))
	}
}

func countSent(t MsgType) {
	if t >= MsgHello && t <= lastMsgType {
		sentMsgs[t].Inc()
	}
}

func countRecv(t MsgType) {
	if t >= MsgHello && t <= lastMsgType {
		recvMsgs[t].Inc()
	}
}

// countingStream wraps the codec's underlying stream and feeds the byte
// counters, so wire traffic volume is visible on /metrics without touching
// gob.
type countingStream struct {
	rw io.ReadWriter
}

func (c countingStream) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	recvBytes.Add(int64(n))
	return n, err
}

func (c countingStream) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	sentBytes.Add(int64(n))
	return n, err
}
